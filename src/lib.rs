//! Umbrella crate for the RBC / Janus Quicksort reproduction.
//! Re-exports the three library crates; examples and integration tests live
//! under this package.
pub use jquick;
pub use mpisim;
pub use rbc;
