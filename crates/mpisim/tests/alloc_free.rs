//! Allocation-free hot path (PR 8 acceptance): a counting global
//! allocator proves that a steady-state cooperative epoch — ring
//! point-to-point traffic, a reduce, a scan, a JQuick-style staged
//! exchange (run-length encode → ship → decode), and a barrier, every
//! iteration — performs **exactly zero** heap allocations once the
//! payload pool and the scheduler's commit buffers are warm, and that
//! the total allocation count of a warm run is itself deterministic.
//!
//! The measurement only holds at `workers = 1`: the scheduler then runs
//! its worker loop on the calling thread (no allocating thread spawns,
//! no `Arc`-published commit/merge phases — `shard_target` returns 1 and
//! the merge rounds stay inline), and the payload pool's thread-local
//! caches live on this one thread across `Universe::run` calls. This
//! file is its own integration-test binary with a single `#[test]` so
//! no concurrent test pollutes the counter.
//!
//! The collectives in the storm are the pooled ones (`reduce`, `scan`,
//! `barrier`); `bcast`/`allreduce` publish through an `Arc` per call and
//! are deliberately excluded — the zero-allocation contract covers the
//! epoch machinery and the staged payload path, not every collective's
//! internal rendezvous.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use mpisim::{coll, distsort, ops, pool, SimConfig, SortAlgo, Src, Transport, Universe};

/// Counts every allocation event (alloc, alloc_zeroed, and realloc —
/// a realloc that moves is a fresh allocation for our purposes); frees
/// are not interesting. Relaxed ordering suffices: at `workers = 1` the
/// counter is only read on the thread that does all the allocating.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

const P: usize = 8;
/// Iterations per run; the second half must allocate nothing.
const ITERS: usize = 40;
/// Iterations granted to warm the pools (pooled capacities only grow,
/// so reallocs die out once every buffer has reached its steady size).
const WARMUP: usize = ITERS / 2;
/// Elements per payload; small enough that every pooled vector settles
/// into its size class in one take.
const CHUNK: usize = 16;

/// The storm program, as a plain `fn` so the same body (and thus the
/// same allocation profile) runs both solo and under a [`mpisim::Fleet`].
fn storm_body(env: mpisim::ProcEnv) -> Vec<u64> {
    let w = &env.world;
    let r = w.rank();
    let p = w.size();
    let next = (r + 1) % p;
    let prev = (r + p - 1) % p;
    let payload: [u64; CHUNK] = std::array::from_fn(|k| (r * CHUNK + k) as u64);
    let mut snaps = if r == 0 {
        Vec::with_capacity(ITERS)
    } else {
        Vec::new()
    };
    for i in 0..ITERS {
        // Ring point-to-point: the staged-exchange payload path.
        w.send(&payload, next, 100).unwrap();
        let (v, st) = w.recv::<u64>(Src::Rank(prev), 100).unwrap();
        assert_eq!((st.source, v.len()), (prev, CHUNK));
        pool::recycle_vec(v);
        // Binomial reduce to rank 0 (pooled accumulator).
        if let Some(acc) = coll::reduce(w, &payload, 0, 200, ops::sum::<u64>()).unwrap() {
            pool::recycle_vec(acc);
        }
        // Hillis–Steele inclusive scan (pooled accumulator).
        let s = coll::scan(w, &payload, 300, ops::sum::<u64>()).unwrap();
        pool::recycle_vec(s);
        // JQuick-style staged exchange: tag a locally sorted chunk
        // with positions, run-length encode, ship both frames to
        // the ring neighbour, decode, recycle. This is exactly the
        // wire format of the sample sort's data exchange.
        let mut tagged: Vec<(u64, u64)> = pool::take_vec(CHUNK);
        let base = ((i * p + r) * CHUNK) as u64;
        for (k, &x) in payload.iter().enumerate() {
            tagged.push((x, base + k as u64));
        }
        tagged.sort_unstable_by_key(|&(_, pos)| pos);
        let (runs, vals) = distsort::encode_runs(tagged);
        w.send(&runs, next, 500).unwrap();
        w.send_vec(vals, next, 501).unwrap();
        pool::recycle_vec(runs);
        let (rruns, _) = w.recv::<(u64, u64)>(Src::Rank(prev), 500).unwrap();
        let (rvals, _) = w.recv::<u64>(Src::Rank(prev), 501).unwrap();
        let decoded = distsort::decode_runs(&rruns, rvals);
        assert_eq!(decoded.len(), CHUNK);
        pool::recycle_vec(rruns);
        pool::recycle_vec(decoded);
        // Quiesce the iteration, then snapshot the global counter.
        // With one worker everything — rank fibers and the commit
        // machinery — runs on this very thread, so the read races
        // with nothing.
        coll::barrier(w, 400).unwrap();
        if r == 0 {
            snaps.push(ALLOCS.load(Ordering::Relaxed));
        }
    }
    snaps
}

/// Every knob the measurement depends on, pinned: 1 worker (inline
/// commits, shared thread-locals) and the merge ordering (the sort
/// oracle's stable `sort_by_key` allocates scratch by design).
fn storm_cfg(seed: u64) -> SimConfig {
    SimConfig::cooperative()
        .with_seed(seed)
        .with_workers(1)
        .with_sort_algo(SortAlgo::Merge)
}

/// One full solo storm run. Returns rank 0's allocation-counter
/// snapshot after each iteration's closing barrier, plus the run's
/// total count.
fn storm_run(seed: u64) -> (Vec<u64>, u64) {
    let before = ALLOCS.load(Ordering::Relaxed);
    let res = Universe::run(P, storm_cfg(seed), storm_body);
    let total = ALLOCS.load(Ordering::Relaxed) - before;
    let snaps = res.per_rank.into_iter().next().unwrap();
    assert_eq!(snaps.len(), ITERS);
    (snaps, total)
}

/// The same storm admitted into a persistent single-worker fleet. The
/// rank fibers and the whole commit machinery run on the one fleet
/// worker thread, so that thread's pool caches — not this thread's —
/// are the ones being warmed, and the in-body counter snapshots still
/// race with nothing: the submitter blocks in `join` and the sweep's
/// own bookkeeping happens strictly outside the program body.
#[cfg(all(unix, any(target_arch = "x86_64", target_arch = "aarch64")))]
fn fleet_storm_run(fleet: &mpisim::Fleet, seed: u64) -> Vec<u64> {
    let res = fleet.submit(P, storm_cfg(seed), storm_body).join();
    let snaps = res.per_rank.into_iter().next().unwrap();
    assert_eq!(snaps.len(), ITERS);
    snaps
}

#[test]
fn steady_state_epochs_allocate_nothing() {
    // Run 1 starts cold: pools fill and pooled capacities grow during
    // the warm-up window, after which every iteration must be free.
    let (snaps, _cold_total) = storm_run(42);
    let tail: Vec<u64> = snaps
        .windows(2)
        .skip(WARMUP - 1)
        .map(|w| w[1] - w[0])
        .collect();
    assert!(
        tail.iter().all(|&d| d == 0),
        "steady-state iterations allocated: per-iteration deltas after \
         warm-up = {tail:?}"
    );

    // Runs 2 and 3 start warm (the payload pool's thread-local caches
    // survive on this thread). Their *whole-run* totals — universe
    // setup included — must match exactly: the allocation count of a
    // warm run is a pure function of (program, seed).
    let (snaps2, total2) = storm_run(42);
    let (snaps3, total3) = storm_run(42);
    assert_eq!(
        total2, total3,
        "warm-run allocation totals diverged: {total2} vs {total3}"
    );
    // And warm runs must go allocation-free well before the cold run's
    // warm-up bound: the payload pool is already hot, so only the
    // universe-local buffers (mailbox key tables, per-task staging,
    // commit vectors) still grow — empirically for ~3 iterations; 8 is
    // the asserted bound.
    const UNIVERSE_WARMUP: usize = 8;
    for (label, s) in [("run2", &snaps2), ("run3", &snaps3)] {
        let deltas: Vec<u64> = s
            .windows(2)
            .skip(UNIVERSE_WARMUP - 1)
            .map(|w| w[1] - w[0])
            .collect();
        assert!(
            deltas.iter().all(|&d| d == 0),
            "{label} iterations allocated despite warm pools: {deltas:?}"
        );
    }

    // Fleet mode: the shared worker pool hands its `SchedPools` and its
    // worker thread's payload-pool caches to every admitted universe.
    // Universe #1 warms the fleet (its worker thread starts cold);
    // universe #2 of an already-seen shape must then go allocation-free
    // inside the universe warm-up bound, exactly like a warm solo run —
    // admitting a fresh universe into a warm fleet costs setup only.
    #[cfg(all(unix, any(target_arch = "x86_64", target_arch = "aarch64")))]
    {
        let fleet = mpisim::Fleet::new(1, 1);
        let _cold = fleet_storm_run(&fleet, 42);
        for run in 2..=3 {
            let snaps = fleet_storm_run(&fleet, 42);
            let deltas: Vec<u64> = snaps
                .windows(2)
                .skip(UNIVERSE_WARMUP - 1)
                .map(|w| w[1] - w[0])
                .collect();
            assert!(
                deltas.iter().all(|&d| d == 0),
                "fleet run {run} allocated in the epoch hot path despite \
                 a warm fleet: {deltas:?}"
            );
        }
    }
}
