//! Fleet-vs-solo oracle: a universe co-scheduled in a [`Fleet`] must be
//! **byte-identical** to the same `(program, config)` run solo through
//! [`Universe::run`] — rank logs, outcome strings (`RoundBlame` text
//! included), virtual clocks, the exact metrics snapshot, and the event
//! trace — regardless of the fleet's worker count, its admission window,
//! the submission order, or what other universes it is co-scheduled
//! with. The storm shape is the fault-scenario harness (wildcard
//! receives, colliding tags, a concurrent nonblocking collective, an
//! optional fault plan) so the hardest-to-order paths are all exercised.

use std::sync::{Arc, Mutex};

use mpisim::{nbcoll, FaultPlan, Fleet};
use mpisim::{ops, SimConfig, SimResult, Src, Time, Transport, Universe};
use proptest::prelude::*;

/// One rank's full observation: the `(source, tag, value)` sequence its
/// wildcard receives matched, its outcome (`ok:<sum>` or the full error
/// display, blame included), and its final virtual clock.
type RankLog = (Vec<(usize, u64, u64)>, String, Time);

/// Everything a universe's run observably produced: per-rank logs plus
/// the deterministic metrics snapshot and optional trace text.
type UniObservation = (Vec<RankLog>, String, Option<String>);

/// Same fan-out shape as the sharded-commit storms.
const FANOUT_OFFSETS: [usize; 4] = [1, 4, 9, 16];

fn tag_of(k: usize) -> u64 {
    (k % 3) as u64
}

/// One universe of the mixed fleet load.
#[derive(Clone, Debug)]
struct Scenario {
    p: usize,
    per: usize,
    seed: u64,
    plan: FaultPlan,
    trace: bool,
}

fn scenario_cfg(sc: &Scenario, workers: usize) -> SimConfig {
    SimConfig::cooperative()
        .with_seed(sc.seed)
        .with_workers(workers)
        .with_faults(sc.plan.clone())
        .with_trace(sc.trace)
}

type LogStore = Arc<Mutex<Vec<Vec<(usize, u64, u64)>>>>;

/// The storm program, parameterized so the *same* closure (shape) feeds
/// both `Universe::run` and `Fleet::submit`.
fn storm_program(
    p: usize,
    per: usize,
    logs: LogStore,
) -> impl Fn(mpisim::ProcEnv) -> String + Send + Sync + 'static {
    move |env| {
        let w = &env.world;
        let r = w.rank();
        let body = || -> mpisim::Result<u64> {
            for i in 0..per {
                for (k, off) in FANOUT_OFFSETS.iter().enumerate() {
                    let dst = (r + off) % p;
                    w.send(&[(r * 1000 + i * 10 + k) as u64], dst, tag_of(k))?;
                }
            }
            let coll = nbcoll::iallreduce(w, &[r as u64 + 1], 300, ops::sum::<u64>())?;
            for t in 0..3u64 {
                let n = per
                    * (0..FANOUT_OFFSETS.len())
                        .filter(|&k| tag_of(k) == t)
                        .count();
                for _ in 0..n {
                    let (v, st) = w.recv::<u64>(Src::Any, t)?;
                    logs.lock().unwrap()[r].push((st.source, t, v[0]));
                }
            }
            Ok(coll.wait_result()?[0])
        };
        match body() {
            Ok(sum) => format!("ok:{sum}"),
            Err(e) => format!("{e}"),
        }
    }
}

/// Fold a completed run into the comparable observation.
fn observe(res: SimResult<String>, logs: LogStore) -> UniObservation {
    let logs = Arc::try_unwrap(logs).unwrap().into_inner().unwrap();
    let ranklogs = logs
        .into_iter()
        .zip(res.per_rank)
        .zip(res.clocks)
        .map(|((log, outcome), clock)| (log, outcome, clock))
        .collect();
    let metrics = format!("{:?}", res.metrics);
    let trace = res.trace.map(|t| t.to_text());
    (ranklogs, metrics, trace)
}

/// The oracle: the scenario run solo at 1 worker.
fn solo_observation(sc: &Scenario) -> UniObservation {
    let logs: LogStore = Arc::new(Mutex::new(vec![Vec::new(); sc.p]));
    let program = storm_program(sc.p, sc.per, Arc::clone(&logs));
    let res = Universe::run(sc.p, scenario_cfg(sc, 1), program);
    observe(res, logs)
}

/// Run every scenario through one fleet, submitting in `order`, and
/// return the observations in *scenario* order.
fn fleet_observations(
    scenarios: &[Scenario],
    workers: usize,
    inflight: usize,
    order: &[usize],
) -> Vec<UniObservation> {
    let fleet = Fleet::new(workers, inflight);
    let mut handles: Vec<Option<_>> = (0..scenarios.len()).map(|_| None).collect();
    let mut stores: Vec<Option<LogStore>> = (0..scenarios.len()).map(|_| None).collect();
    for &i in order {
        let sc = &scenarios[i];
        let logs: LogStore = Arc::new(Mutex::new(vec![Vec::new(); sc.p]));
        let program = storm_program(sc.p, sc.per, Arc::clone(&logs));
        // `coop_workers` in the config is irrelevant here: the fleet's
        // own pool size applies (and must not matter for output).
        handles[i] = Some(fleet.submit(sc.p, scenario_cfg(sc, 1), program));
        stores[i] = Some(logs);
    }
    handles
        .into_iter()
        .zip(stores)
        .map(|(h, logs)| observe(h.unwrap().join(), logs.unwrap()))
        .collect()
}

/// A mixed scenario load: clean storms at varied sizes/seeds, a
/// straggler+jitter run, and a crash-stop run whose peers are poisoned
/// with `RoundBlame` diagnostics (error strings must survive the fleet
/// byte-for-byte). One clean universe records the event trace.
fn mixed_load(seed: u64, victim: usize) -> Vec<Scenario> {
    let clean = FaultPlan::default();
    let perturbed = FaultPlan::default()
        .with_perturb_seed(seed ^ 0xABCD)
        .with_slowdown(0.3, 4.0)
        .with_jitter(Time::from_micros(2));
    let crashed = FaultPlan::default()
        .with_perturb_seed(1)
        .with_crash(victim % 20, Time::ZERO);
    vec![
        Scenario {
            p: 20,
            per: 2,
            seed,
            plan: clean.clone(),
            trace: true,
        },
        Scenario {
            p: 24,
            per: 1,
            seed: seed.wrapping_add(1),
            plan: clean.clone(),
            trace: false,
        },
        Scenario {
            p: 17,
            per: 2,
            seed: seed.wrapping_add(2),
            plan: clean,
            trace: false,
        },
        Scenario {
            p: 24,
            per: 1,
            seed: seed.wrapping_add(3),
            plan: perturbed,
            trace: false,
        },
        Scenario {
            p: 20,
            per: 1,
            seed: seed.wrapping_add(4),
            plan: crashed,
            trace: false,
        },
    ]
}

/// Assert the whole (workers × inflight × submission order) matrix
/// reproduces the solo oracle for every universe of the load.
fn assert_fleet_matches_solo(scenarios: &[Scenario]) {
    let oracle: Vec<UniObservation> = scenarios.iter().map(solo_observation).collect();
    let n = scenarios.len();
    let forward: Vec<usize> = (0..n).collect();
    let reverse: Vec<usize> = (0..n).rev().collect();
    for &(workers, inflight) in &[(1usize, 1usize), (4, 4), (8, 16)] {
        for order in [&forward, &reverse] {
            let got = fleet_observations(scenarios, workers, inflight, order);
            assert_eq!(
                oracle, got,
                "fleet run diverged from solo oracle \
                 (workers={workers}, inflight={inflight}, order={order:?})"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 2, ..ProptestConfig::default() })]

    // The headline oracle: mixed loads — including faulted universes with
    // RoundBlame error text — are identical solo and co-scheduled, for
    // every worker count, admission window, and submission order.
    #[test]
    fn fleet_results_match_solo_oracle(
        seed in any::<u64>(),
        victim in 0usize..20,
    ) {
        assert_fleet_matches_solo(&mixed_load(seed, victim));
    }
}

/// Fixed-seed smoke of the same property (fast path for `cargo test`
/// without the proptest machinery dominating the runtime).
#[test]
fn fleet_matches_solo_fixed_seed() {
    assert_fleet_matches_solo(&mixed_load(0x5bc, 7));
}

/// A queue deeper than the window must drain in submission order without
/// deadlock, and duplicate submissions of one scenario must agree.
#[test]
fn window_of_one_serializes_without_divergence() {
    let sc = Scenario {
        p: 20,
        per: 1,
        seed: 99,
        plan: FaultPlan::default(),
        trace: false,
    };
    let scenarios = vec![sc.clone(), sc.clone(), sc];
    let obs = fleet_observations(&scenarios, 2, 1, &[0, 1, 2]);
    assert_eq!(obs[0], obs[1]);
    assert_eq!(obs[1], obs[2]);
}

/// A rank panic inside a fleet universe must resume at that universe's
/// `join` — and only there; co-scheduled universes are unaffected.
#[test]
fn rank_panic_resumes_at_join_only() {
    let fleet = Fleet::new(2, 2);
    let bad = fleet.submit(4, SimConfig::cooperative(), |env| {
        if env.rank() == 2 {
            panic!("boom in fleet");
        }
        env.rank()
    });
    let good = fleet.submit(4, SimConfig::cooperative(), |env| env.rank());
    let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| bad.join()))
        .expect_err("panic must propagate through join");
    let msg = err
        .downcast_ref::<&str>()
        .copied()
        .map(str::to_owned)
        .or_else(|| err.downcast_ref::<String>().cloned())
        .unwrap_or_default();
    assert!(msg.contains("boom in fleet"), "unexpected payload: {msg}");
    assert_eq!(good.join().per_rank, vec![0, 1, 2, 3]);
}
