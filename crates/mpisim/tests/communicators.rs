//! Communicator construction: split, create_group, dup, context isolation,
//! and the cost asymmetries the paper's Fig. 5 measures.

use mpisim::{Group, SimConfig, Src, Time, Transport, Universe, VendorProfile};

#[test]
fn split_into_halves() {
    let res = Universe::run_default(8, |env| {
        let w = &env.world;
        let color = (w.rank() >= 4) as u64;
        let half = w.split(color, w.rank() as u64).unwrap();
        // Collective on the half must involve exactly 4 processes.
        let sum = half.allreduce(&[1u64], mpisim::ops::sum::<u64>()).unwrap()[0];
        (half.rank(), half.size(), sum)
    });
    for (r, (hr, hs, sum)) in res.per_rank.into_iter().enumerate() {
        assert_eq!(hs, 4);
        assert_eq!(sum, 4);
        assert_eq!(hr, r % 4);
    }
}

#[test]
fn split_respects_keys_reverse_order() {
    let res = Universe::run_default(6, |env| {
        let w = &env.world;
        // Same color for all; key reverses the rank order.
        let c = w.split(0, (w.size() - w.rank()) as u64).unwrap();
        c.rank()
    });
    for (r, new_rank) in res.per_rank.into_iter().enumerate() {
        assert_eq!(new_rank, 5 - r);
    }
}

#[test]
fn split_three_colors_context_distinct() {
    let res = Universe::run_default(9, |env| {
        let w = &env.world;
        let c = w.split((w.rank() % 3) as u64, w.rank() as u64).unwrap();
        (format!("{}", c.ctx()), c.size())
    });
    // All processes of one color share a context; different colors differ.
    let ctx_of = |r: usize| res.per_rank[r].0.clone();
    assert_eq!(ctx_of(0), ctx_of(3));
    assert_eq!(ctx_of(1), ctx_of(4));
    assert_ne!(ctx_of(0), ctx_of(1));
    assert_ne!(ctx_of(1), ctx_of(2));
    assert_ne!(ctx_of(0), ctx_of(2));
    for (_, s) in &res.per_rank {
        assert_eq!(*s, 3);
    }
}

#[test]
fn create_group_range() {
    let res = Universe::run_default(8, |env| {
        let w = &env.world;
        let group = if w.rank() < 4 {
            Group::range(0, 1, 4)
        } else {
            Group::range(4, 1, 4)
        };
        let c = w.create_group(&group, 17).unwrap();
        let ids = c.allgather1(w.rank() as u64).unwrap();
        (c.rank(), ids)
    });
    for (r, (cr, ids)) in res.per_rank.into_iter().enumerate() {
        assert_eq!(cr, r % 4);
        let base = if r < 4 { 0u64 } else { 4 };
        assert_eq!(ids, (base..base + 4).collect::<Vec<_>>());
    }
}

#[test]
fn create_group_ibm_ring_algo_works_too() {
    let cfg = SimConfig::default().with_vendor(VendorProfile::ibm_like());
    let res = Universe::run(6, cfg, |env| {
        let w = &env.world;
        let group = if w.rank() < 3 {
            Group::range(0, 1, 3)
        } else {
            Group::range(3, 1, 3)
        };
        let c = w.create_group(&group, 17).unwrap();
        c.allreduce(&[w.rank() as u64], mpisim::ops::sum::<u64>())
            .unwrap()[0]
    });
    assert_eq!(res.per_rank, vec![3, 3, 3, 12, 12, 12]);
}

#[test]
fn context_isolation_between_parent_and_child() {
    // A message sent on the parent must not be matched by a receive on the
    // child communicator, even with identical rank and tag.
    let res = Universe::run_default(2, |env| {
        let w = &env.world;
        let sub = w.create_group(&Group::range(0, 1, 2), 3).unwrap();
        if w.rank() == 0 {
            w.send(&[111u64], 1, 5).unwrap(); // on parent
            sub.send(&[222u64], 1, 5).unwrap(); // on child
            0
        } else {
            // Receive on the child first: must get 222 despite 111 having
            // been pushed first.
            let (v_child, _) = sub.recv::<u64>(Src::Rank(0), 5).unwrap();
            let (v_parent, _) = w.recv::<u64>(Src::Rank(0), 5).unwrap();
            assert_eq!(v_child, vec![222]);
            assert_eq!(v_parent, vec![111]);
            1
        }
    });
    assert_eq!(res.per_rank, vec![0, 1]);
}

#[test]
fn dup_gets_fresh_context() {
    let res = Universe::run_default(3, |env| {
        let w = &env.world;
        let d = w.dup().unwrap();
        assert_ne!(format!("{}", d.ctx()), format!("{}", w.ctx()));
        // Both remain usable.
        let a = w.allreduce(&[1u64], mpisim::ops::sum::<u64>()).unwrap()[0];
        let b = d.allreduce(&[2u64], mpisim::ops::sum::<u64>()).unwrap()[0];
        (a, b)
    });
    for (a, b) in res.per_rank {
        assert_eq!((a, b), (3, 6));
    }
}

#[test]
fn nested_create_group() {
    // Create quarters out of halves: two levels of derivation.
    let res = Universe::run_default(8, |env| {
        let w = &env.world;
        let half_group = if w.rank() < 4 {
            Group::range(0, 1, 4)
        } else {
            Group::range(4, 1, 4)
        };
        let half = w.create_group(&half_group, 1).unwrap();
        let quarter_group = if half.rank() < 2 {
            half_group.subrange(0, 1, 1)
        } else {
            half_group.subrange(2, 3, 1)
        };
        let quarter = half.create_group(&quarter_group, 2).unwrap();
        quarter.allgather1(w.rank() as u64).unwrap()
    });
    assert_eq!(res.per_rank[0], vec![0, 1]);
    assert_eq!(res.per_rank[2], vec![2, 3]);
    assert_eq!(res.per_rank[5], vec![4, 5]);
    assert_eq!(res.per_rank[7], vec![6, 7]);
}

/// The heart of Fig. 5: native construction cost grows with p; and the
/// IBM-like ring algorithm is orders of magnitude slower than mask
/// agreement at scale.
#[test]
fn construction_costs_scale_as_paper_observes() {
    let split_cost = |p: usize, vendor: VendorProfile| -> Time {
        let cfg = SimConfig::default().with_vendor(vendor);
        let res = Universe::run(p, cfg, |env| {
            let w = &env.world;
            w.barrier().unwrap();
            let t0 = env.now();
            let _c = w
                .create_group(
                    &if w.rank() < p / 2 {
                        Group::range(0, 1, p / 2)
                    } else {
                        Group::range(p / 2, 1, p - p / 2)
                    },
                    9,
                )
                .unwrap();
            env.now() - t0
        });
        res.per_rank.into_iter().max().unwrap()
    };

    let intel_small = split_cost(16, VendorProfile::intel_like());
    let intel_big = split_cost(128, VendorProfile::intel_like());
    assert!(
        intel_big > intel_small,
        "create_group must get more expensive with p: {intel_small} vs {intel_big}"
    );

    let ibm_big = split_cost(128, VendorProfile::ibm_like());
    assert!(
        ibm_big.as_nanos() > 10 * intel_big.as_nanos(),
        "IBM-like ring must be far slower: intel={intel_big} ibm={ibm_big}"
    );

    // The gap must widen with p (the "orders of magnitude" of Fig. 5 is a
    // scaling statement).
    let intel_small_ratio = split_cost(16, VendorProfile::ibm_like()).as_nanos() as f64
        / split_cost(16, VendorProfile::intel_like()).as_nanos() as f64;
    let big_ratio = ibm_big.as_nanos() as f64 / intel_big.as_nanos() as f64;
    assert!(
        big_ratio > intel_small_ratio,
        "ratio must grow with p: {intel_small_ratio:.1} -> {big_ratio:.1}"
    );
}

#[test]
fn overlapping_create_group_with_distinct_tags() {
    // Groups {0,1,2,3} and {3,4,5,6}: rank 3 is in both (a janus-style
    // overlap). With distinct tags both creations succeed.
    let res = Universe::run_default(7, |env| {
        let w = &env.world;
        let left = Group::range(0, 1, 4);
        let right = Group::range(3, 1, 4);
        let mut sizes = Vec::new();
        if w.rank() <= 3 {
            let c = w.create_group(&left, 100).unwrap();
            sizes.push(c.allreduce(&[1u64], mpisim::ops::sum::<u64>()).unwrap()[0]);
        }
        if w.rank() >= 3 {
            let c = w.create_group(&right, 200).unwrap();
            sizes.push(c.allreduce(&[1u64], mpisim::ops::sum::<u64>()).unwrap()[0]);
        }
        sizes
    });
    assert_eq!(res.per_rank[0], vec![4]);
    assert_eq!(res.per_rank[3], vec![4, 4]);
    assert_eq!(res.per_rank[6], vec![4]);
}

#[test]
fn deadlock_detector_reports_timeout() {
    use std::time::Duration;
    let cfg = SimConfig::default().with_timeout(Duration::from_millis(50));
    let res = Universe::run(2, cfg, |env| {
        let w = &env.world;
        if w.rank() == 0 {
            // Nobody ever sends tag 77.
            w.recv::<u64>(Src::Rank(1), 77).map(|_| ()).unwrap_err()
        } else {
            mpisim::MpiError::Usage("other rank".into())
        }
    });
    assert!(matches!(
        res.per_rank[0],
        mpisim::MpiError::Timeout { rank: 0, .. }
    ));
}

#[test]
fn traffic_accounting_counts_messages_and_bytes() {
    let res = Universe::run_default(2, |env| {
        let w = &env.world;
        if w.rank() == 0 {
            w.send(&[1u64, 2, 3], 1, 5).unwrap();
        } else {
            w.recv::<u64>(Src::Rank(0), 5).unwrap();
        }
    });
    assert_eq!(res.traffic.messages, 1);
    assert_eq!(res.traffic.bytes, 24);
}

#[test]
fn rbc_style_view_traffic_is_zero_for_pure_splits() {
    // Communicator creation by RBC generates NO traffic at all — the
    // measurable version of "without communication".
    let res = Universe::run_default(8, |env| {
        let _half = env
            .world
            .create_group(&Group::range(0, 1, 8), 3)
            .map(|_| ())
            .ok();
    });
    // Native creation DID send messages (mask agreement).
    assert!(res.traffic.messages > 0);
}
