//! Determinism and zero-observer-effect properties of the `mpisim::obs`
//! trace layer.
//!
//! The trace is specified to be a **pure function of `(program, seed,
//! fault seed)`**: its canonical text must be byte-identical across
//! cooperative worker counts and commit algorithms, and turning tracing
//! on must not change anything a program can observe — results, virtual
//! clocks, traffic, or the deterministic model counters.

use mpisim::{obs, CommitAlgo, FaultPlan, SimConfig, Src, Time, Transport, Universe};
use proptest::prelude::*;

/// A trace-rich workload: a phase marker, a p2p ring exchange, and three
/// collectives (allreduce nests a reduce + bcast span), under message
/// jitter so fault events appear in the trace too.
fn traced_workload(env: &mpisim::ProcEnv, rounds: usize) -> u64 {
    let w = &env.world;
    let (r, p) = (w.rank(), w.size());
    let mut acc = 0u64;
    for round in 0..rounds {
        obs::mark(w.proc_state(), || format!("round {round}"));
        w.send(&[(r * 100 + round) as u64], (r + 1) % p, round as u64)
            .unwrap();
        let (v, _) = w
            .recv::<u64>(Src::Rank((r + p - 1) % p), round as u64)
            .unwrap();
        acc += v[0];
        acc += w.allreduce(&[r as u64], |a, b| a + b).unwrap()[0];
        acc += w.scan(&[1u64], |a, b| a + b).unwrap()[0];
        w.barrier().unwrap();
    }
    acc
}

fn traced_run(
    p: usize,
    rounds: usize,
    seed: u64,
    workers: usize,
    algo: CommitAlgo,
) -> (Vec<u64>, Vec<Time>, String) {
    let cfg = SimConfig::cooperative()
        .with_seed(seed)
        .with_workers(workers)
        .with_commit_algo(algo)
        .with_faults(
            FaultPlan::default()
                .with_perturb_seed(seed ^ 0x5eed)
                .with_jitter(Time::from_micros(3)),
        )
        .with_trace(true);
    let res = Universe::run(p, cfg, move |env| traced_workload(&env, rounds));
    let text = res.trace.expect("tracing was requested").to_text();
    (res.per_rank, res.clocks, text)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 3, ..ProptestConfig::default() })]

    // The canonical trace text is byte-identical for every
    // `(coop_workers, CommitAlgo)` combination — scheduling must never
    // leak into the trace.
    #[test]
    fn trace_identical_across_worker_counts(seed in 0u64..1_000) {
        let reference = traced_run(12, 2, seed, 1, CommitAlgo::Sharded);
        prop_assert!(!reference.2.is_empty(), "workload must produce events");
        for workers in [1usize, 4, 8] {
            for algo in [CommitAlgo::Sharded, CommitAlgo::Serial] {
                let got = traced_run(12, 2, seed, workers, algo);
                prop_assert_eq!(
                    &got.0, &reference.0,
                    "results differ at workers={} algo={:?}", workers, algo
                );
                prop_assert_eq!(
                    &got.1, &reference.1,
                    "clocks differ at workers={} algo={:?}", workers, algo
                );
                prop_assert_eq!(
                    &got.2, &reference.2,
                    "trace text differs at workers={} algo={:?}", workers, algo
                );
            }
        }
    }
}

/// Observer effect must be exactly zero: a traced run and an untraced run
/// of the same program agree on results, clocks, traffic, and every
/// deterministic model counter. Only `SimResult::trace` may differ.
#[test]
fn tracing_has_zero_observer_effect() {
    let run = |trace: bool| {
        let cfg = SimConfig::cooperative()
            .with_seed(11)
            .with_workers(4)
            .with_trace(trace);
        Universe::run(16, cfg, move |env| traced_workload(&env, 2))
    };
    let off = run(false);
    let on = run(true);
    assert!(off.trace.is_none(), "tracing off must collect no trace");
    assert!(on.trace.is_some_and(|t| !t.is_empty()));
    assert_eq!(off.per_rank, on.per_rank);
    assert_eq!(off.clocks, on.clocks);
    assert_eq!(off.traffic, on.traffic);
    assert_eq!(off.metrics, on.metrics);
}

/// The canonical text carries every event family the workload exercises,
/// in non-decreasing timestamp order.
#[test]
fn trace_text_covers_all_event_families() {
    let (_, _, text) = traced_run(12, 1, 3, 4, CommitAlgo::Sharded);
    for needle in [
        "mark round 0",
        "begin reduce allreduce",
        "begin bcast bcast",
        "begin scan scan",
        "begin barrier barrier",
        "end barrier",
        "send -> ",
        "deliver <- ",
        "fault-jitter +",
    ] {
        assert!(
            text.contains(needle),
            "trace text lacks {needle:?}:\n{text}"
        );
    }
    let stamps: Vec<u64> = text
        .lines()
        .map(|l| l.split(' ').next().unwrap().parse().unwrap())
        .collect();
    assert!(
        stamps.windows(2).all(|w| w[0] <= w[1]),
        "merged trace must be time-ordered"
    );
}

/// Chrome-trace export: structurally valid JSON (balanced outside string
/// literals) with one `thread_name` metadata record per participating
/// rank and one record per trace event.
#[test]
fn chrome_export_is_structurally_valid() {
    let p = 8;
    let cfg = SimConfig::cooperative().with_seed(5).with_trace(true);
    let res = Universe::run(p, cfg, move |env| traced_workload(&env, 1));
    let trace = res.trace.unwrap();
    let json = trace.to_chrome_json();
    assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));

    // Minimal structural validation without a JSON dependency: brackets
    // and braces must balance outside string literals, and strings must
    // terminate.
    let (mut depth_obj, mut depth_arr) = (0i64, 0i64);
    let (mut in_str, mut escaped) = (false, false);
    for c in json.chars() {
        if in_str {
            match (escaped, c) {
                (true, _) => escaped = false,
                (false, '\\') => escaped = true,
                (false, '"') => in_str = false,
                _ => {}
            }
            continue;
        }
        match c {
            '"' => in_str = true,
            '{' => depth_obj += 1,
            '}' => depth_obj -= 1,
            '[' => depth_arr += 1,
            ']' => depth_arr -= 1,
            _ => {}
        }
        assert!(depth_obj >= 0 && depth_arr >= 0, "unbalanced Chrome JSON");
    }
    assert!(
        !in_str && depth_obj == 0 && depth_arr == 0,
        "unterminated Chrome JSON"
    );

    let meta_records = json.matches("\"thread_name\"").count();
    assert_eq!(meta_records, p, "one thread_name record per rank");
    let records = json.matches("{\"ph\":").count();
    assert_eq!(
        records,
        p + trace.len(),
        "one record per event plus metadata"
    );
}
