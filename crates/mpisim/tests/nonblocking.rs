//! Nonblocking collectives: correctness, overlap, and the §VI proposal.

use mpisim::icomm::icomm_create_group;
use mpisim::nbcoll::{self, Progress};
use mpisim::{ops, Group, Src, Transport, Universe};

const SIZES: &[usize] = &[1, 2, 3, 5, 8, 13];

#[test]
fn ibcast_matches_bcast() {
    for &p in SIZES {
        for root in [0, p - 1] {
            let res = Universe::run_default(p, |env| {
                let w = &env.world;
                let data = (w.rank() == root).then(|| vec![5u64, 6, 7]);
                let sm = nbcoll::ibcast(w, data, root, 3).unwrap();
                sm.wait_data().unwrap()
            });
            for v in res.per_rank {
                assert_eq!(v, vec![5, 6, 7], "p={p} root={root}");
            }
        }
    }
}

#[test]
fn ireduce_matches_reference() {
    for &p in SIZES {
        let res = Universe::run_default(p, |env| {
            let w = &env.world;
            let sm = nbcoll::ireduce(w, &[w.rank() as u64, 1], 0, 5, ops::sum::<u64>()).unwrap();
            sm.wait_result().unwrap()
        });
        let total: u64 = (0..p as u64).sum();
        assert_eq!(res.per_rank[0], Some(vec![total, p as u64]));
        for v in &res.per_rank[1..] {
            assert_eq!(*v, None);
        }
    }
}

#[test]
fn iallreduce_everyone_gets_result() {
    for &p in SIZES {
        let res = Universe::run_default(p, |env| {
            let w = &env.world;
            let sm = nbcoll::iallreduce(w, &[1u64], 7, ops::sum::<u64>()).unwrap();
            sm.wait_result().unwrap()
        });
        for v in res.per_rank {
            assert_eq!(v, vec![p as u64]);
        }
    }
}

#[test]
fn iscan_inclusive_and_exclusive() {
    for &p in SIZES {
        let res = Universe::run_default(p, |env| {
            let w = &env.world;
            let sm = nbcoll::iscan(w, &[w.rank() as u64 + 1], 9, ops::sum::<u64>()).unwrap();
            sm.wait_scan().unwrap()
        });
        for (r, (incl, excl)) in res.per_rank.into_iter().enumerate() {
            let inc: u64 = (1..=r as u64 + 1).sum();
            assert_eq!(incl, vec![inc]);
            if r == 0 {
                assert_eq!(excl, None);
            } else {
                assert_eq!(excl, Some(vec![inc - (r as u64 + 1)]));
            }
        }
    }
}

#[test]
fn igatherv_variable_contributions() {
    for &p in SIZES {
        let res = Universe::run_default(p, |env| {
            let w = &env.world;
            let mine: Vec<u64> = vec![w.rank() as u64; w.rank() % 3];
            let sm = nbcoll::igatherv(w, mine, 0, 11).unwrap();
            sm.wait_result().unwrap()
        });
        let got = res.per_rank[0].as_ref().unwrap();
        for (r, v) in got.iter().enumerate() {
            assert_eq!(*v, vec![r as u64; r % 3]);
        }
    }
}

#[test]
fn igather_flattens() {
    let res = Universe::run_default(6, |env| {
        let w = &env.world;
        let sm = nbcoll::igather(w, vec![w.rank() as u64 * 10], 2, 13).unwrap();
        sm.wait_result().unwrap()
    });
    assert_eq!(res.per_rank[2], Some(vec![0, 10, 20, 30, 40, 50]));
}

#[test]
fn ibarrier_completes() {
    for &p in SIZES {
        let res = Universe::run_default(p, |env| {
            let w = &env.world;
            let mut sm = nbcoll::ibarrier(w, 15).unwrap();
            let mut polls = 0usize;
            while !sm.poll().unwrap() {
                polls += 1;
                std::thread::yield_now();
            }
            polls
        });
        assert_eq!(res.per_rank.len(), p);
    }
}

/// The paper's Fig. 1 scenario: two halves created locally, nonblocking
/// broadcast on each half concurrently, progressed by polling.
#[test]
fn two_concurrent_ibcasts_on_overlap_free_halves() {
    let res = Universe::run_default(8, |env| {
        let w = &env.world;
        let (group, root_global) = if w.rank() < 4 {
            (Group::range(0, 1, 4), 0)
        } else {
            (Group::range(4, 1, 4), 4)
        };
        let half = w.create_group(&group, 21).unwrap();
        let data = (w.rank() == root_global).then(|| vec![root_global as u64]);
        let sm = nbcoll::ibcast(&half, data, 0, 23).unwrap();
        sm.wait_data().unwrap()[0]
    });
    assert_eq!(res.per_rank, vec![0, 0, 0, 0, 4, 4, 4, 4]);
}

/// Two nonblocking collectives in flight simultaneously on the SAME
/// communicator, distinguished by user tags (the RBC tag discipline).
#[test]
fn overlapping_nonblocking_collectives_with_user_tags() {
    let res = Universe::run_default(6, |env| {
        let w = &env.world;
        let a = nbcoll::iallreduce(w, &[1u64], 100, ops::sum::<u64>()).unwrap();
        let b = nbcoll::iallreduce(w, &[10u64], 200, ops::sum::<u64>()).unwrap();
        // Progress them interleaved.
        let mut a = a;
        let mut b = b;
        loop {
            let da = a.poll().unwrap();
            let db = b.poll().unwrap();
            if da && db {
                break;
            }
            std::thread::yield_now();
        }
        (a.result().unwrap().to_vec(), b.result().unwrap().to_vec())
    });
    for (a, b) in res.per_rank {
        assert_eq!(a, vec![6]);
        assert_eq!(b, vec![60]);
    }
}

#[test]
fn request_erasure_and_waitall() {
    let res = Universe::run_default(4, |env| {
        let w = &env.world;
        let mut reqs = vec![
            nbcoll::Request::new(nbcoll::ibarrier(w, 31).unwrap()),
            nbcoll::Request::new(nbcoll::ibarrier(w, 33).unwrap()),
        ];
        nbcoll::waitall(&mut reqs).unwrap();
        true
    });
    assert!(res.per_rank.iter().all(|&x| x));
}

#[test]
fn irecv_request_progress() {
    let res = Universe::run_default(2, |env| {
        let w = &env.world;
        if w.rank() == 0 {
            let mut req = w.irecv::<u64>(Src::Rank(1), 9);
            let done_before = req.test().unwrap();
            // Tell rank 1 we're ready; it sends only after this.
            w.send(&[0u8; 0], 1, 8).unwrap();
            while !req.test().unwrap() {
                std::thread::yield_now();
            }
            let (v, st) = req.take().unwrap();
            assert_eq!(st.source, 1);
            (done_before, v[0])
        } else {
            w.recv::<u8>(Src::Rank(0), 8).unwrap();
            w.send(&[77u64], 0, 9).unwrap();
            (false, 0)
        }
    });
    // Not complete before the sender sent; completes with the payload after.
    assert_eq!(res.per_rank[0], (false, 77));
}

// ---------------------------------------------------------------------------
// §VI: MPI_Icomm_create_group
// ---------------------------------------------------------------------------

#[test]
fn icomm_range_case_is_local_and_instant() {
    let res = Universe::run_default(8, |env| {
        let w = &env.world;
        let group = if w.rank() < 4 {
            Group::range(0, 1, 4)
        } else {
            Group::range(4, 1, 4)
        };
        let t0 = env.now();
        let mut req = icomm_create_group(w, &group, 5).unwrap();
        let local_elapsed = env.now() - t0;
        // Range case: complete immediately, without any communication.
        assert!(req.poll().unwrap());
        let c = req.take().unwrap();
        // Constant local cost, far below one message startup α.
        assert!(local_elapsed.as_nanos() < 1000, "took {local_elapsed}");
        let sum = c.allreduce(&[w.rank() as u64], ops::sum::<u64>()).unwrap()[0];
        (format!("{}", c.ctx()), sum)
    });
    assert_eq!(res.per_rank[0].1, 1 + 2 + 3);
    assert_eq!(res.per_rank[7].1, 4 + 5 + 6 + 7);
    // Distinct contexts for the two halves, shared within a half.
    assert_eq!(res.per_rank[0].0, res.per_rank[3].0);
    assert_ne!(res.per_rank[0].0, res.per_rank[4].0);
}

#[test]
fn icomm_non_range_uses_broadcast() {
    let res = Universe::run_default(6, |env| {
        let w = &env.world;
        // Even ranks form a strided (non-contiguous w.r.t. world? strided IS
        // a range of the world group only if stride matches; use a truly
        // irregular set): {0, 1, 3, 4}.
        if [0usize, 1, 3, 4].contains(&w.rank()) {
            let group = Group::from_ranks(vec![0, 1, 3, 4]);
            let req = icomm_create_group(w, &group, 5).unwrap();
            let c = req.wait_comm().unwrap();
            let ids = c.allgather1(w.rank() as u64).unwrap();
            Some(ids)
        } else {
            None
        }
    });
    for r in [0usize, 1, 3, 4] {
        assert_eq!(res.per_rank[r], Some(vec![0, 1, 3, 4]));
    }
    assert_eq!(res.per_rank[2], None);
    assert_eq!(res.per_rank[5], None);
}

#[test]
fn icomm_same_group_distinguished_by_generation() {
    let res = Universe::run_default(4, |env| {
        let w = &env.world;
        let group = Group::range(0, 1, 4);
        let c1 = icomm_create_group(w, &group, 5)
            .unwrap()
            .wait_comm()
            .unwrap();
        let c2 = icomm_create_group(&c1, &group, 5)
            .unwrap()
            .wait_comm()
            .unwrap();
        (format!("{}", c1.ctx()), format!("{}", c2.ctx()))
    });
    for (a, b) in res.per_rank {
        assert_ne!(a, b, "same-group creation must bump the generation c");
    }
}

#[test]
fn icomm_two_simultaneous_creations_both_progress() {
    // The §VI selling point: a process can progress several nonblocking
    // communicator creations at once.
    let res = Universe::run_default(8, |env| {
        let w = &env.world;
        // Irregular groups to force the broadcast path; rank 3 is in both.
        let ga = Group::from_ranks(vec![0, 1, 3, 6]);
        let gb = Group::from_ranks(vec![2, 3, 5, 7]);
        let mut pending = Vec::new();
        if ga.contains_global(w.rank()) {
            pending.push((icomm_create_group(w, &ga, 41).unwrap(), 'a'));
        }
        if gb.contains_global(w.rank()) {
            pending.push((icomm_create_group(w, &gb, 43).unwrap(), 'b'));
        }
        let mut out = Vec::new();
        while !pending.is_empty() {
            let mut i = 0;
            while i < pending.len() {
                if pending[i].0.poll().unwrap() {
                    let (mut req, label) = pending.remove(i);
                    let c = req.take().unwrap();
                    out.push((label, c));
                } else {
                    i += 1;
                }
            }
            std::thread::yield_now();
        }
        out.sort_by_key(|(l, _)| *l);
        out.into_iter()
            .map(|(l, c)| {
                let sum = c.allreduce(&[w.rank() as u64], ops::sum::<u64>()).unwrap()[0];
                (l, sum)
            })
            .collect::<Vec<_>>()
    });
    assert_eq!(res.per_rank[0], vec![('a', 1 + 3 + 6)]);
    assert_eq!(res.per_rank[3], vec![('a', 10), ('b', 2 + 3 + 5 + 7)]);
    assert_eq!(res.per_rank[5], vec![('b', 17)]);
}
