//! Sharded-commit oracle tests: the destination-sharded epoch commit
//! (`CommitAlgo::Sharded`, the default) must be **byte-identical** to the
//! single-threaded serial commit (`CommitAlgo::Serial`, the oracle) — on
//! delivery logs, per-rank results, and virtual clocks — for every worker
//! count and every shard cap. Since PR 8 the matrix also crosses the
//! commit **ordering** algorithm: the k-way merge of pre-sorted per-task
//! runs (`SortAlgo::Merge`, the default) against the global
//! `sort_by_key` oracle (`SortAlgo::Sort`). The storms here are built to
//! stress exactly the commit phase: wildcard receives (wake order is
//! observable), colliding tags (several matching streams per mailbox),
//! heavy fan-in (long per-destination segments), and nonblocking
//! collectives (library-internal traffic interleaved with user traffic).

use std::sync::{Arc, Mutex};

use mpisim::nbcoll;
use mpisim::{ops, CommitAlgo, SimConfig, SortAlgo, Src, Time, Transport, Universe};
use proptest::prelude::*;

/// One rank's full observation of a storm run: the exact `(source, tag,
/// value)` sequence its wildcard receives matched, its iallreduce result,
/// and its final virtual clock.
type RankLog = (Vec<(usize, u64, u64)>, u64, Time);

/// Messages rank `r` sends per `(i, k)` step: 4 deterministic targets at
/// offsets {1, 4, 9, 16} with tags colliding in {0, 1, 2}. Every rank's
/// in-degree equals its out-degree, so receive counts are known exactly.
const FANOUT_OFFSETS: [usize; 4] = [1, 4, 9, 16];

fn tag_of(k: usize) -> u64 {
    (k % 3) as u64
}

/// Run the storm and capture every rank's observation.
fn storm_log(
    p: usize,
    per: usize,
    seed: u64,
    workers: usize,
    algo: CommitAlgo,
    sort: SortAlgo,
    shards: usize,
) -> Vec<RankLog> {
    assert!(p > *FANOUT_OFFSETS.iter().max().unwrap());
    type LogStore = Arc<Mutex<Vec<Vec<(usize, u64, u64)>>>>;
    let logs: LogStore = Arc::new(Mutex::new(vec![Vec::new(); p]));
    let logs2 = Arc::clone(&logs);
    let cfg = SimConfig::cooperative()
        .with_seed(seed)
        .with_workers(workers)
        .with_commit_algo(algo)
        .with_sort_algo(sort)
        .with_commit_shards(shards);
    let res = Universe::run(p, cfg, move |env| {
        let w = &env.world;
        let r = w.rank();
        // Fan-out storm with colliding tags.
        for i in 0..per {
            for (k, off) in FANOUT_OFFSETS.iter().enumerate() {
                let dst = (r + off) % p;
                w.send(&[(r * 1000 + i * 10 + k) as u64], dst, tag_of(k))
                    .unwrap();
            }
        }
        // A nonblocking collective runs concurrently with the storm, so
        // library-internal traffic shares the same epoch commits.
        let coll = nbcoll::iallreduce(w, &[r as u64 + 1], 300, ops::sum::<u64>()).unwrap();
        // Wildcard-drain each colliding tag stream: per tag t the rank's
        // in-degree is per * |{k : tag_of(k) == t}| (offsets are distinct
        // and nonzero mod p, so in-degree mirrors out-degree).
        let mut got = Vec::new();
        for t in 0..3u64 {
            let n = per
                * (0..FANOUT_OFFSETS.len())
                    .filter(|&k| tag_of(k) == t)
                    .count();
            for _ in 0..n {
                let (v, st) = w.recv::<u64>(Src::Any, t).unwrap();
                got.push((st.source, t, v[0]));
            }
        }
        let sum = coll.wait_result().unwrap()[0];
        logs2.lock().unwrap()[r] = got;
        sum
    });
    let logs = Arc::try_unwrap(logs).unwrap().into_inner().unwrap();
    logs.into_iter()
        .zip(res.per_rank)
        .zip(res.clocks)
        .map(|((log, sum), clock)| (log, sum, clock))
        .collect()
}

/// Assert the full worker × shard × sort-algorithm matrix reproduces the
/// serial 1-worker `sort_by_key` oracle bit for bit.
fn assert_sharded_matches_serial(p: usize, per: usize, seed: u64, shard_caps: &[usize]) {
    let oracle = storm_log(p, per, seed, 1, CommitAlgo::Serial, SortAlgo::Sort, 0);
    // The serial oracle itself must be worker-invariant (PR 3 property),
    // under both commit orderings (merge added in PR 8).
    for sort in [SortAlgo::Sort, SortAlgo::Merge] {
        let serial8 = storm_log(p, per, seed, 8, CommitAlgo::Serial, sort, 0);
        assert_eq!(
            oracle, serial8,
            "serial commit diverged at 8 workers (sort={sort:?})"
        );
    }
    for &workers in &[1usize, 4, 8] {
        for &shards in shard_caps {
            for sort in [SortAlgo::Sort, SortAlgo::Merge] {
                let got = storm_log(p, per, seed, workers, CommitAlgo::Sharded, sort, shards);
                assert_eq!(
                    oracle, got,
                    "sharded commit diverged (workers={workers}, shards={shards}, sort={sort:?})"
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 3, ..ProptestConfig::default() })]

    // p = 64: dense storms, every shard cap flavour (auto, tiny — forcing
    // many multi-destination shards — and far more shards than
    // destinations, degenerating to one segment each).
    #[test]
    fn sharded_commit_identical_to_serial_p64(
        per in 1usize..4,
        seed in any::<u64>(),
    ) {
        assert_sharded_matches_serial(64, per, seed, &[0, 3, 1000]);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 2, ..ProptestConfig::default() })]

    // p = 1024: the paper-scale regime; auto and forced-wide sharding.
    // per = 2 stages 8192 messages per epoch wave — exactly the publish
    // threshold — so the multi-worker runs exercise the *published*
    // chunked merge round, not just the inline in-place sort.
    #[test]
    fn sharded_commit_identical_to_serial_p1024(seed in any::<u64>()) {
        assert_sharded_matches_serial(1024, 2, seed, &[0, 48]);
    }
}

/// The `MPISIM_COOP_COMMIT*` and `MPISIM_COOP_SORT` knobs must reach the
/// scheduler through `SimConfig::cooperative()` exactly like
/// `MPISIM_COOP_WORKERS` does. Checked in a child process: `set_var` in a
/// threaded test binary is a data race against concurrent env reads, so
/// the parent only *reads* its (unset) environment here and the mutation
/// happens in the child.
#[test]
fn commit_env_knobs_are_honoured() {
    // Only assert the defaults when the suite itself was launched with
    // the knobs unset — running `MPISIM_COOP_COMMIT=serial cargo test`
    // is documented usage and must not fail this test.
    if std::env::var_os("MPISIM_COOP_COMMIT").is_none()
        && std::env::var_os("MPISIM_COOP_COMMIT_SHARDS").is_none()
        && std::env::var_os("MPISIM_COOP_SORT").is_none()
    {
        let cfg = SimConfig::cooperative();
        assert_eq!(cfg.commit_algo, CommitAlgo::Sharded);
        assert_eq!(cfg.coop_commit_shards, 0);
        assert_eq!(cfg.sort_algo, SortAlgo::Merge);
    }
    // Re-run the quickstart-sized probe under the oracle env in a child
    // process and make sure the knobs arrive (the child simply runs any
    // cooperative universe; a bad parse would panic it).
    let exe = std::env::current_exe().unwrap();
    let out = std::process::Command::new(exe)
        .args([
            "child_probe_commit_env",
            "--ignored",
            "--exact",
            "--nocapture",
        ])
        .env("MPISIM_COOP_COMMIT", "Serial")
        .env("MPISIM_COOP_COMMIT_SHARDS", "7")
        .env("MPISIM_COOP_SORT", "Sort")
        .output()
        .expect("spawn child test process");
    assert!(
        out.status.success(),
        "child env probe failed:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
}

/// Child half of `commit_env_knobs_are_honoured` (runs only when invoked
/// with `--ignored` by the parent, with the env vars set).
#[test]
#[ignore = "spawned as a child process by commit_env_knobs_are_honoured"]
fn child_probe_commit_env() {
    let cfg = SimConfig::cooperative();
    assert_eq!(cfg.commit_algo, CommitAlgo::Serial);
    assert_eq!(cfg.coop_commit_shards, 7);
    assert_eq!(cfg.sort_algo, SortAlgo::Sort);
}
