//! Fault-injection determinism matrix: any [`FaultPlan`] — stragglers,
//! crash-stop, message jitter — must leave the cooperative runtime
//! **byte-identical** across worker counts and commit algorithms, because
//! every fault decision is a pure function of `(program, seed,
//! perturbation seed)` and never of scheduling. The storms reuse the
//! sharded-commit oracle harness (wildcard receives, colliding tags,
//! a concurrent nonblocking collective) with a fault plan layered on top;
//! runs with crashes additionally capture the error text of every rank,
//! so the `RoundBlame` diagnostics themselves are checked for
//! worker-invariance.

use std::sync::{Arc, Mutex};

use mpisim::{nbcoll, FaultPlan, Fleet};
use mpisim::{ops, CommitAlgo, SimConfig, SimResult, Src, Time, Transport, Universe};
use proptest::prelude::*;

/// One rank's full observation of a faulted storm: the exact `(source,
/// tag, value)` sequence its wildcard receives matched, its outcome
/// (`ok:<allreduce sum>` or the full error display, blame included), and
/// its final virtual clock.
type RankLog = (Vec<(usize, u64, u64)>, String, Time);

/// Same fan-out shape as the sharded-commit storms: 4 deterministic
/// targets with tags colliding in {0, 1, 2}.
const FANOUT_OFFSETS: [usize; 4] = [1, 4, 9, 16];

fn tag_of(k: usize) -> u64 {
    (k % 3) as u64
}

/// Per-run store for the wildcard delivery logs.
type LogStore = Arc<Mutex<Vec<Vec<(usize, u64, u64)>>>>;

/// The storm program as a `'static` closure, so the same body serves both
/// a solo [`Universe::run`] and a [`Fleet::submit`] batch.
fn storm_program(
    p: usize,
    per: usize,
    logs: LogStore,
) -> impl Fn(mpisim::ProcEnv) -> String + Send + Sync + 'static {
    move |env| {
        let w = &env.world;
        let r = w.rank();
        let body = || -> mpisim::Result<u64> {
            for i in 0..per {
                for (k, off) in FANOUT_OFFSETS.iter().enumerate() {
                    let dst = (r + off) % p;
                    w.send(&[(r * 1000 + i * 10 + k) as u64], dst, tag_of(k))?;
                }
            }
            let coll = nbcoll::iallreduce(w, &[r as u64 + 1], 300, ops::sum::<u64>())?;
            for t in 0..3u64 {
                let n = per
                    * (0..FANOUT_OFFSETS.len())
                        .filter(|&k| tag_of(k) == t)
                        .count();
                for _ in 0..n {
                    let (v, st) = w.recv::<u64>(Src::Any, t)?;
                    logs.lock().unwrap()[r].push((st.source, t, v[0]));
                }
            }
            Ok(coll.wait_result()?[0])
        };
        match body() {
            Ok(sum) => format!("ok:{sum}"),
            Err(e) => format!("{e}"),
        }
    }
}

/// The storm's config under `plan` (worker count comes from the runner —
/// `with_workers` for solo runs, `Fleet::new` for fleet batches).
fn storm_cfg(seed: u64, algo: CommitAlgo, plan: &FaultPlan) -> SimConfig {
    SimConfig::cooperative()
        .with_seed(seed)
        .with_commit_algo(algo)
        .with_faults(plan.clone())
}

/// Zip a run's delivery logs with its outcomes and clocks.
fn zip_logs(logs: &LogStore, res: SimResult<String>) -> Vec<RankLog> {
    let logs = logs.lock().unwrap().clone();
    logs.into_iter()
        .zip(res.per_rank)
        .zip(res.clocks)
        .map(|((log, outcome), clock)| (log, outcome, clock))
        .collect()
}

/// Run the storm solo under `plan` and capture every rank's observation.
/// Ranks that hit a fault-induced error (their own crash, or a stall
/// poisoned by the stagnation detector) record the error display instead
/// of a sum — including the blame text, which must itself be
/// deterministic.
fn faulted_storm_log(
    p: usize,
    per: usize,
    seed: u64,
    plan: &FaultPlan,
    workers: usize,
    algo: CommitAlgo,
) -> Vec<RankLog> {
    assert!(p > *FANOUT_OFFSETS.iter().max().unwrap());
    let logs: LogStore = Arc::new(Mutex::new(vec![Vec::new(); p]));
    let cfg = storm_cfg(seed, algo, plan).with_workers(workers);
    let res = Universe::run(p, cfg, storm_program(p, per, Arc::clone(&logs)));
    zip_logs(&logs, res)
}

/// Assert the worker × commit-algo matrix reproduces the serial 1-worker
/// oracle bit for bit under `plan`. The matrix runs through
/// [`Fleet::submit`] batches — both commit algorithms co-scheduled over
/// one worker pool — so fault injection is additionally checked against
/// fleet multiplexing (faults are per-universe state and must not leak
/// across co-scheduled universes or depend on the pool's interleaving).
fn assert_fault_plan_deterministic(p: usize, per: usize, seed: u64, plan: &FaultPlan) {
    let oracle = faulted_storm_log(p, per, seed, plan, 1, CommitAlgo::Serial);
    for &workers in &[1usize, 4, 8] {
        let fleet = Fleet::new(workers, 2);
        let batch: Vec<_> = [CommitAlgo::Sharded, CommitAlgo::Serial]
            .into_iter()
            .map(|algo| {
                let logs: LogStore = Arc::new(Mutex::new(vec![Vec::new(); p]));
                let handle = fleet.submit(
                    p,
                    storm_cfg(seed, algo, plan),
                    storm_program(p, per, Arc::clone(&logs)),
                );
                (algo, logs, handle)
            })
            .collect();
        for (algo, logs, handle) in batch {
            let got = zip_logs(&logs, handle.join());
            assert_eq!(
                oracle, got,
                "faulted run diverged (workers={workers}, algo={algo:?}, plan={plan:?})"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 3, ..ProptestConfig::default() })]

    // Stragglers + message jitter, no crashes: every rank completes and
    // the full log/clock picture must be worker- and algo-invariant.
    #[test]
    fn slowdown_and_jitter_are_deterministic(
        perturb in any::<u64>(),
        seed in any::<u64>(),
    ) {
        let plan = FaultPlan::default()
            .with_perturb_seed(perturb)
            .with_slowdown(0.3, 4.0)
            .with_jitter(Time::from_micros(2));
        assert_fault_plan_deterministic(24, 2, seed, &plan);
    }

    // Crash-stop: the crashed rank errors immediately, its peers stall
    // and are poisoned by the stagnation detector, and every error text
    // (RoundBlame included) must be identical across the matrix.
    #[test]
    fn crash_stop_is_deterministic(
        victim in 0usize..24,
        seed in any::<u64>(),
    ) {
        let plan = FaultPlan::default()
            .with_perturb_seed(1)
            .with_crash(victim, Time::ZERO);
        assert_fault_plan_deterministic(24, 1, seed, &plan);
    }
}

/// All three fault kinds at once, including a mid-run crash time, on a
/// fixed seed (the proptest matrix above covers the random ones).
#[test]
fn combined_faults_are_deterministic() {
    let plan = FaultPlan::default()
        .with_perturb_seed(42)
        .with_slowdown(0.25, 8.0)
        .with_jitter(Time::from_micros(5))
        .with_crash(7, Time::from_micros(40));
    assert_fault_plan_deterministic(24, 2, 9, &plan);
}

/// A zero-magnitude plan — straggler fraction 0, or factor cap 1.0, or
/// zero jitter — must be **byte-identical** to running with no plan at
/// all: arming the machinery without any fault must not perturb a single
/// clock tick or delivery.
#[test]
fn zero_magnitude_plan_is_byte_identical_to_no_plan() {
    let clean = faulted_storm_log(24, 2, 5, &FaultPlan::default(), 4, CommitAlgo::Sharded);
    let zero_frac = FaultPlan::default()
        .with_perturb_seed(99)
        .with_slowdown(0.0, 8.0)
        .with_jitter(Time::ZERO);
    let unit_factor = FaultPlan::default()
        .with_perturb_seed(7)
        .with_slowdown(0.9, 1.0);
    for plan in [zero_frac, unit_factor] {
        let got = faulted_storm_log(24, 2, 5, &plan, 4, CommitAlgo::Sharded);
        assert_eq!(
            clean, got,
            "zero-magnitude plan perturbed the run: {plan:?}"
        );
    }
}

/// Sanity check that the injection is not a no-op: a real slowdown must
/// move virtual clocks relative to the clean run.
#[test]
fn nonzero_slowdown_actually_perturbs_clocks() {
    let clean = faulted_storm_log(24, 1, 5, &FaultPlan::default(), 4, CommitAlgo::Sharded);
    let plan = FaultPlan::default()
        .with_perturb_seed(3)
        .with_slowdown(1.0, 8.0);
    let slowed = faulted_storm_log(24, 1, 5, &plan, 4, CommitAlgo::Sharded);
    let clean_clocks: Vec<Time> = clean.iter().map(|l| l.2).collect();
    let slowed_clocks: Vec<Time> = slowed.iter().map(|l| l.2).collect();
    assert_ne!(clean_clocks, slowed_clocks, "slowdown plan had no effect");
}

/// The `MPISIM_FAULT_*` knobs must reach `SimConfig::cooperative()`
/// exactly like the `MPISIM_COOP_*` family. Checked in a child process:
/// `set_var` in a threaded test binary is a data race against concurrent
/// env reads, so the parent only *reads* its (unset) environment and the
/// mutation happens in the child.
#[test]
fn fault_env_knobs_are_honoured() {
    if std::env::var_os("MPISIM_FAULT_SEED").is_none()
        && std::env::var_os("MPISIM_FAULT_SLOW").is_none()
        && std::env::var_os("MPISIM_FAULT_CRASH").is_none()
        && std::env::var_os("MPISIM_FAULT_JITTER").is_none()
    {
        let cfg = SimConfig::cooperative();
        assert!(cfg.faults.is_noop(), "default faults must be a no-op");
    }
    let exe = std::env::current_exe().unwrap();
    let out = std::process::Command::new(exe)
        .args([
            "child_probe_fault_env",
            "--ignored",
            "--exact",
            "--nocapture",
        ])
        .env("MPISIM_FAULT_SEED", "9")
        .env("MPISIM_FAULT_SLOW", "0.25,4")
        .env("MPISIM_FAULT_CRASH", "3@5us,1@2ms")
        .env("MPISIM_FAULT_JITTER", "20us")
        .output()
        .expect("spawn child test process");
    assert!(
        out.status.success(),
        "child env probe failed:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
}

/// Child half of `fault_env_knobs_are_honoured` (runs only when invoked
/// with `--ignored` by the parent, with the env vars set).
#[test]
#[ignore = "spawned as a child process by fault_env_knobs_are_honoured"]
fn child_probe_fault_env() {
    let cfg = SimConfig::cooperative();
    let expect = FaultPlan::default()
        .with_perturb_seed(9)
        .with_slowdown(0.25, 4.0)
        .with_crash(3, Time::from_micros(5))
        .with_crash(1, Time::from_millis(2))
        .with_jitter(Time::from_micros(20));
    assert_eq!(cfg.faults, expect);
}
