//! Cooperative-backend semantics: the scheduler must preserve every MPI
//! behaviour the thread backend exhibits, detect deadlocks exactly, and
//! deliver messages in an order that is a pure function of `(program,
//! seed)` — **for every worker count**: the epoch discipline commits
//! deliveries in global virtual-time order, so `coop_workers ∈ {1, 2, 4,
//! 8}` must produce bit-identical delivery logs, clocks, and sort outputs.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use mpisim::nbcoll;
use mpisim::{coll, ops, MpiError, SimConfig, Src, Time, Transport, Universe};
use proptest::prelude::*;

#[test]
fn coop_message_storm_all_to_one() {
    // Every rank floods rank 0 with small messages; wildcard receives must
    // drain them all. Under the cooperative backend each arriving message
    // wakes rank 0 exactly when a match exists.
    let p = 64;
    let per = 32;
    let res = Universe::run(p, SimConfig::cooperative(), move |env| {
        let w = &env.world;
        if w.rank() == 0 {
            let mut total = 0u64;
            for _ in 0..(p - 1) * per {
                let (v, _) = w.recv::<u64>(Src::Any, 9).unwrap();
                total += v[0];
            }
            total
        } else {
            for i in 0..per {
                w.send(&[i as u64], 0, 9).unwrap();
            }
            0
        }
    });
    let expected: u64 = (0..per as u64).sum::<u64>() * (p as u64 - 1);
    assert_eq!(res.per_rank[0], expected);
}

#[test]
fn coop_nonblocking_collectives_progress() {
    // Nonblocking machines poll with `mpisim::yield_now()`, which under the
    // scheduler must hand the worker to other ranks instead of spinning.
    let res = Universe::run(12, SimConfig::cooperative(), |env| {
        let w = &env.world;
        let mut reqs: Vec<nbcoll::Request> = (0..4u64)
            .map(|k| {
                nbcoll::Request::new(
                    nbcoll::iallreduce(w, &[k + 1], 200 + 2 * k, ops::sum::<u64>()).unwrap(),
                )
            })
            .collect();
        nbcoll::waitall(&mut reqs).unwrap();
        true
    });
    assert!(res.per_rank.iter().all(|&ok| ok));
}

#[test]
fn coop_split_and_vendor_collectives() {
    // Native MPI_Comm_split (allgather + mask agreement) under the
    // scheduler: context agreement blocks and wakes across sub-groups.
    let res = Universe::run(9, SimConfig::cooperative(), |env| {
        let w = &env.world;
        let c = w.split((w.rank() % 3) as u64, w.rank() as u64).unwrap();
        c.allreduce(&[1u64], ops::sum::<u64>()).unwrap()[0]
    });
    assert_eq!(res.per_rank, vec![3, 3, 3, 3, 3, 3, 3, 3, 3]);
}

#[test]
fn coop_deadlock_is_poisoned_not_hung() {
    // Two ranks each receive from the other before sending: a textbook
    // deadlock. The cooperative detector must fire immediately (no
    // wall-clock wait) and surface MpiError::Timeout on every rank.
    let t0 = std::time::Instant::now();
    let res = Universe::run(2, SimConfig::cooperative(), |env| {
        let w = &env.world;
        let other = 1 - w.rank();
        w.recv::<u64>(Src::Rank(other), 1).err().map(|e| match e {
            MpiError::Timeout { rank, .. } => rank,
            other => panic!("expected Timeout, got {other:?}"),
        })
    });
    assert_eq!(res.per_rank, vec![Some(0), Some(1)]);
    // Exact detection: far below the 30 s thread-backend timeout.
    assert!(t0.elapsed() < std::time::Duration::from_secs(5));
}

#[test]
fn coop_clock_skew_barrier_still_correct() {
    let res = Universe::run(9, SimConfig::cooperative(), |env| {
        let w = &env.world;
        env.state()
            .charge(Time::from_millis(w.rank() as u64 * w.rank() as u64));
        let s = coll::scan(w, &[w.rank() as u64], 7, ops::sum::<u64>()).unwrap()[0];
        coll::barrier(w, 9).unwrap();
        (s, env.now())
    });
    for (r, (s, t)) in res.per_rank.iter().enumerate() {
        let expect: u64 = (0..=r as u64).sum();
        assert_eq!(*s, expect);
        assert!(*t >= Time::from_millis(64), "rank {r} left barrier early");
    }
}

#[test]
fn coop_yield_fairness_under_polling() {
    // A rank that busy-polls (try_recv + yield) must not starve the rank
    // it is waiting on when both share the single worker.
    let res = Universe::run(2, SimConfig::cooperative(), |env| {
        let w = &env.world;
        if w.rank() == 0 {
            let mut polls = 0u64;
            loop {
                if let Some((v, _)) = w.try_recv::<u64>(Src::Rank(1), 5).unwrap() {
                    return (v[0], polls);
                }
                polls += 1;
                mpisim::yield_now();
            }
        } else {
            // Let rank 0 poll a few times before satisfying it.
            for _ in 0..3 {
                mpisim::yield_now();
            }
            w.send(&[42u64], 0, 5).unwrap();
            (0, 0)
        }
    });
    assert_eq!(res.per_rank[0].0, 42);
}

/// Per-rank storm observation: the sequence of `(source, value)` pairs
/// the rank's wildcard receives matched, plus its final virtual clock.
type DeliveryLog = (Vec<(usize, u64)>, Time);

/// Observed delivery log of one run, one entry per rank.
fn storm_delivery_log(p: usize, per: usize, seed: u64, workers: usize) -> Vec<DeliveryLog> {
    type LogStore = Arc<Mutex<Vec<Vec<(usize, u64)>>>>;
    let logs: LogStore = Arc::new(Mutex::new(vec![Vec::new(); p]));
    let logs2 = Arc::clone(&logs);
    let cfg = SimConfig::cooperative()
        .with_seed(seed)
        .with_workers(workers);
    let res = Universe::run(p, cfg, move |env| {
        let w = &env.world;
        // All-to-all storm: every rank sends `per` tagged messages to
        // every other rank, then wildcard-receives its share.
        for i in 0..per {
            for dst in 0..w.size() {
                if dst != w.rank() {
                    w.send(&[(w.rank() * 1000 + i) as u64], dst, 7).unwrap();
                }
            }
        }
        let mut got = Vec::new();
        for _ in 0..(w.size() - 1) * per {
            let (v, st) = w.recv::<u64>(Src::Any, 7).unwrap();
            got.push((st.source, v[0]));
        }
        logs2.lock().unwrap()[w.rank()] = got;
        env.now()
    });
    let logs = Arc::try_unwrap(logs).unwrap().into_inner().unwrap();
    logs.into_iter().zip(res.clocks).collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    // The schedule is a pure function of the seed: two runs with the same
    // seed deliver every message to every rank in the identical order (and
    // reach identical virtual clocks).
    #[test]
    fn same_seed_same_delivery_order(
        p in 2usize..10,
        per in 1usize..5,
        seed in any::<u64>(),
    ) {
        let a = storm_delivery_log(p, per, seed, 1);
        let b = storm_delivery_log(p, per, seed, 1);
        prop_assert_eq!(a, b);
    }

    // The epoch discipline makes the worker count irrelevant to the
    // simulation: wildcard delivery order, per-rank clocks — everything —
    // must be bit-identical across coop_workers ∈ {1, 2, 4, 8}.
    #[test]
    fn any_worker_count_same_delivery_order(
        p in 2usize..10,
        per in 1usize..4,
        seed in any::<u64>(),
    ) {
        let serial = storm_delivery_log(p, per, seed, 1);
        for workers in [2usize, 4, 8] {
            let parallel = storm_delivery_log(p, per, seed, workers);
            prop_assert_eq!(&serial, &parallel, "workers = {}", workers);
        }
    }

    // Cooperative and thread backends agree on all value-level results
    // for deterministic programs (delivery order may differ; sums do not).
    #[test]
    fn coop_matches_threads_on_values(
        p in 1usize..10,
        seed in any::<u64>(),
    ) {
        let run = |cfg: SimConfig| {
            Universe::run(p, cfg.with_seed(seed), |env| {
                let w = &env.world;
                let s = coll::allreduce(w, &[w.rank() as u64 + 1], 5, ops::sum::<u64>())
                    .unwrap()[0];
                let sc = coll::scan(w, &[1u64], 7, ops::sum::<u64>()).unwrap()[0];
                (s, sc)
            })
            .per_rank
        };
        prop_assert_eq!(run(SimConfig::default()), run(SimConfig::cooperative()));
    }
}

#[test]
fn coop_many_sequential_universes() {
    // Scheduler state must not leak between runs (fresh slots, stacks,
    // thread-local CURRENT restored).
    let launches = Arc::new(AtomicUsize::new(0));
    for round in 0..10u64 {
        let launches = Arc::clone(&launches);
        let res = Universe::run(8, SimConfig::cooperative().with_seed(round), move |env| {
            launches.fetch_add(1, Ordering::Relaxed);
            let w = &env.world;
            coll::allreduce(w, &[round], 5, ops::sum::<u64>()).unwrap()[0]
        });
        assert!(res.per_rank.iter().all(|&v| v == 8 * round));
    }
    assert_eq!(launches.load(Ordering::Relaxed), 80);
}
