//! Property-based tests: every collective must agree with its sequential
//! reference for arbitrary process counts, payload lengths, and values —
//! including the large-input algorithms and the nonblocking machines.

use mpisim::nbcoll::{self, Progress};
use mpisim::{coll, coll_large, ops, SimConfig, Universe};
use proptest::prelude::*;

fn universe_inputs(p: usize, len: usize, seed: u64) -> Vec<Vec<u64>> {
    (0..p)
        .map(|r| {
            let mut s = seed.wrapping_add(r as u64).wrapping_mul(0x2545F4914F6CDD1D) | 1;
            (0..len)
                .map(|_| {
                    s ^= s << 13;
                    s ^= s >> 7;
                    s ^= s << 17;
                    s % 1_000_000 // keep sums far from overflow
                })
                .collect()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 20, ..ProptestConfig::default() })]

    #[test]
    fn blocking_collectives_match_reference(
        p in 1usize..12,
        len in 1usize..20,
        root_sel in 0usize..12,
        seed in any::<u64>(),
    ) {
        let root = root_sel % p;
        let inputs = universe_inputs(p, len, seed);
        let expected_sum: Vec<u64> = (0..len)
            .map(|i| inputs.iter().map(|v| v[i]).sum())
            .collect();
        let expected_max: Vec<u64> = (0..len)
            .map(|i| inputs.iter().map(|v| v[i]).max().unwrap())
            .collect();
        let inputs2 = inputs.clone();
        let res = Universe::run(p, SimConfig::default().with_seed(seed), move |env| {
            let w = &env.world;
            use mpisim::Transport;
            let mine = inputs2[w.rank()].clone();
            let red = coll::reduce(w, &mine, root, 3, ops::sum::<u64>()).unwrap();
            let all = coll::allreduce(w, &mine, 5, ops::max::<u64>()).unwrap();
            let sc = coll::scan(w, &mine, 7, ops::sum::<u64>()).unwrap();
            let ex = coll::exscan(w, &mine, 9, ops::sum::<u64>()).unwrap();
            let mut bc = if w.rank() == root { mine.clone() } else { Default::default() };
            coll::bcast(w, &mut bc, root, 11).unwrap();
            (red, all, sc, ex, bc)
        });
        for (r, (red, all, sc, ex, bc)) in res.per_rank.into_iter().enumerate() {
            if r == root {
                prop_assert_eq!(red.clone(), Some(expected_sum.clone()));
            } else {
                prop_assert_eq!(red.clone(), None);
            }
            prop_assert_eq!(all, expected_max.clone());
            let pre_sum: Vec<u64> = (0..len)
                .map(|i| inputs[..=r].iter().map(|v| v[i]).sum())
                .collect();
            prop_assert_eq!(sc, pre_sum.clone());
            if r == 0 {
                prop_assert_eq!(ex.clone(), None);
            } else {
                let excl: Vec<u64> = (0..len)
                    .map(|i| inputs[..r].iter().map(|v| v[i]).sum())
                    .collect();
                prop_assert_eq!(ex.clone(), Some(excl));
            }
            prop_assert_eq!(bc, inputs[root].clone());
        }
    }

    #[test]
    fn nonblocking_matches_blocking(
        p in 1usize..10,
        len in 1usize..16,
        seed in any::<u64>(),
    ) {
        let inputs = universe_inputs(p, len, seed);
        let inputs2 = inputs.clone();
        let res = Universe::run(p, SimConfig::default().with_seed(seed), move |env| {
            let w = &env.world;
            use mpisim::Transport;
            let mine = inputs2[w.rank()].clone();
            let mut a = nbcoll::iallreduce(w, &mine, 101, ops::sum::<u64>()).unwrap();
            let mut s = nbcoll::iscan(w, &mine, 103, ops::sum::<u64>()).unwrap();
            loop {
                let da = a.poll().unwrap();
                let ds = s.poll().unwrap();
                if da && ds { break; }
                std::thread::yield_now();
            }
            (a.result().unwrap().to_vec(), s.inclusive().unwrap().to_vec())
        });
        let expected_sum: Vec<u64> = (0..len)
            .map(|i| inputs.iter().map(|v| v[i]).sum())
            .collect();
        for (r, (all, sc)) in res.per_rank.into_iter().enumerate() {
            prop_assert_eq!(all, expected_sum.clone());
            let pre: Vec<u64> = (0..len)
                .map(|i| inputs[..=r].iter().map(|v| v[i]).sum())
                .collect();
            prop_assert_eq!(sc, pre);
        }
    }

    #[test]
    fn large_input_algorithms_match_binomial(
        p in 2usize..10,
        len_mul in 1usize..6,
        seed in any::<u64>(),
    ) {
        let len = p * len_mul + 3;
        let inputs = universe_inputs(p, len, seed);
        let inputs2 = inputs.clone();
        let res = Universe::run(p, SimConfig::default().with_seed(seed), move |env| {
            let w = &env.world;
            use mpisim::Transport;
            let mine = inputs2[w.rank()].clone();
            let mut b = if w.rank() == 0 { mine.clone() } else { Default::default() };
            coll_large::bcast_large(w, &mut b, 0, 701).unwrap();
            let r = coll_large::reduce_auto(w, &mine, 0, 711, ops::sum::<u64>()).unwrap();
            (b, r)
        });
        let expected_sum: Vec<u64> = (0..len)
            .map(|i| inputs.iter().map(|v| v[i]).sum())
            .collect();
        for (r, (b, red)) in res.per_rank.into_iter().enumerate() {
            prop_assert_eq!(b, inputs[0].clone());
            if r == 0 {
                prop_assert_eq!(red, Some(expected_sum.clone()));
            }
        }
    }

    #[test]
    fn gatherv_roundtrips_ragged_contributions(
        p in 1usize..10,
        seed in any::<u64>(),
        root_sel in 0usize..10,
    ) {
        let root = root_sel % p;
        let res = Universe::run(p, SimConfig::default().with_seed(seed), move |env| {
            let w = &env.world;
            use mpisim::Transport;
            let mine: Vec<u64> = (0..(w.rank() * 3) % 7).map(|i| (w.rank() * 100 + i) as u64).collect();
            coll::gatherv(w, mine, root, 21).unwrap()
        });
        let got = res.per_rank[root].as_ref().unwrap();
        for (r, v) in got.iter().enumerate() {
            let expect: Vec<u64> = (0..(r * 3) % 7).map(|i| (r * 100 + i) as u64).collect();
            prop_assert_eq!(v.clone(), expect);
        }
    }
}

/// Same seed, same configuration — identical results and virtual clocks.
#[test]
fn simulation_is_reproducible_for_deterministic_programs() {
    let run = || {
        let res = Universe::run(6, SimConfig::default().with_seed(99), |env| {
            let w = &env.world;
            use mpisim::Transport;
            // Deterministic communication pattern (no wildcards).
            let mine = vec![w.rank() as u64; 10];
            let s = coll::scan(w, &mine, 3, ops::sum::<u64>()).unwrap();
            let a = coll::allreduce(w, &s, 5, ops::max::<u64>()).unwrap();
            (a, env.now())
        });
        (res.per_rank, res.clocks)
    };
    let (a1, c1) = run();
    let (a2, c2) = run();
    assert_eq!(a1, a2);
    assert_eq!(c1, c2, "virtual clocks must be reproducible");
}
