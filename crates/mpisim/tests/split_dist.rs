//! Distributed-sort `MPI_Comm_split` vs the legacy all-gather oracle.
//!
//! The distributed algorithm (`SplitAlgo::DistributedSort`, the default)
//! must produce *identical* `(color → ordered member list)` tables, new
//! ranks, group sizes, and context IDs as the textbook all-gather split it
//! replaces — for random colors, random (colliding) keys, and
//! `MPI_UNDEFINED` ranks, on both the thread and the cooperative backend,
//! and for any cooperative worker count.

use proptest::prelude::*;

use mpisim::{Backend, SimConfig, SplitAlgo, Transport, Universe};

/// What a rank observes about its new communicator: `(new_rank, size,
/// context id, ordered global member list)`; `None` for `MPI_UNDEFINED`.
type SplitView = Option<(usize, usize, String, Vec<usize>)>;

/// Deterministic per-rank `(color, key)` assignment: `None` color with
/// probability ~1/8, colors from `0..colors_max`, keys from a small range
/// so ties exercise the rank tie-breaker.
fn assignment(p: usize, colors_max: u64, seed: u64) -> Vec<(Option<u64>, u64)> {
    (0..p)
        .map(|r| {
            let mut s = seed
                .wrapping_add(r as u64)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                | 1;
            s ^= s >> 31;
            s = s.wrapping_mul(0xBF58_476D_1CE4_E5B9);
            s ^= s >> 29;
            let color = if s.is_multiple_of(8) {
                None
            } else {
                Some((s >> 3) % colors_max)
            };
            let key = (s >> 17) % 4;
            (color, key)
        })
        .collect()
}

fn split_tables(
    p: usize,
    cfg: SimConfig,
    assign: &[(Option<u64>, u64)],
) -> (Vec<SplitView>, Vec<mpisim::Time>) {
    let assign = assign.to_vec();
    let res = Universe::run(p, cfg, move |env| {
        let w = &env.world;
        let (color, key) = assign[w.rank()];
        w.split_with(color, key).unwrap().map(|c| {
            (
                c.rank(),
                c.size(),
                format!("{}", c.ctx()),
                c.group().iter_globals().collect::<Vec<_>>(),
            )
        })
    });
    (res.per_rank, res.clocks)
}

/// Run one assignment under every backend × algorithm combination and
/// assert table equality plus worker-count determinism.
fn check_case(p: usize, colors_max: u64, seed: u64, backends: &[SimConfig]) {
    let assign = assignment(p, colors_max, seed);
    let mut oracle: Option<Vec<SplitView>> = None;
    for cfg in backends {
        let (dist, dist_clocks) = split_tables(p, cfg.clone().with_seed(seed), &assign);
        let (gath, _) = split_tables(
            p,
            cfg.clone()
                .with_seed(seed)
                .with_split_algo(SplitAlgo::Allgather),
            &assign,
        );
        assert_eq!(
            dist, gath,
            "distributed split must equal the all-gather oracle (p={p} seed={seed})"
        );
        // Every backend/worker combination agrees on the tables too.
        match &oracle {
            None => oracle = Some(dist),
            Some(o) => assert_eq!(
                &dist, o,
                "tables must not depend on backend or worker count (p={p} seed={seed})"
            ),
        }
        // Virtual time of the distributed run is a pure function of the
        // program for cooperative runs at any worker count.
        if cfg.backend == Backend::Cooperative {
            let (_, again) = split_tables(p, cfg.clone().with_seed(seed), &assign);
            assert_eq!(dist_clocks, again, "cooperative clocks must be stable");
        }
    }
}

fn backends() -> Vec<SimConfig> {
    vec![
        SimConfig::default(),
        SimConfig::default()
            .with_backend(Backend::Cooperative)
            .with_workers(1),
        SimConfig::default()
            .with_backend(Backend::Cooperative)
            .with_workers(4),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    // The satellite oracle at the small and medium scales: p = 7 (odd,
    // partial buckets) and p = 64.
    #[test]
    fn distributed_split_matches_allgather_oracle(
        colors_max in 1u64..6,
        seed in any::<u64>(),
    ) {
        for p in [7usize, 64] {
            check_case(p, colors_max, seed, &backends());
        }
    }
}

/// The large point of the oracle sweep: p = 1024 under both backends and
/// 1 and 4 cooperative workers (fixed seeds — each case spawns six
/// thousand-rank universes, so the sweep stays out of the proptest loop).
#[test]
fn distributed_split_matches_oracle_at_1024() {
    for seed in [3u64, 0xA5A5_5A5A] {
        check_case(1024, 5, seed, &backends());
    }
}

/// `MPI_UNDEFINED` everywhere: both algorithms must return `None` on every
/// rank without claiming a context ID.
#[test]
fn all_undefined_yields_no_communicator() {
    for algo in [SplitAlgo::DistributedSort, SplitAlgo::Allgather] {
        let res = Universe::run(5, SimConfig::default().with_split_algo(algo), |env| {
            env.world.split_with(None, 7).unwrap().is_none()
        });
        assert!(res.per_rank.into_iter().all(|b| b), "algo {algo:?}");
    }
}

/// Key collisions fall back to parent-rank order — the MPI-specified tie
/// break — identically under both algorithms.
#[test]
fn equal_keys_break_ties_by_parent_rank() {
    for algo in [SplitAlgo::DistributedSort, SplitAlgo::Allgather] {
        let res = Universe::run(8, SimConfig::default().with_split_algo(algo), |env| {
            let w = &env.world;
            let c = w.split(0, 42).unwrap();
            (c.rank(), c.group().iter_globals().collect::<Vec<_>>())
        });
        for (r, (nr, members)) in res.per_rank.into_iter().enumerate() {
            assert_eq!(nr, r, "algo {algo:?}");
            assert_eq!(members, (0..8).collect::<Vec<_>>(), "algo {algo:?}");
        }
    }
}
