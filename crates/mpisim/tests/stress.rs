//! Stress tests: many ranks, contended mailboxes, message storms, and
//! adversarial polling patterns.

use std::sync::Arc;

use mpisim::mailbox::Mailbox;
use mpisim::msg::{ContextId, MatchPattern, Message, SrcFilter};
use mpisim::nbcoll;
use mpisim::{coll, ops, CommitAlgo, SimConfig, Src, Time, Transport, Universe};

#[test]
fn mailbox_concurrent_producers_and_consumer() {
    // 8 producer threads push 500 messages each; one consumer claims them
    // all with per-source FIFO intact.
    let mb = Arc::new(Mailbox::new());
    let producers: Vec<_> = (0..8)
        .map(|src| {
            let mb = Arc::clone(&mb);
            std::thread::spawn(move || {
                for i in 0..500u64 {
                    mb.push(Message::new::<u64>(
                        src,
                        1,
                        ContextId::WORLD,
                        vec![i],
                        Time::ZERO,
                        Time(i),
                    ));
                }
            })
        })
        .collect();
    for h in producers {
        h.join().unwrap();
    }
    // Drain per source, checking FIFO.
    for src in 0..8 {
        let pat = MatchPattern {
            ctx: ContextId::WORLD,
            src: SrcFilter::Exact(src),
            tag: 1,
        };
        for expect in 0..500u64 {
            let m = mb.try_claim(&pat).expect("message present");
            let (v, _) = m.take::<u64>().unwrap();
            assert_eq!(v[0], expect, "FIFO broken for src {src}");
        }
    }
    assert!(mb.is_empty());
}

#[test]
fn many_ranks_barrier_and_reduce() {
    // 512 simulated ranks: spawn, barrier, allreduce, verify.
    let p = 512;
    let res = Universe::run_default(p, move |env| {
        let w = &env.world;
        coll::barrier(w, 3).unwrap();
        coll::allreduce(w, &[1u64], 5, ops::sum::<u64>()).unwrap()[0]
    });
    assert!(res.per_rank.iter().all(|&s| s == p as u64));
    // Sanity on the model: the barrier + allreduce should cost O(log p)·α,
    // comfortably under one millisecond of virtual time.
    assert!(res.max_time() < Time::from_millis(2));
}

#[test]
fn message_storm_all_to_one() {
    // Every rank floods rank 0 with small messages; wildcard receives must
    // drain them all without loss (the min-arrival matching is exercised
    // under a large backlog).
    let p = 32;
    let per = 64;
    let res = Universe::run_default(p, move |env| {
        let w = &env.world;
        if w.rank() == 0 {
            let mut total = 0u64;
            for _ in 0..(p - 1) * per {
                let (v, _) = w.recv::<u64>(Src::Any, 9).unwrap();
                total += v[0];
            }
            total
        } else {
            for i in 0..per {
                w.send(&[i as u64], 0, 9).unwrap();
            }
            0
        }
    });
    let expected: u64 = (0..per as u64).sum::<u64>() * (p as u64 - 1);
    assert_eq!(res.per_rank[0], expected);
}

#[test]
fn interleaved_nonblocking_storm() {
    // Every rank runs 8 nonblocking collectives simultaneously with
    // distinct tags and polls them in a rotating order — an adversarial
    // schedule for the state machines.
    let res = Universe::run_default(12, |env| {
        let w = &env.world;
        let mut reqs: Vec<nbcoll::Request> = (0..8u64)
            .map(|k| {
                nbcoll::Request::new(
                    nbcoll::iallreduce(w, &[k + 1], 200 + 2 * k, ops::sum::<u64>()).unwrap(),
                )
            })
            .collect();
        let mut spin = 0usize;
        loop {
            let mut all = true;
            for i in 0..reqs.len() {
                let idx = (i + spin) % reqs.len();
                all &= reqs[idx].test().unwrap();
            }
            if all {
                break;
            }
            spin += 1;
            std::thread::yield_now();
        }
        true
    });
    assert!(res.per_rank.iter().all(|&ok| ok));
}

#[test]
fn repeated_universes_do_not_leak_state() {
    // Spinning universes up and down in a loop must stay correct (fresh
    // mailboxes, fresh context pools, fresh clocks).
    for round in 0..20 {
        let res = Universe::run(4, SimConfig::default().with_seed(round), move |env| {
            let w = &env.world;
            let c = w
                .split(u64::from(w.rank() % 2 == 0), w.rank() as u64)
                .unwrap();
            c.allreduce(&[round], ops::sum::<u64>()).unwrap()[0]
        });
        assert!(res.per_rank.iter().all(|&v| v == 2 * round));
    }
}

/// Order-sensitive FNV-style fold: two runs produce the same hash iff
/// they observed the identical delivery sequence.
fn fold(acc: u64, x: u64) -> u64 {
    (acc ^ x).wrapping_mul(0x100000001b3)
}

#[test]
fn commit_fan_in_all_to_one_4096() {
    // Every rank floods rank 0: the epoch commit carries ~16k entries in
    // ONE destination segment — the degenerate shape where sharding can't
    // parallelise (a single mailbox must be filled in order) and must
    // fall back to an in-order push without losing determinism. This is
    // exactly the fan-in the paper's 2^15-rank MPI_Comm_split produces at
    // its gather roots.
    let p = 1 << 12;
    let per = 4;
    let run = |algo: CommitAlgo, workers: usize| {
        let cfg = SimConfig::cooperative()
            .with_commit_algo(algo)
            .with_workers(workers);
        let res = Universe::run(p, cfg, move |env| {
            let w = &env.world;
            if w.rank() == 0 {
                let mut acc = 0xcbf29ce484222325u64;
                for _ in 0..(p - 1) * per {
                    let (v, st) = w.recv::<u64>(Src::Any, 9).unwrap();
                    acc = fold(acc, (st.source as u64) << 32 | v[0]);
                }
                acc
            } else {
                for i in 0..per {
                    w.send(&[(w.rank() * per + i) as u64], 0, 9).unwrap();
                }
                0
            }
        });
        (res.per_rank[0], res.clocks)
    };
    let oracle = run(CommitAlgo::Serial, 1);
    for workers in [1usize, 4, 8] {
        assert_eq!(
            oracle,
            run(CommitAlgo::Sharded, workers),
            "all-to-one fan-in diverged at {workers} workers"
        );
    }
}

#[test]
fn commit_fan_in_leader_gather_4096() {
    // √p-leader gather storm: 64 leaders each drain their 64-member block
    // (two messages per member, wildcard), then report to rank 0 — 64
    // concurrent fan-in hotspots plus one final fan-in, so the commit has
    // many per-destination segments and genuinely shards. The commit
    // phase dominates: virtually all virtual time is message delivery.
    let p = 1 << 12;
    let b = 64; // block size = leader count = √p
    let run = |algo: CommitAlgo, workers: usize| {
        let cfg = SimConfig::cooperative()
            .with_commit_algo(algo)
            .with_workers(workers);
        let res = Universe::run(p, cfg, move |env| {
            let w = &env.world;
            let r = w.rank();
            let leader = (r / b) * b;
            if r != leader {
                w.send(&[r as u64], leader, 5).unwrap();
                w.send(&[(r * r) as u64], leader, 5).unwrap();
                return 0;
            }
            // Leader: drain the block's storm in arrival order.
            let mut acc = 0xcbf29ce484222325u64;
            for _ in 0..(b - 1) * 2 {
                let (v, st) = w.recv::<u64>(Src::Any, 5).unwrap();
                acc = fold(acc, (st.source as u64) << 32 | v[0]);
            }
            if r != 0 {
                w.send(&[acc], 0, 6).unwrap();
                acc
            } else {
                for _ in 0..(p / b - 1) {
                    let (v, st) = w.recv::<u64>(Src::Any, 6).unwrap();
                    acc = fold(acc, st.source as u64 ^ v[0]);
                }
                acc
            }
        });
        (res.per_rank, res.clocks)
    };
    let oracle = run(CommitAlgo::Serial, 1);
    for workers in [1usize, 4, 8] {
        assert_eq!(
            oracle,
            run(CommitAlgo::Sharded, workers),
            "leader-gather fan-in diverged at {workers} workers"
        );
    }
}

#[test]
fn deep_nonuniform_clock_skew_still_correct() {
    // Ranks with wildly different virtual clocks keep exchanging; results
    // must be value-correct and the makespan must be governed by the
    // slowest participant.
    let res = Universe::run_default(9, |env| {
        let w = &env.world;
        env.state()
            .charge(Time::from_millis(w.rank() as u64 * w.rank() as u64));
        let s = coll::scan(w, &[w.rank() as u64], 7, ops::sum::<u64>()).unwrap()[0];
        coll::barrier(w, 9).unwrap();
        (s, env.now())
    });
    for (r, (s, t)) in res.per_rank.iter().enumerate() {
        let expect: u64 = (0..=r as u64).sum();
        assert_eq!(*s, expect);
        assert!(*t >= Time::from_millis(64), "rank {r} left barrier early");
    }
}
