//! Blocking collectives vs sequential references, across awkward sizes.

use mpisim::coll;
use mpisim::ops;
use mpisim::{SimConfig, Src, Transport, Universe};

/// Process counts covering powers of two, odd sizes, and 1.
const SIZES: &[usize] = &[1, 2, 3, 4, 5, 7, 8, 13, 16];

fn local_data(rank: usize, n: usize) -> Vec<u64> {
    (0..n).map(|i| (rank * 1000 + i) as u64).collect()
}

#[test]
fn bcast_all_roots() {
    for &p in SIZES {
        for root in [0, p / 2, p - 1] {
            let res = Universe::run_default(p, |env| {
                let w = &env.world;
                let mut data = if w.rank() == root {
                    vec![42u64, 43, 44]
                } else {
                    Vec::new()
                };
                coll::bcast(w, &mut data, root, 7).unwrap();
                data
            });
            for v in res.per_rank {
                assert_eq!(v, vec![42, 43, 44], "p={p} root={root}");
            }
        }
    }
}

#[test]
fn reduce_sum_matches_reference() {
    for &p in SIZES {
        let n = 5;
        let root = p - 1;
        let res = Universe::run_default(p, |env| {
            let w = &env.world;
            coll::reduce(w, &local_data(w.rank(), n), root, 9, ops::sum::<u64>()).unwrap()
        });
        let expected: Vec<u64> = (0..n)
            .map(|i| (0..p).map(|r| (r * 1000 + i) as u64).sum())
            .collect();
        for (r, v) in res.per_rank.into_iter().enumerate() {
            if r == root {
                assert_eq!(v, Some(expected.clone()), "p={p}");
            } else {
                assert_eq!(v, None);
            }
        }
    }
}

#[test]
fn allreduce_min_max() {
    for &p in SIZES {
        let res = Universe::run_default(p, |env| {
            let w = &env.world;
            let mine = [w.rank() as i64 - 3, -(w.rank() as i64)];
            let mn = coll::allreduce(w, &mine, 11, ops::min::<i64>()).unwrap();
            let mx = coll::allreduce(w, &mine, 13, ops::max::<i64>()).unwrap();
            (mn, mx)
        });
        for (mn, mx) in res.per_rank {
            assert_eq!(mn, vec![-3, -(p as i64 - 1)]);
            assert_eq!(mx, vec![p as i64 - 4, 0]);
        }
    }
}

#[test]
fn scan_inclusive_prefix() {
    for &p in SIZES {
        let res = Universe::run_default(p, |env| {
            let w = &env.world;
            coll::scan(w, &[w.rank() as u64 + 1], 5, ops::sum::<u64>()).unwrap()
        });
        for (r, v) in res.per_rank.into_iter().enumerate() {
            let expected: u64 = (1..=r as u64 + 1).sum();
            assert_eq!(v, vec![expected], "p={p} rank={r}");
        }
    }
}

#[test]
fn exscan_exclusive_prefix() {
    for &p in SIZES {
        let res = Universe::run_default(p, |env| {
            let w = &env.world;
            coll::exscan(w, &[w.rank() as u64 + 1], 5, ops::sum::<u64>()).unwrap()
        });
        for (r, v) in res.per_rank.into_iter().enumerate() {
            if r == 0 {
                assert_eq!(v, None, "rank 0 has no exclusive prefix");
            } else {
                let expected: u64 = (1..=r as u64).sum();
                assert_eq!(v, Some(vec![expected]), "p={p} rank={r}");
            }
        }
    }
}

#[test]
fn scan_vector_valued() {
    let res = Universe::run_default(6, |env| {
        let w = &env.world;
        let mine = vec![w.rank() as u64; 4];
        coll::scan(w, &mine, 5, ops::sum::<u64>()).unwrap()
    });
    for (r, v) in res.per_rank.into_iter().enumerate() {
        let expected: u64 = (0..=r as u64).sum();
        assert_eq!(v, vec![expected; 4]);
    }
}

#[test]
fn gather_concatenates_in_rank_order() {
    for &p in SIZES {
        let res = Universe::run_default(p, |env| {
            let w = &env.world;
            coll::gather(w, vec![w.rank() as u64], 0, 21).unwrap()
        });
        let expected: Vec<u64> = (0..p as u64).collect();
        assert_eq!(res.per_rank[0], Some(expected));
        for v in &res.per_rank[1..] {
            assert_eq!(*v, None);
        }
    }
}

#[test]
fn gatherv_variable_sizes() {
    for &p in SIZES {
        let root = p / 2;
        let res = Universe::run_default(p, |env| {
            let w = &env.world;
            // Rank r contributes r elements (rank 0 contributes none).
            let mine: Vec<u64> = (0..w.rank()).map(|i| (w.rank() * 100 + i) as u64).collect();
            coll::gatherv(w, mine, root, 31).unwrap()
        });
        let got = res.per_rank[root].as_ref().unwrap();
        for (r, v) in got.iter().enumerate() {
            let expected: Vec<u64> = (0..r).map(|i| (r * 100 + i) as u64).collect();
            assert_eq!(*v, expected, "p={p} origin={r}");
        }
    }
}

#[test]
fn allgather1_everyone_sees_all() {
    for &p in SIZES {
        let res = Universe::run_default(p, |env| {
            let w = &env.world;
            coll::allgather1(w, (w.rank() as u64, w.rank() as u64 * 2), 41).unwrap()
        });
        let expected: Vec<(u64, u64)> = (0..p as u64).map(|r| (r, r * 2)).collect();
        for v in res.per_rank {
            assert_eq!(v, expected);
        }
    }
}

#[test]
fn barrier_synchronises_virtual_time() {
    // A barrier must not complete on any rank before the slowest rank
    // reaches it (in virtual time).
    let res = Universe::run_default(8, |env| {
        let w = &env.world;
        if w.rank() == 3 {
            env.state().charge(mpisim::Time::from_millis(50));
        }
        coll::barrier(w, 51).unwrap();
        env.now()
    });
    for t in res.per_rank {
        assert!(
            t >= mpisim::Time::from_millis(50),
            "barrier exited before straggler at {t}"
        );
    }
}

#[test]
fn alltoallv_exchanges_buckets() {
    for &p in SIZES {
        let res = Universe::run_default(p, |env| {
            let w = &env.world;
            let send: Vec<Vec<u64>> = (0..p)
                .map(|dst| vec![(w.rank() * 10 + dst) as u64; dst % 3])
                .collect();
            coll::alltoallv(w, send, 61).unwrap()
        });
        for (r, got) in res.per_rank.into_iter().enumerate() {
            for (src, v) in got.into_iter().enumerate() {
                assert_eq!(v, vec![(src * 10 + r) as u64; r % 3], "p={p} {src}->{r}");
            }
        }
    }
}

#[test]
fn collective_virtual_times_scale_logarithmically() {
    // Broadcast of 1 element: makespan should grow ~log p, far slower than
    // linear. Compare p=4 vs p=64: log factor is 3x, linear would be 16x.
    let time_for = |p: usize| {
        let res = Universe::run(p, SimConfig::default(), |env| {
            let w = &env.world;
            let mut x = vec![0u64];
            coll::bcast(w, &mut x, 0, 7).unwrap();
            env.now()
        });
        res.per_rank.into_iter().max().unwrap()
    };
    let t4 = time_for(4);
    let t64 = time_for(64);
    assert!(t64.as_nanos() < t4.as_nanos() * 8, "t4={t4} t64={t64}");
    assert!(t64 > t4, "more rounds must cost more: t4={t4} t64={t64}");
}

#[test]
fn p2p_any_source_receives_all() {
    let res = Universe::run_default(5, |env| {
        let w = &env.world;
        if w.rank() == 0 {
            let mut seen = Vec::new();
            for _ in 0..4 {
                let (v, st) = w.recv::<u64>(Src::Any, 99).unwrap();
                assert_eq!(v.len(), 1);
                seen.push(st.source);
            }
            seen.sort_unstable();
            seen
        } else {
            w.send(&[w.rank() as u64], 0, 99).unwrap();
            Vec::new()
        }
    });
    assert_eq!(res.per_rank[0], vec![1, 2, 3, 4]);
}

#[test]
fn scatterv_distributes_blocks() {
    for &p in SIZES {
        for root in [0, p - 1] {
            let res = Universe::run_default(p, |env| {
                let w = &env.world;
                let blocks = (w.rank() == root).then(|| {
                    (0..p)
                        .map(|i| vec![(i * 10) as u64; i % 3 + 1])
                        .collect::<Vec<_>>()
                });
                coll::scatterv(w, blocks, root, 71).unwrap()
            });
            for (r, v) in res.per_rank.into_iter().enumerate() {
                assert_eq!(
                    v,
                    vec![(r * 10) as u64; r % 3 + 1],
                    "p={p} root={root} rank={r}"
                );
            }
        }
    }
}

#[test]
fn scatter_equal_blocks() {
    let res = Universe::run_default(4, |env| {
        let w = &env.world;
        let data = (w.rank() == 1).then(|| (0..12u64).collect::<Vec<_>>());
        coll::scatter(w, data, 1, 73).unwrap()
    });
    assert_eq!(res.per_rank[0], vec![0, 1, 2]);
    assert_eq!(res.per_rank[3], vec![9, 10, 11]);
}

#[test]
fn scatterv_inverts_gatherv() {
    // gatherv then scatterv returns everyone's original data.
    let res = Universe::run_default(7, |env| {
        let w = &env.world;
        let mine: Vec<u64> = (0..w.rank() as u64 + 1)
            .map(|i| w.rank() as u64 * 100 + i)
            .collect();
        let gathered = coll::gatherv(w, mine.clone(), 2, 75).unwrap();
        let back = coll::scatterv(w, gathered, 2, 77).unwrap();
        back == mine
    });
    assert!(res.per_rank.iter().all(|&ok| ok));
}

#[test]
fn alltoall_fixed_blocks() {
    let res = Universe::run_default(5, |env| {
        let w = &env.world;
        let send: Vec<Vec<u64>> = (0..5)
            .map(|d| vec![(w.rank() * 10 + d) as u64; 2])
            .collect();
        coll::alltoall(w, send, 79).unwrap()
    });
    for (r, got) in res.per_rank.into_iter().enumerate() {
        for (s, v) in got.into_iter().enumerate() {
            assert_eq!(v, vec![(s * 10 + r) as u64; 2]);
        }
    }
}

#[test]
fn allgatherv_everyone_gets_everything() {
    for &p in SIZES {
        let res = Universe::run_default(p, |env| {
            let w = &env.world;
            let mine: Vec<u64> = vec![w.rank() as u64; w.rank() % 4];
            coll::allgatherv(w, mine, 81).unwrap()
        });
        for got in res.per_rank {
            for (src, v) in got.into_iter().enumerate() {
                assert_eq!(v, vec![src as u64; src % 4], "p={p}");
            }
        }
    }
}
