//! Poll-backend semantics: `Backend::Poll` drives every rank as a
//! stackless future through the same epoch scheduler as the fiber
//! backend, so a run's **entire observable output** — per-rank results,
//! wildcard delivery order, virtual clocks, traffic, deterministic
//! metrics, and the event trace — must be byte-identical to
//! `Backend::Cooperative` at every `(program, seed, p)` both can run.
//! That identity is what lets the large-p figure switch backends above
//! the fiber ceiling without a validation gap (DESIGN.md §12).

use mpisim::{block_inline, coll, nbcoll, ops, Backend, SimConfig, Src, Transport, Universe};
use proptest::prelude::*;

/// What one rank observed: wildcard delivery log of the storm phase plus
/// the value-level results of the collective / communicator phases.
type RankLog = (Vec<(usize, u64)>, Vec<u64>);

/// The shared maybe-async rank program: an all-to-all storm drained
/// through wildcard receives (delivery *order* is schedule-sensitive, so
/// it detects any divergence in epoch structure), then the
/// round-structured workloads the tentpole names — collectives, a
/// nonblocking waitall, `Comm::split`'s distributed sort, and
/// `create_group`.
async fn rank_program(env: mpisim::ProcEnv, per: usize) -> RankLog {
    let w = env.world.clone();
    let p = w.size();
    let r = w.rank();

    // Storm: every rank sends `per` tagged messages to every other rank.
    for i in 0..per {
        for dst in 0..p {
            if dst != r {
                w.send(&[(r * 1000 + i) as u64], dst, 7).unwrap();
            }
        }
    }
    let mut deliveries = Vec::new();
    for _ in 0..(p - 1) * per {
        let (v, st) = mpisim::recv_async::<u64, _>(&w, Src::Any, 7).await.unwrap();
        deliveries.push((st.source, v[0]));
    }

    // Collectives (vendor-scaled, through the Comm async twins).
    let mut vals = Vec::new();
    vals.push(
        w.allreduce_async(&[r as u64 + 1], ops::sum::<u64>())
            .await
            .unwrap()[0],
    );
    vals.push(w.scan_async(&[1u64], ops::sum::<u64>()).await.unwrap()[0]);
    let mut b = if r == 0 { vec![41u64, 42] } else { Vec::new() };
    w.bcast_async(&mut b, 0).await.unwrap();
    vals.extend_from_slice(&b);

    // Raw coll cores over the unscaled transport.
    vals.push(
        coll::exscan_async(&w, &[r as u64], 300, ops::sum::<u64>())
            .await
            .unwrap()
            .map_or(u64::MAX, |v| v[0]),
    );
    coll::barrier_async(&w, 310).await.unwrap();

    // Nonblocking machines polled through the maybe-async yield.
    let mut reqs = vec![nbcoll::Request::new(
        nbcoll::iallreduce(&w, &[r as u64], 320, ops::max::<u64>()).unwrap(),
    )];
    nbcoll::waitall_async(&mut reqs).await.unwrap();

    // Distributed-sort split and create_group (context agreement).
    let sub = w.split_async((r % 3) as u64, r as u64).await.unwrap();
    vals.push(
        sub.allreduce_async(&[1u64], ops::sum::<u64>())
            .await
            .unwrap()[0],
    );
    let half = mpisim::Group::range(0, 1, p.div_ceil(2));
    if r < p.div_ceil(2) {
        let g = w.create_group_async(&half, 77).await.unwrap();
        vals.push(
            g.allreduce_async(&[r as u64], ops::sum::<u64>())
                .await
                .unwrap()[0],
        );
    } else {
        vals.push(0);
    }
    (deliveries, vals)
}

/// Full observable output of one run under `backend`.
fn observe(
    p: usize,
    per: usize,
    seed: u64,
    workers: usize,
    backend: Backend,
) -> (
    Vec<RankLog>,
    Vec<mpisim::Time>,
    mpisim::proc::Traffic,
    mpisim::MetricsSnapshot,
    String,
) {
    let cfg = SimConfig::cooperative()
        .with_seed(seed)
        .with_workers(workers)
        .with_backend(backend)
        .with_trace(true);
    let res = match backend {
        Backend::Poll => Universe::run_poll(p, cfg, move |env| rank_program(env, per)),
        _ => Universe::run(p, cfg, move |env| block_inline(rank_program(env, per))),
    };
    let trace = res.trace.as_ref().map(|t| t.to_text()).unwrap_or_default();
    (res.per_rank, res.clocks, res.traffic, res.metrics, trace)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    // The tentpole identity: poll output is byte-identical to fiber
    // output for any (p, seed, worker count) — same delivery order, same
    // clocks, same traffic and metrics counters, same trace text.
    #[test]
    fn poll_matches_fiber_exactly(
        p in 2usize..12,
        per in 1usize..4,
        seed in any::<u64>(),
        workers in 1usize..=4,
    ) {
        let fiber = observe(p, per, seed, workers, Backend::Cooperative);
        let poll = observe(p, per, seed, workers, Backend::Poll);
        prop_assert_eq!(fiber, poll);
    }
}

// The acceptance ladder: byte-identity at every power of two both
// backends can run. Debug builds stop at 2^12 (the storm is O(p²));
// release runs the full fiber range 2^10..2^15 with a lighter program.
#[test]
fn poll_matches_fiber_on_pow2_ladder() {
    let exps: std::ops::RangeInclusive<u32> = if cfg!(debug_assertions) {
        10..=12
    } else {
        10..=15
    };
    for exp in exps {
        let p = 1usize << exp;
        let run = |backend: Backend| {
            let cfg = SimConfig::cooperative()
                .with_seed(42)
                .with_workers(4)
                .with_backend(backend);
            let body = |env: mpisim::ProcEnv| async move {
                let w = env.world.clone();
                let r = w.rank() as u64;
                let s = w
                    .allreduce_async(&[r + 1], ops::sum::<u64>())
                    .await
                    .unwrap()[0];
                let sub = w.split_async(w.rank() as u64 % 2, r).await.unwrap();
                let g = sub
                    .allreduce_async(&[1u64], ops::sum::<u64>())
                    .await
                    .unwrap()[0];
                (s, g)
            };
            match backend {
                Backend::Poll => Universe::run_poll(p, cfg, body),
                _ => Universe::run(p, cfg, move |env| block_inline(body(env))),
            }
        };
        let fiber = run(Backend::Cooperative);
        let poll = run(Backend::Poll);
        assert_eq!(fiber.per_rank, poll.per_rank, "p = 2^{exp}");
        assert_eq!(fiber.clocks, poll.clocks, "p = 2^{exp}");
        assert_eq!(fiber.traffic, poll.traffic, "p = 2^{exp}");
        assert_eq!(fiber.metrics, poll.metrics, "p = 2^{exp}");
    }
}

// Guard rails: the sync API must fail loudly inside poll bodies, and the
// sync entry point must reject the poll backend, so a mixed-up program
// cannot silently wedge a worker thread.
#[test]
fn sync_run_rejects_poll_backend() {
    let err = std::panic::catch_unwind(|| {
        Universe::run(
            2,
            SimConfig::cooperative().with_backend(Backend::Poll),
            |_env| 0u64,
        )
    })
    .unwrap_err();
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_default();
    assert!(
        msg.contains("run_poll"),
        "panic should point at run_poll: {msg}"
    );
}

#[test]
fn run_poll_under_fiber_backend_still_works() {
    // run_poll with a non-poll backend drives the same async body through
    // block_inline — a convenience that keeps call sites backend-agnostic.
    let res = Universe::run_poll(4, SimConfig::cooperative(), |env| async move {
        env.world
            .allreduce_async(&[1u64], ops::sum::<u64>())
            .await
            .unwrap()[0]
    });
    assert_eq!(res.per_rank, vec![4, 4, 4, 4]);
}
