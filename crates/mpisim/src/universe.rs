//! The universe: runs `p` simulated MPI processes under one of two
//! backends — an OS thread per rank, or the cooperative fiber scheduler
//! ([`crate::sched`]) that multiplexes all ranks over a small worker pool
//! and scales to the paper's 2^15 processes.
//!
//! ```
//! use mpisim::{Universe, SimConfig, Transport};
//!
//! let res = Universe::run(4, SimConfig::default(), |env| {
//!     let world = env.world.clone();
//!     let mut x = vec![world.rank() as u64];
//!     world.bcast(&mut x, 0).unwrap();
//!     x[0]
//! });
//! assert_eq!(res.per_rank, vec![0, 0, 0, 0]);
//! ```
//!
//! The same program at 2^15 ranks, which the thread backend cannot reach:
//!
//! ```
//! use mpisim::{Universe, SimConfig, Transport};
//!
//! let res = Universe::run(1 << 10, SimConfig::cooperative(), |env| {
//!     env.world.allreduce(&[1u64], |a, b| a + b).unwrap()[0]
//! });
//! assert!(res.per_rank.iter().all(|&s| s == 1 << 10));
//! ```

use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::comm::Comm;
use crate::faults::{FaultPlan, FaultState};
use crate::model::{CommitAlgo, CostModel, SortAlgo, VendorProfile};
use crate::proc::{ProcState, Router};
use crate::sched;
use crate::time::Time;

/// Which runtime executes the rank bodies.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Backend {
    /// One OS thread per simulated rank. Simple and preemptive; practical
    /// up to a few hundred ranks.
    Threads,
    /// The cooperative fiber scheduler: all ranks multiplexed over
    /// [`SimConfig::coop_workers`] OS threads under an epoch discipline
    /// that makes runs **bit-for-bit deterministic in `(program, seed)`
    /// for any worker count** — message deliveries commit at epoch
    /// boundaries in global virtual-time order (see [`crate::sched`] and
    /// DESIGN.md §5). Required for the paper's large-p regime (up to 2^15
    /// ranks). On targets without fiber support this falls back to
    /// `Threads`.
    Cooperative,
    /// The same epoch scheduler, but every rank is a **pollable state
    /// machine** ([`crate::sched::poll::RankBody`]) instead of a stackful
    /// fiber: per-rank cost drops from a stack (128 KiB + guard-page
    /// VMAs) to the few hundred bytes of `Future` state the compiler's
    /// async transform retains, unlocking universes past the fiber
    /// ceiling — p = 2^20 and beyond. Poll steps claim the same
    /// generation-tagged rounds, stage sends into the same per-task
    /// buffers, and commit through the unchanged epoch discipline, so
    /// output is **byte-identical to [`Backend::Cooperative`]** at every
    /// p both can run. Rank bodies must be async
    /// ([`Universe::run_poll`]); the synchronous [`Universe::run`]
    /// panics under this backend.
    Poll,
}

/// Configuration of a simulation run.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// The machine's α–β cost model.
    pub cost: CostModel,
    /// The MPI-implementation personality to simulate.
    pub vendor: VendorProfile,
    /// Wall-clock deadlock-detection timeout for blocking operations
    /// (thread backend; the cooperative backend detects deadlock exactly).
    pub recv_timeout: Duration,
    /// Base seed for per-rank deterministic RNG streams and the cooperative
    /// scheduler's initial run order.
    pub seed: u64,
    /// OS thread stack size per rank under [`Backend::Threads`].
    pub stack_size: usize,
    /// Which runtime executes rank bodies.
    pub backend: Backend,
    /// Worker threads of the cooperative scheduler. The epoch discipline
    /// makes the schedule — and therefore message-delivery order — a pure
    /// function of `(program, seed)` for **every** worker count, so this
    /// is purely a throughput knob: raise it to the host's core count to
    /// run independent ranks of each epoch in parallel with identical
    /// output.
    pub coop_workers: usize,
    /// Fiber stack size per rank under [`Backend::Cooperative`]. All fiber
    /// stacks are carved from one commit-on-touch `mmap` slab with a
    /// `PROT_NONE` **guard page** below each stack, so an overrun faults
    /// instead of corrupting the neighbouring fiber (plus a bottom-of-stack
    /// canary as a second line). Guards cost ~2·p kernel VMAs, so above
    /// roughly 30k ranks (half the default Linux `vm.max_map_count`) the
    /// slab stays a single unguarded mapping and the canary is the only
    /// line — as is the rare `mmap`-unavailable heap fallback. The virtual
    /// reservation is about `p * (coop_stack_size + page)` — the 128 KiB
    /// default keeps a 2^15-rank universe at a ~4 GiB `MAP_NORESERVE`
    /// reservation, of which only touched pages are committed. Raise it
    /// for rank bodies with deep recursion.
    pub coop_stack_size: usize,
    /// How the cooperative scheduler's epoch commit delivers staged
    /// messages: [`CommitAlgo::Sharded`] (default) partitions the
    /// globally sorted run by destination rank and lets all idle workers
    /// push segments in parallel; [`CommitAlgo::Serial`] is the original
    /// single-threaded commit, kept as the correctness oracle. Both
    /// produce bit-identical output for every worker count; only
    /// wall-clock speed differs. Ignored by [`Backend::Threads`].
    pub commit_algo: CommitAlgo,
    /// How the cooperative scheduler puts an epoch's staged messages into
    /// commit order: [`SortAlgo::Merge`] (default) merges the pre-sorted
    /// per-task runs in a parallel work phase; [`SortAlgo::Sort`] is the
    /// original single-worker global sort, kept as the correctness
    /// oracle. Both produce bit-identical output for every worker count
    /// and commit algorithm; only wall-clock speed (and allocation
    /// behaviour) differs. Ignored by [`Backend::Threads`].
    pub sort_algo: SortAlgo,
    /// Upper bound on the claim units of one sharded commit (0 = auto:
    /// ~2 shards per worker, with small commits staying inline on the
    /// committing worker). Like `coop_workers`, this is purely a
    /// throughput knob — any value yields identical output.
    pub coop_commit_shards: usize,
    /// Seeded fault-injection plan (stragglers, crash-stop, message
    /// jitter); the default plan injects nothing. Faults are a pure
    /// function of `(program, seed, perturb_seed)` — never of the worker
    /// count or commit algorithm — so faulted runs keep the bit-identical
    /// determinism guarantees. See [`crate::faults`].
    pub faults: FaultPlan,
    /// Record a deterministic event trace ([`crate::obs::Trace`]): op
    /// spans, send/deliver edges, collective phase marks, fault and blame
    /// events, all stamped with virtual time. The trace is a pure
    /// function of `(program, seed, fault plan)` — byte-identical for
    /// every worker count and commit algorithm — and recording it changes
    /// **nothing** the simulation computes (observer effect zero; see
    /// DESIGN.md §9). Off by default: tracing costs memory proportional
    /// to the event count.
    pub trace: bool,
    /// Record the cooperative scheduler's wall-clock phase profile
    /// ([`crate::obs::SchedProfile`]): per-worker run/commit/idle timings
    /// and claim counts. Host-time diagnostics, **outside** the
    /// deterministic domain — never compare these across runs in tests.
    pub sched_profile: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            cost: CostModel::supermuc_like(),
            vendor: VendorProfile::neutral(),
            recv_timeout: Duration::from_secs(30),
            seed: 0x5bc,
            stack_size: 1 << 20,
            backend: Backend::Threads,
            coop_workers: 1,
            coop_stack_size: 128 << 10,
            commit_algo: CommitAlgo::Sharded,
            sort_algo: SortAlgo::Merge,
            coop_commit_shards: 0,
            faults: FaultPlan::default(),
            trace: false,
            sched_profile: false,
        }
    }
}

impl SimConfig {
    /// Default configuration on the cooperative scheduler backend. The
    /// worker-pool size honours the `MPISIM_COOP_WORKERS` environment
    /// variable (default 1), the commit algorithm honours
    /// `MPISIM_COOP_COMMIT` (`sharded`, the default, or `serial` for the
    /// oracle), the commit-ordering algorithm honours `MPISIM_COOP_SORT`
    /// (`merge`, the default, or `sort` for the single-worker oracle),
    /// and the shard cap honours `MPISIM_COOP_COMMIT_SHARDS`
    /// (0 = auto) — so sweeps and CI can exercise the whole matrix
    /// without code changes. Results are identical for every combination.
    /// The fault plan honours the `MPISIM_FAULT_SEED` / `MPISIM_FAULT_SLOW`
    /// / `MPISIM_FAULT_CRASH` / `MPISIM_FAULT_JITTER` knobs (strict
    /// parsing; see [`FaultPlan::from_env`]) — unlike the commit knobs,
    /// a fault plan *does* change what is simulated, deterministically.
    /// `MPISIM_TRACE=1` turns on the deterministic event trace and
    /// `MPISIM_SCHED_PROFILE=1` the wall-clock scheduler profile (both
    /// strict boolean knobs; see [`crate::env`]). `MPISIM_BACKEND`
    /// selects the execution mode (`fiber`, the default, or `poll` for
    /// stackless poll-mode rank bodies — which requires the program to
    /// go through [`Universe::run_poll`]).
    pub fn cooperative() -> SimConfig {
        use crate::env;
        SimConfig {
            backend: env::backend_from(env::var("MPISIM_BACKEND").as_deref()),
            coop_workers: env::coop_workers_from(env::var("MPISIM_COOP_WORKERS").as_deref()),
            commit_algo: env::commit_algo_from(env::var("MPISIM_COOP_COMMIT").as_deref()),
            sort_algo: env::coop_sort_from(env::var("MPISIM_COOP_SORT").as_deref()),
            coop_commit_shards: env::commit_shards_from(
                env::var("MPISIM_COOP_COMMIT_SHARDS").as_deref(),
            ),
            faults: FaultPlan::from_env(),
            trace: env::trace_from(env::var("MPISIM_TRACE").as_deref()),
            sched_profile: env::sched_profile_from(env::var("MPISIM_SCHED_PROFILE").as_deref()),
            ..SimConfig::default()
        }
    }

    /// Replace the backend.
    pub fn with_backend(mut self, backend: Backend) -> SimConfig {
        self.backend = backend;
        self
    }

    /// Replace the cooperative worker count (any count is deterministic;
    /// more workers only changes wall-clock speed).
    pub fn with_workers(mut self, workers: usize) -> SimConfig {
        self.coop_workers = workers.max(1);
        self
    }

    /// Replace the vendor profile.
    pub fn with_vendor(mut self, vendor: VendorProfile) -> SimConfig {
        self.vendor = vendor;
        self
    }

    /// Replace the cooperative scheduler's epoch-commit algorithm (the
    /// single-threaded [`CommitAlgo::Serial`] survives as the correctness
    /// oracle for the default destination-sharded commit; output is
    /// bit-identical either way).
    pub fn with_commit_algo(mut self, algo: CommitAlgo) -> SimConfig {
        self.commit_algo = algo;
        self
    }

    /// Replace the cooperative scheduler's commit-ordering algorithm (the
    /// single-worker [`SortAlgo::Sort`] survives as the correctness oracle
    /// for the default parallel merge; output is bit-identical either
    /// way).
    pub fn with_sort_algo(mut self, algo: SortAlgo) -> SimConfig {
        self.sort_algo = algo;
        self
    }

    /// Replace the sharded commit's claim-unit cap (0 = auto; any value
    /// yields identical output, see [`SimConfig::coop_commit_shards`]).
    pub fn with_commit_shards(mut self, shards: usize) -> SimConfig {
        self.coop_commit_shards = shards;
        self
    }

    /// Replace the `MPI_Comm_split` algorithm (the legacy
    /// [`crate::model::SplitAlgo::Allgather`] survives as the correctness
    /// oracle for the default distributed sort).
    pub fn with_split_algo(mut self, algo: crate::model::SplitAlgo) -> SimConfig {
        self.vendor.split_algo = algo;
        self
    }

    /// Replace the base RNG seed.
    pub fn with_seed(mut self, seed: u64) -> SimConfig {
        self.seed = seed;
        self
    }

    /// Replace the deadlock-detection timeout.
    pub fn with_timeout(mut self, t: Duration) -> SimConfig {
        self.recv_timeout = t;
        self
    }

    /// Replace the per-rank OS thread stack size (thread backend).
    pub fn with_stack_size(mut self, bytes: usize) -> SimConfig {
        self.stack_size = bytes;
        self
    }

    /// Replace the per-rank fiber stack size (cooperative backend).
    pub fn with_coop_stack_size(mut self, bytes: usize) -> SimConfig {
        self.coop_stack_size = bytes;
        self
    }

    /// Replace the fault-injection plan.
    pub fn with_faults(mut self, plan: FaultPlan) -> SimConfig {
        self.faults = plan;
        self
    }

    /// Turn the deterministic event trace on or off (see
    /// [`SimConfig::trace`]).
    pub fn with_trace(mut self, on: bool) -> SimConfig {
        self.trace = on;
        self
    }

    /// Turn the wall-clock scheduler profile on or off (see
    /// [`SimConfig::sched_profile`]).
    pub fn with_sched_profile(mut self, on: bool) -> SimConfig {
        self.sched_profile = on;
        self
    }
}

/// Handed to every rank body.
#[derive(Clone)]
pub struct ProcEnv {
    /// `MPI_COMM_WORLD`.
    pub world: Comm,
}

impl ProcEnv {
    /// This process's world rank.
    pub fn rank(&self) -> usize {
        use crate::transport::Transport;
        self.world.rank()
    }

    /// Number of processes in the universe.
    pub fn size(&self) -> usize {
        use crate::transport::Transport;
        self.world.size()
    }

    /// This rank's simulator state.
    pub fn state(&self) -> &Arc<ProcState> {
        self.world.proc_state()
    }

    /// This rank's virtual clock.
    pub fn now(&self) -> Time {
        self.state().now()
    }
}

/// Outcome of a simulation: per-rank return values, final virtual clocks,
/// and the total message traffic.
#[derive(Debug)]
pub struct SimResult<R> {
    /// Each rank body's return value, indexed by rank.
    pub per_rank: Vec<R>,
    /// Each rank's virtual clock at exit.
    pub clocks: Vec<Time>,
    /// Total messages/bytes sent during the run.
    pub traffic: crate::proc::Traffic,
    /// Deterministic model counters of the run (messages, bytes,
    /// per-class volumes, mailbox scans, epochs, wake-ups, switches) —
    /// pure functions of `(program, seed, fault plan)` on the cooperative
    /// backend, so CI gates them with exact equality. Always collected;
    /// the scheduler fields are zero under [`Backend::Threads`].
    pub metrics: crate::obs::MetricsSnapshot,
    /// The deterministic event trace, when [`SimConfig::trace`] was on.
    pub trace: Option<crate::obs::Trace>,
    /// The wall-clock scheduler phase profile, when
    /// [`SimConfig::sched_profile`] was on (cooperative backend only).
    pub sched_profile: Option<crate::obs::SchedProfile>,
}

impl<R> SimResult<R> {
    /// Makespan: the latest rank clock — what the paper reports as the
    /// running time of an operation executed by all processes.
    pub fn max_time(&self) -> Time {
        self.clocks.iter().copied().max().unwrap_or(Time::ZERO)
    }

    /// The earliest rank clock at exit.
    pub fn min_time(&self) -> Time {
        self.clocks.iter().copied().min().unwrap_or(Time::ZERO)
    }
}

/// Entry point; stateless. See [`Universe::run`].
pub struct Universe;

impl Universe {
    /// Run `f` on `p` simulated processes under `cfg.backend` and collect
    /// results. Panics in any rank propagate.
    pub fn run<R, F>(p: usize, cfg: SimConfig, f: F) -> SimResult<R>
    where
        R: Send,
        F: Fn(ProcEnv) -> R + Send + Sync,
    {
        assert!(p >= 1, "need at least one process");
        let mut router = Router::new(
            p,
            cfg.cost.clone(),
            cfg.vendor.clone(),
            cfg.recv_timeout,
            FaultState::resolve(&cfg.faults, p),
        );
        if cfg.trace {
            router.enable_trace();
        }
        let router = Arc::new(router);
        let states: Vec<Arc<ProcState>> = (0..p)
            .map(|r| ProcState::new(r, Arc::clone(&router), cfg.seed))
            .collect();
        let results: Mutex<Vec<Option<R>>> = Mutex::new((0..p).map(|_| None).collect());

        let (sched_counters, sched_profile) = match cfg.backend {
            Backend::Poll => panic!(
                "Backend::Poll runs async rank bodies: use Universe::run_poll \
                 (the synchronous Universe::run cannot drive poll-mode tasks)"
            ),
            Backend::Cooperative if sched::SUPPORTED => {
                Self::run_coop(p, &cfg, &f, &router, &states, &results)
            }
            _ => {
                Self::run_threads(p, &cfg, &f, &states, &results);
                ((0, 0, 0), None)
            }
        };

        assemble_result(
            &router,
            &states,
            results.into_inner(),
            sched_counters,
            sched_profile,
        )
    }

    /// Run the async rank body `f` on `p` simulated processes. This is
    /// the entry point for [`Backend::Poll`]: each rank's future becomes
    /// a pollable state machine stepped by the epoch scheduler — no
    /// fiber stack, no VMA cost — so universes can reach p = 2^20 and
    /// beyond. Under [`Backend::Threads`] or [`Backend::Cooperative`]
    /// the same future is driven to completion synchronously
    /// ([`crate::block_inline`]: every await resolves in place), so one
    /// async program serves all three backends with byte-identical
    /// output. Panics in any rank propagate.
    pub fn run_poll<R, F, Fut>(p: usize, cfg: SimConfig, f: F) -> SimResult<R>
    where
        R: Send,
        F: Fn(ProcEnv) -> Fut + Send + Sync,
        Fut: std::future::Future<Output = R> + Send,
    {
        assert!(p >= 1, "need at least one process");
        let mut router = Router::new(
            p,
            cfg.cost.clone(),
            cfg.vendor.clone(),
            cfg.recv_timeout,
            FaultState::resolve(&cfg.faults, p),
        );
        if cfg.trace {
            router.enable_trace();
        }
        let router = Arc::new(router);
        let states: Vec<Arc<ProcState>> = (0..p)
            .map(|r| ProcState::new(r, Arc::clone(&router), cfg.seed))
            .collect();
        let results: Mutex<Vec<Option<R>>> = Mutex::new((0..p).map(|_| None).collect());

        let (sched_counters, sched_profile) = match cfg.backend {
            Backend::Poll if sched::SUPPORTED => {
                Self::run_poll_coop(p, &cfg, &f, &router, &states, &results)
            }
            Backend::Cooperative if sched::SUPPORTED => {
                // Fiber backend: the future never suspends (every await
                // parks the fiber inside the poll), so one inline poll
                // per rank body reproduces the sync path exactly.
                Self::run_coop(
                    p,
                    &cfg,
                    &|env| crate::sched::poll::block_inline(f(env)),
                    &router,
                    &states,
                    &results,
                )
            }
            _ => {
                Self::run_threads(
                    p,
                    &cfg,
                    &|env| crate::sched::poll::block_inline(f(env)),
                    &states,
                    &results,
                );
                ((0, 0, 0), None)
            }
        };

        assemble_result(
            &router,
            &states,
            results.into_inner(),
            sched_counters,
            sched_profile,
        )
    }

    /// Thread backend: one scoped OS thread per rank.
    fn run_threads<R, F>(
        p: usize,
        cfg: &SimConfig,
        f: &F,
        states: &[Arc<ProcState>],
        results: &Mutex<Vec<Option<R>>>,
    ) where
        R: Send,
        F: Fn(ProcEnv) -> R + Send + Sync,
    {
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(p);
            for state in states {
                let state = Arc::clone(state);
                let h = std::thread::Builder::new()
                    .name(format!("rank{}", state.global_rank))
                    .stack_size(cfg.stack_size)
                    .spawn_scoped(scope, move || {
                        let rank = state.global_rank;
                        let env = ProcEnv {
                            world: Comm::world(state),
                        };
                        let out = f(env);
                        results.lock()[rank] = Some(out);
                    })
                    .expect("spawn rank thread");
                handles.push(h);
            }
            for h in handles {
                if let Err(e) = h.join() {
                    std::panic::resume_unwind(e);
                }
            }
        });
    }

    /// Cooperative backend: every rank is a fiber on the shared scheduler.
    /// Returns the scheduler's deterministic `(epochs, wakeups, switches)`
    /// counters and — when profiling — its wall-clock phase profile.
    #[cfg(all(unix, any(target_arch = "x86_64", target_arch = "aarch64")))]
    fn run_coop<R, F>(
        p: usize,
        cfg: &SimConfig,
        f: &F,
        router: &Arc<Router>,
        states: &[Arc<ProcState>],
        results: &Mutex<Vec<Option<R>>>,
    ) -> ((u64, u64, u64), Option<crate::obs::SchedProfile>)
    where
        R: Send,
        F: Fn(ProcEnv) -> R + Send + Sync,
    {
        let scheduler = sched::Scheduler::new(
            p,
            cfg.coop_stack_size,
            Arc::clone(router),
            cfg.commit_algo,
            cfg.sort_algo,
            cfg.coop_commit_shards,
            cfg.sched_profile,
            // A solo run owns a private pool set; only a fleet
            // ([`crate::sched::fleet::Fleet`]) shares one across universes.
            Arc::new(sched::SchedPools::default()),
            None,
            false,
        );
        let store = scheduler.panic_store();
        for (rank, state) in states.iter().enumerate() {
            let state = Arc::clone(state);
            let store = Arc::clone(&store);
            let body = move || {
                let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    let env = ProcEnv {
                        world: Comm::world(state),
                    };
                    f(env)
                }));
                match out {
                    Ok(v) => results.lock()[rank] = Some(v),
                    Err(e) => sched::record_panic(&store, rank, e),
                }
            };
            // Safety: `run` below drives every fiber to completion before
            // returning, so the body's borrows of `f` and `results` never
            // outlive this stack frame.
            unsafe {
                scheduler.spawn(rank, erase_body_lifetime(Box::new(body)));
            }
        }
        let order = seeded_order(p, cfg.seed);
        if let Some((_rank, payload)) = scheduler.run(cfg.coop_workers, &order) {
            std::panic::resume_unwind(payload);
        }
        (scheduler.counters(), scheduler.take_profile())
    }

    /// Fallback for targets without a fiber implementation: the dispatch
    /// in [`Universe::run`] never reaches this arm there (`sched::SUPPORTED`
    /// is false), but the call must still compile.
    #[cfg(not(all(unix, any(target_arch = "x86_64", target_arch = "aarch64"))))]
    fn run_coop<R, F>(
        p: usize,
        cfg: &SimConfig,
        f: &F,
        _router: &Arc<Router>,
        states: &[Arc<ProcState>],
        results: &Mutex<Vec<Option<R>>>,
    ) -> ((u64, u64, u64), Option<crate::obs::SchedProfile>)
    where
        R: Send,
        F: Fn(ProcEnv) -> R + Send + Sync,
    {
        Self::run_threads(p, cfg, f, states, results);
        ((0, 0, 0), None)
    }

    /// Poll backend: every rank is a stackless poll-mode state machine
    /// (`crate::sched::poll::FutureBody`) on the shared epoch
    /// scheduler. Mirrors [`Universe::run_coop`] — same seeded order,
    /// same panic handling, same counters — with `spawn_poll` in place
    /// of fiber spawn.
    #[cfg(all(unix, any(target_arch = "x86_64", target_arch = "aarch64")))]
    fn run_poll_coop<R, F, Fut>(
        p: usize,
        cfg: &SimConfig,
        f: &F,
        router: &Arc<Router>,
        states: &[Arc<ProcState>],
        results: &Mutex<Vec<Option<R>>>,
    ) -> ((u64, u64, u64), Option<crate::obs::SchedProfile>)
    where
        R: Send,
        F: Fn(ProcEnv) -> Fut + Send + Sync,
        Fut: std::future::Future<Output = R> + Send,
    {
        let scheduler = sched::Scheduler::new(
            p,
            cfg.coop_stack_size,
            Arc::clone(router),
            cfg.commit_algo,
            cfg.sort_algo,
            cfg.coop_commit_shards,
            cfg.sched_profile,
            Arc::new(sched::SchedPools::default()),
            None,
            true,
        );
        let store = scheduler.panic_store();
        for (rank, state) in states.iter().enumerate() {
            let state = Arc::clone(state);
            let fut = async move {
                let env = ProcEnv {
                    world: Comm::world(state),
                };
                let out = f(env).await;
                results.lock()[rank] = Some(out);
            };
            // Panics inside the future are caught per poll step by
            // `FutureBody::proceed` and recorded first-wins, exactly
            // like the fiber body's `catch_unwind`.
            let body = sched::poll::FutureBody::new(
                // Safety: `run` below drives every body to completion
                // before returning, so the future's borrows of `f` and
                // `results` never outlive this stack frame.
                unsafe { erase_future_lifetime(Box::pin(fut)) },
                rank,
                Arc::clone(&store),
            );
            unsafe {
                scheduler.spawn_poll(rank, Box::new(body));
            }
        }
        let order = seeded_order(p, cfg.seed);
        if let Some((_rank, payload)) = scheduler.run(cfg.coop_workers, &order) {
            std::panic::resume_unwind(payload);
        }
        (scheduler.counters(), scheduler.take_profile())
    }

    /// Convenience wrapper with default configuration (thread backend).
    pub fn run_default<R, F>(p: usize, f: F) -> SimResult<R>
    where
        R: Send,
        F: Fn(ProcEnv) -> R + Send + Sync,
    {
        Universe::run(p, SimConfig::default(), f)
    }
}

/// The deterministic seeded initial run order of a cooperative run: a
/// Fisher–Yates shuffle of `0..p` driven by a hash of the config seed.
/// Shared verbatim by [`Universe::run`] and fleet admission
/// ([`crate::sched::fleet::Fleet::submit`]) so a universe starts from the
/// same epoch-1 order whichever path launched it.
pub(crate) fn seeded_order(p: usize, seed: u64) -> Vec<usize> {
    let mut order: Vec<usize> = (0..p).collect();
    let mut rng = StdRng::seed_from_u64(
        seed.wrapping_mul(0xD1B5_4A32_D192_ED03)
            .wrapping_add(0x9E6D),
    );
    for i in (1..p).rev() {
        let j = rng.gen_range(0..i + 1);
        order.swap(i, j);
    }
    order
}

/// Assemble a [`SimResult`] from a completed run's raw state. Shared by
/// [`Universe::run`] and fleet completion so the two paths can never
/// drift: per-rank values, final clocks, traffic, the deterministic
/// metrics snapshot (with the scheduler's epoch/wakeup/switch counters
/// spliced in), the optional trace, and the optional wall-clock profile.
pub(crate) fn assemble_result<R>(
    router: &Arc<Router>,
    states: &[Arc<ProcState>],
    results: Vec<Option<R>>,
    sched_counters: (u64, u64, u64),
    sched_profile: Option<crate::obs::SchedProfile>,
) -> SimResult<R> {
    let per_rank = results
        .into_iter()
        .map(|r| r.expect("rank completed"))
        .collect();
    let clocks = states.iter().map(|s| s.now()).collect();
    let traffic = router.traffic();
    let mut metrics = router.metrics_base();
    (metrics.epochs, metrics.wakeups, metrics.switches) = sched_counters;
    let trace = router.collect_trace();
    SimResult {
        per_rank,
        clocks,
        traffic,
        metrics,
        trace,
        sched_profile,
    }
}

/// Erase a rank body's borrow lifetime so it can live in a task slot; see
/// the safety comment at the call site.
#[cfg(all(unix, any(target_arch = "x86_64", target_arch = "aarch64")))]
unsafe fn erase_body_lifetime<'a>(
    b: Box<dyn FnOnce() + Send + 'a>,
) -> Box<dyn FnOnce() + Send + 'static> {
    std::mem::transmute(b)
}

/// Erase a poll-mode rank future's borrow lifetime so it can live in a
/// task slot; same safety argument as [`erase_body_lifetime`].
#[cfg(all(unix, any(target_arch = "x86_64", target_arch = "aarch64")))]
unsafe fn erase_future_lifetime<'a>(
    b: std::pin::Pin<Box<dyn std::future::Future<Output = ()> + Send + 'a>>,
) -> std::pin::Pin<Box<dyn std::future::Future<Output = ()> + Send + 'static>> {
    std::mem::transmute(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::{Src, Transport};

    #[test]
    fn ranks_see_world() {
        let res = Universe::run_default(5, |env| (env.rank(), env.size()));
        assert_eq!(res.per_rank, vec![(0, 5), (1, 5), (2, 5), (3, 5), (4, 5)]);
    }

    #[test]
    fn ring_send_recv() {
        let res = Universe::run_default(4, |env| {
            let w = &env.world;
            let next = (w.rank() + 1) % 4;
            let prev = (w.rank() + 3) % 4;
            w.send(&[w.rank() as u64], next, 1).unwrap();
            let (v, st) = w.recv::<u64>(Src::Rank(prev), 1).unwrap();
            assert_eq!(st.source, prev);
            v[0]
        });
        assert_eq!(res.per_rank, vec![3, 0, 1, 2]);
    }

    #[test]
    fn clocks_collected() {
        let res = Universe::run_default(2, |env| {
            env.state().charge(Time::from_millis(env.rank() as u64 + 1));
        });
        assert_eq!(res.clocks[0], Time::from_millis(1));
        assert_eq!(res.clocks[1], Time::from_millis(2));
        assert_eq!(res.max_time(), Time::from_millis(2));
        assert_eq!(res.min_time(), Time::from_millis(1));
    }

    #[test]
    #[should_panic]
    fn rank_panic_propagates() {
        Universe::run_default(2, |env| {
            if env.rank() == 1 {
                panic!("boom");
            }
        });
    }

    #[test]
    fn deterministic_results_across_runs() {
        let run = || {
            Universe::run(3, SimConfig::default().with_seed(7), |env| {
                env.state().rand_index(1_000_000)
            })
            .per_rank
        };
        assert_eq!(run(), run());
    }

    // ---- cooperative backend mirrors ---------------------------------------

    #[test]
    fn coop_ranks_see_world() {
        let res = Universe::run(5, SimConfig::cooperative(), |env| (env.rank(), env.size()));
        assert_eq!(res.per_rank, vec![(0, 5), (1, 5), (2, 5), (3, 5), (4, 5)]);
    }

    #[test]
    fn coop_ring_send_recv() {
        let res = Universe::run(4, SimConfig::cooperative(), |env| {
            let w = &env.world;
            let next = (w.rank() + 1) % 4;
            let prev = (w.rank() + 3) % 4;
            w.send(&[w.rank() as u64], next, 1).unwrap();
            let (v, st) = w.recv::<u64>(Src::Rank(prev), 1).unwrap();
            assert_eq!(st.source, prev);
            v[0]
        });
        assert_eq!(res.per_rank, vec![3, 0, 1, 2]);
    }

    #[test]
    #[should_panic]
    fn coop_rank_panic_propagates() {
        Universe::run(2, SimConfig::cooperative(), |env| {
            if env.rank() == 1 {
                panic!("boom");
            }
        });
    }

    // The env-knob parser tests (commit algorithm, shard cap, trace, …)
    // live with the parsers in `crate::env`.

    #[test]
    fn coop_bcast_works() {
        let res = Universe::run(8, SimConfig::cooperative(), |env| {
            let mut x = vec![env.rank() as u64 * 100];
            env.world.bcast(&mut x, 3).unwrap();
            x[0]
        });
        assert_eq!(res.per_rank, vec![300; 8]);
    }
}
