//! The universe: spawns one OS thread per simulated MPI process.
//!
//! ```
//! use mpisim::{Universe, SimConfig, Transport};
//!
//! let res = Universe::run(4, SimConfig::default(), |env| {
//!     let world = env.world.clone();
//!     let mut x = vec![world.rank() as u64];
//!     world.bcast(&mut x, 0).unwrap();
//!     x[0]
//! });
//! assert_eq!(res.per_rank, vec![0, 0, 0, 0]);
//! ```

use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use crate::comm::Comm;
use crate::model::{CostModel, VendorProfile};
use crate::proc::{ProcState, Router};
use crate::time::Time;

/// Configuration of a simulation run.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// The machine's α–β cost model.
    pub cost: CostModel,
    /// The MPI-implementation personality to simulate.
    pub vendor: VendorProfile,
    /// Wall-clock deadlock-detection timeout for blocking operations.
    pub recv_timeout: Duration,
    /// Base seed for per-rank deterministic RNG streams.
    pub seed: u64,
    /// Stack size per rank thread. Rank bodies are shallow; the default of
    /// 1 MiB supports thousands of ranks.
    pub stack_size: usize,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            cost: CostModel::supermuc_like(),
            vendor: VendorProfile::neutral(),
            recv_timeout: Duration::from_secs(30),
            seed: 0x5bc,
            stack_size: 1 << 20,
        }
    }
}

impl SimConfig {
    /// Replace the vendor profile.
    pub fn with_vendor(mut self, vendor: VendorProfile) -> SimConfig {
        self.vendor = vendor;
        self
    }

    /// Replace the base RNG seed.
    pub fn with_seed(mut self, seed: u64) -> SimConfig {
        self.seed = seed;
        self
    }

    /// Replace the deadlock-detection timeout.
    pub fn with_timeout(mut self, t: Duration) -> SimConfig {
        self.recv_timeout = t;
        self
    }
}

/// Handed to every rank body.
#[derive(Clone)]
pub struct ProcEnv {
    /// `MPI_COMM_WORLD`.
    pub world: Comm,
}

impl ProcEnv {
    /// This process's world rank.
    pub fn rank(&self) -> usize {
        use crate::transport::Transport;
        self.world.rank()
    }

    /// Number of processes in the universe.
    pub fn size(&self) -> usize {
        use crate::transport::Transport;
        self.world.size()
    }

    /// This rank's simulator state.
    pub fn state(&self) -> &Arc<ProcState> {
        self.world.proc_state()
    }

    /// This rank's virtual clock.
    pub fn now(&self) -> Time {
        self.state().now()
    }
}

/// Outcome of a simulation: per-rank return values, final virtual clocks,
/// and the total message traffic.
#[derive(Debug)]
pub struct SimResult<R> {
    /// Each rank body's return value, indexed by rank.
    pub per_rank: Vec<R>,
    /// Each rank's virtual clock at exit.
    pub clocks: Vec<Time>,
    /// Total messages/bytes sent during the run.
    pub traffic: crate::proc::Traffic,
}

impl<R> SimResult<R> {
    /// Makespan: the latest rank clock — what the paper reports as the
    /// running time of an operation executed by all processes.
    pub fn max_time(&self) -> Time {
        self.clocks.iter().copied().max().unwrap_or(Time::ZERO)
    }

    /// The earliest rank clock at exit.
    pub fn min_time(&self) -> Time {
        self.clocks.iter().copied().min().unwrap_or(Time::ZERO)
    }
}

/// Entry point: spawns one thread per simulated process. Stateless; see
/// [`Universe::run`].
pub struct Universe;

impl Universe {
    /// Run `f` on `p` simulated processes and collect results. Panics in
    /// any rank propagate (with the rank name in the thread name).
    pub fn run<R, F>(p: usize, cfg: SimConfig, f: F) -> SimResult<R>
    where
        R: Send,
        F: Fn(ProcEnv) -> R + Send + Sync,
    {
        assert!(p >= 1, "need at least one process");
        let router = Arc::new(Router::new(
            p,
            cfg.cost.clone(),
            cfg.vendor.clone(),
            cfg.recv_timeout,
        ));
        let states: Vec<Arc<ProcState>> = (0..p)
            .map(|r| ProcState::new(r, Arc::clone(&router), cfg.seed))
            .collect();

        let results: Mutex<Vec<Option<R>>> = Mutex::new((0..p).map(|_| None).collect());
        let f = &f;
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(p);
            for state in &states {
                let state = Arc::clone(state);
                let results = &results;
                let h = std::thread::Builder::new()
                    .name(format!("rank{}", state.global_rank))
                    .stack_size(cfg.stack_size)
                    .spawn_scoped(scope, move || {
                        let rank = state.global_rank;
                        let env = ProcEnv {
                            world: Comm::world(state),
                        };
                        let out = f(env);
                        results.lock()[rank] = Some(out);
                    })
                    .expect("spawn rank thread");
                handles.push(h);
            }
            for h in handles {
                if let Err(e) = h.join() {
                    std::panic::resume_unwind(e);
                }
            }
        });

        let per_rank = results
            .into_inner()
            .into_iter()
            .map(|r| r.expect("rank completed"))
            .collect();
        let clocks = states.iter().map(|s| s.now()).collect();
        let traffic = router.traffic();
        SimResult {
            per_rank,
            clocks,
            traffic,
        }
    }

    /// Convenience wrapper with default configuration.
    pub fn run_default<R, F>(p: usize, f: F) -> SimResult<R>
    where
        R: Send,
        F: Fn(ProcEnv) -> R + Send + Sync,
    {
        Universe::run(p, SimConfig::default(), f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::{Src, Transport};

    #[test]
    fn ranks_see_world() {
        let res = Universe::run_default(5, |env| (env.rank(), env.size()));
        assert_eq!(res.per_rank, vec![(0, 5), (1, 5), (2, 5), (3, 5), (4, 5)]);
    }

    #[test]
    fn ring_send_recv() {
        let res = Universe::run_default(4, |env| {
            let w = &env.world;
            let next = (w.rank() + 1) % 4;
            let prev = (w.rank() + 3) % 4;
            w.send(&[w.rank() as u64], next, 1).unwrap();
            let (v, st) = w.recv::<u64>(Src::Rank(prev), 1).unwrap();
            assert_eq!(st.source, prev);
            v[0]
        });
        assert_eq!(res.per_rank, vec![3, 0, 1, 2]);
    }

    #[test]
    fn clocks_collected() {
        let res = Universe::run_default(2, |env| {
            env.state().charge(Time::from_millis(env.rank() as u64 + 1));
        });
        assert_eq!(res.clocks[0], Time::from_millis(1));
        assert_eq!(res.clocks[1], Time::from_millis(2));
        assert_eq!(res.max_time(), Time::from_millis(2));
        assert_eq!(res.min_time(), Time::from_millis(1));
    }

    #[test]
    #[should_panic]
    fn rank_panic_propagates() {
        Universe::run_default(2, |env| {
            if env.rank() == 1 {
                panic!("boom");
            }
        });
    }

    #[test]
    fn deterministic_results_across_runs() {
        let run = || {
            Universe::run(3, SimConfig::default().with_seed(7), |env| {
                env.state().rand_index(1_000_000)
            })
            .per_rank
        };
        assert_eq!(run(), run());
    }
}
