//! The universe: runs `p` simulated MPI processes under one of two
//! backends — an OS thread per rank, or the cooperative fiber scheduler
//! ([`crate::sched`]) that multiplexes all ranks over a small worker pool
//! and scales to the paper's 2^15 processes.
//!
//! ```
//! use mpisim::{Universe, SimConfig, Transport};
//!
//! let res = Universe::run(4, SimConfig::default(), |env| {
//!     let world = env.world.clone();
//!     let mut x = vec![world.rank() as u64];
//!     world.bcast(&mut x, 0).unwrap();
//!     x[0]
//! });
//! assert_eq!(res.per_rank, vec![0, 0, 0, 0]);
//! ```
//!
//! The same program at 2^15 ranks, which the thread backend cannot reach:
//!
//! ```
//! use mpisim::{Universe, SimConfig, Transport};
//!
//! let res = Universe::run(1 << 10, SimConfig::cooperative(), |env| {
//!     env.world.allreduce(&[1u64], |a, b| a + b).unwrap()[0]
//! });
//! assert!(res.per_rank.iter().all(|&s| s == 1 << 10));
//! ```

use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::comm::Comm;
use crate::faults::{FaultPlan, FaultState};
use crate::model::{CommitAlgo, CostModel, VendorProfile};
use crate::proc::{ProcState, Router};
use crate::sched;
use crate::time::Time;

/// Which runtime executes the rank bodies.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Backend {
    /// One OS thread per simulated rank. Simple and preemptive; practical
    /// up to a few hundred ranks.
    Threads,
    /// The cooperative fiber scheduler: all ranks multiplexed over
    /// [`SimConfig::coop_workers`] OS threads under an epoch discipline
    /// that makes runs **bit-for-bit deterministic in `(program, seed)`
    /// for any worker count** — message deliveries commit at epoch
    /// boundaries in global virtual-time order (see [`crate::sched`] and
    /// DESIGN.md §5). Required for the paper's large-p regime (up to 2^15
    /// ranks). On targets without fiber support this falls back to
    /// `Threads`.
    Cooperative,
}

/// Configuration of a simulation run.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// The machine's α–β cost model.
    pub cost: CostModel,
    /// The MPI-implementation personality to simulate.
    pub vendor: VendorProfile,
    /// Wall-clock deadlock-detection timeout for blocking operations
    /// (thread backend; the cooperative backend detects deadlock exactly).
    pub recv_timeout: Duration,
    /// Base seed for per-rank deterministic RNG streams and the cooperative
    /// scheduler's initial run order.
    pub seed: u64,
    /// OS thread stack size per rank under [`Backend::Threads`].
    pub stack_size: usize,
    /// Which runtime executes rank bodies.
    pub backend: Backend,
    /// Worker threads of the cooperative scheduler. The epoch discipline
    /// makes the schedule — and therefore message-delivery order — a pure
    /// function of `(program, seed)` for **every** worker count, so this
    /// is purely a throughput knob: raise it to the host's core count to
    /// run independent ranks of each epoch in parallel with identical
    /// output.
    pub coop_workers: usize,
    /// Fiber stack size per rank under [`Backend::Cooperative`]. All fiber
    /// stacks are carved from one commit-on-touch `mmap` slab with a
    /// `PROT_NONE` **guard page** below each stack, so an overrun faults
    /// instead of corrupting the neighbouring fiber (plus a bottom-of-stack
    /// canary as a second line). Guards cost ~2·p kernel VMAs, so above
    /// roughly 30k ranks (half the default Linux `vm.max_map_count`) the
    /// slab stays a single unguarded mapping and the canary is the only
    /// line — as is the rare `mmap`-unavailable heap fallback. The virtual
    /// reservation is about `p * (coop_stack_size + page)` — the 128 KiB
    /// default keeps a 2^15-rank universe at a ~4 GiB `MAP_NORESERVE`
    /// reservation, of which only touched pages are committed. Raise it
    /// for rank bodies with deep recursion.
    pub coop_stack_size: usize,
    /// How the cooperative scheduler's epoch commit delivers staged
    /// messages: [`CommitAlgo::Sharded`] (default) partitions the
    /// globally sorted run by destination rank and lets all idle workers
    /// push segments in parallel; [`CommitAlgo::Serial`] is the original
    /// single-threaded commit, kept as the correctness oracle. Both
    /// produce bit-identical output for every worker count; only
    /// wall-clock speed differs. Ignored by [`Backend::Threads`].
    pub commit_algo: CommitAlgo,
    /// Upper bound on the claim units of one sharded commit (0 = auto:
    /// ~2 shards per worker, with small commits staying inline on the
    /// committing worker). Like `coop_workers`, this is purely a
    /// throughput knob — any value yields identical output.
    pub coop_commit_shards: usize,
    /// Seeded fault-injection plan (stragglers, crash-stop, message
    /// jitter); the default plan injects nothing. Faults are a pure
    /// function of `(program, seed, perturb_seed)` — never of the worker
    /// count or commit algorithm — so faulted runs keep the bit-identical
    /// determinism guarantees. See [`crate::faults`].
    pub faults: FaultPlan,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            cost: CostModel::supermuc_like(),
            vendor: VendorProfile::neutral(),
            recv_timeout: Duration::from_secs(30),
            seed: 0x5bc,
            stack_size: 1 << 20,
            backend: Backend::Threads,
            coop_workers: 1,
            coop_stack_size: 128 << 10,
            commit_algo: CommitAlgo::Sharded,
            coop_commit_shards: 0,
            faults: FaultPlan::default(),
        }
    }
}

impl SimConfig {
    /// Default configuration on the cooperative scheduler backend. The
    /// worker-pool size honours the `MPISIM_COOP_WORKERS` environment
    /// variable (default 1), the commit algorithm honours
    /// `MPISIM_COOP_COMMIT` (`sharded`, the default, or `serial` for the
    /// oracle), and the shard cap honours `MPISIM_COOP_COMMIT_SHARDS`
    /// (0 = auto) — so sweeps and CI can exercise the whole matrix
    /// without code changes. Results are identical for every combination.
    /// The fault plan honours the `MPISIM_FAULT_SEED` / `MPISIM_FAULT_SLOW`
    /// / `MPISIM_FAULT_CRASH` / `MPISIM_FAULT_JITTER` knobs (strict
    /// parsing; see [`FaultPlan::from_env`]) — unlike the commit knobs,
    /// a fault plan *does* change what is simulated, deterministically.
    pub fn cooperative() -> SimConfig {
        let workers = std::env::var("MPISIM_COOP_WORKERS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or(1)
            .max(1);
        let commit_algo = commit_algo_from(std::env::var("MPISIM_COOP_COMMIT").ok().as_deref());
        let shards = commit_shards_from(std::env::var("MPISIM_COOP_COMMIT_SHARDS").ok().as_deref());
        SimConfig {
            backend: Backend::Cooperative,
            coop_workers: workers,
            commit_algo,
            coop_commit_shards: shards,
            faults: FaultPlan::from_env(),
            ..SimConfig::default()
        }
    }

    /// Replace the backend.
    pub fn with_backend(mut self, backend: Backend) -> SimConfig {
        self.backend = backend;
        self
    }

    /// Replace the cooperative worker count (any count is deterministic;
    /// more workers only changes wall-clock speed).
    pub fn with_workers(mut self, workers: usize) -> SimConfig {
        self.coop_workers = workers.max(1);
        self
    }

    /// Replace the vendor profile.
    pub fn with_vendor(mut self, vendor: VendorProfile) -> SimConfig {
        self.vendor = vendor;
        self
    }

    /// Replace the cooperative scheduler's epoch-commit algorithm (the
    /// single-threaded [`CommitAlgo::Serial`] survives as the correctness
    /// oracle for the default destination-sharded commit; output is
    /// bit-identical either way).
    pub fn with_commit_algo(mut self, algo: CommitAlgo) -> SimConfig {
        self.commit_algo = algo;
        self
    }

    /// Replace the sharded commit's claim-unit cap (0 = auto; any value
    /// yields identical output, see [`SimConfig::coop_commit_shards`]).
    pub fn with_commit_shards(mut self, shards: usize) -> SimConfig {
        self.coop_commit_shards = shards;
        self
    }

    /// Replace the `MPI_Comm_split` algorithm (the legacy
    /// [`crate::model::SplitAlgo::Allgather`] survives as the correctness
    /// oracle for the default distributed sort).
    pub fn with_split_algo(mut self, algo: crate::model::SplitAlgo) -> SimConfig {
        self.vendor.split_algo = algo;
        self
    }

    /// Replace the base RNG seed.
    pub fn with_seed(mut self, seed: u64) -> SimConfig {
        self.seed = seed;
        self
    }

    /// Replace the deadlock-detection timeout.
    pub fn with_timeout(mut self, t: Duration) -> SimConfig {
        self.recv_timeout = t;
        self
    }

    /// Replace the per-rank OS thread stack size (thread backend).
    pub fn with_stack_size(mut self, bytes: usize) -> SimConfig {
        self.stack_size = bytes;
        self
    }

    /// Replace the per-rank fiber stack size (cooperative backend).
    pub fn with_coop_stack_size(mut self, bytes: usize) -> SimConfig {
        self.coop_stack_size = bytes;
        self
    }

    /// Replace the fault-injection plan.
    pub fn with_faults(mut self, plan: FaultPlan) -> SimConfig {
        self.faults = plan;
        self
    }
}

/// Parse a `MPISIM_COOP_COMMIT` override (case-insensitive `sharded` /
/// `serial`; unset or blank means the default).
///
/// Unknown values **panic** rather than falling back: this knob selects
/// the correctness *oracle*, and a mistyped `MPISIM_COOP_COMMIT=Seral`
/// silently running the sharded default would make every
/// serial-vs-sharded byte-diff compare sharded against itself —
/// vacuously green, with no signal that the oracle never ran.
fn commit_algo_from(var: Option<&str>) -> CommitAlgo {
    match var.map(|v| v.trim().to_ascii_lowercase()).as_deref() {
        None | Some("") | Some("sharded") => CommitAlgo::Sharded,
        Some("serial") => CommitAlgo::Serial,
        Some(other) => panic!(
            "MPISIM_COOP_COMMIT={other:?} is not a commit algorithm \
             (expected \"sharded\" or \"serial\")"
        ),
    }
}

/// Parse a `MPISIM_COOP_COMMIT_SHARDS` override (a claim-unit cap;
/// 0 or unset = auto). Unparsable values fall back to auto — unlike the
/// algorithm knob this only tunes throughput, never what is computed.
fn commit_shards_from(var: Option<&str>) -> usize {
    var.and_then(|v| v.trim().parse::<usize>().ok())
        .unwrap_or(0)
}

/// Handed to every rank body.
#[derive(Clone)]
pub struct ProcEnv {
    /// `MPI_COMM_WORLD`.
    pub world: Comm,
}

impl ProcEnv {
    /// This process's world rank.
    pub fn rank(&self) -> usize {
        use crate::transport::Transport;
        self.world.rank()
    }

    /// Number of processes in the universe.
    pub fn size(&self) -> usize {
        use crate::transport::Transport;
        self.world.size()
    }

    /// This rank's simulator state.
    pub fn state(&self) -> &Arc<ProcState> {
        self.world.proc_state()
    }

    /// This rank's virtual clock.
    pub fn now(&self) -> Time {
        self.state().now()
    }
}

/// Outcome of a simulation: per-rank return values, final virtual clocks,
/// and the total message traffic.
#[derive(Debug)]
pub struct SimResult<R> {
    /// Each rank body's return value, indexed by rank.
    pub per_rank: Vec<R>,
    /// Each rank's virtual clock at exit.
    pub clocks: Vec<Time>,
    /// Total messages/bytes sent during the run.
    pub traffic: crate::proc::Traffic,
}

impl<R> SimResult<R> {
    /// Makespan: the latest rank clock — what the paper reports as the
    /// running time of an operation executed by all processes.
    pub fn max_time(&self) -> Time {
        self.clocks.iter().copied().max().unwrap_or(Time::ZERO)
    }

    /// The earliest rank clock at exit.
    pub fn min_time(&self) -> Time {
        self.clocks.iter().copied().min().unwrap_or(Time::ZERO)
    }
}

/// Entry point; stateless. See [`Universe::run`].
pub struct Universe;

impl Universe {
    /// Run `f` on `p` simulated processes under `cfg.backend` and collect
    /// results. Panics in any rank propagate.
    pub fn run<R, F>(p: usize, cfg: SimConfig, f: F) -> SimResult<R>
    where
        R: Send,
        F: Fn(ProcEnv) -> R + Send + Sync,
    {
        assert!(p >= 1, "need at least one process");
        let router = Arc::new(Router::new(
            p,
            cfg.cost.clone(),
            cfg.vendor.clone(),
            cfg.recv_timeout,
            FaultState::resolve(&cfg.faults, p),
        ));
        let states: Vec<Arc<ProcState>> = (0..p)
            .map(|r| ProcState::new(r, Arc::clone(&router), cfg.seed))
            .collect();
        let results: Mutex<Vec<Option<R>>> = Mutex::new((0..p).map(|_| None).collect());

        match cfg.backend {
            Backend::Cooperative if sched::SUPPORTED => {
                Self::run_coop(p, &cfg, &f, &router, &states, &results)
            }
            _ => Self::run_threads(p, &cfg, &f, &states, &results),
        }

        let per_rank = results
            .into_inner()
            .into_iter()
            .map(|r| r.expect("rank completed"))
            .collect();
        let clocks = states.iter().map(|s| s.now()).collect();
        let traffic = router.traffic();
        SimResult {
            per_rank,
            clocks,
            traffic,
        }
    }

    /// Thread backend: one scoped OS thread per rank.
    fn run_threads<R, F>(
        p: usize,
        cfg: &SimConfig,
        f: &F,
        states: &[Arc<ProcState>],
        results: &Mutex<Vec<Option<R>>>,
    ) where
        R: Send,
        F: Fn(ProcEnv) -> R + Send + Sync,
    {
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(p);
            for state in states {
                let state = Arc::clone(state);
                let h = std::thread::Builder::new()
                    .name(format!("rank{}", state.global_rank))
                    .stack_size(cfg.stack_size)
                    .spawn_scoped(scope, move || {
                        let rank = state.global_rank;
                        let env = ProcEnv {
                            world: Comm::world(state),
                        };
                        let out = f(env);
                        results.lock()[rank] = Some(out);
                    })
                    .expect("spawn rank thread");
                handles.push(h);
            }
            for h in handles {
                if let Err(e) = h.join() {
                    std::panic::resume_unwind(e);
                }
            }
        });
    }

    /// Cooperative backend: every rank is a fiber on the shared scheduler.
    #[cfg(all(unix, any(target_arch = "x86_64", target_arch = "aarch64")))]
    fn run_coop<R, F>(
        p: usize,
        cfg: &SimConfig,
        f: &F,
        router: &Arc<Router>,
        states: &[Arc<ProcState>],
        results: &Mutex<Vec<Option<R>>>,
    ) where
        R: Send,
        F: Fn(ProcEnv) -> R + Send + Sync,
    {
        let scheduler = sched::Scheduler::new(
            p,
            cfg.coop_stack_size,
            Arc::clone(router),
            cfg.commit_algo,
            cfg.coop_commit_shards,
        );
        let store = scheduler.panic_store();
        for (rank, state) in states.iter().enumerate() {
            let state = Arc::clone(state);
            let store = Arc::clone(&store);
            let body = move || {
                let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    let env = ProcEnv {
                        world: Comm::world(state),
                    };
                    f(env)
                }));
                match out {
                    Ok(v) => results.lock()[rank] = Some(v),
                    Err(e) => sched::record_panic(&store, rank, e),
                }
            };
            // Safety: `run` below drives every fiber to completion before
            // returning, so the body's borrows of `f` and `results` never
            // outlive this stack frame.
            unsafe {
                scheduler.spawn(rank, erase_body_lifetime(Box::new(body)));
            }
        }
        // Deterministic seeded initial run order.
        let mut order: Vec<usize> = (0..p).collect();
        let mut rng = StdRng::seed_from_u64(
            cfg.seed
                .wrapping_mul(0xD1B5_4A32_D192_ED03)
                .wrapping_add(0x9E6D),
        );
        for i in (1..p).rev() {
            let j = rng.gen_range(0..i + 1);
            order.swap(i, j);
        }
        if let Some((_rank, payload)) = scheduler.run(cfg.coop_workers, &order) {
            std::panic::resume_unwind(payload);
        }
    }

    /// Fallback for targets without a fiber implementation: the dispatch
    /// in [`Universe::run`] never reaches this arm there (`sched::SUPPORTED`
    /// is false), but the call must still compile.
    #[cfg(not(all(unix, any(target_arch = "x86_64", target_arch = "aarch64"))))]
    fn run_coop<R, F>(
        p: usize,
        cfg: &SimConfig,
        f: &F,
        _router: &Arc<Router>,
        states: &[Arc<ProcState>],
        results: &Mutex<Vec<Option<R>>>,
    ) where
        R: Send,
        F: Fn(ProcEnv) -> R + Send + Sync,
    {
        Self::run_threads(p, cfg, f, states, results)
    }

    /// Convenience wrapper with default configuration (thread backend).
    pub fn run_default<R, F>(p: usize, f: F) -> SimResult<R>
    where
        R: Send,
        F: Fn(ProcEnv) -> R + Send + Sync,
    {
        Universe::run(p, SimConfig::default(), f)
    }
}

/// Erase a rank body's borrow lifetime so it can live in a task slot; see
/// the safety comment at the call site.
#[cfg(all(unix, any(target_arch = "x86_64", target_arch = "aarch64")))]
unsafe fn erase_body_lifetime<'a>(
    b: Box<dyn FnOnce() + Send + 'a>,
) -> Box<dyn FnOnce() + Send + 'static> {
    std::mem::transmute(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::{Src, Transport};

    #[test]
    fn ranks_see_world() {
        let res = Universe::run_default(5, |env| (env.rank(), env.size()));
        assert_eq!(res.per_rank, vec![(0, 5), (1, 5), (2, 5), (3, 5), (4, 5)]);
    }

    #[test]
    fn ring_send_recv() {
        let res = Universe::run_default(4, |env| {
            let w = &env.world;
            let next = (w.rank() + 1) % 4;
            let prev = (w.rank() + 3) % 4;
            w.send(&[w.rank() as u64], next, 1).unwrap();
            let (v, st) = w.recv::<u64>(Src::Rank(prev), 1).unwrap();
            assert_eq!(st.source, prev);
            v[0]
        });
        assert_eq!(res.per_rank, vec![3, 0, 1, 2]);
    }

    #[test]
    fn clocks_collected() {
        let res = Universe::run_default(2, |env| {
            env.state().charge(Time::from_millis(env.rank() as u64 + 1));
        });
        assert_eq!(res.clocks[0], Time::from_millis(1));
        assert_eq!(res.clocks[1], Time::from_millis(2));
        assert_eq!(res.max_time(), Time::from_millis(2));
        assert_eq!(res.min_time(), Time::from_millis(1));
    }

    #[test]
    #[should_panic]
    fn rank_panic_propagates() {
        Universe::run_default(2, |env| {
            if env.rank() == 1 {
                panic!("boom");
            }
        });
    }

    #[test]
    fn deterministic_results_across_runs() {
        let run = || {
            Universe::run(3, SimConfig::default().with_seed(7), |env| {
                env.state().rand_index(1_000_000)
            })
            .per_rank
        };
        assert_eq!(run(), run());
    }

    // ---- cooperative backend mirrors ---------------------------------------

    #[test]
    fn coop_ranks_see_world() {
        let res = Universe::run(5, SimConfig::cooperative(), |env| (env.rank(), env.size()));
        assert_eq!(res.per_rank, vec![(0, 5), (1, 5), (2, 5), (3, 5), (4, 5)]);
    }

    #[test]
    fn coop_ring_send_recv() {
        let res = Universe::run(4, SimConfig::cooperative(), |env| {
            let w = &env.world;
            let next = (w.rank() + 1) % 4;
            let prev = (w.rank() + 3) % 4;
            w.send(&[w.rank() as u64], next, 1).unwrap();
            let (v, st) = w.recv::<u64>(Src::Rank(prev), 1).unwrap();
            assert_eq!(st.source, prev);
            v[0]
        });
        assert_eq!(res.per_rank, vec![3, 0, 1, 2]);
    }

    #[test]
    #[should_panic]
    fn coop_rank_panic_propagates() {
        Universe::run(2, SimConfig::cooperative(), |env| {
            if env.rank() == 1 {
                panic!("boom");
            }
        });
    }

    #[test]
    fn commit_algo_knob_parses_strictly() {
        // Pure parsers so the tests never mutate process env (set_var is
        // a data race against concurrent env reads in parallel tests).
        assert_eq!(commit_algo_from(None), CommitAlgo::Sharded);
        assert_eq!(commit_algo_from(Some("")), CommitAlgo::Sharded);
        assert_eq!(commit_algo_from(Some("sharded")), CommitAlgo::Sharded);
        assert_eq!(commit_algo_from(Some("serial")), CommitAlgo::Serial);
        assert_eq!(commit_algo_from(Some(" Serial ")), CommitAlgo::Serial);
        assert_eq!(commit_algo_from(Some("SHARDED")), CommitAlgo::Sharded);
    }

    #[test]
    #[should_panic(expected = "not a commit algorithm")]
    fn commit_algo_knob_rejects_typos() {
        // A mistyped oracle selector must fail loudly, not silently run
        // the sharded default and turn the oracle diff into a no-op.
        commit_algo_from(Some("seral"));
    }

    #[test]
    fn commit_shards_knob_parses_with_auto_fallback() {
        assert_eq!(commit_shards_from(None), 0);
        assert_eq!(commit_shards_from(Some("7")), 7);
        assert_eq!(commit_shards_from(Some(" 16 ")), 16);
        assert_eq!(commit_shards_from(Some("lots")), 0);
    }

    #[test]
    fn coop_bcast_works() {
        let res = Universe::run(8, SimConfig::cooperative(), |env| {
            let mut x = vec![env.rank() as u64 * 100];
            env.world.bcast(&mut x, 3).unwrap();
            x[0]
        });
        assert_eq!(res.per_rank, vec![300; 8]);
    }
}
