//! Messages and matching.
//!
//! A message carries its sender's *global* rank, a tag, and the context ID
//! of the communicator it was sent over — exactly the header fields MPI uses
//! for matching (§III of the paper). Payloads are typed `Vec<T>` stored as
//! raw parts plus a `TypeId` (no serialization, and no per-message `Box`
//! allocation); an exclusively-owned payload that is dropped untaken
//! returns its allocation to the payload pool ([`crate::pool`]), which is
//! what lets steady-state epochs run allocation-free.
//!
//! # Zero-copy fan-out
//!
//! One-to-many patterns (broadcast trees, scatter setup, RBC tree stages)
//! send the *same* buffer to many destinations. Cloning a `Vec<T>` per
//! destination puts O(children · bytes) of copying on the critical path of
//! every interior tree node, so a payload can instead be **shared**: an
//! [`std::sync::Arc`]`<Vec<T>>` cloned per destination in O(1)
//! ([`Message::new_shared`]). Receivers that only read or forward keep the
//! `Arc` ([`Message::take_shared`]); a receiver that needs ownership pays
//! at most one copy, at its own rank, off the sender's critical path
//! ([`Message::take`] unwraps without copying when it holds the last
//! reference). Virtual-time cost accounting is unchanged — a shared send is
//! still a full `α + bytes·β` message; only the *simulator's* wall-clock
//! copying is elided.

use std::any::{Any, TypeId};
use std::fmt;
use std::mem::ManuallyDrop;
use std::sync::Arc;

use crate::datum::Datum;
use crate::error::{MpiError, Result};
use crate::time::Time;

/// Message tag. The simulator reserves the top bit of the tag space for
/// library-internal collectives (see [`crate::tags`]).
pub type Tag = u64;

/// A communicator context ID.
///
/// `Small` IDs come from the MPICH-style context-ID-mask agreement
/// (`comm_split` / `comm_create_group`). `Wide` IDs implement the paper's
/// §VI proposal for `MPI_Icomm_create_group`: a 5-tuple `⟨a, b, f, l, c⟩`
/// where `a` is the originating process, `b` its counter value, `f..l` the
/// range within the parent, and `c` a same-group generation counter.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ContextId {
    /// A classic small integer context ID from the mask agreement.
    Small(u32),
    /// A §VI 5-tuple context ID, allocatable without communication.
    Wide {
        /// Originating process (global rank).
        a: u32,
        /// Per-process creation counter at the originator.
        b: u32,
        /// First rank of the range within the parent group.
        f: u32,
        /// Last rank of the range within the parent group.
        l: u32,
        /// Same-group generation counter (distinguishes re-creations).
        c: u32,
    },
}

impl ContextId {
    /// Context ID of `MPI_COMM_WORLD`.
    pub const WORLD: ContextId = ContextId::Small(0);
}

impl fmt::Display for ContextId {
    fn fmt(&self, fm: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ContextId::Small(x) => write!(fm, "ctx#{x}"),
            ContextId::Wide { a, b, f, l, c } => write!(fm, "ctx<{a},{b},{f},{l},{c}>"),
        }
    }
}

/// Source specifier for receives and probes.
#[derive(Clone)]
pub enum SrcFilter {
    /// A specific *global* rank.
    Exact(usize),
    /// `MPI_ANY_SOURCE` within the communicator's group: any message in the
    /// context matches (all senders into a context are group members).
    Any,
    /// Wildcard restricted by a membership predicate over global ranks.
    /// RBC uses this for `ANY_SOURCE` on a sub-range communicator: probe any
    /// message, then test whether its source lies in the range (§V-C).
    Filter(Arc<dyn Fn(usize) -> bool + Send + Sync>),
}

impl SrcFilter {
    /// Whether a message from global rank `global_src` passes this filter.
    pub fn matches(&self, global_src: usize) -> bool {
        match self {
            SrcFilter::Exact(r) => *r == global_src,
            SrcFilter::Any => true,
            SrcFilter::Filter(f) => f(global_src),
        }
    }
}

impl fmt::Debug for SrcFilter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SrcFilter::Exact(r) => write!(f, "Exact({r})"),
            SrcFilter::Any => write!(f, "Any"),
            SrcFilter::Filter(_) => write!(f, "Filter(..)"),
        }
    }
}

/// What a receive/probe is looking for.
#[derive(Clone, Debug)]
pub struct MatchPattern {
    /// Context the operation runs in.
    pub ctx: ContextId,
    /// Which senders are acceptable.
    pub src: SrcFilter,
    /// Exact tag to match (no tag wildcard — the libraries never need one).
    pub tag: Tag,
}

impl MatchPattern {
    /// Whether `m` satisfies this pattern (same context, same tag,
    /// acceptable source).
    pub fn matches(&self, m: &Message) -> bool {
        m.ctx == self.ctx && m.tag == self.tag && self.src.matches(m.src_global)
    }
}

/// Metadata returned by probes and receives (analogue of `MPI_Status`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MsgInfo {
    /// Sender's global rank (callers translate to communicator ranks).
    pub src_global: usize,
    /// Tag the message was sent with.
    pub tag: Tag,
    /// Number of payload elements.
    pub count: usize,
    /// Payload size in bytes (elements × element width).
    pub bytes: usize,
    /// Virtual time at which the message is available at the receiver.
    pub arrival: Time,
}

/// An in-flight message.
pub struct Message {
    /// Sender's global rank.
    pub src_global: usize,
    /// Tag the message was sent with.
    pub tag: Tag,
    /// Context ID of the communicator it was sent over.
    pub ctx: ContextId,
    /// Number of payload elements.
    pub count: usize,
    /// Payload size in bytes.
    pub bytes: usize,
    /// `type_name` of the payload element type, for mismatch diagnostics.
    pub type_name: &'static str,
    /// Sender's virtual clock when the send was issued.
    pub send_time: Time,
    /// `send_time + α + bytes·β` under the sender's cost model.
    pub arrival: Time,
    payload: Payload,
}

/// Payload storage: exclusively owned (ordinary point-to-point) or shared
/// among the messages of one fan-out (see the module docs).
enum Payload {
    /// A `Vec<T>` owned by this message alone, stored as raw parts.
    Owned(OwnedVec),
    /// A `Vec<T>` behind an `Arc`, shared with the sibling messages of a
    /// one-to-many send (and possibly with the sender itself).
    Shared(Arc<dyn Any + Send + Sync>),
}

/// The raw parts of an exclusively-owned `Vec<T>` payload. Compared with
/// the former `Box<dyn Any + Send>` this avoids one heap allocation per
/// message, and its `Drop` returns the buffer to [`crate::pool`] instead
/// of freeing it — a message consumed by the scheduler's staged-send path
/// and later dropped (or type-mismatched) feeds the next send.
///
/// Safety invariant: `(ptr, len, cap)` are the raw parts of a live
/// `Vec<T>` with `TypeId::of::<T>() == tid`, exclusively owned by this
/// value, and `recycle` is monomorphized for that same `T`.
struct OwnedVec {
    ptr: *mut u8,
    len: usize,
    cap: usize,
    tid: TypeId,
    recycle: unsafe fn(*mut u8, usize),
}

// SAFETY: the buffer is exclusively owned (moved out of a unique `Vec`)
// and `T: Datum` implies `T: Send`.
unsafe impl Send for OwnedVec {}

/// Returns a payload buffer to the pool as the empty `Vec<T>` it came
/// from (elements are `Copy`, so no destructors are skipped).
unsafe fn recycle_as<T: Datum>(ptr: *mut u8, cap: usize) {
    crate::pool::recycle_vec(unsafe { Vec::from_raw_parts(ptr.cast::<T>(), 0, cap) });
}

impl OwnedVec {
    fn new<T: Datum>(data: Vec<T>) -> OwnedVec {
        let mut data = ManuallyDrop::new(data);
        OwnedVec {
            ptr: data.as_mut_ptr().cast::<u8>(),
            len: data.len(),
            cap: data.capacity(),
            tid: TypeId::of::<T>(),
            recycle: recycle_as::<T>,
        }
    }

    /// Reassemble the owned `Vec<T>`, or `None` on an element-type
    /// mismatch (in which case dropping `self` recycles the buffer under
    /// its true type).
    fn take<T: Datum>(self) -> Option<Vec<T>> {
        if self.tid != TypeId::of::<T>() {
            return None;
        }
        let this = ManuallyDrop::new(self);
        // SAFETY: the type just matched, so these are the raw parts of a
        // Vec<T>; ManuallyDrop forgoes the recycling drop.
        Some(unsafe { Vec::from_raw_parts(this.ptr.cast::<T>(), this.len, this.cap) })
    }
}

impl Drop for OwnedVec {
    fn drop(&mut self) {
        // SAFETY: struct invariant — `recycle` matches the buffer's type.
        unsafe { (self.recycle)(self.ptr, self.cap) }
    }
}

impl Message {
    /// Package `data` into a message with precomputed size and arrival time.
    pub fn new<T: Datum>(
        src_global: usize,
        tag: Tag,
        ctx: ContextId,
        data: Vec<T>,
        send_time: Time,
        arrival: Time,
    ) -> Message {
        Message {
            src_global,
            tag,
            ctx,
            count: data.len(),
            bytes: data.len() * T::width(),
            type_name: std::any::type_name::<T>(),
            send_time,
            arrival,
            payload: Payload::Owned(OwnedVec::new(data)),
        }
    }

    /// Package a shared buffer into a message without copying it: the `Arc`
    /// is cloned per destination, so a p-way fan-out of `l` bytes costs
    /// O(p) instead of O(p·l) at the sender.
    pub fn new_shared<T: Datum>(
        src_global: usize,
        tag: Tag,
        ctx: ContextId,
        data: Arc<Vec<T>>,
        send_time: Time,
        arrival: Time,
    ) -> Message {
        Message {
            src_global,
            tag,
            ctx,
            count: data.len(),
            bytes: data.len() * T::width(),
            type_name: std::any::type_name::<T>(),
            send_time,
            arrival,
            payload: Payload::Shared(data),
        }
    }

    /// The status header of this message.
    pub fn info(&self) -> MsgInfo {
        MsgInfo {
            src_global: self.src_global,
            tag: self.tag,
            count: self.count,
            bytes: self.bytes,
            arrival: self.arrival,
        }
    }

    /// Consume the message, extracting its typed payload. A shared payload
    /// is unwrapped without copying when this message holds the last
    /// reference, and cloned otherwise (at most one copy per receiver).
    pub fn take<T: Datum>(self) -> Result<(Vec<T>, MsgInfo)> {
        let info = self.info();
        let type_name = self.type_name;
        let mismatch = || MpiError::TypeMismatch {
            expected: std::any::type_name::<T>(),
            got: type_name,
        };
        match self.payload {
            Payload::Owned(b) => match b.take::<T>() {
                Some(v) => Ok((v, info)),
                None => Err(mismatch()),
            },
            Payload::Shared(a) => match a.downcast::<Vec<T>>() {
                Ok(v) => Ok((Arc::unwrap_or_clone(v), info)),
                Err(_) => Err(mismatch()),
            },
        }
    }

    /// Consume the message, extracting its payload behind an `Arc` without
    /// copying — the receive path of fan-out stages that only read or
    /// forward the buffer. An owned payload is wrapped in a fresh `Arc`
    /// (moves the `Vec`, no element copy).
    pub fn take_shared<T: Datum>(self) -> Result<(Arc<Vec<T>>, MsgInfo)> {
        let info = self.info();
        let type_name = self.type_name;
        let mismatch = || MpiError::TypeMismatch {
            expected: std::any::type_name::<T>(),
            got: type_name,
        };
        match self.payload {
            Payload::Owned(b) => match b.take::<T>() {
                Some(v) => Ok((Arc::new(v), info)),
                None => Err(mismatch()),
            },
            Payload::Shared(a) => match a.downcast::<Vec<T>>() {
                Ok(v) => Ok((v, info)),
                Err(_) => Err(mismatch()),
            },
        }
    }
}

impl fmt::Debug for Message {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Message{{src={}, tag={}, {}, count={}, arrival={}}}",
            self.src_global, self.tag, self.ctx, self.count, self.arrival
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(src: usize, tag: Tag, ctx: ContextId) -> Message {
        Message::new::<u64>(src, tag, ctx, vec![1, 2, 3], Time(0), Time(10))
    }

    #[test]
    fn take_roundtrip() {
        let m = mk(2, 7, ContextId::WORLD);
        let (v, info) = m.take::<u64>().unwrap();
        assert_eq!(v, vec![1, 2, 3]);
        assert_eq!(info.src_global, 2);
        assert_eq!(info.count, 3);
        assert_eq!(info.bytes, 24);
    }

    #[test]
    fn shared_payload_roundtrip_and_last_ref_moves() {
        let buf = Arc::new(vec![1u64, 2, 3]);
        let a =
            Message::new_shared::<u64>(0, 1, ContextId::WORLD, Arc::clone(&buf), Time(0), Time(5));
        let b =
            Message::new_shared::<u64>(0, 1, ContextId::WORLD, Arc::clone(&buf), Time(0), Time(5));
        assert_eq!(a.bytes, 24);
        // Reader path: no copy, still shared.
        let (shared, info) = a.take_shared::<u64>().unwrap();
        assert_eq!(*shared, vec![1, 2, 3]);
        assert_eq!(info.count, 3);
        // Owner path while other refs live: one clone.
        let (owned, _) = b.take::<u64>().unwrap();
        assert_eq!(owned, vec![1, 2, 3]);
        // Last reference: take() must move, not clone.
        drop((buf, shared));
        let last = Message::new_shared::<u64>(
            0,
            1,
            ContextId::WORLD,
            Arc::new(vec![9u64]),
            Time(0),
            Time(5),
        );
        let (v, _) = last.take::<u64>().unwrap();
        assert_eq!(v, vec![9]);
    }

    #[test]
    fn shared_payload_type_mismatch_detected() {
        let m = Message::new_shared::<u64>(
            0,
            0,
            ContextId::WORLD,
            Arc::new(vec![1u64]),
            Time(0),
            Time(1),
        );
        assert!(matches!(
            m.take::<f64>().unwrap_err(),
            MpiError::TypeMismatch { .. }
        ));
        let m = Message::new_shared::<u64>(
            0,
            0,
            ContextId::WORLD,
            Arc::new(vec![1u64]),
            Time(0),
            Time(1),
        );
        assert!(matches!(
            m.take_shared::<f64>().unwrap_err(),
            MpiError::TypeMismatch { .. }
        ));
    }

    #[test]
    fn type_mismatch_detected() {
        let m = mk(0, 0, ContextId::WORLD);
        let err = m.take::<f64>().unwrap_err();
        assert!(matches!(err, MpiError::TypeMismatch { .. }));
    }

    #[test]
    fn dropped_owned_payload_recycles_into_the_pool() {
        let mut data = crate::pool::take_vec::<u64>(50);
        data.extend(0..50);
        let ptr = data.as_ptr();
        drop(Message::new::<u64>(
            0,
            0,
            ContextId::WORLD,
            data,
            Time(0),
            Time(1),
        ));
        // The allocation must be reusable from this thread's free list.
        let back = crate::pool::take_vec::<u64>(50);
        assert_eq!(back.as_ptr(), ptr);
        crate::pool::recycle_vec(back);
    }

    #[test]
    fn mismatched_take_recycles_under_the_true_type() {
        let mut data = crate::pool::take_vec::<u32>(40);
        data.extend(0..40);
        let ptr = data.as_ptr();
        let m = Message::new::<u32>(0, 0, ContextId::WORLD, data, Time(0), Time(1));
        assert!(m.take::<f64>().is_err());
        let back = crate::pool::take_vec::<u32>(40);
        assert_eq!(back.as_ptr(), ptr);
        crate::pool::recycle_vec(back);
    }

    #[test]
    fn matching_by_ctx_src_tag() {
        let m = mk(2, 7, ContextId::Small(5));
        let hit = MatchPattern {
            ctx: ContextId::Small(5),
            src: SrcFilter::Exact(2),
            tag: 7,
        };
        assert!(hit.matches(&m));
        let wrong_ctx = MatchPattern {
            ctx: ContextId::Small(6),
            ..hit.clone()
        };
        assert!(!wrong_ctx.matches(&m));
        let wrong_src = MatchPattern {
            src: SrcFilter::Exact(3),
            ..hit.clone()
        };
        assert!(!wrong_src.matches(&m));
        let wrong_tag = MatchPattern { tag: 8, ..hit };
        assert!(!wrong_tag.matches(&m));
    }

    #[test]
    fn wildcard_and_filter() {
        let m = mk(4, 1, ContextId::WORLD);
        let any = MatchPattern {
            ctx: ContextId::WORLD,
            src: SrcFilter::Any,
            tag: 1,
        };
        assert!(any.matches(&m));
        let in_range = MatchPattern {
            ctx: ContextId::WORLD,
            src: SrcFilter::Filter(Arc::new(|g| (2..=5).contains(&g))),
            tag: 1,
        };
        assert!(in_range.matches(&m));
        let out_of_range = MatchPattern {
            ctx: ContextId::WORLD,
            src: SrcFilter::Filter(Arc::new(|g| g > 10)),
            tag: 1,
        };
        assert!(!out_of_range.matches(&m));
    }

    #[test]
    fn wide_context_ids_distinct_from_small() {
        let wide = ContextId::Wide {
            a: 0,
            b: 0,
            f: 0,
            l: 3,
            c: 0,
        };
        assert_ne!(wide, ContextId::Small(0));
        assert_eq!(format!("{wide}"), "ctx<0,0,0,3,0>");
    }
}
