//! Reserved tag space.
//!
//! The paper (§V-D): "We define a distinct exclusive tag for each blocking
//! collective operation" and nonblocking collectives get default tags that
//! the user may override. User code must stay below [`RESERVED_BASE`];
//! everything above is library-internal. Collectives that need two message
//! streams (gatherv: metadata + payload) reserve two consecutive tags.

use crate::msg::Tag;

/// First reserved tag; user tags must be `< RESERVED_BASE`.
pub const RESERVED_BASE: Tag = 1 << 62;

pub const fn is_reserved(tag: Tag) -> bool {
    tag >= RESERVED_BASE
}

// Blocking collectives (one exclusive tag each; gatherv-based ops use +1 too).
pub const BCAST: Tag = RESERVED_BASE;
pub const REDUCE: Tag = RESERVED_BASE + 2;
pub const ALLREDUCE: Tag = RESERVED_BASE + 4;
pub const SCAN: Tag = RESERVED_BASE + 6;
pub const EXSCAN: Tag = RESERVED_BASE + 8;
pub const GATHER: Tag = RESERVED_BASE + 10;
pub const GATHERV: Tag = RESERVED_BASE + 12;
pub const ALLGATHER: Tag = RESERVED_BASE + 14;
pub const BARRIER: Tag = RESERVED_BASE + 16;
pub const ALLTOALL: Tag = RESERVED_BASE + 18;

/// Context-ID mask agreement during `split`/`dup`.
pub const CTX_AGREE: Tag = RESERVED_BASE + 20;
/// All-gather of `(color, key)` during `MPI_Comm_split`.
pub const SPLIT_GATHER: Tag = RESERVED_BASE + 22;
pub const SCATTER: Tag = RESERVED_BASE + 24;
pub const SCATTERV: Tag = RESERVED_BASE + 26;
pub const ALLGATHERV: Tag = RESERVED_BASE + 28; // +2, +3 for the bcasts
pub const ALLTOALLW: Tag = RESERVED_BASE + 34;

// Default tags for nonblocking collectives (paper: `RBC_IBCAST_TAG` etc.).
// Users may pass their own tag instead to run several operations of the
// same class concurrently.
pub const IBCAST: Tag = RESERVED_BASE + 100;
pub const IREDUCE: Tag = RESERVED_BASE + 102;
pub const ISCAN: Tag = RESERVED_BASE + 104;
pub const IEXSCAN: Tag = RESERVED_BASE + 106;
pub const IGATHER: Tag = RESERVED_BASE + 108;
pub const IGATHERV: Tag = RESERVED_BASE + 110;
pub const IBARRIER: Tag = RESERVED_BASE + 112;
pub const IALLREDUCE: Tag = RESERVED_BASE + 114;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserved_predicate() {
        assert!(is_reserved(BCAST));
        assert!(is_reserved(IALLREDUCE));
        assert!(!is_reserved(0));
        assert!(!is_reserved(RESERVED_BASE - 1));
    }

    #[test]
    fn all_distinct_with_headroom() {
        let tags = [
            BCAST, REDUCE, ALLREDUCE, SCAN, EXSCAN, GATHER, GATHERV, ALLGATHER, BARRIER,
            ALLTOALL, CTX_AGREE, SPLIT_GATHER, SCATTER, SCATTERV, ALLTOALLW, IBCAST, IREDUCE,
            ISCAN, IEXSCAN, IGATHER, IGATHERV, IBARRIER, IALLREDUCE,
        ];
        for (i, a) in tags.iter().enumerate() {
            for b in &tags[i + 1..] {
                // Each op may also use tag+1 for a second stream.
                assert!(a.abs_diff(*b) >= 2, "tags {a} and {b} too close");
            }
        }
    }
}
