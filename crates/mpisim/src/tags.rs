//! Reserved tag space.
//!
//! The paper (§V-D): "We define a distinct exclusive tag for each blocking
//! collective operation" and nonblocking collectives get default tags that
//! the user may override. User code must stay below [`RESERVED_BASE`];
//! everything above is library-internal. Collectives that need two message
//! streams (gatherv: metadata + payload) reserve two consecutive tags.

use crate::msg::Tag;

/// First reserved tag; user tags must be `< RESERVED_BASE`.
pub const RESERVED_BASE: Tag = 1 << 62;

/// Whether `tag` lies in the library-reserved space.
pub const fn is_reserved(tag: Tag) -> bool {
    tag >= RESERVED_BASE
}

// Blocking collectives (one exclusive tag each; gatherv-based ops use +1 too).
/// Exclusive tag of blocking `bcast` (§V-D).
pub const BCAST: Tag = RESERVED_BASE;
/// Exclusive tag of blocking `reduce`.
pub const REDUCE: Tag = RESERVED_BASE + 2;
/// Exclusive tag of blocking `allreduce`.
pub const ALLREDUCE: Tag = RESERVED_BASE + 4;
/// Exclusive tag of blocking `scan`.
pub const SCAN: Tag = RESERVED_BASE + 6;
/// Exclusive tag of blocking `exscan`.
pub const EXSCAN: Tag = RESERVED_BASE + 8;
/// Exclusive tag of blocking `gather`.
pub const GATHER: Tag = RESERVED_BASE + 10;
/// Exclusive tag of blocking `gatherv` (metadata stream; payload uses +1).
pub const GATHERV: Tag = RESERVED_BASE + 12;
/// Exclusive tag of blocking `allgather`.
pub const ALLGATHER: Tag = RESERVED_BASE + 14;
/// Exclusive tag of blocking `barrier`.
pub const BARRIER: Tag = RESERVED_BASE + 16;
/// Exclusive tag of blocking `alltoall`.
pub const ALLTOALL: Tag = RESERVED_BASE + 18;

/// Context-ID mask agreement during `split`/`dup`.
pub const CTX_AGREE: Tag = RESERVED_BASE + 20;
/// All-gather of `(color, key)` during the legacy all-gather
/// `MPI_Comm_split` (the correctness oracle, `SplitAlgo::Allgather`).
pub const SPLIT_GATHER: Tag = RESERVED_BASE + 22;
/// Exclusive tag of blocking `scatter`.
pub const SCATTER: Tag = RESERVED_BASE + 24;
/// Exclusive tag of blocking `scatterv` (counts stream; payload uses +1).
pub const SCATTERV: Tag = RESERVED_BASE + 26;
/// Exclusive tag of blocking `allgatherv` (also claims +2/+3 for its bcasts).
pub const ALLGATHERV: Tag = RESERVED_BASE + 28; // +2, +3 for the bcasts
/// Exclusive tag of blocking `alltoallw`.
pub const ALLTOALLW: Tag = RESERVED_BASE + 34;

// Distributed-sort `MPI_Comm_split` (`SplitAlgo::DistributedSort`, the
// default): sample-sort of `(color, key, rank)` triples over the parent.
/// Sample gather + splitter broadcast (claims +1 for the gatherv payload
/// and +2 for the broadcast).
pub const SPLIT_SAMPLE: Tag = RESERVED_BASE + 36;
/// All-reduce of per-bucket triple counts.
pub const SPLIT_COUNT: Tag = RESERVED_BASE + 40;
/// Triples travelling from their origin rank to their bucket leader.
pub const SPLIT_ROUTE: Tag = RESERVED_BASE + 42;
/// Exclusive prefix sum of sorted-triple counts (global positions).
pub const SPLIT_POS_SCAN: Tag = RESERVED_BASE + 44;
/// Segmented color scan (run boundaries and color indices).
pub const SPLIT_SEG_SCAN: Tag = RESERVED_BASE + 46;
/// All-reduce of the distinct-color count.
pub const SPLIT_NCOLORS: Tag = RESERVED_BASE + 48;
/// Leader summary table: leaders -> rank 0, then a binomial tree over the
/// leaders only.
pub const SPLIT_LEADERS: Tag = RESERVED_BASE + 50;
/// A leader's continuation portion of a color segment, sent to the
/// segment's gathering leader.
pub const SPLIT_PORTION: Tag = RESERVED_BASE + 52;
/// New-group notification headers travelling down the member binomial tree.
pub const SPLIT_NOTIFY: Tag = RESERVED_BASE + 54;
/// Dense member tables accompanying [`SPLIT_NOTIFY`] headers.
pub const SPLIT_TABLE: Tag = RESERVED_BASE + 56;

// Default tags for nonblocking collectives (paper: `RBC_IBCAST_TAG` etc.).
// Users may pass their own tag instead to run several operations of the
// same class concurrently.
/// Default tag of nonblocking `ibcast` (paper: `RBC_IBCAST_TAG`).
pub const IBCAST: Tag = RESERVED_BASE + 100;
/// Default tag of nonblocking `ireduce`.
pub const IREDUCE: Tag = RESERVED_BASE + 102;
/// Default tag of nonblocking `iscan`.
pub const ISCAN: Tag = RESERVED_BASE + 104;
/// Default tag of nonblocking `iexscan`.
pub const IEXSCAN: Tag = RESERVED_BASE + 106;
/// Default tag of nonblocking `igather`.
pub const IGATHER: Tag = RESERVED_BASE + 108;
/// Default tag of nonblocking `igatherv` (payload stream uses +1).
pub const IGATHERV: Tag = RESERVED_BASE + 110;
/// Default tag of nonblocking `ibarrier`.
pub const IBARRIER: Tag = RESERVED_BASE + 112;
/// Default tag of nonblocking `iallreduce`.
pub const IALLREDUCE: Tag = RESERVED_BASE + 114;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserved_predicate() {
        assert!(is_reserved(BCAST));
        assert!(is_reserved(IALLREDUCE));
        assert!(!is_reserved(0));
        assert!(!is_reserved(RESERVED_BASE - 1));
    }

    #[test]
    fn all_distinct_with_headroom() {
        let tags = [
            BCAST,
            REDUCE,
            ALLREDUCE,
            SCAN,
            EXSCAN,
            GATHER,
            GATHERV,
            ALLGATHER,
            BARRIER,
            ALLTOALL,
            CTX_AGREE,
            SPLIT_GATHER,
            SCATTER,
            SCATTERV,
            ALLTOALLW,
            SPLIT_SAMPLE,
            SPLIT_COUNT,
            SPLIT_ROUTE,
            SPLIT_POS_SCAN,
            SPLIT_SEG_SCAN,
            SPLIT_NCOLORS,
            SPLIT_LEADERS,
            SPLIT_PORTION,
            SPLIT_NOTIFY,
            SPLIT_TABLE,
            IBCAST,
            IREDUCE,
            ISCAN,
            IEXSCAN,
            IGATHER,
            IGATHERV,
            IBARRIER,
            IALLREDUCE,
        ];
        for (i, a) in tags.iter().enumerate() {
            for b in &tags[i + 1..] {
                // Each op may also use tag+1 for a second stream.
                assert!(a.abs_diff(*b) >= 2, "tags {a} and {b} too close");
            }
        }
    }
}
