//! Native MPI communicators.
//!
//! `Comm` is the analogue of `MPI_Comm`: a context ID plus a process group.
//! The two construction paths the paper benchmarks (Fig. 5) are implemented
//! with their real algorithms so their costs *emerge* from the α–β model:
//!
//! * [`Comm::split`] — `MPI_Comm_split`: by default the distributed
//!   sample-sort algorithm of the private `splitdist` module (O(p log p) work,
//!   O(√p + p/groups) memory per rank — what production MPI stacks run at
//!   scale); the textbook all-gather of `(color, key)` over the **parent**
//!   plus local O(p log p) grouping survives behind
//!   [`SplitAlgo::Allgather`] as the correctness oracle;
//! * [`Comm::create_group`] — `MPI_Comm_create_group`: collective only over
//!   the **new group**'s members, a context-ID-mask all-reduce over that
//!   group, and explicit O(g) group-array construction (the linear cost the
//!   paper observes in Intel MPI). The IBM-like vendor profile instead
//!   serialises agreement through a leader ring, reproducing the
//!   "disproportionately slow" behaviour of Fig. 5.

use std::sync::Arc;

use crate::coll;
use crate::context::{mask_and, CtxMask, CtxPool};
use crate::datum::ops;
use crate::error::{MpiError, Result};
use crate::group::Group;
use crate::model::{CreateGroupAlgo, SplitAlgo};
use crate::msg::{ContextId, SrcFilter, Tag};
use crate::proc::ProcState;
use crate::tags;
use crate::time::Time;
use crate::transport::Transport;

struct CommInner {
    ctx: ContextId,
    group: Group,
    rank: usize,
}

/// A native communicator handle (per process — cloning shares it).
#[derive(Clone)]
pub struct Comm {
    state: Arc<ProcState>,
    inner: Arc<CommInner>,
}

impl Comm {
    /// `MPI_COMM_WORLD` for this process.
    pub fn world(state: Arc<ProcState>) -> Comm {
        let p = state.router.nprocs();
        let rank = state.global_rank;
        Comm {
            state,
            inner: Arc::new(CommInner {
                ctx: ContextId::WORLD,
                group: Group::world(p),
                rank,
            }),
        }
    }

    /// Internal: a communicator *view* sharing this communicator's context
    /// but restricted to `group`. This is what communicator-construction
    /// algorithms communicate over before the new context exists (and is,
    /// conceptually, exactly RBC's trick).
    pub(crate) fn view(&self, group: Group) -> Result<Comm> {
        let rank = group
            .inverse(self.state.global_rank)
            .ok_or_else(|| MpiError::Usage("calling process not in view group".into()))?;
        Ok(Comm {
            state: Arc::clone(&self.state),
            inner: Arc::new(CommInner {
                ctx: self.inner.ctx,
                group,
                rank,
            }),
        })
    }

    /// Internal: re-home this process's handle onto a new context/group
    /// (used by `icomm_create_group`, which computes context IDs itself).
    pub(crate) fn clone_with_ctx(&self, ctx: ContextId, group: Group) -> Result<Comm> {
        self.with_new_ctx(ctx, group)
    }

    pub(crate) fn with_new_ctx(&self, ctx: ContextId, group: Group) -> Result<Comm> {
        let rank = group
            .inverse(self.state.global_rank)
            .ok_or_else(|| MpiError::Usage("calling process not in new group".into()))?;
        Ok(Comm {
            state: Arc::clone(&self.state),
            inner: Arc::new(CommInner { ctx, group, rank }),
        })
    }

    /// The process group of this communicator.
    pub fn group(&self) -> &Group {
        &self.inner.group
    }

    /// The calling process's simulator state.
    pub fn proc_state(&self) -> &Arc<ProcState> {
        &self.state
    }

    /// The calling process's global rank.
    pub fn global_rank(&self) -> usize {
        self.state.global_rank
    }

    // ---- communicator construction -----------------------------------------

    /// Agree on a fresh small context ID over the members of `view`
    /// (mask all-reduce with `MPI_BAND`, §III), claiming `n_ids`
    /// consecutive free IDs and returning the `idx`-th of them.
    pub(crate) async fn agree_ctx_async(
        &self,
        view: &Comm,
        tag: Tag,
        n_ids: usize,
        idx: usize,
    ) -> Result<ContextId> {
        let snapshot: CtxMask = self.state.ctx_pool.lock().snapshot();
        let reduced =
            coll::allreduce_async(view, &[snapshot], tag, ops::band_array::<u64, 32>()).await?[0];
        let mut pool = self.state.ctx_pool.lock();
        let mut chosen = None;
        let mut work = reduced;
        for i in 0..n_ids {
            let id = CtxPool::lowest_free(&work)?;
            // Mark in the working mask so the next iteration finds the next
            // free bit, and in the local pool so future agreements skip it.
            work = mask_and(&work, &{
                let mut m = [!0u64; 32];
                m[(id as usize) / 64] &= !(1u64 << (id % 64));
                m
            });
            pool.mark_used(id);
            if i == idx {
                chosen = Some(id);
            }
        }
        Ok(ContextId::Small(chosen.expect("idx < n_ids")))
    }

    /// `MPI_Comm_dup`: same group, fresh context.
    pub fn dup(&self) -> Result<Comm> {
        crate::sched::poll::block_inline(self.dup_async())
    }

    /// [`Comm::dup`] as a maybe-async core.
    pub async fn dup_async(&self) -> Result<Comm> {
        let view = self.view(self.inner.group.clone())?;
        let ctx = self.agree_ctx_async(&view, tags::CTX_AGREE, 1, 0).await?;
        self.with_new_ctx(ctx, self.inner.group.clone())
    }

    /// `MPI_Comm_split`: every process of the parent passes a `color` and a
    /// `key`; processes are grouped by color and ranked by `(key, rank)`.
    ///
    /// Dispatches on [`crate::model::VendorProfile::split_algo`]: the
    /// distributed sample sort (`splitdist`, DESIGN.md §6) by default, or the
    /// legacy all-gather oracle. Both produce identical groups, ranks,
    /// and context IDs; they differ only in cost and memory shape.
    pub fn split(&self, color: u64, key: u64) -> Result<Comm> {
        crate::sched::poll::block_inline(self.split_async(color, key))
    }

    /// [`Comm::split`] as a maybe-async core.
    pub async fn split_async(&self, color: u64, key: u64) -> Result<Comm> {
        Ok(self
            .split_with_async(Some(color), key)
            .await?
            .expect("defined color always yields a communicator"))
    }

    /// [`Comm::split`] with `MPI_UNDEFINED` support: ranks passing
    /// `color = None` take part in the collective but join no group and
    /// receive `Ok(None)` (the `MPI_COMM_NULL` analogue).
    pub fn split_with(&self, color: Option<u64>, key: u64) -> Result<Option<Comm>> {
        crate::sched::poll::block_inline(self.split_with_async(color, key))
    }

    /// [`Comm::split_with`] as a maybe-async core.
    pub async fn split_with_async(&self, color: Option<u64>, key: u64) -> Result<Option<Comm>> {
        match self.state.router.vendor.split_algo {
            SplitAlgo::DistributedSort => {
                crate::splitdist::split_distributed(self, color, key).await
            }
            SplitAlgo::Allgather => self.split_allgather(color, key).await,
        }
    }

    /// The textbook `MPI_Comm_split`: all-gather every rank's
    /// `(defined, color, key)` over the parent (Ω(α log p + βp), Θ(p)
    /// memory per rank), group locally, one mask agreement over the
    /// parent, and explicit O(g) group construction. Kept as the
    /// correctness oracle for the distributed algorithm.
    async fn split_allgather(&self, color: Option<u64>, key: u64) -> Result<Option<Comm>> {
        let p = self.size();
        let triple = (u64::from(color.is_some()), color.unwrap_or(0), key);
        let pairs = coll::allgather1_async(self, triple, tags::SPLIT_GATHER).await?;
        // Local grouping: sort defined ranks by (color, key, parent rank).
        let mut order: Vec<usize> = (0..p).filter(|&i| pairs[i].0 == 1).collect();
        order.sort_by_key(|&i| (pairs[i].1, pairs[i].2, i));
        let log_p = (usize::BITS - (p - 1).leading_zeros()).max(1) as u64;
        self.charge(Time(
            (p as f64 * log_p as f64 * self.state.router.vendor.split_sort_ns).round() as u64,
        ));
        // Distinct colors in sorted order determine each group's context-ID
        // index within one shared agreement over the parent.
        let mut colors: Vec<u64> = order.iter().map(|&i| pairs[i].1).collect();
        colors.dedup();
        if colors.is_empty() {
            return Ok(None); // every rank passed MPI_UNDEFINED
        }
        let (my_idx, group) = match color {
            Some(c) => {
                let idx = colors.binary_search(&c).expect("own color present");
                let my_ranks: Vec<usize> = order
                    .iter()
                    .copied()
                    .filter(|&i| pairs[i].1 == c)
                    .map(|i| self.inner.group.translate(i))
                    .collect();
                let g = my_ranks.len();
                // Explicit group array construction, O(g).
                self.charge(Time(
                    (g as f64 * self.state.router.vendor.group_build_ns_per_member).round() as u64,
                ));
                (idx, Some(Group::from_ranks(my_ranks)))
            }
            None => (0, None),
        };
        let ctx = self
            .agree_ctx_async(self, tags::CTX_AGREE, colors.len(), my_idx)
            .await?;
        match group {
            Some(g) => Ok(Some(self.with_new_ctx(ctx, g)?)),
            None => Ok(None),
        }
    }

    /// `MPI_Comm_create_group`: blocking collective over the members of
    /// `group` only (paper \[1\]). The `tag` distinguishes concurrent
    /// creations on the same parent — overlapping creations with the same
    /// tag have undefined behaviour, exactly as in MPI.
    pub fn create_group(&self, group: &Group, tag: Tag) -> Result<Comm> {
        crate::sched::poll::block_inline(self.create_group_async(group, tag))
    }

    /// [`Comm::create_group`] as a maybe-async core.
    pub async fn create_group_async(&self, group: &Group, tag: Tag) -> Result<Comm> {
        let view = self.view(group.clone())?;
        let g = group.len();
        let vendor = &self.state.router.vendor;
        // Explicit O(g) group representation (paper §III: "the process
        // group is stored explicitly during the communicator construction").
        self.charge(Time(
            (g as f64 * vendor.group_build_ns_per_member).round() as u64
        ));
        let ctx = match vendor.create_group_algo {
            CreateGroupAlgo::MaskAllreduce => self.agree_ctx_async(&view, tag, 1, 0).await?,
            CreateGroupAlgo::LeaderRing => {
                // Serialised agreement: the mask is AND-folded along a ring
                // 0 -> 1 -> ... -> g-1, then the chosen ID rings back.
                // Θ(g·(α + c)) latency — the IBM-like pathology of Fig. 5.
                let r = view.rank();
                let snapshot = self.state.ctx_pool.lock().snapshot();
                let folded = if r == 0 {
                    snapshot
                } else {
                    let (prev, _) = crate::transport::recv_async::<[u64; 32], _>(
                        &view,
                        crate::transport::Src::Rank(r - 1),
                        tag,
                    )
                    .await?;
                    mask_and(&prev[0], &snapshot)
                };
                // Per-hop bookkeeping charged after receiving the token and
                // before forwarding it, so it serialises along the ring.
                self.charge(Time(vendor.create_group_member_overhead_ns.round() as u64));
                if r + 1 < g {
                    view.send(&[folded], r + 1, tag)?;
                    // Wait for the chosen ID to ring back down.
                    let (id, _) = crate::transport::recv_async::<u32, _>(
                        &view,
                        crate::transport::Src::Rank(r + 1),
                        tag,
                    )
                    .await?;
                    if r > 0 {
                        view.send(&id, r - 1, tag)?;
                    }
                    let id = id[0];
                    self.state.ctx_pool.lock().mark_used(id);
                    ContextId::Small(id)
                } else {
                    // Last member chooses and sends the ID back down.
                    let id = self.state.ctx_pool.lock().claim_lowest(&folded)?;
                    if g > 1 {
                        view.send(&[id], r - 1, tag)?;
                    }
                    ContextId::Small(id)
                }
            }
        };
        self.with_new_ctx(ctx, group.clone())
    }

    // ---- blocking collectives (vendor implementations) ----------------------
    //
    // These are the "native MPI" collectives: the same binomial algorithms
    // as RBC's, but run through the vendor cost profile.

    fn scaled(&self, scale: crate::model::CostScale) -> crate::transport::Scaled<Comm> {
        crate::transport::Scaled::new(self.clone(), scale)
    }

    /// `MPI_Bcast` under the vendor's bcast cost scaling.
    pub fn bcast<T: crate::datum::Datum>(&self, data: &mut Vec<T>, root: usize) -> Result<()> {
        let s = self.state.router.vendor.coll_scale.bcast;
        coll::bcast(&self.scaled(s), data, root, tags::BCAST)
    }

    /// `MPI_Reduce`: elementwise `op`-fold to `root` (returns `Some` there).
    pub fn reduce<T: crate::datum::Datum>(
        &self,
        data: &[T],
        root: usize,
        op: impl Fn(&T, &T) -> T,
    ) -> Result<Option<Vec<T>>> {
        let s = self.state.router.vendor.coll_scale.reduce;
        coll::reduce(&self.scaled(s), data, root, tags::REDUCE, op)
    }

    /// `MPI_Allreduce`: elementwise `op`-fold, result everywhere.
    pub fn allreduce<T: crate::datum::Datum>(
        &self,
        data: &[T],
        op: impl Fn(&T, &T) -> T,
    ) -> Result<Vec<T>> {
        let s = self.state.router.vendor.coll_scale.reduce;
        coll::allreduce(&self.scaled(s), data, tags::ALLREDUCE, op)
    }

    /// `MPI_Scan`: inclusive prefix `op`-fold by rank.
    pub fn scan<T: crate::datum::Datum>(
        &self,
        data: &[T],
        op: impl Fn(&T, &T) -> T,
    ) -> Result<Vec<T>> {
        let s = self.state.router.vendor.coll_scale.scan;
        coll::scan(&self.scaled(s), data, tags::SCAN, op)
    }

    /// `MPI_Exscan`: exclusive prefix fold (`None` on rank 0).
    pub fn exscan<T: crate::datum::Datum>(
        &self,
        data: &[T],
        op: impl Fn(&T, &T) -> T,
    ) -> Result<Option<Vec<T>>> {
        let s = self.state.router.vendor.coll_scale.scan;
        coll::exscan(&self.scaled(s), data, tags::EXSCAN, op)
    }

    /// `MPI_Gather` of equal-sized blocks (returns `Some` at `root`).
    pub fn gather<T: crate::datum::Datum>(
        &self,
        data: Vec<T>,
        root: usize,
    ) -> Result<Option<Vec<T>>> {
        let s = self.state.router.vendor.coll_scale.gather;
        coll::gather(&self.scaled(s), data, root, tags::GATHER)
    }

    /// `MPI_Gatherv`: variable-sized blocks, one `Vec` per rank at `root`.
    pub fn gatherv<T: crate::datum::Datum>(
        &self,
        data: Vec<T>,
        root: usize,
    ) -> Result<Option<Vec<Vec<T>>>> {
        let s = self.state.router.vendor.coll_scale.gather;
        coll::gatherv(&self.scaled(s), data, root, tags::GATHERV)
    }

    /// `MPI_Allgather` of one element per rank.
    pub fn allgather1<T: crate::datum::Datum>(&self, item: T) -> Result<Vec<T>> {
        let s = self.state.router.vendor.coll_scale.gather;
        coll::allgather1(&self.scaled(s), item, tags::ALLGATHER)
    }

    /// `MPI_Barrier`.
    pub fn barrier(&self) -> Result<()> {
        let s = self.state.router.vendor.coll_scale.barrier;
        coll::barrier(&self.scaled(s), tags::BARRIER)
    }

    /// `MPI_Alltoallv`: `send[i]` goes to rank `i`; returns one block per source.
    pub fn alltoallv<T: crate::datum::Datum>(&self, send: Vec<Vec<T>>) -> Result<Vec<Vec<T>>> {
        let s = self.state.router.vendor.coll_scale.other;
        coll::alltoallv(&self.scaled(s), send, tags::ALLTOALL)
    }

    /// `MPI_Scatter`: `root` splits `data` into equal blocks, one per rank.
    pub fn scatter<T: crate::datum::Datum>(
        &self,
        data: Option<Vec<T>>,
        root: usize,
    ) -> Result<Vec<T>> {
        let s = self.state.router.vendor.coll_scale.other;
        coll::scatter(&self.scaled(s), data, root, tags::SCATTER)
    }

    /// `MPI_Scatterv`: `root` sends `blocks[i]` to rank `i`.
    pub fn scatterv<T: crate::datum::Datum>(
        &self,
        blocks: Option<Vec<Vec<T>>>,
        root: usize,
    ) -> Result<Vec<T>> {
        let s = self.state.router.vendor.coll_scale.other;
        coll::scatterv(&self.scaled(s), blocks, root, tags::SCATTERV)
    }

    /// `MPI_Allgatherv`: every rank receives every rank's block.
    pub fn allgatherv<T: crate::datum::Datum>(&self, data: Vec<T>) -> Result<Vec<Vec<T>>> {
        let s = self.state.router.vendor.coll_scale.gather;
        coll::allgatherv(&self.scaled(s), data, tags::ALLGATHERV)
    }

    // ---- maybe-async collectives -------------------------------------------
    //
    // The `*_async` twins of the blocking collectives above: identical
    // algorithms and vendor scaling (they share the `coll::*_async` cores),
    // usable from poll-mode rank bodies where the sync forms would panic.

    /// [`Comm::bcast`] as a maybe-async core.
    pub async fn bcast_async<T: crate::datum::Datum>(
        &self,
        data: &mut Vec<T>,
        root: usize,
    ) -> Result<()> {
        let s = self.state.router.vendor.coll_scale.bcast;
        coll::bcast_async(&self.scaled(s), data, root, tags::BCAST).await
    }

    /// [`Comm::reduce`] as a maybe-async core.
    pub async fn reduce_async<T: crate::datum::Datum>(
        &self,
        data: &[T],
        root: usize,
        op: impl Fn(&T, &T) -> T,
    ) -> Result<Option<Vec<T>>> {
        let s = self.state.router.vendor.coll_scale.reduce;
        coll::reduce_async(&self.scaled(s), data, root, tags::REDUCE, op).await
    }

    /// [`Comm::allreduce`] as a maybe-async core.
    pub async fn allreduce_async<T: crate::datum::Datum>(
        &self,
        data: &[T],
        op: impl Fn(&T, &T) -> T,
    ) -> Result<Vec<T>> {
        let s = self.state.router.vendor.coll_scale.reduce;
        coll::allreduce_async(&self.scaled(s), data, tags::ALLREDUCE, op).await
    }

    /// [`Comm::scan`] as a maybe-async core.
    pub async fn scan_async<T: crate::datum::Datum>(
        &self,
        data: &[T],
        op: impl Fn(&T, &T) -> T,
    ) -> Result<Vec<T>> {
        let s = self.state.router.vendor.coll_scale.scan;
        coll::scan_async(&self.scaled(s), data, tags::SCAN, op).await
    }

    /// [`Comm::exscan`] as a maybe-async core.
    pub async fn exscan_async<T: crate::datum::Datum>(
        &self,
        data: &[T],
        op: impl Fn(&T, &T) -> T,
    ) -> Result<Option<Vec<T>>> {
        let s = self.state.router.vendor.coll_scale.scan;
        coll::exscan_async(&self.scaled(s), data, tags::EXSCAN, op).await
    }

    /// [`Comm::gather`] as a maybe-async core.
    pub async fn gather_async<T: crate::datum::Datum>(
        &self,
        data: Vec<T>,
        root: usize,
    ) -> Result<Option<Vec<T>>> {
        let s = self.state.router.vendor.coll_scale.gather;
        coll::gather_async(&self.scaled(s), data, root, tags::GATHER).await
    }

    /// [`Comm::gatherv`] as a maybe-async core.
    pub async fn gatherv_async<T: crate::datum::Datum>(
        &self,
        data: Vec<T>,
        root: usize,
    ) -> Result<Option<Vec<Vec<T>>>> {
        let s = self.state.router.vendor.coll_scale.gather;
        coll::gatherv_async(&self.scaled(s), data, root, tags::GATHERV).await
    }

    /// [`Comm::allgather1`] as a maybe-async core.
    pub async fn allgather1_async<T: crate::datum::Datum>(&self, item: T) -> Result<Vec<T>> {
        let s = self.state.router.vendor.coll_scale.gather;
        coll::allgather1_async(&self.scaled(s), item, tags::ALLGATHER).await
    }

    /// [`Comm::barrier`] as a maybe-async core.
    pub async fn barrier_async(&self) -> Result<()> {
        let s = self.state.router.vendor.coll_scale.barrier;
        coll::barrier_async(&self.scaled(s), tags::BARRIER).await
    }

    /// [`Comm::alltoallv`] as a maybe-async core.
    pub async fn alltoallv_async<T: crate::datum::Datum>(
        &self,
        send: Vec<Vec<T>>,
    ) -> Result<Vec<Vec<T>>> {
        let s = self.state.router.vendor.coll_scale.other;
        coll::alltoallv_async(&self.scaled(s), send, tags::ALLTOALL).await
    }

    /// [`Comm::scatter`] as a maybe-async core.
    pub async fn scatter_async<T: crate::datum::Datum>(
        &self,
        data: Option<Vec<T>>,
        root: usize,
    ) -> Result<Vec<T>> {
        let s = self.state.router.vendor.coll_scale.other;
        coll::scatter_async(&self.scaled(s), data, root, tags::SCATTER).await
    }

    /// [`Comm::scatterv`] as a maybe-async core.
    pub async fn scatterv_async<T: crate::datum::Datum>(
        &self,
        blocks: Option<Vec<Vec<T>>>,
        root: usize,
    ) -> Result<Vec<T>> {
        let s = self.state.router.vendor.coll_scale.other;
        coll::scatterv_async(&self.scaled(s), blocks, root, tags::SCATTERV).await
    }

    /// [`Comm::allgatherv`] as a maybe-async core.
    pub async fn allgatherv_async<T: crate::datum::Datum>(
        &self,
        data: Vec<T>,
    ) -> Result<Vec<Vec<T>>> {
        let s = self.state.router.vendor.coll_scale.gather;
        coll::allgatherv_async(&self.scaled(s), data, tags::ALLGATHERV).await
    }

    // ---- nonblocking collectives (MPI-3 style, vendor implementations) -------

    /// `MPI_Ibcast`.
    pub fn ibcast<T: crate::datum::Datum>(
        &self,
        data: Option<Vec<T>>,
        root: usize,
    ) -> Result<crate::nbcoll::Ibcast<T, crate::transport::Scaled<Comm>>> {
        let s = self.state.router.vendor.coll_scale.bcast;
        crate::nbcoll::ibcast(&self.scaled(s), data, root, tags::IBCAST)
    }

    /// `MPI_Ireduce`.
    pub fn ireduce<T: crate::datum::Datum, F>(
        &self,
        data: &[T],
        root: usize,
        op: F,
    ) -> Result<crate::nbcoll::Ireduce<T, crate::transport::Scaled<Comm>, F>>
    where
        F: Fn(&T, &T) -> T + Send,
    {
        let s = self.state.router.vendor.coll_scale.reduce;
        crate::nbcoll::ireduce(&self.scaled(s), data, root, tags::IREDUCE, op)
    }

    /// `MPI_Iscan` (inclusive; the machine also exposes the exclusive
    /// prefix).
    pub fn iscan<T: crate::datum::Datum, F>(
        &self,
        data: &[T],
        op: F,
    ) -> Result<crate::nbcoll::Iscan<T, crate::transport::Scaled<Comm>, F>>
    where
        F: Fn(&T, &T) -> T + Send,
    {
        let s = self.state.router.vendor.coll_scale.scan;
        crate::nbcoll::iscan(&self.scaled(s), data, tags::ISCAN, op)
    }

    /// `MPI_Igather`.
    pub fn igather<T: crate::datum::Datum>(
        &self,
        data: Vec<T>,
        root: usize,
    ) -> Result<crate::nbcoll::Igather<T, crate::transport::Scaled<Comm>>> {
        let s = self.state.router.vendor.coll_scale.gather;
        crate::nbcoll::igather(&self.scaled(s), data, root, tags::IGATHER)
    }

    /// `MPI_Igatherv`.
    pub fn igatherv<T: crate::datum::Datum>(
        &self,
        data: Vec<T>,
        root: usize,
    ) -> Result<crate::nbcoll::Igatherv<T, crate::transport::Scaled<Comm>>> {
        let s = self.state.router.vendor.coll_scale.gather;
        crate::nbcoll::igatherv(&self.scaled(s), data, root, tags::IGATHERV)
    }

    /// `MPI_Ibarrier`.
    pub fn ibarrier(&self) -> Result<crate::nbcoll::Ibarrier<crate::transport::Scaled<Comm>>> {
        let s = self.state.router.vendor.coll_scale.barrier;
        crate::nbcoll::ibarrier(&self.scaled(s), tags::IBARRIER)
    }
}

impl Transport for Comm {
    fn rank(&self) -> usize {
        self.inner.rank
    }

    fn size(&self) -> usize {
        self.inner.group.len()
    }

    fn state(&self) -> &Arc<ProcState> {
        &self.state
    }

    fn ctx(&self) -> ContextId {
        self.inner.ctx
    }

    fn translate(&self, rank: usize) -> usize {
        self.inner.group.translate(rank)
    }

    fn rank_of_global(&self, global: usize) -> Option<usize> {
        self.inner.group.inverse(global)
    }

    fn any_source_filter(&self) -> SrcFilter {
        // A native communicator owns its context: any message in it comes
        // from a member.
        SrcFilter::Any
    }
}
