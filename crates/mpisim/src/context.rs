//! Context-ID management.
//!
//! Open MPI and MPICH agree on a new context ID by all-reducing *context-ID
//! masks* with `MPI_BAND` and taking the least significant common free bit
//! (§III of the paper). Each process keeps its own mask; masks diverge
//! between processes depending on which communicators each has created.
//!
//! IDs are never returned to the mask (early MPICH behaved the same way);
//! the space is 2048 IDs, ample for every experiment, and exhaustion is a
//! reported error rather than UB.

use crate::error::{MpiError, Result};

/// Number of 64-bit words in a context mask.
pub const MASK_WORDS: usize = 32;
/// Total number of allocatable small context IDs.
pub const MASK_BITS: usize = MASK_WORDS * 64;

/// Bitmask of free context IDs (bit set = ID free).
pub type CtxMask = [u64; MASK_WORDS];

/// Per-process context-ID mask. Bit set = ID free.
#[derive(Clone, Debug)]
pub struct CtxPool {
    mask: CtxMask,
}

impl Default for CtxPool {
    fn default() -> Self {
        CtxPool::new()
    }
}

impl CtxPool {
    /// A fresh pool with every ID free except 0 (`MPI_COMM_WORLD`).
    pub fn new() -> CtxPool {
        let mut mask = [!0u64; MASK_WORDS];
        mask[0] &= !1; // ID 0 is MPI_COMM_WORLD
        CtxPool { mask }
    }

    /// Snapshot of this process's mask, the value contributed to the
    /// all-reduce.
    pub fn snapshot(&self) -> CtxMask {
        self.mask
    }

    /// Lowest free ID in an (already reduced) mask.
    pub fn lowest_free(reduced: &CtxMask) -> Result<u32> {
        for (w, &bits) in reduced.iter().enumerate() {
            if bits != 0 {
                return Ok((w * 64) as u32 + bits.trailing_zeros());
            }
        }
        Err(MpiError::ContextExhausted)
    }

    /// Mark an ID used locally.
    pub fn mark_used(&mut self, id: u32) {
        let w = (id as usize) / 64;
        assert!(w < MASK_WORDS, "context id {id} out of range");
        self.mask[w] &= !(1u64 << (id % 64));
    }

    /// Take the lowest ID free in `reduced` and mark it used locally —
    /// what each participant does after the mask all-reduce.
    pub fn claim_lowest(&mut self, reduced: &CtxMask) -> Result<u32> {
        let id = Self::lowest_free(reduced)?;
        self.mark_used(id);
        Ok(id)
    }

    /// Whether `id` is still free in this pool.
    pub fn is_free(&self, id: u32) -> bool {
        let w = (id as usize) / 64;
        self.mask[w] & (1u64 << (id % 64)) != 0
    }

    /// Number of IDs still free.
    pub fn free_count(&self) -> usize {
        self.mask.iter().map(|w| w.count_ones() as usize).sum()
    }
}

/// Bitwise-AND of two masks — the reduction operator of the agreement.
pub fn mask_and(a: &CtxMask, b: &CtxMask) -> CtxMask {
    let mut out = *a;
    for i in 0..MASK_WORDS {
        out[i] &= b[i];
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn world_id_reserved() {
        let p = CtxPool::new();
        assert!(!p.is_free(0));
        assert!(p.is_free(1));
        assert_eq!(p.free_count(), MASK_BITS - 1);
    }

    #[test]
    fn claim_lowest_advances() {
        let mut p = CtxPool::new();
        let snap = p.snapshot();
        assert_eq!(p.claim_lowest(&snap).unwrap(), 1);
        let snap = p.snapshot();
        assert_eq!(p.claim_lowest(&snap).unwrap(), 2);
        assert!(!p.is_free(1));
        assert!(!p.is_free(2));
    }

    #[test]
    fn agreement_respects_both_masks() {
        // Process A used IDs 1..=3; process B used IDs 1, 5.
        let mut a = CtxPool::new();
        for id in 1..=3 {
            a.mark_used(id);
        }
        let mut b = CtxPool::new();
        b.mark_used(1);
        b.mark_used(5);
        let reduced = mask_and(&a.snapshot(), &b.snapshot());
        // Lowest ID free on BOTH is 4.
        assert_eq!(CtxPool::lowest_free(&reduced).unwrap(), 4);
    }

    #[test]
    fn cross_word_allocation() {
        let mut p = CtxPool::new();
        for id in 1..64 {
            p.mark_used(id);
        }
        let snap = p.snapshot();
        assert_eq!(p.claim_lowest(&snap).unwrap(), 64);
    }

    #[test]
    fn exhaustion_is_an_error() {
        let mut p = CtxPool::new();
        for id in 1..MASK_BITS as u32 {
            p.mark_used(id);
        }
        let snap = p.snapshot();
        assert!(matches!(
            p.claim_lowest(&snap),
            Err(MpiError::ContextExhausted)
        ));
    }
}
