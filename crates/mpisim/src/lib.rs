//! # mpisim — an MPI-like message-passing substrate with virtual time
//!
//! This crate is the substrate for reproducing *"Lightweight MPI
//! Communicators with Applications to Perfectly Balanced Quicksort"*
//! (Axtmann, Wiebigke, Sanders; IPDPS 2018). It provides, from scratch:
//!
//! * a simulated-rank runtime ([`Universe`]) with MPI matching semantics —
//!   `(context, source, tag)` matching, `ANY_SOURCE` wildcards,
//!   non-overtaking per sender and context — under two backends: one OS
//!   thread per rank, or the cooperative fiber scheduler ([`sched`]) that
//!   multiplexes up to 2^15 ranks over a small worker pool with
//!   seed-deterministic message-delivery order;
//! * native communicators ([`Comm`]) whose construction runs the *real*
//!   algorithms (all-gather for `MPI_Comm_split`, context-ID-mask
//!   all-reduce for `MPI_Comm_create_group`) so that their costs emerge
//!   from the α–β model rather than being hard-coded;
//! * blocking collectives ([`coll`]) and nonblocking collective state
//!   machines ([`nbcoll`]), generic over [`Transport`] so the RBC library
//!   reuses them verbatim;
//! * the paper's §VI proposal [`icomm::icomm_create_group`] — nonblocking
//!   communicator creation with 5-tuple context IDs, constant-time for
//!   process ranges;
//! * a virtual-time cost model ([`CostModel`], [`VendorProfile`]): every
//!   message carries `send_time` and `arrival = send_time + α + bytes·β`,
//!   and a receive sets `clock = max(clock, arrival)`. Benchmarks report
//!   virtual milliseconds, which is what makes the paper's figures
//!   reproducible at laptop scale (see DESIGN.md).

#![warn(missing_docs)]

pub mod coll;
pub mod coll_large;
pub mod comm;
pub mod context;
pub mod datum;
pub mod distsort;
pub mod env;
pub mod error;
pub mod faults;
pub mod group;
pub mod icomm;
pub mod mailbox;
pub mod model;
pub mod msg;
pub mod nbcoll;
pub mod obs;
pub mod pool;
pub mod proc;
pub mod sched;
mod splitdist;
pub mod tags;
pub mod time;
pub mod transport;
pub mod universe;

pub use comm::Comm;
pub use datum::{ops, Datum, SortKey, Zeroed};
pub use error::{MpiError, Result};
pub use faults::{FaultPlan, RankBlame, RankHealth, RoundBlame, SlowdownSpec};
pub use group::Group;
pub use model::{
    CommitAlgo, CostModel, CostScale, CreateGroupAlgo, SortAlgo, SplitAlgo, VendorProfile,
};
pub use msg::{ContextId, MsgInfo, Tag};
pub use nbcoll::{Progress, Request};
pub use obs::{MetricsSnapshot, OpClass, SchedProfile, Trace, TraceEvent, WorkerProfile};
pub use proc::WaitReason;
#[cfg(all(unix, any(target_arch = "x86_64", target_arch = "aarch64")))]
pub use sched::fleet::{Fleet, FleetHandle};
pub use sched::poll::{block_inline, yield_now_async, RankBody, Step};
pub use sched::yield_now;
pub use time::{Time, VirtualClock};
pub use transport::{probe_async, recv_async, recv_shared_async, Scaled, Src, Status, Transport};
pub use universe::{Backend, ProcEnv, SimConfig, SimResult, Universe};
