//! Seeded, deterministic fault injection: stragglers, crash-stop, jitter.
//!
//! The paper's headline claim for JQuick is *robustness* — near-perfect
//! balance where samplesort and multilevel degrade — but a simulator that
//! only ever runs clean schedules cannot exercise that claim. This module
//! injects three hostile-condition fault classes, all **pure functions of
//! `(program, seed, perturbation seed)`** — never of the worker count or
//! commit algorithm, so the cooperative scheduler's bit-identical
//! any-worker-count determinism (DESIGN.md §5/§7) is fully preserved:
//!
//! * **Slowdown distributions** ([`SlowdownSpec`]): each rank draws a
//!   multiplicative factor from the perturbation seed; a slowed rank's
//!   local work *and* outgoing transfers take `factor ×` as long. The
//!   draw is a splitmix64 hash of `(perturb_seed, rank)` — the rank's
//!   ordinary RNG stream is untouched, so a plan whose magnitudes are all
//!   zero is byte-identical to no plan at all.
//! * **Crash-stop** ([`FaultPlan::crashes`]): at a chosen *virtual* time a
//!   rank stops participating — its sends stop matching (dropped before
//!   pricing) and its own receives fail. Peers observe the crash through
//!   timeouts carrying a [`RoundBlame`], never through a hang: the
//!   cooperative scheduler's stagnation detector poisons spinning peers,
//!   and blocked peers are poisoned by the exact deadlock detector.
//! * **Message-delay jitter** ([`FaultPlan::jitter`]): every message's
//!   arrival is inflated by a hash of `(perturb_seed, sender, send
//!   counter)` — applied at send-pricing time, *before* the epoch commit
//!   sorts on the running-max matchable key, so the §5 window argument is
//!   untouched (see DESIGN.md §8).
//!
//! Every timeout and deadlock carries a [`RoundBlame`]: which ranks the
//! stalled operation is waiting on, their last virtual-time activity, and
//! whether each is crashed, slowed, or live — the shape of dkg-substrate's
//! `round_blame()` diagnostic, adapted to virtual time.

use crate::time::Time;

// ---------------------------------------------------------------------------
// Fault plans (configuration)
// ---------------------------------------------------------------------------

/// Per-rank slowdown distribution: each rank independently becomes a
/// straggler with probability `frac`, drawing a multiplicative factor
/// uniformly from `[1, max_factor]`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SlowdownSpec {
    /// Fraction of ranks that straggle (each rank's membership is an
    /// independent draw from the perturbation seed), in `[0, 1]`.
    pub frac: f64,
    /// Upper bound of the multiplicative slowdown factor (`>= 1`). A
    /// straggler's compute charges and outgoing transfer times are scaled
    /// by its drawn factor.
    pub max_factor: f64,
}

/// A seeded fault-injection plan, attached to
/// [`SimConfig`](crate::SimConfig). The default plan injects nothing.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    /// Seed of the perturbation stream — independent of
    /// [`SimConfig::seed`](crate::SimConfig::seed) so the same program can
    /// be swept over fault draws without changing its own randomness.
    pub perturb_seed: u64,
    /// Straggler distribution, if any.
    pub slowdown: Option<SlowdownSpec>,
    /// `(rank, virtual crash time)` pairs: each listed rank crash-stops
    /// the moment its own clock reaches the given time.
    pub crashes: Vec<(usize, Time)>,
    /// Maximum per-message arrival jitter ([`Time::ZERO`] disables).
    pub jitter: Time,
}

impl FaultPlan {
    /// Whether this plan is structurally empty (injects nothing).
    pub fn is_noop(&self) -> bool {
        self.slowdown.is_none() && self.crashes.is_empty() && self.jitter == Time::ZERO
    }

    /// Replace the perturbation seed.
    pub fn with_perturb_seed(mut self, seed: u64) -> FaultPlan {
        self.perturb_seed = seed;
        self
    }

    /// Add a straggler distribution.
    pub fn with_slowdown(mut self, frac: f64, max_factor: f64) -> FaultPlan {
        self.slowdown = Some(SlowdownSpec { frac, max_factor });
        self
    }

    /// Crash-stop `rank` at virtual time `at`.
    pub fn with_crash(mut self, rank: usize, at: Time) -> FaultPlan {
        self.crashes.push((rank, at));
        self
    }

    /// Add per-message arrival jitter up to `max`.
    pub fn with_jitter(mut self, max: Time) -> FaultPlan {
        self.jitter = max;
        self
    }

    /// Build a plan from the `MPISIM_FAULT_*` environment knobs (see the
    /// parsers below). Unset knobs leave their field at the default;
    /// malformed values **panic** — exactly like `MPISIM_COOP_COMMIT`, a
    /// mistyped fault sweep silently running fault-free would make every
    /// faulted-vs-clean diff vacuously green.
    pub fn from_env() -> FaultPlan {
        FaultPlan {
            perturb_seed: fault_seed_from(crate::env::var("MPISIM_FAULT_SEED").as_deref()),
            slowdown: fault_slow_from(crate::env::var("MPISIM_FAULT_SLOW").as_deref()),
            crashes: fault_crash_from(crate::env::var("MPISIM_FAULT_CRASH").as_deref()),
            jitter: fault_jitter_from(crate::env::var("MPISIM_FAULT_JITTER").as_deref()),
        }
    }
}

// ---------------------------------------------------------------------------
// Strict env-knob parsers — consolidated in [`crate::env`]; re-exported
// here because they are part of this module's public API surface.
// ---------------------------------------------------------------------------

pub use crate::env::{fault_crash_from, fault_jitter_from, fault_seed_from, fault_slow_from};

// ---------------------------------------------------------------------------
// Resolved fault state (attached to the Router)
// ---------------------------------------------------------------------------

/// splitmix64: the perturbation hash. Every fault draw is a direct hash of
/// `(perturb_seed, coordinates)` rather than a stateful RNG stream, so
/// fault sampling can never consume — or be perturbed by — the ranks'
/// ordinary seeded RNG streams.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A 53-bit-mantissa uniform draw in `[0, 1)` from a hash value.
fn unit_f64(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Draw rank `rank`'s slowdown factor under `spec` from `perturb_seed`:
/// exactly `1.0` for non-stragglers (and whenever `max_factor == 1`), a
/// uniform draw from `[1, max_factor]` otherwise. Seed-stable: the same
/// `(seed, rank, spec)` always yields the same factor.
pub fn sample_slowdown(perturb_seed: u64, rank: usize, spec: &SlowdownSpec) -> f64 {
    let h1 = splitmix64(perturb_seed ^ (rank as u64).wrapping_mul(0xA24B_AED4_963E_E407));
    if unit_f64(h1) >= spec.frac {
        return 1.0;
    }
    // 1.0 + u*(max-1) is exactly 1.0 when max == 1.0, which is what makes
    // a zero-magnitude plan byte-identical to no plan at all.
    1.0 + unit_f64(splitmix64(h1)) * (spec.max_factor - 1.0)
}

/// The resolved, per-universe fault state: plan fields expanded into O(1)
/// per-rank lookups. Lives on the [`Router`](crate::proc::Router); the
/// default state injects nothing.
#[derive(Debug, Default)]
pub struct FaultState {
    /// Per-rank multiplicative slowdown factor (1.0 = unaffected).
    slowdown: Vec<f64>,
    /// Per-rank crash time, if the rank crash-stops.
    crash_at: Vec<Option<Time>>,
    /// The crash list, sorted by rank (blame scans this, not all of `p`).
    crashes: Vec<(usize, Time)>,
    /// Maximum arrival jitter in nanoseconds (0 disables).
    jitter_max_ns: u64,
    /// The perturbation seed (jitter hashes mix it in).
    perturb_seed: u64,
}

impl FaultState {
    /// Expand `plan` over a universe of `p` ranks. Panics on invalid plans
    /// (out-of-range crash ranks, non-finite or out-of-range slowdown
    /// parameters) — a silently ignored fault is a vacuous experiment.
    pub fn resolve(plan: &FaultPlan, p: usize) -> FaultState {
        let slowdown = match &plan.slowdown {
            None => Vec::new(),
            Some(spec) => {
                assert!(
                    spec.frac.is_finite()
                        && (0.0..=1.0).contains(&spec.frac)
                        && spec.max_factor.is_finite()
                        && spec.max_factor >= 1.0,
                    "invalid slowdown spec {spec:?}"
                );
                (0..p)
                    .map(|r| sample_slowdown(plan.perturb_seed, r, spec))
                    .collect()
            }
        };
        let mut crash_at = vec![None; if plan.crashes.is_empty() { 0 } else { p }];
        let mut crashes = plan.crashes.clone();
        crashes.sort_unstable_by_key(|&(r, _)| r);
        for &(r, at) in &crashes {
            assert!(r < p, "fault plan crashes rank {r}, universe has {p} ranks");
            crash_at[r] = Some(match crash_at[r] {
                // Two entries for one rank: the earlier crash wins.
                Some(prev) => at.min(prev),
                None => at,
            });
        }
        crashes.dedup_by_key(|&mut (r, _)| r);
        for c in crashes.iter_mut() {
            c.1 = crash_at[c.0].expect("deduped crash rank resolved");
        }
        FaultState {
            slowdown,
            crash_at,
            crashes,
            jitter_max_ns: plan.jitter.as_nanos(),
            perturb_seed: plan.perturb_seed,
        }
    }

    /// Rank `r`'s slowdown factor (1.0 when unaffected).
    #[inline]
    pub fn factor(&self, r: usize) -> f64 {
        self.slowdown.get(r).copied().unwrap_or(1.0)
    }

    /// Rank `r`'s crash time, if it is scheduled to crash-stop.
    #[inline]
    pub fn crash_time(&self, r: usize) -> Option<Time> {
        self.crash_at.get(r).copied().flatten()
    }

    /// Whether any rank is scheduled to crash (gates the cooperative
    /// scheduler's stagnation detector).
    #[inline]
    pub fn has_crashes(&self) -> bool {
        !self.crashes.is_empty()
    }

    /// The resolved crash list, sorted by rank.
    pub fn crashes(&self) -> &[(usize, Time)] {
        &self.crashes
    }

    /// Arrival jitter (in nanoseconds) for the `seq`-th message rank
    /// `src` ever sends: a pure hash of `(perturb_seed, src, seq)`, so it
    /// is identical for every worker count and commit algorithm.
    #[inline]
    pub fn jitter_ns(&self, src: usize, seq: u64) -> u64 {
        if self.jitter_max_ns == 0 {
            return 0;
        }
        let h = splitmix64(
            self.perturb_seed
                ^ (src as u64).wrapping_mul(0x9E6D_5C4A_F1B2_8D01)
                ^ seq.wrapping_mul(0xC2B2_AE3D_27D4_EB4F),
        );
        h % (self.jitter_max_ns + 1)
    }

    /// The health classification of rank `r` whose clock reads `clock`.
    pub fn health_of(&self, r: usize, clock: Time) -> RankHealth {
        if let Some(at) = self.crash_time(r) {
            if clock >= at {
                return RankHealth::Crashed { at };
            }
        }
        let f = self.factor(r);
        if f > 1.0 {
            RankHealth::Slowed {
                percent: ((f - 1.0) * 100.0).round() as u32,
            }
        } else {
            RankHealth::Live
        }
    }
}

// ---------------------------------------------------------------------------
// RoundBlame diagnostics
// ---------------------------------------------------------------------------

/// Cap on the ranks a [`RoundBlame`] lists explicitly; the rest are
/// summarised by [`RoundBlame::omitted`].
pub const BLAME_CAP: usize = 8;

/// The health of one blamed rank.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RankHealth {
    /// The rank crash-stopped at this virtual time.
    Crashed {
        /// Virtual time of the crash.
        at: Time,
    },
    /// The rank is a straggler slowed by this many percent.
    Slowed {
        /// Slowdown above nominal speed, in percent (rounded).
        percent: u32,
    },
    /// The rank is healthy.
    Live,
}

impl std::fmt::Display for RankHealth {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RankHealth::Crashed { at } => write!(f, "crashed at {at}"),
            RankHealth::Slowed { percent } => write!(f, "slowed {percent}%"),
            RankHealth::Live => write!(f, "live"),
        }
    }
}

/// One rank a stalled operation is waiting on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RankBlame {
    /// The blamed rank (global).
    pub rank: usize,
    /// The rank's virtual clock when the blame was taken — its last
    /// virtual-time activity.
    pub last_activity: Time,
    /// Crashed, slowed, or live.
    pub health: RankHealth,
}

/// Which ranks a timed-out / deadlocked operation was waiting on —
/// attached to every [`MpiError::Timeout`](crate::MpiError::Timeout).
///
/// When any rank's crash has *triggered* (its own clock reached its crash
/// time), the blame names exactly the triggered-crashed ranks: whatever
/// the stalled pattern was nominally waiting on, the crash is the root
/// cause. Otherwise the blame lists the pattern's candidate source ranks
/// (capped at [`BLAME_CAP`]).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RoundBlame {
    /// The blamed ranks, most significant first.
    pub waiting_on: Vec<RankBlame>,
    /// Candidate ranks beyond [`BLAME_CAP`] not listed individually.
    pub omitted: usize,
}

impl RoundBlame {
    /// Whether the blame carries no information (not yet enriched).
    pub fn is_empty(&self) -> bool {
        self.waiting_on.is_empty()
    }

    /// The blamed rank indices, in order.
    pub fn ranks(&self) -> Vec<usize> {
        self.waiting_on.iter().map(|b| b.rank).collect()
    }
}

impl std::fmt::Display for RoundBlame {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.waiting_on.is_empty() {
            return write!(f, "waiting on: unknown");
        }
        write!(f, "waiting on:")?;
        for (i, b) in self.waiting_on.iter().enumerate() {
            let sep = if i == 0 { ' ' } else { ',' };
            write!(
                f,
                "{sep}rank {} [{}, last active {}]",
                b.rank, b.health, b.last_activity
            )?;
        }
        if self.omitted > 0 {
            write!(f, " (+{} more)", self.omitted)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The env-knob parser tests live with the parsers in `crate::env`.

    // ---- sampler -----------------------------------------------------------

    #[test]
    fn sampler_is_seed_stable() {
        let spec = SlowdownSpec {
            frac: 0.5,
            max_factor: 4.0,
        };
        for r in 0..64 {
            assert_eq!(
                sample_slowdown(7, r, &spec),
                sample_slowdown(7, r, &spec),
                "rank {r} factor must be a pure function of (seed, rank)"
            );
        }
        // Different seeds decorrelate the straggler set.
        let set = |seed| -> Vec<usize> {
            (0..256)
                .filter(|&r| sample_slowdown(seed, r, &spec) > 1.0)
                .collect()
        };
        assert_ne!(set(1), set(2));
    }

    #[test]
    fn sampler_quantiles_in_bounds() {
        let spec = SlowdownSpec {
            frac: 0.25,
            max_factor: 8.0,
        };
        let n = 4096;
        let factors: Vec<f64> = (0..n).map(|r| sample_slowdown(99, r, &spec)).collect();
        let slowed = factors.iter().filter(|&&f| f > 1.0).count();
        // All draws within [1, max_factor].
        assert!(factors.iter().all(|&f| (1.0..=8.0).contains(&f)));
        // The straggler fraction concentrates around `frac` (±5 σ).
        let expect = 0.25 * n as f64;
        let sigma = (n as f64 * 0.25 * 0.75).sqrt();
        assert!(
            (slowed as f64 - expect).abs() < 5.0 * sigma,
            "{slowed} stragglers out of {n}"
        );
        // Median of the slowed factors sits near the middle of [1, 8].
        let mut sl: Vec<f64> = factors.iter().copied().filter(|&f| f > 1.0).collect();
        sl.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = sl[sl.len() / 2];
        assert!((2.5..=6.5).contains(&median), "median {median}");
    }

    #[test]
    fn zero_magnitude_draws_are_exactly_one() {
        // frac = 0: nobody straggles. max_factor = 1: stragglers draw 1.0.
        for r in 0..128 {
            assert_eq!(
                sample_slowdown(
                    3,
                    r,
                    &SlowdownSpec {
                        frac: 0.0,
                        max_factor: 9.0
                    }
                ),
                1.0
            );
            assert_eq!(
                sample_slowdown(
                    3,
                    r,
                    &SlowdownSpec {
                        frac: 1.0,
                        max_factor: 1.0
                    }
                ),
                1.0
            );
        }
    }

    // ---- resolved state ----------------------------------------------------

    #[test]
    fn resolve_expands_plan() {
        let plan = FaultPlan::default()
            .with_perturb_seed(5)
            .with_slowdown(1.0, 2.0)
            .with_crash(3, Time::from_micros(50))
            .with_crash(1, Time::from_micros(10))
            .with_jitter(Time::from_micros(20));
        let fs = FaultState::resolve(&plan, 8);
        assert!(fs.has_crashes());
        assert_eq!(
            fs.crashes(),
            &[(1, Time::from_micros(10)), (3, Time::from_micros(50))]
        );
        assert_eq!(fs.crash_time(3), Some(Time::from_micros(50)));
        assert_eq!(fs.crash_time(0), None);
        assert!(fs.factor(2) >= 1.0);
        assert_eq!(fs.factor(99), 1.0); // out of range reads as unaffected
        assert!(fs.jitter_ns(0, 0) <= 20_000);
        // Jitter is a pure function of (src, seq).
        assert_eq!(fs.jitter_ns(4, 17), fs.jitter_ns(4, 17));
        assert_ne!(
            (0..64).map(|s| fs.jitter_ns(0, s)).collect::<Vec<_>>(),
            (0..64).map(|s| fs.jitter_ns(1, s)).collect::<Vec<_>>(),
        );
    }

    #[test]
    fn resolve_duplicate_crash_keeps_earliest() {
        let plan = FaultPlan::default()
            .with_crash(2, Time::from_micros(50))
            .with_crash(2, Time::from_micros(10));
        let fs = FaultState::resolve(&plan, 4);
        assert_eq!(fs.crashes(), &[(2, Time::from_micros(10))]);
        assert_eq!(fs.crash_time(2), Some(Time::from_micros(10)));
    }

    #[test]
    #[should_panic(expected = "crashes rank 9")]
    fn resolve_rejects_out_of_range_crash() {
        FaultState::resolve(&FaultPlan::default().with_crash(9, Time::ZERO), 4);
    }

    #[test]
    #[should_panic(expected = "invalid slowdown spec")]
    fn resolve_rejects_invalid_spec() {
        FaultState::resolve(&FaultPlan::default().with_slowdown(2.0, 4.0), 4);
    }

    #[test]
    fn default_state_is_inert() {
        let fs = FaultState::default();
        assert!(!fs.has_crashes());
        assert_eq!(fs.factor(0), 1.0);
        assert_eq!(fs.crash_time(0), None);
        assert_eq!(fs.jitter_ns(0, 0), 0);
    }

    // ---- blame -------------------------------------------------------------

    #[test]
    fn health_classification() {
        let plan = FaultPlan::default()
            .with_slowdown(1.0, 3.0)
            .with_crash(1, Time::from_micros(10));
        let fs = FaultState::resolve(&plan, 4);
        // Crash dominates once triggered; before the crash time the rank
        // reads as slowed/live.
        assert_eq!(
            fs.health_of(1, Time::from_micros(10)),
            RankHealth::Crashed {
                at: Time::from_micros(10)
            }
        );
        assert_ne!(
            fs.health_of(1, Time::from_micros(9)),
            RankHealth::Crashed {
                at: Time::from_micros(10)
            }
        );
        match fs.health_of(2, Time::ZERO) {
            RankHealth::Slowed { percent } => assert!(percent <= 200),
            RankHealth::Live => {} // rank 2 may have drawn factor 1.0
            other => panic!("unexpected health {other:?}"),
        }
    }

    #[test]
    fn blame_display() {
        let b = RoundBlame {
            waiting_on: vec![
                RankBlame {
                    rank: 2,
                    last_activity: Time::from_micros(50),
                    health: RankHealth::Crashed {
                        at: Time::from_micros(50),
                    },
                },
                RankBlame {
                    rank: 5,
                    last_activity: Time::from_micros(80),
                    health: RankHealth::Live,
                },
            ],
            omitted: 3,
        };
        let s = format!("{b}");
        assert!(s.contains("rank 2 [crashed at 50.00us"), "{s}");
        assert!(s.contains("rank 5 [live"), "{s}");
        assert!(s.contains("(+3 more)"), "{s}");
        assert_eq!(format!("{}", RoundBlame::default()), "waiting on: unknown");
    }

    // `fault_scenarios.rs` asserts blame text byte-for-byte inside timeout
    // messages, and the trace layer embeds the same rendering in `Blame`
    // events — so the hand-rolled `Display` impls are pinned here exactly,
    // one test per `RankHealth` variant plus the empty-blame edge case.

    #[test]
    fn health_display_crashed_round_trips() {
        let h = RankHealth::Crashed {
            at: Time::from_micros(50),
        };
        assert_eq!(format!("{h}"), "crashed at 50.00us");
        let b = RoundBlame {
            waiting_on: vec![RankBlame {
                rank: 2,
                last_activity: Time::from_micros(50),
                health: h,
            }],
            omitted: 0,
        };
        assert_eq!(
            format!("{b}"),
            "waiting on: rank 2 [crashed at 50.00us, last active 50.00us]"
        );
    }

    #[test]
    fn health_display_slowed_round_trips() {
        let h = RankHealth::Slowed { percent: 150 };
        assert_eq!(format!("{h}"), "slowed 150%");
        let b = RoundBlame {
            waiting_on: vec![RankBlame {
                rank: 0,
                last_activity: Time::from_nanos(12),
                health: h,
            }],
            omitted: 0,
        };
        assert_eq!(
            format!("{b}"),
            "waiting on: rank 0 [slowed 150%, last active 12ns]"
        );
    }

    #[test]
    fn health_display_live_round_trips() {
        assert_eq!(format!("{}", RankHealth::Live), "live");
        let b = RoundBlame {
            waiting_on: vec![
                RankBlame {
                    rank: 5,
                    last_activity: Time::from_micros(80),
                    health: RankHealth::Live,
                },
                RankBlame {
                    rank: 7,
                    last_activity: Time::from_millis(2),
                    health: RankHealth::Live,
                },
            ],
            omitted: 2,
        };
        // Separator contract: space before the first entry, comma after,
        // omitted summary last.
        assert_eq!(
            format!("{b}"),
            "waiting on: rank 5 [live, last active 80.00us],\
             rank 7 [live, last active 2.00ms] (+2 more)"
        );
    }

    #[test]
    fn empty_blame_displays_unknown() {
        let b = RoundBlame::default();
        assert!(b.is_empty());
        assert!(b.ranks().is_empty());
        assert_eq!(format!("{b}"), "waiting on: unknown");
    }
}
