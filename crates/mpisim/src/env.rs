//! The shared environment-knob layer: every `MPISIM_*` variable is parsed
//! here, by a **pure function** over `Option<&str>` so each parser is
//! unit-testable without `set_var` (which is process-global and racy under
//! the parallel test harness).
//!
//! Contract (shared by every strict knob): unset or blank means the
//! default, a well-formed value configures, and anything else **panics**
//! with a message naming the variable and the expected shape. A mistyped
//! sweep knob silently falling back to the default would make the
//! experiment vacuous — `MPISIM_COOP_COMMIT=seral` running the sharded
//! path would "confirm" the serial oracle against itself, and
//! `MPISIM_TRACE=yes` silently tracing nothing would byte-diff two empty
//! traces. The only deliberately lenient knobs are `MPISIM_COOP_WORKERS`
//! (a machine-shape hint, not an experiment axis) and `MPISIM_TRACE_OUT`
//! (a path, any string is plausible).

use crate::faults::SlowdownSpec;
use crate::model::{CommitAlgo, SortAlgo};
use crate::time::Time;

/// Read an environment variable as a `String` (`None` when unset or not
/// UTF-8). The single choke point through which every `MPISIM_*` knob is
/// read, so grepping for `env::var` finds the full knob surface.
pub fn var(name: &str) -> Option<String> {
    std::env::var(name).ok()
}

// ---------------------------------------------------------------------------
// Cooperative-scheduler knobs (MPISIM_COOP_*)
// ---------------------------------------------------------------------------

/// Parse `MPISIM_COOP_WORKERS` (a positive worker count). Deliberately
/// lenient — unset, blank, or malformed all mean 1 worker: this knob
/// describes the host machine, not the experiment, and the run's output
/// is bit-identical for every value (DESIGN.md §5).
pub fn coop_workers_from(var: Option<&str>) -> usize {
    var.and_then(|v| v.trim().parse::<usize>().ok())
        .unwrap_or(1)
        .max(1)
}

/// Parse `MPISIM_FLEET_INFLIGHT` — a fleet's admission window (maximum
/// concurrently running universes; see [`crate::Fleet`]). Like
/// `MPISIM_COOP_WORKERS` this is a lenient machine-shape hint, not a
/// model parameter: the window bounds peak memory and cannot change any
/// universe's output, so unset, blank, unparsable, or `0` silently fall
/// back to the default window of 4.
pub fn fleet_inflight_from(var: Option<&str>) -> usize {
    match var.and_then(|v| v.trim().parse::<usize>().ok()) {
        None | Some(0) => 4,
        Some(n) => n,
    }
}

/// Parse `MPISIM_BACKEND` into a [`Backend`](crate::Backend) for
/// [`crate::SimConfig::cooperative`]. Unset, blank, `fiber`, `coop`, or
/// `cooperative` selects the stackful fiber backend; `poll` selects the
/// stackless poll backend; `threads` selects one OS thread per rank;
/// anything else panics (a typo silently running fibers would make a
/// fiber-vs-poll determinism sweep compare fibers against themselves).
pub fn backend_from(var: Option<&str>) -> crate::Backend {
    match var.map(|v| v.trim().to_ascii_lowercase()).as_deref() {
        None | Some("") | Some("fiber") | Some("coop") | Some("cooperative") => {
            crate::Backend::Cooperative
        }
        Some("poll") => crate::Backend::Poll,
        Some("threads") => crate::Backend::Threads,
        Some(other) => panic!(
            "MPISIM_BACKEND={other:?} is not a simulator backend \
             (expected \"fiber\", \"poll\", or \"threads\")"
        ),
    }
}

/// Parse `MPISIM_COOP_COMMIT` into a [`CommitAlgo`]. Unset, blank, or
/// `sharded` selects the production sharded commit; `serial` selects the
/// single-pass oracle; anything else panics (a typo silently running the
/// default would defeat an oracle-comparison sweep).
pub fn commit_algo_from(var: Option<&str>) -> CommitAlgo {
    match var.map(|v| v.trim().to_ascii_lowercase()).as_deref() {
        None | Some("") | Some("sharded") => CommitAlgo::Sharded,
        Some("serial") => CommitAlgo::Serial,
        Some(other) => panic!(
            "MPISIM_COOP_COMMIT={other:?} is not a commit algorithm \
             (expected \"sharded\" or \"serial\")"
        ),
    }
}

/// Parse `MPISIM_COOP_SORT` into a [`SortAlgo`]. Unset, blank, or `merge`
/// selects the production parallel k-way merge; `sort` selects the
/// single-worker sort oracle; anything else panics (a typo silently
/// running the default would compare the merge against itself).
pub fn coop_sort_from(var: Option<&str>) -> SortAlgo {
    match var.map(|v| v.trim().to_ascii_lowercase()).as_deref() {
        None | Some("") | Some("merge") => SortAlgo::Merge,
        Some("sort") => SortAlgo::Sort,
        Some(other) => panic!(
            "MPISIM_COOP_SORT={other:?} is not a commit sort algorithm \
             (expected \"merge\" or \"sort\")"
        ),
    }
}

/// Parse `MPISIM_COOP_COMMIT_SHARDS` (a shard count; 0 or anything
/// unparsable means "auto" — sized from the worker count at commit time).
pub fn commit_shards_from(var: Option<&str>) -> usize {
    var.and_then(|v| v.trim().parse::<usize>().ok())
        .unwrap_or(0)
}

// ---------------------------------------------------------------------------
// Observability knobs (MPISIM_TRACE*, MPISIM_SCHED_PROFILE)
// ---------------------------------------------------------------------------

/// Parse a strict boolean knob: unset, blank, or `0` is off, `1` is on,
/// anything else panics. `yes`/`true` are deliberately rejected — a trace
/// sweep that silently traced nothing would byte-diff empty traces.
fn bool_knob(name: &str, var: Option<&str>) -> bool {
    match var.map(str::trim) {
        None | Some("") | Some("0") => false,
        Some("1") => true,
        Some(s) => panic!("{name}={s:?} is not a boolean knob (expected \"0\" or \"1\")"),
    }
}

/// Parse `MPISIM_TRACE` (strict boolean): enable the deterministic event
/// trace ([`crate::obs::Trace`]).
pub fn trace_from(var: Option<&str>) -> bool {
    bool_knob("MPISIM_TRACE", var)
}

/// Parse `MPISIM_SCHED_PROFILE` (strict boolean): enable the wall-clock
/// scheduler phase profile ([`crate::obs::SchedProfile`]).
pub fn sched_profile_from(var: Option<&str>) -> bool {
    bool_knob("MPISIM_SCHED_PROFILE", var)
}

/// Parse `MPISIM_TRACE_OUT` (an output path for exporters; lenient —
/// unset or blank means the exporter's default path).
pub fn trace_out_from(var: Option<&str>) -> Option<String> {
    match var.map(str::trim) {
        None | Some("") => None,
        Some(s) => Some(s.to_string()),
    }
}

// ---------------------------------------------------------------------------
// Fault-injection knobs (MPISIM_FAULT_*)
// ---------------------------------------------------------------------------

/// Parse `MPISIM_FAULT_SEED` (a u64; unset or blank means 0). Garbage
/// panics — see [`crate::FaultPlan::from_env`].
pub fn fault_seed_from(var: Option<&str>) -> u64 {
    match var.map(str::trim) {
        None | Some("") => 0,
        Some(s) => s
            .parse::<u64>()
            .unwrap_or_else(|_| panic!("MPISIM_FAULT_SEED={s:?} is not a u64 seed")),
    }
}

/// Parse `MPISIM_FAULT_SLOW=frac,max_factor` (e.g. `0.25,4`): `frac` must
/// be finite in `[0, 1]`, `max_factor` finite and `>= 1`. Unset or blank
/// means no slowdown; anything malformed panics.
pub fn fault_slow_from(var: Option<&str>) -> Option<SlowdownSpec> {
    let s = match var.map(str::trim) {
        None | Some("") => return None,
        Some(s) => s,
    };
    let bad = || -> ! {
        panic!(
            "MPISIM_FAULT_SLOW={s:?} is not a slowdown spec \
             (expected \"frac,max_factor\" with frac in [0,1], max_factor >= 1)"
        )
    };
    let (frac, max) = match s.split_once(',') {
        Some((a, b)) => (a.trim(), b.trim()),
        None => bad(),
    };
    let frac: f64 = frac.parse().unwrap_or_else(|_| bad());
    let max_factor: f64 = max.parse().unwrap_or_else(|_| bad());
    if !frac.is_finite()
        || !(0.0..=1.0).contains(&frac)
        || !max_factor.is_finite()
        || max_factor < 1.0
    {
        bad();
    }
    Some(SlowdownSpec { frac, max_factor })
}

/// Parse `MPISIM_FAULT_CRASH=rank@time[,rank@time...]` where `time` takes
/// a unit suffix (`50us`, `2ms`, `1s`, `800ns`). Unset or blank means no
/// crashes; anything malformed panics.
pub fn fault_crash_from(var: Option<&str>) -> Vec<(usize, Time)> {
    let s = match var.map(str::trim) {
        None | Some("") => return Vec::new(),
        Some(s) => s,
    };
    s.split(',')
        .map(|entry| {
            let entry = entry.trim();
            let bad = || -> ! {
                panic!(
                    "MPISIM_FAULT_CRASH entry {entry:?} is not \"rank@time\" \
                     (e.g. \"3@50us\")"
                )
            };
            let (rank, at) = match entry.split_once('@') {
                Some((r, t)) => (r.trim(), t.trim()),
                None => bad(),
            };
            let rank: usize = rank.parse().unwrap_or_else(|_| bad());
            let at = parse_time(at).unwrap_or_else(|| bad());
            (rank, at)
        })
        .collect()
}

/// Parse `MPISIM_FAULT_JITTER=<number><ns|us|ms|s>` (e.g. `20us`). Unset
/// or blank disables jitter; anything malformed panics.
pub fn fault_jitter_from(var: Option<&str>) -> Time {
    match var.map(str::trim) {
        None | Some("") => Time::ZERO,
        Some(s) => parse_time(s).unwrap_or_else(|| {
            panic!("MPISIM_FAULT_JITTER={s:?} is not a time span (e.g. \"20us\")")
        }),
    }
}

/// Parse a `<number><unit>` time span (`800ns`, `50us`, `2ms`, `1s`;
/// fractions allowed, must be finite and non-negative).
fn parse_time(s: &str) -> Option<Time> {
    let (num, mult) = if let Some(n) = s.strip_suffix("ns") {
        (n, 1.0)
    } else if let Some(n) = s.strip_suffix("us") {
        (n, 1e3)
    } else if let Some(n) = s.strip_suffix("ms") {
        (n, 1e6)
    } else if let Some(n) = s.strip_suffix('s') {
        (n, 1e9)
    } else {
        return None;
    };
    let v: f64 = num.trim().parse().ok()?;
    if !v.is_finite() || v < 0.0 {
        return None;
    }
    Some(Time((v * mult).round() as u64))
}

#[cfg(test)]
mod tests {
    use super::*;

    // ---- cooperative-scheduler knobs --------------------------------------

    #[test]
    fn coop_workers_is_lenient() {
        assert_eq!(coop_workers_from(None), 1);
        assert_eq!(coop_workers_from(Some("")), 1);
        assert_eq!(coop_workers_from(Some("garbage")), 1);
        assert_eq!(coop_workers_from(Some("0")), 1);
        assert_eq!(coop_workers_from(Some(" 8 ")), 8);
    }

    #[test]
    fn fleet_inflight_knob_is_lenient() {
        assert_eq!(fleet_inflight_from(None), 4);
        assert_eq!(fleet_inflight_from(Some("")), 4);
        assert_eq!(fleet_inflight_from(Some("garbage")), 4);
        assert_eq!(fleet_inflight_from(Some("0")), 4);
        assert_eq!(fleet_inflight_from(Some(" 16 ")), 16);
        assert_eq!(fleet_inflight_from(Some("1")), 1);
    }

    #[test]
    fn backend_knob_parses_strictly() {
        use crate::Backend;
        assert_eq!(backend_from(None), Backend::Cooperative);
        assert_eq!(backend_from(Some("")), Backend::Cooperative);
        assert_eq!(backend_from(Some("fiber")), Backend::Cooperative);
        assert_eq!(backend_from(Some(" Coop ")), Backend::Cooperative);
        assert_eq!(backend_from(Some("cooperative")), Backend::Cooperative);
        assert_eq!(backend_from(Some("poll")), Backend::Poll);
        assert_eq!(backend_from(Some(" POLL ")), Backend::Poll);
        assert_eq!(backend_from(Some("threads")), Backend::Threads);
    }

    #[test]
    #[should_panic(expected = "MPISIM_BACKEND")]
    fn backend_knob_rejects_garbage() {
        backend_from(Some("fibers"));
    }

    #[test]
    fn commit_algo_knob_parses_strictly() {
        assert_eq!(commit_algo_from(None), CommitAlgo::Sharded);
        assert_eq!(commit_algo_from(Some("")), CommitAlgo::Sharded);
        assert_eq!(commit_algo_from(Some("sharded")), CommitAlgo::Sharded);
        assert_eq!(commit_algo_from(Some(" Serial ")), CommitAlgo::Serial);
    }

    #[test]
    #[should_panic(expected = "not a commit algorithm")]
    fn commit_algo_knob_rejects_typos() {
        commit_algo_from(Some("seral"));
    }

    #[test]
    fn coop_sort_knob_parses_strictly() {
        assert_eq!(coop_sort_from(None), SortAlgo::Merge);
        assert_eq!(coop_sort_from(Some("")), SortAlgo::Merge);
        assert_eq!(coop_sort_from(Some("merge")), SortAlgo::Merge);
        assert_eq!(coop_sort_from(Some(" Sort ")), SortAlgo::Sort);
    }

    #[test]
    #[should_panic(expected = "not a commit sort algorithm")]
    fn coop_sort_knob_rejects_typos() {
        coop_sort_from(Some("mergesort"));
    }

    #[test]
    fn commit_shards_knob_parses_with_auto_fallback() {
        assert_eq!(commit_shards_from(None), 0);
        assert_eq!(commit_shards_from(Some("")), 0);
        assert_eq!(commit_shards_from(Some("garbage")), 0);
        assert_eq!(commit_shards_from(Some(" 12 ")), 12);
    }

    // ---- observability knobs ----------------------------------------------

    #[test]
    fn trace_knob_parses_strictly() {
        assert!(!trace_from(None));
        assert!(!trace_from(Some("")));
        assert!(!trace_from(Some("0")));
        assert!(trace_from(Some("1")));
        assert!(trace_from(Some(" 1 ")));
    }

    #[test]
    #[should_panic(expected = "not a boolean knob")]
    fn trace_knob_rejects_yes() {
        trace_from(Some("yes"));
    }

    #[test]
    fn sched_profile_knob_parses_strictly() {
        assert!(!sched_profile_from(None));
        assert!(sched_profile_from(Some("1")));
    }

    #[test]
    #[should_panic(expected = "MPISIM_SCHED_PROFILE")]
    fn sched_profile_knob_names_itself_in_panics() {
        sched_profile_from(Some("true"));
    }

    #[test]
    fn trace_out_is_lenient() {
        assert_eq!(trace_out_from(None), None);
        assert_eq!(trace_out_from(Some("  ")), None);
        assert_eq!(
            trace_out_from(Some(" results/t.json ")),
            Some("results/t.json".to_string())
        );
    }

    // ---- fault knobs (moved verbatim from faults.rs) ----------------------

    #[test]
    fn seed_parses_strictly() {
        assert_eq!(fault_seed_from(None), 0);
        assert_eq!(fault_seed_from(Some("")), 0);
        assert_eq!(fault_seed_from(Some(" 42 ")), 42);
        assert_eq!(fault_seed_from(Some("18446744073709551615")), u64::MAX);
    }

    #[test]
    #[should_panic(expected = "not a u64 seed")]
    fn seed_rejects_garbage() {
        fault_seed_from(Some("0x12"));
    }

    #[test]
    #[should_panic(expected = "not a u64 seed")]
    fn seed_rejects_negative() {
        fault_seed_from(Some("-1"));
    }

    #[test]
    fn slow_parses_strictly() {
        assert_eq!(fault_slow_from(None), None);
        assert_eq!(fault_slow_from(Some("  ")), None);
        assert_eq!(
            fault_slow_from(Some("0.25,4")),
            Some(SlowdownSpec {
                frac: 0.25,
                max_factor: 4.0
            })
        );
        assert_eq!(
            fault_slow_from(Some(" 1 , 1.5 ")),
            Some(SlowdownSpec {
                frac: 1.0,
                max_factor: 1.5
            })
        );
    }

    #[test]
    #[should_panic(expected = "not a slowdown spec")]
    fn slow_rejects_missing_comma() {
        fault_slow_from(Some("0.25"));
    }

    #[test]
    #[should_panic(expected = "not a slowdown spec")]
    fn slow_rejects_out_of_range_frac() {
        fault_slow_from(Some("1.5,4"));
    }

    #[test]
    #[should_panic(expected = "not a slowdown spec")]
    fn slow_rejects_negative_frac() {
        fault_slow_from(Some("-0.1,4"));
    }

    #[test]
    #[should_panic(expected = "not a slowdown spec")]
    fn slow_rejects_sub_unity_factor() {
        fault_slow_from(Some("0.5,0.5"));
    }

    #[test]
    #[should_panic(expected = "not a slowdown spec")]
    fn slow_rejects_non_finite() {
        fault_slow_from(Some("NaN,4"));
    }

    #[test]
    fn crash_parses_strictly() {
        assert!(fault_crash_from(None).is_empty());
        assert_eq!(
            fault_crash_from(Some("3@50us")),
            vec![(3, Time::from_micros(50))]
        );
        assert_eq!(
            fault_crash_from(Some(" 1@2ms , 0@800ns ")),
            vec![(1, Time::from_millis(2)), (0, Time::from_nanos(800))]
        );
        assert_eq!(
            fault_crash_from(Some("2@1s")),
            vec![(2, Time::from_secs_f64(1.0))]
        );
    }

    #[test]
    #[should_panic(expected = "is not \"rank@time\"")]
    fn crash_rejects_missing_unit() {
        fault_crash_from(Some("3@50"));
    }

    #[test]
    #[should_panic(expected = "is not \"rank@time\"")]
    fn crash_rejects_negative_time() {
        fault_crash_from(Some("3@-5us"));
    }

    #[test]
    #[should_panic(expected = "is not \"rank@time\"")]
    fn crash_rejects_garbage_rank() {
        fault_crash_from(Some("x@5us"));
    }

    #[test]
    fn jitter_parses_strictly() {
        assert_eq!(fault_jitter_from(None), Time::ZERO);
        assert_eq!(fault_jitter_from(Some("")), Time::ZERO);
        assert_eq!(fault_jitter_from(Some("20us")), Time::from_micros(20));
        assert_eq!(fault_jitter_from(Some("1.5ms")), Time::from_micros(1500));
        assert_eq!(fault_jitter_from(Some("800ns")), Time::from_nanos(800));
    }

    #[test]
    #[should_panic(expected = "not a time span")]
    fn jitter_rejects_unitless() {
        fault_jitter_from(Some("20"));
    }

    #[test]
    #[should_panic(expected = "not a time span")]
    fn jitter_rejects_non_finite() {
        fault_jitter_from(Some("infus"));
    }
}
