//! Buffer recycling: the one pooling implementation shared by the
//! scheduler's commit buffers and the message payload path.
//!
//! Two faces over the same discipline (take → use → reset → put):
//!
//! * [`Pool<T>`] — a plain value pool (a mutexed free list with hit/miss
//!   counters). The scheduler keeps one per buffer family (commit shard
//!   vectors, wake-record vectors, runnable-index vectors, …), replacing
//!   the hand-rolled `shard_pool` of PR 5.
//! * the **payload pool** ([`take_vec`] / [`recycle_vec`]) — a global,
//!   size-classed (power-of-two element capacities), `TypeId`-keyed pool
//!   of raw `Vec` allocations with per-thread free lists and a shared
//!   overflow tier. Message payloads draw from it on send and return to
//!   it when a [`crate::msg::Message`] is dropped or its payload is
//!   recycled after use, so steady-state epochs allocate nothing.
//!
//! Pooling is **unobservable**: a pooled buffer is always handed out
//! empty (`len == 0`) with at least the requested capacity, so simulated
//! clocks, delivery orders, and traces are identical whether a buffer is
//! fresh or recycled. The only observable artifacts are the wall-clock
//! hit/miss/overflow counters exported (never gated) through
//! [`crate::obs::SchedProfile`]. Unobservability is also what lets a
//! fleet share both pool faces *across universes*: the scheduler pools
//! are handed to every universe a fleet admits, and the payload pool's
//! per-thread caches live on the long-lived fleet workers, so a warm
//! fleet admits a new universe of an already-seen shape without
//! touching the allocator in the epoch hot path (`tests/alloc_free.rs`).
//! Capacity is the single thing that crosses a universe boundary —
//! never bytes, lengths, or ordering (DESIGN.md §11).
//!
//! # Safety model of the payload pool
//!
//! The pool never transmutes element types. A recycled `Vec<T>` is
//! decomposed into its raw parts and stored under `TypeId::of::<T>()`
//! together with a monomorphized release function; it is only ever
//! reassembled as a `Vec<T>` of the *same* `T` (same layout, same
//! allocation), and the release function frees it through the same
//! `Vec<T>` it came from. Element types are [`Datum`] (`Copy`), so
//! clearing a buffer never needs to run element destructors.

use std::any::TypeId;
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

use crate::datum::Datum;

// ---------------------------------------------------------------------------
// Pool<T>: the generic value pool
// ---------------------------------------------------------------------------

/// A mutexed free list of reusable values with hit/miss counters.
///
/// [`Pool::take`] pops a recycled value or falls back to `T::default()`;
/// [`Pool::put`] returns one. The caller is responsible for resetting the
/// value (e.g. `Vec::clear`) before or after `put` — the pool itself
/// never looks inside.
#[derive(Debug, Default)]
pub struct Pool<T> {
    items: Mutex<Vec<T>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<T: Default> Pool<T> {
    /// An empty pool.
    pub fn new() -> Self {
        Pool {
            items: Mutex::new(Vec::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Pop a recycled value, or construct a default one on a miss.
    pub fn take(&self) -> T {
        match self.items.lock().expect("pool poisoned").pop() {
            Some(v) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                v
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                T::default()
            }
        }
    }

    /// Return a (reset) value to the free list.
    pub fn put(&self, item: T) {
        self.items.lock().expect("pool poisoned").push(item);
    }

    /// `(hits, misses)` since construction.
    pub fn counters(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }
}

// ---------------------------------------------------------------------------
// The global size-classed payload pool
// ---------------------------------------------------------------------------

/// Number of power-of-two capacity classes (covers every possible `Vec`
/// capacity on a 64-bit host).
const CLASSES: usize = 64;
/// Per-thread free-list bound, per (type, class).
const LOCAL_CAP: usize = 16;
/// Shared-overflow bound, per (type, class).
const SHARED_CAP: usize = 64;

static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);
static OVERFLOW: AtomicU64 = AtomicU64::new(0);

/// A recycled allocation: the raw parts of a `Vec<T>` (capacity in
/// *elements*) plus the monomorphized function that frees it as the same
/// `Vec<T>` it was born as.
struct RawBuf {
    ptr: *mut u8,
    cap: usize,
    release: unsafe fn(*mut u8, usize),
}

// SAFETY: a RawBuf exclusively owns its allocation (it was moved out of a
// uniquely-owned Vec), so it can migrate between threads freely.
unsafe impl Send for RawBuf {}

impl Drop for RawBuf {
    fn drop(&mut self) {
        // SAFETY: (ptr, cap) came from a Vec of the type `release` was
        // monomorphized for, and ownership is exclusive.
        unsafe { (self.release)(self.ptr, self.cap) }
    }
}

/// Frees a recycled buffer by reassembling the empty `Vec<T>` it came from.
unsafe fn release_as<T>(ptr: *mut u8, cap: usize) {
    drop(unsafe { Vec::from_raw_parts(ptr.cast::<T>(), 0, cap) });
}

type ClassList = Box<[Vec<RawBuf>; CLASSES]>;

fn fresh_classes() -> ClassList {
    Box::new(std::array::from_fn(|_| Vec::new()))
}

thread_local! {
    static LOCAL: RefCell<HashMap<TypeId, ClassList>> = RefCell::new(HashMap::new());
}

fn shared() -> &'static Mutex<HashMap<TypeId, ClassList>> {
    static SHARED: OnceLock<Mutex<HashMap<TypeId, ClassList>>> = OnceLock::new();
    SHARED.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Smallest `c` with `2^c >= n` (for `n >= 1`).
fn class_for_request(n: usize) -> usize {
    (usize::BITS - (n - 1).leading_zeros()) as usize
}

/// Largest `c` with `2^c <= cap` (for `cap >= 1`), so every buffer filed
/// under class `c` has capacity at least `2^c`.
fn class_for_capacity(cap: usize) -> usize {
    (usize::BITS - 1 - cap.leading_zeros()) as usize
}

/// An empty `Vec<T>` with capacity at least `n`, recycled when possible.
///
/// Fresh allocations are rounded up to the class boundary (`2^⌈log₂ n⌉`
/// elements) so a buffer lands back in the class it was taken from and
/// steady-state workloads converge onto a fixed working set of buffers.
pub fn take_vec<T: Datum>(n: usize) -> Vec<T> {
    if std::mem::size_of::<T>() == 0 || n == 0 {
        // ZSTs never allocate, and empty requests are served by the
        // dangling-pointer Vec; nothing to pool either way.
        return Vec::new();
    }
    let class = class_for_request(n);
    let tid = TypeId::of::<T>();
    let hit = LOCAL
        .with(|l| l.borrow_mut().get_mut(&tid).and_then(|c| c[class].pop()))
        .or_else(|| {
            shared()
                .lock()
                .expect("payload pool poisoned")
                .get_mut(&tid)
                .and_then(|c| c[class].pop())
        });
    match hit {
        Some(buf) => {
            HITS.fetch_add(1, Ordering::Relaxed);
            let buf = std::mem::ManuallyDrop::new(buf);
            // SAFETY: the buffer was filed under TypeId::of::<T>(), so it
            // is the raw parts of a Vec<T>; class invariant gives cap >= n.
            unsafe { Vec::from_raw_parts(buf.ptr.cast::<T>(), 0, buf.cap) }
        }
        None => {
            MISSES.fetch_add(1, Ordering::Relaxed);
            Vec::with_capacity(1usize << class)
        }
    }
}

/// Return a `Vec<T>`'s allocation to the pool (contents are discarded).
///
/// Beyond the per-thread and shared-overflow bounds the allocation is
/// simply freed (counted in [`counters`] as an overflow).
pub fn recycle_vec<T: Datum>(mut v: Vec<T>) {
    let cap = v.capacity();
    if std::mem::size_of::<T>() == 0 || cap == 0 {
        return;
    }
    v.clear();
    let class = class_for_capacity(cap);
    let mut v = std::mem::ManuallyDrop::new(v);
    let buf = RawBuf {
        ptr: v.as_mut_ptr().cast::<u8>(),
        cap,
        release: release_as::<T>,
    };
    let tid = TypeId::of::<T>();
    let buf = match LOCAL.with(|l| {
        let mut l = l.borrow_mut();
        let classes = l.entry(tid).or_insert_with(fresh_classes);
        if classes[class].len() < LOCAL_CAP {
            classes[class].push(buf);
            None
        } else {
            Some(buf)
        }
    }) {
        None => return,
        Some(buf) => buf,
    };
    let mut g = shared().lock().expect("payload pool poisoned");
    let classes = g.entry(tid).or_insert_with(fresh_classes);
    if classes[class].len() < SHARED_CAP {
        classes[class].push(buf);
    } else {
        OVERFLOW.fetch_add(1, Ordering::Relaxed);
        drop(buf);
    }
}

/// Cumulative payload-pool counters for this process.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PayloadCounters {
    /// Requests served from a free list.
    pub hits: u64,
    /// Requests that had to allocate.
    pub misses: u64,
    /// Recycles dropped because both tiers were full.
    pub overflow: u64,
}

impl std::ops::Sub for PayloadCounters {
    type Output = PayloadCounters;
    fn sub(self, rhs: PayloadCounters) -> PayloadCounters {
        PayloadCounters {
            hits: self.hits.wrapping_sub(rhs.hits),
            misses: self.misses.wrapping_sub(rhs.misses),
            overflow: self.overflow.wrapping_sub(rhs.overflow),
        }
    }
}

/// Snapshot the process-wide payload-pool counters. Counters are global
/// (they aggregate every universe in the process); callers wanting a
/// per-run view subtract a baseline snapshot.
pub fn counters() -> PayloadCounters {
    PayloadCounters {
        hits: HITS.load(Ordering::Relaxed),
        misses: MISSES.load(Ordering::Relaxed),
        overflow: OVERFLOW.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_recycles_and_counts() {
        let p: Pool<Vec<u32>> = Pool::new();
        let mut a = p.take(); // miss
        a.extend_from_slice(&[1, 2, 3]);
        let cap = a.capacity();
        a.clear();
        p.put(a);
        let b = p.take(); // hit
        assert!(b.is_empty());
        assert_eq!(b.capacity(), cap);
        assert_eq!(p.counters(), (1, 1));
    }

    #[test]
    fn take_vec_reuses_the_same_allocation() {
        let mut v = take_vec::<u64>(100);
        assert!(v.capacity() >= 100);
        v.extend(0..100u64);
        let ptr = v.as_ptr();
        recycle_vec(v);
        // Same thread, same type, same class: must come back verbatim.
        let w = take_vec::<u64>(100);
        assert!(w.is_empty());
        assert_eq!(w.as_ptr(), ptr);
        recycle_vec(w);
    }

    #[test]
    fn classes_round_up_and_file_down() {
        assert_eq!(class_for_request(1), 0);
        assert_eq!(class_for_request(2), 1);
        assert_eq!(class_for_request(3), 2);
        assert_eq!(class_for_request(1024), 10);
        assert_eq!(class_for_request(1025), 11);
        assert_eq!(class_for_capacity(1), 0);
        assert_eq!(class_for_capacity(3), 1);
        assert_eq!(class_for_capacity(1024), 10);
        assert_eq!(class_for_capacity(2047), 10);
    }

    #[test]
    fn types_do_not_mix() {
        let mut v = take_vec::<u32>(64);
        v.push(7);
        let ptr = v.as_ptr() as usize;
        recycle_vec(v);
        // A different element type must not see u32's buffer even if the
        // class matches.
        let w = take_vec::<(u64, u64)>(64);
        assert_ne!(w.as_ptr() as usize, ptr);
        recycle_vec(w);
        let again = take_vec::<u32>(64);
        assert_eq!(again.as_ptr() as usize, ptr);
        recycle_vec(again);
    }

    #[test]
    fn zst_and_empty_requests_bypass_the_pool() {
        let before = counters();
        let v = take_vec::<()>(128);
        recycle_vec(v);
        let e = take_vec::<u32>(0);
        recycle_vec(e);
        assert_eq!(counters(), before);
    }

    #[test]
    fn recycled_buffer_has_class_capacity() {
        // A fresh miss rounds the capacity up to the class boundary, so the
        // buffer can serve any request in its class after recycling.
        let v = take_vec::<u8>(33);
        assert_eq!(v.capacity(), 64);
        recycle_vec(v);
        let w = take_vec::<u8>(64);
        assert_eq!(w.capacity(), 64);
        recycle_vec(w);
    }
}
