//! Error type for the simulator.
//!
//! Real MPI aborts the job on most errors; we return `Result` so tests can
//! exercise failure paths (deadlock timeouts, type mismatches, exhausted
//! context-ID space) without tearing the process down.

use std::fmt;

use crate::faults::RoundBlame;
use crate::time::Time;

/// Errors surfaced by simulator operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MpiError {
    /// A blocking receive/probe waited longer (in wall-clock time) than the
    /// configured deadlock timeout. This is the simulator's deadlock
    /// detector: a correct program never hits it.
    Timeout {
        /// Rank that timed out.
        rank: usize,
        /// Human-readable description of the blocked operation.
        waited_for: String,
        /// Virtual clock of the rank when the wall-clock timeout fired.
        virtual_now: Time,
        /// Which ranks the stalled operation was waiting on, with their
        /// last virtual-time activity and crashed/slowed/live status.
        blame: RoundBlame,
    },
    /// A message was matched whose payload element type differs from the
    /// type requested by the receive.
    TypeMismatch {
        /// Type name the receive asked for.
        expected: &'static str,
        /// Type name the matched message carries.
        got: &'static str,
    },
    /// Receive count expectations violated (analogue of MPI_ERR_TRUNCATE).
    Truncation {
        /// Element count the receive expected.
        expected: usize,
        /// Element count the message actually carries.
        got: usize,
    },
    /// Rank outside the communicator's group.
    InvalidRank {
        /// The offending rank.
        rank: usize,
        /// Size of the communicator it was used with.
        size: usize,
    },
    /// The context-ID mask has no free IDs left.
    ContextExhausted,
    /// A collective was invoked with inconsistent arguments across ranks
    /// (detected opportunistically).
    CollectiveMismatch(String),
    /// Catch-all for invalid API usage.
    Usage(String),
}

impl fmt::Display for MpiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MpiError::Timeout {
                rank,
                waited_for,
                virtual_now,
                blame,
            } => {
                write!(
                    f,
                    "deadlock timeout on rank {rank} while waiting for {waited_for} (virtual time {virtual_now})"
                )?;
                if !blame.is_empty() {
                    write!(f, "; {blame}")?;
                }
                Ok(())
            }
            MpiError::TypeMismatch { expected, got } => {
                write!(
                    f,
                    "datatype mismatch: receive expected {expected}, message holds {got}"
                )
            }
            MpiError::Truncation { expected, got } => {
                write!(
                    f,
                    "message truncated: expected {expected} elements, got {got}"
                )
            }
            MpiError::InvalidRank { rank, size } => {
                write!(
                    f,
                    "rank {rank} out of range for communicator of size {size}"
                )
            }
            MpiError::ContextExhausted => write!(f, "context-ID space exhausted"),
            MpiError::CollectiveMismatch(s) => write!(f, "collective argument mismatch: {s}"),
            MpiError::Usage(s) => write!(f, "invalid usage: {s}"),
        }
    }
}

impl std::error::Error for MpiError {}

/// Result alias used across the simulator.
pub type Result<T> = std::result::Result<T, MpiError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = MpiError::Timeout {
            rank: 3,
            waited_for: "recv(src=1, tag=7)".into(),
            virtual_now: Time::from_micros(5),
            blame: RoundBlame::default(),
        };
        let s = format!("{e}");
        assert!(s.contains("rank 3"));
        assert!(s.contains("recv(src=1, tag=7)"));
        // An unenriched blame adds nothing to the message.
        assert!(!s.contains("waiting on:"), "{s}");

        let e = MpiError::Timeout {
            rank: 3,
            waited_for: "recv(src=1, tag=7)".into(),
            virtual_now: Time::from_micros(5),
            blame: RoundBlame {
                waiting_on: vec![crate::faults::RankBlame {
                    rank: 1,
                    last_activity: Time::from_micros(4),
                    health: crate::faults::RankHealth::Crashed {
                        at: Time::from_micros(4),
                    },
                }],
                omitted: 0,
            },
        };
        let s = format!("{e}");
        assert!(s.contains("waiting on: rank 1 [crashed at"), "{s}");

        let e = MpiError::TypeMismatch {
            expected: "f64",
            got: "u32",
        };
        assert!(format!("{e}").contains("f64"));

        let e = MpiError::InvalidRank { rank: 9, size: 4 };
        assert!(format!("{e}").contains("size 4"));
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn std::error::Error> = Box::new(MpiError::ContextExhausted);
        assert!(e.to_string().contains("context-ID"));
    }
}
