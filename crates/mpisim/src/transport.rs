//! The `Transport` abstraction: typed point-to-point over some rank space.
//!
//! Collective algorithms (blocking in [`crate::coll`], nonblocking state
//! machines in [`crate::nbcoll`]) are written once, generically over
//! `Transport`. Both the native [`crate::comm::Comm`] and RBC's range
//! communicator implement it; the only differences between "vendor MPI
//! collectives" and "RBC collectives" are therefore (a) the communicator
//! construction path and (b) the vendor [`CostScale`] — exactly the
//! comparison the paper makes.

use std::sync::Arc;

use crate::datum::Datum;
use crate::error::{MpiError, Result};
use crate::model::CostScale;
use crate::msg::{ContextId, MatchPattern, MsgInfo, SrcFilter, Tag};
use crate::proc::ProcState;
use crate::time::Time;

/// Source argument of receives/probes, in communicator rank space.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Src {
    /// A specific rank of the communicator.
    Rank(usize),
    /// `MPI_ANY_SOURCE`.
    Any,
}

/// Receive/probe status in communicator rank space (`MPI_Status` analogue).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Status {
    /// Source rank within the communicator.
    pub source: usize,
    /// Tag of the matched message.
    pub tag: Tag,
    /// Number of received elements.
    pub count: usize,
    /// Received payload size in bytes.
    pub bytes: usize,
}

/// Typed point-to-point operations over some rank space.
///
/// Implementors supply the five projection methods; sends, receives, probes,
/// and virtual-time accounting are provided generically on top.
pub trait Transport: Clone + Send + 'static {
    /// This process's rank within the communicator.
    fn rank(&self) -> usize;
    /// Number of processes in the communicator.
    fn size(&self) -> usize;
    /// The per-rank simulator state (mailbox, clock, RNG).
    fn state(&self) -> &Arc<ProcState>;
    /// Context ID messages are matched under.
    fn ctx(&self) -> ContextId;
    /// Communicator rank -> global rank.
    fn translate(&self, rank: usize) -> usize;
    /// Global rank -> communicator rank, if a member.
    fn rank_of_global(&self, global: usize) -> Option<usize>;
    /// How `Src::Any` maps onto the message-matching layer. Native
    /// communicators use a true wildcard (their context is private); RBC
    /// communicators restrict by range membership (paper §V-C).
    fn any_source_filter(&self) -> SrcFilter;
    /// Cost scaling of messages sent through this transport.
    fn cost_scale(&self) -> CostScale {
        CostScale::NEUTRAL
    }

    // ---- provided API ------------------------------------------------------

    /// Validate a communicator rank argument.
    fn check_rank(&self, rank: usize) -> Result<()> {
        if rank < self.size() {
            Ok(())
        } else {
            Err(MpiError::InvalidRank {
                rank,
                size: self.size(),
            })
        }
    }

    /// Build the matching-layer pattern for a receive/probe.
    fn pattern(&self, src: Src, tag: Tag) -> MatchPattern {
        let src = match src {
            Src::Rank(r) => SrcFilter::Exact(self.translate(r)),
            Src::Any => self.any_source_filter(),
        };
        MatchPattern {
            ctx: self.ctx(),
            src,
            tag,
        }
    }

    /// Translate matched-message metadata into communicator rank space.
    fn status_of(&self, info: &MsgInfo) -> Status {
        let source = self
            .rank_of_global(info.src_global)
            .expect("message source is a member of this communicator");
        Status {
            source,
            tag: info.tag,
            count: info.count,
            bytes: info.bytes,
        }
    }

    /// Buffered send (never blocks). The copy lands in a pooled buffer
    /// ([`crate::pool::take_vec`]), so a steady-state send allocates
    /// nothing once the pool is warm.
    fn send<T: Datum>(&self, buf: &[T], dest: usize, tag: Tag) -> Result<()> {
        let mut data = crate::pool::take_vec::<T>(buf.len());
        data.extend_from_slice(buf);
        self.send_vec(data, dest, tag)
    }

    /// Buffered send taking ownership (avoids one copy).
    fn send_vec<T: Datum>(&self, data: Vec<T>, dest: usize, tag: Tag) -> Result<()> {
        self.check_rank(dest)?;
        self.state().send_global(
            self.translate(dest),
            tag,
            self.ctx(),
            data,
            self.cost_scale(),
        );
        Ok(())
    }

    /// Buffered send of a shared buffer: clones the `Arc`, not the
    /// payload — the fan-out path of broadcast/scatter trees, where the
    /// same buffer goes to every child. Costs are identical to an owned
    /// send of the same bytes.
    fn send_shared<T: Datum>(&self, data: &Arc<Vec<T>>, dest: usize, tag: Tag) -> Result<()> {
        self.check_rank(dest)?;
        self.state().send_global_shared(
            self.translate(dest),
            tag,
            self.ctx(),
            Arc::clone(data),
            self.cost_scale(),
        );
        Ok(())
    }

    /// Blocking receive keeping the payload behind an `Arc` (no copy):
    /// the receive path of fan-out stages that forward the buffer onward
    /// with [`Transport::send_shared`].
    fn recv_shared<T: Datum>(&self, src: Src, tag: Tag) -> Result<(Arc<Vec<T>>, Status)> {
        if let Src::Rank(r) = src {
            self.check_rank(r)?;
        }
        let pat = self.pattern(src, tag);
        let m = self.state().recv_match(&pat)?;
        let (data, info) = m.take_shared::<T>()?;
        let st = self.status_of(&info);
        Ok((data, st))
    }

    /// Nonblocking shared-receive attempt (see [`Transport::recv_shared`]).
    fn try_recv_shared<T: Datum>(
        &self,
        src: Src,
        tag: Tag,
    ) -> Result<Option<(Arc<Vec<T>>, Status)>> {
        if let Src::Rank(r) = src {
            self.check_rank(r)?;
        }
        let pat = self.pattern(src, tag);
        match self.state().try_recv_match(&pat)? {
            None => Ok(None),
            Some(m) => {
                let (data, info) = m.take_shared::<T>()?;
                let st = self.status_of(&info);
                Ok(Some((data, st)))
            }
        }
    }

    /// Blocking receive.
    fn recv<T: Datum>(&self, src: Src, tag: Tag) -> Result<(Vec<T>, Status)> {
        if let Src::Rank(r) = src {
            self.check_rank(r)?;
        }
        let pat = self.pattern(src, tag);
        let m = self.state().recv_match(&pat)?;
        let (data, info) = m.take::<T>()?;
        let st = self.status_of(&info);
        Ok((data, st))
    }

    /// Nonblocking receive attempt.
    fn try_recv<T: Datum>(&self, src: Src, tag: Tag) -> Result<Option<(Vec<T>, Status)>> {
        if let Src::Rank(r) = src {
            self.check_rank(r)?;
        }
        let pat = self.pattern(src, tag);
        match self.state().try_recv_match(&pat)? {
            None => Ok(None),
            Some(m) => {
                let (data, info) = m.take::<T>()?;
                let st = self.status_of(&info);
                Ok(Some((data, st)))
            }
        }
    }

    /// Blocking probe (`MPI_Probe`).
    fn probe(&self, src: Src, tag: Tag) -> Result<Status> {
        if let Src::Rank(r) = src {
            self.check_rank(r)?;
        }
        let pat = self.pattern(src, tag);
        let info = self.state().probe_match(&pat)?;
        Ok(self.status_of(&info))
    }

    /// Nonblocking probe (`MPI_Iprobe`).
    fn iprobe(&self, src: Src, tag: Tag) -> Result<Option<Status>> {
        if let Src::Rank(r) = src {
            self.check_rank(r)?;
        }
        let pat = self.pattern(src, tag);
        Ok(self.state().iprobe_match(&pat)?.map(|i| self.status_of(&i)))
    }

    /// Nonblocking receive: returns a pollable request.
    fn irecv<T: Datum>(&self, src: Src, tag: Tag) -> RecvReq<T, Self> {
        RecvReq {
            tr: self.clone(),
            src,
            tag,
            done: None,
        }
    }

    // ---- virtual time ------------------------------------------------------

    /// This rank's current virtual clock.
    fn now(&self) -> Time {
        self.state().now()
    }

    /// Advance this rank's virtual clock by `dt`.
    fn charge(&self, dt: Time) {
        self.state().charge(dt);
    }

    /// Advance the clock by the model's local-compute cost for `elems` elements.
    fn charge_compute(&self, elems: usize) {
        self.state().charge_compute(elems);
    }
}

// ---------------------------------------------------------------------------
// Maybe-async blocking primitives
// ---------------------------------------------------------------------------
// Free functions rather than trait methods so `Transport` stays object- and
// vtable-simple: an `async fn` in the trait would force every implementor
// through return-position-impl-trait plumbing for three operations whose
// bodies are identical anyway. Off poll mode these resolve in a single poll
// (see `crate::sched::poll::block_inline`); on a poll-mode body the wait
// suspends the rank future through the scheduler's park protocol.

/// [`Transport::recv`] for maybe-async workloads.
pub async fn recv_async<T: Datum, C: Transport>(
    tr: &C,
    src: Src,
    tag: Tag,
) -> Result<(Vec<T>, Status)> {
    if let Src::Rank(r) = src {
        tr.check_rank(r)?;
    }
    let pat = tr.pattern(src, tag);
    let m = tr.state().recv_match_async(&pat).await?;
    let (data, info) = m.take::<T>()?;
    let st = tr.status_of(&info);
    Ok((data, st))
}

/// [`Transport::recv_shared`] for maybe-async workloads.
pub async fn recv_shared_async<T: Datum, C: Transport>(
    tr: &C,
    src: Src,
    tag: Tag,
) -> Result<(Arc<Vec<T>>, Status)> {
    if let Src::Rank(r) = src {
        tr.check_rank(r)?;
    }
    let pat = tr.pattern(src, tag);
    let m = tr.state().recv_match_async(&pat).await?;
    let (data, info) = m.take_shared::<T>()?;
    let st = tr.status_of(&info);
    Ok((data, st))
}

/// [`Transport::probe`] for maybe-async workloads.
pub async fn probe_async<C: Transport>(tr: &C, src: Src, tag: Tag) -> Result<Status> {
    if let Src::Rank(r) = src {
        tr.check_rank(r)?;
    }
    let pat = tr.pattern(src, tag);
    let info = tr.state().probe_match_async(&pat).await?;
    Ok(tr.status_of(&info))
}

/// A pending nonblocking receive.
pub struct RecvReq<T: Datum, C: Transport> {
    tr: C,
    src: Src,
    tag: Tag,
    done: Option<(Vec<T>, Status)>,
}

impl<T: Datum, C: Transport> RecvReq<T, C> {
    /// The transport this receive was posted on.
    pub fn transport(&self) -> &C {
        &self.tr
    }

    /// Poll for completion (`MPI_Test`).
    pub fn test(&mut self) -> Result<bool> {
        if self.done.is_some() {
            return Ok(true);
        }
        if let Some(hit) = self.tr.try_recv::<T>(self.src, self.tag)? {
            self.done = Some(hit);
            return Ok(true);
        }
        Ok(false)
    }

    /// Block until complete, returning the data (`MPI_Wait`).
    pub fn wait(mut self) -> Result<(Vec<T>, Status)> {
        if let Some(hit) = self.done.take() {
            return Ok(hit);
        }
        self.tr.recv::<T>(self.src, self.tag)
    }

    /// [`RecvReq::wait`] for maybe-async workloads.
    pub async fn wait_async(mut self) -> Result<(Vec<T>, Status)> {
        if let Some(hit) = self.done.take() {
            return Ok(hit);
        }
        recv_async::<T, C>(&self.tr, self.src, self.tag).await
    }

    /// Take the data if complete.
    pub fn take(&mut self) -> Option<(Vec<T>, Status)> {
        self.done.take()
    }

    /// Whether the receive has already completed.
    pub fn is_done(&self) -> bool {
        self.done.is_some()
    }
}

/// A transport wrapper applying a vendor cost scale to all messages.
/// Vendor (native MPI) collectives run through this; RBC runs neutral.
#[derive(Clone)]
pub struct Scaled<C: Transport> {
    /// The wrapped transport.
    pub inner: C,
    /// Multiplier applied to α and β of every message sent through here.
    pub scale: CostScale,
}

impl<C: Transport> Scaled<C> {
    /// Wrap `inner`, scaling every message cost by `scale`.
    pub fn new(inner: C, scale: CostScale) -> Scaled<C> {
        Scaled { inner, scale }
    }
}

impl<C: Transport> Transport for Scaled<C> {
    fn rank(&self) -> usize {
        self.inner.rank()
    }
    fn size(&self) -> usize {
        self.inner.size()
    }
    fn state(&self) -> &Arc<ProcState> {
        self.inner.state()
    }
    fn ctx(&self) -> ContextId {
        self.inner.ctx()
    }
    fn translate(&self, rank: usize) -> usize {
        self.inner.translate(rank)
    }
    fn rank_of_global(&self, global: usize) -> Option<usize> {
        self.inner.rank_of_global(global)
    }
    fn any_source_filter(&self) -> SrcFilter {
        self.inner.any_source_filter()
    }
    fn cost_scale(&self) -> CostScale {
        self.scale
    }
}
