//! Per-rank mailboxes: the matching engine.
//!
//! Every rank owns one mailbox; senders push completed messages into the
//! destination's mailbox (sends are buffered, so they never block). Matching
//! follows MPI semantics:
//!
//! * a receive matches on `(context, source, tag)`;
//! * per `(sender, context)` messages are non-overtaking (FIFO): for a given
//!   source we only ever consider that source's *earliest* matching message;
//! * with a wildcard source, among the per-source head candidates we pick
//!   the one with the earliest *virtual arrival* — mirroring "the first
//!   message to physically arrive wins" of a real network, independent of
//!   the real-time interleaving of simulator threads.
//!
//! Blocking operations carry a wall-clock timeout that acts as a deadlock
//! detector (`MpiError::Timeout`).

use std::collections::VecDeque;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

use crate::error::{MpiError, Result};
use crate::msg::{MatchPattern, Message, MsgInfo};
use crate::time::Time;

/// One rank's incoming-message queue with MPI matching semantics:
/// `(context, source, tag)` matching, FIFO per sender, earliest-arrival
/// selection among sources for wildcards.
pub struct Mailbox {
    inner: Mutex<Inner>,
    cv: Condvar,
}

struct Inner {
    msgs: VecDeque<Message>,
    /// Monotone counter of pushes, used to detect "something new arrived"
    /// between blocking waits without re-scanning spuriously.
    pushes: u64,
}

impl Default for Mailbox {
    fn default() -> Self {
        Mailbox::new()
    }
}

impl Mailbox {
    /// An empty mailbox.
    pub fn new() -> Mailbox {
        Mailbox {
            inner: Mutex::new(Inner {
                msgs: VecDeque::new(),
                pushes: 0,
            }),
            cv: Condvar::new(),
        }
    }

    /// Deposit a message and wake blocked receivers.
    pub fn push(&self, m: Message) {
        let mut g = self.inner.lock();
        g.msgs.push_back(m);
        g.pushes += 1;
        drop(g);
        self.cv.notify_all();
    }

    /// Number of messages currently queued.
    pub fn len(&self) -> usize {
        self.inner.lock().msgs.len()
    }

    /// Whether no messages are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Index of the best match: among the first matching message of each
    /// source (FIFO per source), the one with minimal (arrival, src) — the
    /// src tiebreak keeps selection deterministic.
    fn best_match(inner: &Inner, pat: &MatchPattern) -> Option<usize> {
        let mut seen_srcs: Vec<usize> = Vec::new();
        let mut best: Option<(Time, usize, usize)> = None; // (arrival, src, idx)
        for (idx, m) in inner.msgs.iter().enumerate() {
            // FIFO per (src, ctx, tag): if we already saw an earlier message
            // from this src in this ctx with this tag, skip later ones.
            if m.ctx == pat.ctx && m.tag == pat.tag {
                if seen_srcs.contains(&m.src_global) {
                    continue;
                }
                seen_srcs.push(m.src_global);
            }
            if pat.matches(m) {
                let key = (m.arrival, m.src_global, idx);
                if best.is_none_or(|b| (key.0, key.1) < (b.0, b.1)) {
                    best = Some(key);
                }
                // An Exact-source pattern can't do better than this source's
                // FIFO head.
                if matches!(pat.src, crate::msg::SrcFilter::Exact(_)) {
                    break;
                }
            }
        }
        best.map(|(_, _, idx)| idx)
    }

    /// Remove and return the best matching message, if any.
    pub fn try_claim(&self, pat: &MatchPattern) -> Option<Message> {
        let mut g = self.inner.lock();
        Self::best_match(&g, pat).map(|idx| g.msgs.remove(idx).expect("index valid"))
    }

    /// Non-destructive probe.
    pub fn probe(&self, pat: &MatchPattern) -> Option<MsgInfo> {
        let g = self.inner.lock();
        Self::best_match(&g, pat).map(|idx| g.msgs[idx].info())
    }

    /// Block (in wall-clock time) until a matching message can be claimed.
    pub fn claim_blocking(
        &self,
        pat: &MatchPattern,
        timeout: Duration,
        rank: usize,
        vnow: Time,
    ) -> Result<Message> {
        let mut g = self.inner.lock();
        loop {
            if let Some(idx) = Self::best_match(&g, pat) {
                return Ok(g.msgs.remove(idx).expect("index valid"));
            }
            if self.cv.wait_for(&mut g, timeout).timed_out() {
                return Err(MpiError::Timeout {
                    rank,
                    waited_for: format!("recv({:?}, tag={}, {})", pat.src, pat.tag, pat.ctx),
                    virtual_now: vnow,
                });
            }
        }
    }

    /// Block until a matching message is present; do not remove it.
    pub fn probe_blocking(
        &self,
        pat: &MatchPattern,
        timeout: Duration,
        rank: usize,
        vnow: Time,
    ) -> Result<MsgInfo> {
        let mut g = self.inner.lock();
        loop {
            if let Some(idx) = Self::best_match(&g, pat) {
                return Ok(g.msgs[idx].info());
            }
            if self.cv.wait_for(&mut g, timeout).timed_out() {
                return Err(MpiError::Timeout {
                    rank,
                    waited_for: format!("probe({:?}, tag={}, {})", pat.src, pat.tag, pat.ctx),
                    virtual_now: vnow,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::{ContextId, SrcFilter};
    use std::sync::Arc;

    fn msg(src: usize, tag: u64, ctx: u32, arrival: u64, val: u64) -> Message {
        Message::new::<u64>(
            src,
            tag,
            ContextId::Small(ctx),
            vec![val],
            Time(0),
            Time(arrival),
        )
    }

    fn pat(src: SrcFilter, tag: u64, ctx: u32) -> MatchPattern {
        MatchPattern {
            ctx: ContextId::Small(ctx),
            src,
            tag,
        }
    }

    #[test]
    fn fifo_per_source() {
        let mb = Mailbox::new();
        mb.push(msg(1, 5, 0, 100, 111));
        mb.push(msg(1, 5, 0, 50, 222)); // later push, earlier arrival — must NOT overtake
        let m = mb.try_claim(&pat(SrcFilter::Exact(1), 5, 0)).unwrap();
        let (v, _) = m.take::<u64>().unwrap();
        assert_eq!(v, vec![111]);
        let m = mb.try_claim(&pat(SrcFilter::Exact(1), 5, 0)).unwrap();
        let (v, _) = m.take::<u64>().unwrap();
        assert_eq!(v, vec![222]);
    }

    #[test]
    fn wildcard_prefers_earliest_arrival() {
        let mb = Mailbox::new();
        mb.push(msg(1, 5, 0, 100, 111)); // physically first, arrives late
        mb.push(msg(2, 5, 0, 10, 222)); // physically second, arrives early
        let m = mb.try_claim(&pat(SrcFilter::Any, 5, 0)).unwrap();
        assert_eq!(m.src_global, 2);
    }

    #[test]
    fn context_isolation() {
        let mb = Mailbox::new();
        mb.push(msg(1, 5, 7, 10, 1));
        assert!(mb.try_claim(&pat(SrcFilter::Any, 5, 8)).is_none());
        assert!(mb.try_claim(&pat(SrcFilter::Any, 5, 7)).is_some());
    }

    #[test]
    fn tag_isolation() {
        let mb = Mailbox::new();
        mb.push(msg(1, 5, 0, 10, 1));
        assert!(mb.try_claim(&pat(SrcFilter::Exact(1), 6, 0)).is_none());
        assert_eq!(mb.len(), 1);
    }

    #[test]
    fn filter_wildcard_skips_non_members() {
        let mb = Mailbox::new();
        mb.push(msg(9, 5, 0, 1, 1)); // not in range, earliest arrival
        mb.push(msg(3, 5, 0, 50, 2));
        let f = SrcFilter::Filter(Arc::new(|g| (2..=4).contains(&g)));
        let m = mb.try_claim(&pat(f, 5, 0)).unwrap();
        assert_eq!(m.src_global, 3);
        assert_eq!(mb.len(), 1); // rank 9's message untouched
    }

    #[test]
    fn probe_does_not_remove() {
        let mb = Mailbox::new();
        mb.push(msg(1, 5, 0, 10, 42));
        let info = mb.probe(&pat(SrcFilter::Any, 5, 0)).unwrap();
        assert_eq!(info.src_global, 1);
        assert_eq!(info.count, 1);
        assert_eq!(mb.len(), 1);
    }

    #[test]
    fn blocking_claim_times_out() {
        let mb = Mailbox::new();
        let err = mb
            .claim_blocking(
                &pat(SrcFilter::Exact(0), 1, 0),
                Duration::from_millis(20),
                3,
                Time(99),
            )
            .unwrap_err();
        assert!(matches!(err, MpiError::Timeout { rank: 3, .. }));
    }

    #[test]
    fn blocking_claim_wakes_on_push() {
        let mb = Arc::new(Mailbox::new());
        let mb2 = Arc::clone(&mb);
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            mb2.push(msg(0, 1, 0, 5, 7));
        });
        let m = mb
            .claim_blocking(
                &pat(SrcFilter::Exact(0), 1, 0),
                Duration::from_secs(5),
                0,
                Time(0),
            )
            .unwrap();
        assert_eq!(m.src_global, 0);
        h.join().unwrap();
    }

    #[test]
    fn exact_source_fifo_even_with_other_traffic() {
        let mb = Mailbox::new();
        mb.push(msg(2, 5, 0, 500, 1));
        mb.push(msg(1, 5, 0, 1, 2));
        // Exact(2) must take src 2's head even though src 1 arrives earlier.
        let m = mb.try_claim(&pat(SrcFilter::Exact(2), 5, 0)).unwrap();
        assert_eq!(m.src_global, 2);
    }
}
