//! Per-rank mailboxes: the matching engine.
//!
//! Every rank owns one mailbox; senders push completed messages into the
//! destination's mailbox (sends are buffered, so they never block). Matching
//! follows MPI semantics:
//!
//! * a receive matches on `(context, source, tag)`;
//! * per `(sender, context)` messages are non-overtaking (FIFO): for a given
//!   source we only ever consider that source's *earliest* matching message;
//! * with a wildcard source, among the per-source head candidates we pick
//!   the one with the earliest *virtual arrival* — mirroring "the first
//!   message to physically arrive wins" of a real network, independent of
//!   the real-time interleaving of simulator threads.
//!
//! # Indexed storage
//!
//! Patterns always pin an exact `(context, tag)` pair (the libraries never
//! wildcard those), so messages are bucketed by that key, and within a key
//! by source. Each key keeps a **sorted vector** of its per-source FIFO
//! heads ordered by `(arrival, src)`: an exact-source claim is a hash
//! lookup, a wildcard claim is the first element — **O(log s) search in
//! the number of distinct pending sources, independent of the number of
//! pending messages**. (The index was a `BTreeSet` until PR 8; a sorted
//! vector has identical ordering semantics, and unlike tree nodes its
//! backing storage is retained across refills, which the allocation-free
//! epoch path needs.) Drained source queues and drained `(context, tag)`
//! buckets are likewise retained/recycled rather than freed, so a
//! steady-state storm touches the allocator not at all.
//!
//! # Blocking and wake-ups
//!
//! Thread-backend receivers block on the internal condvar with a wall-clock
//! timeout that acts as a deadlock detector ([`MpiError::Timeout`]).
//! Cooperative-backend receivers instead subscribe a [`Wake`] hook with
//! their pattern ([`Mailbox::claim_or_subscribe`]); a push wakes exactly
//! the subscribers whose pattern matches the new message, so a rank is only
//! scheduled when its message actually arrived.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

use crate::error::{MpiError, Result};
use crate::msg::{ContextId, MatchPattern, Message, MsgInfo, SrcFilter, Tag};
use crate::time::Time;

/// Wake-up hook subscribed by a parked cooperative task. Under the epoch
/// scheduler every push — and therefore every wake — happens during the
/// single-threaded commit phase, in the deterministic global delivery
/// order (see [`crate::sched`]); the woken tasks join the next epoch in
/// exactly that order.
pub trait Wake: Send + Sync {
    /// Make the subscriber runnable again.
    fn wake(&self);
}

/// Handle for cancelling a subscription made by
/// [`Mailbox::claim_or_subscribe`] / [`Mailbox::probe_or_subscribe`].
#[derive(Debug)]
pub struct WaitToken(u64);

/// Outcome of a claim-or-subscribe style operation.
pub enum Subscribed<T> {
    /// A matching message/probe hit was available immediately.
    Hit(T),
    /// Nothing matched; the waker was subscribed and will fire on a
    /// matching push. Cancel with [`Mailbox::unsubscribe`].
    Waiting(WaitToken),
}

struct WaiterEntry {
    token: u64,
    pat: MatchPattern,
    waker: Arc<dyn Wake>,
}

/// Messages of one `(context, tag)` bucket: per-source FIFO queues plus a
/// sorted vector of the current heads keyed by `(arrival, src)` (unique —
/// one head per source).
#[derive(Default)]
struct KeyQueue {
    per_src: HashMap<usize, VecDeque<Message>>,
    heads: Vec<(Time, usize)>,
}

impl KeyQueue {
    fn insert_head(&mut self, key: (Time, usize)) {
        let i = self.heads.binary_search(&key).unwrap_err();
        self.heads.insert(i, key);
    }

    fn remove_head(&mut self, key: (Time, usize)) {
        let i = self.heads.binary_search(&key).expect("head is indexed");
        self.heads.remove(i);
    }

    fn push(&mut self, m: Message) {
        let key = (m.arrival, m.src_global);
        let q = self.per_src.entry(m.src_global).or_default();
        let was_empty = q.is_empty();
        q.push_back(m);
        if was_empty {
            self.insert_head(key);
        }
    }

    /// Source of the best matching candidate under MPI semantics: per-source
    /// FIFO heads only, earliest `(arrival, src)` among acceptable sources.
    fn best_src(&self, src: &SrcFilter) -> Option<usize> {
        match src {
            // A drained source keeps its (empty) queue, so presence in the
            // map alone is not enough.
            SrcFilter::Exact(s) => self
                .per_src
                .get(s)
                .is_some_and(|q| !q.is_empty())
                .then_some(*s),
            SrcFilter::Any => self.heads.first().map(|&(_, s)| s),
            SrcFilter::Filter(f) => self.heads.iter().find(|&&(_, s)| f(s)).map(|&(_, s)| s),
        }
    }

    fn head(&self, src: usize) -> &Message {
        self.per_src[&src].front().expect("non-empty source queue")
    }

    fn pop(&mut self, src: usize) -> Message {
        let q = self.per_src.get_mut(&src).expect("non-empty source queue");
        let m = q.pop_front().expect("non-empty source queue");
        // A drained source keeps its empty queue (capacity retained for
        // the next refill); the heads index alone tracks liveness.
        let next_key = q.front().map(|next| (next.arrival, src));
        self.remove_head((m.arrival, src));
        if let Some(key) = next_key {
            self.insert_head(key);
        }
        m
    }

    fn is_empty(&self) -> bool {
        self.heads.is_empty()
    }
}

struct Inner {
    keys: HashMap<(ContextId, Tag), KeyQueue>,
    count: usize,
    waiters: Vec<WaiterEntry>,
    next_token: u64,
    /// Waiter-pattern match checks performed by deposits — the mailbox's
    /// share of the deterministic [`crate::obs::MetricsSnapshot`]. On the
    /// cooperative backend the waiter set at each commit is a pure
    /// function of the epoch structure, so this count is worker-invariant.
    scans: u64,
    /// Drained `(context, tag)` buckets kept for reuse (bounded by
    /// [`Mailbox::FREE_QUEUE_CAP`]): their per-source queues and heads
    /// vector retain capacity, so re-opening a bucket allocates nothing.
    free_queues: Vec<KeyQueue>,
}

/// One rank's incoming-message queue with MPI matching semantics:
/// `(context, source, tag)` matching, FIFO per sender, earliest-arrival
/// selection among sources for wildcards.
pub struct Mailbox {
    inner: Mutex<Inner>,
    cv: Condvar,
}

impl Default for Mailbox {
    fn default() -> Self {
        Mailbox::new()
    }
}

impl Mailbox {
    /// An empty mailbox.
    pub fn new() -> Mailbox {
        Mailbox {
            inner: Mutex::new(Inner {
                keys: HashMap::new(),
                count: 0,
                waiters: Vec::new(),
                next_token: 0,
                scans: 0,
                free_queues: Vec::new(),
            }),
            cv: Condvar::new(),
        }
    }

    /// Bound on recycled `(context, tag)` buckets kept in
    /// [`Inner::free_queues`]; drained buckets beyond it are dropped.
    const FREE_QUEUE_CAP: usize = 8;

    /// Deposit one message under the held lock: remove every matching
    /// subscription (appending `(idx, waker)` pairs to `fired`, in
    /// subscription order) and insert the message. Both push flavours go
    /// through this single helper so their matching semantics can never
    /// drift apart — the sharded commit's serial-oracle equivalence
    /// (DESIGN.md §7) depends on [`Mailbox::push`] and
    /// [`Mailbox::push_batch`] agreeing exactly.
    #[inline]
    fn deposit(g: &mut Inner, idx: usize, m: Message, fired: &mut Vec<(usize, Arc<dyn Wake>)>) {
        g.scans += g.waiters.len() as u64;
        let mut i = 0;
        while i < g.waiters.len() {
            if g.waiters[i].pat.matches(&m) {
                fired.push((idx, g.waiters.remove(i).waker));
            } else {
                i += 1;
            }
        }
        let Inner {
            keys, free_queues, ..
        } = g;
        keys.entry((m.ctx, m.tag))
            .or_insert_with(|| free_queues.pop().unwrap_or_default())
            .push(m);
        g.count += 1;
    }

    /// Deposit a message and wake blocked receivers — the condvar for
    /// thread-backend receivers, and exactly the matching [`Wake`]
    /// subscribers for cooperative ones.
    pub fn push(&self, m: Message) {
        let mut fired: Vec<(usize, Arc<dyn Wake>)> = Vec::new();
        Self::deposit(&mut self.inner.lock(), 0, m, &mut fired);
        self.cv.notify_all();
        for (_, w) in fired {
            w.wake();
        }
    }

    /// Deposit a batch of messages under **one** lock acquisition,
    /// *without* firing wakers.
    ///
    /// This is the sharded epoch commit's entry point: the scheduler pushes
    /// each destination's globally-ordered message segment as one batch
    /// (amortising the mailbox lock over the whole fan-in), and must defer
    /// every wake-up past its push barrier so the wake order can be merged
    /// deterministically across shards (see [`crate::sched`]). Matching
    /// subscriptions are removed here — under the lock, exactly as
    /// [`Mailbox::push`] would — and appended to `fired` as `(index of the
    /// triggering message within the batch, waker)` pairs in trigger order;
    /// the caller fires them. `msgs` is drained, not consumed, so the
    /// caller's batch buffer (and `fired`) keep their capacity for the next
    /// segment — the commit hot path reuses both through the pool. The
    /// condvar is still notified for any thread-backend receiver parked on
    /// this mailbox.
    pub fn push_batch(&self, msgs: &mut Vec<Message>, fired: &mut Vec<(usize, Arc<dyn Wake>)>) {
        if msgs.is_empty() {
            return;
        }
        {
            let mut g = self.inner.lock();
            for (idx, m) in msgs.drain(..).enumerate() {
                Self::deposit(&mut g, idx, m, fired);
            }
        }
        self.cv.notify_all();
    }

    /// Number of messages currently queued.
    pub fn len(&self) -> usize {
        self.inner.lock().count
    }

    /// Cumulative waiter-pattern match checks performed by deposits into
    /// this mailbox (see [`crate::obs::MetricsSnapshot::mailbox_scans`]).
    pub fn scans(&self) -> u64 {
        self.inner.lock().scans
    }

    /// Whether no messages are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn claim_inner(g: &mut Inner, pat: &MatchPattern) -> Option<Message> {
        let key = (pat.ctx, pat.tag);
        let (m, empty) = {
            let kq = g.keys.get_mut(&key)?;
            let src = kq.best_src(&pat.src)?;
            let m = kq.pop(src);
            (m, kq.is_empty())
        };
        if empty {
            // Recycle the drained bucket rather than dropping it: its
            // per-source queues and heads vector keep their capacity, so
            // the next deposit under this (or any) key allocates nothing.
            if let Some(kq) = g.keys.remove(&key) {
                if g.free_queues.len() < Self::FREE_QUEUE_CAP {
                    g.free_queues.push(kq);
                }
            }
        }
        g.count -= 1;
        Some(m)
    }

    fn probe_inner(g: &Inner, pat: &MatchPattern) -> Option<MsgInfo> {
        let kq = g.keys.get(&(pat.ctx, pat.tag))?;
        let src = kq.best_src(&pat.src)?;
        Some(kq.head(src).info())
    }

    fn subscribe(g: &mut Inner, pat: &MatchPattern, waker: &Arc<dyn Wake>) -> WaitToken {
        let token = g.next_token;
        g.next_token += 1;
        g.waiters.push(WaiterEntry {
            token,
            pat: pat.clone(),
            waker: Arc::clone(waker),
        });
        WaitToken(token)
    }

    /// Remove and return the best matching message, if any.
    pub fn try_claim(&self, pat: &MatchPattern) -> Option<Message> {
        Self::claim_inner(&mut self.inner.lock(), pat)
    }

    /// Non-destructive probe.
    pub fn probe(&self, pat: &MatchPattern) -> Option<MsgInfo> {
        Self::probe_inner(&self.inner.lock(), pat)
    }

    /// Claim the best match, or — if nothing matches — subscribe `waker` to
    /// fire on the next matching push. The check and the subscription are
    /// one atomic step under the mailbox lock, so a push can never slip
    /// between them.
    pub fn claim_or_subscribe(
        &self,
        pat: &MatchPattern,
        waker: &Arc<dyn Wake>,
    ) -> Subscribed<Message> {
        let mut g = self.inner.lock();
        if let Some(m) = Self::claim_inner(&mut g, pat) {
            return Subscribed::Hit(m);
        }
        Subscribed::Waiting(Self::subscribe(&mut g, pat, waker))
    }

    /// Probe the best match, or subscribe `waker` as in
    /// [`Mailbox::claim_or_subscribe`].
    pub fn probe_or_subscribe(
        &self,
        pat: &MatchPattern,
        waker: &Arc<dyn Wake>,
    ) -> Subscribed<MsgInfo> {
        let mut g = self.inner.lock();
        if let Some(info) = Self::probe_inner(&g, pat) {
            return Subscribed::Hit(info);
        }
        Subscribed::Waiting(Self::subscribe(&mut g, pat, waker))
    }

    /// Cancel a subscription. Idempotent: wake-ups triggered by a push
    /// already removed their entry.
    pub fn unsubscribe(&self, token: WaitToken) {
        self.inner.lock().waiters.retain(|w| w.token != token.0);
    }

    /// Block (in wall-clock time) until a matching message can be claimed.
    pub fn claim_blocking(
        &self,
        pat: &MatchPattern,
        timeout: Duration,
        rank: usize,
        vnow: Time,
    ) -> Result<Message> {
        let mut g = self.inner.lock();
        loop {
            if let Some(m) = Self::claim_inner(&mut g, pat) {
                return Ok(m);
            }
            if self.cv.wait_for(&mut g, timeout).timed_out() {
                return Err(MpiError::Timeout {
                    rank,
                    waited_for: format!("recv({:?}, tag={}, {})", pat.src, pat.tag, pat.ctx),
                    virtual_now: vnow,
                    // The mailbox has no fault-state access; `ProcState`
                    // enriches the blame on the way out.
                    blame: crate::faults::RoundBlame::default(),
                });
            }
        }
    }

    /// Block until a matching message is present; do not remove it.
    pub fn probe_blocking(
        &self,
        pat: &MatchPattern,
        timeout: Duration,
        rank: usize,
        vnow: Time,
    ) -> Result<MsgInfo> {
        let mut g = self.inner.lock();
        loop {
            if let Some(info) = Self::probe_inner(&g, pat) {
                return Ok(info);
            }
            if self.cv.wait_for(&mut g, timeout).timed_out() {
                return Err(MpiError::Timeout {
                    rank,
                    waited_for: format!("probe({:?}, tag={}, {})", pat.src, pat.tag, pat.ctx),
                    virtual_now: vnow,
                    blame: crate::faults::RoundBlame::default(),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::{ContextId, SrcFilter};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    fn msg(src: usize, tag: u64, ctx: u32, arrival: u64, val: u64) -> Message {
        Message::new::<u64>(
            src,
            tag,
            ContextId::Small(ctx),
            vec![val],
            Time(0),
            Time(arrival),
        )
    }

    fn pat(src: SrcFilter, tag: u64, ctx: u32) -> MatchPattern {
        MatchPattern {
            ctx: ContextId::Small(ctx),
            src,
            tag,
        }
    }

    #[test]
    fn fifo_per_source() {
        let mb = Mailbox::new();
        mb.push(msg(1, 5, 0, 100, 111));
        mb.push(msg(1, 5, 0, 50, 222)); // later push, earlier arrival — must NOT overtake
        let m = mb.try_claim(&pat(SrcFilter::Exact(1), 5, 0)).unwrap();
        let (v, _) = m.take::<u64>().unwrap();
        assert_eq!(v, vec![111]);
        let m = mb.try_claim(&pat(SrcFilter::Exact(1), 5, 0)).unwrap();
        let (v, _) = m.take::<u64>().unwrap();
        assert_eq!(v, vec![222]);
    }

    #[test]
    fn wildcard_prefers_earliest_arrival() {
        let mb = Mailbox::new();
        mb.push(msg(1, 5, 0, 100, 111)); // physically first, arrives late
        mb.push(msg(2, 5, 0, 10, 222)); // physically second, arrives early
        let m = mb.try_claim(&pat(SrcFilter::Any, 5, 0)).unwrap();
        assert_eq!(m.src_global, 2);
    }

    #[test]
    fn context_isolation() {
        let mb = Mailbox::new();
        mb.push(msg(1, 5, 7, 10, 1));
        assert!(mb.try_claim(&pat(SrcFilter::Any, 5, 8)).is_none());
        assert!(mb.try_claim(&pat(SrcFilter::Any, 5, 7)).is_some());
    }

    #[test]
    fn tag_isolation() {
        let mb = Mailbox::new();
        mb.push(msg(1, 5, 0, 10, 1));
        assert!(mb.try_claim(&pat(SrcFilter::Exact(1), 6, 0)).is_none());
        assert_eq!(mb.len(), 1);
    }

    #[test]
    fn filter_wildcard_skips_non_members() {
        let mb = Mailbox::new();
        mb.push(msg(9, 5, 0, 1, 1)); // not in range, earliest arrival
        mb.push(msg(3, 5, 0, 50, 2));
        let f = SrcFilter::Filter(Arc::new(|g| (2..=4).contains(&g)));
        let m = mb.try_claim(&pat(f, 5, 0)).unwrap();
        assert_eq!(m.src_global, 3);
        assert_eq!(mb.len(), 1); // rank 9's message untouched
    }

    #[test]
    fn probe_does_not_remove() {
        let mb = Mailbox::new();
        mb.push(msg(1, 5, 0, 10, 42));
        let info = mb.probe(&pat(SrcFilter::Any, 5, 0)).unwrap();
        assert_eq!(info.src_global, 1);
        assert_eq!(info.count, 1);
        assert_eq!(mb.len(), 1);
    }

    #[test]
    fn blocking_claim_times_out() {
        let mb = Mailbox::new();
        let err = mb
            .claim_blocking(
                &pat(SrcFilter::Exact(0), 1, 0),
                Duration::from_millis(20),
                3,
                Time(99),
            )
            .unwrap_err();
        assert!(matches!(err, MpiError::Timeout { rank: 3, .. }));
    }

    #[test]
    fn blocking_claim_wakes_on_push() {
        let mb = Arc::new(Mailbox::new());
        let mb2 = Arc::clone(&mb);
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            mb2.push(msg(0, 1, 0, 5, 7));
        });
        let m = mb
            .claim_blocking(
                &pat(SrcFilter::Exact(0), 1, 0),
                Duration::from_secs(5),
                0,
                Time(0),
            )
            .unwrap();
        assert_eq!(m.src_global, 0);
        h.join().unwrap();
    }

    #[test]
    fn exact_source_fifo_even_with_other_traffic() {
        let mb = Mailbox::new();
        mb.push(msg(2, 5, 0, 500, 1));
        mb.push(msg(1, 5, 0, 1, 2));
        // Exact(2) must take src 2's head even though src 1 arrives earlier.
        let m = mb.try_claim(&pat(SrcFilter::Exact(2), 5, 0)).unwrap();
        assert_eq!(m.src_global, 2);
    }

    #[test]
    fn heads_index_tracks_pops_and_reinserts() {
        // Regression for the indexed storage: popping a head must expose
        // the source's next message at its own arrival key.
        let mb = Mailbox::new();
        mb.push(msg(1, 5, 0, 10, 1)); // src 1 head, arrival 10
        mb.push(msg(1, 5, 0, 5, 2)); //  src 1 second, arrival 5 (no overtake)
        mb.push(msg(2, 5, 0, 7, 3)); //  src 2 head, arrival 7
        let p = pat(SrcFilter::Any, 5, 0);
        // Heads are (10, src1) and (7, src2): src2 wins.
        assert_eq!(mb.try_claim(&p).unwrap().src_global, 2);
        // Now heads are (10, src1) only.
        let (v, _) = mb.try_claim(&p).unwrap().take::<u64>().unwrap();
        assert_eq!(v, vec![1]);
        // src1's second message surfaced with arrival 5.
        let (v, _) = mb.try_claim(&p).unwrap().take::<u64>().unwrap();
        assert_eq!(v, vec![2]);
        assert!(mb.is_empty());
    }

    struct CountWake(AtomicUsize);
    impl Wake for CountWake {
        fn wake(&self) {
            self.0.fetch_add(1, Ordering::SeqCst);
        }
    }

    #[test]
    fn subscription_fires_only_on_match() {
        let mb = Mailbox::new();
        let counter = Arc::new(CountWake(AtomicUsize::new(0)));
        let waker: Arc<dyn Wake> = Arc::<CountWake>::clone(&counter);
        let token = match mb.claim_or_subscribe(&pat(SrcFilter::Exact(1), 5, 0), &waker) {
            Subscribed::Waiting(t) => t,
            Subscribed::Hit(_) => panic!("mailbox is empty"),
        };
        mb.push(msg(2, 5, 0, 1, 0)); // wrong source: no wake
        assert_eq!(counter.0.load(Ordering::SeqCst), 0);
        mb.push(msg(1, 6, 0, 1, 0)); // wrong tag: no wake
        assert_eq!(counter.0.load(Ordering::SeqCst), 0);
        mb.push(msg(1, 5, 0, 1, 0)); // match: wake fires and unsubscribes
        assert_eq!(counter.0.load(Ordering::SeqCst), 1);
        mb.push(msg(1, 5, 0, 2, 0)); // already unsubscribed: no second wake
        assert_eq!(counter.0.load(Ordering::SeqCst), 1);
        mb.unsubscribe(token); // idempotent
    }

    #[test]
    fn push_batch_preserves_order_and_defers_wakes() {
        let mb = Mailbox::new();
        let counter = Arc::new(CountWake(AtomicUsize::new(0)));
        let waker: Arc<dyn Wake> = Arc::<CountWake>::clone(&counter);
        let token = match mb.claim_or_subscribe(&pat(SrcFilter::Any, 5, 0), &waker) {
            Subscribed::Waiting(t) => t,
            Subscribed::Hit(_) => panic!("mailbox is empty"),
        };
        let mut batch = vec![
            msg(1, 6, 0, 1, 10), // wrong tag: not a trigger
            msg(1, 5, 0, 2, 11), // first match: the trigger, index 1
            msg(1, 5, 0, 3, 12), // waiter already removed
            msg(2, 5, 0, 1, 13),
        ];
        let mut fired = Vec::new();
        mb.push_batch(&mut batch, &mut fired);
        assert!(batch.is_empty(), "the batch buffer is drained for reuse");
        // The waker came back unfired, tagged with the triggering index.
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].0, 1);
        assert_eq!(counter.0.load(Ordering::SeqCst), 0);
        fired[0].1.wake();
        assert_eq!(counter.0.load(Ordering::SeqCst), 1);
        // Messages landed with per-source FIFO and wildcard order exactly
        // as a sequence of single pushes would have left them.
        let p5 = pat(SrcFilter::Any, 5, 0);
        assert_eq!(mb.try_claim(&p5).unwrap().src_global, 2); // arrival 1
        let (v, _) = mb.try_claim(&p5).unwrap().take::<u64>().unwrap();
        assert_eq!(v, vec![11]); // src 1 head, arrival 2
        let (v, _) = mb.try_claim(&p5).unwrap().take::<u64>().unwrap();
        assert_eq!(v, vec![12]);
        assert_eq!(
            mb.try_claim(&pat(SrcFilter::Any, 6, 0)).unwrap().src_global,
            1
        );
        assert!(mb.is_empty());
        mb.unsubscribe(token); // idempotent after the wake consumed it
    }

    #[test]
    fn push_batch_fires_each_subscription_once() {
        // Two waiters with different patterns: each is triggered by the
        // first batch message matching *its* pattern, independently.
        let mb = Mailbox::new();
        let c1 = Arc::new(CountWake(AtomicUsize::new(0)));
        let c2 = Arc::new(CountWake(AtomicUsize::new(0)));
        let w1: Arc<dyn Wake> = Arc::<CountWake>::clone(&c1);
        let w2: Arc<dyn Wake> = Arc::<CountWake>::clone(&c2);
        assert!(matches!(
            mb.claim_or_subscribe(&pat(SrcFilter::Exact(7), 5, 0), &w1),
            Subscribed::Waiting(_)
        ));
        assert!(matches!(
            mb.probe_or_subscribe(&pat(SrcFilter::Exact(8), 5, 0), &w2),
            Subscribed::Waiting(_)
        ));
        let mut batch = vec![
            msg(8, 5, 0, 1, 0), // triggers w2 at index 0
            msg(7, 5, 0, 2, 0), // triggers w1 at index 1
            msg(8, 5, 0, 3, 0), // w2 already removed
        ];
        let mut fired = Vec::new();
        mb.push_batch(&mut batch, &mut fired);
        let idxs: Vec<usize> = fired.iter().map(|(i, _)| *i).collect();
        assert_eq!(idxs, vec![0, 1]);
    }

    #[test]
    fn empty_push_batch_is_a_no_op() {
        let mb = Mailbox::new();
        let mut fired = Vec::new();
        mb.push_batch(&mut Vec::new(), &mut fired);
        assert!(fired.is_empty());
        assert!(mb.is_empty());
    }

    #[test]
    fn immediate_hit_does_not_subscribe() {
        let mb = Mailbox::new();
        mb.push(msg(1, 5, 0, 1, 42));
        let counter = Arc::new(CountWake(AtomicUsize::new(0)));
        let waker: Arc<dyn Wake> = Arc::<CountWake>::clone(&counter);
        match mb.claim_or_subscribe(&pat(SrcFilter::Any, 5, 0), &waker) {
            Subscribed::Hit(m) => assert_eq!(m.src_global, 1),
            Subscribed::Waiting(_) => panic!("message was present"),
        }
        mb.push(msg(1, 5, 0, 2, 0));
        assert_eq!(counter.0.load(Ordering::SeqCst), 0);
    }
}
