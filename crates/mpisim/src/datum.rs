//! Element ("datatype") support.
//!
//! MPI moves typed buffers; the simulator does the same with plain-old-data
//! Rust types. Payloads travel as `Vec<T>` behind `Box<dyn Any>` — no
//! serialization — so [`Datum`] only requires `Copy + Send + 'static`.

use std::cmp::Ordering;

/// A plain-old-data element that can travel in a message.
pub trait Datum: Copy + Send + Sync + 'static {
    /// Size in bytes, used by the α–β cost model (one "machine word" in the
    /// paper is one element; we charge by bytes for generality).
    fn width() -> usize {
        std::mem::size_of::<Self>()
    }
}

macro_rules! impl_datum {
    ($($t:ty),*) => { $(impl Datum for $t {})* };
}

impl_datum!(
    u8,
    u16,
    u32,
    u64,
    u128,
    usize,
    i8,
    i16,
    i32,
    i64,
    i128,
    isize,
    f32,
    f64,
    bool,
    char,
    ()
);

impl<A: Datum, B: Datum> Datum for (A, B) {}
impl<A: Datum, B: Datum, C: Datum> Datum for (A, B, C) {}
impl<A: Datum, B: Datum, C: Datum, D: Datum> Datum for (A, B, C, D) {}
impl<T: Datum, const N: usize> Datum for [T; N] {}

/// Elements with an additive identity, for `sum`-style reductions.
pub trait Zeroed: Datum {
    /// The additive identity of the type.
    const ZERO: Self;
}

macro_rules! impl_zeroed {
    ($($t:ty),*) => { $(impl Zeroed for $t { const ZERO: Self = 0 as $t; })* };
}
impl_zeroed!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// A total order usable for sorting keys. `f64` gets IEEE-754 `total_cmp`.
pub trait SortKey: Datum {
    /// Total-order comparison of two keys.
    fn cmp_key(&self, other: &Self) -> Ordering;
}

macro_rules! impl_sortkey_ord {
    ($($t:ty),*) => { $(impl SortKey for $t {
        fn cmp_key(&self, other: &Self) -> Ordering { Ord::cmp(self, other) }
    })* };
}
impl_sortkey_ord!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SortKey for f64 {
    fn cmp_key(&self, other: &Self) -> Ordering {
        self.total_cmp(other)
    }
}

impl SortKey for f32 {
    fn cmp_key(&self, other: &Self) -> Ordering {
        self.total_cmp(other)
    }
}

impl<A: SortKey, B: SortKey> SortKey for (A, B) {
    fn cmp_key(&self, other: &Self) -> Ordering {
        self.0
            .cmp_key(&other.0)
            .then_with(|| self.1.cmp_key(&other.1))
    }
}

impl<A: SortKey, B: SortKey, C: SortKey> SortKey for (A, B, C) {
    fn cmp_key(&self, other: &Self) -> Ordering {
        self.0
            .cmp_key(&other.0)
            .then_with(|| self.1.cmp_key(&other.1))
            .then_with(|| self.2.cmp_key(&other.2))
    }
}

/// Reduction operators. Implemented as cloneable closures so collectives can
/// stay generic; the helpers below cover the MPI builtins the paper needs
/// (`MPI_SUM` for prefix sums, `MPI_BAND` for context-ID masks, min/max).
pub mod ops {
    use super::{Datum, SortKey, Zeroed};

    /// `MPI_SUM`.
    pub fn sum<T>() -> impl Fn(&T, &T) -> T + Clone + Send + Sync + 'static
    where
        T: Zeroed + std::ops::Add<Output = T>,
    {
        |a: &T, b: &T| *a + *b
    }

    /// `MPI_MIN` under the element's total order.
    pub fn min<T: SortKey>() -> impl Fn(&T, &T) -> T + Clone + Send + Sync + 'static {
        |a: &T, b: &T| {
            if b.cmp_key(a) == std::cmp::Ordering::Less {
                *b
            } else {
                *a
            }
        }
    }

    /// `MPI_MAX` under the element's total order.
    pub fn max<T: SortKey>() -> impl Fn(&T, &T) -> T + Clone + Send + Sync + 'static {
        |a: &T, b: &T| {
            if b.cmp_key(a) == std::cmp::Ordering::Greater {
                *b
            } else {
                *a
            }
        }
    }

    /// `MPI_BAND` — used by context-ID mask agreement (§III of the paper).
    pub fn band<T>() -> impl Fn(&T, &T) -> T + Clone + Send + Sync + 'static
    where
        T: Datum + std::ops::BitAnd<Output = T>,
    {
        |a: &T, b: &T| *a & *b
    }

    /// Element-wise `MPI_BAND` over fixed-size arrays (context-ID masks are
    /// bit vectors).
    pub fn band_array<T, const N: usize>(
    ) -> impl Fn(&[T; N], &[T; N]) -> [T; N] + Clone + Send + Sync + 'static
    where
        T: Datum + std::ops::BitAnd<Output = T>,
    {
        |a: &[T; N], b: &[T; N]| {
            let mut out = *a;
            for i in 0..N {
                out[i] = a[i] & b[i];
            }
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widths() {
        assert_eq!(f64::width(), 8);
        assert_eq!(u8::width(), 1);
        assert_eq!(<(u32, u32)>::width(), 8);
        assert_eq!(<[u64; 4]>::width(), 32);
    }

    #[test]
    fn sort_key_totality_on_floats() {
        assert_eq!(1.0f64.cmp_key(&2.0), Ordering::Less);
        assert_eq!(f64::NAN.cmp_key(&f64::NAN), Ordering::Equal);
        // total_cmp puts -0.0 before +0.0 — a genuine total order.
        assert_eq!((-0.0f64).cmp_key(&0.0), Ordering::Less);
    }

    #[test]
    fn tuple_key_lexicographic() {
        assert_eq!((1u64, 5u64).cmp_key(&(1, 7)), Ordering::Less);
        assert_eq!((2u64, 0u64).cmp_key(&(1, 7)), Ordering::Greater);
        assert_eq!((1u64, 7u64).cmp_key(&(1, 7)), Ordering::Equal);
    }

    #[test]
    fn builtin_ops() {
        let s = ops::sum::<u64>();
        assert_eq!(s(&3, &4), 7);
        let mn = ops::min::<f64>();
        assert_eq!(mn(&3.0, &-1.0), -1.0);
        let mx = ops::max::<i32>();
        assert_eq!(mx(&3, &-1), 3);
        let b = ops::band::<u64>();
        assert_eq!(b(&0b1100, &0b1010), 0b1000);
        let ba = ops::band_array::<u64, 2>();
        assert_eq!(ba(&[0b11, 0b01], &[0b10, 0b11]), [0b10, 0b01]);
    }
}
