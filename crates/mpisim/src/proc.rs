//! Per-rank state and the router connecting ranks.
//!
//! Each simulated MPI process is an OS thread owning a [`ProcState`]: its
//! global rank, its virtual clock, its RNG, and its context-ID pool. The
//! [`Router`] holds one mailbox per rank plus the cost model; sends deposit
//! messages directly into the destination mailbox (buffered semantics).

use std::sync::atomic::{AtomicU32, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::datum::Datum;
use crate::error::{MpiError, Result};
use crate::faults::{FaultState, RankBlame, RoundBlame, BLAME_CAP};
use crate::mailbox::Mailbox;
use crate::model::{CostModel, CostScale, VendorProfile};
use crate::msg::{ContextId, MatchPattern, Message, MsgInfo, SrcFilter, Tag};
use crate::obs::{MetricsSnapshot, OpClass, Trace, TraceEvent};
use crate::time::Time;

/// Why a rank is parked at a blocking point — the explicit wait state a
/// cooperative task carries while suspended. Surfaced in deadlock
/// diagnostics ("rank 5 blocked in recv(Exact(3), tag=7, ctx#2)").
#[derive(Clone, Debug)]
pub enum WaitReason {
    /// Blocked in a receive for this pattern.
    Recv(MatchPattern),
    /// Blocked in a probe for this pattern.
    Probe(MatchPattern),
}

impl std::fmt::Display for WaitReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (verb, pat) = match self {
            WaitReason::Recv(p) => ("recv", p),
            WaitReason::Probe(p) => ("probe", p),
        };
        write!(f, "{verb}({:?}, tag={}, {})", pat.src, pat.tag, pat.ctx)
    }
}

/// Cumulative message traffic of a simulation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Traffic {
    /// Total messages deposited into mailboxes.
    pub messages: u64,
    /// Total payload bytes deposited.
    pub bytes: u64,
}

/// Per-sender traffic counters, padded to a cache line so that parallel
/// scheduler workers incrementing different ranks' counters never false-share
/// — the old pair of global `AtomicU64`s was a guaranteed all-workers
/// contention point (two `fetch_add`s on shared lines per send).
#[repr(align(64))]
#[derive(Default)]
struct TrafficCell {
    messages: AtomicU64,
    bytes: AtomicU64,
}

/// One rank's virtual clock, padded to a cache line for the same reason as
/// [`TrafficCell`]. Clocks live on the router (rather than privately on
/// each [`ProcState`]) so that blame diagnostics can report any rank's
/// last virtual-time activity when an operation stalls.
#[repr(align(64))]
#[derive(Default)]
struct ClockCell(crate::time::VirtualClock);

/// Shared fabric connecting all ranks: one mailbox per rank plus the
/// cost model. Sends deposit messages directly into the destination mailbox
/// (thread backend) or stage them with the cooperative scheduler for
/// commit at the next epoch boundary (see [`crate::sched`]).
pub struct Router {
    /// Destination mailboxes, indexed by global rank. Each mailbox carries
    /// its own lock: two ranks' deliveries never contend.
    pub mailboxes: Vec<Mailbox>,
    /// The α–β cost model all messages are priced under.
    pub cost: CostModel,
    /// Vendor pathology profile (jitter, collective scaling).
    pub vendor: VendorProfile,
    /// Wall-clock deadlock-detector timeout for blocking receives/probes.
    pub recv_timeout: Duration,
    /// Resolved fault-injection state (default: no faults). Pure data —
    /// every fault decision is a hash of the perturbation seed, never a
    /// function of scheduling.
    pub faults: FaultState,
    /// Traffic accounting, sharded by sender rank (summed on read).
    traffic: Vec<TrafficCell>,
    /// Per-rank virtual clocks, indexed by global rank.
    clocks: Vec<ClockCell>,
    /// Per-sender, per-[`OpClass`] volume counters (always on; summed on
    /// read into the deterministic [`MetricsSnapshot`]).
    class_cells: Vec<crate::obs::ClassCell>,
    /// Per-rank event-trace buffers, allocated only when the run traces.
    trace: Option<Vec<crate::obs::TraceCell>>,
    /// Router construction instant; time base of the stall-probe cache.
    birth: Instant,
    /// Age (ms since `birth`) of the cached [`Router::progress_stamp`]
    /// value. Zero means "never computed".
    stall_probe_at: AtomicU64,
    /// Cached [`Router::progress_stamp`] value.
    stall_probe_val: AtomicU64,
}

impl Router {
    /// Build the fabric for `p` ranks under the given cost model, vendor
    /// profile, and fault state.
    pub fn new(
        p: usize,
        cost: CostModel,
        vendor: VendorProfile,
        recv_timeout: Duration,
        faults: FaultState,
    ) -> Router {
        Router {
            mailboxes: (0..p).map(|_| Mailbox::new()).collect(),
            cost,
            vendor,
            recv_timeout,
            faults,
            traffic: (0..p).map(|_| TrafficCell::default()).collect(),
            clocks: (0..p).map(|_| ClockCell::default()).collect(),
            class_cells: (0..p).map(|_| Default::default()).collect(),
            trace: None,
            birth: Instant::now(),
            stall_probe_at: AtomicU64::new(0),
            stall_probe_val: AtomicU64::new(0),
        }
    }

    /// Allocate the per-rank trace buffers. Must be called before any rank
    /// runs (the universe does this when [`crate::SimConfig::trace`] is
    /// set), so every rank observes the same tracing mode for its whole
    /// lifetime.
    pub fn enable_trace(&mut self) {
        let p = self.mailboxes.len();
        self.trace = Some((0..p).map(|_| Default::default()).collect());
    }

    /// Whether the deterministic event trace is being recorded.
    pub fn trace_enabled(&self) -> bool {
        self.trace.is_some()
    }

    /// Merge the per-rank trace buffers into the global `(t, rank, seq)`
    /// order (`None` when tracing is off).
    pub fn collect_trace(&self) -> Option<Trace> {
        self.trace.as_deref().map(Trace::collect)
    }

    /// The deterministic model-metric snapshot of the fabric: traffic
    /// totals, per-class volumes, and mailbox scan work. The scheduler's
    /// counters (epochs, wake-ups, switches) are merged in by the
    /// universe, which owns the scheduler.
    pub fn metrics_base(&self) -> MetricsSnapshot {
        let t = self.traffic();
        let mut snap = MetricsSnapshot {
            messages: t.messages,
            bytes: t.bytes,
            ..Default::default()
        };
        for class in OpClass::ALL {
            let i = class as usize;
            for cell in &self.class_cells {
                let m = cell.msgs_of(class);
                snap.class_msgs[i] += m;
                snap.class_bytes[i] += cell.bytes_of(class);
                snap.class_max_rank_msgs[i] = snap.class_max_rank_msgs[i].max(m);
            }
        }
        snap.mailbox_scans = self.mailboxes.iter().map(|m| m.scans()).sum();
        snap
    }

    /// Rank `r`'s current virtual clock — its last virtual-time activity,
    /// as seen by blame diagnostics.
    pub fn clock_of(&self, r: usize) -> Time {
        self.clocks[r].0.now()
    }

    /// Snapshot of global traffic so far (sums the per-sender shards).
    pub fn traffic(&self) -> Traffic {
        let mut t = Traffic::default();
        for cell in &self.traffic {
            t.messages += cell.messages.load(Ordering::Relaxed);
            t.bytes += cell.bytes.load(Ordering::Relaxed);
        }
        t
    }

    fn count_send(&self, src: usize, bytes: usize) {
        let cell = &self.traffic[src];
        cell.messages.fetch_add(1, Ordering::Relaxed);
        cell.bytes.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Number of ranks this router connects.
    pub fn nprocs(&self) -> usize {
        self.mailboxes.len()
    }

    /// A monotone global progress stamp: the sum of every rank's sent
    /// message count and virtual-clock reading. It advances whenever any
    /// rank sends or is charged virtual time and freezes exactly when the
    /// universe is stuck — a failed probe leaves the clock untouched (see
    /// `try_recv_miss_leaves_clock`), so a pure polling livelock cannot
    /// keep it moving.
    ///
    /// The O(p) shard sum is cached and reused while younger than
    /// `max_age`, so p waiters whose stall deadlines expire in the same
    /// window cost O(p) total, not O(p²). Stall detection only — the
    /// cached value may lag real progress by up to `max_age`, which is
    /// immaterial against timeouts that are orders of magnitude larger.
    pub fn progress_stamp(&self, max_age: Duration) -> u64 {
        let now_ms = self.birth.elapsed().as_millis() as u64;
        let at = self.stall_probe_at.load(Ordering::Relaxed);
        if at != 0 && now_ms.saturating_sub(at) < max_age.as_millis() as u64 {
            return self.stall_probe_val.load(Ordering::Relaxed);
        }
        let mut sum = 0u64;
        for cell in &self.traffic {
            sum = sum.wrapping_add(cell.messages.load(Ordering::Relaxed));
        }
        for cell in &self.clocks {
            sum = sum.wrapping_add(cell.0.now().as_nanos());
        }
        self.stall_probe_val.store(sum, Ordering::Relaxed);
        self.stall_probe_at.store(now_ms.max(1), Ordering::Relaxed);
        sum
    }
}

/// Wall-clock stall detector for polling wait loops (nonblocking waits,
/// the sorter's wave loops). A fixed deadline cannot tell a deadlock from
/// a universe that is merely huge: one JQuick wave at p = 2^18 on a single
/// core legitimately takes minutes of wall-clock while every rank stays
/// live. The detector therefore re-arms whenever
/// [`Router::progress_stamp`] advances — it fires only after a full
/// timeout window in which no rank anywhere sent a message or advanced
/// its clock, which is what a genuine stall looks like from a polling
/// loop. Wall clocks never influence a run's output: the stamp is read
/// solely to decide whether to fail.
pub struct StallDeadline {
    router: Option<Arc<Router>>,
    timeout: Duration,
    deadline: Instant,
    stamp: u64,
}

impl StallDeadline {
    /// Arm with `timeout`. Without a router (detached nonblocking
    /// machines) the detector degrades to a fixed deadline.
    pub fn new(router: Option<&Arc<Router>>, timeout: Duration) -> StallDeadline {
        let max_age = Self::probe_age(timeout);
        StallDeadline {
            router: router.cloned(),
            timeout,
            deadline: Instant::now() + timeout,
            stamp: router.map_or(0, |r| r.progress_stamp(max_age)),
        }
    }

    /// True once the deadline has passed with no global progress since the
    /// last (re-)arming. The hot path is one `Instant` comparison; the
    /// stamp is consulted only on expiry.
    pub fn stalled(&mut self) -> bool {
        if Instant::now() <= self.deadline {
            return false;
        }
        if let Some(r) = &self.router {
            let stamp = r.progress_stamp(Self::probe_age(self.timeout));
            if stamp != self.stamp {
                self.stamp = stamp;
                self.deadline = Instant::now() + self.timeout;
                return false;
            }
        }
        true
    }

    /// Stamp-cache tolerance: a fraction of the timeout (so short test
    /// timeouts stay responsive), capped at one second.
    fn probe_age(timeout: Duration) -> Duration {
        (timeout / 8).min(Duration::from_secs(1))
    }
}

/// The simulator state owned by one rank's thread: identity, virtual
/// clock, RNG stream, and context-ID pool.
pub struct ProcState {
    /// This process's rank in `MPI_COMM_WORLD`.
    pub global_rank: usize,
    /// The shared fabric (also owns this rank's clock — see `ClockCell`).
    pub router: Arc<Router>,
    /// Deterministic per-rank random stream (pivot selection, jitter).
    pub rng: Mutex<StdRng>,
    /// MPICH-style context-ID allocation mask.
    pub ctx_pool: Mutex<crate::context::CtxPool>,
    /// Counter `b` of the §VI wide context-ID scheme.
    pub icomm_counter: AtomicU32,
    /// Program-order counter of messages this rank has sent — the jitter
    /// coordinate: worker-count invariant by construction.
    send_seq: AtomicU64,
    /// The [`OpClass`] currently attributed to this rank's sends, managed
    /// by the RAII guards in [`crate::obs`]. Lives here — not in a
    /// thread-local — because fibers yield mid-collective and resume on a
    /// different worker thread.
    op_class: AtomicU8,
}

impl ProcState {
    /// Create the state for `global_rank`, with an RNG stream derived from
    /// `seed` and the rank.
    pub fn new(global_rank: usize, router: Arc<Router>, seed: u64) -> Arc<ProcState> {
        Arc::new(ProcState {
            global_rank,
            router,
            rng: Mutex::new(StdRng::seed_from_u64(
                seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(global_rank as u64),
            )),
            ctx_pool: Mutex::new(crate::context::CtxPool::new()),
            icomm_counter: AtomicU32::new(0),
            send_seq: AtomicU64::new(0),
            op_class: AtomicU8::new(OpClass::P2p as u8),
        })
    }

    // ---- observability -----------------------------------------------------

    /// Swap the current send-attribution class, returning the previous raw
    /// value (the obs guards restore it on drop).
    pub(crate) fn set_op_class_raw(&self, v: u8) -> u8 {
        self.op_class.swap(v, Ordering::Relaxed)
    }

    fn cur_class(&self) -> OpClass {
        OpClass::from_u8(self.op_class.load(Ordering::Relaxed))
    }

    /// Append an event to this rank's trace buffer, stamped with the
    /// rank's current virtual clock. No-op when tracing is off — the
    /// closure (and any allocation inside it) only runs when tracing, so
    /// the untraced hot path pays one branch on an `Option`.
    pub(crate) fn trace_push(&self, ev: impl FnOnce() -> TraceEvent) {
        if let Some(cells) = &self.router.trace {
            cells[self.global_rank].push(self.now(), ev());
        }
    }

    // ---- virtual clock ----------------------------------------------------

    fn clock(&self) -> &crate::time::VirtualClock {
        &self.router.clocks[self.global_rank].0
    }

    /// This rank's current virtual clock.
    pub fn now(&self) -> Time {
        self.clock().now()
    }

    /// Advance the clock by `dt`. A rank slowed by the fault plan pays its
    /// multiplicative straggler factor on every local charge; the factor
    /// is exactly 1.0 for unaffected ranks, in which case no scaling (and
    /// no rounding) happens at all.
    pub fn advance(&self, dt: Time) {
        let f = self.router.faults.factor(self.global_rank);
        if f == 1.0 {
            self.clock().advance(dt);
        } else {
            self.clock().advance(dt.scale(f));
        }
    }

    /// `clock = max(clock, t)` — applied when a receive completes.
    pub fn advance_to(&self, t: Time) {
        self.clock().advance_to(t);
    }

    /// Overwrite the clock (used by barrier-style resynchronisation).
    pub fn set_clock(&self, t: Time) {
        self.clock().set(t);
    }

    /// Charge local computation over `elems` elements.
    pub fn charge_compute(&self, elems: usize) {
        self.advance(self.router.cost.compute_cost(elems));
    }

    /// Charge an explicit span of virtual time.
    pub fn charge(&self, dt: Time) {
        self.advance(dt);
    }

    // ---- point-to-point on global ranks ------------------------------------

    /// Price one outgoing message of `bytes` payload bytes: charge the send
    /// overhead, apply vendor jitter, record traffic, and return the
    /// `(send_time, arrival)` pair stamped onto the message.
    fn price_send(&self, bytes: usize, scale: CostScale) -> (Time, Time) {
        let t0 = self.now();
        self.advance(self.router.cost.send_overhead);
        let mut transfer = self.router.cost.transfer_time_scaled(bytes, scale);
        // Vendor jitter: collective-internal messages use `jitter_max`;
        // plain point-to-point (including everything RBC sends) uses the
        // weaker `p2p_jitter_max` — vendor p2p fluctuations hit RBC too.
        let jitter_cap = if scale == CostScale::NEUTRAL {
            self.router.vendor.p2p_jitter_max
        } else {
            self.router.vendor.jitter_max
        };
        if jitter_cap > 1.0 && bytes > self.router.vendor.jitter_threshold {
            let f: f64 = self.rng.lock().gen_range(1.0..jitter_cap);
            transfer = transfer.scale(f);
        }
        // Fault injection: a straggler's transfers take `factor ×` as long,
        // and the fault plan's arrival jitter inflates the arrival by a
        // pure hash of (perturb_seed, sender, send counter). Both inflate
        // the arrival *before* the message is staged, so the epoch commit's
        // running-max matchable key orders jittered messages exactly like
        // clean ones (DESIGN.md §8) — and both are no-ops (bit for bit)
        // when the fault plan is empty or zero-magnitude.
        let faults = &self.router.faults;
        let f = faults.factor(self.global_rank);
        if f != 1.0 {
            transfer = transfer.scale(f);
        }
        let seq = self.send_seq.fetch_add(1, Ordering::Relaxed);
        let jit = faults.jitter_ns(self.global_rank, seq);
        if jit > 0 {
            transfer += Time::from_nanos(jit);
            self.trace_push(|| TraceEvent::FaultJitter { ns: jit });
        }
        self.router.count_send(self.global_rank, bytes);
        self.router.class_cells[self.global_rank].add(self.cur_class(), bytes);
        (t0, t0 + transfer)
    }

    // ---- fault injection ---------------------------------------------------

    /// Whether this rank has crash-stopped: its own clock has reached its
    /// scheduled crash time. A pure per-rank predicate — monotone in the
    /// rank's own virtual time, independent of scheduling.
    pub fn crashed(&self) -> bool {
        matches!(self.router.faults.crash_time(self.global_rank), Some(at) if self.now() >= at)
    }

    /// Timeout error for an operation attempted by this rank *after* its
    /// own crash point.
    fn crashed_err(&self, verb: &str, pat: &MatchPattern) -> MpiError {
        let at = self
            .router
            .faults
            .crash_time(self.global_rank)
            .expect("crashed_err on a rank with no crash scheduled");
        MpiError::Timeout {
            rank: self.global_rank,
            waited_for: format!(
                "{verb}({:?}, tag={}, {}) [rank crashed at {at}]",
                pat.src, pat.tag, pat.ctx
            ),
            virtual_now: self.now(),
            blame: self.blame_for(Some(pat)),
        }
    }

    /// Timeout error for a polling (nonblocking) operation whose task the
    /// cooperative scheduler poisoned: no further progress is possible.
    fn poisoned_err(&self, verb: &str, pat: &MatchPattern) -> MpiError {
        MpiError::Timeout {
            rank: self.global_rank,
            waited_for: format!(
                "{verb}({:?}, tag={}, {}) [cooperative stall: no further progress possible]",
                pat.src, pat.tag, pat.ctx
            ),
            virtual_now: self.now(),
            blame: self.blame_for(Some(pat)),
        }
    }

    /// Build the [`RoundBlame`] for an operation of this rank stalled on
    /// `pat` (`None` when no receive pattern is known, e.g. a nonblocking
    /// collective). Triggered crashes take global priority: whatever the
    /// pattern nominally waits on, a rank that has crash-stopped is the
    /// root cause, so the blame names exactly the triggered-crashed ranks.
    pub fn blame_for(&self, pat: Option<&MatchPattern>) -> RoundBlame {
        let faults = &self.router.faults;
        let p = self.router.nprocs();
        let me = self.global_rank;
        let crashed: Vec<usize> = faults
            .crashes()
            .iter()
            .filter(|&&(r, at)| self.router.clock_of(r) >= at)
            .map(|&(r, _)| r)
            .collect();
        let (listed, omitted) = if !crashed.is_empty() {
            let omitted = crashed.len().saturating_sub(BLAME_CAP);
            (
                crashed.into_iter().take(BLAME_CAP).collect::<Vec<_>>(),
                omitted,
            )
        } else {
            match pat.map(|p| &p.src) {
                Some(SrcFilter::Exact(g)) => (vec![*g], 0),
                Some(SrcFilter::Filter(f)) => {
                    let all: Vec<usize> = (0..p).filter(|&r| r != me && f(r)).collect();
                    let omitted = all.len().saturating_sub(BLAME_CAP);
                    (all.into_iter().take(BLAME_CAP).collect(), omitted)
                }
                Some(SrcFilter::Any) | None => {
                    let listed: Vec<usize> = (0..p).filter(|&r| r != me).take(BLAME_CAP).collect();
                    let omitted = p.saturating_sub(1).saturating_sub(listed.len());
                    (listed, omitted)
                }
            }
        };
        let blame = RoundBlame {
            waiting_on: listed
                .into_iter()
                .map(|r| {
                    let clock = self.router.clock_of(r);
                    RankBlame {
                        rank: r,
                        last_activity: clock,
                        health: faults.health_of(r, clock),
                    }
                })
                .collect(),
            omitted,
        };
        self.trace_push(|| TraceEvent::Blame {
            text: blame.to_string(),
        });
        blame
    }

    /// Blame with no pattern context (used by nonblocking-collective and
    /// sorter wave timeouts).
    pub fn stall_blame(&self) -> RoundBlame {
        self.blame_for(None)
    }

    /// Fill in the blame of a [`MpiError::Timeout`] produced below the
    /// level that knows the fault state (mailbox waits, scheduler
    /// poisoning). Errors that already carry blame pass through untouched.
    fn enrich_timeout(&self, e: MpiError, pat: Option<&MatchPattern>) -> MpiError {
        match e {
            MpiError::Timeout {
                rank,
                waited_for,
                virtual_now,
                blame,
            } if blame.is_empty() => MpiError::Timeout {
                rank,
                waited_for,
                virtual_now,
                blame: self.blame_for(pat),
            },
            other => other,
        }
    }

    /// Hand a finished message to the fabric. On a scheduler fiber the
    /// message is staged with the current task and committed — in global
    /// virtual-time order — at the next epoch boundary, which is what makes
    /// multi-worker cooperative runs deterministic; on a plain thread it is
    /// deposited into the destination mailbox immediately.
    fn dispatch(&self, dest_global: usize, msg: Message) {
        if let Some(msg) = crate::sched::try_stage_send(dest_global, msg) {
            self.router.mailboxes[dest_global].push(msg);
        }
    }

    /// Deposit `data` into `dest_global`'s mailbox. Buffered semantics:
    /// never blocks. `scale` models vendor-internal collective traffic;
    /// plain point-to-point uses `CostScale::NEUTRAL`.
    pub fn send_global<T: Datum>(
        &self,
        dest_global: usize,
        tag: Tag,
        ctx: ContextId,
        data: Vec<T>,
        scale: CostScale,
    ) {
        // Crash-stop: a crashed rank's sends silently stop matching — no
        // pricing, no clock motion, no traffic, no staging. Peers observe
        // the silence as a timeout carrying a RoundBlame, never as a hang.
        if self.crashed() {
            self.trace_push(|| TraceEvent::FaultDrop { dest: dest_global });
            return;
        }
        let (t0, arrival) = self.price_send(data.len() * T::width(), scale);
        let msg = Message::new(self.global_rank, tag, ctx, data, t0, arrival);
        self.trace_push(|| TraceEvent::Send {
            dest: dest_global,
            bytes: msg.bytes,
            class: self.cur_class(),
            arrival,
        });
        self.dispatch(dest_global, msg);
    }

    /// Like [`ProcState::send_global`], but shipping a shared buffer: the
    /// `Arc` is cloned into the message in O(1) instead of copying the
    /// payload, so a fan-out of the same buffer to many destinations costs
    /// O(destinations) at the sender. Virtual-time pricing is identical to
    /// an owned send of the same bytes.
    pub fn send_global_shared<T: Datum>(
        &self,
        dest_global: usize,
        tag: Tag,
        ctx: ContextId,
        data: Arc<Vec<T>>,
        scale: CostScale,
    ) {
        if self.crashed() {
            self.trace_push(|| TraceEvent::FaultDrop { dest: dest_global });
            return;
        }
        let (t0, arrival) = self.price_send(data.len() * T::width(), scale);
        let msg = Message::new_shared(self.global_rank, tag, ctx, data, t0, arrival);
        self.trace_push(|| TraceEvent::Send {
            dest: dest_global,
            bytes: msg.bytes,
            class: self.cur_class(),
            arrival,
        });
        self.dispatch(dest_global, msg);
    }

    /// Blocking receive matching `pat`; applies the virtual-time rule
    /// `clock = max(clock, arrival) + recv_overhead`. On a scheduler fiber
    /// the wait yields to the cooperative scheduler; on a rank thread it
    /// parks on the mailbox condvar.
    pub fn recv_match(&self, pat: &MatchPattern) -> Result<Message> {
        if self.crashed() {
            return Err(self.crashed_err("recv", pat));
        }
        assert!(
            !crate::sched::on_poll_body(),
            "synchronous recv inside a poll-mode rank body: under Backend::Poll \
             use recv_match_async (the *_async API) so the body can suspend"
        );
        let mb = &self.router.mailboxes[self.global_rank];
        let m = if crate::sched::on_fiber() {
            crate::sched::claim_coop(mb, pat, self.global_rank, self.now())
        } else {
            mb.claim_blocking(pat, self.router.recv_timeout, self.global_rank, self.now())
        }
        .map_err(|e| self.enrich_timeout(e, Some(pat)))?;
        Ok(self.account_delivery(m))
    }

    /// [`ProcState::recv_match`] for maybe-async workloads: on a poll-mode
    /// body the wait suspends the future (same announce/subscribe protocol
    /// as the fiber park); on the other backends this resolves in a single
    /// poll via the synchronous path. Clock and trace accounting are
    /// identical on all three.
    pub async fn recv_match_async(&self, pat: &MatchPattern) -> Result<Message> {
        if !crate::sched::on_poll_body() {
            return self.recv_match(pat);
        }
        if self.crashed() {
            return Err(self.crashed_err("recv", pat));
        }
        let mb = &self.router.mailboxes[self.global_rank];
        let m = crate::sched::poll::claim_poll(mb, pat, self.global_rank, self.now())
            .await
            .map_err(|e| self.enrich_timeout(e, Some(pat)))?;
        Ok(self.account_delivery(m))
    }

    /// The post-claim half of every receive: virtual-time rule plus the
    /// `Deliver` trace event, shared verbatim by the sync and async paths
    /// so the backends cannot drift.
    fn account_delivery(&self, m: Message) -> Message {
        self.advance_to(m.arrival);
        self.advance(self.router.cost.recv_overhead);
        self.trace_push(|| TraceEvent::Deliver {
            src: m.src_global,
            bytes: m.bytes,
        });
        m
    }

    /// Nonblocking receive attempt. On a hit, applies the same clock rule
    /// as a blocking receive. Errors when this rank has crash-stopped, or
    /// when the cooperative scheduler has poisoned the task (a stalled
    /// polling loop must fail loudly, not spin forever).
    pub fn try_recv_match(&self, pat: &MatchPattern) -> Result<Option<Message>> {
        if self.crashed() {
            return Err(self.crashed_err("try_recv", pat));
        }
        match self.router.mailboxes[self.global_rank].try_claim(pat) {
            Some(m) => {
                self.advance_to(m.arrival);
                self.advance(self.router.cost.recv_overhead);
                self.trace_push(|| TraceEvent::Deliver {
                    src: m.src_global,
                    bytes: m.bytes,
                });
                Ok(Some(m))
            }
            None if crate::sched::current_poisoned() => Err(self.poisoned_err("try_recv", pat)),
            None => Ok(None),
        }
    }

    /// Blocking probe: waits until a matching message is available, without
    /// removing it. Does not advance the clock past the arrival (the
    /// subsequent receive does).
    pub fn probe_match(&self, pat: &MatchPattern) -> Result<MsgInfo> {
        if self.crashed() {
            return Err(self.crashed_err("probe", pat));
        }
        assert!(
            !crate::sched::on_poll_body(),
            "synchronous probe inside a poll-mode rank body: under Backend::Poll \
             use probe_match_async (the *_async API) so the body can suspend"
        );
        let mb = &self.router.mailboxes[self.global_rank];
        if crate::sched::on_fiber() {
            crate::sched::probe_coop(mb, pat, self.global_rank, self.now())
        } else {
            mb.probe_blocking(pat, self.router.recv_timeout, self.global_rank, self.now())
        }
        .map_err(|e| self.enrich_timeout(e, Some(pat)))
    }

    /// [`ProcState::probe_match`] for maybe-async workloads; see
    /// [`ProcState::recv_match_async`] for the dispatch contract.
    pub async fn probe_match_async(&self, pat: &MatchPattern) -> Result<MsgInfo> {
        if !crate::sched::on_poll_body() {
            return self.probe_match(pat);
        }
        if self.crashed() {
            return Err(self.crashed_err("probe", pat));
        }
        let mb = &self.router.mailboxes[self.global_rank];
        crate::sched::poll::probe_poll(mb, pat, self.global_rank, self.now())
            .await
            .map_err(|e| self.enrich_timeout(e, Some(pat)))
    }

    /// Nonblocking probe. Fails on self-crash and task poisoning exactly
    /// like [`ProcState::try_recv_match`].
    pub fn iprobe_match(&self, pat: &MatchPattern) -> Result<Option<MsgInfo>> {
        if self.crashed() {
            return Err(self.crashed_err("iprobe", pat));
        }
        match self.router.mailboxes[self.global_rank].probe(pat) {
            Some(i) => Ok(Some(i)),
            None if crate::sched::current_poisoned() => Err(self.poisoned_err("iprobe", pat)),
            None => Ok(None),
        }
    }

    /// Uniform random value from this rank's deterministic stream.
    pub fn rand_index(&self, bound: usize) -> usize {
        if bound <= 1 {
            return 0;
        }
        self.rng.lock().gen_range(0..bound)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::SrcFilter;

    fn setup(p: usize) -> Vec<Arc<ProcState>> {
        setup_faulted(p, FaultState::default())
    }

    fn setup_faulted(p: usize, faults: FaultState) -> Vec<Arc<ProcState>> {
        let router = Arc::new(Router::new(
            p,
            CostModel::supermuc_like(),
            VendorProfile::neutral(),
            Duration::from_secs(5),
            faults,
        ));
        (0..p)
            .map(|r| ProcState::new(r, Arc::clone(&router), 42))
            .collect()
    }

    #[test]
    fn stall_deadline_rearms_on_progress_and_fires_without() {
        let procs = setup(2);
        let router = &procs[0].router;
        // Zero timeout => probe age zero => every check recomputes the
        // stamp, so the test never races the coarse cache.
        let mut stall = StallDeadline::new(Some(router), Duration::ZERO);
        std::thread::sleep(Duration::from_millis(2));
        // Progress since arming (a clock charge) re-arms the deadline.
        procs[1].advance(Time::from_micros(3));
        assert!(!stall.stalled(), "clock progress must re-arm");
        std::thread::sleep(Duration::from_millis(2));
        // A send is progress too.
        procs[0].send_global::<u64>(1, 7, ContextId::WORLD, vec![1], CostScale::NEUTRAL);
        assert!(!stall.stalled(), "send progress must re-arm");
        // No progress at all: the detector fires.
        std::thread::sleep(Duration::from_millis(2));
        assert!(stall.stalled(), "no progress => stalled");
        // Routerless detectors degrade to a fixed deadline.
        let mut fixed = StallDeadline::new(None, Duration::ZERO);
        std::thread::sleep(Duration::from_millis(2));
        assert!(fixed.stalled());
    }

    #[test]
    fn send_recv_updates_clocks() {
        let procs = setup(2);
        let cost = procs[0].router.cost.clone();
        procs[0].send_global::<u64>(1, 7, ContextId::WORLD, vec![1, 2, 3], CostScale::NEUTRAL);
        // Sender paid only the send overhead.
        assert_eq!(procs[0].now(), cost.send_overhead);
        let pat = MatchPattern {
            ctx: ContextId::WORLD,
            src: SrcFilter::Exact(0),
            tag: 7,
        };
        let m = procs[1].recv_match(&pat).unwrap();
        let (v, info) = m.take::<u64>().unwrap();
        assert_eq!(v, vec![1, 2, 3]);
        // Receiver's clock jumped to arrival (alpha + 24 bytes * beta) + recv overhead.
        let expected = cost.transfer_time(24) + cost.recv_overhead;
        assert_eq!(procs[1].now(), expected);
        assert_eq!(info.arrival, cost.transfer_time(24));
    }

    #[test]
    fn recv_does_not_rewind_clock() {
        let procs = setup(2);
        procs[1].advance(Time::from_millis(10));
        procs[0].send_global::<u64>(1, 7, ContextId::WORLD, vec![1], CostScale::NEUTRAL);
        let pat = MatchPattern {
            ctx: ContextId::WORLD,
            src: SrcFilter::Exact(0),
            tag: 7,
        };
        procs[1].recv_match(&pat).unwrap();
        // Receiver was already past the arrival time; max() keeps it there.
        assert!(procs[1].now() >= Time::from_millis(10));
    }

    #[test]
    fn try_recv_miss_leaves_clock() {
        let procs = setup(2);
        let pat = MatchPattern {
            ctx: ContextId::WORLD,
            src: SrcFilter::Any,
            tag: 0,
        };
        assert!(procs[0].try_recv_match(&pat).unwrap().is_none());
        assert_eq!(procs[0].now(), Time::ZERO);
    }

    #[test]
    fn deterministic_rng_per_rank() {
        let a = setup(2);
        let b = setup(2);
        assert_eq!(a[0].rand_index(1000), b[0].rand_index(1000));
        assert_eq!(a[1].rand_index(1000), b[1].rand_index(1000));
    }

    #[test]
    fn charge_compute_uses_model() {
        let procs = setup(1);
        procs[0].charge_compute(5000);
        assert_eq!(procs[0].now(), Time::from_micros(5));
    }

    #[test]
    fn slowed_rank_pays_its_factor() {
        use crate::faults::FaultPlan;
        // frac = 1, max_factor such that every rank straggles; compare a
        // slowed rank's charge against a clean twin.
        let plan = FaultPlan::default()
            .with_slowdown(1.0, 4.0)
            .with_perturb_seed(11);
        let slowed = setup_faulted(2, FaultState::resolve(&plan, 2));
        let clean = setup(2);
        let f = slowed[0].router.faults.factor(0);
        assert!(f > 1.0, "rank 0 must straggle under frac=1");
        slowed[0].charge(Time::from_micros(100));
        clean[0].charge(Time::from_micros(100));
        assert_eq!(slowed[0].now(), Time::from_micros(100).scale(f));
        assert_eq!(clean[0].now(), Time::from_micros(100));
    }

    #[test]
    fn crashed_rank_sends_nothing_and_cannot_receive() {
        use crate::faults::{FaultPlan, RankHealth};
        let plan = FaultPlan::default().with_crash(0, Time::from_micros(10));
        let procs = setup_faulted(2, FaultState::resolve(&plan, 2));
        let pat = MatchPattern {
            ctx: ContextId::WORLD,
            src: SrcFilter::Exact(0),
            tag: 7,
        };
        // Before the crash time the rank behaves normally.
        assert!(!procs[0].crashed());
        procs[0].send_global::<u64>(1, 7, ContextId::WORLD, vec![1], CostScale::NEUTRAL);
        procs[1].recv_match(&pat).unwrap();
        // Cross the crash point: sends become no-ops (no clock, no traffic),
        // receives fail with a self-blaming timeout.
        procs[0].advance_to(Time::from_micros(10));
        assert!(procs[0].crashed());
        let before = (procs[0].now(), procs[0].router.traffic());
        procs[0].send_global::<u64>(1, 7, ContextId::WORLD, vec![2], CostScale::NEUTRAL);
        assert_eq!((procs[0].now(), procs[0].router.traffic()), before);
        assert!(procs[1].try_recv_match(&pat).unwrap().is_none());
        let err = procs[0].recv_match(&pat).unwrap_err();
        match err {
            MpiError::Timeout { rank, blame, .. } => {
                assert_eq!(rank, 0);
                assert_eq!(blame.ranks(), vec![0]);
                assert_eq!(
                    blame.waiting_on[0].health,
                    RankHealth::Crashed {
                        at: Time::from_micros(10)
                    }
                );
            }
            other => panic!("expected Timeout, got {other:?}"),
        }
    }

    #[test]
    fn jitter_inflates_arrival_deterministically() {
        use crate::faults::FaultPlan;
        let plan = FaultPlan::default()
            .with_jitter(Time::from_micros(20))
            .with_perturb_seed(3);
        let run = || {
            let procs = setup_faulted(2, FaultState::resolve(&plan, 2));
            procs[0].send_global::<u64>(1, 7, ContextId::WORLD, vec![1, 2, 3], CostScale::NEUTRAL);
            let pat = MatchPattern {
                ctx: ContextId::WORLD,
                src: SrcFilter::Exact(0),
                tag: 7,
            };
            procs[1].recv_match(&pat).unwrap().arrival
        };
        let clean = {
            let procs = setup(2);
            procs[0].send_global::<u64>(1, 7, ContextId::WORLD, vec![1, 2, 3], CostScale::NEUTRAL);
            let pat = MatchPattern {
                ctx: ContextId::WORLD,
                src: SrcFilter::Exact(0),
                tag: 7,
            };
            procs[1].recv_match(&pat).unwrap().arrival
        };
        let a = run();
        assert_eq!(a, run(), "jitter must be a pure function of the plan");
        assert!(a >= clean && a <= clean + Time::from_micros(20));
    }

    #[test]
    fn blame_candidates_follow_the_pattern() {
        let procs = setup(12);
        procs[3].advance(Time::from_micros(9));
        let exact = procs[0].blame_for(Some(&MatchPattern {
            ctx: ContextId::WORLD,
            src: SrcFilter::Exact(3),
            tag: 1,
        }));
        assert_eq!(exact.ranks(), vec![3]);
        assert_eq!(exact.waiting_on[0].last_activity, Time::from_micros(9));
        let any = procs[0].blame_for(Some(&MatchPattern {
            ctx: ContextId::WORLD,
            src: SrcFilter::Any,
            tag: 1,
        }));
        assert_eq!(any.ranks(), vec![1, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(any.omitted, 3);
    }
}
