//! Per-rank state and the router connecting ranks.
//!
//! Each simulated MPI process is an OS thread owning a [`ProcState`]: its
//! global rank, its virtual clock, its RNG, and its context-ID pool. The
//! [`Router`] holds one mailbox per rank plus the cost model; sends deposit
//! messages directly into the destination mailbox (buffered semantics).

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::datum::Datum;
use crate::error::Result;
use crate::mailbox::Mailbox;
use crate::model::{CostModel, CostScale, VendorProfile};
use crate::msg::{ContextId, MatchPattern, Message, MsgInfo, Tag};
use crate::time::Time;

/// Why a rank is parked at a blocking point — the explicit wait state a
/// cooperative task carries while suspended. Surfaced in deadlock
/// diagnostics ("rank 5 blocked in recv(Exact(3), tag=7, ctx#2)").
#[derive(Clone, Debug)]
pub enum WaitReason {
    /// Blocked in a receive for this pattern.
    Recv(MatchPattern),
    /// Blocked in a probe for this pattern.
    Probe(MatchPattern),
}

impl std::fmt::Display for WaitReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (verb, pat) = match self {
            WaitReason::Recv(p) => ("recv", p),
            WaitReason::Probe(p) => ("probe", p),
        };
        write!(f, "{verb}({:?}, tag={}, {})", pat.src, pat.tag, pat.ctx)
    }
}

/// Cumulative message traffic of a simulation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Traffic {
    /// Total messages deposited into mailboxes.
    pub messages: u64,
    /// Total payload bytes deposited.
    pub bytes: u64,
}

/// Per-sender traffic counters, padded to a cache line so that parallel
/// scheduler workers incrementing different ranks' counters never false-share
/// — the old pair of global `AtomicU64`s was a guaranteed all-workers
/// contention point (two `fetch_add`s on shared lines per send).
#[repr(align(64))]
#[derive(Default)]
struct TrafficCell {
    messages: AtomicU64,
    bytes: AtomicU64,
}

/// Shared fabric connecting all ranks: one mailbox per rank plus the
/// cost model. Sends deposit messages directly into the destination mailbox
/// (thread backend) or stage them with the cooperative scheduler for
/// commit at the next epoch boundary (see [`crate::sched`]).
pub struct Router {
    /// Destination mailboxes, indexed by global rank. Each mailbox carries
    /// its own lock: two ranks' deliveries never contend.
    pub mailboxes: Vec<Mailbox>,
    /// The α–β cost model all messages are priced under.
    pub cost: CostModel,
    /// Vendor pathology profile (jitter, collective scaling).
    pub vendor: VendorProfile,
    /// Wall-clock deadlock-detector timeout for blocking receives/probes.
    pub recv_timeout: Duration,
    /// Traffic accounting, sharded by sender rank (summed on read).
    traffic: Vec<TrafficCell>,
}

impl Router {
    /// Build the fabric for `p` ranks under the given cost model and vendor
    /// profile.
    pub fn new(p: usize, cost: CostModel, vendor: VendorProfile, recv_timeout: Duration) -> Router {
        Router {
            mailboxes: (0..p).map(|_| Mailbox::new()).collect(),
            cost,
            vendor,
            recv_timeout,
            traffic: (0..p).map(|_| TrafficCell::default()).collect(),
        }
    }

    /// Snapshot of global traffic so far (sums the per-sender shards).
    pub fn traffic(&self) -> Traffic {
        let mut t = Traffic::default();
        for cell in &self.traffic {
            t.messages += cell.messages.load(Ordering::Relaxed);
            t.bytes += cell.bytes.load(Ordering::Relaxed);
        }
        t
    }

    fn count_send(&self, src: usize, bytes: usize) {
        let cell = &self.traffic[src];
        cell.messages.fetch_add(1, Ordering::Relaxed);
        cell.bytes.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Number of ranks this router connects.
    pub fn nprocs(&self) -> usize {
        self.mailboxes.len()
    }
}

/// The simulator state owned by one rank's thread: identity, virtual
/// clock, RNG stream, and context-ID pool.
pub struct ProcState {
    /// This process's rank in `MPI_COMM_WORLD`.
    pub global_rank: usize,
    clock: crate::time::VirtualClock,
    /// The shared fabric.
    pub router: Arc<Router>,
    /// Deterministic per-rank random stream (pivot selection, jitter).
    pub rng: Mutex<StdRng>,
    /// MPICH-style context-ID allocation mask.
    pub ctx_pool: Mutex<crate::context::CtxPool>,
    /// Counter `b` of the §VI wide context-ID scheme.
    pub icomm_counter: AtomicU32,
}

impl ProcState {
    /// Create the state for `global_rank`, with an RNG stream derived from
    /// `seed` and the rank.
    pub fn new(global_rank: usize, router: Arc<Router>, seed: u64) -> Arc<ProcState> {
        Arc::new(ProcState {
            global_rank,
            clock: crate::time::VirtualClock::new(),
            router,
            rng: Mutex::new(StdRng::seed_from_u64(
                seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(global_rank as u64),
            )),
            ctx_pool: Mutex::new(crate::context::CtxPool::new()),
            icomm_counter: AtomicU32::new(0),
        })
    }

    // ---- virtual clock ----------------------------------------------------

    /// This rank's current virtual clock.
    pub fn now(&self) -> Time {
        self.clock.now()
    }

    /// Advance the clock by `dt`.
    pub fn advance(&self, dt: Time) {
        self.clock.advance(dt);
    }

    /// `clock = max(clock, t)` — applied when a receive completes.
    pub fn advance_to(&self, t: Time) {
        self.clock.advance_to(t);
    }

    /// Overwrite the clock (used by barrier-style resynchronisation).
    pub fn set_clock(&self, t: Time) {
        self.clock.set(t);
    }

    /// Charge local computation over `elems` elements.
    pub fn charge_compute(&self, elems: usize) {
        self.advance(self.router.cost.compute_cost(elems));
    }

    /// Charge an explicit span of virtual time.
    pub fn charge(&self, dt: Time) {
        self.advance(dt);
    }

    // ---- point-to-point on global ranks ------------------------------------

    /// Price one outgoing message of `bytes` payload bytes: charge the send
    /// overhead, apply vendor jitter, record traffic, and return the
    /// `(send_time, arrival)` pair stamped onto the message.
    fn price_send(&self, bytes: usize, scale: CostScale) -> (Time, Time) {
        let t0 = self.now();
        self.advance(self.router.cost.send_overhead);
        let mut transfer = self.router.cost.transfer_time_scaled(bytes, scale);
        // Vendor jitter: collective-internal messages use `jitter_max`;
        // plain point-to-point (including everything RBC sends) uses the
        // weaker `p2p_jitter_max` — vendor p2p fluctuations hit RBC too.
        let jitter_cap = if scale == CostScale::NEUTRAL {
            self.router.vendor.p2p_jitter_max
        } else {
            self.router.vendor.jitter_max
        };
        if jitter_cap > 1.0 && bytes > self.router.vendor.jitter_threshold {
            let f: f64 = self.rng.lock().gen_range(1.0..jitter_cap);
            transfer = transfer.scale(f);
        }
        self.router.count_send(self.global_rank, bytes);
        (t0, t0 + transfer)
    }

    /// Hand a finished message to the fabric. On a scheduler fiber the
    /// message is staged with the current task and committed — in global
    /// virtual-time order — at the next epoch boundary, which is what makes
    /// multi-worker cooperative runs deterministic; on a plain thread it is
    /// deposited into the destination mailbox immediately.
    fn dispatch(&self, dest_global: usize, msg: Message) {
        if let Some(msg) = crate::sched::try_stage_send(dest_global, msg) {
            self.router.mailboxes[dest_global].push(msg);
        }
    }

    /// Deposit `data` into `dest_global`'s mailbox. Buffered semantics:
    /// never blocks. `scale` models vendor-internal collective traffic;
    /// plain point-to-point uses `CostScale::NEUTRAL`.
    pub fn send_global<T: Datum>(
        &self,
        dest_global: usize,
        tag: Tag,
        ctx: ContextId,
        data: Vec<T>,
        scale: CostScale,
    ) {
        let (t0, arrival) = self.price_send(data.len() * T::width(), scale);
        let msg = Message::new(self.global_rank, tag, ctx, data, t0, arrival);
        self.dispatch(dest_global, msg);
    }

    /// Like [`ProcState::send_global`], but shipping a shared buffer: the
    /// `Arc` is cloned into the message in O(1) instead of copying the
    /// payload, so a fan-out of the same buffer to many destinations costs
    /// O(destinations) at the sender. Virtual-time pricing is identical to
    /// an owned send of the same bytes.
    pub fn send_global_shared<T: Datum>(
        &self,
        dest_global: usize,
        tag: Tag,
        ctx: ContextId,
        data: Arc<Vec<T>>,
        scale: CostScale,
    ) {
        let (t0, arrival) = self.price_send(data.len() * T::width(), scale);
        let msg = Message::new_shared(self.global_rank, tag, ctx, data, t0, arrival);
        self.dispatch(dest_global, msg);
    }

    /// Blocking receive matching `pat`; applies the virtual-time rule
    /// `clock = max(clock, arrival) + recv_overhead`. On a scheduler fiber
    /// the wait yields to the cooperative scheduler; on a rank thread it
    /// parks on the mailbox condvar.
    pub fn recv_match(&self, pat: &MatchPattern) -> Result<Message> {
        let mb = &self.router.mailboxes[self.global_rank];
        let m = if crate::sched::on_fiber() {
            crate::sched::claim_coop(mb, pat, self.global_rank, self.now())?
        } else {
            mb.claim_blocking(pat, self.router.recv_timeout, self.global_rank, self.now())?
        };
        self.advance_to(m.arrival);
        self.advance(self.router.cost.recv_overhead);
        Ok(m)
    }

    /// Nonblocking receive attempt. On a hit, applies the same clock rule
    /// as a blocking receive.
    pub fn try_recv_match(&self, pat: &MatchPattern) -> Option<Message> {
        let m = self.router.mailboxes[self.global_rank].try_claim(pat)?;
        self.advance_to(m.arrival);
        self.advance(self.router.cost.recv_overhead);
        Some(m)
    }

    /// Blocking probe: waits until a matching message is available, without
    /// removing it. Does not advance the clock past the arrival (the
    /// subsequent receive does).
    pub fn probe_match(&self, pat: &MatchPattern) -> Result<MsgInfo> {
        let mb = &self.router.mailboxes[self.global_rank];
        if crate::sched::on_fiber() {
            crate::sched::probe_coop(mb, pat, self.global_rank, self.now())
        } else {
            mb.probe_blocking(pat, self.router.recv_timeout, self.global_rank, self.now())
        }
    }

    /// Nonblocking probe.
    pub fn iprobe_match(&self, pat: &MatchPattern) -> Option<MsgInfo> {
        self.router.mailboxes[self.global_rank].probe(pat)
    }

    /// Uniform random value from this rank's deterministic stream.
    pub fn rand_index(&self, bound: usize) -> usize {
        if bound <= 1 {
            return 0;
        }
        self.rng.lock().gen_range(0..bound)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::SrcFilter;

    fn setup(p: usize) -> Vec<Arc<ProcState>> {
        let router = Arc::new(Router::new(
            p,
            CostModel::supermuc_like(),
            VendorProfile::neutral(),
            Duration::from_secs(5),
        ));
        (0..p)
            .map(|r| ProcState::new(r, Arc::clone(&router), 42))
            .collect()
    }

    #[test]
    fn send_recv_updates_clocks() {
        let procs = setup(2);
        let cost = procs[0].router.cost.clone();
        procs[0].send_global::<u64>(1, 7, ContextId::WORLD, vec![1, 2, 3], CostScale::NEUTRAL);
        // Sender paid only the send overhead.
        assert_eq!(procs[0].now(), cost.send_overhead);
        let pat = MatchPattern {
            ctx: ContextId::WORLD,
            src: SrcFilter::Exact(0),
            tag: 7,
        };
        let m = procs[1].recv_match(&pat).unwrap();
        let (v, info) = m.take::<u64>().unwrap();
        assert_eq!(v, vec![1, 2, 3]);
        // Receiver's clock jumped to arrival (alpha + 24 bytes * beta) + recv overhead.
        let expected = cost.transfer_time(24) + cost.recv_overhead;
        assert_eq!(procs[1].now(), expected);
        assert_eq!(info.arrival, cost.transfer_time(24));
    }

    #[test]
    fn recv_does_not_rewind_clock() {
        let procs = setup(2);
        procs[1].advance(Time::from_millis(10));
        procs[0].send_global::<u64>(1, 7, ContextId::WORLD, vec![1], CostScale::NEUTRAL);
        let pat = MatchPattern {
            ctx: ContextId::WORLD,
            src: SrcFilter::Exact(0),
            tag: 7,
        };
        procs[1].recv_match(&pat).unwrap();
        // Receiver was already past the arrival time; max() keeps it there.
        assert!(procs[1].now() >= Time::from_millis(10));
    }

    #[test]
    fn try_recv_miss_leaves_clock() {
        let procs = setup(2);
        let pat = MatchPattern {
            ctx: ContextId::WORLD,
            src: SrcFilter::Any,
            tag: 0,
        };
        assert!(procs[0].try_recv_match(&pat).is_none());
        assert_eq!(procs[0].now(), Time::ZERO);
    }

    #[test]
    fn deterministic_rng_per_rank() {
        let a = setup(2);
        let b = setup(2);
        assert_eq!(a[0].rand_index(1000), b[0].rand_index(1000));
        assert_eq!(a[1].rand_index(1000), b[1].rand_index(1000));
    }

    #[test]
    fn charge_compute_uses_model() {
        let procs = setup(1);
        procs[0].charge_compute(5000);
        assert_eq!(procs[0].now(), Time::from_micros(5));
    }
}
