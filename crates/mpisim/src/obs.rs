//! Deterministic observability: virtual-time event traces, exact-equality
//! model metrics, and the (explicitly non-deterministic) wall-clock
//! scheduler profile.
//!
//! Three layers with sharply different determinism contracts (DESIGN.md §9):
//!
//! * **Event trace** ([`Trace`], opt-in via
//!   [`SimConfig::trace`](crate::SimConfig)): every rank appends structured
//!   [`TraceEvent`]s — op spans, send/deliver edges, phase markers, fault
//!   injections, blame emissions — to its **own** per-rank buffer, stamped
//!   with its virtual clock. Because each rank's body runs serially with
//!   bit-identical inputs for every worker count and commit algorithm
//!   (DESIGN.md §5/§7), each per-rank stream is worker-invariant; the
//!   global trace merges them in `(time, rank, seq)` order — the same key
//!   family the epoch commit sorts sends by — so the merged trace is a
//!   pure function of `(program, seed, fault seed)` and **byte-identical**
//!   across `coop_workers` and `CommitAlgo`. Appending never touches a
//!   clock, an RNG, or a counter the model reads: observer effect = 0.
//! * **Model metrics** ([`MetricsSnapshot`], always on): message/byte
//!   totals, per-[`OpClass`] volumes, mailbox scan work, epochs, wake-ups,
//!   context switches. All are pure functions of the program, so CI gates
//!   them at **exact equality** — a changed message count is a model
//!   change, not noise.
//! * **Scheduler profile** ([`SchedProfile`], opt-in via
//!   [`SimConfig::sched_profile`](crate::SimConfig)): per-worker run /
//!   commit / idle wall-clock phase timings and shard-claim counts. Host
//!   wall-clock is *deliberately outside* the deterministic domain — it
//!   exists to attribute multicore speedup, never to be diffed.

use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use crate::proc::ProcState;
use crate::time::Time;

// ---------------------------------------------------------------------------
// Operation classes
// ---------------------------------------------------------------------------

/// The collective class an operation's traffic is attributed to. Mirrors
/// the [`CollScales`](crate::model::CollScales) cost buckets so measured
/// volumes line up with the cost model's per-collective scaling.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum OpClass {
    /// Point-to-point traffic outside any collective span.
    P2p = 0,
    /// Broadcast (binomial tree).
    Bcast = 1,
    /// Reduce / allreduce reduction phases.
    Reduce = 2,
    /// Scan / exclusive scan.
    Scan = 3,
    /// Gather family (gather, gatherv, allgather).
    Gather = 4,
    /// Dissemination barrier.
    Barrier = 5,
    /// Everything else (alltoall, scatter, ...).
    Other = 6,
}

impl OpClass {
    /// Number of classes (array dimension for per-class counters).
    pub const COUNT: usize = 7;

    /// All classes, in `repr` order.
    pub const ALL: [OpClass; OpClass::COUNT] = [
        OpClass::P2p,
        OpClass::Bcast,
        OpClass::Reduce,
        OpClass::Scan,
        OpClass::Gather,
        OpClass::Barrier,
        OpClass::Other,
    ];

    /// Stable lower-case name (used by trace text and metric tables).
    pub fn name(self) -> &'static str {
        match self {
            OpClass::P2p => "p2p",
            OpClass::Bcast => "bcast",
            OpClass::Reduce => "reduce",
            OpClass::Scan => "scan",
            OpClass::Gather => "gather",
            OpClass::Barrier => "barrier",
            OpClass::Other => "other",
        }
    }

    /// Inverse of the `repr(u8)` cast (out-of-range folds to `Other`).
    pub fn from_u8(v: u8) -> OpClass {
        *OpClass::ALL.get(v as usize).unwrap_or(&OpClass::Other)
    }
}

// ---------------------------------------------------------------------------
// Trace events
// ---------------------------------------------------------------------------

/// One structured trace event, stamped (by the emitting rank) with that
/// rank's virtual clock.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// An operation span opened (collective entry, driver phase, ...).
    Begin {
        /// Traffic class the span attributes sends to.
        class: OpClass,
        /// Human-readable span name (shown on the Chrome-trace track).
        label: &'static str,
    },
    /// The matching span closed.
    End {
        /// Class of the span being closed.
        class: OpClass,
    },
    /// A message was priced and staged for sending.
    Send {
        /// Destination global rank.
        dest: usize,
        /// Payload bytes.
        bytes: usize,
        /// Class the volume was attributed to (innermost open span).
        class: OpClass,
        /// Modeled arrival time at the destination.
        arrival: Time,
    },
    /// A message was matched and consumed by this rank.
    Deliver {
        /// Source global rank.
        src: usize,
        /// Payload bytes.
        bytes: usize,
    },
    /// A free-form phase marker (e.g. a JQuick level boundary).
    Mark {
        /// Marker text.
        label: String,
    },
    /// Fault injection inflated this rank's outgoing transfer.
    FaultJitter {
        /// Injected extra latency in nanoseconds.
        ns: u64,
    },
    /// A send was dropped because this rank has crash-stopped.
    FaultDrop {
        /// Destination the dropped message was addressed to.
        dest: usize,
    },
    /// A [`RoundBlame`](crate::RoundBlame) was attached to a timeout.
    Blame {
        /// The rendered blame text.
        text: String,
    },
}

/// One merged trace record: `(t, rank, seq)` is the total order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceRecord {
    /// Virtual timestamp (emitting rank's clock).
    pub t: Time,
    /// Emitting global rank.
    pub rank: usize,
    /// Position in the rank's own stream (ties within `(t, rank)`).
    pub seq: u32,
    /// The event.
    pub ev: TraceEvent,
}

/// Per-rank trace buffer, cache-line aligned like the router's traffic
/// cells. Only the owning rank's fiber/thread ever appends, so the mutex
/// is uncontended; it exists because fibers migrate across workers.
#[repr(align(64))]
#[derive(Default)]
pub(crate) struct TraceCell(Mutex<Vec<(Time, TraceEvent)>>);

impl TraceCell {
    #[inline]
    pub(crate) fn push(&self, t: Time, ev: TraceEvent) {
        self.0.lock().push((t, ev));
    }
}

/// The merged, deterministic event trace of a run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Trace {
    /// All events in global `(t, rank, seq)` order.
    pub events: Vec<TraceRecord>,
}

impl Trace {
    /// Merge per-rank buffers into the global order. Each rank's stream is
    /// already in emission order; a stable sort on `(t, rank)` therefore
    /// realises the `(t, rank, seq)` total order.
    pub(crate) fn collect(cells: &[TraceCell]) -> Trace {
        let mut events = Vec::new();
        for (rank, cell) in cells.iter().enumerate() {
            let buf = cell.0.lock();
            for (seq, (t, ev)) in buf.iter().enumerate() {
                events.push(TraceRecord {
                    t: *t,
                    rank,
                    seq: seq as u32,
                    ev: ev.clone(),
                });
            }
        }
        events.sort_by_key(|a| (a.t, a.rank, a.seq));
        Trace { events }
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Canonical text rendering: one line per event, integer-nanosecond
    /// timestamps, no floats. This is the representation CI byte-diffs
    /// across worker counts and commit algorithms.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for r in &self.events {
            out.push_str(&format!("{} r{} #{} ", r.t.as_nanos(), r.rank, r.seq));
            match &r.ev {
                TraceEvent::Begin { class, label } => {
                    out.push_str(&format!("begin {} {label}", class.name()));
                }
                TraceEvent::End { class } => out.push_str(&format!("end {}", class.name())),
                TraceEvent::Send {
                    dest,
                    bytes,
                    class,
                    arrival,
                } => out.push_str(&format!(
                    "send -> {dest} {bytes}B {} arrive={}",
                    class.name(),
                    arrival.as_nanos()
                )),
                TraceEvent::Deliver { src, bytes } => {
                    out.push_str(&format!("deliver <- {src} {bytes}B"));
                }
                TraceEvent::Mark { label } => out.push_str(&format!("mark {label}")),
                TraceEvent::FaultJitter { ns } => out.push_str(&format!("fault-jitter +{ns}ns")),
                TraceEvent::FaultDrop { dest } => out.push_str(&format!("fault-drop -> {dest}")),
                TraceEvent::Blame { text } => out.push_str(&format!("blame {text}")),
            }
            out.push('\n');
        }
        out
    }

    /// Export as Chrome `trace_event` JSON (the array-of-events form with
    /// a `traceEvents` wrapper), openable in Perfetto / `chrome://tracing`.
    /// One track (`tid`) per rank, timestamps in virtual microseconds.
    pub fn to_chrome_json(&self) -> String {
        let ts = |t: Time| format!("{:.3}", t.as_nanos() as f64 / 1e3);
        let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        let mut first = true;
        let mut emit = |s: String, first: &mut bool| {
            if !*first {
                out.push(',');
            }
            *first = false;
            out.push_str(&s);
        };
        let mut ranks: Vec<usize> = self.events.iter().map(|r| r.rank).collect();
        ranks.sort_unstable();
        ranks.dedup();
        for r in ranks {
            emit(
                format!(
                    "{{\"ph\":\"M\",\"pid\":0,\"tid\":{r},\"name\":\"thread_name\",\
                     \"args\":{{\"name\":\"rank {r}\"}}}}"
                ),
                &mut first,
            );
        }
        for rec in &self.events {
            let (rank, t) = (rec.rank, rec.t);
            let ev = match &rec.ev {
                TraceEvent::Begin { class, label } => format!(
                    "{{\"ph\":\"B\",\"pid\":0,\"tid\":{rank},\"ts\":{},\"name\":{},\
                     \"cat\":\"{}\"}}",
                    ts(t),
                    json_str(label),
                    class.name()
                ),
                TraceEvent::End { class } => format!(
                    "{{\"ph\":\"E\",\"pid\":0,\"tid\":{rank},\"ts\":{},\"cat\":\"{}\"}}",
                    ts(t),
                    class.name()
                ),
                TraceEvent::Send {
                    dest,
                    bytes,
                    class,
                    arrival,
                } => format!(
                    "{{\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":{rank},\"ts\":{},\
                     \"name\":\"send->{dest}\",\"cat\":\"{}\",\
                     \"args\":{{\"bytes\":{bytes},\"arrival_us\":{}}}}}",
                    ts(t),
                    class.name(),
                    ts(*arrival)
                ),
                TraceEvent::Deliver { src, bytes } => format!(
                    "{{\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":{rank},\"ts\":{},\
                     \"name\":\"deliver<-{src}\",\"cat\":\"deliver\",\
                     \"args\":{{\"bytes\":{bytes}}}}}",
                    ts(t)
                ),
                TraceEvent::Mark { label } => format!(
                    "{{\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":{rank},\"ts\":{},\
                     \"name\":{},\"cat\":\"mark\"}}",
                    ts(t),
                    json_str(label)
                ),
                TraceEvent::FaultJitter { ns } => format!(
                    "{{\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":{rank},\"ts\":{},\
                     \"name\":\"fault-jitter\",\"cat\":\"fault\",\"args\":{{\"ns\":{ns}}}}}",
                    ts(t)
                ),
                TraceEvent::FaultDrop { dest } => format!(
                    "{{\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":{rank},\"ts\":{},\
                     \"name\":\"fault-drop->{dest}\",\"cat\":\"fault\"}}",
                    ts(t)
                ),
                TraceEvent::Blame { text } => format!(
                    "{{\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":{rank},\"ts\":{},\
                     \"name\":\"blame\",\"cat\":\"fault\",\"args\":{{\"text\":{}}}}}",
                    ts(t),
                    json_str(text)
                ),
            };
            emit(ev, &mut first);
        }
        out.push_str("]}\n");
        out
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars) —
/// enough for span labels, marker text, and blame lines.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

// ---------------------------------------------------------------------------
// Span guards
// ---------------------------------------------------------------------------

/// RAII guard opened by [`span`]: restores the previous operation class on
/// drop and closes the trace span. Lives on the rank's own (fiber) stack —
/// **not** a thread-local, because fibers yield mid-collective and resume
/// on a different worker thread.
pub struct SpanGuard<'a> {
    state: &'a ProcState,
    prev: u8,
    class: OpClass,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        self.state
            .trace_push(|| TraceEvent::End { class: self.class });
        self.state.set_op_class_raw(self.prev);
    }
}

/// Open a traced operation span: sends priced while the guard lives are
/// attributed to `class` (innermost span wins for nested collectives —
/// allreduce's internal bcast counts as bcast), and `Begin`/`End` events
/// bracket it in the trace.
pub fn span<'a>(state: &'a ProcState, class: OpClass, label: &'static str) -> SpanGuard<'a> {
    let prev = state.set_op_class_raw(class as u8);
    state.trace_push(|| TraceEvent::Begin { class, label });
    SpanGuard { state, prev, class }
}

/// RAII guard opened by [`class_guard`]: class attribution only, no trace
/// events. Used by the nonblocking collectives, whose state machines are
/// polled many times per logical operation — emitting a span per poll
/// would drown the trace.
pub struct ClassGuard<'a> {
    state: &'a ProcState,
    prev: u8,
}

impl Drop for ClassGuard<'_> {
    fn drop(&mut self) {
        self.state.set_op_class_raw(self.prev);
    }
}

/// Attribute sends to `class` while the guard lives, without trace spans.
pub fn class_guard(state: &ProcState, class: OpClass) -> ClassGuard<'_> {
    let prev = state.set_op_class_raw(class as u8);
    ClassGuard { state, prev }
}

/// Emit a free-form phase marker (e.g. a JQuick level boundary) into the
/// trace at the rank's current virtual time. No-op when tracing is off;
/// the label closure only runs when it is.
pub fn mark(state: &ProcState, label: impl FnOnce() -> String) {
    state.trace_push(|| TraceEvent::Mark { label: label() });
}

// ---------------------------------------------------------------------------
// Model metrics (deterministic, exact-gated)
// ---------------------------------------------------------------------------

/// Per-rank, per-class volume counters, cache-line aligned. Always on:
/// two relaxed atomic adds per send is noise next to message pricing.
#[repr(align(64))]
#[derive(Default)]
pub(crate) struct ClassCell {
    msgs: [AtomicU64; OpClass::COUNT],
    bytes: [AtomicU64; OpClass::COUNT],
}

impl ClassCell {
    #[inline]
    pub(crate) fn add(&self, class: OpClass, bytes: usize) {
        self.msgs[class as usize].fetch_add(1, Ordering::Relaxed);
        self.bytes[class as usize].fetch_add(bytes as u64, Ordering::Relaxed);
    }

    pub(crate) fn msgs_of(&self, class: OpClass) -> u64 {
        self.msgs[class as usize].load(Ordering::Relaxed)
    }

    pub(crate) fn bytes_of(&self, class: OpClass) -> u64 {
        self.bytes[class as usize].load(Ordering::Relaxed)
    }
}

/// The deterministic model-metric snapshot of a run. Every field is a
/// pure function of `(program, seed, fault seed)` — identical for every
/// worker count and commit algorithm — so CI compares these at **exact
/// equality** (`bench_gate` zero-tolerance `count` metrics).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Total messages sent (priced; crash-dropped sends not included).
    pub messages: u64,
    /// Total payload bytes sent.
    pub bytes: u64,
    /// Messages per [`OpClass`] (indexed by `OpClass as usize`).
    pub class_msgs: [u64; OpClass::COUNT],
    /// Payload bytes per [`OpClass`].
    pub class_bytes: [u64; OpClass::COUNT],
    /// Per class, the maximum over ranks of messages sent in that class —
    /// the quantity the paper's O(log p) per-rank bounds cap.
    pub class_max_rank_msgs: [u64; OpClass::COUNT],
    /// Waiter-pattern match checks performed by mailbox deposits.
    pub mailbox_scans: u64,
    /// Cooperative-scheduler epochs committed (0 on the thread backend).
    pub epochs: u64,
    /// Tasks woken across all epoch commits (0 on the thread backend).
    pub wakeups: u64,
    /// Fiber context switches (0 on the thread backend).
    pub switches: u64,
}

impl MetricsSnapshot {
    /// Render as JSON (hand-rolled; the workspace vendors no serde).
    pub fn to_json(&self) -> String {
        let arr = |a: &[u64; OpClass::COUNT]| {
            let items: Vec<String> = OpClass::ALL
                .iter()
                .map(|c| format!("\"{}\":{}", c.name(), a[*c as usize]))
                .collect();
            format!("{{{}}}", items.join(","))
        };
        format!(
            "{{\"messages\":{},\"bytes\":{},\"class_msgs\":{},\"class_bytes\":{},\
             \"class_max_rank_msgs\":{},\"mailbox_scans\":{},\"epochs\":{},\
             \"wakeups\":{},\"switches\":{}}}",
            self.messages,
            self.bytes,
            arr(&self.class_msgs),
            arr(&self.class_bytes),
            arr(&self.class_max_rank_msgs),
            self.mailbox_scans,
            self.epochs,
            self.wakeups,
            self.switches
        )
    }
}

// ---------------------------------------------------------------------------
// Wall-clock scheduler profile (non-deterministic by design)
// ---------------------------------------------------------------------------

/// One worker's wall-clock phase breakdown.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WorkerProfile {
    /// Nanoseconds spent resuming task fibers.
    pub run_ns: u64,
    /// Nanoseconds spent pushing commit shards / finishing rounds.
    pub commit_ns: u64,
    /// Nanoseconds spent merging staged-message runs.
    pub merge_ns: u64,
    /// Nanoseconds spent parked on the epoch gate.
    pub idle_ns: u64,
    /// Task resumptions this worker claimed.
    pub tasks: u64,
    /// Commit shards this worker claimed.
    pub shards: u64,
    /// Pre-sorted runs this worker consumed across merge rounds.
    pub merge_runs: u64,
}

/// The wall-clock scheduler profile: host-time phase attribution for the
/// cooperative backend. **Outside the deterministic domain** — values
/// differ run to run and worker count to worker count; they are emitted to
/// `BENCH_sched_profile.json`, which the bench gate never diffs.
///
/// Universes run inside a fleet report the pool counters but an **empty
/// worker list**: a fleet worker interleaves many universes, so
/// per-worker wall-clock attribution for any single universe would be a
/// lie, and the profile declines to tell it (DESIGN.md §11).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SchedProfile {
    /// One entry per worker, indexed by worker id.
    pub workers: Vec<WorkerProfile>,
    /// Entry-vector pool reuses across all commits (shards + merge runs).
    pub pool_hits: u64,
    /// Entry-vector pool allocations across all commits.
    pub pool_misses: u64,
    /// Payload-pool buffer reuses during the run ([`crate::pool`]).
    pub payload_hits: u64,
    /// Payload-pool fresh allocations during the run.
    pub payload_misses: u64,
    /// Payload buffers dropped because both pool tiers were full.
    pub payload_overflow: u64,
}

impl SchedProfile {
    /// Render as JSON (hand-rolled; the workspace vendors no serde).
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"pool_hits\":{},\"pool_misses\":{},\"payload_hits\":{},\
             \"payload_misses\":{},\"payload_overflow\":{},\"workers\":[",
            self.pool_hits,
            self.pool_misses,
            self.payload_hits,
            self.payload_misses,
            self.payload_overflow
        );
        for (i, w) in self.workers.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"worker\":{i},\"run_ns\":{},\"commit_ns\":{},\"merge_ns\":{},\
                 \"idle_ns\":{},\"tasks\":{},\"shards\":{},\"merge_runs\":{}}}",
                w.run_ns, w.commit_ns, w.merge_ns, w.idle_ns, w.tasks, w.shards, w.merge_runs
            ));
        }
        out.push_str("]}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Trace {
        let cells: Vec<TraceCell> = (0..2).map(|_| TraceCell::default()).collect();
        cells[0].push(
            Time::from_nanos(10),
            TraceEvent::Begin {
                class: OpClass::Bcast,
                label: "bcast",
            },
        );
        cells[0].push(
            Time::from_nanos(10),
            TraceEvent::Send {
                dest: 1,
                bytes: 64,
                class: OpClass::Bcast,
                arrival: Time::from_nanos(1074),
            },
        );
        cells[1].push(
            Time::from_nanos(5),
            TraceEvent::Mark {
                label: "level 0".to_string(),
            },
        );
        cells[0].push(
            Time::from_nanos(20),
            TraceEvent::End {
                class: OpClass::Bcast,
            },
        );
        cells[1].push(
            Time::from_nanos(1074),
            TraceEvent::Deliver { src: 0, bytes: 64 },
        );
        Trace::collect(&cells)
    }

    #[test]
    fn merge_orders_by_time_rank_seq() {
        let tr = sample_trace();
        let keys: Vec<(u64, usize, u32)> = tr
            .events
            .iter()
            .map(|r| (r.t.as_nanos(), r.rank, r.seq))
            .collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted);
        // Rank 1's mark at t=5 precedes everything from rank 0 at t=10.
        assert_eq!(tr.events[0].rank, 1);
        assert!(matches!(tr.events[0].ev, TraceEvent::Mark { .. }));
    }

    #[test]
    fn text_rendering_is_stable() {
        let txt = sample_trace().to_text();
        assert_eq!(
            txt,
            "5 r1 #0 mark level 0\n\
             10 r0 #0 begin bcast bcast\n\
             10 r0 #1 send -> 1 64B bcast arrive=1074\n\
             20 r0 #2 end bcast\n\
             1074 r1 #1 deliver <- 0 64B\n"
        );
    }

    #[test]
    fn chrome_export_is_balanced_and_tracked() {
        let js = sample_trace().to_chrome_json();
        assert!(js.starts_with("{\"displayTimeUnit\""), "{js}");
        assert_eq!(js.matches("\"ph\":\"B\"").count(), 1);
        assert_eq!(js.matches("\"ph\":\"E\"").count(), 1);
        assert_eq!(js.matches("\"ph\":\"M\"").count(), 2); // one per rank
        assert!(js.contains("\"args\":{\"name\":\"rank 0\"}"), "{js}");
        assert!(
            js.contains("\"ts\":0.010"),
            "t=10ns renders as 0.010us: {js}"
        );
    }

    #[test]
    fn json_str_escapes() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn op_class_roundtrip() {
        for c in OpClass::ALL {
            assert_eq!(OpClass::from_u8(c as u8), c);
        }
        assert_eq!(OpClass::from_u8(250), OpClass::Other);
    }

    #[test]
    fn class_cell_buckets() {
        let cell = ClassCell::default();
        cell.add(OpClass::Bcast, 100);
        cell.add(OpClass::Bcast, 24);
        cell.add(OpClass::P2p, 8);
        assert_eq!(cell.msgs_of(OpClass::Bcast), 2);
        assert_eq!(cell.bytes_of(OpClass::Bcast), 124);
        assert_eq!(cell.msgs_of(OpClass::P2p), 1);
        assert_eq!(cell.bytes_of(OpClass::Scan), 0);
    }

    #[test]
    fn snapshot_json_shape() {
        let snap = MetricsSnapshot {
            messages: 3,
            bytes: 96,
            ..Default::default()
        };
        let js = snap.to_json();
        assert!(js.contains("\"messages\":3"), "{js}");
        assert!(js.contains("\"class_msgs\":{\"p2p\":0"), "{js}");
    }

    #[test]
    fn profile_json_shape() {
        let prof = SchedProfile {
            workers: vec![WorkerProfile {
                run_ns: 5,
                commit_ns: 2,
                merge_ns: 7,
                idle_ns: 1,
                tasks: 9,
                shards: 3,
                merge_runs: 6,
            }],
            pool_hits: 4,
            pool_misses: 1,
            payload_hits: 11,
            payload_misses: 2,
            payload_overflow: 0,
        };
        let js = prof.to_json();
        assert!(js.contains("\"worker\":0"), "{js}");
        assert!(js.contains("\"pool_hits\":4"), "{js}");
        assert!(js.contains("\"payload_hits\":11"), "{js}");
        assert!(js.contains("\"merge_runs\":6"), "{js}");
    }
}
