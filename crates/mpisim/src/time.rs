//! Virtual time for the single-ported message-passing model.
//!
//! The paper analyses every algorithm in the α–β model (§II): sending a
//! message of `l` machine words takes `α + lβ`. The simulator threads a
//! per-rank virtual clock through every communication operation; [`Time`] is
//! the unit of that clock, stored as integer nanoseconds so that arithmetic
//! is exact and runs are comparable.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};
use std::sync::atomic::{AtomicU64, Ordering};

/// A point in (or span of) virtual time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(pub u64);

impl Time {
    /// The zero instant / empty span.
    pub const ZERO: Time = Time(0);

    /// Construct from integer nanoseconds.
    pub fn from_nanos(ns: u64) -> Time {
        Time(ns)
    }

    /// Construct from integer microseconds.
    pub fn from_micros(us: u64) -> Time {
        Time(us * 1_000)
    }

    /// Construct from integer milliseconds.
    pub fn from_millis(ms: u64) -> Time {
        Time(ms * 1_000_000)
    }

    /// Construct from fractional seconds, rounded to the nearest nanosecond
    /// and clamped at zero.
    pub fn from_secs_f64(s: f64) -> Time {
        Time((s * 1e9).round().max(0.0) as u64)
    }

    /// The value in integer nanoseconds (exact).
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// The value in fractional microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// The value in fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The value in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The later of two instants — the clock-merge operation of the model:
    /// a receive sets `clock = clock.max(arrival)`.
    pub fn max(self, other: Time) -> Time {
        Time(self.0.max(other.0))
    }

    /// The earlier of two instants.
    pub fn min(self, other: Time) -> Time {
        Time(self.0.min(other.0))
    }

    /// Subtraction clamped at zero instead of underflowing.
    pub fn saturating_sub(self, other: Time) -> Time {
        Time(self.0.saturating_sub(other.0))
    }

    /// Scale a span by a dimensionless factor (used by vendor cost profiles).
    pub fn scale(self, factor: f64) -> Time {
        Time((self.0 as f64 * factor).round().max(0.0) as u64)
    }
}

/// A shared-state virtual clock: per-rank simulated time that several
/// parties may advance — the rank's own operations, and (under the
/// cooperative backend) the scheduler, which moves a rank's clock forward
/// through the ready-queue when a wake-up delivers a message whose arrival
/// lies in the rank's future.
///
/// All operations are monotone except [`VirtualClock::set`], which
/// barrier-style resynchronisation uses deliberately.
#[derive(Debug, Default)]
pub struct VirtualClock(AtomicU64);

impl VirtualClock {
    /// A clock at virtual time zero.
    pub fn new() -> VirtualClock {
        VirtualClock(AtomicU64::new(0))
    }

    /// Current reading.
    pub fn now(&self) -> Time {
        Time(self.0.load(Ordering::Relaxed))
    }

    /// Advance by a span.
    pub fn advance(&self, dt: Time) {
        self.0.fetch_add(dt.as_nanos(), Ordering::Relaxed);
    }

    /// Merge with an event time: `clock = max(clock, t)` — the receive rule
    /// of the α–β model.
    pub fn advance_to(&self, t: Time) {
        self.0.fetch_max(t.as_nanos(), Ordering::Relaxed);
    }

    /// Overwrite the reading (barrier-style resynchronisation).
    pub fn set(&self, t: Time) {
        self.0.store(t.as_nanos(), Ordering::Relaxed);
    }
}

impl Add for Time {
    type Output = Time;
    fn add(self, rhs: Time) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign for Time {
    fn add_assign(&mut self, rhs: Time) {
        self.0 += rhs.0;
    }
}

impl Sub for Time {
    type Output = Time;
    fn sub(self, rhs: Time) -> Time {
        Time(self.0 - rhs.0)
    }
}

impl Mul<u64> for Time {
    type Output = Time;
    fn mul(self, rhs: u64) -> Time {
        Time(self.0 * rhs)
    }
}

impl Div<u64> for Time {
    type Output = Time;
    fn div(self, rhs: u64) -> Time {
        Time(self.0 / rhs)
    }
}

impl Sum for Time {
    fn sum<I: Iterator<Item = Time>>(iter: I) -> Time {
        Time(iter.map(|t| t.0).sum())
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 1_000 {
            write!(f, "{}ns", self.0)
        } else if self.0 < 1_000_000 {
            write!(f, "{:.2}us", self.as_micros_f64())
        } else if self.0 < 1_000_000_000 {
            write!(f, "{:.2}ms", self.as_millis_f64())
        } else {
            write!(f, "{:.3}s", self.as_secs_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = Time::from_micros(10);
        let b = Time::from_nanos(500);
        assert_eq!((a + b).as_nanos(), 10_500);
        assert_eq!((a - b).as_nanos(), 9_500);
        assert_eq!((a * 3).as_nanos(), 30_000);
        assert_eq!((a / 2).as_nanos(), 5_000);
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
    }

    #[test]
    fn conversions() {
        assert_eq!(Time::from_millis(2).as_nanos(), 2_000_000);
        assert!((Time::from_millis(2).as_millis_f64() - 2.0).abs() < 1e-12);
        assert!((Time::from_secs_f64(0.5).as_secs_f64() - 0.5).abs() < 1e-9);
        assert_eq!(Time::from_secs_f64(-1.0), Time::ZERO);
    }

    #[test]
    fn scaling() {
        assert_eq!(Time(1000).scale(2.5).as_nanos(), 2500);
        assert_eq!(Time(1000).scale(0.0).as_nanos(), 0);
    }

    #[test]
    fn saturating() {
        assert_eq!(Time(5).saturating_sub(Time(10)), Time::ZERO);
        assert_eq!(Time(10).saturating_sub(Time(5)), Time(5));
    }

    #[test]
    fn display_units() {
        assert_eq!(format!("{}", Time(12)), "12ns");
        assert_eq!(format!("{}", Time(12_000)), "12.00us");
        assert_eq!(format!("{}", Time(12_000_000)), "12.00ms");
        assert_eq!(format!("{}", Time(12_000_000_000)), "12.000s");
    }

    #[test]
    fn sum_iterator() {
        let total: Time = (1..=4).map(Time).sum();
        assert_eq!(total, Time(10));
    }
}
