//! Blocking collective operations, generic over [`Transport`].
//!
//! All patterns are binomial-tree / dissemination based — "generic, not
//! optimized for a specific network, but theoretically optimal for small
//! input sizes" (paper §V-D): O(α log p) startups, O(β·l·log p) volume.
//!
//! Because these are generic over `Transport`, the *same algorithms* serve
//! as both the vendor ("native MPI") collectives — run through a
//! [`crate::transport::Scaled`] wrapper carrying the vendor cost profile —
//! and as RBC's collectives (neutral costs). That mirrors the paper's
//! finding that RBC collectives perform like their MPI counterparts: any
//! measured difference comes from communicator construction and vendor
//! overheads, not the algorithms.
//!
//! # Maybe-async
//!
//! Each collective is written **once**, as an `*_async` core whose
//! blocking receives go through the maybe-async transport primitives
//! ([`crate::transport::recv_async`] and friends); the synchronous
//! function of the same name drives the core with
//! [`crate::sched::poll::block_inline`]. Off the poll backend every await
//! resolves in place, so the sync wrappers behave exactly as before; on
//! [`crate::Backend::Poll`] the cores suspend at each blocked receive and
//! the scheduler re-polls them — one implementation, three backends, and
//! byte-identical output by construction (DESIGN.md §12).

use std::sync::Arc;

use crate::datum::Datum;
use crate::error::Result;
use crate::msg::Tag;
use crate::obs::{self, OpClass};
use crate::sched::poll::block_inline;
use crate::transport::{recv_async, recv_shared_async, Src, Transport};

/// Elementwise combine of two equal-length vectors: `acc[i] = op(acc[i], v[i])`
/// (`v` provides the *left* operand when it comes from lower-ranked data).
fn combine_into<T: Datum>(acc: &mut [T], v: &[T], op: &impl Fn(&T, &T) -> T, v_is_left: bool) {
    debug_assert_eq!(acc.len(), v.len(), "reduction buffers must match");
    for (a, b) in acc.iter_mut().zip(v.iter()) {
        *a = if v_is_left { op(b, a) } else { op(a, b) };
    }
}

/// Binomial-tree broadcast from `root`. On non-root ranks `data` is
/// replaced by the broadcast payload.
///
/// The payload travels the tree as a **shared** buffer: every stage clones
/// an `Arc`, not the data, so an interior node forwards to its O(log p)
/// children in O(1) copies instead of O(children · bytes) — the zero-copy
/// fan-out path ([`Transport::send_shared`]). Each rank materialises its
/// own `Vec` at most once, at the end, off every other rank's critical
/// path (and not at all when it holds the last reference).
pub fn bcast<T: Datum>(
    tr: &impl Transport,
    data: &mut Vec<T>,
    root: usize,
    tag: Tag,
) -> Result<()> {
    block_inline(bcast_async(tr, data, root, tag))
}

/// [`bcast`] as a maybe-async core (see the module docs).
pub async fn bcast_async<T: Datum>(
    tr: &impl Transport,
    data: &mut Vec<T>,
    root: usize,
    tag: Tag,
) -> Result<()> {
    let p = tr.size();
    let r = tr.rank();
    tr.check_rank(root)?;
    let _span = obs::span(tr.state(), OpClass::Bcast, "bcast");
    if p == 1 {
        return Ok(());
    }
    let rel = (r + p - root) % p;
    let mut shared: Arc<Vec<T>> = Arc::new(std::mem::take(data));
    let mut mask = 1usize;
    while mask < p {
        if rel & mask != 0 {
            let src = (rel - mask + root) % p;
            let (v, _) = recv_shared_async::<T, _>(tr, Src::Rank(src), tag).await?;
            shared = v;
            break;
        }
        mask <<= 1;
    }
    mask >>= 1;
    while mask > 0 {
        if rel + mask < p {
            let dst = (rel + mask + root) % p;
            tr.send_shared(&shared, dst, tag)?;
        }
        mask >>= 1;
    }
    *data = Arc::unwrap_or_clone(shared);
    Ok(())
}

/// Binomial-tree reduction to `root`. Returns `Some(result)` on the root,
/// `None` elsewhere. `op` should be associative; commutativity is assumed
/// (as for all MPI built-in operators).
pub fn reduce<T: Datum>(
    tr: &impl Transport,
    data: &[T],
    root: usize,
    tag: Tag,
    op: impl Fn(&T, &T) -> T,
) -> Result<Option<Vec<T>>> {
    block_inline(reduce_async(tr, data, root, tag, op))
}

/// [`reduce`] as a maybe-async core (see the module docs).
pub async fn reduce_async<T: Datum>(
    tr: &impl Transport,
    data: &[T],
    root: usize,
    tag: Tag,
    op: impl Fn(&T, &T) -> T,
) -> Result<Option<Vec<T>>> {
    let p = tr.size();
    let r = tr.rank();
    tr.check_rank(root)?;
    let _span = obs::span(tr.state(), OpClass::Reduce, "reduce");
    let mut acc = crate::pool::take_vec::<T>(data.len());
    acc.extend_from_slice(data);
    if p == 1 {
        return Ok(Some(acc));
    }
    let rel = (r + p - root) % p;
    let mut mask = 1usize;
    while mask < p {
        if rel & mask == 0 {
            let child = rel | mask;
            if child < p {
                let src = (child + root) % p;
                let (v, _) = recv_async::<T, _>(tr, Src::Rank(src), tag).await?;
                // Child data comes from higher relative ranks: acc is left.
                combine_into(&mut acc, &v, &op, false);
                tr.charge_compute(acc.len());
                crate::pool::recycle_vec(v);
            }
        } else {
            let parent = (rel - mask + root) % p;
            tr.send_vec(acc, parent, tag)?;
            return Ok(None);
        }
        mask <<= 1;
    }
    Ok(Some(acc))
}

/// Reduce-to-all: binomial reduce to rank 0 followed by a broadcast.
pub fn allreduce<T: Datum>(
    tr: &impl Transport,
    data: &[T],
    tag: Tag,
    op: impl Fn(&T, &T) -> T,
) -> Result<Vec<T>> {
    block_inline(allreduce_async(tr, data, tag, op))
}

/// [`allreduce`] as a maybe-async core (see the module docs).
pub async fn allreduce_async<T: Datum>(
    tr: &impl Transport,
    data: &[T],
    tag: Tag,
    op: impl Fn(&T, &T) -> T,
) -> Result<Vec<T>> {
    // The span nests a reduce and a bcast; each inner span re-attributes
    // its own sends (innermost wins), so allreduce volume splits across
    // the two classes exactly as the algorithm does.
    let _span = obs::span(tr.state(), OpClass::Reduce, "allreduce");
    let mut out: Vec<T> = reduce_async(tr, data, 0, tag, op)
        .await?
        .unwrap_or_default();
    bcast_async(tr, &mut out, 0, tag).await?;
    Ok(out)
}

/// Inclusive prefix "sum" (Hillis–Steele over communicator ranks):
/// rank `i` obtains `op(data_0, ..., data_i)` in ⌈log₂ p⌉ rounds.
pub fn scan<T: Datum>(
    tr: &impl Transport,
    data: &[T],
    tag: Tag,
    op: impl Fn(&T, &T) -> T,
) -> Result<Vec<T>> {
    block_inline(scan_async(tr, data, tag, op))
}

/// [`scan`] as a maybe-async core (see the module docs).
pub async fn scan_async<T: Datum>(
    tr: &impl Transport,
    data: &[T],
    tag: Tag,
    op: impl Fn(&T, &T) -> T,
) -> Result<Vec<T>> {
    let p = tr.size();
    let r = tr.rank();
    let _span = obs::span(tr.state(), OpClass::Scan, "scan");
    let mut incl = crate::pool::take_vec::<T>(data.len());
    incl.extend_from_slice(data);
    let mut d = 1usize;
    while d < p {
        if r + d < p {
            tr.send(&incl, r + d, tag)?;
        }
        if r >= d {
            let (v, _) = recv_async::<T, _>(tr, Src::Rank(r - d), tag).await?;
            // v covers strictly lower ranks: it is the left operand.
            combine_into(&mut incl, &v, &op, true);
            tr.charge_compute(incl.len());
            crate::pool::recycle_vec(v);
        }
        d <<= 1;
    }
    Ok(incl)
}

/// Exclusive prefix: rank `i` obtains `op(data_0, ..., data_{i-1})`, `None`
/// on rank 0 (which has no predecessors).
pub fn exscan<T: Datum>(
    tr: &impl Transport,
    data: &[T],
    tag: Tag,
    op: impl Fn(&T, &T) -> T,
) -> Result<Option<Vec<T>>> {
    block_inline(exscan_async(tr, data, tag, op))
}

/// [`exscan`] as a maybe-async core (see the module docs).
pub async fn exscan_async<T: Datum>(
    tr: &impl Transport,
    data: &[T],
    tag: Tag,
    op: impl Fn(&T, &T) -> T,
) -> Result<Option<Vec<T>>> {
    let p = tr.size();
    let r = tr.rank();
    let _span = obs::span(tr.state(), OpClass::Scan, "exscan");
    let mut incl = crate::pool::take_vec::<T>(data.len());
    incl.extend_from_slice(data);
    let mut excl: Option<Vec<T>> = None;
    let mut d = 1usize;
    while d < p {
        if r + d < p {
            tr.send(&incl, r + d, tag)?;
        }
        if r >= d {
            let (v, _) = recv_async::<T, _>(tr, Src::Rank(r - d), tag).await?;
            // v covers ranks [r-2d+1, r-d]; accumulated windows are
            // contiguous, and v is always to the LEFT of what we hold.
            combine_into(&mut incl, &v, &op, true);
            tr.charge_compute(incl.len());
            match &mut excl {
                // First contribution: keep the received buffer itself.
                None => excl = Some(v),
                Some(e) => {
                    combine_into(e, &v, &op, true);
                    crate::pool::recycle_vec(v);
                }
            }
        }
        d <<= 1;
    }
    Ok(excl)
}

/// Binomial-tree gather of variable-size contributions. Returns
/// `Some(per_rank_data)` on the root (indexed by source rank), `None`
/// elsewhere. Uses tags `tag` (metadata) and `tag + 1` (payload).
pub fn gatherv<T: Datum>(
    tr: &impl Transport,
    data: Vec<T>,
    root: usize,
    tag: Tag,
) -> Result<Option<Vec<Vec<T>>>> {
    block_inline(gatherv_async(tr, data, root, tag))
}

/// [`gatherv`] as a maybe-async core (see the module docs).
pub async fn gatherv_async<T: Datum>(
    tr: &impl Transport,
    data: Vec<T>,
    root: usize,
    tag: Tag,
) -> Result<Option<Vec<Vec<T>>>> {
    let p = tr.size();
    let r = tr.rank();
    tr.check_rank(root)?;
    let _span = obs::span(tr.state(), OpClass::Gather, "gatherv");
    if p == 1 {
        return Ok(Some(vec![data]));
    }
    let rel = (r + p - root) % p;
    // (origin rank, element count) for each bundled contribution, payloads
    // concatenated in the same order.
    let mut meta: Vec<(u64, u64)> = vec![(r as u64, data.len() as u64)];
    let mut payload: Vec<T> = data;
    let mut mask = 1usize;
    while mask < p {
        if rel & mask == 0 {
            let child = rel | mask;
            if child < p {
                let src = (child + root) % p;
                let (m, _) = recv_async::<(u64, u64), _>(tr, Src::Rank(src), tag).await?;
                let (d, _) = recv_async::<T, _>(tr, Src::Rank(src), tag + 1).await?;
                meta.extend_from_slice(&m);
                payload.extend_from_slice(&d);
            }
        } else {
            let parent = (rel - mask + root) % p;
            tr.send_vec(meta, parent, tag)?;
            tr.send_vec(payload, parent, tag + 1)?;
            return Ok(None);
        }
        mask <<= 1;
    }
    // Root: scatter the bundle back into rank order.
    let mut out: Vec<Vec<T>> = (0..p).map(|_| Vec::new()).collect();
    let mut off = 0usize;
    for (origin, cnt) in meta {
        let cnt = cnt as usize;
        out[origin as usize] = payload[off..off + cnt].to_vec();
        off += cnt;
    }
    Ok(Some(out))
}

/// Equal-count gather: each rank contributes `data`; the root receives the
/// concatenation in rank order.
pub fn gather<T: Datum>(
    tr: &impl Transport,
    data: Vec<T>,
    root: usize,
    tag: Tag,
) -> Result<Option<Vec<T>>> {
    block_inline(gather_async(tr, data, root, tag))
}

/// [`gather`] as a maybe-async core (see the module docs).
pub async fn gather_async<T: Datum>(
    tr: &impl Transport,
    data: Vec<T>,
    root: usize,
    tag: Tag,
) -> Result<Option<Vec<T>>> {
    Ok(gatherv_async(tr, data, root, tag)
        .await?
        .map(|per_rank| per_rank.into_iter().flatten().collect()))
}

/// All-gather of one element per rank (gather to 0 + broadcast).
pub fn allgather1<T: Datum>(tr: &impl Transport, item: T, tag: Tag) -> Result<Vec<T>> {
    block_inline(allgather1_async(tr, item, tag))
}

/// [`allgather1`] as a maybe-async core (see the module docs).
pub async fn allgather1_async<T: Datum>(tr: &impl Transport, item: T, tag: Tag) -> Result<Vec<T>> {
    let _span = obs::span(tr.state(), OpClass::Gather, "allgather1");
    let mut all = gather_async(tr, vec![item], 0, tag)
        .await?
        .unwrap_or_default();
    bcast_async(tr, &mut all, 0, tag).await?;
    Ok(all)
}

/// Dissemination barrier: ⌈log₂ p⌉ rounds, no data.
pub fn barrier(tr: &impl Transport, tag: Tag) -> Result<()> {
    block_inline(barrier_async(tr, tag))
}

/// [`barrier`] as a maybe-async core (see the module docs).
pub async fn barrier_async(tr: &impl Transport, tag: Tag) -> Result<()> {
    let p = tr.size();
    let r = tr.rank();
    let _span = obs::span(tr.state(), OpClass::Barrier, "barrier");
    let mut d = 1usize;
    while d < p {
        tr.send_vec::<u8>(Vec::new(), (r + d) % p, tag)?;
        recv_async::<u8, _>(tr, Src::Rank((r + p - d) % p), tag).await?;
        d <<= 1;
    }
    Ok(())
}

/// Direct (single-phase) personalized all-to-all with variable counts.
/// `send[i]` goes to rank `i`; returns the vector received from each rank.
pub fn alltoallv<T: Datum>(
    tr: &impl Transport,
    send: Vec<Vec<T>>,
    tag: Tag,
) -> Result<Vec<Vec<T>>> {
    block_inline(alltoallv_async(tr, send, tag))
}

/// [`alltoallv`] as a maybe-async core (see the module docs).
pub async fn alltoallv_async<T: Datum>(
    tr: &impl Transport,
    send: Vec<Vec<T>>,
    tag: Tag,
) -> Result<Vec<Vec<T>>> {
    let p = tr.size();
    let r = tr.rank();
    let _span = obs::span(tr.state(), OpClass::Other, "alltoallv");
    assert_eq!(send.len(), p, "alltoallv needs one bucket per rank");
    let mut out: Vec<Vec<T>> = (0..p).map(|_| Vec::new()).collect();
    for (i, bucket) in send.into_iter().enumerate() {
        if i == r {
            out[r] = bucket;
        } else {
            tr.send_vec(bucket, i, tag)?;
        }
    }
    // Indexed loop, not `iter_mut`: an `&mut` borrow of `out` must not be
    // held across the `.await`.
    #[allow(clippy::needless_range_loop)]
    for i in 0..p {
        if i != r {
            let (v, _) = recv_async::<T, _>(tr, Src::Rank(i), tag).await?;
            out[i] = v;
        }
    }
    Ok(out)
}

/// Binomial-tree scatter of variable-size blocks: the root provides one
/// vector per rank; every rank receives its block. The inverse of
/// [`gatherv`], with the same two-message-per-edge framing
/// (tags `tag` and `tag + 1`).
pub fn scatterv<T: Datum>(
    tr: &impl Transport,
    blocks: Option<Vec<Vec<T>>>,
    root: usize,
    tag: Tag,
) -> Result<Vec<T>> {
    block_inline(scatterv_async(tr, blocks, root, tag))
}

/// [`scatterv`] as a maybe-async core (see the module docs).
pub async fn scatterv_async<T: Datum>(
    tr: &impl Transport,
    blocks: Option<Vec<Vec<T>>>,
    root: usize,
    tag: Tag,
) -> Result<Vec<T>> {
    let p = tr.size();
    let r = tr.rank();
    tr.check_rank(root)?;
    let _span = obs::span(tr.state(), OpClass::Other, "scatterv");
    if p == 1 {
        let mut blocks = blocks.expect("root provides blocks");
        return Ok(blocks.swap_remove(0));
    }
    let rel = (r + p - root) % p;
    // Receive my bundle (all blocks for my subtree) from the parent, or
    // start with everything at the root.
    let (mut meta, mut payload): (Vec<(u64, u64)>, Vec<T>) = if rel == 0 {
        let blocks = blocks.expect("root provides blocks");
        assert_eq!(blocks.len(), p, "scatterv needs one block per rank");
        let meta = blocks
            .iter()
            .enumerate()
            .map(|(i, b)| (i as u64, b.len() as u64))
            .collect();
        (meta, blocks.into_iter().flatten().collect())
    } else {
        let mut mask = 1usize;
        loop {
            if rel & mask != 0 {
                let src = (rel - mask + root) % p;
                let (m, _) = recv_async::<(u64, u64), _>(tr, Src::Rank(src), tag).await?;
                let (d, _) = recv_async::<T, _>(tr, Src::Rank(src), tag + 1).await?;
                break (m, d);
            }
            mask <<= 1;
        }
    };
    // Forward each child's subtree share; keep my own block.
    let top = p.next_power_of_two();
    let mut m = if rel == 0 {
        top >> 1
    } else {
        (rel & rel.wrapping_neg()) >> 1
    };
    while m > 0 {
        let child_rel = rel + m;
        if child_rel < p {
            // The child's subtree covers relative ranks [child_rel, child_rel + m).
            let child_set: Vec<usize> = (child_rel..(child_rel + m).min(p))
                .map(|cr| (cr + root) % p)
                .collect();
            let mut c_meta = Vec::new();
            let mut c_payload = Vec::new();
            let mut k_meta = Vec::new();
            let mut k_payload = Vec::new();
            let mut off = 0usize;
            for &(origin, cnt) in &meta {
                let cnt = cnt as usize;
                let slice = &payload[off..off + cnt];
                if child_set.contains(&(origin as usize)) {
                    c_meta.push((origin, cnt as u64));
                    c_payload.extend_from_slice(slice);
                } else {
                    k_meta.push((origin, cnt as u64));
                    k_payload.extend_from_slice(slice);
                }
                off += cnt;
            }
            meta = k_meta;
            payload = k_payload;
            tr.send_vec(c_meta, (child_rel + root) % p, tag)?;
            tr.send_vec(c_payload, (child_rel + root) % p, tag + 1)?;
        }
        m >>= 1;
    }
    // What remains is exactly my block.
    debug_assert_eq!(meta.len(), 1);
    debug_assert_eq!(meta[0].0 as usize, r);
    Ok(payload)
}

/// Equal-count scatter: the root's `data` is split into `p` equal blocks.
pub fn scatter<T: Datum>(
    tr: &impl Transport,
    data: Option<Vec<T>>,
    root: usize,
    tag: Tag,
) -> Result<Vec<T>> {
    block_inline(scatter_async(tr, data, root, tag))
}

/// [`scatter`] as a maybe-async core (see the module docs).
pub async fn scatter_async<T: Datum>(
    tr: &impl Transport,
    data: Option<Vec<T>>,
    root: usize,
    tag: Tag,
) -> Result<Vec<T>> {
    let p = tr.size();
    let blocks = data.map(|d| {
        assert!(d.len() % p == 0, "scatter needs count divisible by p");
        let each = d.len() / p;
        d.chunks(each).map(<[T]>::to_vec).collect::<Vec<_>>()
    });
    scatterv_async(tr, blocks, root, tag).await
}

/// Fixed-size personalized all-to-all: `send[i]` (all equal length) goes
/// to rank `i`.
pub fn alltoall<T: Datum>(tr: &impl Transport, send: Vec<Vec<T>>, tag: Tag) -> Result<Vec<Vec<T>>> {
    block_inline(alltoall_async(tr, send, tag))
}

/// [`alltoall`] as a maybe-async core (see the module docs).
pub async fn alltoall_async<T: Datum>(
    tr: &impl Transport,
    send: Vec<Vec<T>>,
    tag: Tag,
) -> Result<Vec<Vec<T>>> {
    debug_assert!(send.windows(2).all(|w| w[0].len() == w[1].len()));
    alltoallv_async(tr, send, tag).await
}

/// Variable-count all-gather: every rank contributes `data`, every rank
/// receives all contributions indexed by source rank (gatherv + bcast of
/// the flattened bundle).
pub fn allgatherv<T: Datum>(tr: &impl Transport, data: Vec<T>, tag: Tag) -> Result<Vec<Vec<T>>> {
    block_inline(allgatherv_async(tr, data, tag))
}

/// [`allgatherv`] as a maybe-async core (see the module docs).
pub async fn allgatherv_async<T: Datum>(
    tr: &impl Transport,
    data: Vec<T>,
    tag: Tag,
) -> Result<Vec<Vec<T>>> {
    let p = tr.size();
    let _span = obs::span(tr.state(), OpClass::Gather, "allgatherv");
    let gathered = gatherv_async(tr, data, 0, tag).await?;
    let (mut counts, mut flat): (Vec<u64>, Vec<T>) = match gathered {
        Some(per_rank) => (
            per_rank.iter().map(|v| v.len() as u64).collect(),
            per_rank.into_iter().flatten().collect(),
        ),
        None => (Vec::new(), Vec::new()),
    };
    bcast_async(tr, &mut counts, 0, tag + 2).await?;
    bcast_async(tr, &mut flat, 0, tag + 3).await?;
    let mut out = Vec::with_capacity(p);
    let mut off = 0usize;
    for c in counts {
        let c = c as usize;
        out.push(flat[off..off + c].to_vec());
        off += c;
    }
    Ok(out)
}
