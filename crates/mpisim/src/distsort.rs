//! Shared distributed-sorting building blocks.
//!
//! The sample-sort machinery was born in the `jquick` crate (single-level
//! sample sort, staged exchanges). The distributed-sort implementation of
//! `MPI_Comm_split` ([`crate::comm::Comm::split`]) needs the same two
//! generic pieces — splitter selection and run-length position encoding —
//! but `mpisim` cannot depend on `jquick` (the dependency points the other
//! way), so they live here and `jquick` re-exports them.
//!
//! * [`select_splitters`] — gather a sample to rank 0, sort it, pick
//!   `parts - 1` evenly spaced splitters, and broadcast them: the splitter
//!   step of every single-level sample sort.
//! * [`bucket_of`] — binary-search an element into the bucket its splitters
//!   define.
//! * [`encode_runs`] / [`decode_runs`] — the staged exchange's wire format:
//!   position-tagged elements collapse into `(first_pos, len)` run headers
//!   plus a position-sorted value vector, halving the bytes of the naive
//!   `(value, position)` pair encoding whenever runs are long.

use crate::datum::{Datum, SortKey};
use crate::error::Result;
use crate::msg::Tag;
use crate::transport::Transport;

/// Gather every rank's `sample` contribution to rank 0, sort the union,
/// pick `parts - 1` evenly spaced splitters, and broadcast them to all
/// ranks. Claims tags `tag` (gatherv metadata), `tag + 1` (gatherv
/// payload), and `tag + 2` (broadcast).
///
/// Rank 0 is charged `4` compute units per gathered sample for the local
/// sort (the constant the jquick sample sort always used). Returns an
/// empty splitter vector — one bucket — when the union is empty or
/// `parts <= 1`.
pub fn select_splitters<T: SortKey + Datum>(
    tr: &impl Transport,
    sample: Vec<T>,
    parts: usize,
    tag: Tag,
) -> Result<Vec<T>> {
    crate::sched::poll::block_inline(select_splitters_async(tr, sample, parts, tag))
}

/// [`select_splitters`] as a maybe-async core (see [`crate::coll`]'s module
/// docs for the maybe-async contract).
pub async fn select_splitters_async<T: SortKey + Datum>(
    tr: &impl Transport,
    sample: Vec<T>,
    parts: usize,
    tag: Tag,
) -> Result<Vec<T>> {
    let gathered = crate::coll::gatherv_async(tr, sample, 0, tag).await?;
    let mut splitters: Vec<T> = match gathered {
        Some(per_rank) => {
            let mut all: Vec<T> = per_rank.into_iter().flatten().collect();
            tr.charge_compute(all.len() * 4);
            all.sort_by(T::cmp_key);
            if all.is_empty() || parts <= 1 {
                Vec::new()
            } else {
                (1..parts).map(|i| all[i * all.len() / parts]).collect()
            }
        }
        None => Vec::new(),
    };
    crate::coll::bcast_async(tr, &mut splitters, 0, tag + 2).await?;
    Ok(splitters)
}

/// The bucket index of `x` among the `splitters.len() + 1` buckets the
/// splitters define: bucket `i` holds the elements between splitter `i-1`
/// (exclusive) and splitter `i` (inclusive).
pub fn bucket_of<T: SortKey>(splitters: &[T], x: &T) -> usize {
    splitters.partition_point(|s| s.cmp_key(x).is_lt())
}

/// Run-length-encode position-tagged elements for a staged exchange's wire
/// format. `tagged` **must be sorted by position**; consecutive positions
/// collapse into one `(first_pos, len)` header, and the values ship
/// position-sorted in a separate plain `Vec<T>`. Compared to a
/// `Vec<(T, u64)>` pair encoding (16 bytes per `u64` element), this costs
/// `8·n + 16·runs` bytes — **half** whenever runs are long, which they are
/// by construction when each process ships a handful of contiguous
/// partition chunks per round. Headers and values travel as two messages
/// (payloads are typed, not serialized), so a non-empty edge pays one
/// extra α; empty edges elide the values frame and cost one α as before.
pub fn encode_runs<T: SortKey>(tagged: Vec<(T, u64)>) -> (Vec<(u64, u64)>, Vec<T>) {
    // Both output buffers come from (and the input returns to) the payload
    // pool, so a steady-state exchange round encodes without allocating.
    let mut runs: Vec<(u64, u64)> = crate::pool::take_vec(4);
    let mut vals: Vec<T> = crate::pool::take_vec(tagged.len());
    for &(x, pos) in &tagged {
        match runs.last_mut() {
            Some((first, len)) if *first + *len == pos => *len += 1,
            _ => runs.push((pos, 1)),
        }
        vals.push(x);
    }
    crate::pool::recycle_vec(tagged);
    (runs, vals)
}

/// Inverse of [`encode_runs`]: expand `(first_pos, len)` headers and the
/// position-sorted values back into `(value, position)` pairs.
///
/// # Panics
/// If the header lengths do not sum to `vals.len()` (a framing bug).
pub fn decode_runs<T: SortKey>(runs: &[(u64, u64)], vals: Vec<T>) -> Vec<(T, u64)> {
    let total: u64 = runs.iter().map(|&(_, len)| len).sum();
    assert_eq!(
        total as usize,
        vals.len(),
        "staged-exchange framing mismatch"
    );
    let mut out = crate::pool::take_vec::<(T, u64)>(vals.len());
    let mut i = 0;
    for &(first, len) in runs {
        for k in 0..len {
            out.push((vals[i], first + k));
            i += 1;
        }
    }
    crate::pool::recycle_vec(vals);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::universe::Universe;

    #[test]
    fn bucket_of_partitions_value_space() {
        let splitters = [10u64, 20, 30];
        assert_eq!(bucket_of(&splitters, &5), 0);
        assert_eq!(bucket_of(&splitters, &10), 0); // splitter goes left
        assert_eq!(bucket_of(&splitters, &11), 1);
        assert_eq!(bucket_of(&splitters, &30), 2);
        assert_eq!(bucket_of(&splitters, &31), 3);
        assert_eq!(bucket_of::<u64>(&[], &7), 0);
    }

    #[test]
    fn splitters_are_sorted_and_agreed() {
        let res = Universe::run_default(6, |env| {
            let w = &env.world;
            use crate::transport::Transport;
            // Each rank contributes two deterministic samples.
            let r = w.rank() as u64;
            select_splitters(w, vec![r * 10, r * 10 + 5], 4, 600).unwrap()
        });
        let first = &res.per_rank[0];
        assert_eq!(first.len(), 3);
        assert!(first.windows(2).all(|w| w[0] <= w[1]));
        for s in &res.per_rank {
            assert_eq!(s, first, "all ranks must agree on the splitters");
        }
    }

    #[test]
    fn empty_sample_means_one_bucket() {
        let res = Universe::run_default(3, |env| {
            select_splitters::<u64>(&env.world, Vec::new(), 8, 600).unwrap()
        });
        for s in res.per_rank {
            assert!(s.is_empty());
        }
    }

    #[test]
    fn runs_roundtrip_and_compress() {
        // Two contiguous chunks and one stray element.
        let tagged: Vec<(u64, u64)> = (100..180u64)
            .map(|p| (p * 3, p))
            .chain((500..520u64).map(|p| (p * 3, p)))
            .chain(std::iter::once((9u64, 900u64)))
            .collect();
        let n = tagged.len();
        let (runs, vals) = encode_runs(tagged.clone());
        assert_eq!(runs, vec![(100, 80), (500, 20), (900, 1)]);
        assert_eq!(vals.len(), n);
        assert_eq!(decode_runs(&runs, vals.clone()), tagged);
        // Wire bytes: pairs shipped 16·n; runs ship 8·n + 16·runs.
        let pair_bytes = n * std::mem::size_of::<(u64, u64)>();
        let run_bytes = vals.len() * 8 + runs.len() * 16;
        assert!(
            run_bytes * 100 <= pair_bytes * 53,
            "run encoding must roughly halve staged bytes: {run_bytes} vs {pair_bytes}"
        );
    }

    #[test]
    fn runs_empty_and_singletons() {
        let (runs, vals) = encode_runs::<u64>(Vec::new());
        assert!(runs.is_empty() && vals.is_empty());
        assert_eq!(decode_runs::<u64>(&runs, vals), Vec::new());
        // Fully scattered positions degrade to one run per element (worst
        // case: same bytes as the pair encoding, never more).
        let tagged: Vec<(u64, u64)> = (0..10u64).map(|p| (p, p * 2)).collect();
        let (runs, vals) = encode_runs(tagged.clone());
        assert_eq!(runs.len(), 10);
        assert_eq!(decode_runs(&runs, vals), tagged);
    }
}
