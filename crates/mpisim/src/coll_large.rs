//! Large-input collective algorithms (paper §V-D: "It is easy to extend
//! our library by additional collective operations, e.g., for large input
//! sizes", citing Sanders/Speck/Träff's full-bandwidth algorithms \[7\]).
//!
//! The binomial algorithms in [`crate::coll`] are optimal for small inputs
//! (O(α log p) startups) but move β·l·log p volume on the bottleneck path.
//! This module provides the classic full-bandwidth alternatives:
//!
//! * [`bcast_large`] — van-de-Geijn broadcast: binomial *scatter* of
//!   segments followed by a ring all-gather. Bottleneck volume ≈ 2·l·β
//!   plus O(α·(p + log p)) startups: wins once `l·β ≫ p·α`.
//! * [`reduce_large`] — reduce-scatter (recursive halving) followed by a
//!   binomial gather of the owned segments: ≈ 2·l·β volume.
//! * [`bcast_auto`] / [`reduce_auto`] — pick the algorithm by message size
//!   against the α/β crossover, like production MPI implementations do.

use crate::datum::Datum;
use crate::error::Result;
use crate::msg::Tag;
use crate::transport::{Src, Transport};

/// Crossover: below this many bytes the binomial algorithms win.
/// Derived from `2·l·β + p·α < log p · (α + l·β)` at the default model;
/// kept simple and documented rather than tuned per machine.
pub fn large_threshold_bytes(p: usize, alpha_ns: u64, beta_ns_per_byte: f64) -> usize {
    if p < 4 || beta_ns_per_byte <= 0.0 {
        return usize::MAX;
    }
    let log_p = (usize::BITS - (p - 1).leading_zeros()) as f64;
    // (log p - 2) · l·β  >  (p - log p) · α   =>   l > (p-log p)·α / ((log p-2)·β)
    let denom = (log_p - 2.0) * beta_ns_per_byte;
    if denom <= 0.0 {
        return usize::MAX;
    }
    (((p as f64 - log_p) * alpha_ns as f64) / denom) as usize
}

/// Split `len` into `parts` contiguous segments (first `len % parts` get
/// one extra).
fn segment(len: usize, parts: usize, i: usize) -> (usize, usize) {
    let base = len / parts;
    let rem = len % parts;
    let start = i * base + i.min(rem);
    let sz = base + usize::from(i < rem);
    (start, sz)
}

/// Van-de-Geijn broadcast: scatter + ring allgather. Falls back to the
/// binomial broadcast for tiny payloads or p < 2. Uses tags `tag`/`tag+1`.
pub fn bcast_large<T: Datum>(
    tr: &impl Transport,
    data: &mut Vec<T>,
    root: usize,
    tag: Tag,
) -> Result<()> {
    let p = tr.size();
    let r = tr.rank();
    tr.check_rank(root)?;
    if p == 1 {
        return Ok(());
    }
    // Everyone needs the length to size segments; the root's count is
    // metadata in real MPI (count argument) — model it the same way by
    // broadcasting the length binomially (one word).
    let mut len_msg = vec![data.len() as u64];
    crate::coll::bcast(tr, &mut len_msg, root, tag)?;
    let len = len_msg[0] as usize;
    if len < p {
        // Degenerate segments; binomial handles it.
        return crate::coll::bcast(tr, data, root, tag + 1);
    }
    let rel = (r + p - root) % p;

    // Phase 1: binomial scatter. Each node receives the range of segments
    // it is responsible for distributing and keeps segment `rel`.
    // The root starts owning all segments [0, p).
    let mut my_range = (0usize, p); // segment index range [lo, hi)
    let mut my_part: Vec<T>;
    if rel == 0 {
        my_part = std::mem::take(data);
    } else {
        // Receive my segment range from the parent.
        let (v, _) = tr.recv::<T>(Src::Any, tag + 1)?;
        my_part = v;
        // Reconstruct my range: parent sent [rel, parent_hi).
        let lsb = rel & rel.wrapping_neg();
        my_range = (rel, (rel + lsb).min(p));
    }
    // Forward the upper half of my range down the binomial tree.
    let top = p.next_power_of_two();
    let mut m = if rel == 0 {
        top >> 1
    } else {
        (rel & rel.wrapping_neg()) >> 1
    };
    while m > 0 {
        let child_lo = my_range.0 + m;
        if child_lo < my_range.1 {
            let child = (rel + m + root) % p;
            // Elements of segments [child_lo, my_range.1).
            let (e_lo, _) = segment(len, p, child_lo);
            let seg_end = if my_range.1 == p {
                len
            } else {
                segment(len, p, my_range.1).0
            };
            let (base_lo, _) = segment(len, p, my_range.0);
            let send_slice = my_part[e_lo - base_lo..seg_end - base_lo].to_vec();
            my_part.truncate(e_lo - base_lo);
            tr.send_vec(send_slice, child, tag + 1)?;
            my_range.1 = child_lo;
        }
        m >>= 1;
    }
    debug_assert_eq!(
        my_range,
        (rel, rel + 1).min((rel, p)),
        "each node ends with one segment"
    );

    // Phase 2: ring allgather of the p segments.
    let mut segments: Vec<Option<Vec<T>>> = (0..p).map(|_| None).collect();
    segments[rel] = Some(my_part);
    let next = (rel + 1) % p;
    let prev = (rel + p - 1) % p;
    let mut have = rel; // segment index I most recently obtained
    for _ in 0..p - 1 {
        let out = segments[have].clone().expect("segment present");
        tr.send_vec(out, (next + root) % p, tag + 2)?;
        let (v, _) = tr.recv::<T>(Src::Rank((prev + root) % p), tag + 2)?;
        have = (have + p - 1) % p;
        segments[have] = Some(v);
    }

    // Reassemble.
    let mut out = Vec::with_capacity(len);
    for s in segments {
        out.extend(s.expect("all segments gathered"));
    }
    *data = out;
    Ok(())
}

/// Reduce via recursive-halving reduce-scatter + binomial gather to root.
/// Requires a commutative, associative `op`. Uses tags `tag`..`tag+2`.
pub fn reduce_large<T: Datum>(
    tr: &impl Transport,
    data: &[T],
    root: usize,
    tag: Tag,
    op: impl Fn(&T, &T) -> T,
) -> Result<Option<Vec<T>>> {
    let p = tr.size();
    let r = tr.rank();
    tr.check_rank(root)?;
    if p == 1 {
        return Ok(Some(data.to_vec()));
    }
    let len = data.len();
    if !p.is_power_of_two() || len < p {
        // Recursive halving needs a power of two; fall back otherwise.
        return crate::coll::reduce(tr, data, root, tag, op);
    }

    // Phase 1: reduce-scatter by recursive halving. After round k, each
    // process holds the partial reduction of a 1/2^k slice.
    let mut lo = 0usize;
    let mut hi = len;
    let mut buf = data.to_vec(); // working copy of [lo, hi)
    let mut group = p; // current group size
    while group > 1 {
        let half = group / 2;
        let in_low = (r % group) < half;
        let partner = if in_low { r + half } else { r - half };
        let mid = lo + (hi - lo) / 2;
        // Send the half I am NOT keeping; receive the half I keep.
        let (keep_range, send_range) = if in_low {
            ((lo, mid), (mid, hi))
        } else {
            ((mid, hi), (lo, mid))
        };
        let send_part = buf[send_range.0 - lo..send_range.1 - lo].to_vec();
        tr.send_vec(send_part, partner, tag)?;
        let (v, _) = tr.recv::<T>(Src::Rank(partner), tag)?;
        let mut kept: Vec<T> = buf[keep_range.0 - lo..keep_range.1 - lo].to_vec();
        for (a, b) in kept.iter_mut().zip(v.iter()) {
            *a = op(a, b);
        }
        tr.charge_compute(kept.len());
        buf = kept;
        lo = keep_range.0;
        hi = keep_range.1;
        group = half;
    }

    // Phase 2: gather the slices to the root (variable sizes -> gatherv),
    // annotated with their offsets for reassembly.
    let gathered = crate::coll::gatherv(tr, buf, root, tag + 1)?;
    let offsets = crate::coll::gather(tr, vec![lo as u64], root, tag + 3)?;
    match (gathered, offsets) {
        (Some(parts), Some(offs)) => {
            let mut out = vec![parts.iter().flatten().next().copied().expect("nonempty"); len];
            for (part, off) in parts.into_iter().zip(offs) {
                let off = off as usize;
                out[off..off + part.len()].copy_from_slice(&part);
            }
            Ok(Some(out))
        }
        _ => Ok(None),
    }
}

/// Size-adaptive broadcast.
pub fn bcast_auto<T: Datum>(
    tr: &impl Transport,
    data: &mut Vec<T>,
    root: usize,
    tag: Tag,
) -> Result<()> {
    let model = &tr.state().router.cost;
    let threshold =
        large_threshold_bytes(tr.size(), model.alpha.as_nanos(), model.beta_ns_per_byte);
    // All ranks must agree on the algorithm: the count is an interface
    // contract in MPI (same on all ranks), so agree on the root's count
    // via a tiny broadcast only when sizes could differ.
    let mut len_msg = vec![data.len() as u64];
    crate::coll::bcast(tr, &mut len_msg, root, tag)?;
    if (len_msg[0] as usize) * T::width() >= threshold {
        bcast_large(tr, data, root, tag + 1)
    } else {
        crate::coll::bcast(tr, data, root, tag + 4)
    }
}

/// Size-adaptive reduction.
pub fn reduce_auto<T: Datum>(
    tr: &impl Transport,
    data: &[T],
    root: usize,
    tag: Tag,
    op: impl Fn(&T, &T) -> T,
) -> Result<Option<Vec<T>>> {
    let model = &tr.state().router.cost;
    let threshold =
        large_threshold_bytes(tr.size(), model.alpha.as_nanos(), model.beta_ns_per_byte);
    if data.len() * T::width() >= threshold {
        reduce_large(tr, data, root, tag, op)
    } else {
        crate::coll::reduce(tr, data, root, tag, op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datum::ops;
    use crate::universe::Universe;
    use crate::Time;

    #[test]
    fn segments_partition_exactly() {
        for (len, parts) in [(10usize, 3usize), (16, 4), (7, 7), (100, 9)] {
            let mut covered = 0;
            for i in 0..parts {
                let (start, sz) = segment(len, parts, i);
                assert_eq!(start, covered);
                covered += sz;
            }
            assert_eq!(covered, len);
        }
    }

    #[test]
    fn bcast_large_matches_binomial() {
        for p in [2usize, 3, 4, 5, 8, 13] {
            for len in [p, 3 * p + 1, 64 * p] {
                for root in [0, p - 1] {
                    let res = Universe::run_default(p, move |env| {
                        let w = &env.world;
                        let mut data = if w.rank() == root {
                            (0..len as u64).collect()
                        } else {
                            Vec::new()
                        };
                        bcast_large(w, &mut data, root, 700).unwrap();
                        data
                    });
                    let expected: Vec<u64> = (0..len as u64).collect();
                    for v in res.per_rank {
                        assert_eq!(v, expected, "p={p} len={len} root={root}");
                    }
                }
            }
        }
    }

    #[test]
    fn bcast_large_beats_binomial_for_big_payloads() {
        let p = 16;
        let len = 1 << 16; // 512 KiB of u64
        let time_of = |large: bool| {
            let res = Universe::run_default(p, move |env| {
                let w = &env.world;
                let mut data = if w.rank() == 0 {
                    vec![7u64; len]
                } else {
                    Vec::new()
                };
                let t0 = env.now();
                if large {
                    bcast_large(w, &mut data, 0, 700).unwrap();
                } else {
                    crate::coll::bcast(w, &mut data, 0, 700).unwrap();
                }
                env.now() - t0
            });
            res.per_rank.into_iter().max().unwrap()
        };
        let binomial = time_of(false);
        let vdg = time_of(true);
        assert!(
            vdg.as_nanos() * 3 < binomial.as_nanos() * 2,
            "scatter-allgather should win at this size: binomial={binomial} vdg={vdg}"
        );
    }

    #[test]
    fn binomial_beats_bcast_large_for_small_payloads() {
        let p = 16;
        let time_of = |large: bool| {
            let res = Universe::run_default(p, move |env| {
                let w = &env.world;
                let mut data = if w.rank() == 0 {
                    vec![7u64; 16]
                } else {
                    Vec::new()
                };
                let t0 = env.now();
                if large {
                    bcast_large(w, &mut data, 0, 700).unwrap();
                } else {
                    crate::coll::bcast(w, &mut data, 0, 700).unwrap();
                }
                env.now() - t0
            });
            res.per_rank.into_iter().max().unwrap()
        };
        assert!(time_of(false) < time_of(true));
    }

    #[test]
    fn reduce_large_matches_reference() {
        for p in [2usize, 4, 8] {
            let len = 8 * p;
            let res = Universe::run_default(p, move |env| {
                let w = &env.world;
                let data: Vec<u64> = (0..len as u64).map(|i| i + w.rank() as u64).collect();
                reduce_large(w, &data, 0, 700, ops::sum::<u64>()).unwrap()
            });
            let expected: Vec<u64> = (0..len as u64)
                .map(|i| (0..p as u64).map(|r| i + r).sum())
                .collect();
            assert_eq!(res.per_rank[0], Some(expected), "p={p}");
            for v in &res.per_rank[1..] {
                assert_eq!(*v, None);
            }
        }
    }

    #[test]
    fn reduce_large_falls_back_for_odd_p() {
        let res = Universe::run_default(5, |env| {
            let w = &env.world;
            reduce_large(w, &[1u64, 2], 0, 700, ops::sum::<u64>()).unwrap()
        });
        assert_eq!(res.per_rank[0], Some(vec![5, 10]));
    }

    #[test]
    fn auto_variants_pick_correctly_and_stay_correct() {
        let p = 8;
        for len in [4usize, 1 << 15] {
            let res = Universe::run_default(p, move |env| {
                let w = &env.world;
                let mut b = if w.rank() == 3 {
                    vec![9u64; len]
                } else {
                    Vec::new()
                };
                bcast_auto(w, &mut b, 3, 700).unwrap();
                let r = reduce_auto(w, &vec![1u64; len], 0, 720, ops::sum::<u64>()).unwrap();
                (b.len(), b[0], r.map(|v| v[0]))
            });
            for (rank, (bl, b0, r)) in res.per_rank.into_iter().enumerate() {
                assert_eq!((bl, b0), (len, 9), "len={len}");
                if rank == 0 {
                    assert_eq!(r, Some(p as u64));
                }
            }
        }
    }

    #[test]
    fn threshold_is_sane() {
        let t = large_threshold_bytes(128, Time::from_micros(10).as_nanos(), 1.0);
        // With α = 10 µs, β = 1 ns/B, p = 128: roughly (128-7)·10000/5 ≈ 242 KB.
        assert!(t > 64 * 1024 && t < 1 << 20, "threshold {t}");
        assert_eq!(large_threshold_bytes(2, 10_000, 1.0), usize::MAX);
    }
}
