//! The α–β cost model and vendor profiles.
//!
//! `CostModel` describes the *machine* (network latency/bandwidth and local
//! per-operation overheads). `VendorProfile` describes an *MPI
//! implementation* running on that machine: how much its collectives cost on
//! top of raw point-to-point transfers, and which algorithm its communicator
//! construction uses. The paper benchmarks against Intel MPI and IBM MPI,
//! whose observed pathologies (Fig. 4, 5, 8, 9) the two non-neutral profiles
//! model; see DESIGN.md §1 for the substitution argument.

use crate::time::Time;

/// Machine-level communication costs (α–β model, §II of the paper).
#[derive(Clone, Debug)]
pub struct CostModel {
    /// Message startup overhead α.
    pub alpha: Time,
    /// Per-byte transfer time β (the paper's β is per machine word; one
    /// element of type `T` costs `size_of::<T>() * beta`).
    pub beta_ns_per_byte: f64,
    /// Sender-side CPU overhead charged to the sender's clock per message.
    pub send_overhead: Time,
    /// Receiver-side CPU overhead charged on message completion.
    pub recv_overhead: Time,
    /// Messages larger than this use a rendezvous protocol with an extra
    /// round trip (adds `rendezvous_penalty` to the arrival time).
    pub eager_threshold: usize,
    /// Extra arrival delay for messages above [`CostModel::eager_threshold`].
    pub rendezvous_penalty: Time,
    /// Per-element cost of local computation helpers (`charge_compute`).
    pub compute_ns_per_elem: f64,
}

impl CostModel {
    /// Constants loosely calibrated to a SuperMUC-like fat-tree InfiniBand
    /// system. Absolute numbers are not claimed to match the paper; shapes
    /// are (see EXPERIMENTS.md).
    pub fn supermuc_like() -> CostModel {
        CostModel {
            alpha: Time::from_micros(10),
            beta_ns_per_byte: 1.0,
            send_overhead: Time::from_nanos(500),
            recv_overhead: Time::from_nanos(500),
            eager_threshold: 64 * 1024,
            rendezvous_penalty: Time::from_micros(20),
            compute_ns_per_elem: 1.0,
        }
    }

    /// Point-to-point transfer time of `bytes` payload bytes, excluding
    /// sender/receiver CPU overheads: `α + bytes·β` plus the rendezvous
    /// penalty for large messages.
    pub fn transfer_time(&self, bytes: usize) -> Time {
        let wire = Time((bytes as f64 * self.beta_ns_per_byte).round() as u64);
        let mut t = self.alpha + wire;
        if bytes > self.eager_threshold {
            t += self.rendezvous_penalty;
        }
        t
    }

    /// Scaled transfer time used by vendor-internal collective traffic.
    pub fn transfer_time_scaled(&self, bytes: usize, scale: CostScale) -> Time {
        let wire = Time((bytes as f64 * self.beta_ns_per_byte * scale.beta_factor).round() as u64);
        let mut t = self.alpha.scale(scale.alpha_factor) + wire;
        if bytes > self.eager_threshold {
            t += self.rendezvous_penalty.scale(scale.beta_factor);
        }
        t
    }

    /// Virtual cost of a local computation touching `elems` elements.
    pub fn compute_cost(&self, elems: usize) -> Time {
        Time((elems as f64 * self.compute_ns_per_elem).round() as u64)
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::supermuc_like()
    }
}

/// Multiplicative factors applied to α and β of individual messages.
/// `CostScale::NEUTRAL` is raw point-to-point (what RBC uses).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostScale {
    /// Multiplier on the startup latency α.
    pub alpha_factor: f64,
    /// Multiplier on the per-byte cost β (and the rendezvous penalty).
    pub beta_factor: f64,
}

impl CostScale {
    /// No scaling: raw point-to-point cost.
    pub const NEUTRAL: CostScale = CostScale {
        alpha_factor: 1.0,
        beta_factor: 1.0,
    };

    /// Scale α by `alpha_factor` and β by `beta_factor`.
    pub fn new(alpha_factor: f64, beta_factor: f64) -> CostScale {
        CostScale {
            alpha_factor,
            beta_factor,
        }
    }
}

/// Which algorithm a vendor's `comm_create_group` uses (drives Fig. 5).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CreateGroupAlgo {
    /// Context-ID-mask all-reduce over the new group plus explicit O(g)
    /// group-array construction (MPICH / Open MPI style; the paper observes
    /// Intel MPI's creation time grows linearly with the group size).
    MaskAllreduce,
    /// Additionally serialises the agreement through a leader ring — one
    /// α-latency hop per member. Models IBM MPI's `MPI_Comm_create_group`
    /// being "disproportionately slow ... by multiple orders of magnitude"
    /// (paper §VIII-B, Fig. 5).
    LeaderRing,
}

/// Which algorithm `MPI_Comm_split` uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum SplitAlgo {
    /// Distributed sample sort of the `(color, key, rank)` triples over the
    /// parent communicator, followed by per-color-segment table
    /// construction — O(p log p) total work and O(p/groups + samples)
    /// memory per rank (what production MPICH does at scale, and the only
    /// variant the simulator can run at p = 2^15).
    #[default]
    DistributedSort,
    /// The textbook algorithm: all-gather all p `(color, key)` pairs on
    /// every rank and group locally. Θ(p) memory per rank — Θ(p²) across
    /// a simulated universe — which is why it is kept only as the
    /// correctness oracle for the distributed variant.
    Allgather,
}

/// Which algorithm the cooperative scheduler's epoch **commit** uses to
/// deliver an epoch's staged messages (see [`crate::sched`] and DESIGN.md
/// §7).
///
/// This is a *simulator* knob, not a simulated-MPI one: both variants
/// produce bit-identical simulations (delivery orders, clocks, figure
/// CSVs) for every worker count, exactly like [`SplitAlgo`] keeps the
/// all-gather split as the oracle for the distributed sort. The commit
/// itself costs no virtual time — it is the mechanism that realises the
/// α–β model's arrival order, so only its wall-clock cost differs. The
/// same worker-count invariance is what lets a fleet co-schedule
/// universes over one pool (pinning each universe's shard and merge
/// thresholds to the pool size) without perturbing any universe's
/// output — see DESIGN.md §11.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum CommitAlgo {
    /// Destination-major commit: after the global sort the entry run is
    /// partitioned into per-destination-rank segments and idle workers
    /// claim segments lock-free, pushing into disjoint mailboxes in
    /// parallel. Wake-ups are deferred and merged in global
    /// `(matchable_time, sender, seq)` order after the push barrier, so
    /// the next round's order stays a pure function of `(program, seed)`.
    #[default]
    Sharded,
    /// The original single-threaded commit: one worker pushes every
    /// staged message in global `(matchable_time, sender, seq)` order.
    /// Kept as the correctness oracle for the sharded variant.
    Serial,
}

/// Which algorithm the cooperative scheduler uses to put an epoch's staged
/// messages into commit order (see [`crate::sched`] and DESIGN.md §10).
///
/// Like [`CommitAlgo`], this is a *simulator* knob, not a simulated-MPI
/// one: both variants produce bit-identical simulations (delivery orders,
/// clocks, traces, figure CSVs) for every worker count and commit
/// algorithm. Per-task staging buffers are already sorted by construction,
/// so ordering the epoch is a merge problem; the global sort is kept as
/// the correctness oracle for the merge.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum SortAlgo {
    /// Parallel k-way merge: workers claim pre-sorted per-task runs from a
    /// `Merge` work phase (the same generation-tagged lock-free cursor as
    /// the task and commit phases) and merge them pairwise/tournament
    /// style; no Θ(m log m) single-worker stretch and no sort scratch
    /// allocation.
    #[default]
    Merge,
    /// The original single-worker commit sort (`sort_by_key` over the
    /// whole staged run). Kept as the correctness oracle for the merge.
    Sort,
}

/// An MPI implementation personality.
#[derive(Clone, Debug)]
pub struct VendorProfile {
    /// Profile name, used in benchmark output.
    pub name: &'static str,
    /// Cost scaling for traffic *inside vendor collectives* (vendor
    /// collectives do extra internal buffering/copying compared with RBC's
    /// p2p-composed binomial trees; paper Fig. 4 sees up to 16× on Iscan).
    pub coll_scale: CollScales,
    /// Multiplicative jitter on vendor-collective messages larger than
    /// `jitter_threshold` bytes; 0.0 disables. Models Intel MPI's "immense
    /// fluctuations" for large inputs (paper §VIII-C).
    pub jitter_max: f64,
    /// Payload size (bytes) above which jitter applies.
    pub jitter_threshold: usize,
    /// Jitter on *all* point-to-point traffic above `jitter_threshold` —
    /// vendor p2p fluctuations also hit RBC, which runs on the vendor's p2p
    /// layer (the paper observes JQuick-with-RBC on Intel MPI suffering the
    /// same fluctuations as native Intel runs). 0.0 disables.
    pub p2p_jitter_max: f64,
    /// Which `comm_create_group` algorithm this vendor runs (drives Fig. 5).
    pub create_group_algo: CreateGroupAlgo,
    /// Extra per-member CPU overhead inside `create_group` (only meaningful
    /// for the `LeaderRing` algorithm; models the heavy bookkeeping the
    /// paper observed in IBM MPI).
    pub create_group_member_overhead_ns: f64,
    /// Per-member cost of building the explicit rank array during
    /// communicator construction (both `split` and `create_group`).
    /// The distributed-sort split skips this charge for groups it can
    /// represent as a stride range (no array is materialised).
    pub group_build_ns_per_member: f64,
    /// Per-element·log(m) cost of the local sorts inside `comm_split`,
    /// charged on the `m` elements a rank *actually* sorts. Under
    /// [`SplitAlgo::DistributedSort`] that is each bucket leader's ≈√p
    /// triples — a measured sort+exchange cost that emerges per rank (the
    /// rank-0 splitter-sample sort is charged through the machine's
    /// generic `compute_ns_per_elem`, shared with jquick's sample sort);
    /// the legacy [`SplitAlgo::Allgather`] path sorts all p pairs on
    /// every rank and is charged accordingly.
    pub split_sort_ns: f64,
    /// Which `MPI_Comm_split` algorithm to run (see [`SplitAlgo`]).
    pub split_algo: SplitAlgo,
}

/// Per-operation-class collective scaling factors.
#[derive(Clone, Copy, Debug)]
pub struct CollScales {
    /// Scaling of broadcast-internal traffic.
    pub bcast: CostScale,
    /// Scaling of reduce/allreduce-internal traffic.
    pub reduce: CostScale,
    /// Scaling of scan/exscan-internal traffic (the paper's worst case).
    pub scan: CostScale,
    /// Scaling of gather/allgather-internal traffic.
    pub gather: CostScale,
    /// Scaling of barrier-internal traffic.
    pub barrier: CostScale,
    /// Scaling of every other collective's traffic.
    pub other: CostScale,
}

impl CollScales {
    /// All operation classes at raw point-to-point cost.
    pub const NEUTRAL: CollScales = CollScales {
        bcast: CostScale::NEUTRAL,
        reduce: CostScale::NEUTRAL,
        scan: CostScale::NEUTRAL,
        gather: CostScale::NEUTRAL,
        barrier: CostScale::NEUTRAL,
        other: CostScale::NEUTRAL,
    };
}

impl VendorProfile {
    /// A perfectly behaved MPI: collectives cost exactly what RBC's do.
    /// Useful as a control in experiments.
    pub fn neutral() -> VendorProfile {
        VendorProfile {
            name: "neutral",
            coll_scale: CollScales::NEUTRAL,
            jitter_max: 0.0,
            jitter_threshold: usize::MAX,
            p2p_jitter_max: 0.0,
            create_group_member_overhead_ns: 0.0,
            create_group_algo: CreateGroupAlgo::MaskAllreduce,
            group_build_ns_per_member: 150.0,
            split_sort_ns: 20.0,
            split_algo: SplitAlgo::DistributedSort,
        }
    }

    /// Intel-MPI-like personality: linear-in-p `comm_create_group` (explicit
    /// group representation), moderately slower vendor collectives at large
    /// messages, and strong large-message jitter.
    pub fn intel_like() -> VendorProfile {
        VendorProfile {
            name: "intel-like",
            coll_scale: CollScales {
                bcast: CostScale::new(1.2, 3.0),
                reduce: CostScale::new(1.2, 4.0),
                scan: CostScale::new(1.2, 8.0),
                gather: CostScale::new(1.2, 2.5),
                barrier: CostScale::new(1.2, 1.0),
                other: CostScale::new(1.2, 2.0),
            },
            jitter_max: 6.0,
            jitter_threshold: 8 * 1024,
            p2p_jitter_max: 2.5,
            create_group_member_overhead_ns: 0.0,
            create_group_algo: CreateGroupAlgo::MaskAllreduce,
            // Per-member cost of the explicit group representation. The
            // paper measures ~300 ns/member at p = 2^15; our sweeps stop at
            // p = 2^11, so the constant is scaled up to keep the linear
            // regime visible within the sweep (see EXPERIMENTS.md).
            group_build_ns_per_member: 2000.0,
            split_sort_ns: 20.0,
            split_algo: SplitAlgo::DistributedSort,
        }
    }

    /// IBM-MPI-like personality: `comm_create_group` serialised through a
    /// leader ring (orders of magnitude slower, Fig. 5), collectives close
    /// to RBC except scan (Fig. 4: up to 16×), no jitter.
    pub fn ibm_like() -> VendorProfile {
        VendorProfile {
            name: "ibm-like",
            coll_scale: CollScales {
                bcast: CostScale::new(1.1, 1.3),
                reduce: CostScale::new(1.1, 1.5),
                scan: CostScale::new(1.1, 12.0),
                gather: CostScale::new(1.1, 1.5),
                barrier: CostScale::new(1.1, 1.0),
                other: CostScale::new(1.1, 1.5),
            },
            jitter_max: 0.0,
            jitter_threshold: usize::MAX,
            p2p_jitter_max: 0.0,
            create_group_member_overhead_ns: 20_000.0,
            create_group_algo: CreateGroupAlgo::LeaderRing,
            group_build_ns_per_member: 3000.0,
            split_sort_ns: 20.0,
            split_algo: SplitAlgo::DistributedSort,
        }
    }
}

impl Default for VendorProfile {
    fn default() -> Self {
        VendorProfile::neutral()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_alpha_beta() {
        let m = CostModel::supermuc_like();
        // Empty message costs exactly alpha.
        assert_eq!(m.transfer_time(0), m.alpha);
        // 1000 bytes at 1 ns/byte adds 1 us.
        assert_eq!(m.transfer_time(1000), m.alpha + Time::from_micros(1));
    }

    #[test]
    fn rendezvous_kicks_in_above_threshold() {
        let m = CostModel::supermuc_like();
        let below = m.transfer_time(m.eager_threshold);
        let above = m.transfer_time(m.eager_threshold + 1);
        assert!(above > below + m.rendezvous_penalty.saturating_sub(Time(2)));
    }

    #[test]
    fn scaled_transfer() {
        let m = CostModel::supermuc_like();
        let s = CostScale::new(2.0, 3.0);
        let t = m.transfer_time_scaled(1000, s);
        assert_eq!(t, m.alpha.scale(2.0) + Time::from_nanos(3000));
        assert_eq!(
            m.transfer_time_scaled(1000, CostScale::NEUTRAL),
            m.transfer_time(1000)
        );
    }

    #[test]
    fn profiles_distinct() {
        assert_eq!(
            VendorProfile::neutral().create_group_algo,
            CreateGroupAlgo::MaskAllreduce
        );
        assert_eq!(
            VendorProfile::ibm_like().create_group_algo,
            CreateGroupAlgo::LeaderRing
        );
        assert!(VendorProfile::intel_like().jitter_max > 0.0);
        assert!(VendorProfile::ibm_like().coll_scale.scan.beta_factor > 8.0);
    }

    #[test]
    fn compute_cost_linear() {
        let m = CostModel::supermuc_like();
        assert_eq!(m.compute_cost(1000), Time::from_micros(1));
    }
}
