//! Process groups.
//!
//! A group maps communicator ranks `0..len` to *global* ranks. Two storage
//! formats are provided, mirroring the sparse-representation discussion in
//! §III of the paper (Chaarawi & Gabriel's Range Format):
//!
//! * `Repr::Range` — an arithmetic progression `first, first+stride, ...`
//!   stored in O(1) space with O(1) translation both ways;
//! * `Repr::Dense` — an explicit rank array (what MPICH builds for every
//!   communicator, and what makes native construction Ω(p)).
//!
//! `Group::from_ranks` auto-detects progressions; sub-ranging a `Range`
//! group is O(1), which is the property RBC exploits.

use std::sync::Arc;

#[derive(Clone, Debug)]
enum Repr {
    Range {
        first: usize,
        stride: usize,
        len: usize,
    },
    Dense(Arc<Vec<usize>>),
}

/// An ordered set of global ranks (`MPI_Group` analogue), stored either as
/// a strided range (O(1) operations — the representation RBC exploits) or
/// as an explicit dense rank array.
#[derive(Clone, Debug)]
pub struct Group {
    repr: Repr,
}

impl Group {
    /// The world group over `p` processes: ranks are global ranks.
    pub fn world(p: usize) -> Group {
        Group {
            repr: Repr::Range {
                first: 0,
                stride: 1,
                len: p,
            },
        }
    }

    /// A strided range of global ranks (`MPI_Group_range_incl` analogue).
    pub fn range(first: usize, stride: usize, len: usize) -> Group {
        assert!(stride >= 1, "stride must be >= 1");
        assert!(len >= 1, "empty groups are not representable");
        Group {
            repr: Repr::Range { first, stride, len },
        }
    }

    /// Build a group from an explicit list of global ranks
    /// (`MPI_Group_incl` analogue). Detects arithmetic progressions and
    /// stores them in Range format.
    pub fn from_ranks(ranks: Vec<usize>) -> Group {
        assert!(!ranks.is_empty(), "empty groups are not representable");
        if ranks.len() == 1 {
            return Group::range(ranks[0], 1, 1);
        }
        if ranks[1] > ranks[0] {
            let stride = ranks[1] - ranks[0];
            let is_prog = ranks
                .windows(2)
                .all(|w| w[1] > w[0] && w[1] - w[0] == stride);
            if is_prog {
                return Group::range(ranks[0], stride, ranks.len());
            }
        }
        Group {
            repr: Repr::Dense(Arc::new(ranks)),
        }
    }

    /// Number of member processes.
    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::Range { len, .. } => *len,
            Repr::Dense(v) => v.len(),
        }
    }

    /// Always false: empty groups are unrepresentable by construction.
    pub fn is_empty(&self) -> bool {
        false // empty groups are unrepresentable by construction
    }

    /// True if stored in the O(1) Range format.
    pub fn is_range(&self) -> bool {
        matches!(self.repr, Repr::Range { .. })
    }

    /// Group rank -> global rank.
    pub fn translate(&self, rank: usize) -> usize {
        match &self.repr {
            Repr::Range { first, stride, len } => {
                assert!(rank < *len, "rank {rank} out of range (len {len})");
                first + stride * rank
            }
            Repr::Dense(v) => v[rank],
        }
    }

    /// Global rank -> group rank, if a member.
    pub fn inverse(&self, global: usize) -> Option<usize> {
        match &self.repr {
            Repr::Range { first, stride, len } => {
                if global < *first {
                    return None;
                }
                let off = global - first;
                if !off.is_multiple_of(*stride) {
                    return None;
                }
                let r = off / stride;
                (r < *len).then_some(r)
            }
            Repr::Dense(v) => v.iter().position(|&g| g == global),
        }
    }

    /// Whether the global rank is a member.
    pub fn contains_global(&self, global: usize) -> bool {
        self.inverse(global).is_some()
    }

    /// Sub-range `first_rank..=last_rank` (in *this group's* rank space)
    /// with the given stride. O(1) when this group is in Range format —
    /// the operation underlying `rbc::Split_RBC_Comm`.
    pub fn subrange(&self, first_rank: usize, last_rank: usize, stride: usize) -> Group {
        assert!(first_rank <= last_rank && last_rank < self.len());
        assert!(stride >= 1);
        let len = (last_rank - first_rank) / stride + 1;
        match &self.repr {
            Repr::Range {
                first, stride: s0, ..
            } => Group::range(first + s0 * first_rank, s0 * stride, len),
            Repr::Dense(v) => Group::from_ranks(
                (0..len)
                    .map(|k| v[first_rank + k * stride])
                    .collect::<Vec<_>>(),
            ),
        }
    }

    /// Iterate over the global ranks of all members in rank order.
    pub fn iter_globals(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.len()).map(move |r| self.translate(r))
    }

    /// True if the two groups describe the same member list.
    pub fn same_members(&self, other: &Group) -> bool {
        self.len() == other.len() && self.iter_globals().eq(other.iter_globals())
    }

    /// Number of processes present in both groups.
    pub fn overlap_count(&self, other: &Group) -> usize {
        self.iter_globals()
            .filter(|&g| other.contains_global(g))
            .count()
    }

    /// `MPI_Group_union` analogue: members of `self` in rank order, then
    /// members of `other` not already present.
    pub fn union(&self, other: &Group) -> Group {
        let mut ranks: Vec<usize> = self.iter_globals().collect();
        for g in other.iter_globals() {
            if !self.contains_global(g) {
                ranks.push(g);
            }
        }
        Group::from_ranks(ranks)
    }

    /// `MPI_Group_intersection` analogue (order of `self`). Returns `None`
    /// when the intersection is empty (empty groups are unrepresentable).
    pub fn intersection(&self, other: &Group) -> Option<Group> {
        let ranks: Vec<usize> = self
            .iter_globals()
            .filter(|&g| other.contains_global(g))
            .collect();
        (!ranks.is_empty()).then(|| Group::from_ranks(ranks))
    }

    /// `MPI_Group_difference` analogue (members of `self` not in `other`).
    pub fn difference(&self, other: &Group) -> Option<Group> {
        let ranks: Vec<usize> = self
            .iter_globals()
            .filter(|&g| !other.contains_global(g))
            .collect();
        (!ranks.is_empty()).then(|| Group::from_ranks(ranks))
    }

    /// If the members form a contiguous stride-preserving range of `parent`,
    /// return `(first_rank_in_parent, last_rank_in_parent)`. This is the
    /// test §VI's `MPI_Icomm_create_group` uses to decide whether the new
    /// context ID can be computed locally in constant time.
    pub fn as_range_of(&self, parent: &Group) -> Option<(usize, usize)> {
        let first = parent.inverse(self.translate(0))?;
        let mut prev = first;
        for r in 1..self.len() {
            let pr = parent.inverse(self.translate(r))?;
            if pr != prev + 1 {
                return None;
            }
            prev = pr;
        }
        Some((first, prev))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn world_translation() {
        let g = Group::world(8);
        assert_eq!(g.len(), 8);
        assert!(g.is_range());
        assert_eq!(g.translate(3), 3);
        assert_eq!(g.inverse(5), Some(5));
        assert_eq!(g.inverse(8), None);
    }

    #[test]
    fn strided_range() {
        // MPI ranks f, f+s, ..., per the paper's footnote 2.
        let g = Group::range(4, 3, 4); // 4, 7, 10, 13
        assert_eq!(g.translate(0), 4);
        assert_eq!(g.translate(3), 13);
        assert_eq!(g.inverse(10), Some(2));
        assert_eq!(g.inverse(11), None);
        assert_eq!(g.inverse(3), None);
        assert_eq!(g.inverse(16), None);
    }

    #[test]
    fn from_ranks_detects_progressions() {
        assert!(Group::from_ranks(vec![2, 4, 6, 8]).is_range());
        assert!(Group::from_ranks(vec![5]).is_range());
        assert!(!Group::from_ranks(vec![1, 2, 4]).is_range());
        let g = Group::from_ranks(vec![3, 1, 2]); // unordered => dense
        assert!(!g.is_range());
        assert_eq!(g.translate(0), 3);
        assert_eq!(g.inverse(1), Some(1));
    }

    #[test]
    fn subrange_of_range_is_o1_and_correct() {
        let g = Group::range(10, 2, 8); // 10,12,...,24
        let s = g.subrange(2, 6, 2); // ranks 2,4,6 => globals 14,18,22
        assert!(s.is_range());
        assert_eq!(s.len(), 3);
        assert_eq!(s.iter_globals().collect::<Vec<_>>(), vec![14, 18, 22]);
    }

    #[test]
    fn subrange_of_dense() {
        let g = Group::from_ranks(vec![9, 1, 5, 3, 7]);
        let s = g.subrange(1, 3, 1);
        assert_eq!(s.iter_globals().collect::<Vec<_>>(), vec![1, 5, 3]);
    }

    #[test]
    fn overlap_and_same_members() {
        let a = Group::range(0, 1, 4); // 0..=3
        let b = Group::range(3, 1, 4); // 3..=6
        assert_eq!(a.overlap_count(&b), 1);
        assert!(a.same_members(&Group::from_ranks(vec![0, 1, 2, 3])));
        assert!(!a.same_members(&b));
    }

    #[test]
    fn as_range_of_detection() {
        let parent = Group::range(0, 2, 10); // 0,2,...,18
        let sub = Group::range(4, 2, 3); // 4,6,8 => parent ranks 2,3,4
        assert_eq!(sub.as_range_of(&parent), Some((2, 4)));
        let non_contig = Group::from_ranks(vec![0, 4]);
        assert_eq!(non_contig.as_range_of(&parent), None);
        let foreign = Group::from_ranks(vec![1]);
        assert_eq!(foreign.as_range_of(&parent), None);
    }

    #[test]
    #[should_panic]
    fn translate_out_of_range_panics() {
        Group::range(0, 1, 2).translate(2);
    }

    #[test]
    fn set_operations() {
        let a = Group::range(0, 1, 4); // {0,1,2,3}
        let b = Group::range(2, 2, 3); // {2,4,6}
        let u = a.union(&b);
        assert_eq!(u.iter_globals().collect::<Vec<_>>(), vec![0, 1, 2, 3, 4, 6]);
        let i = a.intersection(&b).unwrap();
        assert_eq!(i.iter_globals().collect::<Vec<_>>(), vec![2]);
        let d = a.difference(&b).unwrap();
        assert_eq!(d.iter_globals().collect::<Vec<_>>(), vec![0, 1, 3]);
        // Empty results are None.
        assert!(a.intersection(&Group::range(10, 1, 2)).is_none());
        assert!(a.difference(&Group::range(0, 1, 8)).is_none());
        // Union preserving range format when possible.
        let u2 = Group::range(0, 1, 2).union(&Group::range(2, 1, 2));
        assert!(u2.is_range());
        assert_eq!(u2.len(), 4);
    }
}
