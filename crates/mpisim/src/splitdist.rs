//! Distributed-sort `MPI_Comm_split` ([`crate::model::SplitAlgo::DistributedSort`]).
//!
//! The textbook split all-gathers all p `(color, key)` pairs on every rank:
//! Θ(p) memory per rank and Θ(p²) across a simulated universe, which is why
//! the simulator used to cap the split column of the large-p figure at
//! 2^12 ranks. This module implements the algorithm production MPI stacks
//! use at scale instead (Sack & Gropp's exascale `MPI_Comm_split`): sort
//! the `(color, key, rank)` triples *across* the parent communicator and
//! build each color group's rank table only within its own segment.
//!
//! Phases (all collectives run over the parent communicator; every phase
//! is O(α log p) startups unless noted):
//!
//! 1. **Splitter selection** — a deterministic random sample of the
//!    triples (expected `√p · 16`) elects `k−1 ≈ √p−1` splitters via
//!    [`crate::distsort::select_splitters`].
//! 2. **Route** — each rank sends its single triple to the *leader* of its
//!    splitter bucket (rank ⌊b·p/k⌋); an all-reduced count vector tells
//!    each leader how many triples to expect. Leaders sort their ≈√p
//!    triples locally (charged per [`crate::model::VendorProfile::split_sort_ns`]).
//! 3. **Position scans** — an exclusive prefix sum assigns every sorted
//!    triple its global position, and a segmented color scan finds, for
//!    each leader, where its first color's segment starts and how many
//!    distinct colors precede it. Because the triples are globally sorted
//!    by color first, every color occupies exactly one contiguous segment.
//! 4. **Segment gathering** — the leader holding a segment's first triple
//!    collects the segment's member list from the (few, contiguous)
//!    leaders holding its continuation, guided by an O(k) leader summary
//!    table relayed through rank 0.
//! 5. **Table distribution** — the gatherer compresses the member list
//!    into a stride-range descriptor when possible (O(1) wire bytes, and
//!    no rank-array build charge) and ships it down a binomial tree over
//!    the *new* ranks; irregular groups ship the explicit table as a
//!    shared-`Arc` payload, so all members of a group reference one host
//!    allocation while in flight.
//! 6. **Context agreement** — one mask all-reduce over the parent claims
//!    one context ID per distinct color, exactly like the legacy path, so
//!    both algorithms yield identical context IDs.
//!
//! Memory per rank is O(√p) for the sort plus O(g) only where a dense
//! table is unavoidable; the benchmark's contiguous-halves split stays
//! O(1) per member. `color = None` models `MPI_UNDEFINED`: the rank takes
//! part in every collective phase but joins no group and receives `None`.

use std::sync::Arc;

use crate::coll;
use crate::comm::Comm;
use crate::datum::{ops, Datum};
use crate::distsort::{bucket_of, select_splitters_async};
use crate::error::Result;
use crate::group::Group;
use crate::msg::Tag;
use crate::tags;
use crate::time::Time;
use crate::transport::{recv_async, recv_shared_async, Src, Transport};

/// `(color, key, origin parent rank)` — the origin breaks every tie, so
/// the sort order is total and the result deterministic.
type Triple = (u64, u64, u64);

/// Samples contributed per splitter (sample size ≈ `k · OVERSAMPLE`).
const OVERSAMPLE: usize = 16;

/// Segmented color-scan state: `[nonempty, first_color, last_color,
/// distinct_runs, global_start_of_last_run]`. The combine below is the
/// standard segmented-scan merge and is associative.
type Seg = [u64; 5];

fn seg_combine(l: &Seg, r: &Seg) -> Seg {
    if r[0] == 0 {
        return *l;
    }
    if l[0] == 0 {
        return *r;
    }
    let merge = u64::from(l[2] == r[1]);
    [
        1,
        l[1],
        r[2],
        l[3] + r[3] - merge,
        if r[3] == 1 && merge == 1 { l[4] } else { r[4] },
    ]
}

/// Binomial gather over an explicit index space `0..n` (root index 0),
/// where `rank_of` maps indices to parent-communicator ranks: index
/// `idx`'s elements travel up the tree in O(log n) depth and land
/// concatenated (in no particular order) at index 0. The leader summary
/// table uses this so assembling it is O(α log √p), not a serial
/// O(α √p) receive chain at rank 0.
async fn gather_over<T: Datum>(
    parent: &Comm,
    mut data: Vec<T>,
    idx: usize,
    n: usize,
    rank_of: impl Fn(usize) -> usize,
    tag: Tag,
) -> Result<Vec<T>> {
    let mut mask = 1usize;
    while mask < n {
        if idx & mask == 0 {
            let child = idx | mask;
            if child < n {
                let (v, _) = recv_async::<T, _>(parent, Src::Rank(rank_of(child)), tag).await?;
                data.extend_from_slice(&v);
            }
        } else {
            parent.send_vec(data, rank_of(idx - mask), tag)?;
            return Ok(Vec::new());
        }
        mask <<= 1;
    }
    Ok(data)
}

/// Binomial broadcast over an explicit index space `0..n` (root index 0),
/// where `rank_of` maps indices to parent-communicator ranks. Used for the
/// leader summary table (indices = bucket numbers) so non-leader ranks
/// never see — or store — the table.
async fn bcast_over<T: Datum>(
    parent: &Comm,
    mut data: Vec<T>,
    idx: usize,
    n: usize,
    rank_of: impl Fn(usize) -> usize,
    tag: Tag,
) -> Result<Vec<T>> {
    let mut mask = 1usize;
    while mask < n {
        if idx & mask != 0 {
            let (v, _) = recv_async::<T, _>(parent, Src::Rank(rank_of(idx - mask)), tag).await?;
            data = v;
            break;
        }
        mask <<= 1;
    }
    mask >>= 1;
    while mask > 0 {
        if idx + mask < n {
            parent.send(&data, rank_of(idx + mask), tag)?;
        }
        mask >>= 1;
    }
    Ok(data)
}

/// Header travelling down the member tree:
/// `[new_rank, group_len, color_idx, kind, a, b, 0, 0]` where
/// `kind = 0` is a stride range over parent ranks (`a + b·x`) and
/// `kind = 1` an explicit table (a shared-`Arc` `SPLIT_TABLE` message
/// follows from the same sender).
type Header = [u64; 8];

/// Try to compress an ordered member list (parent ranks) into `(first,
/// stride)`; mirrors [`Group::from_ranks`]'s progression detection.
fn as_progression(members: &[u64]) -> Option<(u64, u64)> {
    if members.len() == 1 {
        return Some((members[0], 1));
    }
    if members[1] <= members[0] {
        return None;
    }
    let stride = members[1] - members[0];
    members
        .windows(2)
        .all(|w| w[1] > w[0] && w[1] - w[0] == stride)
        .then_some((members[0], stride))
}

/// The distributed `MPI_Comm_split`. Collective over the parent; returns
/// `None` for `color = None` (`MPI_UNDEFINED`) ranks. A maybe-async core
/// (see [`crate::coll`]'s module docs): the sync [`Comm::split`] drives it
/// with `block_inline`, poll-mode bodies await it directly.
pub(crate) async fn split_distributed(
    parent: &Comm,
    color: Option<u64>,
    key: u64,
) -> Result<Option<Comm>> {
    let p = parent.size();
    let r = parent.rank();
    let state = Arc::clone(parent.proc_state());
    let vendor = state.router.vendor.clone();

    // Bucket geometry: k ≈ √p buckets, bucket b led by rank ⌊b·p/k⌋
    // (strictly increasing in b because k ≤ p, so leaders are distinct).
    let k = ((p as f64).sqrt().ceil() as usize).clamp(1, p);
    let leader_rank = |b: usize| b * p / k;
    let my_bucket: Option<usize> = (0..k).find(|&b| leader_rank(b) == r);

    let triple: Option<Triple> = color.map(|c| (c, key, r as u64));

    // Phase 1: splitters from a deterministic random sample.
    let target = (k * OVERSAMPLE).min(p);
    let sample: Vec<Triple> = match triple {
        Some(t) if state.rand_index(p) < target => vec![t],
        _ => Vec::new(),
    };
    let splitters = select_splitters_async(parent, sample, k, tags::SPLIT_SAMPLE).await?;

    // Phase 2: per-bucket counts, then route my triple to its leader.
    let my_b = triple.as_ref().map(|t| bucket_of(&splitters, t));
    let mut counts = vec![0u64; k];
    if let Some(b) = my_b {
        counts[b] = 1;
    }
    let counts =
        coll::allreduce_async(parent, &counts, tags::SPLIT_COUNT, ops::sum::<u64>()).await?;

    let mut held: Vec<Triple> = Vec::new();
    if let (Some(t), Some(b)) = (triple, my_b) {
        let dest = leader_rank(b);
        if dest == r {
            held.push(t);
        } else {
            parent.send_vec(vec![t], dest, tags::SPLIT_ROUTE)?;
        }
    }
    if let Some(b) = my_bucket {
        let expect = counts[b] as usize;
        while held.len() < expect {
            let (v, _) = recv_async::<Triple, _>(parent, Src::Any, tags::SPLIT_ROUTE).await?;
            held.extend_from_slice(&v);
        }
        held.sort_unstable();
        let m = held.len();
        if m > 1 {
            let log_m = f64::from(usize::BITS - (m - 1).leading_zeros());
            state.charge(Time(
                (m as f64 * log_m * vendor.split_sort_ns).round() as u64
            ));
        }
    }
    let m = held.len() as u64;

    // Phase 3a: global position of my sorted run.
    let my_start = coll::exscan_async(parent, &[m], tags::SPLIT_POS_SCAN, ops::sum::<u64>())
        .await?
        .map_or(0, |v| v[0]);

    // Local color runs: (color, local start index, length).
    let mut runs: Vec<(u64, usize, usize)> = Vec::new();
    for (i, t) in held.iter().enumerate() {
        match runs.last_mut() {
            Some(run) if run.0 == t.0 => run.2 += 1,
            _ => runs.push((t.0, i, 1)),
        }
    }

    // Phase 3b: segmented color scan over ranks.
    let my_seg: Seg = if held.is_empty() {
        [0; 5]
    } else {
        [
            1,
            held[0].0,
            held[held.len() - 1].0,
            runs.len() as u64,
            my_start + runs.last().expect("nonempty").1 as u64,
        ]
    };
    let prefix: Seg = coll::exscan_async(parent, &[my_seg], tags::SPLIT_SEG_SCAN, |l, r| {
        seg_combine(l, r)
    })
    .await?
    .map_or([0; 5], |v| v[0]);

    // Does my first run continue a segment that started on an earlier
    // leader? (Colors are globally sorted, so each color is exactly one
    // contiguous segment.)
    let merging = my_seg[0] == 1 && prefix[0] == 1 && prefix[2] == my_seg[1];
    let new_runs = if my_seg[0] == 1 {
        my_seg[3] - u64::from(merging)
    } else {
        0
    };
    let n_colors =
        coll::allreduce_async(parent, &[new_runs], tags::SPLIT_NCOLORS, ops::sum::<u64>()).await?
            [0];

    // Phase 4a: leader summary table `[rank, start, count, first, last]`,
    // gathered up a binomial tree over the k leaders to rank 0 (always a
    // leader: ⌊0·p/k⌋ = 0) and relayed back down the same tree — O(log k)
    // depth both ways, and non-leaders never see the table.
    let mut lt: Vec<[u64; 5]> = Vec::new();
    if let Some(bi) = my_bucket {
        let my_entry = [r as u64, my_start, m, my_seg[1], my_seg[2]];
        lt = gather_over(
            parent,
            vec![my_entry],
            bi,
            k,
            leader_rank,
            tags::SPLIT_LEADERS,
        )
        .await?;
        lt.sort_unstable_by_key(|e| e[0]);
        lt = bcast_over(parent, lt, bi, k, leader_rank, tags::SPLIT_LEADERS).await?;
    }

    // Phase 4b: ship my first run to its segment's gathering leader (the
    // leader whose position range contains the segment start).
    if merging {
        let seg_start = prefix[4];
        let gatherer = lt
            .iter()
            .find(|e| e[2] > 0 && e[1] <= seg_start && seg_start < e[1] + e[2])
            .expect("segment start held by some leader")[0] as usize;
        let first_run = runs[0];
        let origins: Vec<u64> = held[first_run.1..first_run.1 + first_run.2]
            .iter()
            .map(|t| t.2)
            .collect();
        parent.send_vec(origins, gatherer, tags::SPLIT_PORTION)?;
    }

    // Phase 4c/5: assemble each segment that starts on me and notify its
    // first member (which roots the member tree).
    let mut my_notify: Option<(Header, Option<Arc<Vec<u64>>>)> = None;
    if my_bucket.is_some() && !held.is_empty() {
        let my_lt_idx = lt
            .iter()
            .position(|e| e[0] == r as u64)
            .expect("leader listed");
        let base_idx = prefix[3] - u64::from(merging);
        for (j, &(c, start, len)) in runs.iter().enumerate() {
            if j == 0 && merging {
                continue;
            }
            let mut members: Vec<u64> = held[start..start + len].iter().map(|t| t.2).collect();
            if j == runs.len() - 1 {
                // Only my last run can continue past me. Walk the leader
                // table: a later non-empty leader whose first color is c
                // holds a continuation; the segment ends inside the first
                // such leader whose *last* color differs.
                for e in lt[my_lt_idx + 1..].iter().filter(|e| e[2] > 0) {
                    if e[3] != c {
                        break;
                    }
                    let (v, _) =
                        recv_async::<u64, _>(parent, Src::Rank(e[0] as usize), tags::SPLIT_PORTION)
                            .await?;
                    members.extend_from_slice(&v);
                    if e[4] != c {
                        break;
                    }
                }
            }
            let g = members.len() as u64;
            let color_idx = base_idx + j as u64;
            let root = members[0] as usize;
            let (kind, a, b, table) = match as_progression(&members) {
                Some((first, stride)) => (0, first, stride, None),
                None => (1, 0, 0, Some(Arc::new(members))),
            };
            let hdr: Header = [0, g, color_idx, kind, a, b, 0, 0];
            if root == r {
                my_notify = Some((hdr, table));
            } else {
                parent.send_vec(vec![hdr], root, tags::SPLIT_NOTIFY)?;
                if let Some(t) = &table {
                    parent.send_shared(t, root, tags::SPLIT_TABLE)?;
                }
            }
        }
    }

    // Phase 5: every member obtains its header (and table, for irregular
    // groups) and forwards down the binomial tree over *new* ranks.
    let mut group_info: Option<(Header, Option<Arc<Vec<u64>>>)> = my_notify;
    if triple.is_some() && group_info.is_none() {
        let (v, st) = recv_async::<Header, _>(parent, Src::Any, tags::SPLIT_NOTIFY).await?;
        let hdr = v[0];
        let table = if hdr[3] == 1 {
            Some(
                recv_shared_async::<u64, _>(parent, Src::Rank(st.source), tags::SPLIT_TABLE)
                    .await?
                    .0,
            )
        } else {
            None
        };
        group_info = Some((hdr, table));
    }
    if let Some((hdr, table)) = &group_info {
        let nr = hdr[0] as usize;
        let g = hdr[1] as usize;
        let member_rank = |x: usize| -> usize {
            if hdr[3] == 0 {
                (hdr[4] + hdr[5] * x as u64) as usize
            } else {
                table.as_ref().expect("dense header has table")[x] as usize
            }
        };
        let mut mask = 1usize;
        while mask < g && nr & mask == 0 {
            mask <<= 1;
        }
        mask >>= 1;
        while mask > 0 {
            let child = nr + mask;
            if child < g {
                let mut child_hdr = *hdr;
                child_hdr[0] = child as u64;
                let dest = member_rank(child);
                parent.send_vec(vec![child_hdr], dest, tags::SPLIT_NOTIFY)?;
                if let Some(t) = table {
                    parent.send_shared(t, dest, tags::SPLIT_TABLE)?;
                }
            }
            mask >>= 1;
        }
    }

    // Phase 6: context agreement over the parent — one ID per distinct
    // color, claimed in segment (= sorted color) order, identical to the
    // legacy algorithm's IDs.
    if n_colors == 0 {
        return Ok(None); // every rank passed MPI_UNDEFINED
    }
    let idx = group_info.as_ref().map_or(0, |(h, _)| h[2] as usize);
    let ctx = parent
        .agree_ctx_async(parent, tags::CTX_AGREE, n_colors as usize, idx)
        .await?;
    let Some((hdr, table)) = group_info else {
        return Ok(None);
    };
    let g = hdr[1] as usize;
    let pgroup = parent.group();
    let group = if hdr[3] == 0 {
        let (a, b) = (hdr[4] as usize, hdr[5] as usize);
        if pgroup.is_range() {
            // Affine composition: O(1), no rank array — the whole point.
            let first = pgroup.translate(a);
            if g == 1 {
                Group::range(first, 1, 1)
            } else {
                Group::range(first, pgroup.translate(a + b) - first, g)
            }
        } else {
            // A dense parent breaks the affine shortcut: this is a real
            // O(g) rank-array build and is charged like one.
            state.charge(Time(
                (g as f64 * vendor.group_build_ns_per_member).round() as u64
            ));
            Group::from_ranks((0..g).map(|x| pgroup.translate(a + b * x)).collect())
        }
    } else {
        // Explicit O(g) rank-array build, charged like native MPI's.
        state.charge(Time(
            (g as f64 * vendor.group_build_ns_per_member).round() as u64
        ));
        Group::from_ranks(
            table
                .expect("dense header has table")
                .iter()
                .map(|&pr| pgroup.translate(pr as usize))
                .collect(),
        )
    };
    let comm = parent.with_new_ctx(ctx, group)?;
    debug_assert_eq!(comm.rank(), hdr[0] as usize, "table order defines ranks");
    Ok(Some(comm))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seg_combine_merges_runs() {
        let id: Seg = [0; 5];
        let a: Seg = [1, 3, 3, 1, 0]; // one run of color 3 starting at 0
        let b: Seg = [1, 3, 5, 2, 7]; // colors 3..5, last run starts at 7
        assert_eq!(seg_combine(&id, &a), a);
        assert_eq!(seg_combine(&a, &id), a);
        // a's color 3 merges with b's leading color 3: 2 distinct runs.
        assert_eq!(seg_combine(&a, &b), [1, 3, 5, 2, 7]);
        // If b is a single run of the same color, the combined last run
        // starts where a's did.
        let b1: Seg = [1, 3, 3, 1, 7];
        assert_eq!(seg_combine(&a, &b1), [1, 3, 3, 1, 0]);
    }

    #[test]
    fn seg_combine_is_associative_on_cases() {
        let states = [
            [0u64; 5],
            [1, 1, 1, 1, 0],
            [1, 1, 2, 2, 3],
            [1, 2, 2, 1, 5],
            [1, 2, 4, 3, 9],
            [1, 4, 4, 1, 11],
        ];
        for a in states {
            for b in states {
                for c in states {
                    assert_eq!(
                        seg_combine(&seg_combine(&a, &b), &c),
                        seg_combine(&a, &seg_combine(&b, &c)),
                        "a={a:?} b={b:?} c={c:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn progression_detection() {
        assert_eq!(as_progression(&[5]), Some((5, 1)));
        assert_eq!(as_progression(&[2, 4, 6]), Some((2, 2)));
        assert_eq!(as_progression(&[2, 4, 7]), None);
        assert_eq!(as_progression(&[4, 2]), None); // reversed: dense
    }
}
