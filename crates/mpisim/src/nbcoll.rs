//! Nonblocking collective operations as explicit state machines.
//!
//! Following Hoefler & Lumsdaine's round-based scheme (paper §III, \[3\]):
//! each operation is a little machine whose states "begin with local work
//! ... and end with pending send/receive operations if these operations
//! introduce a data dependency" (§V-D). Invoking the operation executes the
//! first state and returns a request; each `test`/`poll` checks outstanding
//! receives and, when satisfied, executes the next state. Sends are
//! buffered and never block, so only receives create data dependencies.
//!
//! All machines are generic over [`Transport`] and take an explicit tag, so
//! several operations can be in flight simultaneously on overlapping
//! communicators — the property Janus Quicksort relies on.

use std::sync::Arc;
use std::time::Duration;

use crate::datum::Datum;
use crate::error::{MpiError, Result};
use crate::msg::Tag;
use crate::obs::{self, OpClass};
use crate::proc::{ProcState, StallDeadline};
use crate::transport::{RecvReq, Src, Transport};

/// Wall-clock ceiling for spin-waiting on a request without observing any
/// global progress — the deadlock detector for nonblocking operations.
pub const WAIT_TIMEOUT: Duration = Duration::from_secs(30);

/// Arm the stall detector for a polling wait: the configured receive
/// timeout (falling back to [`WAIT_TIMEOUT`] for detached machines),
/// re-armed on global progress so huge-but-live universes never trip it
/// (see [`StallDeadline`]).
pub fn stall_guard(state: Option<&Arc<ProcState>>) -> StallDeadline {
    let timeout = state.map_or(WAIT_TIMEOUT, |s| s.router.recv_timeout);
    StallDeadline::new(state.map(|s| &s.router), timeout)
}

/// Anything that can be driven to completion by repeated polling.
/// `poll` returning `Ok(true)` means *locally complete* (outgoing messages
/// may still be buffered — same semantics as the paper's `rbc::Test`).
pub trait Progress: Send {
    /// Drive the operation one step; `Ok(true)` once locally complete.
    fn poll(&mut self) -> Result<bool>;

    /// The per-rank simulator state behind this operation, when one is
    /// reachable. Lets [`Request::wait`]/[`waitall`] use the configured
    /// deadlock timeout and attribute a stall to the ranks it is waiting
    /// on (a [`crate::faults::RoundBlame`]). The default `None` keeps
    /// foreign `Progress` implementations working with the wall-clock
    /// fallback.
    fn proc_state(&self) -> Option<&Arc<ProcState>> {
        None
    }
}

impl<T: Datum, C: Transport> Progress for RecvReq<T, C> {
    fn poll(&mut self) -> Result<bool> {
        self.test()
    }

    fn proc_state(&self) -> Option<&Arc<ProcState>> {
        Some(self.transport().state())
    }
}

/// A type-erased request handle (the paper's `rbc::Request` smart pointer).
pub struct Request(Box<dyn Progress>);

impl Request {
    /// Erase a concrete state machine into a request handle.
    pub fn new(p: impl Progress + 'static) -> Request {
        Request(Box::new(p))
    }

    /// `rbc::Test`.
    pub fn test(&mut self) -> Result<bool> {
        self.0.poll()
    }

    /// `rbc::Wait`: "takes a request and repeatedly calls rbc::Test until
    /// the operation is completed" (§V-B).
    pub fn wait(&mut self) -> Result<()> {
        wait_on(&mut *self.0)
    }

    /// [`Request::wait`] as a maybe-async core: the polling loop yields
    /// through [`crate::sched::poll::yield_now_async`], so it suspends one
    /// epoch per unproductive poll under `Backend::Poll` instead of
    /// panicking in the sync yield.
    pub async fn wait_async(&mut self) -> Result<()> {
        wait_on_async(&mut *self.0).await
    }
}

/// Build the timeout error for a stalled wait. With a [`ProcState`] in
/// hand the error names the stalled rank, its virtual clock, and the
/// ranks it is waiting on; without one it falls back to anonymous.
fn wait_timeout_err(state: Option<&Arc<ProcState>>, waited_for: &str) -> MpiError {
    match state {
        Some(s) => MpiError::Timeout {
            rank: s.global_rank,
            waited_for: waited_for.into(),
            virtual_now: s.now(),
            blame: s.stall_blame(),
        },
        None => MpiError::Timeout {
            rank: usize::MAX,
            waited_for: waited_for.into(),
            virtual_now: crate::time::Time::ZERO,
            blame: crate::faults::RoundBlame::default(),
        },
    }
}

fn wait_on(p: &mut dyn Progress) -> Result<()> {
    let mut stall = stall_guard(p.proc_state());
    loop {
        if p.poll()? {
            return Ok(());
        }
        if stall.stalled() {
            return Err(wait_timeout_err(
                p.proc_state(),
                "nonblocking operation (wait)",
            ));
        }
        crate::sched::yield_now();
    }
}

async fn wait_on_async(p: &mut dyn Progress) -> Result<()> {
    let mut stall = stall_guard(p.proc_state());
    loop {
        if p.poll()? {
            return Ok(());
        }
        if stall.stalled() {
            return Err(wait_timeout_err(
                p.proc_state(),
                "nonblocking operation (wait)",
            ));
        }
        crate::sched::poll::yield_now_async().await;
    }
}

/// `rbc::Testall`: polls every request, true iff all are complete.
pub fn testall(reqs: &mut [Request]) -> Result<bool> {
    let mut all = true;
    for r in reqs.iter_mut() {
        all &= r.test()?;
    }
    Ok(all)
}

/// `rbc::Waitall`: repeatedly calls `testall` until all complete.
pub fn waitall(reqs: &mut [Request]) -> Result<()> {
    let mut stall = stall_guard(reqs.iter().find_map(|r| r.0.proc_state()));
    loop {
        if testall(reqs)? {
            return Ok(());
        }
        if stall.stalled() {
            return Err(wait_timeout_err(
                reqs.iter().find_map(|r| r.0.proc_state()),
                "nonblocking operations (waitall)",
            ));
        }
        crate::sched::yield_now();
    }
}

/// [`waitall`] as a maybe-async core (see [`Request::wait_async`]).
pub async fn waitall_async(reqs: &mut [Request]) -> Result<()> {
    let mut stall = stall_guard(reqs.iter().find_map(|r| r.0.proc_state()));
    loop {
        if testall(reqs)? {
            return Ok(());
        }
        if stall.stalled() {
            return Err(wait_timeout_err(
                reqs.iter().find_map(|r| r.0.proc_state()),
                "nonblocking operations (waitall)",
            ));
        }
        crate::sched::poll::yield_now_async().await;
    }
}

// ---------------------------------------------------------------------------
// Binomial-tree shape helpers (shared by the machines below).
// ---------------------------------------------------------------------------

/// Parent and children of `rel` (rank relative to the root) in the binomial
/// tree over `p` nodes used by bcast/reduce/gather. Children are listed in
/// descending subtree size, matching the blocking implementations.
fn binom_tree(rel: usize, p: usize) -> (Option<usize>, Vec<usize>) {
    debug_assert!(rel < p);
    let top = p.next_power_of_two();
    let lsb = if rel == 0 {
        top
    } else {
        rel & rel.wrapping_neg()
    };
    let parent = (rel != 0).then(|| rel - lsb);
    let mut children = Vec::new();
    let mut m = lsb >> 1;
    while m > 0 {
        if rel + m < p {
            children.push(rel + m);
        }
        m >>= 1;
    }
    (parent, children)
}

fn from_rel(rel: usize, root: usize, p: usize) -> usize {
    (rel + root) % p
}

fn to_rel(rank: usize, root: usize, p: usize) -> usize {
    (rank + p - root) % p
}

// ---------------------------------------------------------------------------
// Ibcast
// ---------------------------------------------------------------------------

/// Nonblocking binomial broadcast. The payload is held and forwarded as a
/// shared `Arc` buffer (zero-copy fan-out, like [`crate::coll::bcast`]);
/// it is materialised into a `Vec` only when the caller takes ownership.
pub struct Ibcast<T: Datum, C: Transport> {
    tr: C,
    root: usize,
    tag: Tag,
    data: Option<Arc<Vec<T>>>,
    started: bool,
    done: bool,
}

/// Start a nonblocking broadcast. On the root, `data` must be `Some`; on
/// other ranks pass `None` (the result is available through
/// [`Ibcast::data`] after completion).
pub fn ibcast<T: Datum, C: Transport>(
    tr: &C,
    data: Option<Vec<T>>,
    root: usize,
    tag: Tag,
) -> Result<Ibcast<T, C>> {
    tr.check_rank(root)?;
    if tr.rank() == root && data.is_none() {
        return Err(MpiError::Usage("ibcast root must supply data".into()));
    }
    let mut sm = Ibcast {
        tr: tr.clone(),
        root,
        tag,
        data: data.map(Arc::new),
        started: false,
        done: false,
    };
    sm.poll()?; // execute the first state immediately (paper §V-D)
    Ok(sm)
}

impl<T: Datum, C: Transport> Ibcast<T, C> {
    fn forward(&mut self) -> Result<()> {
        let p = self.tr.size();
        let rel = to_rel(self.tr.rank(), self.root, p);
        let (_, children) = binom_tree(rel, p);
        let data = self.data.as_ref().expect("data present when forwarding");
        for c in children {
            self.tr
                .send_shared(data, from_rel(c, self.root, p), self.tag)?;
        }
        self.done = true;
        Ok(())
    }

    /// Broadcast payload; `None` until complete on non-root ranks.
    pub fn data(&self) -> Option<&[T]> {
        if !self.done {
            return None;
        }
        self.data.as_ref().map(|a| a.as_slice())
    }

    /// Consume the request, returning the payload if complete (at most one
    /// copy — none when this rank holds the last reference).
    pub fn into_data(self) -> Option<Vec<T>> {
        self.done
            .then_some(self.data)
            .flatten()
            .map(Arc::unwrap_or_clone)
    }

    /// Whether the broadcast is locally complete.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Block until complete and return the payload.
    pub fn wait_data(mut self) -> Result<Vec<T>> {
        wait_on(&mut self)?;
        Ok(self.into_data().expect("completed"))
    }
}

impl<T: Datum, C: Transport> Progress for Ibcast<T, C> {
    fn proc_state(&self) -> Option<&Arc<ProcState>> {
        Some(self.tr.state())
    }

    fn poll(&mut self) -> Result<bool> {
        if self.done {
            return Ok(true);
        }
        // Attribution only — the machines are polled many times per
        // logical operation, so per-poll trace spans would drown the
        // trace; sends priced inside a poll still count under the class.
        // (The Arc clone frees `self` for the `&mut self` helpers below.)
        let state = Arc::clone(self.tr.state());
        let _class = obs::class_guard(&state, OpClass::Bcast);
        let p = self.tr.size();
        let rel = to_rel(self.tr.rank(), self.root, p);
        if !self.started {
            self.started = true;
            if rel == 0 {
                self.forward()?;
                return Ok(true);
            }
        }
        // Interior/leaf rank: wait for the parent's message.
        let (parent, _) = binom_tree(rel, p);
        let parent = from_rel(parent.expect("non-root has parent"), self.root, p);
        match self.tr.try_recv_shared::<T>(Src::Rank(parent), self.tag)? {
            None => Ok(false),
            Some((v, _)) => {
                self.data = Some(v);
                self.forward()?;
                Ok(true)
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Ireduce / Iallreduce
// ---------------------------------------------------------------------------

/// Nonblocking binomial reduction to `root`. `op` must be associative and
/// commutative (child contributions are folded in arrival order).
pub struct Ireduce<T: Datum, C: Transport, F> {
    tr: C,
    root: usize,
    tag: Tag,
    op: F,
    acc: Vec<T>,
    pending_children: Vec<usize>, // comm ranks still to hear from
    done: bool,
    is_root: bool,
}

/// Start a nonblocking reduce of `data` to `root` (`MPI_Ireduce`).
pub fn ireduce<T, C, F>(
    tr: &C,
    data: &[T],
    root: usize,
    tag: Tag,
    op: F,
) -> Result<Ireduce<T, C, F>>
where
    T: Datum,
    C: Transport,
    F: Fn(&T, &T) -> T + Send,
{
    tr.check_rank(root)?;
    let p = tr.size();
    let rel = to_rel(tr.rank(), root, p);
    let (_, children) = binom_tree(rel, p);
    let mut sm = Ireduce {
        tr: tr.clone(),
        root,
        tag,
        op,
        acc: data.to_vec(),
        pending_children: children.into_iter().map(|c| from_rel(c, root, p)).collect(),
        done: false,
        is_root: tr.rank() == root,
    };
    sm.poll()?;
    Ok(sm)
}

impl<T, C, F> Ireduce<T, C, F>
where
    T: Datum,
    C: Transport,
    F: Fn(&T, &T) -> T + Send,
{
    /// Reduction result; `Some` only on the root after completion.
    pub fn result(&self) -> Option<&[T]> {
        (self.done && self.is_root).then_some(self.acc.as_slice())
    }

    /// Block until complete; the reduction lands `Some` only on the root.
    pub fn wait_result(mut self) -> Result<Option<Vec<T>>> {
        wait_on(&mut self)?;
        Ok(self.is_root.then_some(self.acc))
    }
}

impl<T, C, F> Progress for Ireduce<T, C, F>
where
    T: Datum,
    C: Transport,
    F: Fn(&T, &T) -> T + Send,
{
    fn proc_state(&self) -> Option<&Arc<ProcState>> {
        Some(self.tr.state())
    }

    fn poll(&mut self) -> Result<bool> {
        if self.done {
            return Ok(true);
        }
        let _class = obs::class_guard(self.tr.state(), OpClass::Reduce);
        let mut i = 0;
        while i < self.pending_children.len() {
            let child = self.pending_children[i];
            match self.tr.try_recv::<T>(Src::Rank(child), self.tag)? {
                None => i += 1,
                Some((v, _)) => {
                    for (a, b) in self.acc.iter_mut().zip(v.iter()) {
                        *a = (self.op)(a, b);
                    }
                    self.tr.charge_compute(self.acc.len());
                    self.pending_children.swap_remove(i);
                }
            }
        }
        if self.pending_children.is_empty() {
            if !self.is_root {
                let p = self.tr.size();
                let rel = to_rel(self.tr.rank(), self.root, p);
                let (parent, _) = binom_tree(rel, p);
                let parent = from_rel(parent.expect("non-root"), self.root, p);
                self.tr.send(&self.acc, parent, self.tag)?;
            }
            self.done = true;
            return Ok(true);
        }
        Ok(false)
    }
}

/// Nonblocking all-reduce: reduce to rank 0, then broadcast, both phases
/// under the same machine. Uses tags `tag` and `tag + 1`.
pub struct Iallreduce<T: Datum, C: Transport, F> {
    phase: IallreducePhase<T, C, F>,
}

enum IallreducePhase<T: Datum, C: Transport, F> {
    Reduce { sm: Ireduce<T, C, F>, tag: Tag },
    Bcast(Ibcast<T, C>),
    Done(Vec<T>),
    Poisoned,
}

/// Start a nonblocking allreduce (`MPI_Iallreduce`): reduce to rank 0 on
/// `tag`, then broadcast on `tag + 1`.
pub fn iallreduce<T, C, F>(tr: &C, data: &[T], tag: Tag, op: F) -> Result<Iallreduce<T, C, F>>
where
    T: Datum,
    C: Transport,
    F: Fn(&T, &T) -> T + Send,
{
    let sm = ireduce(tr, data, 0, tag, op)?;
    let mut out = Iallreduce {
        phase: IallreducePhase::Reduce { sm, tag },
    };
    out.poll()?;
    Ok(out)
}

impl<T, C, F> Iallreduce<T, C, F>
where
    T: Datum,
    C: Transport,
    F: Fn(&T, &T) -> T + Send,
{
    /// The allreduce result; `None` until complete.
    pub fn result(&self) -> Option<&[T]> {
        match &self.phase {
            IallreducePhase::Done(v) => Some(v),
            _ => None,
        }
    }

    /// Block until complete and return the result.
    pub fn wait_result(mut self) -> Result<Vec<T>> {
        wait_on(&mut self)?;
        match self.phase {
            IallreducePhase::Done(v) => Ok(v),
            _ => unreachable!("wait_on returned complete"),
        }
    }
}

impl<T, C, F> Progress for Iallreduce<T, C, F>
where
    T: Datum,
    C: Transport,
    F: Fn(&T, &T) -> T + Send,
{
    fn proc_state(&self) -> Option<&Arc<ProcState>> {
        match &self.phase {
            IallreducePhase::Reduce { sm, .. } => Some(sm.tr.state()),
            IallreducePhase::Bcast(bc) => Some(bc.tr.state()),
            _ => None,
        }
    }

    fn poll(&mut self) -> Result<bool> {
        loop {
            match std::mem::replace(&mut self.phase, IallreducePhase::Poisoned) {
                IallreducePhase::Reduce { mut sm, tag } => {
                    if !sm.poll()? {
                        self.phase = IallreducePhase::Reduce { sm, tag };
                        return Ok(false);
                    }
                    let tr = sm.tr.clone();
                    let root_data = sm.is_root.then(|| sm.acc.clone());
                    let bc = ibcast(&tr, root_data, 0, tag + 1)?;
                    self.phase = IallreducePhase::Bcast(bc);
                }
                IallreducePhase::Bcast(mut bc) => {
                    if !bc.poll()? {
                        self.phase = IallreducePhase::Bcast(bc);
                        return Ok(false);
                    }
                    let v = bc.into_data().expect("bcast complete");
                    self.phase = IallreducePhase::Done(v);
                    return Ok(true);
                }
                IallreducePhase::Done(v) => {
                    self.phase = IallreducePhase::Done(v);
                    return Ok(true);
                }
                IallreducePhase::Poisoned => unreachable!("poll reentered poisoned state"),
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Iscan / Iexscan
// ---------------------------------------------------------------------------

/// Nonblocking inclusive prefix (Hillis–Steele rounds). When `EXCLUSIVE` is
/// true also tracks the exclusive prefix.
pub struct Iscan<T: Datum, C: Transport, F> {
    tr: C,
    tag: Tag,
    op: F,
    incl: Vec<T>,
    excl: Option<Vec<T>>,
    d: usize,
    sent: bool,
    done: bool,
}

/// Start a nonblocking inclusive+exclusive prefix fold (`MPI_Iscan`).
pub fn iscan<T, C, F>(tr: &C, data: &[T], tag: Tag, op: F) -> Result<Iscan<T, C, F>>
where
    T: Datum,
    C: Transport,
    F: Fn(&T, &T) -> T + Send,
{
    let mut sm = Iscan {
        tr: tr.clone(),
        tag,
        op,
        incl: data.to_vec(),
        excl: None,
        d: 1,
        sent: false,
        done: false,
    };
    sm.poll()?;
    Ok(sm)
}

impl<T, C, F> Iscan<T, C, F>
where
    T: Datum,
    C: Transport,
    F: Fn(&T, &T) -> T + Send,
{
    /// Inclusive prefix over ranks `0..=rank`; `None` until complete.
    pub fn inclusive(&self) -> Option<&[T]> {
        self.done.then_some(self.incl.as_slice())
    }

    /// Exclusive prefix over ranks `0..rank`; `None` until complete or on
    /// rank 0 (which has no predecessors).
    pub fn exclusive(&self) -> Option<&[T]> {
        self.done.then_some(self.excl.as_deref()).flatten()
    }

    /// Block until complete, returning `(inclusive, exclusive)` prefixes.
    pub fn wait_scan(mut self) -> Result<(Vec<T>, Option<Vec<T>>)> {
        wait_on(&mut self)?;
        Ok((self.incl, self.excl))
    }
}

impl<T, C, F> Progress for Iscan<T, C, F>
where
    T: Datum,
    C: Transport,
    F: Fn(&T, &T) -> T + Send,
{
    fn proc_state(&self) -> Option<&Arc<ProcState>> {
        Some(self.tr.state())
    }

    fn poll(&mut self) -> Result<bool> {
        if self.done {
            return Ok(true);
        }
        let _class = obs::class_guard(self.tr.state(), OpClass::Scan);
        let p = self.tr.size();
        let r = self.tr.rank();
        while self.d < p {
            if !self.sent {
                if r + self.d < p {
                    self.tr.send(&self.incl, r + self.d, self.tag)?;
                }
                self.sent = true;
            }
            if r >= self.d {
                match self.tr.try_recv::<T>(Src::Rank(r - self.d), self.tag)? {
                    None => return Ok(false),
                    Some((v, _)) => {
                        // v covers ranks left of everything we hold.
                        match &mut self.excl {
                            None => self.excl = Some(v.clone()),
                            Some(e) => {
                                for (a, b) in e.iter_mut().zip(v.iter()) {
                                    *a = (self.op)(b, a);
                                }
                            }
                        }
                        for (a, b) in self.incl.iter_mut().zip(v.iter()) {
                            *a = (self.op)(b, a);
                        }
                        self.tr.charge_compute(self.incl.len());
                    }
                }
            }
            self.d <<= 1;
            self.sent = false;
        }
        self.done = true;
        Ok(true)
    }
}

// ---------------------------------------------------------------------------
// Igatherv / Igather
// ---------------------------------------------------------------------------

/// Nonblocking binomial gather with variable contribution sizes. Uses tags
/// `tag` (metadata) and `tag + 1` (payload).
/// (child comm rank, metadata if already received)
type PendingChild = (usize, Option<Vec<(u64, u64)>>);

/// Nonblocking gatherv state machine; see [`igatherv`].
pub struct Igatherv<T: Datum, C: Transport> {
    tr: C,
    root: usize,
    tag: Tag,
    meta: Vec<(u64, u64)>,
    payload: Vec<T>,
    pending: Vec<PendingChild>,
    done: bool,
    is_root: bool,
}

/// Start a nonblocking variable-count gather to `root` (`MPI_Igatherv`),
/// using `tag` for metadata and `tag + 1` for payload.
pub fn igatherv<T: Datum, C: Transport>(
    tr: &C,
    data: Vec<T>,
    root: usize,
    tag: Tag,
) -> Result<Igatherv<T, C>> {
    tr.check_rank(root)?;
    let p = tr.size();
    let r = tr.rank();
    let rel = to_rel(r, root, p);
    let (_, children) = binom_tree(rel, p);
    let mut sm = Igatherv {
        tr: tr.clone(),
        root,
        tag,
        meta: vec![(r as u64, data.len() as u64)],
        payload: data,
        pending: children
            .into_iter()
            .map(|c| (from_rel(c, root, p), None))
            .collect(),
        done: false,
        is_root: r == root,
    };
    sm.poll()?;
    Ok(sm)
}

impl<T: Datum, C: Transport> Igatherv<T, C> {
    /// Per-source-rank contributions; `Some` only on the root when done.
    pub fn result(&self) -> Option<Vec<Vec<T>>> {
        if !(self.done && self.is_root) {
            return None;
        }
        let p = self.tr.size();
        let mut out: Vec<Vec<T>> = (0..p).map(|_| Vec::new()).collect();
        let mut off = 0usize;
        for &(origin, cnt) in &self.meta {
            let cnt = cnt as usize;
            out[origin as usize] = self.payload[off..off + cnt].to_vec();
            off += cnt;
        }
        Some(out)
    }

    /// Block until complete; per-rank blocks land `Some` only on the root.
    pub fn wait_result(mut self) -> Result<Option<Vec<Vec<T>>>> {
        wait_on(&mut self)?;
        Ok(self.result())
    }
}

impl<T: Datum, C: Transport> Progress for Igatherv<T, C> {
    fn proc_state(&self) -> Option<&Arc<ProcState>> {
        Some(self.tr.state())
    }

    fn poll(&mut self) -> Result<bool> {
        if self.done {
            return Ok(true);
        }
        let _class = obs::class_guard(self.tr.state(), OpClass::Gather);
        let mut i = 0;
        while i < self.pending.len() {
            let (child, got_meta) = &mut self.pending[i];
            let child = *child;
            if got_meta.is_none() {
                match self.tr.try_recv::<(u64, u64)>(Src::Rank(child), self.tag)? {
                    None => {
                        i += 1;
                        continue;
                    }
                    Some((m, _)) => *got_meta = Some(m),
                }
            }
            // Metadata in hand; the payload follows on tag+1 from the same
            // child (FIFO per sender guarantees order).
            match self.tr.try_recv::<T>(Src::Rank(child), self.tag + 1)? {
                None => i += 1,
                Some((d, _)) => {
                    let m = self.pending[i].1.take().expect("meta stored");
                    self.meta.extend_from_slice(&m);
                    self.payload.extend_from_slice(&d);
                    self.pending.swap_remove(i);
                }
            }
        }
        if self.pending.is_empty() {
            if !self.is_root {
                let p = self.tr.size();
                let rel = to_rel(self.tr.rank(), self.root, p);
                let (parent, _) = binom_tree(rel, p);
                let parent = from_rel(parent.expect("non-root"), self.root, p);
                self.tr.send(&self.meta, parent, self.tag)?;
                self.tr.send(&self.payload, parent, self.tag + 1)?;
            }
            self.done = true;
            return Ok(true);
        }
        Ok(false)
    }
}

/// Nonblocking equal-count gather: flattens the gatherv result in rank
/// order.
pub struct Igather<T: Datum, C: Transport> {
    inner: Igatherv<T, C>,
}

/// Start a nonblocking equal-count gather to `root` (`MPI_Igather`).
pub fn igather<T: Datum, C: Transport>(
    tr: &C,
    data: Vec<T>,
    root: usize,
    tag: Tag,
) -> Result<Igather<T, C>> {
    Ok(Igather {
        inner: igatherv(tr, data, root, tag)?,
    })
}

impl<T: Datum, C: Transport> Igather<T, C> {
    /// Concatenated contributions in rank order; `Some` only on the root
    /// when done.
    pub fn result(&self) -> Option<Vec<T>> {
        self.inner
            .result()
            .map(|per_rank| per_rank.into_iter().flatten().collect())
    }

    /// Block until complete and return the concatenated data at the root.
    pub fn wait_result(mut self) -> Result<Option<Vec<T>>> {
        wait_on(&mut self)?;
        Ok(self.result())
    }
}

impl<T: Datum, C: Transport> Progress for Igather<T, C> {
    fn proc_state(&self) -> Option<&Arc<ProcState>> {
        self.inner.proc_state()
    }

    fn poll(&mut self) -> Result<bool> {
        self.inner.poll()
    }
}

// ---------------------------------------------------------------------------
// Ibarrier
// ---------------------------------------------------------------------------

/// Nonblocking dissemination barrier.
pub struct Ibarrier<C: Transport> {
    tr: C,
    tag: Tag,
    d: usize,
    sent: bool,
    done: bool,
}

/// Start a nonblocking dissemination barrier (`MPI_Ibarrier`).
pub fn ibarrier<C: Transport>(tr: &C, tag: Tag) -> Result<Ibarrier<C>> {
    let mut sm = Ibarrier {
        tr: tr.clone(),
        tag,
        d: 1,
        sent: false,
        done: false,
    };
    sm.poll()?;
    Ok(sm)
}

impl<C: Transport> Ibarrier<C> {
    /// Whether every round of the dissemination pattern has completed.
    pub fn is_done(&self) -> bool {
        self.done
    }
}

impl<C: Transport> Progress for Ibarrier<C> {
    fn proc_state(&self) -> Option<&Arc<ProcState>> {
        Some(self.tr.state())
    }

    fn poll(&mut self) -> Result<bool> {
        if self.done {
            return Ok(true);
        }
        let _class = obs::class_guard(self.tr.state(), OpClass::Barrier);
        let p = self.tr.size();
        let r = self.tr.rank();
        while self.d < p {
            if !self.sent {
                self.tr
                    .send_vec::<u8>(Vec::new(), (r + self.d) % p, self.tag)?;
                self.sent = true;
            }
            if self
                .tr
                .try_recv::<u8>(Src::Rank((r + p - self.d) % p), self.tag)?
                .is_none()
            {
                return Ok(false);
            }
            self.d <<= 1;
            self.sent = false;
        }
        self.done = true;
        Ok(true)
    }
}
