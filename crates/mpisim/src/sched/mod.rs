//! Cooperative rank scheduler: N simulated ranks multiplexed over a small
//! worker pool.
//!
//! The thread backend of [`crate::universe::Universe`] spawns one OS thread
//! per rank, which tops out around a few hundred ranks — far short of the
//! paper's 2^15-process evaluations. This module runs every rank body on a
//! *fiber* (a stackful coroutine; see `sched/fiber.rs`) instead: a
//! blocking point (`recv`,
//! `probe`, a poll loop inside a nonblocking collective) **yields to the
//! scheduler** rather than parking an OS thread, and the mailbox layer
//! wakes exactly the ranks whose matching message arrived.
//!
//! # Scheduling discipline
//!
//! The ready queue is FIFO; its initial order is a permutation of the ranks
//! derived deterministically from the simulation seed. All wake-ups are
//! triggered by mailbox pushes, which happen at deterministic points of the
//! rank programs, and are processed in registration order — so with one
//! worker (the default) **the entire interleaving, and hence the
//! message-delivery order, is a pure function of `(program, seed)`**. Runs
//! are reproducible; see DESIGN.md §4 for why this cooperative schedule
//! preserves the MPI progress semantics the RBC correctness arguments
//! assume. With `coop_workers > 1` results stay correct but the
//! interleaving is no longer reproducible.
//!
//! # Blocking protocol (no lost wake-ups)
//!
//! A rank that finds no matching message executes, in order:
//!
//! 1. set its state to `Blocking` (announce intent),
//! 2. subscribe a waker in the mailbox *under the mailbox lock*,
//! 3. switch back to the worker, which downgrades `Blocking -> Blocked`.
//!
//! A sender's wake-up can only happen after step 2 observed the
//! subscription, hence after step 1: the waker either sees `Blocked` (task
//! fully parked — make it ready) or `Blocking` (task still switching out —
//! mark it `WokenEarly`, and the worker re-enqueues it instead of parking).
//! Either way the wake-up is never dropped.
//!
//! # Deadlock detection
//!
//! Sends never block, so if no task is ready and none is running, no
//! message can ever arrive again: the remaining blocked tasks are
//! deadlocked. The scheduler then *poisons* them — each is woken and its
//! pending receive returns [`MpiError::Timeout`] carrying the
//! [`WaitReason`] it was parked on. This replaces the thread backend's
//! wall-clock timeout with an exact, instantaneous detector.

#![allow(unsafe_code)]

use std::any::Any;
use std::cell::Cell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};

use crate::error::{MpiError, Result};
use crate::mailbox::{Mailbox, Subscribed, Wake};
use crate::msg::{MatchPattern, Message, MsgInfo};
use crate::proc::WaitReason;
use crate::time::Time;

#[cfg(all(unix, any(target_arch = "x86_64", target_arch = "aarch64")))]
mod fiber;

/// Whether the fiber backend exists on this target. On unsupported targets
/// the cooperative backend transparently falls back to the thread backend.
pub const SUPPORTED: bool = cfg!(all(
    unix,
    any(target_arch = "x86_64", target_arch = "aarch64")
));

// ---------------------------------------------------------------------------
// Task states and park intents
// ---------------------------------------------------------------------------

/// In the ready queue or about to be enqueued.
const ST_READY: u8 = 0;
/// Executing on some worker right now.
const ST_RUNNING: u8 = 1;
/// Announced intent to block; still switching out on its worker.
const ST_BLOCKING: u8 = 2;
/// Fully parked; only a wake-up can move it.
const ST_BLOCKED: u8 = 3;
/// Woken while still in `Blocking`; the worker re-enqueues instead of parking.
const ST_WOKEN_EARLY: u8 = 4;
/// Body returned; never scheduled again.
const ST_FINISHED: u8 = 5;

const INTENT_NONE: u8 = 0;
const INTENT_YIELD: u8 = 1;
const INTENT_BLOCK: u8 = 2;
const INTENT_FINISH: u8 = 3;

/// Task state shared with mailbox wakers (kept alive by `Arc` so a stray
/// waker can never dangle).
struct TaskCore {
    rank: usize,
    status: AtomicU8,
    /// Set by the deadlock detector; blocking operations observe it and
    /// return `MpiError::Timeout` instead of parking again.
    poisoned: AtomicBool,
    /// Why the task is parked (diagnostics; surfaced in deadlock errors).
    wait_reason: Mutex<Option<WaitReason>>,
}

/// Scheduler state shared between workers and wakers.
pub(crate) struct SchedShared {
    ready: Mutex<VecDeque<usize>>,
    work_cv: Condvar,
    /// Unfinished tasks.
    live: AtomicUsize,
    /// Tasks currently executing on some worker.
    running: AtomicUsize,
    /// Context switches performed (diagnostics).
    switches: AtomicU64,
    /// First recorded panic payload, with the rank it came from.
    panic: Mutex<Option<(usize, Box<dyn Any + Send>)>>,
}

impl SchedShared {
    fn enqueue(&self, rank: usize) {
        self.ready.lock().push_back(rank);
        self.work_cv.notify_one();
    }
}

/// Moves a task out of its blocked state. Called by mailbox pushes (via the
/// [`Wake`] impl) and by the deadlock poisoner.
fn wake_core(core: &TaskCore, shared: &SchedShared) {
    loop {
        match core.status.load(Ordering::Acquire) {
            ST_BLOCKED => {
                if core
                    .status
                    .compare_exchange(ST_BLOCKED, ST_READY, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
                {
                    shared.enqueue(core.rank);
                    return;
                }
            }
            ST_BLOCKING => {
                if core
                    .status
                    .compare_exchange(
                        ST_BLOCKING,
                        ST_WOKEN_EARLY,
                        Ordering::AcqRel,
                        Ordering::Acquire,
                    )
                    .is_ok()
                {
                    return;
                }
            }
            // Ready / Running / WokenEarly / Finished: already awake (or
            // past caring); the claim loop re-checks the mailbox anyway.
            _ => return,
        }
    }
}

/// The waker subscribed into mailboxes while a task is parked.
struct TaskWaker {
    core: Arc<TaskCore>,
    shared: Arc<SchedShared>,
}

impl Wake for TaskWaker {
    fn wake(&self) {
        wake_core(&self.core, &self.shared);
    }
}

// ---------------------------------------------------------------------------
// Task slots
// ---------------------------------------------------------------------------

#[cfg(all(unix, any(target_arch = "x86_64", target_arch = "aarch64")))]
struct TaskSlot {
    core: Arc<TaskCore>,
    /// Pre-built waker, cloned into mailbox subscriptions.
    waker: Arc<dyn Wake>,
    /// What the task asked its worker to do when it switched out.
    intent: AtomicU8,
    fiber: std::cell::UnsafeCell<fiber::Fiber>,
    body: std::cell::UnsafeCell<Option<Box<dyn FnOnce() + Send>>>,
}

// Safety: `fiber` and `body` are only touched by the single worker that
// holds the task in `Running` state (enforced by the status state machine),
// or by the fiber itself while that worker is suspended inside `resume`.
#[cfg(all(unix, any(target_arch = "x86_64", target_arch = "aarch64")))]
unsafe impl Sync for TaskSlot {}
#[cfg(all(unix, any(target_arch = "x86_64", target_arch = "aarch64")))]
unsafe impl Send for TaskSlot {}

thread_local! {
    /// The task currently executing on this worker thread (null outside).
    static CURRENT: Cell<*const ()> = const { Cell::new(std::ptr::null()) };
}

/// Whether the calling code runs on a scheduler fiber (vs a plain thread).
pub fn on_fiber() -> bool {
    CURRENT.with(|c| !c.get().is_null())
}

// ---------------------------------------------------------------------------
// Fiber-backed implementation
// ---------------------------------------------------------------------------

#[cfg(all(unix, any(target_arch = "x86_64", target_arch = "aarch64")))]
mod imp {
    use super::*;
    use std::alloc::{alloc, dealloc, handle_alloc_error, Layout};

    /// One allocation holding every fiber stack, carved into equal regions.
    /// A single mapping keeps the kernel's VMA count at O(1) instead of
    /// O(p), and untouched pages cost nothing: at the default 128 KiB per
    /// rank a 2^15-rank universe reserves 4 GiB of address space (small
    /// enough for Linux heuristic overcommit on ordinary dev machines) but
    /// commits only the few pages each rank actually touches.
    struct StackSlab {
        ptr: *mut u8,
        layout: Layout,
        per: usize,
    }

    unsafe impl Send for StackSlab {}
    unsafe impl Sync for StackSlab {}

    impl StackSlab {
        fn new(n: usize, per: usize) -> StackSlab {
            let per = per.max(16 * 1024) & !15;
            let layout = Layout::from_size_align(n * per, 16).expect("stack slab layout");
            let ptr = unsafe { alloc(layout) };
            if ptr.is_null() {
                handle_alloc_error(layout);
            }
            StackSlab { ptr, layout, per }
        }

        fn region(&self, i: usize) -> *mut u8 {
            unsafe { self.ptr.add(i * self.per) }
        }
    }

    impl Drop for StackSlab {
        fn drop(&mut self) {
            unsafe { dealloc(self.ptr, self.layout) };
        }
    }

    /// The cooperative scheduler for one universe run.
    pub(crate) struct Scheduler {
        shared: Arc<SchedShared>,
        slots: Vec<TaskSlot>,
        _stacks: StackSlab,
    }

    impl Scheduler {
        /// Prepare `p` task slots with `stack_size` bytes of stack each.
        pub fn new(p: usize, stack_size: usize) -> Scheduler {
            let stacks = StackSlab::new(p, stack_size);
            let shared = Arc::new(SchedShared {
                ready: Mutex::new(VecDeque::with_capacity(p)),
                work_cv: Condvar::new(),
                live: AtomicUsize::new(p),
                running: AtomicUsize::new(0),
                switches: AtomicU64::new(0),
                panic: Mutex::new(None),
            });
            let mut slots = Vec::with_capacity(p);
            for rank in 0..p {
                let core = Arc::new(TaskCore {
                    rank,
                    status: AtomicU8::new(ST_READY),
                    poisoned: AtomicBool::new(false),
                    wait_reason: Mutex::new(None),
                });
                let waker: Arc<dyn Wake> = Arc::new(TaskWaker {
                    core: Arc::clone(&core),
                    shared: Arc::clone(&shared),
                });
                slots.push(TaskSlot {
                    core,
                    waker,
                    intent: AtomicU8::new(INTENT_NONE),
                    // Placeholder; the real fiber is built in `spawn` once
                    // the slot has its final address.
                    fiber: std::cell::UnsafeCell::new(unsafe {
                        fiber::Fiber::new(stacks.region(rank), stacks.per, std::ptr::null_mut())
                    }),
                    body: std::cell::UnsafeCell::new(None),
                });
            }
            let mut sched = Scheduler {
                shared,
                slots,
                _stacks: stacks,
            };
            // Now that the slots are at their final addresses, point each
            // fiber's entry argument at its slot.
            for rank in 0..p {
                let slot_ptr = &sched.slots[rank] as *const TaskSlot as *mut u8;
                let region = sched._stacks.region(rank);
                let per = sched._stacks.per;
                sched.slots[rank].fiber =
                    std::cell::UnsafeCell::new(unsafe { fiber::Fiber::new(region, per, slot_ptr) });
            }
            sched
        }

        /// Handle for recording a rank body's panic (first one wins).
        pub fn panic_store(&self) -> Arc<SchedShared> {
            Arc::clone(&self.shared)
        }

        /// Install the body of `rank`'s task.
        ///
        /// # Safety
        /// The boxed closure's true lifetime must outlive [`Scheduler::run`]
        /// (the caller transmutes it to `'static`); `run` completes or
        /// poisons every task before returning, so the borrow never escapes.
        pub unsafe fn spawn(&self, rank: usize, body: Box<dyn FnOnce() + Send>) {
            *self.slots[rank].body.get() = Some(body);
        }

        /// Run every spawned task to completion on `workers` OS threads,
        /// starting in `initial_order`. Returns the first recorded panic.
        pub fn run(
            &self,
            workers: usize,
            initial_order: &[usize],
        ) -> Option<(usize, Box<dyn Any + Send>)> {
            {
                let mut q = self.shared.ready.lock();
                q.extend(initial_order.iter().copied());
            }
            let workers = workers.max(1);
            if workers == 1 {
                self.worker_loop();
            } else {
                std::thread::scope(|scope| {
                    for w in 0..workers {
                        let this = &*self;
                        std::thread::Builder::new()
                            .name(format!("sched-worker{w}"))
                            .spawn_scoped(scope, move || this.worker_loop())
                            .expect("spawn scheduler worker");
                    }
                });
            }
            self.shared.panic.lock().take()
        }

        /// Total context switches performed (diagnostics).
        #[allow(dead_code)]
        pub fn switches(&self) -> u64 {
            self.shared.switches.load(Ordering::Relaxed)
        }

        fn worker_loop(&self) {
            loop {
                let tid = {
                    let mut q = self.shared.ready.lock();
                    loop {
                        if let Some(t) = q.pop_front() {
                            // Claim the task while still holding the ready
                            // lock: another worker's "queue empty ∧ running
                            // == 0" deadlock check must never observe the
                            // window between our pop and our increment.
                            self.shared.running.fetch_add(1, Ordering::AcqRel);
                            break t;
                        }
                        if self.shared.live.load(Ordering::Acquire) == 0 {
                            return;
                        }
                        if self.shared.running.load(Ordering::Acquire) == 0 {
                            // Nothing ready, nothing running, sends never
                            // block: the blocked remainder is deadlocked.
                            drop(q);
                            self.poison_all();
                            q = self.shared.ready.lock();
                            continue;
                        }
                        self.shared.work_cv.wait(&mut q);
                    }
                };
                self.run_task(tid);
                self.shared.running.fetch_sub(1, Ordering::AcqRel);
            }
        }

        fn run_task(&self, tid: usize) {
            let slot = &self.slots[tid];
            slot.core.status.store(ST_RUNNING, Ordering::Release);
            slot.intent.store(INTENT_NONE, Ordering::Release);
            self.shared.switches.fetch_add(1, Ordering::Relaxed);
            let prev = CURRENT.with(|c| c.replace(slot as *const TaskSlot as *const ()));
            unsafe { (*slot.fiber.get()).resume() };
            CURRENT.with(|c| c.set(prev));
            match slot.intent.load(Ordering::Acquire) {
                INTENT_YIELD => {
                    slot.core.status.store(ST_READY, Ordering::Release);
                    self.shared.enqueue(tid);
                }
                INTENT_BLOCK => {
                    if slot
                        .core
                        .status
                        .compare_exchange(
                            ST_BLOCKING,
                            ST_BLOCKED,
                            Ordering::AcqRel,
                            Ordering::Acquire,
                        )
                        .is_err()
                    {
                        // WokenEarly: a message landed while we switched out.
                        slot.core.status.store(ST_READY, Ordering::Release);
                        self.shared.enqueue(tid);
                    }
                }
                INTENT_FINISH => {
                    slot.core.status.store(ST_FINISHED, Ordering::Release);
                    if !unsafe { &*slot.fiber.get() }.canary_intact() {
                        eprintln!(
                            "mpisim: rank {tid} overflowed its {}-byte fiber stack; \
                             raise SimConfig::coop_stack_size",
                            self._stacks.per
                        );
                        std::process::abort();
                    }
                    if self.shared.live.fetch_sub(1, Ordering::AcqRel) == 1 {
                        self.shared.work_cv.notify_all();
                    }
                }
                other => {
                    // A fiber switched out without announcing an intent:
                    // scheduler invariant broken.
                    eprintln!("mpisim: fiber {tid} suspended with invalid intent {other}");
                    std::process::abort();
                }
            }
        }

        /// Wake every blocked task with the poison flag set: their pending
        /// blocking operation returns a deadlock [`MpiError::Timeout`].
        fn poison_all(&self) {
            for slot in &self.slots {
                if slot.core.status.load(Ordering::Acquire) == ST_BLOCKED {
                    slot.core.poisoned.store(true, Ordering::Release);
                    wake_core(&slot.core, &self.shared);
                }
            }
        }
    }

    /// Entry point every fiber starts in (called by the asm trampoline with
    /// the `TaskSlot` pointer that was planted in the initial frame).
    #[no_mangle]
    unsafe extern "C" fn mpisim_fiber_main(task: *mut u8) -> ! {
        let slot = &*(task as *const TaskSlot);
        let body = (*slot.body.get()).take().expect("fiber body installed");
        body(); // catches its own panics
        slot.intent.store(INTENT_FINISH, Ordering::Release);
        (*slot.fiber.get()).switch_to_worker();
        // Resuming a finished fiber is a scheduler bug.
        std::process::abort();
    }

    /// Record a rank body's panic payload; the first one wins and is
    /// re-thrown by `Universe::run` after the scheduler drains.
    pub(crate) fn record_panic(store: &SchedShared, rank: usize, payload: Box<dyn Any + Send>) {
        let mut g = store.panic.lock();
        if g.is_none() {
            *g = Some((rank, payload));
        }
    }

    fn current_slot() -> Option<&'static TaskSlot> {
        let p = CURRENT.with(|c| c.get());
        if p.is_null() {
            None
        } else {
            // Slots outlive every fiber execution; the 'static is internal.
            Some(unsafe { &*(p as *const TaskSlot) })
        }
    }

    /// Cooperatively yield: re-enqueue the current task at the back of the
    /// ready queue and run someone else. On a plain thread this is
    /// `std::thread::yield_now` — poll loops in the libraries call this so
    /// they behave correctly under both backends.
    pub fn yield_now() {
        match current_slot() {
            None => std::thread::yield_now(),
            Some(slot) => {
                slot.intent.store(INTENT_YIELD, Ordering::Release);
                unsafe { (*slot.fiber.get()).switch_to_worker() };
            }
        }
    }

    /// Park the current task until a waker fires. The caller must already
    /// have announced `ST_BLOCKING` and subscribed a waker.
    fn park(slot: &TaskSlot, reason: WaitReason) {
        *slot.core.wait_reason.lock() = Some(reason);
        slot.intent.store(INTENT_BLOCK, Ordering::Release);
        unsafe { (*slot.fiber.get()).switch_to_worker() };
        slot.core.wait_reason.lock().take();
    }

    fn deadlock_err(rank: usize, reason: &WaitReason, vnow: Time) -> MpiError {
        MpiError::Timeout {
            rank,
            waited_for: format!("{reason} [cooperative deadlock: every rank is blocked]"),
            virtual_now: vnow,
        }
    }

    /// Blocking claim under the cooperative scheduler: yields to the
    /// scheduler instead of parking the OS thread.
    pub(crate) fn claim_coop(
        mb: &Mailbox,
        pat: &MatchPattern,
        rank: usize,
        vnow: Time,
    ) -> Result<Message> {
        let slot = current_slot().expect("claim_coop runs on a fiber");
        loop {
            if slot.core.poisoned.load(Ordering::Acquire) {
                return Err(deadlock_err(rank, &WaitReason::Recv(pat.clone()), vnow));
            }
            // Announce intent to block *before* subscribing so a wake-up
            // arriving between subscription and the switch is never lost.
            slot.core.status.store(ST_BLOCKING, Ordering::Release);
            match mb.claim_or_subscribe(pat, &slot.waker) {
                Subscribed::Hit(m) => {
                    slot.core.status.store(ST_RUNNING, Ordering::Release);
                    return Ok(m);
                }
                Subscribed::Waiting(token) => {
                    park(slot, WaitReason::Recv(pat.clone()));
                    // Normal wake-ups remove the subscription; the poison
                    // path does not. Idempotent either way.
                    mb.unsubscribe(token);
                }
            }
        }
    }

    /// Blocking probe under the cooperative scheduler.
    pub(crate) fn probe_coop(
        mb: &Mailbox,
        pat: &MatchPattern,
        rank: usize,
        vnow: Time,
    ) -> Result<MsgInfo> {
        let slot = current_slot().expect("probe_coop runs on a fiber");
        loop {
            if slot.core.poisoned.load(Ordering::Acquire) {
                return Err(deadlock_err(rank, &WaitReason::Probe(pat.clone()), vnow));
            }
            slot.core.status.store(ST_BLOCKING, Ordering::Release);
            match mb.probe_or_subscribe(pat, &slot.waker) {
                Subscribed::Hit(info) => {
                    slot.core.status.store(ST_RUNNING, Ordering::Release);
                    return Ok(info);
                }
                Subscribed::Waiting(token) => {
                    park(slot, WaitReason::Probe(pat.clone()));
                    mb.unsubscribe(token);
                }
            }
        }
    }
}

#[cfg(all(unix, any(target_arch = "x86_64", target_arch = "aarch64")))]
pub use imp::yield_now;
#[cfg(all(unix, any(target_arch = "x86_64", target_arch = "aarch64")))]
pub(crate) use imp::{claim_coop, probe_coop, record_panic, Scheduler};

// ---------------------------------------------------------------------------
// Fallback for targets without a fiber implementation
// ---------------------------------------------------------------------------

/// On unsupported targets there are no fibers: yielding degrades to the OS
/// hint and `Universe` silently uses the thread backend.
#[cfg(not(all(unix, any(target_arch = "x86_64", target_arch = "aarch64"))))]
pub fn yield_now() {
    std::thread::yield_now();
}

#[cfg(not(all(unix, any(target_arch = "x86_64", target_arch = "aarch64"))))]
pub(crate) fn claim_coop(
    _mb: &Mailbox,
    _pat: &MatchPattern,
    _rank: usize,
    _vnow: Time,
) -> Result<Message> {
    unreachable!("cooperative backend unavailable on this target")
}

#[cfg(not(all(unix, any(target_arch = "x86_64", target_arch = "aarch64"))))]
pub(crate) fn probe_coop(
    _mb: &Mailbox,
    _pat: &MatchPattern,
    _rank: usize,
    _vnow: Time,
) -> Result<MsgInfo> {
    unreachable!("cooperative backend unavailable on this target")
}
