//! Cooperative rank scheduler: N simulated ranks multiplexed over a small
//! worker pool, **deterministically for any worker count**.
//!
//! The thread backend of [`crate::universe::Universe`] spawns one OS thread
//! per rank, which tops out around a few hundred ranks — far short of the
//! paper's 2^15-process evaluations. This module runs every rank body on a
//! *fiber* (a stackful coroutine; see `sched/fiber.rs`) instead: a
//! blocking point (`recv`, `probe`, a poll loop inside a nonblocking
//! collective) **yields to the scheduler** rather than parking an OS
//! thread, and the mailbox layer wakes exactly the ranks whose matching
//! message arrived.
//!
//! # Epoch discipline (deterministic parallelism)
//!
//! Execution proceeds in **epochs** (virtual-time windows). Each epoch has
//! a deterministically ordered set of runnable tasks; workers claim tasks
//! from that set lock-free (an atomic cursor over an immutable round
//! vector) and run them *in parallel*. Parallelism inside an epoch cannot
//! perturb the simulation because epoch-concurrent tasks are **isolated**:
//!
//! * sends are not delivered immediately — they are *staged* in the
//!   sending task's private buffer (`try_stage_send`);
//! * a rank only ever claims messages from its *own* mailbox, and nothing
//!   is pushed into any mailbox while tasks run;
//! * clocks, RNG streams, and context pools are per-rank.
//!
//! So within an epoch no task can observe another epoch-mate's progress,
//! and the OS's thread interleaving is irrelevant. When every task of the
//! epoch has switched out (yielded, blocked, or finished), the last worker
//! **commits** the epoch:
//!
//! 1. tasks that yielded re-enter the next round, in their epoch order;
//! 2. all staged messages are delivered in global **virtual-time order** —
//!    keyed by `(matchable_time, sender, seq)`, where `matchable_time` is
//!    the running maximum of arrival times along each sender's program
//!    order (per-sender monotone, so per-sender FIFO non-overtaking is
//!    preserved) and `seq` the sender's send counter. Deliveries wake
//!    blocked receivers, which join the next round in commit order;
//! 3. if the next round is empty while unfinished tasks remain, those
//!    tasks are deadlocked (sends never block) — they are *poisoned* and
//!    woken to return [`MpiError::Timeout`].
//!
//! Step 2 runs under one of two algorithms
//! ([`CommitAlgo`](crate::model::CommitAlgo)):
//!
//! * **Serial** (the oracle): the committing worker sorts the staged run
//!   by the global key and pushes every message itself, waking receivers
//!   as it goes.
//! * **Sharded** (the default): the run is sorted *destination-major* —
//!   `(dest, matchable_time, sender, seq)` — so each destination rank's
//!   messages form one contiguous segment whose internal order is exactly
//!   the serial commit's per-mailbox subsequence. Segments are grouped
//!   into shards (never splitting a segment) and **all idle workers claim
//!   shards lock-free** through the same epoch-tagged cursor used for
//!   round claiming, batch-pushing into disjoint mailboxes with zero
//!   cross-shard contention. Wake-ups are *deferred*: each shard records
//!   `(global key of the triggering message, waker)` pairs, and after the
//!   push barrier the finishing worker merges them in global key order —
//!   reproducing the serial wake order bit for bit. See DESIGN.md §7.
//!
//! Orthogonally, *how* the staged run reaches delivery order is itself
//! selectable ([`SortAlgo`](crate::model::SortAlgo)): each task's staged
//! run is already sorted by the global key **by construction** (the key's
//! time component is a running max and `seq` increases along program
//! order), so ordering the epoch is a merge problem, not a sort. The
//! default **Merge** path k-way merges the pre-sorted per-task runs in a
//! single heap-driven pass that moves each entry exactly once — inline
//! for small epochs and 1-worker pools, else as one published merge
//! round whose chunk units every idle worker claims through the same
//! epoch-tagged cursor — while the **Sort** oracle keeps the original
//! global `sort_by_key`. The commit key is unique over the epoch, so both
//! produce the *same* unique sorted order regardless of merge-tree shape
//! (DESIGN.md §10): this knob too is invisible in every simulation
//! output. The merge path additionally recycles every epoch-commit
//! buffer (runs, shards, wake records, round vectors) through
//! [`crate::pool`], making the steady-state epoch allocation-free at one
//! worker.
//!
//! Every input to this procedure — the round order, each task's behaviour
//! against a frozen mailbox state, the staged-message sort key, the wake
//! merge order — is a pure function of `(program, seed)`. Hence **the
//! merged delivery order, and with it every simulation output, is
//! bit-for-bit identical for any `coop_workers` and either commit
//! algorithm**, including 1 worker. See DESIGN.md §5 for why committing
//! deliveries at epoch boundaries preserves MPI matching semantics.
//!
//! # Blocking protocol (no lost wake-ups)
//!
//! A rank that finds no matching message executes, in order:
//!
//! 1. set its state to `Blocking` (announce intent),
//! 2. subscribe a waker in the mailbox *under the mailbox lock*,
//! 3. switch back to the worker, which downgrades `Blocking -> Blocked`.
//!
//! Under the epoch discipline all wake-ups fire at commit time, when every
//! task of the round has fully parked — but the `WokenEarly` intermediate
//! state is kept as a defensive backstop: a waker that observes `Blocking`
//! (task still switching out) marks it `WokenEarly` and the worker
//! re-enqueues it via the yield path instead of parking it.
//!
//! # Deadlock detection
//!
//! Sends never block, so if a committed epoch produces no runnable task
//! and no staged message woke anyone, no message can ever arrive again:
//! the remaining blocked tasks are deadlocked. The scheduler *poisons*
//! them — each is woken and its pending receive returns
//! [`MpiError::Timeout`] carrying the [`WaitReason`] it was parked on.
//! This replaces the thread backend's wall-clock timeout with an exact,
//! instantaneous detector.

#![allow(unsafe_code)]

use std::any::Any;
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::error::{MpiError, Result};
use crate::mailbox::{Mailbox, Subscribed, Wake};
use crate::msg::{MatchPattern, Message, MsgInfo};
use crate::proc::WaitReason;
use crate::time::Time;

#[cfg(all(unix, any(target_arch = "x86_64", target_arch = "aarch64")))]
mod fiber;

#[cfg(all(unix, any(target_arch = "x86_64", target_arch = "aarch64")))]
pub mod fleet;

pub mod poll;

/// Whether the fiber backend exists on this target. On unsupported targets
/// the cooperative backend transparently falls back to the thread backend.
pub const SUPPORTED: bool = cfg!(all(
    unix,
    any(target_arch = "x86_64", target_arch = "aarch64")
));

// ---------------------------------------------------------------------------
// Task states and park intents
// ---------------------------------------------------------------------------

/// In a round (or about to be placed in one).
const ST_READY: u8 = 0;
/// Executing on some worker right now.
const ST_RUNNING: u8 = 1;
/// Announced intent to block; still switching out on its worker.
const ST_BLOCKING: u8 = 2;
/// Fully parked; only a wake-up can move it.
const ST_BLOCKED: u8 = 3;
/// Woken while still in `Blocking`; the worker re-enqueues instead of parking.
const ST_WOKEN_EARLY: u8 = 4;
/// Body returned; never scheduled again.
const ST_FINISHED: u8 = 5;

pub(crate) const INTENT_NONE: u8 = 0;
pub(crate) const INTENT_YIELD: u8 = 1;
pub(crate) const INTENT_BLOCK: u8 = 2;
pub(crate) const INTENT_FINISH: u8 = 3;

/// Task state shared with mailbox wakers (kept alive by `Arc` so a stray
/// waker can never dangle).
struct TaskCore {
    rank: usize,
    status: AtomicU8,
    /// Set by the deadlock detector; blocking operations observe it and
    /// return `MpiError::Timeout` instead of parking again.
    poisoned: AtomicBool,
    /// Why the task is parked (diagnostics; surfaced in deadlock errors).
    wait_reason: Mutex<Option<WaitReason>>,
}

/// Scheduler state shared between workers and wakers.
pub(crate) struct SchedShared {
    /// Tasks woken during the current commit, in commit order — the tail
    /// of the next round. Only the committing worker pushes deliveries, so
    /// the order is deterministic.
    woken: Mutex<Vec<usize>>,
    /// Unfinished tasks.
    live: AtomicUsize,
    /// Context switches performed (deterministic model metric).
    switches: AtomicU64,
    /// Epochs committed (deterministic model metric; incremented once per
    /// `finish_epoch`, which every commit path funnels through).
    epochs: AtomicU64,
    /// Tasks woken by epoch commits (deterministic model metric).
    wakeups: AtomicU64,
    /// First recorded panic payload, with the rank it came from.
    panic: Mutex<Option<(usize, Box<dyn Any + Send>)>>,
}

/// Moves a task out of its blocked state into the next round. Called by
/// mailbox pushes (via the [`Wake`] impl) and by the deadlock poisoner —
/// both only ever during an epoch commit.
fn wake_core(core: &TaskCore, shared: &SchedShared) {
    loop {
        match core.status.load(Ordering::Acquire) {
            ST_BLOCKED => {
                if core
                    .status
                    .compare_exchange(ST_BLOCKED, ST_READY, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
                {
                    shared.woken.lock().push(core.rank);
                    return;
                }
            }
            ST_BLOCKING => {
                if core
                    .status
                    .compare_exchange(
                        ST_BLOCKING,
                        ST_WOKEN_EARLY,
                        Ordering::AcqRel,
                        Ordering::Acquire,
                    )
                    .is_ok()
                {
                    return;
                }
            }
            // Ready / Running / WokenEarly / Finished: already awake (or
            // past caring); the claim loop re-checks the mailbox anyway.
            _ => return,
        }
    }
}

/// The waker subscribed into mailboxes while a task is parked.
struct TaskWaker {
    core: Arc<TaskCore>,
    shared: Arc<SchedShared>,
}

impl Wake for TaskWaker {
    fn wake(&self) {
        wake_core(&self.core, &self.shared);
    }
}

// ---------------------------------------------------------------------------
// Task slots
// ---------------------------------------------------------------------------

#[cfg(all(unix, any(target_arch = "x86_64", target_arch = "aarch64")))]
struct TaskSlot {
    core: Arc<TaskCore>,
    /// Pre-built waker, cloned into mailbox subscriptions.
    waker: Arc<dyn Wake>,
    /// What the task asked its worker to do when it switched out.
    intent: AtomicU8,
    /// Messages sent by this task during the current epoch, in program
    /// order; drained by the commit phase. Only the task (while `Running`)
    /// and the committing worker (while the task is parked) touch this.
    staged: std::cell::UnsafeCell<Vec<(usize, Message)>>,
    /// This slot runs a poll-mode [`poll::RankBody`] instead of a fiber
    /// ([`crate::Backend::Poll`]): no stack region, no context switch —
    /// a claimed task step calls `proceed()` on `poll_body`.
    is_poll: bool,
    /// The rank's fiber (`None` under poll mode, which has no stacks).
    fiber: std::cell::UnsafeCell<Option<fiber::Fiber>>,
    body: std::cell::UnsafeCell<Option<Box<dyn FnOnce() + Send>>>,
    /// The rank's poll-mode state machine (`None` under fiber mode, and
    /// dropped on finish so completed ranks release their state early).
    poll_body: std::cell::UnsafeCell<Option<Box<dyn poll::RankBody>>>,
}

// Safety: `fiber`, `body`, `poll_body`, and `staged` are only touched by
// the single worker that holds the task in `Running` state (enforced by
// the status state machine), by the fiber itself while that worker is
// suspended inside `resume`, or by the committing worker after the epoch
// barrier (when no task of the round is `Running`).
#[cfg(all(unix, any(target_arch = "x86_64", target_arch = "aarch64")))]
unsafe impl Sync for TaskSlot {}
#[cfg(all(unix, any(target_arch = "x86_64", target_arch = "aarch64")))]
unsafe impl Send for TaskSlot {}

thread_local! {
    /// The task currently executing on this worker thread (null outside).
    static CURRENT: Cell<*const ()> = const { Cell::new(std::ptr::null()) };
}

/// Whether the calling code runs on a scheduler fiber (vs a plain thread
/// or a poll-mode body).
#[cfg(all(unix, any(target_arch = "x86_64", target_arch = "aarch64")))]
pub fn on_fiber() -> bool {
    imp::current_slot().is_some_and(|s| !s.is_poll)
}

/// Whether the calling code runs inside a poll-mode rank body
/// ([`crate::Backend::Poll`]): blocking primitives must suspend through
/// the `*_async` path instead of parking.
#[cfg(all(unix, any(target_arch = "x86_64", target_arch = "aarch64")))]
pub fn on_poll_body() -> bool {
    imp::current_slot().is_some_and(|s| s.is_poll)
}

/// Without fibers there is no scheduler to run on.
#[cfg(not(all(unix, any(target_arch = "x86_64", target_arch = "aarch64"))))]
pub fn on_fiber() -> bool {
    false
}

/// Without a scheduler there are no poll-mode bodies either.
#[cfg(not(all(unix, any(target_arch = "x86_64", target_arch = "aarch64"))))]
pub fn on_poll_body() -> bool {
    false
}

// ---------------------------------------------------------------------------
// Fiber-backed implementation
// ---------------------------------------------------------------------------

#[cfg(all(unix, any(target_arch = "x86_64", target_arch = "aarch64")))]
mod imp {
    use super::*;
    use crate::faults::RoundBlame;
    use crate::model::{CommitAlgo, SortAlgo};
    use crate::pool::Pool;
    use crate::proc::Router;
    use parking_lot::Condvar;
    use std::alloc::{alloc, dealloc, handle_alloc_error, Layout};
    use std::ffi::c_void;
    use std::os::raw::{c_int, c_long};

    // Raw mmap/mprotect bindings (std links libc on every unix target, so
    // no external crate is needed).
    extern "C" {
        fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        fn munmap(addr: *mut c_void, len: usize) -> c_int;
        fn mprotect(addr: *mut c_void, len: usize, prot: c_int) -> c_int;
        fn sysconf(name: c_int) -> c_long;
    }

    const PROT_NONE: c_int = 0;
    const PROT_READ: c_int = 1;
    const PROT_WRITE: c_int = 2;
    const MAP_PRIVATE: c_int = 0x02;
    #[cfg(target_os = "linux")]
    const MAP_ANON: c_int = 0x20;
    #[cfg(not(target_os = "linux"))]
    const MAP_ANON: c_int = 0x1000;
    /// Don't charge the (huge, mostly untouched) reservation against
    /// commit limits under strict overcommit accounting.
    #[cfg(target_os = "linux")]
    const MAP_NORESERVE: c_int = 0x4000;
    #[cfg(not(target_os = "linux"))]
    const MAP_NORESERVE: c_int = 0;
    #[cfg(target_os = "linux")]
    const SC_PAGESIZE: c_int = 30;
    #[cfg(not(target_os = "linux"))]
    const SC_PAGESIZE: c_int = 29;

    fn page_size() -> usize {
        let v = unsafe { sysconf(SC_PAGESIZE) };
        if v <= 0 {
            4096
        } else {
            v as usize
        }
    }

    /// One mapping holding every fiber stack, carved into equal regions,
    /// each preceded by a `PROT_NONE` **guard page**: a fiber that overruns
    /// its stack faults immediately instead of silently corrupting its
    /// neighbour (the canary check on finish remains as a second line).
    /// Untouched pages cost nothing: at the default 128 KiB per rank a
    /// 2^15-rank universe reserves ~4 GiB of address space but commits only
    /// the few pages each rank actually touches.
    ///
    /// Every guard splits the mapping, so a guarded slab costs ~2·p kernel
    /// VMAs — and Linux caps VMAs per process (`vm.max_map_count`, default
    /// 65530). At the paper's p = 2^15 the guards alone would exhaust that
    /// budget: the last `mprotect`s fail and, worse, later `mmap`s (worker
    /// thread stacks!) start failing too. Guards are therefore installed
    /// only when 2·p fits comfortably under the budget; above that the
    /// slab stays one O(1)-VMA mapping protected by canaries alone, as it
    /// was before guards existed. If `mmap` is unavailable entirely the
    /// slab falls back to a plain heap allocation (canary-only).
    pub(super) struct StackSlab {
        base: *mut u8,
        /// Total mapping length (guards included).
        total: usize,
        /// Distance between consecutive usable regions (= guard + per).
        stride: usize,
        /// Guard bytes before each region (0 on the heap fallback).
        guard: usize,
        /// Usable stack bytes per region.
        pub(super) per: usize,
        /// Heap-fallback layout (`None` when mmapped).
        heap_layout: Option<Layout>,
    }

    unsafe impl Send for StackSlab {}
    unsafe impl Sync for StackSlab {}

    /// VMA headroom kept free for everything else in the process (worker
    /// thread stacks, allocator arenas, mapped files).
    const VMA_MARGIN: usize = 4096;

    /// The documented Linux default of `vm.max_map_count`, assumed when
    /// the sysctl cannot be read.
    const VMA_BUDGET_DEFAULT: usize = 65530;

    /// Parse the contents of `/proc/sys/vm/max_map_count`. `None` (sysctl
    /// unreadable — procfs unmounted, sandboxed) or garbage falls back to
    /// the documented kernel default, conservatively.
    pub(super) fn vma_budget_from(content: Option<&str>) -> usize {
        content
            .and_then(|s| s.trim().parse::<usize>().ok())
            .unwrap_or(VMA_BUDGET_DEFAULT)
    }

    /// The process's VMA budget, if this platform has one: the *actual*
    /// `vm.max_map_count` sysctl when readable, the documented default
    /// otherwise.
    fn vma_budget() -> Option<usize> {
        if cfg!(target_os = "linux") {
            Some(vma_budget_from(
                std::fs::read_to_string("/proc/sys/vm/max_map_count")
                    .ok()
                    .as_deref(),
            ))
        } else {
            None
        }
    }

    impl StackSlab {
        pub(super) fn new(n: usize, per: usize) -> StackSlab {
            StackSlab::with_budget(n, per, vma_budget())
        }

        /// [`StackSlab::new`] with an explicit VMA budget (`None` = no
        /// platform limit), so tests can pin the guard-page auto-disable
        /// boundary without touching the real sysctl.
        pub(super) fn with_budget(n: usize, per: usize, budget: Option<usize>) -> StackSlab {
            let page = page_size();
            // Round the usable size up to whole pages so every guard page
            // is page-aligned.
            let per = (per.max(16 * 1024)).div_ceil(page) * page;
            // Guards cost ~2n VMAs; skip them when that would crowd the
            // process's VMA budget (see the struct docs).
            let guard = match budget {
                Some(limit) if 2 * n + VMA_MARGIN > limit => 0,
                _ => page,
            };
            let stride = per + guard;
            let total = n * stride;
            let ptr = unsafe {
                mmap(
                    std::ptr::null_mut(),
                    total,
                    PROT_READ | PROT_WRITE,
                    MAP_PRIVATE | MAP_ANON | MAP_NORESERVE,
                    -1,
                    0,
                )
            };
            if ptr as isize != -1 && !ptr.is_null() {
                let base = ptr as *mut u8;
                if guard != 0 {
                    for i in 0..n {
                        // A failed mprotect leaves that one stack unguarded
                        // (still canary-checked); not worth aborting over.
                        unsafe { mprotect(base.add(i * stride) as *mut c_void, guard, PROT_NONE) };
                    }
                }
                return StackSlab {
                    base,
                    total,
                    stride,
                    guard,
                    per,
                    heap_layout: None,
                };
            }
            // Fallback: plain heap slab, no guard pages.
            let layout = Layout::from_size_align(n * per, 16).expect("stack slab layout");
            let base = unsafe { alloc(layout) };
            if base.is_null() {
                handle_alloc_error(layout);
            }
            StackSlab {
                base,
                total: n * per,
                stride: per,
                guard: 0,
                per,
                heap_layout: Some(layout),
            }
        }

        /// Base of region `i`'s *usable* stack (just above its guard page).
        pub(super) fn region(&self, i: usize) -> *mut u8 {
            unsafe { self.base.add(i * self.stride + self.guard) }
        }

        /// Whether overruns fault (guard pages active) on this slab.
        #[cfg(test)]
        pub(super) fn guarded(&self) -> bool {
            self.guard != 0
        }
    }

    impl Drop for StackSlab {
        fn drop(&mut self) {
            match self.heap_layout {
                Some(layout) => unsafe { dealloc(self.base, layout) },
                None => unsafe {
                    munmap(self.base as *mut c_void, self.total);
                },
            }
        }
    }

    /// A staged message annotated with its global commit key.
    struct CommitEntry {
        /// Running max of the sender's arrival times in program order: the
        /// virtual time at which this message becomes *matchable* (MPI
        /// non-overtaking: it cannot be received before its predecessors).
        matchable: Time,
        src: usize,
        /// The sender's per-epoch send counter (program order).
        seq: u32,
        dest: usize,
        msg: Message,
    }

    /// The global commit key: total over all staged messages of one epoch
    /// (`(src, seq)` alone is already unique). The serial commit pushes in
    /// exactly this order; the sharded commit merges wake-ups by it.
    type CommitKey = (Time, usize, u32);

    impl CommitEntry {
        fn key(&self) -> CommitKey {
            (self.matchable, self.src, self.seq)
        }
    }

    /// A wake-up recorded during a sharded commit push, deferred past the
    /// push barrier: the global key of the triggering message plus the
    /// waker to fire during the deterministic merge.
    struct WakeRec {
        key: CommitKey,
        /// Tie-break for several waiters of the *same* message: the push
        /// index within the recording shard's wake vector, with the shard
        /// index OR-ed into the high bits when shards are concatenated.
        /// Makes `(key, ord)` unique, so the wake merge can use an
        /// allocation-free unstable sort and still reproduce the stable
        /// concatenation order exactly.
        ord: u64,
        waker: Arc<dyn Wake>,
    }

    /// A sharded commit in flight: per-shard slices of the
    /// destination-major-sorted commit entries, claimed by workers through
    /// the epoch-tagged cursor exactly like round tasks.
    struct CommitWork {
        /// Shard `i`'s contiguous run of whole per-destination segments.
        /// Only the worker that claimed shard `i` touches element `i`.
        shards: Vec<std::cell::UnsafeCell<Vec<CommitEntry>>>,
        /// Shard `i`'s deferred wake records; same exclusivity.
        wakes: Vec<std::cell::UnsafeCell<Vec<WakeRec>>>,
        /// Tasks that yielded during the epoch — the already-ordered head
        /// of the next round, handed through to the finishing worker.
        next: Mutex<Vec<usize>>,
    }

    // Safety: `shards[i]`/`wakes[i]` are only touched by the single worker
    // that claimed index `i` through the cursor CAS, and by the finishing
    // worker after the commit barrier (`round_done` reaching the shard
    // count with AcqRel ordering).
    unsafe impl Send for CommitWork {}
    unsafe impl Sync for CommitWork {}

    /// The one published round of the parallel k-way merge
    /// ([`SortAlgo::Merge`]): the epoch's staged entries sit flat in
    /// `flat`, cut into per-task runs by `bounds` (each run sorted by
    /// the global commit key by construction). The worker that claims
    /// unit `i` presorts the runs of chunk `ranges[i]` in place
    /// (destination-major, when the commit is sharded) and k-way merges
    /// them into `outputs[i]` in a single pass. The finishing worker
    /// then k-way merges the ≤ 2·workers partial outputs inline and
    /// delivers, exactly as the sort path would.
    struct MergeWork {
        /// The epoch's staged entries, on loan from the scheduler's
        /// `commit_buf`. Entries are moved out by `ptr::read` during the
        /// round; the finisher resets the length to 0 and returns the
        /// storage. Only `base` touches the contents while the round is
        /// in flight — no `&mut Vec` is ever formed concurrently.
        flat: std::cell::UnsafeCell<Vec<CommitEntry>>,
        /// `flat.as_mut_ptr()`, cached at publish time so claim units
        /// never materialise an aliasing `&mut Vec`.
        base: *mut CommitEntry,
        /// Per-task `[start, end)` entry ranges of `flat`, disjoint and
        /// non-empty.
        bounds: Vec<(usize, usize)>,
        /// `ranges[i]` is the disjoint `[lo, hi)` chunk of `bounds` that
        /// claim unit `i` merges; every chunk is non-empty.
        ranges: Vec<(usize, usize)>,
        /// One partial output run per claim unit.
        outputs: Vec<std::cell::UnsafeCell<Vec<CommitEntry>>>,
        /// Merge key: destination-major (sharded commit) vs the plain
        /// global commit key (serial commit).
        dest_major: bool,
        /// Tasks that yielded during the epoch, threaded through the
        /// round to the eventual commit.
        next: Mutex<Vec<usize>>,
    }

    // Safety: the entry ranges `bounds[ranges[i].0..ranges[i].1]` of
    // `flat` and `outputs[i]` are only touched by the single worker that
    // claimed unit `i` through the cursor CAS (the ranges are disjoint),
    // and by the finishing worker after the round barrier.
    unsafe impl Send for MergeWork {}
    unsafe impl Sync for MergeWork {}

    /// What the workers are currently claiming: an epoch's task round, a
    /// merge round ordering the staged messages, or the sharded commit of
    /// the ordered run.
    #[derive(Clone)]
    enum Work {
        /// Tasks of the current epoch, in deterministic order.
        Tasks(Arc<Vec<usize>>),
        /// The chunked k-way merge round of the staged-message commit.
        Merge(Arc<MergeWork>),
        /// Shards of the finished epoch's staged messages.
        Commit(Arc<CommitWork>),
    }

    impl Work {
        /// Number of claimable units this phase holds.
        fn units(&self) -> usize {
            match self {
                Work::Tasks(round) => round.len(),
                Work::Merge(mw) => mw.outputs.len(),
                Work::Commit(cw) => cw.shards.len(),
            }
        }
    }

    /// Phase control: the current claimable work and the generation the
    /// lock-free claim cursor validates against.
    struct EpochGate {
        /// The current phase's work.
        work: Work,
        /// Generation counter, bumped on every publish (task round or
        /// commit phase); also embedded in the claim cursor.
        gen: u64,
        /// All tasks finished: workers should exit.
        done: bool,
    }

    /// Auto-sharding floor: a shard below this many entries amortises
    /// neither the claim CAS nor the per-destination mailbox lock, so
    /// small commits stay on the committing worker.
    const MIN_SHARD_ENTRIES: usize = 64;

    /// Below this many staged entries a *published* merge round cannot
    /// amortise its claim round-trips; the committing worker merges
    /// inline instead (identical output by construction). The inline
    /// single-pass merge costs ~100 ns/entry, so the published round's
    /// gate round-trip (~100–200 µs) only pays off on epochs committing
    /// thousands of messages.
    const MIN_MERGE_ENTRIES: usize = 8192;

    /// Consecutive no-progress epochs (no message staged, no task woken,
    /// no task finished — pure yields) tolerated while a crash-stop fault
    /// is armed before the scheduler declares the run stalled and poisons
    /// every unfinished task. High enough that legitimate bounded polling
    /// (a rank yielding a few times before sending) never trips it; the
    /// detector is off entirely when the fault plan schedules no crashes,
    /// so fault-free programs keep the exact-deadlock-only behaviour.
    const STAGNANT_EPOCH_LIMIT: usize = 64;

    /// The commit-scratch pool families of a scheduler, split out so a
    /// [`super::fleet::Fleet`] can share one set across every universe it
    /// admits (a solo [`Scheduler`] owns a private set). Sharing is
    /// unobservable in simulation output: pooled buffers are always handed
    /// out drained, so only their *capacity* — never their contents —
    /// survives a universe boundary. The process-global size-classed
    /// payload pool ([`crate::pool`]) is shared the same way.
    #[derive(Default)]
    pub(crate) struct SchedPools {
        /// Recycled entry vectors serving both commit shards and merge
        /// runs: every drained (capacity-retaining) vector returns here,
        /// so steady-state commits allocate nothing per epoch.
        entry_pool: Pool<Vec<CommitEntry>>,
        /// Recycled round/next index vectors.
        idx_pool: Pool<Vec<usize>>,
        /// Recycled wake-record vectors.
        wake_pool: Pool<Vec<WakeRec>>,
        /// Recycled `push_segments` scratch (batch + keys + fired buffers).
        scratch_pool: Pool<CommitScratch>,
    }

    /// Wake channel between schedulers and the fleet worker pool: a
    /// versioned condvar. Every event a sweeping fleet worker could be
    /// waiting on — a universe publishing a multi-unit phase, a universe
    /// completing, an admission, shutdown — bumps the version and wakes
    /// the pool, so a worker that reads the version *before* sweeping can
    /// sleep on `wait_past` without lost-wakeup races.
    pub(crate) struct FleetSignal {
        version: Mutex<u64>,
        cv: Condvar,
    }

    impl FleetSignal {
        pub(crate) fn new() -> FleetSignal {
            FleetSignal {
                version: Mutex::new(0),
                cv: Condvar::new(),
            }
        }

        /// Current version; read before a sweep, passed to `wait_past`.
        pub(crate) fn version(&self) -> u64 {
            *self.version.lock()
        }

        /// Record an event and wake every sleeping fleet worker.
        pub(crate) fn notify(&self) {
            *self.version.lock() += 1;
            self.cv.notify_all();
        }

        /// Sleep until the version moves past `seen` (returns immediately
        /// if it already has).
        pub(crate) fn wait_past(&self, seen: u64) {
            let mut v = self.version.lock();
            while *v == seen {
                self.cv.wait(&mut v);
            }
        }
    }

    /// Why [`Scheduler::drain_phases`] returned.
    pub(crate) enum Drain {
        /// The universe completed: every task finished (or was poisoned
        /// and then finished) and the gate is `done`.
        Done,
        /// No unit of the current phase is claimable and the phase is not
        /// advancing under this worker: another worker owns the phase
        /// tail (it will publish the next phase — and signal, if the
        /// phase is multi-unit — when it finishes). Carries the stalled
        /// generation so a solo worker can sleep on the gate until it
        /// moves.
        Stalled(u64),
    }

    /// The cooperative scheduler for one universe run.
    pub(crate) struct Scheduler {
        shared: Arc<SchedShared>,
        slots: Vec<TaskSlot>,
        router: Arc<Router>,
        gate: Mutex<EpochGate>,
        gate_cv: Condvar,
        /// `((gen mod 2^32) << 32) | next_index` — claims CAS the low
        /// half after validating the high half, so a worker holding a
        /// stale phase can never steal an index from the next one.
        cursor: AtomicU64,
        /// Claim units of the current phase that have completed; the
        /// worker that completes the last one advances the phase.
        round_done: AtomicUsize,
        /// The one big staged-entry vector every epoch gathers into
        /// (reused across epochs): the [`SortAlgo::Sort`] oracle sorts it
        /// in place; the [`SortAlgo::Merge`] path sorts it in place for
        /// small epochs and lends its storage to the published merge
        /// round for wide ones.
        commit_buf: Mutex<Vec<CommitEntry>>,
        /// Reusable per-task run boundary list (`[start, end)` ranges of
        /// `commit_buf`) of the merge path.
        bounds_buf: Mutex<Vec<(usize, usize)>>,
        /// The commit-scratch pools — private to this scheduler for a
        /// solo run, shared across universes under a fleet (see
        /// [`SchedPools`]).
        pools: Arc<SchedPools>,
        /// The owning fleet's wake channel, when this universe runs under
        /// one (`None` for solo runs). Notified whenever a multi-unit
        /// phase is published or the universe completes, so sweeping
        /// fleet workers parked on the fleet condvar — not this
        /// scheduler's `gate_cv` — observe the new work.
        signal: Option<Arc<FleetSignal>>,
        /// Displaced `Work::Tasks` round `Arc`s: `publish_tasks` reuses one
        /// when no worker still holds a clone (always true at 1 worker),
        /// so steady-state round publishing is allocation-free.
        round_pool: Mutex<Vec<Arc<Vec<usize>>>>,
        /// The reusable partial-output run list of the merge finisher.
        runs_buf: Mutex<Vec<Vec<CommitEntry>>>,
        /// How the epoch commit delivers staged messages.
        commit_algo: CommitAlgo,
        /// How the epoch commit orders staged messages (merge vs the
        /// global-sort oracle; see the module docs).
        sort_algo: SortAlgo,
        /// Requested shard-count cap (0 = auto from the worker count).
        commit_shards: usize,
        /// Effective worker count of the current run (set by `run`).
        workers: AtomicUsize,
        /// Messages staged by the epoch being committed (crash-stagnation
        /// progress signal; written by `finish_round`, read at
        /// `finish_epoch`).
        epoch_msgs: AtomicUsize,
        /// Consecutive epochs without observable progress (see
        /// [`STAGNANT_EPOCH_LIMIT`]).
        stagnant: AtomicUsize,
        /// `live` count at the previous epoch's commit (a finish is
        /// progress).
        prev_live: AtomicUsize,
        /// Whether workers record wall-clock phase timings (see
        /// [`crate::obs::SchedProfile`]; host time, **not** deterministic).
        profile: bool,
        /// Per-worker phase profiles, merged by each worker at exit.
        profiles: Mutex<Vec<crate::obs::WorkerProfile>>,
        /// Global payload-pool counters at construction; `take_profile`
        /// reports this run's delta.
        payload_base: crate::pool::PayloadCounters,
        /// The fiber stack slab (`None` under poll mode, which is exactly
        /// how poll mode escapes the stack/VMA ceiling).
        _stacks: Option<StackSlab>,
    }

    impl Scheduler {
        /// Prepare `p` task slots with `stack_size` bytes of stack each
        /// (fiber mode), or `p` stackless poll slots when `poll_mode` is
        /// set — poll slots hold a [`poll::RankBody`] instead of a fiber
        /// and are stepped in place, so no stack slab is reserved at all.
        /// `router` is where committed messages are delivered;
        /// `commit_algo`/`sort_algo`/`commit_shards` select and size the
        /// commit pipeline (see [`CommitAlgo`] and [`SortAlgo`]).
        /// `pools` supplies the commit-scratch pools (a fresh private set
        /// for solo runs, the fleet-shared set under a fleet) and
        /// `signal` the owning fleet's wake channel, if any.
        #[allow(clippy::too_many_arguments)]
        pub fn new(
            p: usize,
            stack_size: usize,
            router: Arc<Router>,
            commit_algo: CommitAlgo,
            sort_algo: SortAlgo,
            commit_shards: usize,
            profile: bool,
            pools: Arc<SchedPools>,
            signal: Option<Arc<FleetSignal>>,
            poll_mode: bool,
        ) -> Scheduler {
            let stacks = (!poll_mode).then(|| StackSlab::new(p, stack_size));
            let shared = Arc::new(SchedShared {
                woken: Mutex::new(Vec::new()),
                live: AtomicUsize::new(p),
                switches: AtomicU64::new(0),
                epochs: AtomicU64::new(0),
                wakeups: AtomicU64::new(0),
                panic: Mutex::new(None),
            });
            let mut slots = Vec::with_capacity(p);
            for rank in 0..p {
                let core = Arc::new(TaskCore {
                    rank,
                    status: AtomicU8::new(ST_READY),
                    poisoned: AtomicBool::new(false),
                    wait_reason: Mutex::new(None),
                });
                let waker: Arc<dyn Wake> = Arc::new(TaskWaker {
                    core: Arc::clone(&core),
                    shared: Arc::clone(&shared),
                });
                slots.push(TaskSlot {
                    core,
                    waker,
                    intent: AtomicU8::new(INTENT_NONE),
                    staged: std::cell::UnsafeCell::new(Vec::new()),
                    is_poll: poll_mode,
                    // Placeholder; the real fiber is built below once the
                    // slot has its final address (fiber mode only).
                    fiber: std::cell::UnsafeCell::new(stacks.as_ref().map(|s| unsafe {
                        fiber::Fiber::new(s.region(rank), s.per, std::ptr::null_mut())
                    })),
                    body: std::cell::UnsafeCell::new(None),
                    poll_body: std::cell::UnsafeCell::new(None),
                });
            }
            let mut sched = Scheduler {
                shared,
                slots,
                router,
                gate: Mutex::new(EpochGate {
                    work: Work::Tasks(Arc::new(Vec::new())),
                    gen: 0,
                    done: false,
                }),
                gate_cv: Condvar::new(),
                cursor: AtomicU64::new(0),
                round_done: AtomicUsize::new(0),
                commit_buf: Mutex::new(Vec::new()),
                pools,
                signal,
                round_pool: Mutex::new(Vec::new()),
                runs_buf: Mutex::new(Vec::new()),
                bounds_buf: Mutex::new(Vec::new()),
                commit_algo,
                sort_algo,
                commit_shards,
                workers: AtomicUsize::new(1),
                epoch_msgs: AtomicUsize::new(0),
                stagnant: AtomicUsize::new(0),
                prev_live: AtomicUsize::new(p),
                profile,
                profiles: Mutex::new(Vec::new()),
                payload_base: crate::pool::counters(),
                _stacks: stacks,
            };
            // Now that the slots are at their final addresses, point each
            // fiber's entry argument at its slot (fiber mode only; poll
            // slots have no fiber to re-point).
            for rank in 0..p {
                let (region, per) = match &sched._stacks {
                    Some(s) => (s.region(rank), s.per),
                    None => break,
                };
                let slot_ptr = &sched.slots[rank] as *const TaskSlot as *mut u8;
                sched.slots[rank].fiber = std::cell::UnsafeCell::new(Some(unsafe {
                    fiber::Fiber::new(region, per, slot_ptr)
                }));
            }
            sched
        }

        /// Handle for recording a rank body's panic (first one wins).
        pub fn panic_store(&self) -> Arc<SchedShared> {
            Arc::clone(&self.shared)
        }

        /// Install the body of `rank`'s task.
        ///
        /// # Safety
        /// The boxed closure's true lifetime must outlive [`Scheduler::run`]
        /// (the caller transmutes it to `'static`); `run` completes or
        /// poisons every task before returning, so the borrow never escapes.
        pub unsafe fn spawn(&self, rank: usize, body: Box<dyn FnOnce() + Send>) {
            *self.slots[rank].body.get() = Some(body);
        }

        /// Install the poll-mode state machine of `rank`'s task (poll-mode
        /// schedulers only; see [`poll::RankBody`]).
        ///
        /// # Safety
        /// As for [`Scheduler::spawn`]: anything the body borrows must
        /// outlive [`Scheduler::run`] (the caller transmutes the body to
        /// `'static`); `run` finishes or poisons every task before
        /// returning, so the borrow never escapes.
        pub unsafe fn spawn_poll(&self, rank: usize, body: Box<dyn poll::RankBody>) {
            debug_assert!(self.slots[rank].is_poll, "spawn_poll on a fiber scheduler");
            *self.slots[rank].poll_body.get() = Some(body);
        }

        /// Arm the gate for a run: record the effective worker count
        /// (a pure throughput knob — it sizes shard/merge heuristics that
        /// never affect simulation output) and publish epoch 1 in
        /// `initial_order`. Solo runs call this through [`Scheduler::run`];
        /// a fleet calls it at admission and lets its sweeping workers
        /// drive the gate via [`Scheduler::drain_phases`].
        pub fn prepare(&self, workers: usize, initial_order: &[usize]) {
            self.workers.store(workers.max(1), Ordering::Relaxed);
            let mut g = self.gate.lock();
            g.work = Work::Tasks(Arc::new(initial_order.to_vec()));
            g.gen = 1;
            g.done = initial_order.is_empty();
            self.round_done.store(0, Ordering::Relaxed);
            self.cursor.store(1 << 32, Ordering::Release);
        }

        /// The first recorded rank panic, if any (taken, so a second call
        /// returns `None`).
        pub fn take_panic(&self) -> Option<(usize, Box<dyn Any + Send>)> {
            self.shared.panic.lock().take()
        }

        /// Run every spawned task to completion on `workers` OS threads,
        /// starting epoch 1 in `initial_order`. Returns the first recorded
        /// panic.
        pub fn run(
            &self,
            workers: usize,
            initial_order: &[usize],
        ) -> Option<(usize, Box<dyn Any + Send>)> {
            let workers = workers.max(1);
            self.prepare(workers, initial_order);
            if workers == 1 {
                self.worker_loop(0);
            } else {
                std::thread::scope(|scope| {
                    for w in 0..workers {
                        let this = &*self;
                        std::thread::Builder::new()
                            .name(format!("sched-worker{w}"))
                            .spawn_scoped(scope, move || this.worker_loop(w))
                            .expect("spawn scheduler worker");
                    }
                });
            }
            self.take_panic()
        }

        /// Total context switches performed (diagnostics).
        #[allow(dead_code)]
        pub fn switches(&self) -> u64 {
            self.shared.switches.load(Ordering::Relaxed)
        }

        /// The scheduler's deterministic model counters after a run:
        /// `(epochs, wakeups, switches)` — all pure functions of the
        /// program, identical for every worker count and commit algorithm.
        pub fn counters(&self) -> (u64, u64, u64) {
            (
                self.shared.epochs.load(Ordering::Relaxed),
                self.shared.wakeups.load(Ordering::Relaxed),
                self.shared.switches.load(Ordering::Relaxed),
            )
        }

        /// The wall-clock phase profile of the run, if profiling was on.
        pub fn take_profile(&self) -> Option<crate::obs::SchedProfile> {
            if !self.profile {
                return None;
            }
            let (pool_hits, pool_misses) = self.pools.entry_pool.counters();
            let payload = crate::pool::counters() - self.payload_base;
            Some(crate::obs::SchedProfile {
                workers: std::mem::take(&mut *self.profiles.lock()),
                pool_hits,
                pool_misses,
                payload_hits: payload.hits,
                payload_misses: payload.misses,
                payload_overflow: payload.overflow,
            })
        }

        /// Claim the next unit (task index or commit shard) of the current
        /// phase if `gen` is still current. `None` means: phase drained or
        /// advanced — refresh via the gate.
        fn try_claim(&self, gen: u64, units: usize) -> Option<usize> {
            loop {
                let c = self.cursor.load(Ordering::Acquire);
                // The cursor carries gen mod 2^32; compare masked, or a
                // run past 2^32 phases would never match again and hang.
                if c >> 32 != gen & 0xffff_ffff {
                    return None;
                }
                let i = (c & 0xffff_ffff) as usize;
                if i >= units {
                    return None;
                }
                if self
                    .cursor
                    .compare_exchange_weak(c, c + 1, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
                {
                    return Some(i);
                }
            }
        }

        /// Claim and execute units of the current phase — and every phase
        /// it chains into — until the universe completes or the phase
        /// tail is owned by another worker. Never blocks: a solo worker
        /// sleeps on the gate between calls ([`Scheduler::worker_loop`]),
        /// a fleet worker moves on to the next runnable universe and
        /// parks on the fleet condvar only when *no* universe has work.
        ///
        /// This is the per-universe half of the generation-tagged
        /// multi-universe cursor: claims validate this scheduler's own
        /// `(gen, cursor)` pair, so which universes a worker visits — and
        /// in what order — can never leak a claim unit across universes
        /// or perturb the phase sequence within one.
        pub fn drain_phases(&self, prof: &mut crate::obs::WorkerProfile) -> Drain {
            // Wall-clock phase accounting (only when profiling): `Instant`
            // reads stay out of the deterministic domain — they never feed
            // back into scheduling decisions or virtual time.
            let (mut gen, mut work) = {
                let g = self.gate.lock();
                if g.done {
                    return Drain::Done;
                }
                (g.gen, g.work.clone())
            };
            loop {
                match self.try_claim(gen, work.units()) {
                    Some(i) => {
                        let t0 = self.profile.then(std::time::Instant::now);
                        let mut merged_runs = 0u64;
                        match &work {
                            Work::Tasks(round) => self.run_task(round[i]),
                            Work::Merge(mw) => merged_runs = self.merge_unit(mw, i),
                            Work::Commit(cw) => self.push_shard(cw, i),
                        }
                        if let Some(t0) = t0 {
                            let ns = t0.elapsed().as_nanos() as u64;
                            match &work {
                                Work::Tasks(_) => {
                                    prof.run_ns += ns;
                                    prof.tasks += 1;
                                }
                                Work::Merge(_) => {
                                    prof.merge_ns += ns;
                                    prof.merge_runs += merged_runs;
                                }
                                Work::Commit(_) => {
                                    prof.commit_ns += ns;
                                    prof.shards += 1;
                                }
                            }
                        }
                        if self.round_done.fetch_add(1, Ordering::AcqRel) + 1 == work.units() {
                            // Last unit of the phase: advance it
                            // (single-threaded by construction — every
                            // other worker is either waiting on the gate,
                            // sweeping other universes, or about to).
                            match &work {
                                Work::Tasks(round) => self.finish_round(round),
                                Work::Merge(mw) => self.finish_merge(mw),
                                Work::Commit(cw) => self.finish_commit(cw),
                            }
                        }
                    }
                    None => {
                        let g = self.gate.lock();
                        if g.done {
                            return Drain::Done;
                        }
                        if g.gen == gen {
                            return Drain::Stalled(gen);
                        }
                        gen = g.gen;
                        work = g.work.clone();
                    }
                }
            }
        }

        fn worker_loop(&self, widx: usize) {
            let mut prof = crate::obs::WorkerProfile::default();
            loop {
                match self.drain_phases(&mut prof) {
                    Drain::Done => break,
                    Drain::Stalled(gen) => {
                        let idle0 = self.profile.then(std::time::Instant::now);
                        let mut g = self.gate.lock();
                        while !g.done && g.gen == gen {
                            self.gate_cv.wait(&mut g);
                        }
                        let done = g.done;
                        drop(g);
                        if let Some(t) = idle0 {
                            prof.idle_ns += t.elapsed().as_nanos() as u64;
                        }
                        if done {
                            break;
                        }
                    }
                }
            }
            if self.profile {
                let mut ps = self.profiles.lock();
                if ps.len() <= widx {
                    ps.resize_with(widx + 1, Default::default);
                }
                ps[widx] = prof;
            }
        }

        /// Shard-count target for a commit of `entries` staged messages:
        /// the explicit [`SimConfig::coop_commit_shards`] cap when set,
        /// otherwise ~2 claim units per worker with [`MIN_SHARD_ENTRIES`]
        /// as the floor (1 worker ⇒ 1 shard ⇒ the inline fast path).
        ///
        /// The shard count never affects simulation output — per-mailbox
        /// push order and the wake merge are independent of where the
        /// segment run is cut — so this is purely a throughput knob.
        ///
        /// [`SimConfig::coop_commit_shards`]: crate::SimConfig::coop_commit_shards
        fn shard_target(&self, entries: usize) -> usize {
            if entries == 0 {
                return 1;
            }
            if self.commit_shards > 0 {
                return self.commit_shards.min(entries);
            }
            let w = self.workers.load(Ordering::Relaxed).max(1);
            if w == 1 {
                return 1;
            }
            (entries / MIN_SHARD_ENTRIES).clamp(1, 2 * w)
        }

        /// The executed round is complete: requeue yielded tasks, gather
        /// the epoch's staged messages, and run — or publish — the commit.
        fn finish_round(&self, round: &[usize]) {
            // 1. Yielded tasks re-enter first, in their epoch order.
            let mut next = self.pools.idx_pool.take();
            for &tid in round {
                if self.slots[tid].intent.load(Ordering::Acquire) == INTENT_YIELD {
                    next.push(tid);
                }
            }
            // 2. Order and deliver the staged messages. The global commit
            // key is monotone along each sender's program order (running
            // max), so per-sender FIFO is preserved; across senders it
            // makes wake-up order — and hence the next round's tail —
            // follow virtual time.
            match self.sort_algo {
                SortAlgo::Sort => self.finish_round_sort(round, next),
                SortAlgo::Merge => self.finish_round_merge(round, next),
            }
        }

        /// The [`SortAlgo::Sort`] oracle: gather every staged message into
        /// one vector and sort it globally — the reference the merge path
        /// is checked against.
        fn finish_round_sort(&self, round: &[usize], next: Vec<usize>) {
            let mut staged = self.commit_buf.lock();
            for &tid in round {
                let out = unsafe { &mut *self.slots[tid].staged.get() };
                let mut matchable = Time::ZERO;
                for (seq, (dest, msg)) in out.drain(..).enumerate() {
                    matchable = matchable.max(msg.arrival);
                    staged.push(CommitEntry {
                        matchable,
                        src: tid,
                        seq: seq as u32,
                        dest,
                        msg,
                    });
                }
            }
            // Progress signal for the crash-stagnation detector: how many
            // messages this epoch stages (a pure function of the epoch
            // contents, so identical under every worker count, commit
            // algorithm, and sort algorithm). Read back by `finish_epoch`.
            self.epoch_msgs.store(staged.len(), Ordering::Relaxed);
            if self.commit_algo == CommitAlgo::Serial {
                // Serial oracle: one global (matchable, src, seq)-ordered
                // push loop on this worker; wakes fire inline, in order.
                staged.sort_by_key(CommitEntry::key);
                for e in staged.drain(..) {
                    self.router.mailboxes[e.dest].push(e.msg);
                }
                drop(staged);
                self.finish_epoch(next);
                return;
            }
            // Sharded path: destination-major sort. Each destination's
            // segment is contiguous and internally ordered by the global
            // key — exactly the serial commit's per-mailbox subsequence —
            // so segments can be pushed concurrently without perturbing
            // any mailbox's state.
            staged.sort_by_key(|e| (e.dest, e.matchable, e.src, e.seq));
            let mut buf = std::mem::take(&mut *staged);
            drop(staged);
            self.deliver_sorted(&mut buf, next);
            *self.commit_buf.lock() = buf;
        }

        /// The [`SortAlgo::Merge`] path: per-task staged runs are already
        /// sorted by the global commit key by construction. Entries are
        /// gathered into the shared flat `commit_buf` with per-task run
        /// boundaries recorded on the side. Wide epochs publish one
        /// chunked [`Work::Merge`] round the whole pool claims — each
        /// unit k-way merges a contiguous slice of runs in a single
        /// heap-driven pass that moves every entry exactly once. Small
        /// epochs (and 1-worker pools) instead sort the flat buffer in
        /// place with the allocation-free unstable sort: the commit key
        /// is globally *unique*, so every strategy lands on the same
        /// sorted order — DESIGN.md §10 proves the result bit-identical
        /// to the [`SortAlgo::Sort`] oracle either way.
        fn finish_round_merge(&self, round: &[usize], next: Vec<usize>) {
            let dest_major = self.commit_algo != CommitAlgo::Serial;
            let mut staged = self.commit_buf.lock();
            let mut bounds = std::mem::take(&mut *self.bounds_buf.lock());
            for &tid in round {
                let out = unsafe { &mut *self.slots[tid].staged.get() };
                if out.is_empty() {
                    continue;
                }
                let start = staged.len();
                let mut matchable = Time::ZERO;
                for (seq, (dest, msg)) in out.drain(..).enumerate() {
                    matchable = matchable.max(msg.arrival);
                    staged.push(CommitEntry {
                        matchable,
                        src: tid,
                        seq: seq as u32,
                        dest,
                        msg,
                    });
                }
                bounds.push((start, staged.len()));
            }
            let total = staged.len();
            self.epoch_msgs.store(total, Ordering::Relaxed);
            let workers = self.workers.load(Ordering::Relaxed).max(1);
            if workers > 1 && bounds.len() > 2 && total >= MIN_MERGE_ENTRIES {
                let flat = std::mem::take(&mut *staged);
                drop(staged);
                self.publish_merge(flat, bounds, dest_major, next);
                return;
            }
            bounds.clear();
            *self.bounds_buf.lock() = bounds;
            // Inline fast path: below the publish threshold a claim
            // round-trip costs more than the ordering itself, so order
            // the flat buffer in place. The unstable sort is
            // deterministic here because the key is unique, and unlike
            // the oracle's stable sort it allocates no scratch.
            if self.commit_algo == CommitAlgo::Serial {
                staged.sort_unstable_by_key(CommitEntry::key);
                for e in staged.drain(..) {
                    self.router.mailboxes[e.dest].push(e.msg);
                }
                drop(staged);
                self.finish_epoch(next);
                return;
            }
            staged.sort_unstable_by_key(|e| (e.dest, e.matchable, e.src, e.seq));
            let mut buf = std::mem::take(&mut *staged);
            drop(staged);
            self.deliver_sorted(&mut buf, next);
            *self.commit_buf.lock() = buf;
        }

        /// [`merge_k`] with heap/cursor scratch drawn from the index pool.
        fn merge_k_pooled(
            &self,
            runs: &mut [Vec<CommitEntry>],
            out: &mut Vec<CommitEntry>,
            dest_major: bool,
        ) {
            let mut pos = self.pools.idx_pool.take();
            let mut heap = self.pools.idx_pool.take();
            merge_k(runs, out, dest_major, &mut pos, &mut heap);
            pos.clear();
            self.pools.idx_pool.put(pos);
            self.pools.idx_pool.put(heap);
        }

        /// Publish the one chunked merge round over the flat staged
        /// buffer: ~2 claim units per worker, each k-way merging a
        /// contiguous chunk of per-task runs into one partial output in
        /// a single pass.
        fn publish_merge(
            &self,
            mut flat: Vec<CommitEntry>,
            bounds: Vec<(usize, usize)>,
            dest_major: bool,
            next: Vec<usize>,
        ) {
            let workers = self.workers.load(Ordering::Relaxed).max(1);
            let units = (bounds.len() / 2).clamp(1, 2 * workers);
            let per = bounds.len().div_ceil(units);
            let ranges: Vec<(usize, usize)> = (0..units)
                .map(|i| (i * per, ((i + 1) * per).min(bounds.len())))
                .filter(|&(lo, hi)| lo < hi)
                .collect();
            let outputs = (0..ranges.len())
                .map(|_| std::cell::UnsafeCell::new(self.pools.entry_pool.take()))
                .collect();
            // Cache the data pointer while this worker still holds the
            // buffer exclusively — claim units must never materialise an
            // aliasing `&mut Vec` of their own.
            let base = flat.as_mut_ptr();
            let mw = Arc::new(MergeWork {
                flat: std::cell::UnsafeCell::new(flat),
                base,
                bounds,
                ranges,
                outputs,
                dest_major,
                next: Mutex::new(next),
            });
            self.publish(Work::Merge(mw));
        }

        /// Claimed merge unit `i`: k-way merge the flat-buffer runs of
        /// chunk `ranges[i]` into `outputs[i]`, presorting each run
        /// slice destination-major first when the commit is sharded.
        /// Returns the number of input runs consumed (profile data).
        fn merge_unit(&self, mw: &MergeWork, i: usize) -> u64 {
            let (lo, hi) = mw.ranges[i];
            let chunk = &mw.bounds[lo..hi];
            // Safety: unit `i` was claimed exclusively through the cursor
            // CAS; the bound ranges are disjoint, so only this worker
            // touches these entries of `flat` (through `base`, never
            // through the `Vec`) and `outputs[i]` until the round
            // barrier.
            let out = unsafe { &mut *mw.outputs[i].get() };
            let mut total = 0;
            for &(s, e) in chunk {
                if mw.dest_major {
                    let run = unsafe { std::slice::from_raw_parts_mut(mw.base.add(s), e - s) };
                    presort_run(run);
                }
                total += e - s;
            }
            out.reserve(total);
            let mut pos = self.pools.idx_pool.take();
            let mut heap = self.pools.idx_pool.take();
            // Safety: `out` has capacity for the whole chunk, and each
            // entry in `chunk`'s bound ranges is moved out exactly once
            // (the finisher resets `flat`'s length before the moved-out
            // entries could drop through the `Vec`).
            unsafe { merge_k_flat(mw.base, chunk, out, mw.dest_major, &mut pos, &mut heap) };
            pos.clear();
            self.pools.idx_pool.put(pos);
            self.pools.idx_pool.put(heap);
            (hi - lo) as u64
        }

        /// All units of the merge round are done: every staged entry has
        /// been moved into a partial output, so forget the flat buffer's
        /// contents and return its storage, then k-way merge the partial
        /// outputs inline and deliver.
        fn finish_merge(&self, mw: &MergeWork) {
            // Safety: the round barrier has passed; no worker holds a
            // unit any more. Every entry of `flat` was `ptr::read` out by
            // some unit (the ranges tile `bounds`, the bounds tile the
            // buffer), so resetting the length forgets moved-from
            // entries only.
            let flat = unsafe { &mut *mw.flat.get() };
            unsafe { flat.set_len(0) };
            *self.commit_buf.lock() = std::mem::take(flat);
            let mut runs = std::mem::take(&mut *self.runs_buf.lock());
            let mut total = 0;
            for cell in &mw.outputs {
                let out = std::mem::take(unsafe { &mut *cell.get() });
                total += out.len();
                runs.push(out);
            }
            let mut merged = self.pools.entry_pool.take();
            merged.reserve(total);
            self.merge_k_pooled(&mut runs, &mut merged, mw.dest_major);
            for run in runs.drain(..) {
                if run.capacity() > 0 {
                    self.pools.entry_pool.put(run);
                }
            }
            *self.runs_buf.lock() = runs;
            let next = std::mem::take(&mut *mw.next.lock());
            self.deliver_merged(&mut merged, next, mw.dest_major);
            if merged.capacity() > 0 {
                self.pools.entry_pool.put(merged);
            }
        }

        /// Deliver the fully merged run: a serial commit pushes inline in
        /// global key order (wakes fire in push order — the oracle's own
        /// order); a sharded commit hands the destination-major run to
        /// the shard pipeline.
        fn deliver_merged(
            &self,
            merged: &mut Vec<CommitEntry>,
            next: Vec<usize>,
            dest_major: bool,
        ) {
            if dest_major {
                self.deliver_sorted(merged, next);
            } else {
                for e in merged.drain(..) {
                    self.router.mailboxes[e.dest].push(e.msg);
                }
                self.finish_epoch(next);
            }
        }

        /// Deliver a destination-major-ordered commit run: inline on this
        /// worker for small commits (or a 1-worker pool), else cut into
        /// shards at segment boundaries and published as [`Work::Commit`].
        /// `staged` is drained either way (capacity retained for reuse).
        fn deliver_sorted(&self, staged: &mut Vec<CommitEntry>, next: Vec<usize>) {
            let target = self.shard_target(staged.len());
            if target <= 1 {
                // Inline fast path: no claim round-trip for small commits
                // (or a 1-worker pool). Identical output by construction.
                let mut wakes = self.pools.wake_pool.take();
                let mut scratch = self.pools.scratch_pool.take();
                push_segments(&self.router, staged.drain(..), &mut wakes, &mut scratch);
                self.pools.scratch_pool.put(scratch);
                self.fire_wakes_merged(&mut wakes);
                self.pools.wake_pool.put(wakes);
                self.finish_epoch(next);
                return;
            }
            // Cut the run into ≤ target shards at segment boundaries
            // (shards own whole destinations; a `cmp` on `dest` marks the
            // cut). Every shard except possibly the last holds ≥ ⌈n/target⌉
            // entries, so at most `target` shards are produced. Shard
            // vectors are recycled through `entry_pool`, so steady state
            // moves each entry once (ordered run → shard) without
            // allocating. (Handing claimers disjoint raw sub-slices of
            // the run itself would avoid even that move, but needs
            // `ptr::read`-style manual moves out of aliased storage; one
            // 64-byte memcpy per message isn't worth that unsafety.)
            let per = staged.len().div_ceil(target);
            let take_shard = || {
                let mut v = self.pools.entry_pool.take();
                v.reserve(per + 8);
                v
            };
            let mut shards: Vec<std::cell::UnsafeCell<Vec<CommitEntry>>> = Vec::new();
            let mut cur: Vec<CommitEntry> = take_shard();
            for e in staged.drain(..) {
                if cur.len() >= per && cur.last().is_some_and(|l| l.dest != e.dest) {
                    let full = std::mem::replace(&mut cur, take_shard());
                    shards.push(std::cell::UnsafeCell::new(full));
                }
                cur.push(e);
            }
            if shards.is_empty() {
                // One giant destination segment (pure all-to-one fan-in):
                // a single mailbox must be pushed in order anyway.
                let mut wakes = self.pools.wake_pool.take();
                let mut scratch = self.pools.scratch_pool.take();
                push_segments(&self.router, cur.drain(..), &mut wakes, &mut scratch);
                self.pools.scratch_pool.put(scratch);
                self.pools.entry_pool.put(cur);
                self.fire_wakes_merged(&mut wakes);
                self.pools.wake_pool.put(wakes);
                self.finish_epoch(next);
                return;
            }
            shards.push(std::cell::UnsafeCell::new(cur));
            let wakes = (0..shards.len())
                .map(|_| std::cell::UnsafeCell::new(self.pools.wake_pool.take()))
                .collect();
            let cw = Arc::new(CommitWork {
                shards,
                wakes,
                next: Mutex::new(next),
            });
            // Publish the commit phase; this worker re-enters its claim
            // loop and takes shards alongside the woken pool.
            self.publish(Work::Commit(cw));
        }

        /// Push one claimed shard: batch-deliver its per-destination
        /// segments, deferring every wake-up as a keyed record.
        fn push_shard(&self, cw: &CommitWork, i: usize) {
            // Safety: shard `i` was claimed exclusively through the cursor
            // CAS; only this worker touches its vectors until the commit
            // barrier passes.
            let entries = unsafe { &mut *cw.shards[i].get() };
            let wakes = unsafe { &mut *cw.wakes[i].get() };
            let mut scratch = self.pools.scratch_pool.take();
            push_segments(&self.router, entries.drain(..), wakes, &mut scratch);
            self.pools.scratch_pool.put(scratch);
        }

        /// All shards are pushed: merge the deferred wake-ups in global
        /// key order (bit-identical to the serial commit's wake order) and
        /// close out the epoch.
        fn finish_commit(&self, cw: &CommitWork) {
            let mut recs = self.pools.wake_pool.take();
            for (s, slot) in cw.wakes.iter().enumerate() {
                // Safety: the commit barrier has passed; no worker holds a
                // shard any more.
                let ws = unsafe { &mut *slot.get() };
                for mut r in ws.drain(..) {
                    // Stamp the shard into the high ord bits so the
                    // concatenation order stays recoverable after the
                    // unstable merge sort (see [`WakeRec::ord`]).
                    r.ord |= (s as u64) << 32;
                    recs.push(r);
                }
                let ws = std::mem::take(ws);
                if ws.capacity() > 0 {
                    self.pools.wake_pool.put(ws);
                }
            }
            // Recycle the drained shard vectors (their capacity) for the
            // next epoch's commit.
            for cell in &cw.shards {
                let v = std::mem::take(unsafe { &mut *cell.get() });
                if v.capacity() > 0 {
                    self.pools.entry_pool.put(v);
                }
            }
            self.fire_wakes_merged(&mut recs);
            self.pools.wake_pool.put(recs);
            let next = std::mem::take(&mut *cw.next.lock());
            self.finish_epoch(next);
        }

        /// Fire deferred wake-ups in ascending global-key order. `(key,
        /// ord)` is unique (see [`WakeRec::ord`]), so the allocation-free
        /// unstable sort reproduces exactly what a stable by-key sort of
        /// the shard concatenation would: several waiters triggered by
        /// the *same* message keep their subscription order — the order
        /// the serial commit's inline `push` produces.
        fn fire_wakes_merged(&self, recs: &mut Vec<WakeRec>) {
            recs.sort_unstable_by_key(|r| (r.key, r.ord));
            for r in recs.drain(..) {
                r.waker.wake();
            }
        }

        /// Deliveries are committed: append woken receivers to the next
        /// round, detect deadlock, and publish the next round.
        fn finish_epoch(&self, mut next: Vec<usize>) {
            self.shared.epochs.fetch_add(1, Ordering::Relaxed);
            // Receivers woken by the committed deliveries, in commit order.
            let woken_count;
            {
                let mut w = self.shared.woken.lock();
                woken_count = w.len();
                next.append(&mut w);
            }
            self.shared
                .wakeups
                .fetch_add(woken_count as u64, Ordering::Relaxed);
            // Crash-stop stagnation detector. With a crashed rank in the
            // fault plan, a peer *polling* for its messages (nonblocking
            // collectives, sorter wave loops) yields forever: the round
            // never empties, so the exact deadlock detector below cannot
            // fire. Progress is epoch-observable — a message staged, a
            // task woken, a task finished. STAGNANT_EPOCH_LIMIT epochs of
            // pure yields while crashes are armed mean no progress is
            // possible any more: poison every unfinished task so polling
            // loops fail loudly with a RoundBlame. Every input here is a
            // pure function of the epoch contents, so the poison epoch is
            // identical for every worker count and commit algorithm.
            let live = self.shared.live.load(Ordering::Acquire);
            if live > 0 && self.router.faults.has_crashes() {
                let msgs = self.epoch_msgs.swap(0, Ordering::Relaxed);
                let prev = self.prev_live.swap(live, Ordering::Relaxed);
                if msgs > 0 || woken_count > 0 || prev != live {
                    self.stagnant.store(0, Ordering::Relaxed);
                } else if self.stagnant.fetch_add(1, Ordering::Relaxed) + 1 >= STAGNANT_EPOCH_LIMIT
                {
                    self.stagnant.store(0, Ordering::Relaxed);
                    for slot in &self.slots {
                        if slot.core.status.load(Ordering::Acquire) != ST_FINISHED {
                            slot.core.poisoned.store(true, Ordering::Release);
                            // Blocked tasks need a wake to observe the
                            // poison; yielded (polling) tasks are already
                            // in `next` and observe it on their next
                            // mailbox operation. `wake_core` is a no-op
                            // for non-blocked states.
                            wake_core(&slot.core, &self.shared);
                        }
                    }
                    next.append(&mut self.shared.woken.lock());
                }
            }
            // Nothing runnable but tasks remain: deadlock. Poison every
            // blocked task; the wake-ups queue them (in rank order) so
            // their blocking operations can return the timeout error.
            if next.is_empty() && live > 0 {
                for slot in &self.slots {
                    if slot.core.status.load(Ordering::Acquire) == ST_BLOCKED {
                        slot.core.poisoned.store(true, Ordering::Release);
                        wake_core(&slot.core, &self.shared);
                    }
                }
                next.append(&mut self.shared.woken.lock());
                if next.is_empty() {
                    eprintln!(
                        "mpisim: scheduler invariant broken: {live} live tasks, none \
                         runnable, none blocked"
                    );
                    std::process::abort();
                }
            }
            if live == 0 {
                let mut g = self.gate.lock();
                g.done = true;
                self.gate_cv.notify_all();
                drop(g);
                // Under a fleet, completion must also wake sweeping
                // workers parked on the fleet condvar so one of them
                // reaps this universe (and admits the next).
                if let Some(sig) = &self.signal {
                    sig.notify();
                }
            } else {
                self.publish_tasks(next);
            }
        }

        /// Publish the next task round, reusing a displaced round `Arc`
        /// when no worker still holds a clone of it. At 1 worker that is
        /// always true by the time the next publish happens (the sole
        /// worker re-reads the gate — dropping its clone — before it can
        /// finish another round), so the steady-state epoch publishes
        /// without touching the allocator; a still-referenced `Arc` just
        /// falls back to a fresh allocation.
        fn publish_tasks(&self, mut next: Vec<usize>) {
            let cand = self.round_pool.lock().pop();
            let arc = match cand {
                Some(mut a) => match Arc::get_mut(&mut a) {
                    Some(v) => {
                        v.clear();
                        v.append(&mut next);
                        a
                    }
                    None => Arc::new(std::mem::take(&mut next)),
                },
                None => Arc::new(std::mem::take(&mut next)),
            };
            if next.capacity() > 0 {
                next.clear();
                self.pools.idx_pool.put(next);
            }
            self.publish(Work::Tasks(arc));
        }

        /// Install `work` as the next claimable phase. The cursor moves
        /// last: claims validate its gen half, so no worker can touch the
        /// new phase before the gate state it pairs with is visible.
        fn publish(&self, work: Work) {
            let units = work.units();
            let mut g = self.gate.lock();
            g.gen += 1;
            let prev = std::mem::replace(&mut g.work, work);
            self.round_done.store(0, Ordering::Relaxed);
            self.cursor
                .store((g.gen & 0xffff_ffff) << 32, Ordering::Release);
            // A one-unit phase is fully served by the publishing worker
            // itself — waking the pool for it would just thrash the
            // sleeping workers during serial phases of the program. They
            // stay parked until a wider phase (or `done`) arrives; the
            // publisher alone keeps the simulation live.
            if units > 1 {
                self.gate_cv.notify_all();
            }
            drop(g);
            // Same rule for a fleet's pool: multi-unit phases invite idle
            // workers in; one-unit phases stay with the publishing worker
            // (its `drain_phases` claim loop serves them without ever
            // leaving the universe).
            if units > 1 {
                if let Some(sig) = &self.signal {
                    sig.notify();
                }
            }
            // The displaced round vector feeds a later `publish_tasks`
            // (its `Arc` becomes unique once every worker re-reads the
            // gate); merge/commit work is dropped as usual.
            if let Work::Tasks(arc) = prev {
                let mut pool = self.round_pool.lock();
                if pool.len() < 4 {
                    pool.push(arc);
                }
            }
        }

        fn run_task(&self, tid: usize) {
            let slot = &self.slots[tid];
            slot.core.status.store(ST_RUNNING, Ordering::Release);
            slot.intent.store(INTENT_NONE, Ordering::Release);
            self.shared.switches.fetch_add(1, Ordering::Relaxed);
            let prev = CURRENT.with(|c| c.replace(slot as *const TaskSlot as *const ()));
            if slot.is_poll {
                // Poll slice = fiber slice: the body runs until it
                // yields, parks, or finishes — it just suspends by
                // returning from `proceed` instead of context-switching.
                // `Step` is mapped onto the same intents the fiber
                // stores, so the epoch bookkeeping below is shared.
                let step = {
                    // Safety: this worker holds the task in `Running`
                    // (claimed exclusively through the cursor CAS).
                    let body = unsafe { (*slot.poll_body.get()).as_mut() }
                        .expect("poll body installed and unfinished");
                    body.handle_incoming();
                    if body.wants_to_proceed() {
                        body.proceed()
                    } else {
                        poll::Step::Yielded
                    }
                };
                match step {
                    poll::Step::Yielded => slot.intent.store(INTENT_YIELD, Ordering::Release),
                    poll::Step::Blocked => slot.intent.store(INTENT_BLOCK, Ordering::Release),
                    poll::Step::Finished => {
                        slot.intent.store(INTENT_FINISH, Ordering::Release);
                        // Release the finished rank's state machine early:
                        // at 2^20 ranks the tail of a run would otherwise
                        // hold every completed body's captures live.
                        unsafe { *slot.poll_body.get() = None };
                    }
                }
            } else {
                unsafe {
                    (*slot.fiber.get())
                        .as_mut()
                        .expect("fiber installed")
                        .resume()
                };
            }
            CURRENT.with(|c| c.set(prev));
            match slot.intent.load(Ordering::Acquire) {
                INTENT_YIELD => {
                    // Re-entry happens at commit (the intent scan), which
                    // keeps the next round's order deterministic.
                    slot.core.status.store(ST_READY, Ordering::Release);
                }
                INTENT_BLOCK => {
                    if slot
                        .core
                        .status
                        .compare_exchange(
                            ST_BLOCKING,
                            ST_BLOCKED,
                            Ordering::AcqRel,
                            Ordering::Acquire,
                        )
                        .is_err()
                    {
                        // WokenEarly (defensive; unreachable under the epoch
                        // discipline): convert to a yield so the commit
                        // scan re-enqueues it.
                        slot.core.status.store(ST_READY, Ordering::Release);
                        slot.intent.store(INTENT_YIELD, Ordering::Release);
                    }
                }
                INTENT_FINISH => {
                    slot.core.status.store(ST_FINISHED, Ordering::Release);
                    // Poll bodies have no stack to overrun, hence no
                    // canary to check.
                    if let Some(f) = unsafe { &*slot.fiber.get() } {
                        if !f.canary_intact() {
                            eprintln!(
                                "mpisim: rank {tid} overflowed its {}-byte fiber stack; \
                                 raise SimConfig::coop_stack_size",
                                self._stacks.as_ref().map_or(0, |s| s.per)
                            );
                            std::process::abort();
                        }
                    }
                    self.shared.live.fetch_sub(1, Ordering::AcqRel);
                }
                other => {
                    // A fiber switched out without announcing an intent:
                    // scheduler invariant broken.
                    eprintln!("mpisim: fiber {tid} suspended with invalid intent {other}");
                    std::process::abort();
                }
            }
        }
    }

    /// Reusable scratch of one `push_segments` call: the per-destination
    /// message batch, its parallel key array, and the fired-subscription
    /// buffer handed to [`Mailbox::push_batch`]. Pooled so steady-state
    /// commits reuse the capacity of all three.
    #[derive(Default)]
    struct CommitScratch {
        batch: Vec<Message>,
        keys: Vec<CommitKey>,
        fired: Vec<(usize, Arc<dyn Wake>)>,
    }

    /// Push a destination-major-sorted run of commit entries: one
    /// [`Mailbox::push_batch`] per destination segment (one lock
    /// acquisition per destination, however large its fan-in), recording
    /// every triggered wake-up as a [`WakeRec`] keyed by the triggering
    /// message's global commit key instead of firing it.
    fn push_segments(
        router: &Router,
        entries: impl Iterator<Item = CommitEntry>,
        wakes: &mut Vec<WakeRec>,
        s: &mut CommitScratch,
    ) {
        fn flush(router: &Router, dest: usize, s: &mut CommitScratch, wakes: &mut Vec<WakeRec>) {
            if s.batch.is_empty() {
                return;
            }
            router.mailboxes[dest].push_batch(&mut s.batch, &mut s.fired);
            for (idx, waker) in s.fired.drain(..) {
                wakes.push(WakeRec {
                    key: s.keys[idx],
                    ord: wakes.len() as u64,
                    waker,
                });
            }
            s.keys.clear();
        }
        let mut dest = usize::MAX;
        for e in entries {
            if e.dest != dest {
                flush(router, dest, s, wakes);
                dest = e.dest;
            }
            s.keys.push(e.key());
            s.batch.push(e.msg);
        }
        flush(router, dest, s, wakes);
    }

    /// The merge comparator: destination-major for sharded commits
    /// (matching the oracle's `(dest, matchable, src, seq)` sort key),
    /// the plain global commit key for serial ones (leading 0). Total
    /// *and unique* over an epoch's staged messages either way, so
    /// merging sorted runs by it reproduces the oracle's sorted order
    /// exactly, independent of the merge-tree shape.
    fn merge_key(e: &CommitEntry, dest_major: bool) -> (usize, Time, usize, u32) {
        (
            if dest_major { e.dest } else { 0 },
            e.matchable,
            e.src,
            e.seq,
        )
    }

    /// Sort one per-task run destination-major. Within a run `src` is
    /// constant and `seq` unique, so this key is unique — the unstable
    /// sort is therefore deterministic, and unlike the stable sort it
    /// allocates nothing (in-place pdqsort).
    fn presort_run(run: &mut [CommitEntry]) {
        run.sort_unstable_by_key(|e| (e.dest, e.matchable, e.seq));
    }

    /// Single-pass k-way merge of runs sorted by [`merge_key`] into
    /// `out` (appending), emptying every input — capacity is retained
    /// for recycling. A binary min-heap of run indices pops the globally
    /// smallest head `m` times, so every entry is **moved exactly once**
    /// (`CommitEntry` is large; the pairwise-rounds alternative moves
    /// each entry once per halving round and loses to the sort oracle on
    /// wide epochs). The key is unique across runs, so the result is the
    /// unique sorted order of the union — no tie-breaking needed.
    ///
    /// `pos` (per-run read cursor) and `heap` are caller-provided
    /// scratch, cleared here. **`out` must already have capacity for
    /// every entry**: the `ptr::read` moves below rely on `out.push`
    /// never panicking mid-merge (a reallocation cannot panic into a
    /// state where moved-out entries would double-drop, but reserving up
    /// front keeps the hot loop allocation-free anyway and makes the
    /// reasoning trivial).
    fn merge_k(
        runs: &mut [Vec<CommitEntry>],
        out: &mut Vec<CommitEntry>,
        dest_major: bool,
        pos: &mut Vec<usize>,
        heap: &mut Vec<usize>,
    ) {
        pos.clear();
        pos.resize(runs.len(), 0);
        heap.clear();
        heap.extend((0..runs.len()).filter(|&r| !runs[r].is_empty()));
        for i in (0..heap.len() / 2).rev() {
            sift_down(heap, i, runs, pos, dest_major);
        }
        while let Some(&r) = heap.first() {
            // Safety: each `(run, index)` is read exactly once (`pos[r]`
            // strictly advances past it) and every run's length is reset
            // to 0 below before any of its moved-out entries could drop
            // through the `Vec`; `out` was reserved by the caller, so
            // the push cannot panic mid-merge.
            unsafe {
                out.push(std::ptr::read(runs[r].as_ptr().add(pos[r])));
            }
            pos[r] += 1;
            if pos[r] == runs[r].len() {
                let last = heap.len() - 1;
                heap.swap(0, last);
                heap.pop();
            }
            if !heap.is_empty() {
                sift_down(heap, 0, runs, pos, dest_major);
            }
        }
        for run in runs.iter_mut() {
            // Every entry was moved out above; forget them all without
            // dropping (safety: len 0 ≤ capacity, elements 0..old_len
            // are semantically moved-from).
            unsafe { run.set_len(0) };
        }
    }

    /// Restore the min-heap property at `heap[i]`: sift the run index
    /// down while a child's head entry has a smaller [`merge_key`].
    fn sift_down(
        heap: &mut [usize],
        mut i: usize,
        runs: &[Vec<CommitEntry>],
        pos: &[usize],
        dest_major: bool,
    ) {
        let key = |r: usize| merge_key(&runs[r][pos[r]], dest_major);
        loop {
            let l = 2 * i + 1;
            if l >= heap.len() {
                return;
            }
            let r = l + 1;
            let c = if r < heap.len() && key(heap[r]) < key(heap[l]) {
                r
            } else {
                l
            };
            if key(heap[c]) < key(heap[i]) {
                heap.swap(i, c);
                i = c;
            } else {
                return;
            }
        }
    }

    /// [`merge_k`] over runs living as `bounds` slices of one flat
    /// buffer (the published merge round's layout): `pos[r]` is the
    /// absolute flat-buffer cursor of run `r`, advancing from
    /// `bounds[r].0` to `bounds[r].1`. Entries are moved out through
    /// `base` with `ptr::read`; the caller's finisher forgets them all
    /// at once by resetting the owning `Vec`'s length.
    ///
    /// # Safety
    ///
    /// - `base` must point to a live allocation covering every index in
    ///   `bounds`, with every such entry initialised and not yet moved
    ///   from, and no other reference to those entries live for the
    ///   duration of the call.
    /// - `out` must already have capacity for every entry in `bounds`:
    ///   the `ptr::read` moves rely on `out.push` never panicking
    ///   mid-merge.
    /// - The caller must treat the read entries as moved-from (reset the
    ///   owning buffer's length without dropping them).
    unsafe fn merge_k_flat(
        base: *mut CommitEntry,
        bounds: &[(usize, usize)],
        out: &mut Vec<CommitEntry>,
        dest_major: bool,
        pos: &mut Vec<usize>,
        heap: &mut Vec<usize>,
    ) {
        pos.clear();
        pos.extend(bounds.iter().map(|&(s, _)| s));
        heap.clear();
        heap.extend((0..bounds.len()).filter(|&r| bounds[r].0 < bounds[r].1));
        for i in (0..heap.len() / 2).rev() {
            sift_down_flat(heap, i, base, pos, dest_major);
        }
        while let Some(&r) = heap.first() {
            out.push(std::ptr::read(base.add(pos[r])));
            pos[r] += 1;
            if pos[r] == bounds[r].1 {
                let last = heap.len() - 1;
                heap.swap(0, last);
                heap.pop();
            }
            if !heap.is_empty() {
                sift_down_flat(heap, 0, base, pos, dest_major);
            }
        }
    }

    /// [`sift_down`] for the flat-buffer layout: run heads live at
    /// `base.add(pos[r])`.
    ///
    /// # Safety
    ///
    /// Every `pos[r]` for `r` in `heap` must index a live, initialised
    /// entry of the `base` allocation (guaranteed by [`merge_k_flat`]'s
    /// loop invariant: a run leaves the heap before its cursor passes
    /// its bound).
    unsafe fn sift_down_flat(
        heap: &mut [usize],
        mut i: usize,
        base: *const CommitEntry,
        pos: &[usize],
        dest_major: bool,
    ) {
        let key = |r: usize| merge_key(&*base.add(pos[r]), dest_major);
        loop {
            let l = 2 * i + 1;
            if l >= heap.len() {
                return;
            }
            let r = l + 1;
            let c = if r < heap.len() && key(heap[r]) < key(heap[l]) {
                r
            } else {
                l
            };
            if key(heap[c]) < key(heap[i]) {
                heap.swap(i, c);
                i = c;
            } else {
                return;
            }
        }
    }

    /// Entry point every fiber starts in (called by the asm trampoline with
    /// the `TaskSlot` pointer that was planted in the initial frame).
    #[no_mangle]
    unsafe extern "C" fn mpisim_fiber_main(task: *mut u8) -> ! {
        let slot = &*(task as *const TaskSlot);
        let body = (*slot.body.get()).take().expect("fiber body installed");
        body(); // catches its own panics
        slot.intent.store(INTENT_FINISH, Ordering::Release);
        (*slot.fiber.get())
            .as_mut()
            .expect("fiber installed")
            .switch_to_worker();
        // Resuming a finished fiber is a scheduler bug.
        std::process::abort();
    }

    /// Record a rank body's panic payload; the first one wins and is
    /// re-thrown by `Universe::run` after the scheduler drains.
    pub(crate) fn record_panic(store: &SchedShared, rank: usize, payload: Box<dyn Any + Send>) {
        let mut g = store.panic.lock();
        if g.is_none() {
            *g = Some((rank, payload));
        }
    }

    pub(super) fn current_slot() -> Option<&'static TaskSlot> {
        let p = CURRENT.with(|c| c.get());
        if p.is_null() {
            None
        } else {
            // Slots outlive every fiber execution; the 'static is internal.
            Some(unsafe { &*(p as *const TaskSlot) })
        }
    }

    /// Stage an outgoing message with the current task for delivery at the
    /// next epoch commit. Returns the message back when the caller is not
    /// on a scheduler fiber (thread backend: deliver immediately).
    pub(crate) fn try_stage_send(dest: usize, msg: Message) -> Option<Message> {
        match current_slot() {
            None => Some(msg),
            Some(slot) => {
                unsafe { (*slot.staged.get()).push((dest, msg)) };
                None
            }
        }
    }

    /// Cooperatively yield: finish this task's epoch slice and run again in
    /// the next epoch (after all staged deliveries commit). On a plain
    /// thread this is `std::thread::yield_now` — poll loops in the
    /// libraries call this so they behave correctly under both backends.
    pub fn yield_now() {
        match current_slot() {
            None => std::thread::yield_now(),
            Some(slot) if slot.is_poll => panic!(
                "synchronous yield inside a poll-mode rank body: under \
                 Backend::Poll use yield_now_async (and the *_async API \
                 for every blocking operation)"
            ),
            Some(slot) => {
                slot.intent.store(INTENT_YIELD, Ordering::Release);
                unsafe {
                    (*slot.fiber.get())
                        .as_mut()
                        .expect("fiber installed")
                        .switch_to_worker()
                };
            }
        }
    }

    /// Park the current task until a waker fires. The caller must already
    /// have announced `ST_BLOCKING` and subscribed a waker.
    fn park(slot: &TaskSlot, reason: WaitReason) {
        *slot.core.wait_reason.lock() = Some(reason);
        slot.intent.store(INTENT_BLOCK, Ordering::Release);
        unsafe {
            (*slot.fiber.get())
                .as_mut()
                .expect("park runs on a fiber")
                .switch_to_worker()
        };
        slot.core.wait_reason.lock().take();
    }

    pub(super) fn deadlock_err(rank: usize, reason: &WaitReason, vnow: Time) -> MpiError {
        MpiError::Timeout {
            rank,
            waited_for: format!("{reason} [cooperative deadlock: every rank is blocked]"),
            virtual_now: vnow,
            // The scheduler has no fault-state access; `ProcState` fills
            // the blame in on the way out (`enrich_timeout`).
            blame: RoundBlame::default(),
        }
    }

    /// Whether the current fiber's task has been poisoned by the deadlock
    /// or stagnation detector. Always `false` off-fiber (thread backend
    /// polling relies on wall-clock timeouts instead).
    pub(crate) fn current_poisoned() -> bool {
        current_slot().is_some_and(|s| s.core.poisoned.load(Ordering::Acquire))
    }

    /// Blocking claim under the cooperative scheduler: yields to the
    /// scheduler instead of parking the OS thread.
    pub(crate) fn claim_coop(
        mb: &Mailbox,
        pat: &MatchPattern,
        rank: usize,
        vnow: Time,
    ) -> Result<Message> {
        let slot = current_slot().expect("claim_coop runs on a fiber");
        loop {
            if slot.core.poisoned.load(Ordering::Acquire) {
                return Err(deadlock_err(rank, &WaitReason::Recv(pat.clone()), vnow));
            }
            // Announce intent to block *before* subscribing so a wake-up
            // arriving between subscription and the switch is never lost.
            slot.core.status.store(ST_BLOCKING, Ordering::Release);
            match mb.claim_or_subscribe(pat, &slot.waker) {
                Subscribed::Hit(m) => {
                    slot.core.status.store(ST_RUNNING, Ordering::Release);
                    return Ok(m);
                }
                Subscribed::Waiting(token) => {
                    park(slot, WaitReason::Recv(pat.clone()));
                    // Normal wake-ups remove the subscription; the poison
                    // path does not. Idempotent either way.
                    mb.unsubscribe(token);
                }
            }
        }
    }

    /// Blocking probe under the cooperative scheduler.
    pub(crate) fn probe_coop(
        mb: &Mailbox,
        pat: &MatchPattern,
        rank: usize,
        vnow: Time,
    ) -> Result<MsgInfo> {
        let slot = current_slot().expect("probe_coop runs on a fiber");
        loop {
            if slot.core.poisoned.load(Ordering::Acquire) {
                return Err(deadlock_err(rank, &WaitReason::Probe(pat.clone()), vnow));
            }
            slot.core.status.store(ST_BLOCKING, Ordering::Release);
            match mb.probe_or_subscribe(pat, &slot.waker) {
                Subscribed::Hit(info) => {
                    slot.core.status.store(ST_RUNNING, Ordering::Release);
                    return Ok(info);
                }
                Subscribed::Waiting(token) => {
                    park(slot, WaitReason::Probe(pat.clone()));
                    mb.unsubscribe(token);
                }
            }
        }
    }
}

#[cfg(all(unix, any(target_arch = "x86_64", target_arch = "aarch64")))]
pub use imp::yield_now;
#[cfg(all(unix, any(target_arch = "x86_64", target_arch = "aarch64")))]
pub(crate) use imp::{
    claim_coop, current_poisoned, probe_coop, record_panic, try_stage_send, SchedPools, Scheduler,
};

// ---------------------------------------------------------------------------
// Fallback for targets without a fiber implementation
// ---------------------------------------------------------------------------

/// On unsupported targets there are no fibers: yielding degrades to the OS
/// hint and `Universe` silently uses the thread backend.
#[cfg(not(all(unix, any(target_arch = "x86_64", target_arch = "aarch64"))))]
pub fn yield_now() {
    std::thread::yield_now();
}

/// Without fibers nothing is ever staged: the message bounces straight
/// back to the caller for immediate delivery.
#[cfg(not(all(unix, any(target_arch = "x86_64", target_arch = "aarch64"))))]
pub(crate) fn try_stage_send(_dest: usize, msg: Message) -> Option<Message> {
    Some(msg)
}

/// Without fibers there is no scheduler, hence no poisoning.
#[cfg(not(all(unix, any(target_arch = "x86_64", target_arch = "aarch64"))))]
pub(crate) fn current_poisoned() -> bool {
    false
}

#[cfg(not(all(unix, any(target_arch = "x86_64", target_arch = "aarch64"))))]
pub(crate) fn claim_coop(
    _mb: &Mailbox,
    _pat: &MatchPattern,
    _rank: usize,
    _vnow: Time,
) -> Result<Message> {
    unreachable!("cooperative backend unavailable on this target")
}

#[cfg(not(all(unix, any(target_arch = "x86_64", target_arch = "aarch64"))))]
pub(crate) fn probe_coop(
    _mb: &Mailbox,
    _pat: &MatchPattern,
    _rank: usize,
    _vnow: Time,
) -> Result<MsgInfo> {
    unreachable!("cooperative backend unavailable on this target")
}

#[cfg(all(test, unix, any(target_arch = "x86_64", target_arch = "aarch64")))]
mod tests {
    use super::imp::{vma_budget_from, StackSlab};

    #[test]
    fn vma_budget_parses_sysctl_and_falls_back() {
        // A readable sysctl wins (whitespace tolerated).
        assert_eq!(vma_budget_from(Some("262144\n")), 262144);
        assert_eq!(vma_budget_from(Some("  1048576  ")), 1048576);
        // Unreadable or garbage: the documented kernel default.
        assert_eq!(vma_budget_from(None), 65530);
        assert_eq!(vma_budget_from(Some("")), 65530);
        assert_eq!(vma_budget_from(Some("not-a-number")), 65530);
        assert_eq!(vma_budget_from(Some("-1")), 65530);
    }

    #[test]
    fn stack_slab_guard_auto_disable_boundary() {
        // Guards cost 2·n VMAs plus the VMA_MARGIN headroom. The exact
        // boundary: a budget of 2n + margin still fits (guards on); one
        // VMA less does not (guards off, canary-only).
        let n = 8;
        let margin = 4096; // VMA_MARGIN
        let fits = StackSlab::with_budget(n, 16 * 1024, Some(2 * n + margin));
        assert!(
            fits.guarded(),
            "a budget exactly covering 2n + margin must keep guard pages"
        );
        let tight = StackSlab::with_budget(n, 16 * 1024, Some(2 * n + margin - 1));
        assert!(
            !tight.guarded(),
            "one VMA below the budget must auto-disable guard pages"
        );
        // No platform budget at all (non-Linux): guards stay on.
        let unlimited = StackSlab::with_budget(n, 16 * 1024, None);
        assert!(unlimited.guarded());
        // Either way the regions stay usable.
        unsafe { tight.region(n - 1).write(0x5A) };
        unsafe { fits.region(n - 1).write(0x5A) };
    }

    #[test]
    fn stack_slab_skips_guards_when_vma_budget_is_tight() {
        // 2^15 ranks would need 2^16 VMAs for guards — past the default
        // Linux vm.max_map_count. The slab must fall back to one unguarded
        // mapping (canary-only) instead of exhausting the budget and
        // starving later mmaps (e.g. worker-thread stacks).
        #[cfg(target_os = "linux")]
        {
            let slab = StackSlab::new(1 << 15, 16 * 1024);
            assert!(
                !slab.guarded(),
                "paper-scale slabs must stay one O(1)-VMA mapping"
            );
            // Regions remain usable.
            unsafe { slab.region((1 << 15) - 1).write(0x5A) };
        }
    }

    #[test]
    fn stack_slab_guards_and_isolates_regions() {
        let per = 64 * 1024;
        let slab = StackSlab::new(4, per);
        // On every supported CI target mmap is available, so overruns
        // must fault (a PROT_NONE page sits below each stack).
        #[cfg(target_os = "linux")]
        assert!(slab.guarded(), "linux slabs must carry guard pages");
        for i in 0..4 {
            let r = slab.region(i);
            // Usable regions are writable end to end and non-overlapping.
            unsafe {
                r.write(0xAB);
                r.add(slab.per - 1).write(0xCD);
            }
            if i > 0 {
                let prev_end = unsafe { slab.region(i - 1).add(slab.per) };
                assert!(
                    unsafe { prev_end.add(if slab.guarded() { 1 } else { 0 }) } <= r,
                    "regions must not overlap"
                );
            }
        }
    }
}
