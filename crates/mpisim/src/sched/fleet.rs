//! Fleet mode: many seeded universes multiplexed over **one** worker pool.
//!
//! A solo [`Universe::run`](crate::Universe::run) owns its worker threads
//! for the duration of one simulation. That is the right shape for a
//! single large experiment, but the throughput regime — thousands of
//! small seeded universes per second, the batch-dispatch shape of a
//! multi-tenant scheduler — wants the inverse ownership: a [`Fleet`]
//! owns the OS worker pool, and universes are *admitted* to it through a
//! bounded in-flight window.
//!
//! # How workers multiplex universes
//!
//! Each admitted universe keeps its **own** epoch gate, generation-tagged
//! claim cursor, commit state, mailboxes, and virtual clocks — exactly
//! the state a solo `Scheduler` run has. A fleet worker *sweeps* the
//! active set: for each universe it calls
//! `Scheduler::drain_phases`, which claims and executes
//! `Work::{Tasks, Merge, Commit}` units through that universe's own
//! `(gen, cursor)` pair until the universe completes or the tail of its
//! current phase is owned by another worker — then moves on to the next
//! universe. Only when *no* universe yields work does the worker park on
//! the fleet-wide versioned condvar (`FleetSignal`); every multi-unit
//! publish, completion, admission, and shutdown bumps the version, so
//! sleeping is race-free.
//!
//! # Why co-scheduling cannot perturb a universe
//!
//! Determinism of a universe's output is a property of its *commit
//! pipeline*, not of which OS thread executes a claim unit: claims
//! validate the universe's own generation tag, staged sends live in
//! per-task buffers, and deliveries commit in global virtual-time order
//! per universe. Universes never share a commit key space — each has its
//! own router, mailboxes, staged buffers, and clock domain — so the only
//! cross-universe coupling is *which worker runs what when*, which the
//! epoch discipline already proves irrelevant (it is the same proof as
//! worker-count independence; DESIGN.md §5/§7/§11). The shared
//! commit-scratch pools (`SchedPools`) hand out drained buffers whose
//! only cross-universe residue is capacity, which no simulation output
//! observes. Hence: a universe's results, clocks, metrics, RankLogs and
//! trace are **byte-identical** run solo or co-scheduled with any mix of
//! other universes — CI diffs them.
//!
//! ```
//! use mpisim::{Fleet, SimConfig, Transport};
//!
//! let fleet = Fleet::new(2, 4); // 2 workers, 4 universes in flight
//! let handles: Vec<_> = (0..8)
//!     .map(|seed| {
//!         let cfg = SimConfig::cooperative().with_seed(seed);
//!         fleet.submit(8, cfg, |env| {
//!             env.world.allreduce(&[1u64], |a, b| a + b).unwrap()[0]
//!         })
//!     })
//!     .collect();
//! for h in handles {
//!     assert_eq!(h.join().per_rank, vec![8; 8]);
//! }
//! ```
//!
//! Per-worker wall-clock profiles ([`crate::obs::WorkerProfile`]) are not
//! attributable to a single universe under a fleet, so a fleet-run
//! universe's [`SchedProfile`](crate::obs::SchedProfile) reports the
//! pool counters with an empty worker list.

use std::any::Any;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};

use super::imp::{Drain, FleetSignal, SchedPools, Scheduler};
use super::record_panic;
use crate::comm::Comm;
use crate::faults::FaultState;
use crate::proc::{ProcState, Router};
use crate::universe::{assemble_result, seeded_order, ProcEnv, SimConfig, SimResult};

/// A universe's completion outcome as stored in its handle slot: the
/// assembled result, or the first rank panic to re-throw at `join`.
type Outcome<R> = Result<SimResult<R>, Box<dyn Any + Send>>;

/// The rendezvous between a fleet worker completing a universe and the
/// submitter waiting on [`FleetHandle::join`].
struct HandleSlot<R> {
    outcome: Mutex<Option<Outcome<R>>>,
    cv: Condvar,
}

/// Handle to one submitted universe; redeem it with
/// [`FleetHandle::join`]. Dropping the handle without joining is fine —
/// the universe still runs to completion (its result is discarded).
pub struct FleetHandle<R> {
    slot: Arc<HandleSlot<R>>,
}

impl<R> FleetHandle<R> {
    /// Block until the universe completes and return its result — the
    /// same [`SimResult`] (per-rank values, clocks, traffic, metrics,
    /// trace) a solo [`Universe::run`](crate::Universe::run) of the same
    /// `(program, config)` produces, byte for byte. A rank panic in the
    /// universe resumes here, exactly like the solo path.
    pub fn join(self) -> SimResult<R> {
        let mut out = self.slot.outcome.lock();
        while out.is_none() {
            self.slot.cv.wait(&mut out);
        }
        match out.take().expect("outcome present") {
            Ok(res) => res,
            Err(payload) => std::panic::resume_unwind(payload),
        }
    }

    /// Whether the universe has completed (non-blocking).
    pub fn is_done(&self) -> bool {
        self.slot.outcome.lock().is_some()
    }
}

/// A deferred admission: builds the universe's runtime (router, states,
/// scheduler, fibers) when an in-flight slot frees up.
type Admission = Box<dyn FnOnce(&FleetInner) -> ActiveUni + Send>;

/// The one-shot result collector a reaping worker runs at completion.
type Finisher = Box<dyn FnOnce(&Scheduler) + Send>;

/// One admitted, running universe.
struct ActiveUni {
    sched: Scheduler,
    /// Exactly-once completion guard: the first worker to observe the
    /// universe `Done` wins the reap.
    reaped: AtomicBool,
    /// Collects results into the handle slot; run once by the reaper.
    finish: Mutex<Option<Finisher>>,
}

struct FleetState {
    /// Submissions waiting for an in-flight slot, in submission order.
    queue: VecDeque<Admission>,
    /// Admitted universes, in admission order (the sweep order — a pure
    /// throughput matter; see the module docs).
    active: Vec<Arc<ActiveUni>>,
    /// In-flight slots consumed: `active.len()` plus admissions currently
    /// being built outside the lock. Never exceeds the window.
    used: usize,
}

struct FleetInner {
    workers: usize,
    inflight: usize,
    signal: Arc<FleetSignal>,
    /// Commit-scratch pools shared by every universe this fleet admits
    /// (see [`SchedPools`]): a warm fleet admits a universe of an
    /// already-seen shape without touching the allocator in the epoch
    /// hot path — `tests/alloc_free.rs` proves it.
    pools: Arc<SchedPools>,
    state: Mutex<FleetState>,
    shutdown: AtomicBool,
}

/// A shared worker pool that runs many seeded universes concurrently.
///
/// Construct with [`Fleet::new`] (or [`Fleet::from_env`]), submit
/// universes with [`Fleet::submit`], redeem results through the returned
/// [`FleetHandle`]s. Dropping the fleet blocks until every submitted
/// universe has completed, then stops the workers.
pub struct Fleet {
    inner: Arc<FleetInner>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl Fleet {
    /// Start a fleet of `workers` OS threads admitting at most `inflight`
    /// universes concurrently (both clamped to ≥ 1). The window bounds
    /// peak memory (fiber slabs, mailboxes); neither knob can change any
    /// universe's output.
    pub fn new(workers: usize, inflight: usize) -> Fleet {
        let workers = workers.max(1);
        let inner = Arc::new(FleetInner {
            workers,
            inflight: inflight.max(1),
            signal: Arc::new(FleetSignal::new()),
            pools: Arc::new(SchedPools::default()),
            state: Mutex::new(FleetState {
                queue: VecDeque::new(),
                active: Vec::new(),
                used: 0,
            }),
            shutdown: AtomicBool::new(false),
        });
        let threads = (0..workers)
            .map(|w| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("fleet-worker{w}"))
                    .spawn(move || worker_sweep(&inner))
                    .expect("spawn fleet worker")
            })
            .collect();
        Fleet { inner, threads }
    }

    /// A fleet sized from the environment: `MPISIM_COOP_WORKERS` workers
    /// (default 1) and an `MPISIM_FLEET_INFLIGHT` admission window
    /// (default 4; both lenient machine-shape hints, see [`crate::env`]).
    pub fn from_env() -> Fleet {
        use crate::env;
        Fleet::new(
            env::coop_workers_from(env::var("MPISIM_COOP_WORKERS").as_deref()),
            env::fleet_inflight_from(env::var("MPISIM_FLEET_INFLIGHT").as_deref()),
        )
    }

    /// The worker-pool size.
    pub fn workers(&self) -> usize {
        self.inner.workers
    }

    /// The admission window (maximum concurrently running universes).
    pub fn inflight(&self) -> usize {
        self.inner.inflight
    }

    /// Submit a universe: `p` ranks running `program` under `cfg` (the
    /// cooperative scheduler always executes it; `cfg.backend` is
    /// ignored). Admission happens immediately if an in-flight slot is
    /// free, else when one frees up — submission order is preserved.
    ///
    /// The universe's output is a pure function of `(program, config)`:
    /// identical whatever else the fleet is running, whatever the
    /// submission order, window, or worker count — byte for byte the
    /// solo [`Universe::run`](crate::Universe::run) result.
    pub fn submit<R, F>(&self, p: usize, cfg: SimConfig, program: F) -> FleetHandle<R>
    where
        R: Send + 'static,
        F: Fn(ProcEnv) -> R + Send + Sync + 'static,
    {
        assert!(p >= 1, "need at least one process");
        let slot = Arc::new(HandleSlot {
            outcome: Mutex::new(None),
            cv: Condvar::new(),
        });
        let handle = FleetHandle {
            slot: Arc::clone(&slot),
        };
        let program = Arc::new(program);
        let mut adm: Option<Admission> =
            Some(Box::new(move |inner| admit(inner, p, cfg, program, slot)));
        let direct = {
            let mut st = self.inner.state.lock();
            if st.used < self.inner.inflight {
                st.used += 1;
                true
            } else {
                st.queue.push_back(adm.take().expect("admission present"));
                false
            }
        };
        if direct {
            // Build the runtime on the submitting thread — the expensive
            // part (stack slab mmap, fibers) stays off the worker pool.
            let uni = Arc::new((adm.take().expect("admission present"))(&self.inner));
            self.inner.state.lock().active.push(uni);
        }
        self.inner.signal.notify();
        handle
    }
}

impl Drop for Fleet {
    /// Waits for every submitted universe to complete, then stops the
    /// worker pool.
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::Release);
        self.inner.signal.notify();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// Build a universe's runtime — the exact mirror of the solo
/// [`Universe::run`](crate::Universe::run) + `run_coop` construction:
/// same router, same per-rank states, same seeded epoch-1 order, same
/// result assembly — so fleet and solo runs of one `(program, config)`
/// cannot diverge by construction.
fn admit<R, F>(
    inner: &FleetInner,
    p: usize,
    cfg: SimConfig,
    program: Arc<F>,
    slot: Arc<HandleSlot<R>>,
) -> ActiveUni
where
    R: Send + 'static,
    F: Fn(ProcEnv) -> R + Send + Sync + 'static,
{
    let mut router = Router::new(
        p,
        cfg.cost.clone(),
        cfg.vendor.clone(),
        cfg.recv_timeout,
        FaultState::resolve(&cfg.faults, p),
    );
    if cfg.trace {
        router.enable_trace();
    }
    let router = Arc::new(router);
    let states: Vec<Arc<ProcState>> = (0..p)
        .map(|r| ProcState::new(r, Arc::clone(&router), cfg.seed))
        .collect();
    let results: Arc<Mutex<Vec<Option<R>>>> = Arc::new(Mutex::new((0..p).map(|_| None).collect()));
    let sched = Scheduler::new(
        p,
        cfg.coop_stack_size,
        Arc::clone(&router),
        cfg.commit_algo,
        cfg.sort_algo,
        cfg.coop_commit_shards,
        cfg.sched_profile,
        Arc::clone(&inner.pools),
        Some(Arc::clone(&inner.signal)),
        false,
    );
    let store = sched.panic_store();
    for (rank, state) in states.iter().enumerate() {
        let state = Arc::clone(state);
        let store = Arc::clone(&store);
        let program = Arc::clone(&program);
        let results = Arc::clone(&results);
        let body = move || {
            let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                program(ProcEnv {
                    world: Comm::world(state),
                })
            }));
            match out {
                Ok(v) => results.lock()[rank] = Some(v),
                Err(e) => record_panic(&store, rank, e),
            }
        };
        // Safety: unlike the solo path, the body owns (`Arc`s) everything
        // it captures, so it genuinely is `'static` — no lifetime erasure
        // involved.
        unsafe {
            sched.spawn(rank, Box::new(body));
        }
    }
    let order = seeded_order(p, cfg.seed);
    sched.prepare(inner.workers, &order);
    let finish: Box<dyn FnOnce(&Scheduler) + Send> = Box::new(move |sched| {
        let outcome = match sched.take_panic() {
            Some((_rank, payload)) => Err(payload),
            None => {
                let per = std::mem::take(&mut *results.lock());
                Ok(assemble_result(
                    &router,
                    &states,
                    per,
                    sched.counters(),
                    sched.take_profile(),
                ))
            }
        };
        *slot.outcome.lock() = Some(outcome);
        slot.cv.notify_all();
    });
    ActiveUni {
        sched,
        reaped: AtomicBool::new(false),
        finish: Mutex::new(Some(finish)),
    }
}

/// The fleet worker loop: sweep every active universe, reap completed
/// ones, park on the signal when nothing is runnable.
fn worker_sweep(inner: &Arc<FleetInner>) {
    // Fleet workers keep a scratch profile: per-worker wall-clock phase
    // timings are meaningless across universes (see the module docs), so
    // they are dropped; universes still report pool counters.
    let mut prof = crate::obs::WorkerProfile::default();
    loop {
        // Read the version *before* sweeping: any event during the sweep
        // (publish, completion, admission) makes the final `wait_past`
        // return immediately, so no wakeup can be lost.
        let seen = inner.signal.version();
        let active: Vec<Arc<ActiveUni>> = inner.state.lock().active.clone();
        for uni in &active {
            if let Drain::Done = uni.sched.drain_phases(&mut prof) {
                reap(inner, uni);
            }
        }
        {
            let st = inner.state.lock();
            if inner.shutdown.load(Ordering::Acquire) && st.active.is_empty() && st.queue.is_empty()
            {
                break;
            }
        }
        inner.signal.wait_past(seen);
    }
}

/// Complete a finished universe exactly once: free its in-flight slot,
/// admit the next queued submission, then collect its results into the
/// handle slot.
fn reap(inner: &Arc<FleetInner>, uni: &Arc<ActiveUni>) {
    if uni.reaped.swap(true, Ordering::AcqRel) {
        return;
    }
    let next_adm = {
        let mut st = inner.state.lock();
        st.active.retain(|a| !Arc::ptr_eq(a, uni));
        st.used -= 1;
        if st.used < inner.inflight {
            st.queue.pop_front().inspect(|_| st.used += 1)
        } else {
            None
        }
    };
    if let Some(adm) = next_adm {
        let next = Arc::new(adm(inner));
        inner.state.lock().active.push(next);
        // Wake sleeping workers for the fresh universe before the
        // (potentially slow) result collection below.
        inner.signal.notify();
    }
    let finish = uni
        .finish
        .lock()
        .take()
        .expect("finish closure runs exactly once");
    finish(&uni.sched);
    inner.signal.notify();
}
