//! Stackful fibers: the context-switch primitive under the cooperative
//! scheduler.
//!
//! A fiber is a resumable computation with its own call stack. The worker
//! thread enters it with [`Fiber::resume`]; the code running on the fiber
//! returns control with [`Fiber::switch_to_worker`]. Both are the same
//! symmetric operation: save the callee-saved register state and stack
//! pointer of the current side, load the other side's.
//!
//! The switch itself is ~20 instructions of assembly per architecture
//! (x86-64 System V and AArch64 AAPCS are provided — between them they
//! cover every machine this project targets). Only callee-saved state needs
//! saving because a switch is always performed *by a function call*
//! ([`mpisim_ctx_switch`]), so the caller-saved half is already dead by the
//! ABI contract. On x86-64 the MXCSR and x87 control words are saved too,
//! matching what Boost.Context and glibc's `swapcontext` preserve.
//!
//! # Safety model
//!
//! * Fiber stacks are carved from one `mmap` slab with a `PROT_NONE`
//!   **guard page** below each stack (see `StackSlab` in `sched/mod.rs`):
//!   an overrun faults immediately instead of silently corrupting the
//!   neighbouring fiber. Each stack's lowest word additionally holds a
//!   canary that the scheduler checks when the fiber finishes — the only
//!   line of defence when guards are off (universes past ~30k ranks,
//!   where 2·p guard VMAs would blow Linux's `vm.max_map_count`, or the
//!   rare heap fallback when `mmap` fails), and a cheap second line
//!   otherwise.
//! * A `Fiber` must only be resumed by one thread at a time (the scheduler
//!   guarantees this via the task state machine).
//! * Dropping a suspended (not yet finished) fiber frees its stack without
//!   unwinding it: values live on that stack are leaked, not dropped. The
//!   scheduler only drops fibers after their bodies return.

use std::arch::global_asm;

/// Written to the lowest word of every fiber stack; checked on finish.
pub(crate) const STACK_CANARY: u64 = 0xB0A7_F1BE_25C0_FFEE;

// The context-switch symbol: `fn(save: *mut *mut u8, load: *const *mut u8)`.
// Saves the current callee-saved state on the current stack, stores the
// resulting stack pointer through `save`, then loads the stack pointer from
// `load` and restores the state found there. "Returning" from this function
// therefore resumes whatever context was previously saved through `load`.
#[cfg(target_arch = "x86_64")]
global_asm!(
    r#"
    .text
    .globl mpisim_ctx_switch
    .p2align 4
mpisim_ctx_switch:
    push rbp
    push rbx
    push r12
    push r13
    push r14
    push r15
    sub rsp, 8
    stmxcsr dword ptr [rsp]
    fnstcw  word ptr [rsp + 4]
    mov qword ptr [rdi], rsp
    mov rsp, qword ptr [rsi]
    ldmxcsr dword ptr [rsp]
    fldcw   word ptr [rsp + 4]
    add rsp, 8
    pop r15
    pop r14
    pop r13
    pop r12
    pop rbx
    pop rbp
    ret

    .globl mpisim_fiber_start
    .p2align 4
mpisim_fiber_start:
    mov rdi, r12
    and rsp, -16
    call mpisim_fiber_main
    ud2
"#
);

#[cfg(target_arch = "aarch64")]
global_asm!(
    r#"
    .text
    .globl mpisim_ctx_switch
    .p2align 2
mpisim_ctx_switch:
    sub sp, sp, #160
    stp x19, x20, [sp, #0]
    stp x21, x22, [sp, #16]
    stp x23, x24, [sp, #32]
    stp x25, x26, [sp, #48]
    stp x27, x28, [sp, #64]
    stp x29, x30, [sp, #80]
    stp d8,  d9,  [sp, #96]
    stp d10, d11, [sp, #112]
    stp d12, d13, [sp, #128]
    stp d14, d15, [sp, #144]
    mov x9, sp
    str x9, [x0]
    ldr x9, [x1]
    mov sp, x9
    ldp x19, x20, [sp, #0]
    ldp x21, x22, [sp, #16]
    ldp x23, x24, [sp, #32]
    ldp x25, x26, [sp, #48]
    ldp x27, x28, [sp, #64]
    ldp x29, x30, [sp, #80]
    ldp d8,  d9,  [sp, #96]
    ldp d10, d11, [sp, #112]
    ldp d12, d13, [sp, #128]
    ldp d14, d15, [sp, #144]
    add sp, sp, #160
    ret

    .globl mpisim_fiber_start
    .p2align 2
mpisim_fiber_start:
    mov x0, x19
    bl mpisim_fiber_main
    brk #0x1
"#
);

extern "C" {
    fn mpisim_ctx_switch(save: *mut *mut u8, load: *const *mut u8);
}

/// A suspended-or-running resumable context bound to one stack region.
pub(crate) struct Fiber {
    /// Stack pointer of the suspended fiber side (valid while suspended).
    task_sp: *mut u8,
    /// Stack pointer of the suspended worker side (valid while the fiber
    /// runs; the fiber switches back through it).
    ret_sp: *mut u8,
    /// Lowest address of this fiber's stack region (canary location).
    stack_lo: *mut u8,
}

// The raw pointers reference the stack slab owned by the scheduler, which
// outlives every fiber; access is serialised by the task state machine.
unsafe impl Send for Fiber {}

impl Fiber {
    /// Prepare a fiber on the stack region `[stack_lo, stack_lo + size)`
    /// such that the first [`Fiber::resume`] enters `mpisim_fiber_start`,
    /// which tail-calls `mpisim_fiber_main(task)`.
    ///
    /// # Safety
    /// The region must be valid, exclusively owned, at least 1 KiB, and
    /// outlive the fiber. `task` must point to the fiber's `TaskSlot` and
    /// stay valid until the fiber finishes.
    pub unsafe fn new(stack_lo: *mut u8, size: usize, task: *mut u8) -> Fiber {
        debug_assert!(size >= 1024);
        // Canary at the very bottom: overruns clobber it first.
        (stack_lo as *mut u64).write(STACK_CANARY);
        // 16-align the top; build the initial frame the restore path of
        // `mpisim_ctx_switch` expects.
        let top = ((stack_lo as usize + size) & !15) as *mut u8;
        let start = mpisim_fiber_start_addr();
        #[cfg(target_arch = "x86_64")]
        {
            let f = top.sub(72) as *mut u64;
            // [0]: MXCSR (dword) + x87 CW (word) in their power-on defaults.
            f.add(0).write(0x1F80 | (0x037F << 32));
            f.add(1).write(0); // r15
            f.add(2).write(0); // r14
            f.add(3).write(0); // r13
            f.add(4).write(task as u64); // r12 -> first arg in the trampoline
            f.add(5).write(0); // rbx
            f.add(6).write(0); // rbp
            f.add(7).write(start as u64); // return address -> trampoline
            f.add(8).write(0); // fake caller frame, keeps unwinders sane
            Fiber {
                task_sp: f as *mut u8,
                ret_sp: std::ptr::null_mut(),
                stack_lo,
            }
        }
        #[cfg(target_arch = "aarch64")]
        {
            let f = top.sub(160) as *mut u64;
            for i in 0..20 {
                f.add(i).write(0);
            }
            f.add(0).write(task as u64); // x19 -> first arg in the trampoline
            f.add(11).write(start as u64); // x30 (lr) -> trampoline
            Fiber {
                task_sp: f as *mut u8,
                ret_sp: std::ptr::null_mut(),
                stack_lo,
            }
        }
    }

    /// Enter the fiber from a worker thread. Returns when the fiber calls
    /// [`Fiber::switch_to_worker`] (or announces it finished).
    ///
    /// # Safety
    /// Must not be called while the fiber is already running anywhere, and
    /// never again after the fiber finished.
    pub unsafe fn resume(&mut self) {
        mpisim_ctx_switch(&mut self.ret_sp, &self.task_sp);
    }

    /// Suspend the fiber, returning control to the worker that resumed it.
    ///
    /// # Safety
    /// Must be called *from code running on this fiber's stack*.
    pub unsafe fn switch_to_worker(&mut self) {
        mpisim_ctx_switch(&mut self.task_sp, &self.ret_sp);
    }

    /// Whether the bottom-of-stack canary is still intact.
    pub fn canary_intact(&self) -> bool {
        unsafe { (self.stack_lo as *const u64).read() == STACK_CANARY }
    }
}

/// Address of the architecture trampoline declared in `global_asm!`.
fn mpisim_fiber_start_addr() -> usize {
    extern "C" {
        fn mpisim_fiber_start();
    }
    mpisim_fiber_start as *const () as usize
}
