//! Poll-mode rank bodies: a rank as a pollable state machine instead of a
//! stackful fiber.
//!
//! The fiber backend tops out where stack slabs and VMA budgets do
//! (~2^15 ranks). This module adds a third execution mode,
//! [`crate::Backend::Poll`], in which a rank's state is **a few hundred
//! bytes of `Future` state machine** rather than a 128 KiB stack: the
//! compiler's async transform stores exactly the live locals of the
//! current await point, so a 2^20-rank universe fits where 2^20 fiber
//! stacks cannot.
//!
//! # The `RankBody` protocol
//!
//! A poll-mode rank implements [`RankBody`] — `handle_incoming` /
//! `wants_to_proceed` / `proceed`, after the round-based
//! `StateMachineWrapper` shape (see DESIGN.md §12). The scheduler drives
//! bodies through the *same* generation-tagged [`Work`](super) rounds as
//! fiber tasks: a claimed poll step runs `proceed()` exactly where a
//! fiber task would `resume()`, stages sends into the same per-task
//! buffers, and parks through the same
//! `ST_BLOCKING` → subscribe → `ST_BLOCKED` handshake — so the epoch
//! commit discipline (§5/§7/§10) and with it bit-for-bit determinism
//! carry over unchanged.
//!
//! # Maybe-async workloads
//!
//! Rather than hand-writing a second state-machine copy of every
//! collective, the round-structured workloads are written **once** as
//! `async fn`s whose blocking primitives dispatch on the execution mode:
//!
//! * off poll mode (thread or fiber backend) every await bottoms out in a
//!   primitive that resolves synchronously — a fiber parks *inside* the
//!   poll — so [`block_inline`] completes the whole future in a single
//!   poll and the sync wrappers behave exactly as before;
//! * on poll mode the primitives return `Pending` after announcing
//!   `ST_BLOCKING` and subscribing a waker — the same protocol as
//!   `claim_coop` — and the scheduler re-polls the body when the epoch
//!   commit wakes it.
//!
//! One implementation therefore serves all three backends, which is what
//! makes poll output byte-identical to fiber output *by construction*:
//! identical operation sequences, staged-send order, sequence numbers,
//! clock advances, and RNG draws.

use std::future::Future;
use std::pin::Pin;
use std::task::{Context, Poll, RawWaker, RawWakerVTable, Waker};

/// What a poll step did: the poll-mode mirror of a fiber's park intent.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Step {
    /// Made progress and wants another slice next epoch (fiber
    /// `yield_now`).
    Yielded,
    /// Parked on a mailbox subscription; only a commit-time wake-up
    /// reschedules it (fiber `park`).
    Blocked,
    /// The body is done and will never be polled again.
    Finished,
}

/// A rank as a pollable round-based state machine (the poll-backend
/// replacement for a fiber's stack). Driven by the scheduler through the
/// same epoch rounds as fiber tasks: one claimed unit = one `proceed`.
pub trait RankBody: Send {
    /// Committed deliveries for this rank arrived since the last step.
    /// The mailbox itself is the inbox, so stateful bodies can use this
    /// to refresh cached views; `FutureBody` re-checks the mailbox
    /// inside `proceed` and needs nothing here.
    fn handle_incoming(&mut self) {}

    /// Whether the body has a step to run. A `false` costs the rank its
    /// slice this epoch (it re-enters the next round, like a yield).
    fn wants_to_proceed(&self) -> bool {
        true
    }

    /// Run one step: execute until the body yields, parks, or finishes.
    fn proceed(&mut self) -> Step;
}

// ---------------------------------------------------------------------------
// No-op waker
// ---------------------------------------------------------------------------

// The scheduler's wake path is the mailbox subscription (`TaskWaker`),
// not the `std::task` waker: a parked body is rescheduled by the epoch
// commit, never by `Waker::wake`. The context handed to futures therefore
// carries a no-op waker.
const NOOP_VTABLE: RawWakerVTable = RawWakerVTable::new(|_| NOOP_RAW, |_| {}, |_| {}, |_| {});
const NOOP_RAW: RawWaker = RawWaker::new(std::ptr::null(), &NOOP_VTABLE);

/// A waker that does nothing (see the module docs: the mailbox
/// subscription is the real wake path).
fn noop_waker() -> Waker {
    // Safety: every vtable entry is a no-op over a null pointer.
    unsafe { Waker::from_raw(NOOP_RAW) }
}

/// Drive a maybe-async workload future to completion in one poll.
///
/// Off poll mode every await in the workload tree resolves synchronously
/// (the thread backend blocks, the fiber backend parks inside the poll),
/// so the first poll returns `Ready` — this is how the synchronous public
/// wrappers (`Comm::bcast`, `jquick_sort`, …) execute the shared async
/// cores with zero behaviour change.
///
/// # Panics
///
/// Panics if the future suspends, which happens exactly when a
/// synchronous wrapper is called *inside* a poll-mode rank body: poll
/// bodies must use the `*_async` API end to end.
pub fn block_inline<F: Future>(fut: F) -> F::Output {
    let mut fut = std::pin::pin!(fut);
    let waker = noop_waker();
    let mut cx = Context::from_waker(&waker);
    match fut.as_mut().poll(&mut cx) {
        Poll::Ready(v) => v,
        Poll::Pending => panic!(
            "synchronous MPI call suspended inside a poll-mode rank body: \
             under Backend::Poll every blocking operation must go through \
             the *_async API (and the universe through Universe::run_poll)"
        ),
    }
}

/// Cooperatively yield across all three backends: a poll body suspends
/// for one epoch, a fiber switches out with a yield intent, a thread
/// calls `std::thread::yield_now`. The maybe-async replacement for
/// [`super::yield_now`] in poll loops.
pub async fn yield_now_async() {
    #[cfg(all(unix, any(target_arch = "x86_64", target_arch = "aarch64")))]
    if super::on_poll_body() {
        imp::YieldFut { fired: false }.await;
        return;
    }
    super::yield_now();
}

#[cfg(all(unix, any(target_arch = "x86_64", target_arch = "aarch64")))]
pub(crate) use imp::{claim_poll, probe_poll, FutureBody};

// On targets without scheduler support `on_poll_body()` is constantly
// false, so the async primitives' poll arms are unreachable — these stubs
// only satisfy the compiler.
#[cfg(not(all(unix, any(target_arch = "x86_64", target_arch = "aarch64"))))]
mod fallback {
    use crate::error::Result;
    use crate::mailbox::Mailbox;
    use crate::msg::{MatchPattern, Message, MsgInfo};
    use crate::time::Time;

    pub(crate) async fn claim_poll(
        _mb: &Mailbox,
        _pat: &MatchPattern,
        _rank: usize,
        _vnow: Time,
    ) -> Result<Message> {
        unreachable!("poll-mode bodies require scheduler support")
    }

    pub(crate) async fn probe_poll(
        _mb: &Mailbox,
        _pat: &MatchPattern,
        _rank: usize,
        _vnow: Time,
    ) -> Result<MsgInfo> {
        unreachable!("poll-mode bodies require scheduler support")
    }
}

#[cfg(not(all(unix, any(target_arch = "x86_64", target_arch = "aarch64"))))]
pub(crate) use fallback::{claim_poll, probe_poll};

#[cfg(all(unix, any(target_arch = "x86_64", target_arch = "aarch64")))]
mod imp {
    use super::*;
    use crate::error::Result;
    use crate::mailbox::{Mailbox, Subscribed, WaitToken};
    use crate::msg::{MatchPattern, Message, MsgInfo};
    use crate::proc::WaitReason;
    use crate::sched::imp::{current_slot, deadlock_err, record_panic};
    use crate::sched::{
        SchedShared, TaskSlot, INTENT_BLOCK, INTENT_YIELD, ST_BLOCKING, ST_RUNNING,
    };
    use crate::time::Time;
    use std::sync::atomic::Ordering;
    use std::sync::Arc;

    /// Suspend for exactly one epoch (the poll-mode half of
    /// [`yield_now_async`]).
    pub(super) struct YieldFut {
        pub(super) fired: bool,
    }

    impl Future for YieldFut {
        type Output = ();
        fn poll(mut self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<()> {
            if self.fired {
                return Poll::Ready(());
            }
            self.fired = true;
            let slot = current_slot().expect("poll-mode yield runs on a scheduler task");
            slot.intent.store(INTENT_YIELD, Ordering::Release);
            Poll::Pending
        }
    }

    /// The poll-mode mirror of `claim_coop`'s park protocol, shared by the
    /// claim and probe futures: announce `ST_BLOCKING`, subscribe under
    /// the mailbox lock, and either resolve (hit) or record the wait and
    /// suspend with a block intent. Re-polls first drop the stale
    /// subscription, exactly like a fiber resuming out of `park`.
    struct WaitState {
        token: Option<WaitToken>,
    }

    impl WaitState {
        fn step<T>(
            &mut self,
            slot: &TaskSlot,
            mb: &Mailbox,
            rank: usize,
            vnow: Time,
            reason: impl FnOnce() -> WaitReason,
            subscribe: impl FnOnce() -> Subscribed<T>,
        ) -> Poll<Result<T>> {
            if let Some(t) = self.token.take() {
                // Normal wake-ups remove the subscription; the poison
                // path does not. Idempotent either way.
                mb.unsubscribe(t);
                slot.core.wait_reason.lock().take();
            }
            if slot.core.poisoned.load(Ordering::Acquire) {
                return Poll::Ready(Err(deadlock_err(rank, &reason(), vnow)));
            }
            // Announce intent to block *before* subscribing so a wake-up
            // arriving between subscription and the suspension is never
            // lost (same ordering as the fiber protocol).
            slot.core.status.store(ST_BLOCKING, Ordering::Release);
            match subscribe() {
                Subscribed::Hit(v) => {
                    slot.core.status.store(ST_RUNNING, Ordering::Release);
                    Poll::Ready(Ok(v))
                }
                Subscribed::Waiting(token) => {
                    self.token = Some(token);
                    *slot.core.wait_reason.lock() = Some(reason());
                    slot.intent.store(INTENT_BLOCK, Ordering::Release);
                    Poll::Pending
                }
            }
        }
    }

    struct ClaimFut<'a> {
        mb: &'a Mailbox,
        pat: &'a MatchPattern,
        rank: usize,
        vnow: Time,
        wait: WaitState,
    }

    impl Future for ClaimFut<'_> {
        type Output = Result<Message>;
        fn poll(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<Result<Message>> {
            let this = self.get_mut();
            let slot = current_slot().expect("poll-mode claim runs on a scheduler task");
            let (mb, pat) = (this.mb, this.pat);
            this.wait.step(
                slot,
                mb,
                this.rank,
                this.vnow,
                || WaitReason::Recv(pat.clone()),
                || mb.claim_or_subscribe(pat, &slot.waker),
            )
        }
    }

    struct ProbeFut<'a> {
        mb: &'a Mailbox,
        pat: &'a MatchPattern,
        rank: usize,
        vnow: Time,
        wait: WaitState,
    }

    impl Future for ProbeFut<'_> {
        type Output = Result<MsgInfo>;
        fn poll(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<Result<MsgInfo>> {
            let this = self.get_mut();
            let slot = current_slot().expect("poll-mode probe runs on a scheduler task");
            let (mb, pat) = (this.mb, this.pat);
            this.wait.step(
                slot,
                mb,
                this.rank,
                this.vnow,
                || WaitReason::Probe(pat.clone()),
                || mb.probe_or_subscribe(pat, &slot.waker),
            )
        }
    }

    /// Blocking claim from a poll-mode body: the async mirror of
    /// `claim_coop`, parking the task through the identical
    /// announce/subscribe handshake.
    pub(crate) async fn claim_poll(
        mb: &Mailbox,
        pat: &MatchPattern,
        rank: usize,
        vnow: Time,
    ) -> Result<Message> {
        ClaimFut {
            mb,
            pat,
            rank,
            vnow,
            wait: WaitState { token: None },
        }
        .await
    }

    /// Blocking probe from a poll-mode body: the async mirror of
    /// `probe_coop`.
    pub(crate) async fn probe_poll(
        mb: &Mailbox,
        pat: &MatchPattern,
        rank: usize,
        vnow: Time,
    ) -> Result<MsgInfo> {
        ProbeFut {
            mb,
            pat,
            rank,
            vnow,
            wait: WaitState { token: None },
        }
        .await
    }

    /// The [`RankBody`] the universe wraps every async rank program in: a
    /// pinned future stepped once per claimed poll unit. `proceed` maps
    /// the poll result onto the fiber intents — `Ready` finishes the
    /// task, `Pending` reads the intent the suspending primitive stored
    /// (block vs yield) — and catches panics exactly where the fiber
    /// body's `catch_unwind` would.
    pub(crate) struct FutureBody {
        fut: Pin<Box<dyn Future<Output = ()> + Send + 'static>>,
        rank: usize,
        store: Arc<SchedShared>,
    }

    impl FutureBody {
        pub(crate) fn new(
            fut: Pin<Box<dyn Future<Output = ()> + Send + 'static>>,
            rank: usize,
            store: Arc<SchedShared>,
        ) -> FutureBody {
            FutureBody { fut, rank, store }
        }
    }

    impl RankBody for FutureBody {
        fn proceed(&mut self) -> Step {
            let waker = noop_waker();
            let mut cx = Context::from_waker(&waker);
            let polled = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                self.fut.as_mut().poll(&mut cx)
            }));
            match polled {
                Ok(Poll::Ready(())) => Step::Finished,
                Ok(Poll::Pending) => {
                    let slot = current_slot().expect("poll body stepped on a scheduler task");
                    match slot.intent.load(Ordering::Acquire) {
                        INTENT_BLOCK => Step::Blocked,
                        INTENT_YIELD => Step::Yielded,
                        other => {
                            // A body suspended through something other
                            // than the scheduler's primitives (a foreign
                            // future): no wake-up source exists, so
                            // treating it as a yield would spin forever.
                            eprintln!(
                                "mpisim: poll body {} suspended with invalid intent {other} \
                                 (awaited a non-mpisim future?)",
                                self.rank
                            );
                            std::process::abort();
                        }
                    }
                }
                Err(payload) => {
                    record_panic(&self.store, self.rank, payload);
                    Step::Finished
                }
            }
        }
    }
}
