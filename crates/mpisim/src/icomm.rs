//! `MPI_Icomm_create_group` — the paper's §VI proposal.
//!
//! Nonblocking communicator creation that does not weaken MPI semantics:
//! the new communicator gets a *wide* context ID `⟨a, b, f, l, c⟩` managed
//! as follows.
//!
//! * If the new group is a **contiguous range** `f'..l'` of the parent's
//!   ranks, every member computes `⟨a, b, f+f', f+l', c+1⟩` **locally in
//!   constant time** — no communication at all. (When `f' = 0` and
//!   `l' = l−f` the group equals the parent's and `c+1` alone distinguishes
//!   the two.)
//! * Otherwise the *first* process of the group builds `⟨a, b, 0, l, 0⟩`
//!   from its own process ID `a` and a local counter `b`, increments the
//!   counter, and broadcasts the ID over the group with the user-supplied
//!   tag — a nonblocking O(α log g) operation.
//!
//! As the paper notes, two creations issued simultaneously both make
//! progress because the broadcasts overlap — unlike mask-all-reduce-based
//! designs, which must serialise.
//!
//! Caveat inherited from the proposal: re-creating the *same* range from
//! the *same* parent yields the same ID, so such communicators must not be
//! used concurrently (create a `dup` first, as with MPI tag collisions).

use std::sync::atomic::Ordering;

use crate::comm::Comm;
use crate::error::{MpiError, Result};
use crate::group::Group;
use crate::msg::{ContextId, Tag};
use crate::nbcoll::{self, Progress};
use crate::time::Time;
use crate::transport::Transport;

/// Constant local cost of the range-case ID computation.
const LOCAL_CREATE_COST: Time = Time(100);

/// Normalise a parent context ID to wide form so the range rule can be
/// applied uniformly (small mask-allocated IDs are embedded with
/// `a = u32::MAX`, which no process ID uses).
fn widen(ctx: ContextId, parent_size: usize) -> (u32, u32, u32, u32, u32) {
    match ctx {
        ContextId::Wide { a, b, f, l, c } => (a, b, f, l, c),
        ContextId::Small(x) => (u32::MAX, x, 0, parent_size as u32 - 1, 0),
    }
}

/// A pending nonblocking communicator creation.
pub enum IcommCreate {
    /// Creation complete; the communicator (if not yet taken).
    Ready(Option<Comm>),
    /// General (non-range) path: waiting on the context-ID broadcast.
    Waiting {
        /// Broadcast of the 5-tuple context ID from group rank 0.
        bcast: nbcoll::Ibcast<[u32; 5], Comm>,
        /// Temporary communicator view the broadcast runs over.
        view: Comm,
        /// The group being created.
        group: Group,
    },
    /// Transient state during `poll`; never observable.
    Poisoned,
}

/// Begin nonblocking creation of a communicator over `group`, a subset of
/// `parent`'s processes. Must be called by every member of `group` (and
/// only those). `tag` disambiguates concurrent creations on one parent.
pub fn icomm_create_group(parent: &Comm, group: &Group, tag: Tag) -> Result<IcommCreate> {
    let me = parent.proc_state().global_rank;
    let my_rank = group
        .inverse(me)
        .ok_or_else(|| MpiError::Usage("caller not in new group".into()))?;
    let psize = parent.size();

    if let Some((f_prime, l_prime)) = group.as_range_of(parent.group()) {
        // Constant-time local path: no communication, no synchronization.
        let (a, b, f, _l, c) = widen(parent.ctx(), psize);
        let ctx = ContextId::Wide {
            a,
            b,
            f: f + f_prime as u32,
            l: f + l_prime as u32,
            c: c + 1,
        };
        parent.proc_state().charge(LOCAL_CREATE_COST);
        let comm = parent.clone_with_ctx(ctx, group.clone())?;
        return Ok(IcommCreate::Ready(Some(comm)));
    }

    // General path: first process picks the ID and broadcasts it over the
    // group (using the parent's context and the user tag).
    let view = parent.view(group.clone())?;
    let payload = if my_rank == 0 {
        let b = parent
            .proc_state()
            .icomm_counter
            .fetch_add(1, Ordering::Relaxed);
        Some(vec![[me as u32, b, 0, group.len() as u32 - 1, 0]])
    } else {
        None
    };
    let bcast = nbcoll::ibcast(&view, payload, 0, tag)?;
    let mut sm = IcommCreate::Waiting {
        bcast,
        view,
        group: group.clone(),
    };
    sm.poll()?;
    Ok(sm)
}

impl IcommCreate {
    /// Take the created communicator once complete.
    pub fn take(&mut self) -> Option<Comm> {
        match self {
            IcommCreate::Ready(c) => c.take(),
            _ => None,
        }
    }

    /// Whether creation has completed.
    pub fn is_done(&self) -> bool {
        matches!(self, IcommCreate::Ready(_))
    }

    /// Block until creation completes and return the communicator.
    pub fn wait_comm(mut self) -> Result<Comm> {
        let mut stall = nbcoll::stall_guard(self.proc_state());
        loop {
            if self.poll()? {
                return Ok(self.take().expect("completed creation yields a comm"));
            }
            if stall.stalled() {
                return Err(match self.proc_state() {
                    Some(s) => MpiError::Timeout {
                        rank: s.global_rank,
                        waited_for: "icomm_create_group".into(),
                        virtual_now: s.now(),
                        blame: s.stall_blame(),
                    },
                    None => MpiError::Timeout {
                        rank: usize::MAX,
                        waited_for: "icomm_create_group".into(),
                        virtual_now: Time::ZERO,
                        blame: crate::faults::RoundBlame::default(),
                    },
                });
            }
            crate::sched::yield_now();
        }
    }
}

impl Progress for IcommCreate {
    fn proc_state(&self) -> Option<&std::sync::Arc<crate::proc::ProcState>> {
        match self {
            IcommCreate::Waiting { view, .. } => Some(view.state()),
            _ => None,
        }
    }

    fn poll(&mut self) -> Result<bool> {
        match std::mem::replace(self, IcommCreate::Poisoned) {
            IcommCreate::Ready(c) => {
                *self = IcommCreate::Ready(c);
                Ok(true)
            }
            IcommCreate::Waiting {
                mut bcast,
                view,
                group,
            } => {
                if !bcast.poll()? {
                    *self = IcommCreate::Waiting { bcast, view, group };
                    return Ok(false);
                }
                let id = bcast.into_data().expect("bcast complete")[0];
                let ctx = ContextId::Wide {
                    a: id[0],
                    b: id[1],
                    f: id[2],
                    l: id[3],
                    c: id[4],
                };
                let comm = view.clone_with_ctx(ctx, group)?;
                *self = IcommCreate::Ready(Some(comm));
                Ok(true)
            }
            IcommCreate::Poisoned => unreachable!("poll reentered poisoned state"),
        }
    }
}
