//! Base cases (paper §VII, phase 2).
//!
//! "Base cases are subtasks covering only one or two processes." They are
//! queued during the distributed phase and only executed after it, "so that
//! a janus process does not delay the execution of a larger subtask while
//! sorting a base case." All base-case machines run concurrently, again so
//! that a process holding several of them cannot deadlock its partners.
//!
//! Two-process case: both sides exchange their elements, build the *same*
//! union sequence (left process's elements first), sort it with the same
//! deterministic total order, and keep complementary slices — the left
//! process the first `cap_left` elements, the right the rest. This is
//! equivalent to the paper's receive + quickselect + local sort but makes
//! the duplicate-key split manifestly complementary on both sides.

use mpisim::{Result, SortKey, Src, Tag, Transport};

use crate::layout::{Layout, TaskRange};

/// Base-case data exchange tag. A single constant suffices: two distinct
/// 2-process base tasks can never involve the same process pair (tasks are
/// disjoint position ranges, and a pair shares exactly one window
/// boundary).
const BASE_TAG: Tag = 50;

/// A queued base-case task: my part of a task covering ≤ 2 processes.
pub struct BaseTask<T> {
    /// The global position range the task settles.
    pub task: TaskRange,
    /// My local elements belonging to the task.
    pub data: Vec<T>,
}

/// A settled piece of output: globally sorted at positions
/// `[lo, lo + data.len())`.
pub struct Settled<T> {
    /// First global position of this piece.
    pub lo: u64,
    /// The sorted elements at `[lo, lo + data.len())`.
    pub data: Vec<T>,
}

/// State machine settling a base-case task covering one or two processes:
/// solo tasks sort locally; pair tasks swap data with the partner, sort the
/// union identically on both sides, and keep their own window's share.
pub enum BaseSm<T: SortKey, C: Transport> {
    /// Task lies within one process window: local sort only.
    Solo {
        /// The settled output, until taken.
        out: Option<Settled<T>>,
    },
    /// Task spans two process windows.
    Pair {
        /// Communicator with global-index rank space.
        c: C,
        /// The task being settled.
        task: TaskRange,
        /// The global layout.
        layout: Layout,
        /// My global process index.
        me: u64,
        /// The partner's global process index.
        partner: u64,
        /// My elements of the task (sent to the partner at start).
        mine: Vec<T>,
        /// The partner's elements, once received.
        theirs: Option<Vec<T>>,
        /// The settled output, until taken.
        out: Option<Settled<T>>,
    },
}

impl<T: SortKey + mpisim::Datum, C: Transport> BaseSm<T, C> {
    /// Start a base case. `world` must be a communicator whose rank space
    /// equals global process indices. `me` is my global index.
    pub fn start(world: &C, layout: Layout, me: u64, bt: BaseTask<T>) -> Result<BaseSm<T, C>> {
        let (f, l) = bt.task.procs(&layout);
        debug_assert!(l - f <= 1, "base case covers at most two processes");
        if f == l {
            let mut data = bt.data;
            sort_charged(world, &mut data);
            return Ok(BaseSm::Solo {
                out: Some(Settled {
                    lo: bt.task.lo,
                    data,
                }),
            });
        }
        let partner = if me == f { l } else { f };
        world.send(&bt.data, partner as usize, BASE_TAG)?;
        let mut sm = BaseSm::Pair {
            c: world.clone(),
            task: bt.task,
            layout,
            me,
            partner,
            mine: bt.data,
            theirs: None,
            out: None,
        };
        sm.poll()?;
        Ok(sm)
    }

    /// Drive the exchange one step; `Ok(true)` once settled.
    pub fn poll(&mut self) -> Result<bool> {
        match self {
            BaseSm::Solo { .. } => Ok(true),
            BaseSm::Pair {
                c,
                task,
                layout,
                me,
                partner,
                mine,
                theirs,
                out,
            } => {
                if out.is_some() {
                    return Ok(true);
                }
                if theirs.is_none() {
                    match c.try_recv::<T>(Src::Rank(*partner as usize), BASE_TAG)? {
                        None => return Ok(false),
                        Some((v, _)) => *theirs = Some(v),
                    }
                }
                let theirs = theirs.take().expect("received");
                let mine_v = std::mem::take(mine);
                let i_am_left = *me < *partner;
                // Identical union sequence on both sides: left's data first.
                let mut union = if i_am_left {
                    let mut u = mine_v;
                    u.extend(theirs);
                    u
                } else {
                    let mut u = theirs;
                    u.extend(mine_v);
                    u
                };
                sort_charged(c, &mut union);
                let (f, _) = task.procs(layout);
                let cap_left = task.load_of(layout, f) as usize;
                let (keep, lo) = if i_am_left {
                    (union[..cap_left].to_vec(), task.lo)
                } else {
                    (union[cap_left..].to_vec(), task.lo + cap_left as u64)
                };
                *out = Some(Settled { lo, data: keep });
                Ok(true)
            }
        }
    }

    /// Take the settled output once complete.
    pub fn take(&mut self) -> Option<Settled<T>> {
        match self {
            BaseSm::Solo { out } | BaseSm::Pair { out, .. } => out.take(),
        }
    }
}

/// Local comparison sort with an O(m log m) virtual-time charge.
fn sort_charged<T: SortKey>(tr: &impl Transport, data: &mut [T]) {
    let m = data.len();
    if m > 1 {
        let log_m = (usize::BITS - (m - 1).leading_zeros()) as usize;
        tr.charge_compute(m * log_m);
    }
    data.sort_by(T::cmp_key);
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpisim::Universe;

    #[test]
    fn solo_base_sorts_locally() {
        let res = Universe::run_default(1, |env| {
            let layout = Layout::new(5, 1);
            let bt = BaseTask {
                task: TaskRange { lo: 0, hi: 5 },
                data: vec![4u64, 1, 3, 0, 2],
            };
            let mut sm = BaseSm::start(&env.world, layout, 0, bt).unwrap();
            assert!(sm.poll().unwrap());
            let s = sm.take().unwrap();
            (s.lo, s.data)
        });
        assert_eq!(res.per_rank[0], (0, vec![0, 1, 2, 3, 4]));
    }

    #[test]
    fn pair_base_splits_complementarily() {
        let res = Universe::run_default(2, |env| {
            let w = &env.world;
            let layout = Layout::new(8, 2);
            let task = TaskRange { lo: 0, hi: 8 };
            let data = if w.rank() == 0 {
                vec![7u64, 0, 5, 2]
            } else {
                vec![6, 1, 4, 3]
            };
            let bt = BaseTask { task, data };
            let mut sm = BaseSm::start(w, layout, w.rank() as u64, bt).unwrap();
            while !sm.poll().unwrap() {
                std::thread::yield_now();
            }
            let s = sm.take().unwrap();
            (s.lo, s.data)
        });
        assert_eq!(res.per_rank[0], (0, vec![0, 1, 2, 3]));
        assert_eq!(res.per_rank[1], (4, vec![4, 5, 6, 7]));
    }

    #[test]
    fn pair_base_with_duplicates_is_complementary() {
        let res = Universe::run_default(2, |env| {
            let w = &env.world;
            let layout = Layout::new(6, 2);
            let task = TaskRange { lo: 0, hi: 6 };
            // Many duplicates straddling the cut.
            let data = if w.rank() == 0 {
                vec![5u64, 5, 5]
            } else {
                vec![5, 1, 5]
            };
            let bt = BaseTask { task, data };
            let mut sm = BaseSm::start(w, layout, w.rank() as u64, bt).unwrap();
            while !sm.poll().unwrap() {
                std::thread::yield_now();
            }
            sm.take().unwrap().data
        });
        let mut all = res.per_rank[0].clone();
        all.extend(&res.per_rank[1]);
        assert_eq!(all, vec![1, 5, 5, 5, 5, 5]);
        assert_eq!(res.per_rank[0].len(), 3);
        assert_eq!(res.per_rank[1].len(), 3);
    }

    #[test]
    fn pair_base_partial_windows() {
        // Task [3, 7) over windows [0,4) and [4,8): left holds 1, right 3.
        let res = Universe::run_default(2, |env| {
            let w = &env.world;
            let layout = Layout::new(8, 2);
            let task = TaskRange { lo: 3, hi: 7 };
            let data = if w.rank() == 0 {
                vec![9u64]
            } else {
                vec![2, 11, 7]
            };
            let bt = BaseTask { task, data };
            let mut sm = BaseSm::start(w, layout, w.rank() as u64, bt).unwrap();
            while !sm.poll().unwrap() {
                std::thread::yield_now();
            }
            let s = sm.take().unwrap();
            (s.lo, s.data)
        });
        assert_eq!(res.per_rank[0], (3, vec![2]));
        assert_eq!(res.per_rank[1], (4, vec![7, 9, 11]));
    }
}
