//! Input distribution generators for experiments and tests.
//!
//! The paper evaluates on uniformly distributed 64-bit floats; the extra
//! distributions exercise the properties JQuick claims beyond the happy
//! path: duplicate handling (`FewValues`, `AllEqual`), balance under skew
//! (`Skewed`, `Zipf`), and adversarial pre-orderings (`Sorted`,
//! `Reversed`). Generation is deterministic per `(seed, rank)`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::layout::Layout;

/// Input distribution for a distributed sorting experiment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Dist {
    /// Uniform doubles in ±10⁹ — the paper's workload.
    Uniform,
    /// Only `k` distinct values (heavy duplicates).
    FewValues(u32),
    /// Every element identical.
    AllEqual,
    /// Globally sorted already.
    Sorted,
    /// Globally reverse-sorted.
    Reversed,
    /// Cubic-skewed toward small keys (hypercube quicksort's nightmare).
    Skewed,
    /// Zipf-like: value v with probability ∝ 1/(v+1).
    Zipf,
}

impl Dist {
    /// All distributions, for exhaustive test sweeps.
    pub const ALL: [Dist; 7] = [
        Dist::Uniform,
        Dist::FewValues(4),
        Dist::AllEqual,
        Dist::Sorted,
        Dist::Reversed,
        Dist::Skewed,
        Dist::Zipf,
    ];
}

/// Deterministic per-rank RNG stream.
fn rng_for(seed: u64, rank: u64) -> StdRng {
    StdRng::seed_from_u64(seed ^ rank.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Generate this rank's input slice: exactly `layout.cap(rank)` doubles.
pub fn generate(layout: &Layout, rank: u64, seed: u64, dist: Dist) -> Vec<f64> {
    let m = layout.cap(rank) as usize;
    let mut rng = rng_for(seed, rank);
    match dist {
        Dist::Uniform => (0..m).map(|_| rng.gen_range(-1e9..1e9)).collect(),
        Dist::FewValues(k) => (0..m).map(|_| rng.gen_range(0..k.max(1)) as f64).collect(),
        Dist::AllEqual => vec![42.0; m],
        Dist::Sorted => {
            let (w0, _) = layout.window(rank);
            (0..m).map(|i| (w0 + i as u64) as f64).collect()
        }
        Dist::Reversed => {
            let (w0, _) = layout.window(rank);
            (0..m)
                .map(|i| (layout.n - (w0 + i as u64)) as f64)
                .collect()
        }
        Dist::Skewed => (0..m)
            .map(|_| {
                let x: f64 = rng.gen();
                x * x * x * 1e6
            })
            .collect(),
        Dist::Zipf => (0..m)
            .map(|_| {
                // Inverse-CDF of a truncated zeta-ish distribution.
                let u: f64 = rng.gen_range(0.0f64..1.0);
                ((1.0 - u).powf(-0.7) - 1.0).floor()
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout() -> Layout {
        Layout::new(100, 7)
    }

    #[test]
    fn sizes_match_capacity() {
        let l = layout();
        for dist in Dist::ALL {
            for r in 0..7 {
                assert_eq!(
                    generate(&l, r, 5, dist).len() as u64,
                    l.cap(r),
                    "{dist:?} rank {r}"
                );
            }
        }
    }

    #[test]
    fn deterministic_per_seed_and_rank() {
        let l = layout();
        assert_eq!(
            generate(&l, 3, 9, Dist::Uniform),
            generate(&l, 3, 9, Dist::Uniform)
        );
        assert_ne!(
            generate(&l, 3, 9, Dist::Uniform),
            generate(&l, 4, 9, Dist::Uniform)
        );
        assert_ne!(
            generate(&l, 3, 9, Dist::Uniform),
            generate(&l, 3, 10, Dist::Uniform)
        );
    }

    #[test]
    fn sorted_is_globally_sorted() {
        let l = layout();
        let all: Vec<f64> = (0..7)
            .flat_map(|r| generate(&l, r, 0, Dist::Sorted))
            .collect();
        assert!(all.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(all.len(), 100);
    }

    #[test]
    fn reversed_is_globally_reverse_sorted() {
        let l = layout();
        let all: Vec<f64> = (0..7)
            .flat_map(|r| generate(&l, r, 0, Dist::Reversed))
            .collect();
        assert!(all.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn few_values_has_few_values() {
        let l = layout();
        let mut vals: Vec<u64> = (0..7)
            .flat_map(|r| generate(&l, r, 1, Dist::FewValues(3)))
            .map(|x| x as u64)
            .collect();
        vals.sort_unstable();
        vals.dedup();
        assert!(vals.len() <= 3);
    }

    #[test]
    fn zipf_skews_to_small_values() {
        let l = Layout::new(7000, 7);
        let all: Vec<f64> = (0..7)
            .flat_map(|r| generate(&l, r, 2, Dist::Zipf))
            .collect();
        let zeros = all.iter().filter(|&&x| x == 0.0).count();
        assert!(
            zeros > all.len() / 4,
            "zipf should concentrate mass at 0: {zeros}/{}",
            all.len()
        );
        assert!(all.iter().all(|&x| x >= 0.0));
    }
}
