//! Communicator backends: the comparison axis of the paper's Fig. 8.
//!
//! JQuick is generic over how process-group communicators are obtained:
//!
//! * [`RbcBackend`] — `rbc::Split_RBC_Comm`: local, O(1), no communication;
//! * [`MpiBackend`] — native `MPI_Comm_create_group` per recursion level:
//!   a blocking collective whose cost grows with the group size (and is
//!   catastrophic under the IBM-like profile).
//!
//! Both backends run the *same* JQuick code; collective traffic is scaled
//! by the backend's [`CollScales`] (vendor profile for native MPI, neutral
//! for RBC), mirroring that native JQuick uses `MPI_Ibcast`/`MPI_Iscan`
//! etc. while RBC JQuick uses RBC's p2p-composed collectives.

use mpisim::model::CollScales;
use mpisim::{Comm, Result, Tag, Transport};
use rbc::RbcComm;

/// Splitting schedule for janus processes (paper §VIII-C): "In our
/// alternating schedule every other janus process splits the left group
/// first and the remaining janus processes split the right group first."
/// Cascaded splitting makes every janus split its left group first, which
/// chains native communicator constructions across the whole machine.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Schedule {
    /// Every other janus splits its left group first (the paper's fix).
    #[default]
    Alternating,
    /// Every janus splits left first — the pathological chain of §VIII-C.
    Cascaded,
}

impl Schedule {
    /// Should process `me` create its LEFT-extending group first?
    pub fn left_first(&self, me: u64) -> bool {
        match self {
            Schedule::Cascaded => true,
            Schedule::Alternating => me.is_multiple_of(2),
        }
    }
}

/// A communicator-construction strategy JQuick is generic over: RBC range
/// splits or native MPI `comm_create_group` (the Fig. 8 comparison).
pub trait Backend: Send + Sync {
    /// The communicator type this backend produces.
    type C: Transport;

    /// A communicator over all processes, with rank == global index.
    fn world(&self, world: &Comm) -> Result<Self::C>;

    /// Derive the communicator for ranks `f..=l` (in `parent`'s rank
    /// space). For RBC this is local and O(1); for native MPI it is a
    /// blocking collective over the new group.
    fn split_range(&self, parent: &Self::C, f: usize, l: usize, tag: Tag) -> Result<Self::C>;

    /// Maybe-async twin of [`Backend::split_range`]: identical result, but
    /// any communication suspends instead of blocking, so the driver can
    /// run as a poll-mode rank body (`Backend::Poll`). RBC resolves
    /// synchronously (the split is local); native MPI awaits the
    /// `create_group` collective.
    fn split_range_async(
        &self,
        parent: &Self::C,
        f: usize,
        l: usize,
        tag: Tag,
    ) -> impl std::future::Future<Output = Result<Self::C>> + Send;

    /// Cost scaling of collective operations on this backend's comms.
    fn coll_scales(&self, c: &Self::C) -> CollScales;

    /// Short name for statistics and benchmark labels.
    fn name(&self) -> &'static str;
}

/// RBC: lightweight range-based communicators.
#[derive(Clone, Copy, Debug, Default)]
pub struct RbcBackend;

impl Backend for RbcBackend {
    type C = RbcComm;

    fn world(&self, world: &Comm) -> Result<RbcComm> {
        Ok(RbcComm::create(world))
    }

    fn split_range(&self, parent: &RbcComm, f: usize, l: usize, _tag: Tag) -> Result<RbcComm> {
        parent.split(f, l)
    }

    async fn split_range_async(
        &self,
        parent: &RbcComm,
        f: usize,
        l: usize,
        tag: Tag,
    ) -> Result<RbcComm> {
        // RBC splits are local arithmetic — nothing to suspend on.
        self.split_range(parent, f, l, tag)
    }

    fn coll_scales(&self, _c: &RbcComm) -> CollScales {
        CollScales::NEUTRAL
    }

    fn name(&self) -> &'static str {
        "rbc"
    }
}

/// Native MPI: one blocking `MPI_Comm_create_group` per subtask per level.
#[derive(Clone, Copy, Debug, Default)]
pub struct MpiBackend;

impl Backend for MpiBackend {
    type C = Comm;

    fn world(&self, world: &Comm) -> Result<Comm> {
        Ok(world.clone())
    }

    fn split_range(&self, parent: &Comm, f: usize, l: usize, tag: Tag) -> Result<Comm> {
        let group = parent.group().subrange(f, l, 1);
        parent.create_group(&group, tag)
    }

    async fn split_range_async(&self, parent: &Comm, f: usize, l: usize, tag: Tag) -> Result<Comm> {
        let group = parent.group().subrange(f, l, 1);
        parent.create_group_async(&group, tag).await
    }

    fn coll_scales(&self, c: &Comm) -> CollScales {
        c.proc_state().router.vendor.coll_scale
    }

    fn name(&self) -> &'static str {
        "mpi"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpisim::Universe;

    #[test]
    fn schedule_parity() {
        assert!(Schedule::Alternating.left_first(0));
        assert!(!Schedule::Alternating.left_first(1));
        assert!(Schedule::Cascaded.left_first(0));
        assert!(Schedule::Cascaded.left_first(1));
    }

    #[test]
    fn backends_split_equivalently() {
        let res = Universe::run_default(6, |env| {
            let rb = RbcBackend.world(&env.world).unwrap();
            let mb = MpiBackend.world(&env.world).unwrap();
            let me = env.rank();
            let (f, l) = if me < 3 { (0, 2) } else { (3, 5) };
            let rc = RbcBackend.split_range(&rb, f, l, 900).unwrap();
            let mc = MpiBackend.split_range(&mb, f, l, 902).unwrap();
            (rc.rank(), rc.size(), mc.rank(), mc.size())
        });
        for (r, (rr, rs, mr, ms)) in res.per_rank.into_iter().enumerate() {
            assert_eq!((rr, rs), (r % 3, 3));
            assert_eq!((mr, ms), (r % 3, 3));
        }
    }

    #[test]
    fn rbc_split_is_cheaper_than_mpi_split() {
        let res = Universe::run_default(8, |env| {
            let me = env.rank();
            let (f, l) = if me < 4 { (0, 3) } else { (4, 7) };
            let rb = RbcBackend.world(&env.world).unwrap();
            let t0 = env.now();
            RbcBackend.split_range(&rb, f, l, 0).unwrap();
            let rbc_cost = env.now() - t0;
            let mb = MpiBackend.world(&env.world).unwrap();
            let t0 = env.now();
            MpiBackend.split_range(&mb, f, l, 904).unwrap();
            let mpi_cost = env.now() - t0;
            (rbc_cost, mpi_cost)
        });
        for (rbc_cost, mpi_cost) in res.per_rank {
            assert!(
                mpi_cost.as_nanos() > 20 * rbc_cost.as_nanos().max(1),
                "rbc={rbc_cost} mpi={mpi_cost}"
            );
        }
    }
}
