//! Global element layout: who owns which element positions.
//!
//! JQuick guarantees *perfect balance*: after every level each process
//! stores ⌊n/p⌋ or ⌈n/p⌉ elements (paper §VII). We fix each process's
//! capacity up front — process `i` owns the contiguous *window* of global
//! element positions `[prefix(i), prefix(i+1))` — and every task (recursive
//! subproblem) is a contiguous range of positions. All assignment
//! arithmetic reduces to intersecting ranges with windows, which also
//! generalises the paper's `n`-multiple-of-`p` assumption to arbitrary `n`.

/// The global layout of `n` elements over `p` processes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Layout {
    /// Total number of elements.
    pub n: u64,
    /// Number of processes.
    pub p: u64,
}

impl Layout {
    /// The perfectly balanced layout of `n` elements over `p` processes.
    pub fn new(n: u64, p: u64) -> Layout {
        assert!(p >= 1, "need at least one process");
        assert!(n >= p, "JQuick requires at least one element per process");
        Layout { n, p }
    }

    /// Capacity of process `i`: ⌊n/p⌋ or ⌈n/p⌉ (the first `n mod p`
    /// processes get the extra element).
    pub fn cap(&self, i: u64) -> u64 {
        debug_assert!(i < self.p);
        self.n / self.p + u64::from(i < self.n % self.p)
    }

    /// First global position owned by process `i` (`prefix(p) = n`).
    pub fn prefix(&self, i: u64) -> u64 {
        debug_assert!(i <= self.p);
        i * (self.n / self.p) + i.min(self.n % self.p)
    }

    /// The window of process `i` as a half-open global position range.
    pub fn window(&self, i: u64) -> (u64, u64) {
        (self.prefix(i), self.prefix(i + 1))
    }

    /// The process owning global position `pos` (O(1) via the inverse of
    /// `prefix`, then corrected by at most one step).
    pub fn owner(&self, pos: u64) -> u64 {
        debug_assert!(pos < self.n);
        let floor = self.n / self.p;
        let rem = self.n % self.p;
        // Positions < rem*(floor+1) belong to the "big" processes.
        if pos < rem * (floor + 1) {
            pos / (floor + 1)
        } else {
            rem + (pos - rem * (floor + 1)) / floor
        }
    }

    /// Number of positions of `[lo, hi)` owned by process `i`.
    pub fn overlap(&self, i: u64, lo: u64, hi: u64) -> u64 {
        let (w0, w1) = self.window(i);
        w1.min(hi).saturating_sub(w0.max(lo))
    }
}

/// A task: a contiguous range of global element positions, handled by the
/// contiguous range of processes whose windows it intersects.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TaskRange {
    /// First global position of the task (inclusive).
    pub lo: u64,
    /// One past the last global position of the task.
    pub hi: u64,
}

impl TaskRange {
    /// Number of elements in the task.
    pub fn len(&self) -> u64 {
        self.hi - self.lo
    }

    /// Whether the task holds no positions.
    pub fn is_empty(&self) -> bool {
        self.lo >= self.hi
    }

    /// First and last process of this task.
    pub fn procs(&self, layout: &Layout) -> (u64, u64) {
        debug_assert!(!self.is_empty());
        (layout.owner(self.lo), layout.owner(self.hi - 1))
    }

    /// Number of processes covering this task.
    pub fn nprocs(&self, layout: &Layout) -> u64 {
        let (f, l) = self.procs(layout);
        l - f + 1
    }

    /// Elements of this task held by process `i`.
    pub fn load_of(&self, layout: &Layout, i: u64) -> u64 {
        layout.overlap(i, self.lo, self.hi)
    }

    /// The paper's "remaining load of the first process" `r` (§VII): how
    /// many of the first process's capacity positions fall in this task.
    pub fn remaining_load_first(&self, layout: &Layout) -> u64 {
        let (f, _) = self.procs(layout);
        self.load_of(layout, f)
    }

    /// Split at `s_total` small elements: returns the (possibly empty)
    /// left and right subranges.
    pub fn split_at(&self, s_total: u64) -> (TaskRange, TaskRange) {
        debug_assert!(s_total <= self.len());
        let cut = self.lo + s_total;
        (
            TaskRange {
                lo: self.lo,
                hi: cut,
            },
            TaskRange {
                lo: cut,
                hi: self.hi,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_layout() {
        let l = Layout::new(16, 4);
        assert_eq!((0..4).map(|i| l.cap(i)).collect::<Vec<_>>(), vec![4; 4]);
        assert_eq!(l.prefix(0), 0);
        assert_eq!(l.prefix(2), 8);
        assert_eq!(l.prefix(4), 16);
    }

    #[test]
    fn ragged_layout() {
        let l = Layout::new(10, 3); // caps 4, 3, 3
        assert_eq!(l.cap(0), 4);
        assert_eq!(l.cap(1), 3);
        assert_eq!(l.cap(2), 3);
        assert_eq!(l.prefix(3), 10);
        let total: u64 = (0..3).map(|i| l.cap(i)).sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn owner_inverts_prefix() {
        for (n, p) in [(16u64, 4u64), (10, 3), (7, 7), (1000, 13), (13, 13)] {
            let l = Layout::new(n, p);
            for pos in 0..n {
                let o = l.owner(pos);
                let (w0, w1) = l.window(o);
                assert!(
                    w0 <= pos && pos < w1,
                    "n={n} p={p} pos={pos} owner={o} window=({w0},{w1})"
                );
            }
        }
    }

    #[test]
    fn overlap_counts() {
        let l = Layout::new(12, 3); // windows [0,4) [4,8) [8,12)
        assert_eq!(l.overlap(0, 2, 6), 2);
        assert_eq!(l.overlap(1, 2, 6), 2);
        assert_eq!(l.overlap(2, 2, 6), 0);
        assert_eq!(l.overlap(1, 0, 12), 4);
    }

    #[test]
    fn task_procs_and_loads() {
        let l = Layout::new(12, 3);
        let t = TaskRange { lo: 3, hi: 9 };
        assert_eq!(t.procs(&l), (0, 2));
        assert_eq!(t.nprocs(&l), 3);
        assert_eq!(t.load_of(&l, 0), 1);
        assert_eq!(t.load_of(&l, 1), 4);
        assert_eq!(t.load_of(&l, 2), 1);
        assert_eq!(t.remaining_load_first(&l), 1);
    }

    #[test]
    fn split_at_boundary_and_interior() {
        let t = TaskRange { lo: 10, hi: 30 };
        let (a, b) = t.split_at(0);
        assert!(a.is_empty());
        assert_eq!(b, t);
        let (a, b) = t.split_at(20);
        assert_eq!(a, t);
        assert!(b.is_empty());
        let (a, b) = t.split_at(7);
        assert_eq!((a.lo, a.hi, b.lo, b.hi), (10, 17, 17, 30));
    }

    /// Consistency with the paper's remaining-load update formula in the
    /// uniform case: r' = n/p − (n/p + s_total − r) mod n/p, for the first
    /// process of the right subgroup (when the cut falls strictly inside a
    /// window).
    #[test]
    fn paper_remaining_load_formula_uniform_case() {
        let l = Layout::new(64, 8); // n/p = 8
        let npp = 8u64;
        // Task covering procs 2..=6 partially: positions [19, 53).
        let t = TaskRange { lo: 19, hi: 53 };
        let r = t.remaining_load_first(&l);
        assert_eq!(r, 5); // window of proc 2 is [16,24): 24-19 = 5
        for s_total in 1..t.len() {
            let (_, right) = t.split_at(s_total);
            if right.is_empty() {
                continue;
            }
            let cut = t.lo + s_total;
            if cut.is_multiple_of(npp) {
                // Cut on a window boundary: no janus; formula not applicable.
                continue;
            }
            if l.owner(cut) == l.owner(t.hi - 1) {
                // Cut in the task's LAST (partial) window: the paper's
                // formula assumes the janus has a full n/p window on its
                // right side, which does not hold at the task edge.
                continue;
            }
            let r_new = right.remaining_load_first(&l);
            let formula = npp - (npp + s_total + npp - r) % npp;
            assert_eq!(
                r_new, formula,
                "s_total={s_total} r={r} r_new={r_new} formula={formula}"
            );
        }
    }
}
