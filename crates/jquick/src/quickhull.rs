//! Distributed 2-D QuickHull on RBC communicators.
//!
//! The paper's conclusion (§IX) suggests applying RBC "to other
//! divide-and-conquer algorithms such as QuickHull": like quicksort,
//! QuickHull recursively partitions its input and would need one
//! communicator per recursion node with native MPI. This module is that
//! application, exercising the same RBC machinery as JQuick — O(1) group
//! splitting and collectives on sub-ranges.
//!
//! Algorithm: points are distributed over processes. The global leftmost
//! and rightmost points are found with an all-reduce; each recursion level
//! keeps only the points outside the current hull edge, finds the farthest
//! point (all-reduce again), and recurses on the two new edges. Unlike
//! JQuick the recursion does NOT move data — every process keeps its local
//! points and each level shrinks the *process group* to those that still
//! own candidate points (an RBC split when they form a range, otherwise
//! the full group is kept — communicator cost is the interesting part, not
//! point routing).

use mpisim::{MpiError, Result, Transport};

/// A 2-D point. Lexicographic tie-breaking makes extreme-point selection
/// deterministic.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Point {
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical coordinate.
    pub y: f64,
}

impl Point {
    /// The point `(x, y)`.
    pub fn new(x: f64, y: f64) -> Point {
        Point { x, y }
    }
}

/// Cross product of (b−a) × (c−a): positive if `c` lies left of a→b.
pub fn cross(a: Point, b: Point, c: Point) -> f64 {
    (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x)
}

/// Encodes a point for reduction ops (tuples of f64 are `Datum`).
type P2 = (f64, f64);

fn enc(p: Point) -> P2 {
    (p.x, p.y)
}

fn dec(p: P2) -> Point {
    Point { x: p.0, y: p.1 }
}

/// Statistics of one distributed hull computation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HullStats {
    /// Recursion nodes this process participated in.
    pub nodes: usize,
    /// Deepest recursion level.
    pub max_depth: u32,
}

const TAG_QH: u64 = 55;

/// Compute the convex hull of the union of all processes' `points`.
/// Collective over `comm`; every process returns the same full hull in
/// counter-clockwise order starting from the leftmost point.
pub fn quickhull<C: Transport>(comm: &C, points: &[Point]) -> Result<(Vec<Point>, HullStats)> {
    let any_local = !points.is_empty();
    let total =
        mpisim::coll::allreduce(comm, &[u64::from(any_local)], TAG_QH, |a: &u64, b: &u64| {
            a + b
        })?[0];
    if total == 0 {
        return Err(MpiError::Usage("quickhull needs at least one point".into()));
    }

    // Global extreme points (min/max by (x, y)).
    let sentinel_min = (f64::INFINITY, f64::INFINITY);
    let sentinel_max = (f64::NEG_INFINITY, f64::NEG_INFINITY);
    let local_min = points
        .iter()
        .map(|&p| enc(p))
        .fold(sentinel_min, |a, b| if b < a { b } else { a });
    let local_max = points
        .iter()
        .map(|&p| enc(p))
        .fold(sentinel_max, |a, b| if b > a { b } else { a });
    let ext = mpisim::coll::allreduce(
        comm,
        &[(local_min, local_max)],
        TAG_QH + 2,
        |a: &(P2, P2), b: &(P2, P2)| {
            (
                if b.0 < a.0 { b.0 } else { a.0 },
                if b.1 > a.1 { b.1 } else { a.1 },
            )
        },
    )?[0];
    let (leftmost, rightmost) = (dec(ext.0), dec(ext.1));

    let mut stats = HullStats::default();
    if leftmost == rightmost {
        return Ok((vec![leftmost], stats));
    }

    // Upper chain (points left of leftmost->rightmost), then lower chain.
    let mut hull = vec![leftmost];
    let upper: Vec<Point> = points
        .iter()
        .copied()
        .filter(|&p| cross(leftmost, rightmost, p) > 0.0)
        .collect();
    hull_edge(comm, &upper, leftmost, rightmost, 1, &mut hull, &mut stats)?;
    hull.push(rightmost);
    let lower: Vec<Point> = points
        .iter()
        .copied()
        .filter(|&p| cross(rightmost, leftmost, p) > 0.0)
        .collect();
    hull_edge(comm, &lower, rightmost, leftmost, 1, &mut hull, &mut stats)?;

    // CCW order: leftmost .. upper chain .. rightmost .. lower chain.
    // (The recursive insertion above appends in traversal order already.)
    Ok((hull, stats))
}

/// Recursive hull edge a→b: find the farthest candidate point, add it, and
/// recurse on both sub-edges. Collective over the full `comm` — the
/// recursion tree is traversed identically by all processes, and each node
/// costs one all-reduce (O(α log p)); with native MPI each node would ALSO
/// cost a blocking communicator creation, which is what the paper's RBC
/// removes. The candidate filtering is local.
fn hull_edge<C: Transport>(
    comm: &C,
    candidates: &[Point],
    a: Point,
    b: Point,
    depth: u32,
    hull: &mut Vec<Point>,
    stats: &mut HullStats,
) -> Result<()> {
    stats.nodes += 1;
    stats.max_depth = stats.max_depth.max(depth);
    comm.charge_compute(candidates.len());

    // Farthest point from edge a->b, tie-broken by coordinates.
    let sentinel = (f64::NEG_INFINITY, (0.0, 0.0));
    let local_best = candidates
        .iter()
        .map(|&p| (cross(a, b, p), enc(p)))
        .fold(sentinel, |acc, x| if x > acc { x } else { acc });
    let best = mpisim::coll::allreduce(
        comm,
        &[local_best],
        TAG_QH + 4,
        |x: &(f64, P2), y: &(f64, P2)| if *y > *x { *y } else { *x },
    )?[0];
    if best.0 <= 0.0 {
        return Ok(()); // no point outside the edge: a->b is a hull edge
    }
    let far = dec(best.1);

    let left: Vec<Point> = candidates
        .iter()
        .copied()
        .filter(|&p| cross(a, far, p) > 0.0)
        .collect();
    let right: Vec<Point> = candidates
        .iter()
        .copied()
        .filter(|&p| cross(far, b, p) > 0.0)
        .collect();
    hull_edge(comm, &left, a, far, depth + 1, hull, stats)?;
    hull.push(far);
    hull_edge(comm, &right, far, b, depth + 1, hull, stats)?;
    Ok(())
}

/// Sequential reference implementation for verification.
pub fn quickhull_reference(points: &[Point]) -> Vec<Point> {
    fn edge(points: &[Point], a: Point, b: Point, hull: &mut Vec<Point>) {
        let best = points
            .iter()
            .copied()
            .map(|p| (cross(a, b, p), enc(p)))
            .fold((f64::NEG_INFINITY, (0.0, 0.0)), |acc, x| {
                if x > acc {
                    x
                } else {
                    acc
                }
            });
        if best.0 <= 0.0 {
            return;
        }
        let far = dec(best.1);
        let left: Vec<Point> = points
            .iter()
            .copied()
            .filter(|&p| cross(a, far, p) > 0.0)
            .collect();
        let right: Vec<Point> = points
            .iter()
            .copied()
            .filter(|&p| cross(far, b, p) > 0.0)
            .collect();
        edge(&left, a, far, hull);
        hull.push(far);
        edge(&right, far, b, hull);
    }
    assert!(!points.is_empty());
    let lm = dec(points
        .iter()
        .map(|&p| enc(p))
        .fold(
            (f64::INFINITY, f64::INFINITY),
            |a, b| if b < a { b } else { a },
        ));
    let rm =
        dec(points
            .iter()
            .map(|&p| enc(p))
            .fold((f64::NEG_INFINITY, f64::NEG_INFINITY), |a, b| {
                if b > a {
                    b
                } else {
                    a
                }
            }));
    if lm == rm {
        return vec![lm];
    }
    let mut hull = vec![lm];
    let upper: Vec<Point> = points
        .iter()
        .copied()
        .filter(|&p| cross(lm, rm, p) > 0.0)
        .collect();
    edge(&upper, lm, rm, &mut hull);
    hull.push(rm);
    let lower: Vec<Point> = points
        .iter()
        .copied()
        .filter(|&p| cross(rm, lm, p) > 0.0)
        .collect();
    edge(&lower, rm, lm, &mut hull);
    hull
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpisim::Universe;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn close(a: &[Point], b: &[Point]) -> bool {
        a.len() == b.len()
            && a.iter()
                .zip(b)
                .all(|(p, q)| (p.x - q.x).abs() < 1e-12 && (p.y - q.y).abs() < 1e-12)
    }

    #[test]
    fn cross_orientation() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(1.0, 0.0);
        assert!(cross(a, b, Point::new(0.5, 1.0)) > 0.0);
        assert!(cross(a, b, Point::new(0.5, -1.0)) < 0.0);
        assert_eq!(cross(a, b, Point::new(2.0, 0.0)), 0.0);
    }

    #[test]
    fn reference_square() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(0.0, 1.0),
            Point::new(0.5, 0.5),
        ];
        let hull = quickhull_reference(&pts);
        assert_eq!(hull.len(), 4);
        assert_eq!(hull[0], Point::new(0.0, 0.0)); // leftmost-lowest first
    }

    #[test]
    fn distributed_matches_reference() {
        for p in [1usize, 2, 3, 5, 8] {
            for seed in [1u64, 2, 3] {
                let res = Universe::run_default(p, move |env| {
                    let w = &env.world;
                    let mut rng = StdRng::seed_from_u64(seed * 100 + w.rank() as u64);
                    let pts: Vec<Point> = (0..40)
                        .map(|_| Point::new(rng.gen_range(-5.0..5.0), rng.gen_range(-5.0..5.0)))
                        .collect();
                    let (hull, _) = quickhull(w, &pts).unwrap();
                    (pts, hull)
                });
                // Union of all local point sets.
                let all: Vec<Point> = res
                    .per_rank
                    .iter()
                    .flat_map(|(pts, _)| pts.clone())
                    .collect();
                let expected = quickhull_reference(&all);
                for (rank, (_, hull)) in res.per_rank.iter().enumerate() {
                    assert!(
                        close(hull, &expected),
                        "p={p} seed={seed} rank={rank}: {hull:?} vs {expected:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn collinear_and_degenerate_inputs() {
        let res = Universe::run_default(3, |env| {
            let w = &env.world;
            let r = w.rank() as f64;
            // All points on one line.
            let pts: Vec<Point> = (0..5)
                .map(|i| Point::new(r * 5.0 + i as f64, 0.0))
                .collect();
            let (hull, _) = quickhull(w, &pts).unwrap();
            hull.len()
        });
        // A line's hull is its two endpoints.
        assert!(res.per_rank.iter().all(|&l| l == 2));
    }

    #[test]
    fn single_point_everywhere() {
        let res = Universe::run_default(4, |env| {
            let (hull, _) = quickhull(&env.world, &[Point::new(1.0, 2.0)]).unwrap();
            hull
        });
        for h in res.per_rank {
            assert_eq!(h, vec![Point::new(1.0, 2.0)]);
        }
    }

    #[test]
    fn empty_local_sets_are_fine() {
        let res = Universe::run_default(4, |env| {
            let w = &env.world;
            let pts = if w.rank() == 2 {
                vec![
                    Point::new(0.0, 0.0),
                    Point::new(4.0, 0.0),
                    Point::new(2.0, 3.0),
                ]
            } else {
                Vec::new()
            };
            let (hull, _) = quickhull(w, &pts).unwrap();
            hull.len()
        });
        assert!(res.per_rank.iter().all(|&l| l == 3));
    }

    #[test]
    fn all_empty_is_an_error() {
        let res = Universe::run_default(2, |env| quickhull(&env.world, &[]).err());
        assert!(matches!(res.per_rank[0], Some(MpiError::Usage(_))));
    }
}
