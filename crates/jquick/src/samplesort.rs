//! Single-level sample sort baseline (paper §IV, \[15\]).
//!
//! p−1 splitters are chosen from a random sample of the input; every
//! process partitions its data into p buckets and routes bucket i to
//! process i in one all-to-all. Efficient only for n = Ω(p²/log p) — the
//! other end of the trade-off spectrum from hypercube quicksort — and its
//! output balance depends on sample quality.

use mpisim::{coll, Datum, Result, SortKey, Transport};

use crate::pivot::draw_samples;
use crate::verify::KeyBits;

const TAG_SAMPLES: u64 = 90;
const TAG_A2A: u64 = 92;

/// Oversampling factor: each process contributes `oversample` samples.
#[derive(Clone, Copy, Debug)]
pub struct SampleSortCfg {
    /// Samples contributed per process for splitter selection.
    pub oversample: u64,
}

impl Default for SampleSortCfg {
    fn default() -> Self {
        SampleSortCfg { oversample: 16 }
    }
}

/// Sort over all processes of `world`. Returns this process's sorted
/// bucket (sizes balanced only in expectation).
pub fn sample_sort<T: SortKey + Datum>(
    world: &impl Transport,
    data: Vec<T>,
    cfg: &SampleSortCfg,
) -> Result<Vec<T>> {
    let p = world.size();
    if p == 1 {
        let mut data = data;
        data.sort_by(T::cmp_key);
        return Ok(data);
    }

    // 1. Sample and select p-1 splitters on rank 0, broadcast — the
    //    splitter machinery shared with mpisim's distributed comm_split.
    let samples = draw_samples(&data, cfg.oversample, world.state());
    let splitters = mpisim::distsort::select_splitters(world, samples, p, TAG_SAMPLES)?;

    // 2. Partition into p buckets by binary search on the splitters.
    let mut buckets: Vec<Vec<T>> = (0..p).map(|_| Vec::new()).collect();
    let log_p = (usize::BITS - (p - 1).leading_zeros()) as usize;
    world.charge_compute(data.len() * log_p.max(1));
    for x in data {
        let idx = splitters.partition_point(|s| s.cmp_key(&x).is_le());
        buckets[idx].push(x);
    }

    // 3. One all-to-all exchange ("moves the data only once"), then local
    //    sort of the received pieces.
    let received = coll::alltoallv(world, buckets, TAG_A2A)?;
    let mut out: Vec<T> = received.into_iter().flatten().collect();
    let m = out.len();
    if m > 1 {
        let log_m = (usize::BITS - (m - 1).leading_zeros()) as usize;
        world.charge_compute(m * log_m);
    }
    out.sort_by(T::cmp_key);
    Ok(out)
}

/// Sort + verify, for tests and benches.
pub fn sample_sort_checked<T: SortKey + Datum + KeyBits>(
    world: &impl Transport,
    data: Vec<T>,
    cfg: &SampleSortCfg,
) -> Result<(Vec<T>, crate::verify::VerifyReport, f64)> {
    let fp = crate::verify::fingerprint(&data);
    let out = sample_sort(world, data, cfg)?;
    let rep = crate::verify::verify_sorted(world, &out, fp, out.len())?;
    let imb = crate::verify::imbalance_factor(world, out.len())?;
    Ok((out, rep, imb))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpisim::Universe;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn run_case(p: usize, n_per: usize, seed: u64) {
        let res = Universe::run_default(p, move |env| {
            let w = &env.world;
            let mut rng = StdRng::seed_from_u64(seed.wrapping_add(w.rank() as u64 * 77));
            let data: Vec<f64> = (0..n_per).map(|_| rng.gen_range(-1e6..1e6)).collect();
            sample_sort_checked(w, data, &SampleSortCfg::default()).unwrap()
        });
        let mut total = 0;
        for (out, rep, _) in &res.per_rank {
            assert!(
                rep.locally_sorted && rep.globally_ordered && rep.permutation_preserved,
                "{rep:?}"
            );
            total += out.len();
        }
        assert_eq!(total, p * n_per);
    }

    #[test]
    fn sorts_any_process_count() {
        run_case(1, 40, 0);
        run_case(3, 40, 1);
        run_case(4, 25, 2);
        run_case(7, 30, 3);
    }

    #[test]
    fn handles_duplicates_and_empties() {
        let res = Universe::run_default(5, |env| {
            let w = &env.world;
            let data = if w.rank() % 2 == 0 {
                vec![42u64; 20]
            } else {
                Vec::new()
            };
            sample_sort_checked(w, data, &SampleSortCfg::default()).unwrap()
        });
        let total: usize = res.per_rank.iter().map(|(o, _, _)| o.len()).sum();
        assert_eq!(total, 60);
        for (_, rep, _) in res.per_rank {
            assert!(rep.globally_ordered && rep.permutation_preserved);
        }
    }

    #[test]
    fn oversampling_improves_balance() {
        let imb_with = |oversample: u64| {
            let res = Universe::run_default(8, move |env| {
                let w = &env.world;
                let mut rng = StdRng::seed_from_u64(5 + w.rank() as u64);
                let data: Vec<u64> = (0..256).map(|_| rng.gen()).collect();
                let (_, _, imb) =
                    sample_sort_checked(w, data, &SampleSortCfg { oversample }).unwrap();
                imb
            });
            res.per_rank[0]
        };
        let rough = imb_with(2);
        let fine = imb_with(64);
        assert!(
            fine <= rough * 1.5,
            "more samples should not hurt balance much: {rough} -> {fine}"
        );
    }
}
