//! The data-exchange step (paper §VII, step 4), as nonblocking state
//! machines so a janus process can drive two exchanges simultaneously.
//!
//! Two implementations:
//!
//! * [`GreedyExchange`] — the paper's greedy message assignment: every
//!   process isends its (at most ~4) contiguous chunks directly to their
//!   target processes, then "receives messages until n/p elements have been
//!   received". A receiver may face Θ(min(p, n/p)) incoming messages in the
//!   worst case.
//! * [`StagedExchange`] — a bounded-degree stand-in for the deterministic
//!   message assignment of \[20\]: elements travel to their targets by
//!   recursive bisection of the process range, one send and O(1) receives
//!   per process per round, ⌈log₂ q⌉ rounds. Same O(α log p) startup
//!   budget as \[20\], at the price of possibly forwarding data O(log p)
//!   times.
//!
//! Both are generic over [`Transport`] and communicate within the task's
//! communicator using user-level tags (distinct per side), relying on RBC's
//! ≤1-process-overlap guarantee between adjacent tasks (§V-A).

use mpisim::{Result, SortKey, Src, Transport};

use crate::assign::{greedy_assignment, recv_expectation, OutMsg, RecvExpectation};
use crate::layout::{Layout, TaskRange};

/// Tags used inside a level; plain user tags, safe because simultaneously
/// active tasks share at most one process (the janus).
pub mod tags {
    use mpisim::Tag;
    /// Tag carrying small-half elements in the greedy exchange.
    pub const X_SMALL: Tag = 40;
    /// Tag carrying large-half elements in the greedy exchange.
    pub const X_LARGE: Tag = 42;
    /// Tag of the staged exchange's run headers (`(first_pos, len)` pairs).
    pub const X_STAGED: Tag = 44;
    /// Tag of the staged exchange's values payload (position-sorted).
    pub const X_STAGED_VALS: Tag = 46;
}

// The run wire format is shared with mpisim's distributed-sort
// `MPI_Comm_split` and now lives in `mpisim::distsort`; re-exported here so
// existing `jquick::exchange::{encode_runs, decode_runs}` users keep
// working. The byte claim is exact while the *virtual-time* win needs
// rounds that ship more than a few machine words — true everywhere except
// the tiniest n/p.
pub use mpisim::distsort::{decode_runs, encode_runs};

/// Which exchange algorithm to use.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum AssignmentKind {
    /// Direct sends to final owners, computed by range arithmetic (§VII-B).
    #[default]
    Greedy,
    /// Recursive bisection: log rounds of neighbor exchanges.
    Staged,
}

/// Result of an exchange: my received small and large elements (exactly my
/// window's intersection with each side — perfect balance).
pub struct Exchanged<T> {
    /// Small-half elements landing in my window.
    pub small: Vec<T>,
    /// Large-half elements landing in my window.
    pub large: Vec<T>,
}

/// The data exchange of one level, dispatching on [`AssignmentKind`].
pub enum ExchangeSm<T: SortKey, C: Transport> {
    /// Greedy direct-send exchange.
    Greedy(GreedyExchange<T, C>),
    /// Staged recursive-bisection exchange.
    Staged(StagedExchange<T, C>),
}

impl<T: SortKey, C: Transport> ExchangeSm<T, C> {
    /// Start an exchange. `small`/`large` are my partition halves;
    /// `s_excl`/`off_excl` are my prefix counts within the task;
    /// `s_total` the task-wide small count. `first_proc` maps task-comm
    /// ranks to global process indices (`global = first_proc + rank`).
    #[allow(clippy::too_many_arguments)]
    pub fn start(
        kind: AssignmentKind,
        c: &C,
        layout: Layout,
        task: TaskRange,
        first_proc: u64,
        small: Vec<T>,
        large: Vec<T>,
        s_excl: u64,
        off_excl: u64,
        s_total: u64,
    ) -> Result<ExchangeSm<T, C>> {
        match kind {
            AssignmentKind::Greedy => Ok(ExchangeSm::Greedy(GreedyExchange::start(
                c, layout, task, first_proc, small, large, s_excl, off_excl, s_total,
            )?)),
            AssignmentKind::Staged => Ok(ExchangeSm::Staged(StagedExchange::start(
                c, layout, task, first_proc, small, large, s_excl, off_excl, s_total,
            )?)),
        }
    }

    /// Drive the exchange one step; `Ok(true)` once complete.
    pub fn poll(&mut self) -> Result<bool> {
        match self {
            ExchangeSm::Greedy(x) => x.poll(),
            ExchangeSm::Staged(x) => x.poll(),
        }
    }

    /// Take the received halves once complete.
    pub fn take(&mut self) -> Option<Exchanged<T>> {
        match self {
            ExchangeSm::Greedy(x) => x.take(),
            ExchangeSm::Staged(x) => x.take(),
        }
    }
}

// ---------------------------------------------------------------------------
// Greedy
// ---------------------------------------------------------------------------

/// Greedy exchange: every process sends each run of its partition halves
/// directly to the run's final owner, then receives until its expectation
/// is met.
pub struct GreedyExchange<T: SortKey, C: Transport> {
    c: C,
    exp: RecvExpectation,
    small: Vec<T>,
    large: Vec<T>,
    done: bool,
}

impl<T: SortKey, C: Transport> GreedyExchange<T, C> {
    #[allow(clippy::too_many_arguments)]
    fn start(
        c: &C,
        layout: Layout,
        task: TaskRange,
        first_proc: u64,
        small: Vec<T>,
        large: Vec<T>,
        s_excl: u64,
        off_excl: u64,
        s_total: u64,
    ) -> Result<GreedyExchange<T, C>> {
        let me = first_proc + c.rank() as u64;
        let msgs: Vec<OutMsg> = greedy_assignment(
            &layout,
            &task,
            s_excl,
            small.len() as u64,
            large.len() as u64,
            off_excl,
            s_total,
        );
        let exp = recv_expectation(&layout, &task, s_total, me);
        let mut sm = GreedyExchange {
            c: c.clone(),
            exp,
            small: Vec::with_capacity(exp.small_count as usize),
            large: Vec::with_capacity(exp.large_count as usize),
            done: false,
        };
        // Fire all sends up front (nonblocking, buffered). Chunks addressed
        // to myself are delivered locally without a message.
        for m in msgs {
            let src = if m.small { &small } else { &large };
            let chunk = src[m.local_range.0..m.local_range.1].to_vec();
            if m.target == me {
                if m.small {
                    sm.small.extend_from_slice(&chunk);
                } else {
                    sm.large.extend_from_slice(&chunk);
                }
            } else {
                let dest_rank = (m.target - first_proc) as usize;
                let tag = if m.small {
                    tags::X_SMALL
                } else {
                    tags::X_LARGE
                };
                c.send_vec(chunk, dest_rank, tag)?;
            }
        }
        sm.poll()?;
        Ok(sm)
    }

    fn poll(&mut self) -> Result<bool> {
        if self.done {
            return Ok(true);
        }
        // Receive until the window's worth of each side has arrived.
        while (self.small.len() as u64) < self.exp.small_count {
            match self.c.try_recv::<T>(Src::Any, tags::X_SMALL)? {
                None => break,
                Some((v, _)) => self.small.extend_from_slice(&v),
            }
        }
        while (self.large.len() as u64) < self.exp.large_count {
            match self.c.try_recv::<T>(Src::Any, tags::X_LARGE)? {
                None => break,
                Some((v, _)) => self.large.extend_from_slice(&v),
            }
        }
        debug_assert!(self.small.len() as u64 <= self.exp.small_count);
        debug_assert!(self.large.len() as u64 <= self.exp.large_count);
        self.done = self.small.len() as u64 == self.exp.small_count
            && self.large.len() as u64 == self.exp.large_count;
        Ok(self.done)
    }

    fn take(&mut self) -> Option<Exchanged<T>> {
        self.done.then(|| Exchanged {
            small: std::mem::take(&mut self.small),
            large: std::mem::take(&mut self.large),
        })
    }
}

// ---------------------------------------------------------------------------
// Staged (recursive bisection)
// ---------------------------------------------------------------------------

/// A sender this round still owes us data: its task-comm rank, plus its
/// run headers once those arrived.
type PendingSender = (usize, Option<Vec<(u64, u64)>>);

/// Staged exchange: elements move toward their final owner through
/// O(log p) bisection rounds; each round halves the process range.
///
/// On the wire each round ships two messages per edge — run headers
/// (`(first_pos, len)`, tag [`tags::X_STAGED`]) and position-sorted values
/// (tag [`tags::X_STAGED_VALS`]) — instead of one `Vec<(T, u64)>` of
/// per-element position tags: see [`encode_runs`] for the byte math.
pub struct StagedExchange<T: SortKey, C: Transport> {
    c: C,
    layout: Layout,
    first_proc: u64,
    me: u64,
    cut: u64,
    /// Elements I currently hold, tagged with their global target position.
    held: Vec<(T, u64)>,
    /// Current process interval `[a, b]` (global indices) containing me.
    a: u64,
    b: u64,
    /// Senders I still expect this round (task-comm ranks), each with its
    /// run headers once those arrived (headers and values are separate
    /// messages; either can land first in the mailbox, but per-sender FIFO
    /// means headers — sent first — are always claimable first).
    await_from: Vec<PendingSender>,
    done: bool,
}

/// Partner of `x` when `[a, b]` splits at `mid` (first process of the right
/// half): mirror into the other half, clamped to the interval.
fn partner(x: u64, a: u64, b: u64, mid: u64) -> u64 {
    let shift = mid - a;
    if x < mid {
        (x + shift).min(b)
    } else {
        x - shift // >= a by construction (right half is never larger)
    }
}

impl<T: SortKey, C: Transport> StagedExchange<T, C> {
    #[allow(clippy::too_many_arguments)]
    fn start(
        c: &C,
        layout: Layout,
        task: TaskRange,
        first_proc: u64,
        small: Vec<T>,
        large: Vec<T>,
        s_excl: u64,
        off_excl: u64,
        s_total: u64,
    ) -> Result<StagedExchange<T, C>> {
        let me = first_proc + c.rank() as u64;
        let (f, l) = task.procs(&layout);
        debug_assert_eq!(f, first_proc);
        let cut = task.lo + s_total;
        // Tag every element with its destination position.
        let mut held = Vec::with_capacity(small.len() + large.len());
        for (i, x) in small.into_iter().enumerate() {
            held.push((x, task.lo + s_excl + i as u64));
        }
        let l_excl = off_excl - s_excl;
        for (i, x) in large.into_iter().enumerate() {
            held.push((x, cut + l_excl + i as u64));
        }
        let mut sm = StagedExchange {
            c: c.clone(),
            layout,
            first_proc,
            me,
            cut,
            held,
            a: f,
            b: l,
            await_from: Vec::new(),
            done: false,
        };
        sm.poll()?;
        Ok(sm)
    }

    fn begin_round(&mut self) -> Result<()> {
        let (a, b, me) = (self.a, self.b, self.me);
        let mid = a + (b - a + 1).div_ceil(2); // left half is the larger

        // Ship everything whose target lives in the other half.
        let my_partner = partner(me, a, b, mid);
        let (keep, mut ship): (Vec<_>, Vec<_>) = std::mem::take(&mut self.held)
            .into_iter()
            .partition(|&(_, pos)| (self.layout.owner(pos) < mid) == (me < mid));
        self.held = keep;
        let dest_rank = (my_partner - self.first_proc) as usize;
        // Position-sort so consecutive targets collapse into few runs
        // (ship is a union of contiguous partition chunks, so the run
        // count stays O(1) per round); the final `take` needed this sort
        // anyway, so most of the work just moves earlier.
        ship.sort_by_key(|&(_, pos)| pos);
        self.c.charge_compute(ship.len());
        let (runs, vals) = encode_runs(ship);
        // Always send headers (possibly empty) so receive counts are
        // deterministic; the values message is elided when there is
        // nothing to ship (the receiver sees Σlen = 0 and skips it), so
        // an empty edge costs one α, as before. A non-empty edge pays one
        // extra α for the separate header frame — the price of keeping
        // payloads untyped-serialization-free — against β savings of
        // ~8 bytes/element, so the format wins whenever the round ships
        // more than a few words; see the module docs for the byte math.
        self.c.send_vec(runs, dest_rank, tags::X_STAGED)?;
        if !vals.is_empty() {
            self.c.send_vec(vals, dest_rank, tags::X_STAGED_VALS)?;
        }
        // Who sends to me this round? Every x in the other half with
        // partner(x) == me.
        self.await_from = (a..=b)
            .filter(|&x| (x < mid) != (me < mid) && partner(x, a, b, mid) == me)
            .map(|x| ((x - self.first_proc) as usize, None))
            .collect();
        // Narrow my interval to my half. NOTE: the round is only complete
        // once `await_from` drains — `poll` must check that BEFORE testing
        // `a == b`, otherwise the final round's receives would be dropped.
        if me < mid {
            self.b = mid - 1;
        } else {
            self.a = mid;
        }
        Ok(())
    }

    fn poll(&mut self) -> Result<bool> {
        if self.done {
            return Ok(true);
        }
        loop {
            // Drain the current round's expected senders first: run
            // headers, then (possibly in the same poll) their values.
            let mut i = 0;
            while i < self.await_from.len() {
                let (src, ref mut runs) = self.await_from[i];
                if runs.is_none() {
                    match self
                        .c
                        .try_recv::<(u64, u64)>(Src::Rank(src), tags::X_STAGED)?
                    {
                        None => {
                            i += 1;
                            continue;
                        }
                        Some((r, _)) => {
                            if r.iter().map(|&(_, len)| len).sum::<u64>() == 0 {
                                // Empty ship: the sender elided the values
                                // message entirely.
                                self.await_from.swap_remove(i);
                                continue;
                            }
                            *runs = Some(r);
                        }
                    }
                }
                match self.c.try_recv::<T>(Src::Rank(src), tags::X_STAGED_VALS)? {
                    None => i += 1,
                    Some((vals, _)) => {
                        let runs = self.await_from[i].1.take().expect("headers arrived");
                        self.held.extend(decode_runs(&runs, vals));
                        self.await_from.swap_remove(i);
                    }
                }
            }
            if !self.await_from.is_empty() {
                return Ok(false);
            }
            if self.a == self.b {
                // Routing finished: everything I hold targets me.
                debug_assert!(self
                    .held
                    .iter()
                    .all(|&(_, pos)| self.layout.owner(pos) == self.me));
                self.done = true;
                return Ok(true);
            }
            self.begin_round()?;
        }
    }

    fn take(&mut self) -> Option<Exchanged<T>> {
        if !self.done {
            return None;
        }
        // Reassemble in position order so the output is deterministic.
        let mut held = std::mem::take(&mut self.held);
        held.sort_by_key(|&(_, pos)| pos);
        self.c.charge_compute(held.len());
        let cut = self.cut;
        let mut small = Vec::new();
        let mut large = Vec::new();
        for (x, pos) in held {
            if pos < cut {
                small.push(x);
            } else {
                large.push(x);
            }
        }
        Some(Exchanged { small, large })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partner_mirrors_and_clamps() {
        // [0..=4], mid = 3 (left {0,1,2}, right {3,4}).
        assert_eq!(partner(0, 0, 4, 3), 3);
        assert_eq!(partner(1, 0, 4, 3), 4);
        assert_eq!(partner(2, 0, 4, 3), 4); // clamped
        assert_eq!(partner(3, 0, 4, 3), 0);
        assert_eq!(partner(4, 0, 4, 3), 1);
    }

    #[test]
    fn every_proc_has_bounded_incoming_degree() {
        for q in 2u64..40 {
            let a = 0;
            let b = q - 1;
            let mid = a + (b - a + 1).div_ceil(2);
            for me in a..=b {
                let senders = (a..=b)
                    .filter(|&x| (x < mid) != (me < mid) && partner(x, a, b, mid) == me)
                    .count();
                assert!(senders <= 2, "q={q} me={me} senders={senders}");
            }
        }
    }

    #[test]
    fn round_partners_are_symmetric_for_balanced_halves() {
        let (a, b) = (0u64, 7u64);
        let mid = 4;
        for x in a..=b {
            let p = partner(x, a, b, mid);
            assert_eq!(partner(p, a, b, mid), x);
        }
    }
}
