//! Hypercube quicksort baseline (paper §IV, \[6\]).
//!
//! The recursive algorithm JQuick improves on: runs on exactly 2^k
//! processes, performs k levels. On each level the group agrees on a pivot,
//! every process splits its data, and the halves are exchanged with the
//! hypercube partner (`rank XOR half`). No communicators are needed — the
//! group structure is implicit in the rank bits — but **data balance is not
//! maintained**: a process can end up with far more (or fewer) than n/p
//! elements, which is exactly the weakness JQuick's assignment step fixes.

use mpisim::{coll, Datum, MpiError, Result, SortKey, Src, Transport};

use crate::partition::{partition, sample_median, Strictness};
use crate::pivot::{draw_samples, PivotCfg};

const TAG_SAMPLES: u64 = 84;
const TAG_PIVOT: u64 = 87;
const TAG_XCHG: u64 = 88;

/// Sort with hypercube quicksort over all processes of `world` (must be a
/// power of two). Returns this process's sorted slice — sizes may be
/// imbalanced.
pub fn hypercube_sort<T: SortKey + Datum>(
    world: &impl Transport,
    mut data: Vec<T>,
    pivot_cfg: &PivotCfg,
) -> Result<Vec<T>> {
    let p = world.size();
    if !p.is_power_of_two() {
        return Err(MpiError::Usage(format!(
            "hypercube quicksort requires a power-of-two process count, got {p}"
        )));
    }
    let r = world.rank();
    let k = p.trailing_zeros();

    for level in 0..k {
        // The current group: processes sharing my high bits. Group size
        // half = p >> level; my subgroup rank is the low bits.
        let group_size = p >> level;
        let group_first = r & !(group_size - 1);
        let half = group_size / 2;

        // Pivot: median of samples gathered to the group's first process,
        // then broadcast (blocking; the baseline has no janus processes).
        let m = pivot_cfg.per_proc(group_size as u64);
        let samples = draw_samples(&data, m, world.state());
        // Gather along a binomial tree *within the group* using explicit
        // sends (the group has no communicator — that is the point).
        let my_sub = r - group_first;
        let mut pool = samples;
        let mut mask = 1usize;
        while mask < group_size {
            if my_sub & mask == 0 {
                let src = my_sub | mask;
                if src < group_size {
                    let (v, _) = world.recv::<T>(Src::Rank(group_first + src), TAG_SAMPLES)?;
                    pool.extend(v);
                }
            } else {
                world.send_vec(pool, group_first + (my_sub & !mask), TAG_SAMPLES)?;
                pool = Vec::new();
                break;
            }
            mask <<= 1;
        }
        // An empty pool means the whole group holds no data (every process
        // with data contributes at least one sample); broadcast the empty
        // pivot and exchange empty halves.
        let mut pivot_buf = if my_sub == 0 {
            world.charge_compute(pool.len() * 4);
            if pool.is_empty() {
                Vec::new()
            } else {
                vec![sample_median(pool)]
            }
        } else {
            Vec::new()
        };
        // Broadcast within the group via a rank-shifted binomial tree.
        group_bcast(world, group_first, group_size, &mut pivot_buf)?;

        // Partition and exchange with the partner in the other half.
        let strict = Strictness::for_level(level);
        world.charge_compute(data.len());
        let (small, large) = match pivot_buf.first() {
            Some(pivot) => partition(data, pivot, strict),
            None => (Vec::new(), Vec::new()),
        };
        let partner = r ^ half;
        let (keep, send) = if my_sub < half {
            (small, large)
        } else {
            (large, small)
        };
        world.send_vec(send, partner, TAG_XCHG)?;
        let (recvd, _) = world.recv::<T>(Src::Rank(partner), TAG_XCHG)?;
        let mut merged = keep;
        merged.extend(recvd);
        data = merged;
    }

    let m = data.len();
    if m > 1 {
        let log_m = (usize::BITS - (m - 1).leading_zeros()) as usize;
        world.charge_compute(m * log_m);
    }
    data.sort_by(T::cmp_key);
    Ok(data)
}

/// Binomial broadcast from `group_first` within the rank window
/// `[group_first, group_first + group_size)`.
fn group_bcast<T: Datum>(
    world: &impl Transport,
    group_first: usize,
    group_size: usize,
    data: &mut Vec<T>,
) -> Result<()> {
    let my_sub = world.rank() - group_first;
    let mut mask = 1usize;
    while mask < group_size {
        if my_sub & mask != 0 {
            let (v, _) = world.recv::<T>(Src::Rank(group_first + (my_sub - mask)), TAG_PIVOT)?;
            *data = v;
            break;
        }
        mask <<= 1;
    }
    mask >>= 1;
    while mask > 0 {
        if my_sub + mask < group_size {
            world.send(data, group_first + my_sub + mask, TAG_PIVOT)?;
        }
        mask >>= 1;
    }
    Ok(())
}

/// Convenience: blocking global barrier + sort + verification for tests.
pub fn hypercube_sort_checked<T: SortKey + Datum + crate::verify::KeyBits>(
    world: &impl Transport,
    data: Vec<T>,
    pivot_cfg: &PivotCfg,
) -> Result<(Vec<T>, crate::verify::VerifyReport, f64)> {
    let fp = crate::verify::fingerprint(&data);
    let out = hypercube_sort(world, data, pivot_cfg)?;
    // Hypercube qsort does not promise balance: check everything else.
    let rep = crate::verify::verify_sorted(world, &out, fp, out.len())?;
    let imb = crate::verify::imbalance_factor(world, out.len())?;
    coll::barrier(world, 94)?;
    Ok((out, rep, imb))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpisim::Universe;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn run_case(p: usize, n_per: usize, seed: u64) {
        let res = Universe::run_default(p, move |env| {
            let w = &env.world;
            let mut rng = StdRng::seed_from_u64(seed ^ w.rank() as u64);
            let data: Vec<u64> = (0..n_per).map(|_| rng.gen_range(0..10_000)).collect();
            hypercube_sort_checked(w, data, &PivotCfg::default()).unwrap()
        });
        let mut total = 0usize;
        for (out, rep, _) in &res.per_rank {
            assert!(rep.locally_sorted && rep.globally_ordered && rep.permutation_preserved);
            total += out.len();
        }
        assert_eq!(total, p * n_per);
    }

    #[test]
    fn sorts_various_power_of_two_sizes() {
        run_case(2, 50, 1);
        run_case(4, 33, 2);
        run_case(8, 20, 3);
        run_case(16, 10, 4);
    }

    #[test]
    fn rejects_non_power_of_two() {
        let res = Universe::run_default(3, |env| {
            hypercube_sort(&env.world, vec![1u64], &PivotCfg::default()).err()
        });
        assert!(matches!(res.per_rank[0], Some(MpiError::Usage(_))));
    }

    #[test]
    fn duplicates_do_not_break_it() {
        let res = Universe::run_default(4, |env| {
            let w = &env.world;
            let data = vec![7u64; 25];
            hypercube_sort_checked(w, data, &PivotCfg::default()).unwrap()
        });
        let total: usize = res.per_rank.iter().map(|(o, _, _)| o.len()).sum();
        assert_eq!(total, 100);
        for (_, rep, _) in res.per_rank {
            assert!(rep.globally_ordered && rep.permutation_preserved);
        }
    }

    #[test]
    fn skewed_input_creates_imbalance() {
        // All the small keys on one side: hypercube qsort will not balance.
        let res = Universe::run_default(8, |env| {
            let w = &env.world;
            let mut rng = StdRng::seed_from_u64(w.rank() as u64);
            // Heavily skewed distribution.
            let data: Vec<u64> = (0..64)
                .map(|_| {
                    let x: f64 = rng.gen();
                    (x * x * x * 10_000.0) as u64
                })
                .collect();
            hypercube_sort_checked(w, data, &PivotCfg { k1: 2, k3: 4 }).unwrap()
        });
        let max_imb = res
            .per_rank
            .iter()
            .map(|(_, _, i)| *i)
            .fold(0.0f64, f64::max);
        // With tiny samples and skew, some imbalance is expected (JQuick's
        // motivation). This asserts the checker sees it, not a huge value.
        assert!(max_imb >= 1.0);
    }
}
