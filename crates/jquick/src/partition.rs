//! Local partitioning with duplicate handling.
//!
//! The paper handles duplicate keys "by carefully switching between the
//! compare functions `<` and `≤`" (\[8\], §VIII-A): on even levels the left
//! partition holds elements strictly smaller than the pivot, on odd levels
//! elements smaller *or equal*. A run of duplicates therefore goes entirely
//! right on one level and entirely left on the next, so it cannot pin the
//! recursion to one side forever.

use std::cmp::Ordering;

use mpisim::SortKey;

/// Which comparison defines the "small" side on this level.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Strictness {
    /// small ⇔ `x < pivot`
    Lt,
    /// small ⇔ `x ≤ pivot`
    Le,
}

impl Strictness {
    /// The paper's alternation: `<` on even levels, `≤` on odd levels.
    pub fn for_level(level: u32) -> Strictness {
        if level.is_multiple_of(2) {
            Strictness::Lt
        } else {
            Strictness::Le
        }
    }

    /// Whether `x` belongs to the small half under this strictness.
    pub fn is_small<T: SortKey>(&self, x: &T, pivot: &T) -> bool {
        matches!(
            (self, x.cmp_key(pivot)),
            (Strictness::Lt, Ordering::Less) | (Strictness::Le, Ordering::Less | Ordering::Equal)
        )
    }
}

/// Partition `data` into (small, large) by `pivot` under `strict`.
/// Preserves relative order within each side (stable), which keeps the
/// algorithm deterministic given deterministic pivots.
pub fn partition<T: SortKey>(data: Vec<T>, pivot: &T, strict: Strictness) -> (Vec<T>, Vec<T>) {
    let mut small = Vec::with_capacity(data.len() / 2 + 1);
    let mut large = Vec::with_capacity(data.len() / 2 + 1);
    for x in data {
        if strict.is_small(&x, pivot) {
            small.push(x);
        } else {
            large.push(x);
        }
    }
    (small, large)
}

/// Index of the median element of `sorted` (upper median for even length).
pub fn median_index(len: usize) -> usize {
    debug_assert!(len > 0);
    len / 2
}

/// Median of a sample (sorts the sample; samples are small).
pub fn sample_median<T: SortKey>(mut sample: Vec<T>) -> T {
    debug_assert!(!sample.is_empty());
    sample.sort_by(T::cmp_key);
    sample[median_index(sample.len())]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alternation_by_level() {
        assert_eq!(Strictness::for_level(0), Strictness::Lt);
        assert_eq!(Strictness::for_level(1), Strictness::Le);
        assert_eq!(Strictness::for_level(2), Strictness::Lt);
    }

    #[test]
    fn strict_vs_lenient_on_duplicates() {
        let data = vec![3u64, 5, 5, 7, 5, 1];
        let (s, l) = partition(data.clone(), &5, Strictness::Lt);
        assert_eq!(s, vec![3, 1]);
        assert_eq!(l, vec![5, 5, 7, 5]);
        let (s, l) = partition(data, &5, Strictness::Le);
        assert_eq!(s, vec![3, 5, 5, 5, 1]);
        assert_eq!(l, vec![7]);
    }

    #[test]
    fn all_equal_flips_sides_across_levels() {
        let data = vec![4u64; 6];
        let (s, _) = partition(data.clone(), &4, Strictness::Lt);
        assert!(s.is_empty(), "Lt sends duplicates right");
        let (s, l) = partition(data, &4, Strictness::Le);
        assert_eq!(s.len(), 6, "Le sends duplicates left");
        assert!(l.is_empty());
    }

    #[test]
    fn partition_preserves_multiset() {
        let data = vec![9u64, 2, 7, 2, 8, 1, 7];
        let (mut s, l) = partition(data.clone(), &7, Strictness::Lt);
        s.extend(l);
        s.sort_unstable();
        let mut orig = data;
        orig.sort_unstable();
        assert_eq!(s, orig);
    }

    #[test]
    fn floats_with_total_order() {
        let data = vec![1.5f64, -0.0, 0.0, 2.5];
        let (s, _) = partition(data, &0.0, Strictness::Lt);
        // total_cmp: -0.0 < 0.0
        assert_eq!(s, vec![-0.0]);
        assert!(s[0].is_sign_negative());
    }

    #[test]
    fn sample_median_odd_even() {
        assert_eq!(sample_median(vec![5u64, 1, 9]), 5);
        assert_eq!(sample_median(vec![4u64, 1, 9, 5]), 5); // upper median
        assert_eq!(sample_median(vec![7u64]), 7);
    }
}
