//! Data assignment: who sends which elements where (paper §VII, step 3).
//!
//! After partitioning, the task's elements are conceptually renumbered:
//! small elements occupy task positions `[0, S)` in (process, local) order,
//! large elements `[S, N)`. Process `i` knows from the prefix sum `s_i`
//! (its small count over predecessors) exactly which global *positions* its
//! own smalls and larges land on, and the layout maps positions to target
//! processes — so the greedy assignment is a purely local computation:
//! every process receives exactly its window's worth (perfect balance by
//! construction), and each sender emits at most two messages per side.
//!
//! The paper notes a receiver may get Θ(min(p, n/p)) messages in the worst
//! case and cites a deterministic assignment \[20\] bounding both sides by a
//! constant. [`crate::exchange`] implements a staged (recursive-bisection)
//! exchange as the bounded-degree stand-in; this module computes the greedy
//! message list and the per-receiver expectations both exchanges rely on.

use crate::layout::{Layout, TaskRange};

/// One outgoing message of the exchange.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OutMsg {
    /// Target process (global index).
    pub target: u64,
    /// Range within my local (small or large) partition buffer.
    pub local_range: (usize, usize),
    /// The side the elements belong to.
    pub small: bool,
    /// Global position of the first element of this message (used by the
    /// staged exchange and by assertions).
    pub first_pos: u64,
}

/// Slice a run of `count` elements starting at global position `start`
/// into per-owner-window chunks.
fn slice_run(layout: &Layout, start: u64, count: u64, small: bool, out: &mut Vec<OutMsg>) {
    if count == 0 {
        return;
    }
    let mut pos = start;
    let end = start + count;
    let mut local = 0usize;
    while pos < end {
        let owner = layout.owner(pos);
        let (_, w1) = layout.window(owner);
        let take = (w1.min(end) - pos) as usize;
        out.push(OutMsg {
            target: owner,
            local_range: (local, local + take),
            small,
            first_pos: pos,
        });
        local += take;
        pos += take as u64;
    }
}

/// Compute my outgoing messages for this level.
///
/// * `task` — the task's global position range;
/// * `s_excl` — number of small elements on task processes before me;
/// * `my_small`, `my_large` — my partition sizes;
/// * `off_excl` — number of task elements on processes before me
///   (so my larges-before count is `off_excl - s_excl`, the paper's
///   `l_i = i·n/p − s_i` generalised);
/// * `s_total` — total small elements in the task.
pub fn greedy_assignment(
    layout: &Layout,
    task: &TaskRange,
    s_excl: u64,
    my_small: u64,
    my_large: u64,
    off_excl: u64,
    s_total: u64,
) -> Vec<OutMsg> {
    let mut out = Vec::with_capacity(4);
    // Smalls land on positions [task.lo + s_excl, +my_small).
    slice_run(layout, task.lo + s_excl, my_small, true, &mut out);
    // Larges land after ALL smalls: [task.lo + s_total + l_i, +my_large).
    let l_excl = off_excl - s_excl;
    slice_run(
        layout,
        task.lo + s_total + l_excl,
        my_large,
        false,
        &mut out,
    );
    out
}

/// What a process must receive in this exchange: exactly the intersection
/// of its window with the small and large position ranges.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecvExpectation {
    /// Elements of the small half this process must receive.
    pub small_count: u64,
    /// Elements of the large half this process must receive.
    pub large_count: u64,
}

/// Compute what `me` must receive when the task splits at `s_total` smalls.
pub fn recv_expectation(
    layout: &Layout,
    task: &TaskRange,
    s_total: u64,
    me: u64,
) -> RecvExpectation {
    let cut = task.lo + s_total;
    RecvExpectation {
        small_count: layout.overlap(me, task.lo, cut),
        large_count: layout.overlap(me, cut, task.hi),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Simulate a whole-task assignment: every process computes its
    /// messages; check global invariants.
    fn simulate(
        layout: &Layout,
        task: &TaskRange,
        smalls: &[u64], // per task process, in order
    ) -> (Vec<Vec<OutMsg>>, u64) {
        let (f, l) = task.procs(layout);
        let s_total: u64 = smalls.iter().sum();
        let mut all = Vec::new();
        let mut s_excl = 0u64;
        let mut off_excl = 0u64;
        for (k, i) in (f..=l).enumerate() {
            let load = task.load_of(layout, i);
            let my_small = smalls[k];
            assert!(my_small <= load);
            all.push(greedy_assignment(
                layout,
                task,
                s_excl,
                my_small,
                load - my_small,
                off_excl,
                s_total,
            ));
            s_excl += my_small;
            off_excl += load;
        }
        (all, s_total)
    }

    fn check_invariants(layout: &Layout, task: &TaskRange, all: &[Vec<OutMsg>], s_total: u64) {
        let (f, l) = task.procs(layout);
        // 1. Each sender sends at most 2 messages per side (contiguous runs
        //    crossing window boundaries).
        for msgs in all {
            assert!(msgs.iter().filter(|m| m.small).count() <= 2 + 1);
            assert!(msgs.iter().filter(|m| !m.small).count() <= 2 + 1);
        }
        // 2. Every process receives exactly its expectation.
        for i in f..=l {
            let exp = recv_expectation(layout, task, s_total, i);
            let got_small: u64 = all
                .iter()
                .flatten()
                .filter(|m| m.target == i && m.small)
                .map(|m| (m.local_range.1 - m.local_range.0) as u64)
                .sum();
            let got_large: u64 = all
                .iter()
                .flatten()
                .filter(|m| m.target == i && !m.small)
                .map(|m| (m.local_range.1 - m.local_range.0) as u64)
                .sum();
            assert_eq!(got_small, exp.small_count, "proc {i} smalls");
            assert_eq!(got_large, exp.large_count, "proc {i} larges");
            // Perfect balance: expectation sums to the window∩task load.
            assert_eq!(
                exp.small_count + exp.large_count,
                task.load_of(layout, i),
                "proc {i} balance"
            );
        }
        // 3. Positions are disjoint and cover [task.lo, task.hi).
        let mut covered: Vec<(u64, u64)> = all
            .iter()
            .flatten()
            .map(|m| {
                let len = (m.local_range.1 - m.local_range.0) as u64;
                (m.first_pos, m.first_pos + len)
            })
            .collect();
        covered.sort_unstable();
        let mut expect = task.lo;
        for (a, b) in covered {
            assert_eq!(a, expect, "gap or overlap at {a}");
            expect = b;
        }
        assert_eq!(expect, task.hi);
    }

    #[test]
    fn full_task_uniform() {
        let layout = Layout::new(24, 4);
        let task = TaskRange { lo: 0, hi: 24 };
        let (all, s_total) = simulate(&layout, &task, &[3, 1, 6, 2]);
        assert_eq!(s_total, 12);
        check_invariants(&layout, &task, &all, s_total);
    }

    #[test]
    fn partial_windows_at_both_ends() {
        // Task [5, 21) of 24/4: proc 0 contributes 1, proc 3 contributes 3.
        let layout = Layout::new(24, 4);
        let task = TaskRange { lo: 5, hi: 21 };
        let (all, s_total) = simulate(&layout, &task, &[1, 2, 6, 0]);
        check_invariants(&layout, &task, &all, s_total);
    }

    #[test]
    fn extreme_splits() {
        let layout = Layout::new(20, 5);
        let task = TaskRange { lo: 0, hi: 20 };
        // All small.
        let (all, s) = simulate(&layout, &task, &[4, 4, 4, 4, 4]);
        check_invariants(&layout, &task, &all, s);
        // All large.
        let (all, s) = simulate(&layout, &task, &[0, 0, 0, 0, 0]);
        check_invariants(&layout, &task, &all, s);
    }

    #[test]
    fn ragged_layout_assignment() {
        let layout = Layout::new(11, 3); // caps 4, 4, 3
        let task = TaskRange { lo: 0, hi: 11 };
        let (all, s) = simulate(&layout, &task, &[2, 4, 1]);
        check_invariants(&layout, &task, &all, s);
    }

    #[test]
    fn single_process_task() {
        let layout = Layout::new(12, 3);
        let task = TaskRange { lo: 4, hi: 8 }; // exactly proc 1's window
        let (all, s) = simulate(&layout, &task, &[3]);
        check_invariants(&layout, &task, &all, s);
        // Everything stays on proc 1.
        for m in all[0].iter() {
            assert_eq!(m.target, 1);
        }
    }

    #[test]
    fn janus_cut_inside_window() {
        let layout = Layout::new(32, 4); // windows of 8
        let task = TaskRange { lo: 0, hi: 32 };
        // s_total = 11: cut at position 11, inside proc 1's window [8,16).
        let (all, s) = simulate(&layout, &task, &[5, 3, 2, 1]);
        assert_eq!(s, 11);
        check_invariants(&layout, &task, &all, s);
        let exp = recv_expectation(&layout, &task, s, 1);
        // Proc 1 is the janus: 3 smalls + 5 larges = its 8-slot window.
        assert_eq!((exp.small_count, exp.large_count), (3, 5));
    }

    proptest::proptest! {
        #[test]
        fn invariants_hold_for_random_tasks(
            n in 4u64..200,
            p in 1u64..16,
            lo_frac in 0.0f64..1.0,
            hi_frac in 0.0f64..1.0,
            seed in 0u64..u64::MAX,
        ) {
            let p = p.min(n);
            let layout = Layout::new(n, p);
            let mut lo = (lo_frac * n as f64) as u64;
            let mut hi = (hi_frac * n as f64) as u64;
            if lo > hi { std::mem::swap(&mut lo, &mut hi); }
            if lo == hi { hi = (lo + 1).min(n); if lo == hi { lo -= 1; } }
            let task = TaskRange { lo, hi };
            let (f, l) = task.procs(&layout);
            // Pseudorandom small counts bounded by loads.
            let mut state = seed | 1;
            let smalls: Vec<u64> = (f..=l).map(|i| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                let load = task.load_of(&layout, i);
                if load == 0 { 0 } else { state % (load + 1) }
            }).collect();
            let (all, s_total) = simulate(&layout, &task, &smalls);
            check_invariants(&layout, &task, &all, s_total);
        }
    }
}
