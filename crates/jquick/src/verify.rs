//! Output checkers for distributed sorts.
//!
//! Used by tests and benchmarks to validate the §II output contract:
//! globally sorted (each process holds elements with consecutive global
//! ranks), balanced, and a permutation of the input.

use mpisim::{coll, Datum, Result, SortKey, Src, Transport};

const TAG_BOUNDARY: u64 = 80;
const TAG_CHECK: u64 = 82;

/// Report of a distributed verification, identical on every process.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VerifyReport {
    /// Every process's output is sorted.
    pub locally_sorted: bool,
    /// Each process's maximum is ≤ the next process's minimum.
    pub globally_ordered: bool,
    /// Every process holds exactly its expected element count.
    pub balanced: bool,
    /// The global output multiset equals the input (by fingerprint).
    pub permutation_preserved: bool,
}

impl VerifyReport {
    /// Whether all four properties hold.
    pub fn all_ok(&self) -> bool {
        self.locally_sorted && self.globally_ordered && self.balanced && self.permutation_preserved
    }
}

/// Elements whose value can be captured in 64 bits for fingerprinting.
pub trait KeyBits {
    /// A 64-bit image of the value (injective for the key types used here).
    fn key_bits(&self) -> u64;
}

impl KeyBits for u64 {
    fn key_bits(&self) -> u64 {
        *self
    }
}

impl KeyBits for i64 {
    fn key_bits(&self) -> u64 {
        *self as u64
    }
}

impl KeyBits for u32 {
    fn key_bits(&self) -> u64 {
        *self as u64
    }
}

impl KeyBits for f64 {
    fn key_bits(&self) -> u64 {
        self.to_bits()
    }
}

impl KeyBits for f32 {
    fn key_bits(&self) -> u64 {
        self.to_bits() as u64
    }
}

/// Order-independent fingerprint of a multiset of elements (commutative
/// wrapping sum of mixed element bits) — detects lost/duplicated elements
/// with high probability.
pub fn fingerprint<T: KeyBits>(data: &[T]) -> u64 {
    data.iter()
        .map(|x| {
            let mut h = x.key_bits() ^ 0xcbf29ce484222325;
            // splitmix64 finalizer.
            h = (h ^ (h >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            h = (h ^ (h >> 27)).wrapping_mul(0x94d049bb133111eb);
            h ^ (h >> 31)
        })
        .fold(0u64, u64::wrapping_add)
}

/// Distributed verification over `world` (rank space = global indices).
/// `input_fp` is the pre-sort [`fingerprint`] of this process's input;
/// `expected_len` its required output length (⌊n/p⌋ or ⌈n/p⌉).
pub fn verify_sorted<T: SortKey + Datum + KeyBits>(
    world: &impl Transport,
    output: &[T],
    input_fp: u64,
    expected_len: usize,
) -> Result<VerifyReport> {
    let p = world.size();
    let r = world.rank();

    let locally_sorted = output.windows(2).all(|w| w[0].cmp_key(&w[1]).is_le());
    let balanced = output.len() == expected_len;

    // Boundary check: my max <= successor's min. Empty outputs only occur
    // when unbalanced; treat them as ordered to let `balanced` flag it.
    let globally_ordered = if p == 1 {
        true
    } else {
        if r + 1 < p {
            let my_max = output.last().copied();
            world.send_vec(my_max.into_iter().collect::<Vec<T>>(), r + 1, TAG_BOUNDARY)?;
        }
        let mut ok = true;
        if r > 0 {
            let (prev_max, _) = world.recv::<T>(Src::Rank(r - 1), TAG_BOUNDARY)?;
            if let (Some(pm), Some(my_min)) = (prev_max.first(), output.first()) {
                ok = pm.cmp_key(my_min).is_le();
            }
        }
        ok
    };

    // Permutation: global fingerprint of outputs must equal inputs'.
    let out_fp = fingerprint(output);
    let sums = coll::allreduce(
        world,
        &[
            input_fp,
            out_fp,
            u64::from(locally_sorted),
            u64::from(globally_ordered),
            u64::from(balanced),
        ],
        TAG_CHECK,
        |a: &u64, b: &u64| a.wrapping_add(*b),
    )?;
    Ok(VerifyReport {
        locally_sorted: sums[2] == p as u64,
        globally_ordered: sums[3] == p as u64,
        balanced: sums[4] == p as u64,
        permutation_preserved: sums[0] == sums[1],
    })
}

/// Max/avg imbalance of output sizes relative to n/p (hypercube quicksort
/// produces imbalance; JQuick must not).
pub fn imbalance_factor(world: &impl Transport, local_len: usize) -> Result<f64> {
    let p = world.size() as u64;
    let totals = coll::allreduce(
        world,
        &[local_len as u64, local_len as u64],
        TAG_CHECK + 2,
        |a: &u64, b: &u64| a + b, // first slot: sum
    )?;
    let max = coll::allreduce(
        world,
        &[local_len as u64],
        TAG_CHECK + 4,
        |a: &u64, b: &u64| (*a).max(*b),
    )?[0];
    let avg = totals[0] as f64 / p as f64;
    Ok(max as f64 / avg.max(1.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpisim::Universe;

    #[test]
    fn fingerprint_is_order_independent() {
        let a = vec![3.5f64, 1.25, -7.0];
        let b = vec![-7.0f64, 3.5, 1.25];
        assert_eq!(fingerprint(&a), fingerprint(&b));
        let c = vec![3.5f64, 1.25, -7.0, 0.0];
        assert_ne!(fingerprint(&a), fingerprint(&c));
    }

    #[test]
    fn verify_accepts_sorted_output() {
        let res = Universe::run_default(4, |env| {
            let w = &env.world;
            let r = w.rank() as u64;
            let input: Vec<u64> = vec![r * 3, r * 3 + 2, r * 3 + 1];
            let fp = fingerprint(&input);
            let mut sorted = input;
            sorted.sort_unstable();
            verify_sorted(w, &sorted, fp, 3).unwrap()
        });
        for rep in res.per_rank {
            assert!(rep.all_ok(), "{rep:?}");
        }
    }

    #[test]
    fn verify_catches_global_disorder() {
        let res = Universe::run_default(2, |env| {
            let w = &env.world;
            // Locally sorted but globally inverted.
            let data: Vec<u64> = if w.rank() == 0 {
                vec![10, 11]
            } else {
                vec![0, 1]
            };
            let fp = fingerprint(&data);
            verify_sorted(w, &data, fp, 2).unwrap()
        });
        for rep in res.per_rank {
            assert!(rep.locally_sorted);
            assert!(!rep.globally_ordered);
        }
    }

    #[test]
    fn verify_catches_lost_elements() {
        let res = Universe::run_default(2, |env| {
            let w = &env.world;
            let input = vec![5u64, 6];
            let fp = fingerprint(&input);
            // An element was replaced (6 lost, 9 fabricated).
            let output = if w.rank() == 0 {
                vec![5u64, 5]
            } else {
                vec![6, 9]
            };
            verify_sorted(w, &output, fp, 2).unwrap()
        });
        for rep in res.per_rank {
            assert!(!rep.permutation_preserved);
        }
    }

    #[test]
    fn verify_catches_imbalance() {
        let res = Universe::run_default(2, |env| {
            let w = &env.world;
            let output: Vec<u64> = if w.rank() == 0 {
                vec![1, 2, 3]
            } else {
                vec![4]
            };
            verify_sorted(w, &output, fingerprint(&output), 2).unwrap()
        });
        for rep in res.per_rank {
            assert!(!rep.balanced);
        }
    }

    #[test]
    fn imbalance_factor_math() {
        let res = Universe::run_default(4, |env| {
            let w = &env.world;
            let len = if w.rank() == 0 { 8 } else { 0 };
            imbalance_factor(w, len).unwrap()
        });
        for f in res.per_rank {
            assert!((f - 4.0).abs() < 1e-9, "factor {f}");
        }
    }
}
