//! Pivot selection (paper §VIII-A).
//!
//! "As a pivot we select the median of max(k₁ log p, k₂ n/p, k₃) samples
//! determined by random sampling." We use `k_total = max(k₁·⌈log₂ q⌉, k₃)`
//! samples per task (the `k₂ n/p` term is a robustness knob for enormous
//! local inputs; our default keeps sample volume O(log q), matching the
//! O(α log p) budget of the pivot step in the analysis §VII-A). Each task
//! process contributes ⌈k/q⌉ random local elements (with replacement) via a
//! nonblocking gather to the task's first process, which broadcasts the
//! median back.

use mpisim::proc::ProcState;
use mpisim::SortKey;

/// Sampling parameters.
#[derive(Clone, Copy, Debug)]
pub struct PivotCfg {
    /// Multiplier on ⌈log₂ q⌉.
    pub k1: u64,
    /// Minimum total sample count.
    pub k3: u64,
}

impl Default for PivotCfg {
    fn default() -> Self {
        PivotCfg { k1: 16, k3: 64 }
    }
}

impl PivotCfg {
    /// Total sample size for a task over `q` processes.
    pub fn total_samples(&self, q: u64) -> u64 {
        let log_q = 64 - (q.max(2) - 1).leading_zeros() as u64;
        (self.k1 * log_q).max(self.k3)
    }

    /// Samples contributed per process.
    pub fn per_proc(&self, q: u64) -> u64 {
        self.total_samples(q).div_ceil(q)
    }
}

/// Draw `m` random elements from `data` with replacement, using the rank's
/// deterministic RNG stream.
pub fn draw_samples<T: SortKey>(data: &[T], m: u64, state: &ProcState) -> Vec<T> {
    if data.is_empty() {
        return Vec::new();
    }
    (0..m).map(|_| data[state.rand_index(data.len())]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    fn mk_state() -> Arc<ProcState> {
        let router = Arc::new(mpisim::proc::Router::new(
            1,
            mpisim::CostModel::default(),
            mpisim::VendorProfile::neutral(),
            Duration::from_secs(1),
            mpisim::faults::FaultState::default(),
        ));
        ProcState::new(0, router, 7)
    }

    #[test]
    fn sample_count_grows_with_log_q() {
        let cfg = PivotCfg::default();
        assert_eq!(cfg.total_samples(2), 64); // k3 floor
        assert_eq!(cfg.total_samples(1024), 160); // 16 * 10
        assert!(cfg.total_samples(1 << 20) > cfg.total_samples(1 << 10));
    }

    #[test]
    fn per_proc_ceil_division() {
        let cfg = PivotCfg { k1: 16, k3: 64 };
        // q=3: total 64, per proc ceil(64/3)=22.
        assert_eq!(cfg.per_proc(3), 22);
        // Large q: at least 1 per process.
        assert!(cfg.per_proc(1 << 20) >= 1);
    }

    #[test]
    fn draw_samples_from_data() {
        let state = mk_state();
        let data: Vec<u64> = (100..200).collect();
        let s = draw_samples(&data, 32, &state);
        assert_eq!(s.len(), 32);
        assert!(s.iter().all(|x| data.contains(x)));
    }

    #[test]
    fn draw_from_empty_is_empty() {
        let state = mk_state();
        let s = draw_samples::<u64>(&[], 10, &state);
        assert!(s.is_empty());
    }
}
