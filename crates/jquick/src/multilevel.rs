//! Multi-level (k-way) sample sort — the middle point of the paper's §IV
//! trade-off spectrum: "multi-level variants of sample sort agree on k−1
//! pivots, partition local data into k pieces, route piece i to process
//! group i and recursively invoke sample sort on each process group."
//!
//! Like JQuick, the recursion creates one process group per piece on every
//! level — which is exactly where lightweight communicators matter. This
//! implementation splits groups with `rbc::Split_RBC_Comm` (O(1), local),
//! so the recursion costs no communicator construction at all; §IV notes
//! that recursive implementations with native MPI "create new
//! communicators on each level ... \[which\] usually prohibits
//! polylogarithmic running time".
//!
//! Unlike JQuick, data balance is only approximate (splitter quality), and
//! the group sizes are fixed fractions of p — the two §IV weaknesses
//! JQuick was designed to fix.

use mpisim::{coll, MpiError, Result, SortKey, Src, Transport};
use rbc::RbcComm;

use crate::pivot::draw_samples;
use crate::verify::KeyBits;

const TAG_SAMPLES: u64 = 110;
const TAG_SPLITTERS: u64 = 113;
const TAG_ROUTE: u64 = 115;

/// Configuration of the k-way recursion.
#[derive(Clone, Copy, Debug)]
pub struct MultiLevelCfg {
    /// Fan-out per level (k = 2 degenerates to quicksort-like halving).
    pub fanout: usize,
    /// Samples contributed per process per level.
    pub oversample: u64,
}

impl Default for MultiLevelCfg {
    fn default() -> Self {
        MultiLevelCfg {
            fanout: 4,
            oversample: 24,
        }
    }
}

/// Statistics of one multi-level sort.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MlStats {
    /// Recursion levels executed.
    pub levels: u32,
    /// Communicator splits performed across all levels.
    pub group_splits: usize,
}

/// Sort the union of all processes' `data` over the RBC communicator
/// `comm`. Returns this process's sorted piece (sizes balanced only
/// approximately) plus statistics.
pub fn multilevel_sample_sort<T: SortKey + mpisim::Datum>(
    comm: &RbcComm,
    mut data: Vec<T>,
    cfg: &MultiLevelCfg,
) -> Result<(Vec<T>, MlStats)> {
    if cfg.fanout < 2 {
        return Err(MpiError::Usage("fanout must be at least 2".into()));
    }
    let mut stats = MlStats::default();
    let mut comm = comm.clone();

    while comm.size() > 1 {
        // Per-level route tag: a process that races ahead into the next
        // level must not have its messages matched by a neighbour's
        // current-level wildcard receive.
        let route_tag = TAG_ROUTE + 2 * stats.levels as u64;
        stats.levels += 1;
        let p = comm.size();
        let k = cfg.fanout.min(p);

        // 1. Agree on k-1 splitters from a gathered sample.
        let samples = draw_samples(&data, cfg.oversample, comm.state());
        let gathered = comm.gatherv(samples, 0)?;
        let mut splitters: Vec<T> = match gathered {
            Some(per_rank) => {
                let mut all: Vec<T> = per_rank.into_iter().flatten().collect();
                comm.charge_compute(all.len() * 4);
                all.sort_by(T::cmp_key);
                if all.is_empty() {
                    Vec::new()
                } else {
                    (1..k).map(|i| all[i * all.len() / k]).collect()
                }
            }
            None => Vec::new(),
        };
        coll::bcast(&comm, &mut splitters, 0, TAG_SPLITTERS)?;

        // 2. Partition into k pieces and route piece i to group i.
        //    Groups are contiguous rank ranges of near-equal size.
        let group_of = |rank: usize| -> usize { (rank * k / p).min(k - 1) };
        let bounds: Vec<(usize, usize)> = (0..k)
            .map(|gi| {
                let f = (gi * p).div_ceil(k);
                let l = ((gi + 1) * p).div_ceil(k) - 1;
                (f, l)
            })
            .collect();
        let my_group = group_of(comm.rank());
        comm.charge_compute(data.len() * k.ilog2().max(1) as usize);
        let mut pieces: Vec<Vec<T>> = (0..k).map(|_| Vec::new()).collect();
        for x in data.drain(..) {
            let gi = splitters.partition_point(|s| s.cmp_key(&x).is_le());
            pieces[gi].push(x);
        }
        // Route piece i to a process of group i chosen round-robin by my
        // rank (spreads load); receive everything addressed to me.
        let mut expected_senders = 0usize;
        for sender in 0..p {
            let (f, l) = bounds[group_of(comm.rank())];
            let target_for_sender = f + (sender % (l - f + 1));
            if target_for_sender == comm.rank() && sender != comm.rank() {
                expected_senders += 1;
            }
        }
        for (gi, piece) in pieces.into_iter().enumerate() {
            let (f, l) = bounds[gi];
            let target = f + (comm.rank() % (l - f + 1));
            if target == comm.rank() {
                data.extend(piece);
            } else {
                comm.send_vec(piece, target, route_tag)?;
            }
        }
        for _ in 0..expected_senders {
            let (v, _) = comm.recv::<T>(Src::Any, route_tag)?;
            data.extend(v);
        }

        // 3. Recurse into my group: an O(1) local RBC split.
        let (f, l) = bounds[my_group];
        comm = comm.split(f, l)?;
        stats.group_splits += 1;
    }

    let m = data.len();
    if m > 1 {
        let log_m = (usize::BITS - (m - 1).leading_zeros()) as usize;
        comm.charge_compute(m * log_m);
    }
    data.sort_by(T::cmp_key);
    Ok((data, stats))
}

/// Sort + distributed verification, for tests and benches.
pub fn multilevel_checked<T: SortKey + mpisim::Datum + KeyBits>(
    world: &RbcComm,
    data: Vec<T>,
    cfg: &MultiLevelCfg,
) -> Result<(Vec<T>, crate::verify::VerifyReport, MlStats)> {
    let fp = crate::verify::fingerprint(&data);
    let (out, stats) = multilevel_sample_sort(world, data, cfg)?;
    // Pieces land on group-leader order == rank order; verify globally.
    let rep = crate::verify::verify_sorted(world, &out, fp, out.len())?;
    coll::barrier(world, TAG_SAMPLES + 8)?;
    Ok((out, rep, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpisim::Universe;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn run_case(p: usize, n_per: usize, fanout: usize, seed: u64) -> Vec<MlStats> {
        let res = Universe::run_default(p, move |env| {
            let world = RbcComm::create(&env.world);
            let mut rng = StdRng::seed_from_u64(seed + world.rank() as u64);
            let data: Vec<u64> = (0..n_per).map(|_| rng.gen_range(0..1_000_000)).collect();
            let cfg = MultiLevelCfg {
                fanout,
                ..Default::default()
            };
            let (_, rep, stats) = multilevel_checked(&world, data, &cfg).unwrap();
            assert!(
                rep.locally_sorted && rep.globally_ordered && rep.permutation_preserved,
                "p={p} fanout={fanout}: {rep:?}"
            );
            stats
        });
        res.per_rank
    }

    #[test]
    fn sorts_with_various_fanouts() {
        for fanout in [2usize, 3, 4, 8] {
            run_case(8, 100, fanout, 1);
            run_case(9, 60, fanout, 2);
        }
    }

    #[test]
    fn level_count_is_log_k_of_p() {
        let stats = run_case(16, 50, 4, 3);
        // 16 processes, fanout 4: exactly 2 levels.
        assert!(stats.iter().all(|s| s.levels == 2), "{stats:?}");
        let stats = run_case(16, 50, 2, 4);
        assert!(stats.iter().all(|s| s.levels == 4), "{stats:?}");
    }

    #[test]
    fn single_process_trivial() {
        let res = Universe::run_default(1, |env| {
            let world = RbcComm::create(&env.world);
            let (out, stats) =
                multilevel_sample_sort(&world, vec![3u64, 1, 2], &MultiLevelCfg::default())
                    .unwrap();
            (out, stats.levels)
        });
        assert_eq!(res.per_rank[0], (vec![1, 2, 3], 0));
    }

    #[test]
    fn duplicates_and_empty_ranks() {
        let res = Universe::run_default(6, |env| {
            let world = RbcComm::create(&env.world);
            let data = if world.rank().is_multiple_of(2) {
                vec![7u64; 30]
            } else {
                Vec::new()
            };
            let (out, rep, _) =
                multilevel_checked(&world, data, &MultiLevelCfg::default()).unwrap();
            assert!(rep.globally_ordered && rep.permutation_preserved, "{rep:?}");
            out.len()
        });
        let total: usize = res.per_rank.iter().sum();
        assert_eq!(total, 90);
    }

    #[test]
    fn rejects_fanout_one() {
        let res = Universe::run_default(2, |env| {
            let world = RbcComm::create(&env.world);
            multilevel_sample_sort(
                &world,
                vec![1u64],
                &MultiLevelCfg {
                    fanout: 1,
                    oversample: 4,
                },
            )
            .err()
        });
        assert!(matches!(res.per_rank[0], Some(MpiError::Usage(_))));
    }
}
