//! The JQuick driver: recursion, janus processes, and phase 2.
//!
//! Every process runs this loop over its ≤ 2 active tasks (a process can be
//! the last process of one task and the first of the next — a *janus*; see
//! the window argument in DESIGN.md). One iteration ("wave"):
//!
//! 1. run the level state machines of all active tasks **concurrently**
//!    (round-robin polling — the janus requirement of §VII);
//! 2. process outcomes in task-position order: queue base cases, retry
//!    degenerate splits with the flipped comparator (settling tasks whose
//!    elements are all equal), and collect pending subtask creations;
//! 3. create subtask communicators in schedule order (cascaded or
//!    alternating, §VIII-C) — O(1) local for RBC, blocking collective for
//!    native MPI.
//!
//! When no active tasks remain, phase 2 executes all queued base cases
//! concurrently, and the settled pieces are assembled into the output.

use std::sync::Arc;
use std::time::Duration;

use mpisim::proc::{ProcState, StallDeadline};
use mpisim::{coll, Comm, Datum, MpiError, Result, SortKey, Time, Transport};

use crate::backend::{Backend, Schedule};
use crate::basecase::{BaseSm, BaseTask, Settled};
use crate::exchange::AssignmentKind;
use crate::layout::{Layout, TaskRange};
use crate::level::{LevelOutcome, LevelSm};
use crate::pivot::PivotCfg;

/// Wall-clock ceiling per wave (last-resort deadlock detector when the
/// configured receive timeout cannot be consulted).
const WAVE_TIMEOUT: Duration = Duration::from_secs(60);

/// Arm the per-wave stall detector: twice the configured blocking-receive
/// timeout, so the point-to-point deadlock detector (which carries exact
/// blame) gets to fire first; this is the backstop for pure polling
/// loops. The deadline re-arms on global progress — one wave at p = 2^18
/// on a single core legitimately outlives any fixed budget while every
/// rank stays live (see [`StallDeadline`]).
fn wave_stall(state: &Arc<ProcState>) -> StallDeadline {
    let t = state.router.recv_timeout.min(WAVE_TIMEOUT / 2);
    StallDeadline::new(Some(&state.router), t * 2)
}

/// User tags for the driver's blocking agreements.
const TAG_MINMAX: u64 = 70;
const TAG_CREATE_BASE: u64 = 60;

/// Tunables of a JQuick run (all defaults follow the paper).
#[derive(Clone, Debug)]
pub struct JQuickConfig {
    /// Janus group-splitting schedule (§VIII-C).
    pub schedule: Schedule,
    /// Small/large exchange assignment strategy.
    pub assignment: AssignmentKind,
    /// Pivot-selection parameters.
    pub pivot: PivotCfg,
    /// Degenerate-split retries before checking whether the task's
    /// elements are all equal (and settling it in place if so).
    pub max_stuck_retries: u32,
}

impl Default for JQuickConfig {
    fn default() -> Self {
        JQuickConfig {
            schedule: Schedule::Alternating,
            assignment: AssignmentKind::Greedy,
            pivot: PivotCfg::default(),
            max_stuck_retries: 3,
        }
    }
}

/// Per-process statistics of one sort.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SortStats {
    /// Deepest recursion level this process participated in.
    pub max_level: u32,
    /// Communicators this process helped create (0 for RBC in spirit —
    /// RBC splits are counted too but cost O(1)).
    pub comm_creations: usize,
    /// Base cases executed on a single process.
    pub base_1: usize,
    /// Base cases executed on two processes (janus pairs).
    pub base_2: usize,
    /// Degenerate-split retries.
    pub stuck_retries: u32,
    /// Tasks settled because all their elements were equal.
    pub settled_equal: usize,
    /// Virtual time when the distributed phase ended (phase 2 start).
    pub distributed_end: Time,
}

struct ActiveTask<T, C> {
    task: TaskRange,
    comm: C,
    /// Global index of the task's first process (maps comm ranks to
    /// global process indices).
    first_proc: u64,
    level: u32,
    stuck: u32,
    data: Vec<T>,
}

struct PendingCreate<T, C> {
    parent_comm: C,
    parent_first: u64,
    sub: TaskRange,
    level: u32,
    data: Vec<T>,
}

/// Sort `data` across all processes of `world`. `n` is the global element
/// count; this process must hold exactly `Layout::new(n, p).cap(rank)`
/// elements (perfect input balance, as the paper assumes). Returns this
/// process's sorted output slice — exactly the same count (perfect output
/// balance) — plus statistics.
pub fn jquick_sort<T, B>(
    backend: &B,
    world: &Comm,
    data: Vec<T>,
    n: u64,
    cfg: &JQuickConfig,
) -> Result<(Vec<T>, SortStats)>
where
    T: SortKey + Datum,
    B: Backend,
{
    mpisim::block_inline(jquick_sort_async(backend, world, data, n, cfg))
}

/// Maybe-async core of [`jquick_sort`]: the identical algorithm, but every
/// blocking agreement (the all-equal min/max all-reduce, native
/// `create_group`, and the polling loops' yields) suspends instead of
/// parking, so the whole sort can run as a `Backend::Poll` rank body at
/// process counts beyond the fiber ceiling.
pub async fn jquick_sort_async<T, B>(
    backend: &B,
    world: &Comm,
    data: Vec<T>,
    n: u64,
    cfg: &JQuickConfig,
) -> Result<(Vec<T>, SortStats)>
where
    T: SortKey + Datum,
    B: Backend,
{
    let p = world.size() as u64;
    let me = world.rank() as u64;
    let layout = Layout::new(n, p);
    if data.len() as u64 != layout.cap(me) {
        return Err(MpiError::Usage(format!(
            "rank {me} got {} elements, capacity is {}",
            data.len(),
            layout.cap(me)
        )));
    }
    let wc = backend.world(world)?;
    let mut stats = SortStats::default();
    let mut bases: Vec<BaseTask<T>> = Vec::new();
    let mut settled: Vec<Settled<T>> = Vec::new();
    let mut active: Vec<ActiveTask<T, B::C>> = Vec::new();

    let root = TaskRange { lo: 0, hi: n };
    if root.nprocs(&layout) <= 2 {
        bases.push(BaseTask { task: root, data });
    } else {
        active.push(ActiveTask {
            task: root,
            comm: wc_clone(&wc),
            first_proc: 0,
            level: 0,
            stuck: 0,
            data,
        });
    }

    // ---- distributed phase --------------------------------------------------
    let mut wave = 0u32;
    while !active.is_empty() {
        // Trace phase marker (no-op unless tracing is on): one per wave of
        // concurrent level machines, at this rank's current virtual time.
        mpisim::obs::mark(world.proc_state(), || format!("jquick wave {wave}"));
        wave += 1;
        // 1. Start and drive all level machines concurrently.
        let mut metas = Vec::new();
        let mut sms = Vec::new();
        active.sort_by_key(|t| t.task.lo);
        for at in active.drain(..) {
            let ActiveTask {
                task,
                comm,
                first_proc,
                level,
                stuck,
                data,
            } = at;
            stats.max_level = stats.max_level.max(level);
            let sm = LevelSm::start(
                clone_c::<B>(&comm),
                backend.coll_scales(&comm),
                layout,
                task,
                level,
                cfg.assignment,
                &cfg.pivot,
                data,
            )?;
            metas.push(TaskMeta {
                task,
                comm,
                first_proc,
                level,
                stuck,
            });
            sms.push(sm);
        }
        poll_all_levels(world.proc_state(), &mut sms).await?;

        // 2. Process outcomes left-to-right (the order matters for the
        //    blocking all-equal agreement: leftmost-first is globally
        //    consistent and acyclic).
        let mut pending: Vec<PendingCreate<T, B::C>> = Vec::new();
        for (meta, mut sm) in metas.into_iter().zip(sms) {
            let outcome = sm.take_outcome().expect("level completed");
            match outcome {
                LevelOutcome::Stuck { data } => {
                    stats.stuck_retries += 1;
                    let stuck = meta.stuck + 1;
                    if stuck >= cfg.max_stuck_retries {
                        // Blocking agreement: are all elements equal?
                        let local_min = data
                            .iter()
                            .copied()
                            .min_by(T::cmp_key)
                            .expect("task load >= 1");
                        let local_max = data.iter().copied().max_by(T::cmp_key).unwrap();
                        let mm = coll::allreduce_async(
                            &meta.comm,
                            &[(local_min, local_max)],
                            TAG_MINMAX,
                            |a: &(T, T), b: &(T, T)| {
                                let mn = if b.0.cmp_key(&a.0).is_lt() { b.0 } else { a.0 };
                                let mx = if b.1.cmp_key(&a.1).is_gt() { b.1 } else { a.1 };
                                (mn, mx)
                            },
                        )
                        .await?[0];
                        if mm.0.cmp_key(&mm.1).is_eq() {
                            // All equal: the task is sorted in place.
                            stats.settled_equal += 1;
                            let my_lo = meta.task.lo.max(layout.prefix(me));
                            settled.push(Settled { lo: my_lo, data });
                            continue;
                        }
                    }
                    // Retry with the flipped comparator and a fresh pivot.
                    active.push(ActiveTask {
                        task: meta.task,
                        comm: meta.comm,
                        first_proc: meta.first_proc,
                        level: meta.level + 1,
                        stuck,
                        data,
                    });
                }
                LevelOutcome::Split {
                    s_total,
                    small,
                    large,
                } => {
                    let (lt, rt) = meta.task.split_at(s_total);
                    for (sub, d) in [(lt, small), (rt, large)] {
                        let my_load = sub.load_of(&layout, me);
                        debug_assert_eq!(d.len() as u64, my_load, "perfect balance violated");
                        if my_load == 0 {
                            continue;
                        }
                        if sub.nprocs(&layout) <= 2 {
                            bases.push(BaseTask { task: sub, data: d });
                        } else {
                            pending.push(PendingCreate {
                                parent_comm: clone_c::<B>(&meta.comm),
                                parent_first: meta.first_proc,
                                sub,
                                level: meta.level + 1,
                                data: d,
                            });
                        }
                    }
                }
            }
        }

        // 3. Create subtask communicators in schedule order.
        debug_assert!(pending.len() <= 2, "a process is in at most two tasks");
        order_pending(&mut pending, &layout, me, cfg.schedule);
        for pc in pending {
            let (f, l) = pc.sub.procs(&layout);
            // The tag must be identical on every member of the new group.
            // Sibling creations on the same parent context share at most
            // one process (the cut janus), so per-level tags suffice —
            // source matching disambiguates the rest (§V-A).
            let tag = TAG_CREATE_BASE + pc.level as u64 % 16;
            let comm = backend
                .split_range_async(
                    &pc.parent_comm,
                    (f - pc.parent_first) as usize,
                    (l - pc.parent_first) as usize,
                    tag,
                )
                .await?;
            stats.comm_creations += 1;
            active.push(ActiveTask {
                task: pc.sub,
                comm,
                first_proc: f,
                level: pc.level,
                stuck: 0,
                data: pc.data,
            });
        }
    }

    stats.distributed_end = world.proc_state().now();
    mpisim::obs::mark(world.proc_state(), || {
        "jquick distributed phase done".to_string()
    });

    // ---- phase 2: base cases -------------------------------------------------
    let mut bsms = Vec::with_capacity(bases.len());
    for bt in bases {
        if bt.task.nprocs(&layout) == 1 {
            stats.base_1 += 1;
        } else {
            stats.base_2 += 1;
        }
        bsms.push(BaseSm::start(&wc, layout, me, bt)?);
    }
    let mut stall = wave_stall(world.proc_state());
    loop {
        let mut all = true;
        for sm in bsms.iter_mut() {
            all &= sm.poll()?;
        }
        if all {
            break;
        }
        if stall.stalled() {
            let state = world.proc_state();
            return Err(MpiError::Timeout {
                rank: me as usize,
                waited_for: "base case phase".into(),
                virtual_now: state.now(),
                blame: state.stall_blame(),
            });
        }
        mpisim::yield_now_async().await;
    }
    for mut sm in bsms {
        settled.push(sm.take().expect("base complete"));
    }
    mpisim::obs::mark(world.proc_state(), || "jquick base cases done".to_string());

    // ---- assemble -------------------------------------------------------------
    settled.sort_by_key(|s| s.lo);
    let (w0, w1) = layout.window(me);
    let mut out = Vec::with_capacity((w1 - w0) as usize);
    let mut expect = w0;
    for s in settled {
        if s.lo != expect {
            return Err(MpiError::Usage(format!(
                "rank {me}: settled pieces not contiguous: expected {expect}, got {}",
                s.lo
            )));
        }
        expect += s.data.len() as u64;
        out.extend(s.data);
    }
    if expect != w1 {
        return Err(MpiError::Usage(format!(
            "rank {me}: output covers [{w0},{expect}) instead of [{w0},{w1})"
        )));
    }
    Ok((out, stats))
}

// Helper shims: `Backend::C: Transport` implies `Clone`, but keeping the
// calls in one place documents that comm handles are cheap to clone.
fn wc_clone<C: Transport>(c: &C) -> C {
    c.clone()
}

fn clone_c<B: Backend>(c: &B::C) -> B::C {
    c.clone()
}

struct TaskMeta<C> {
    task: TaskRange,
    comm: C,
    first_proc: u64,
    level: u32,
    stuck: u32,
}

/// Round-robin polling of all level machines until completion.
async fn poll_all_levels<T, C>(state: &Arc<ProcState>, sms: &mut [LevelSm<T, C>]) -> Result<()>
where
    T: SortKey + Datum,
    C: Transport,
{
    let mut stall = wave_stall(state);
    loop {
        let mut all = true;
        for sm in sms.iter_mut() {
            all &= sm.poll()?;
        }
        if all {
            return Ok(());
        }
        if stall.stalled() {
            return Err(MpiError::Timeout {
                rank: state.global_rank,
                waited_for: "level state machines".into(),
                virtual_now: state.now(),
                blame: state.stall_blame(),
            });
        }
        mpisim::yield_now_async().await;
    }
}

/// Apply the janus splitting schedule: with two pending creations, one
/// extends left of me (I am its last process) and one extends right (I am
/// its first); the schedule decides which to create first (§VIII-C).
fn order_pending<T, C>(
    pending: &mut [PendingCreate<T, C>],
    layout: &Layout,
    me: u64,
    schedule: Schedule,
) {
    if pending.len() < 2 {
        return;
    }
    let is_left_extending = |pc: &PendingCreate<T, C>| {
        let (_, l) = pc.sub.procs(layout);
        l == me
    };
    let first_is_left = is_left_extending(&pending[0]);
    let want_left_first = schedule.left_first(me);
    if first_is_left != want_left_first {
        pending.swap(0, 1);
    }
}
