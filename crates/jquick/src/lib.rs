//! # Janus Quicksort (JQuick) and baselines
//!
//! The sorting side of *"Lightweight MPI Communicators with Applications to
//! Perfectly Balanced Quicksort"* (Axtmann, Wiebigke, Sanders; IPDPS 2018).
//!
//! JQuick (§VII) is a recursive distributed quicksort that guarantees
//! **perfect data balance**: after every level each process stores ⌊n/p⌋ or
//! ⌈n/p⌉ elements. The key device is the *janus process* — a process
//! belonging to two adjacent process groups at once, advancing both via
//! nonblocking operations so progress in one subtask never delays the
//! other. JQuick runs on any number of processes (not just powers of two).
//!
//! The crate is generic over the communicator [`backend`]: lightweight RBC
//! range communicators (O(1) local splits) or native MPI communicators
//! (blocking `MPI_Comm_create_group` per level) — the comparison of the
//! paper's Fig. 8.
//!
//! Also included: hypercube quicksort \[6\] and single-level sample sort \[15\]
//! as baselines (§IV), and distributed output verification.
//!
//! ```
//! use jquick::{jquick_sort, JQuickConfig, RbcBackend};
//! use mpisim::Universe;
//!
//! let n = 64u64;
//! let res = Universe::run_default(4, |env| {
//!     let r = env.rank() as u64;
//!     // Each rank holds 16 elements: 63-r, 59-r, ... (reverse order).
//!     let data: Vec<u64> = (0..16).map(|i| 63 - (i * 4 + r)).collect();
//!     let (out, _stats) =
//!         jquick_sort(&RbcBackend, &env.world, data, n, &JQuickConfig::default()).unwrap();
//!     out
//! });
//! let all: Vec<u64> = res.per_rank.into_iter().flatten().collect();
//! assert_eq!(all, (0..64).collect::<Vec<_>>());
//! ```

#![warn(missing_docs)]

pub mod assign;
pub mod backend;
pub mod basecase;
pub mod driver;
pub mod exchange;
pub mod hypercube;
pub mod layout;
pub mod level;
pub mod multilevel;
pub mod partition;
pub mod pivot;
pub mod quickhull;
pub mod samplesort;
pub mod verify;
pub mod workloads;

pub use backend::{Backend, MpiBackend, RbcBackend, Schedule};
pub use driver::{jquick_sort, jquick_sort_async, JQuickConfig, SortStats};
pub use exchange::AssignmentKind;
pub use hypercube::hypercube_sort;
pub use layout::{Layout, TaskRange};
pub use multilevel::{multilevel_sample_sort, MultiLevelCfg};
pub use pivot::PivotCfg;
pub use quickhull::{quickhull, Point};
pub use samplesort::{sample_sort, SampleSortCfg};
pub use verify::{fingerprint, imbalance_factor, verify_sorted, VerifyReport};
pub use workloads::{generate as generate_workload, Dist};
