//! One distributed recursion level of JQuick as a state machine
//! (paper §VII, Fig. 3): pivot selection → data partitioning → data
//! assignment → data exchange.
//!
//! Everything is nonblocking: a janus process owns *two* of these machines
//! (one per task) and polls them round-robin, so "progress in one subtask
//! [never] delays progress in another subtask". Collective traffic runs
//! through a [`Scaled`] wrapper carrying the backend's collective cost
//! profile (vendor scales for native MPI, neutral for RBC); the exchange is
//! plain point-to-point in both cases.

use mpisim::model::CollScales;
use mpisim::nbcoll::{self, Ibcast, Igatherv, Iscan, Progress};
use mpisim::{Result, Scaled, SortKey, Transport};

use crate::exchange::{AssignmentKind, ExchangeSm, Exchanged};
use crate::layout::{Layout, TaskRange};
use crate::partition::{partition, sample_median, Strictness};
use crate::pivot::{draw_samples, PivotCfg};

/// Level-internal user tags (see `exchange::tags` for the exchange's).
mod ltags {
    use mpisim::Tag;
    pub const SAMPLES: Tag = 30; // +1 used by gatherv payload
    pub const PIVOT: Tag = 33;
    pub const SCAN: Tag = 35;
    pub const TOTAL: Tag = 37;
}

type SumFn = fn(&u64, &u64) -> u64;

fn add(a: &u64, b: &u64) -> u64 {
    a + b
}

/// What a completed level hands back to the driver.
pub enum LevelOutcome<T> {
    /// The task split at `s_total` smalls; my received halves.
    Split {
        /// Global number of elements below the pivot.
        s_total: u64,
        /// Elements of the small half landing in my window.
        small: Vec<T>,
        /// Elements of the large half landing in my window.
        large: Vec<T>,
    },
    /// Degenerate pivot (`s_total ∈ {0, N}`): no data moved; retry with the
    /// flipped comparator (paper's `<`/`≤` switching handles duplicates).
    Stuck {
        /// The unchanged local data, returned to the caller.
        data: Vec<T>,
    },
}

enum LState<T: SortKey, C: Transport> {
    Gather(Igatherv<T, Scaled<C>>),
    PivotBcast(Ibcast<T, Scaled<C>>),
    Scan {
        small: Vec<T>,
        large: Vec<T>,
        scan: Iscan<u64, Scaled<C>, SumFn>,
    },
    Total {
        small: Vec<T>,
        large: Vec<T>,
        s_excl: u64,
        bc: Ibcast<u64, Scaled<C>>,
    },
    Exchange {
        s_total: u64,
        x: ExchangeSm<T, C>,
    },
    Done(Option<LevelOutcome<T>>),
    Poisoned,
}

/// State machine of one recursion level: pivot selection, partition,
/// prefix sums, and the balanced data exchange, all nonblocking.
pub struct LevelSm<T: SortKey, C: Transport> {
    c: C,
    scales: CollScales,
    layout: Layout,
    task: TaskRange,
    level: u32,
    kind: AssignmentKind,
    first_proc: u64,
    me: u64,
    /// My task-local data; taken when partitioning.
    data: Vec<T>,
    state: LState<T, C>,
}

impl<T: SortKey + mpisim::Datum, C: Transport> LevelSm<T, C> {
    /// Start a level. `c` is the task communicator (rank `i` ⇔ global
    /// process `first_proc + i`); `data` is my window∩task slice.
    #[allow(clippy::too_many_arguments)]
    pub fn start(
        c: C,
        scales: CollScales,
        layout: Layout,
        task: TaskRange,
        level: u32,
        kind: AssignmentKind,
        pivot_cfg: &PivotCfg,
        data: Vec<T>,
    ) -> Result<LevelSm<T, C>> {
        let (f, l) = task.procs(&layout);
        let q = l - f + 1;
        debug_assert_eq!(c.size() as u64, q, "task comm must cover the task");
        let me = f + c.rank() as u64;
        debug_assert_eq!(data.len() as u64, task.load_of(&layout, me));
        // Step 1 begins: contribute samples to the task's first process.
        let m = pivot_cfg.per_proc(q);
        let samples = draw_samples(&data, m, c.state());
        let coll = Scaled::new(c.clone(), scales.gather);
        let gather = nbcoll::igatherv(&coll, samples, 0, ltags::SAMPLES)?;
        let mut sm = LevelSm {
            c,
            scales,
            layout,
            task,
            level,
            kind,
            first_proc: f,
            me,
            data,
            state: LState::Gather(gather),
        };
        sm.poll()?;
        Ok(sm)
    }

    /// Elements of the task held by task processes before me.
    fn off_excl(&self) -> u64 {
        if self.me == self.first_proc {
            0
        } else {
            self.layout.prefix(self.me) - self.task.lo
        }
    }

    /// Drive the machine; `Ok(true)` when the outcome is available.
    pub fn poll(&mut self) -> Result<bool> {
        loop {
            match std::mem::replace(&mut self.state, LState::Poisoned) {
                LState::Gather(mut g) => {
                    if !g.poll()? {
                        self.state = LState::Gather(g);
                        return Ok(false);
                    }
                    // Root computes the sample median and broadcasts it.
                    let payload = g.result().map(|per_rank| {
                        let all: Vec<T> = per_rank.into_iter().flatten().collect();
                        self.c.charge_compute(all.len() * 4); // sample sort
                        vec![sample_median(all)]
                    });
                    let coll = Scaled::new(self.c.clone(), self.scales.bcast);
                    let bc = nbcoll::ibcast(&coll, payload, 0, ltags::PIVOT)?;
                    self.state = LState::PivotBcast(bc);
                }
                LState::PivotBcast(mut bc) => {
                    if !bc.poll()? {
                        self.state = LState::PivotBcast(bc);
                        return Ok(false);
                    }
                    let pivot = bc.into_data().expect("bcast complete")[0];
                    // Step 2: local partition (O(n/p) charged).
                    let strict = Strictness::for_level(self.level);
                    let data = std::mem::take(&mut self.data);
                    self.c.charge_compute(data.len());
                    let (small, large) = partition(data, &pivot, strict);
                    // Step 3 begins: prefix-sum the small counts.
                    let coll = Scaled::new(self.c.clone(), self.scales.scan);
                    let scan =
                        nbcoll::iscan(&coll, &[small.len() as u64], ltags::SCAN, add as SumFn)?;
                    self.state = LState::Scan { small, large, scan };
                }
                LState::Scan {
                    small,
                    large,
                    mut scan,
                } => {
                    if !scan.poll()? {
                        self.state = LState::Scan { small, large, scan };
                        return Ok(false);
                    }
                    let incl = scan.inclusive().expect("scan complete")[0];
                    let s_excl = incl - small.len() as u64;
                    // The last process broadcasts the total small count.
                    let q = self.c.size();
                    let payload = (self.c.rank() == q - 1).then(|| vec![incl]);
                    let coll = Scaled::new(self.c.clone(), self.scales.bcast);
                    let bc = nbcoll::ibcast(&coll, payload, q - 1, ltags::TOTAL)?;
                    self.state = LState::Total {
                        small,
                        large,
                        s_excl,
                        bc,
                    };
                }
                LState::Total {
                    small,
                    large,
                    s_excl,
                    mut bc,
                } => {
                    if !bc.poll()? {
                        self.state = LState::Total {
                            small,
                            large,
                            s_excl,
                            bc,
                        };
                        return Ok(false);
                    }
                    let s_total = bc.into_data().expect("bcast complete")[0];
                    if s_total == 0 || s_total == self.task.len() {
                        // Degenerate split: keep the data, let the driver
                        // retry with the flipped comparator.
                        let mut data = small;
                        data.extend(large);
                        self.state = LState::Done(Some(LevelOutcome::Stuck { data }));
                        return Ok(true);
                    }
                    // Step 4: data exchange.
                    let x = ExchangeSm::start(
                        self.kind,
                        &self.c,
                        self.layout,
                        self.task,
                        self.first_proc,
                        small,
                        large,
                        s_excl,
                        self.off_excl(),
                        s_total,
                    )?;
                    self.state = LState::Exchange { s_total, x };
                }
                LState::Exchange { s_total, mut x } => {
                    if !x.poll()? {
                        self.state = LState::Exchange { s_total, x };
                        return Ok(false);
                    }
                    let Exchanged { small, large } = x.take().expect("exchange complete");
                    self.state = LState::Done(Some(LevelOutcome::Split {
                        s_total,
                        small,
                        large,
                    }));
                    return Ok(true);
                }
                LState::Done(out) => {
                    self.state = LState::Done(out);
                    return Ok(true);
                }
                LState::Poisoned => unreachable!("poll reentered poisoned state"),
            }
        }
    }

    /// Take the level's outcome once complete.
    pub fn take_outcome(&mut self) -> Option<LevelOutcome<T>> {
        match &mut self.state {
            LState::Done(out) => out.take(),
            _ => None,
        }
    }
}
