//! Janus Quicksort under the cooperative scheduler backend — including the
//! large-p regime the thread backend cannot reach. This is the acceptance
//! scenario of the scheduler subsystem: RBC split + barrier + a small
//! JQuick sort at thousands of simulated ranks with zero per-rank OS
//! threads.

use jquick::{fingerprint, jquick_sort, verify_sorted, JQuickConfig, Layout, RbcBackend};
use mpisim::{coll, SimConfig, Transport, Universe};

/// Deterministic per-rank input: values scattered so that the global sort
/// must move data between ranks.
fn gen_input(layout: &Layout, rank: u64, p: u64) -> Vec<u64> {
    let m = layout.cap(rank);
    (0..m)
        .map(|i| (i * p + (p - 1 - rank)) % layout.n.max(1))
        .collect()
}

/// Barrier + small JQuick sort at `p` ranks, `n_per` elements per rank,
/// under the cooperative backend, with distributed verification.
fn coop_jquick(p: usize, n_per: u64) {
    let n = n_per * p as u64;
    let res = Universe::run(p, SimConfig::cooperative(), move |env| {
        let w = &env.world;
        coll::barrier(w, 3).unwrap();
        let layout = Layout::new(n, p as u64);
        let data = gen_input(&layout, w.rank() as u64, p as u64);
        let fp = fingerprint(&data);
        let (out, _stats) = jquick_sort(&RbcBackend, w, data, n, &JQuickConfig::default()).unwrap();
        let rep = verify_sorted(w, &out, fp, layout.cap(w.rank() as u64) as usize).unwrap();
        assert!(rep.all_ok(), "rank {}: {rep:?}", w.rank());
        out.len() as u64
    });
    let total: u64 = res.per_rank.iter().sum();
    assert_eq!(total, n, "output is a permutation of the input size");
}

#[test]
fn coop_jquick_small_matches_thread_backend() {
    // Same program under both backends must produce identical sorted data.
    let p = 12;
    let n = 12 * 40u64;
    let run = |cfg: SimConfig| {
        Universe::run(p, cfg, move |env| {
            let w = &env.world;
            let layout = Layout::new(n, p as u64);
            let data = gen_input(&layout, w.rank() as u64, p as u64);
            jquick_sort(&RbcBackend, w, data, n, &JQuickConfig::default())
                .unwrap()
                .0
        })
        .per_rank
    };
    assert_eq!(run(SimConfig::default()), run(SimConfig::cooperative()));
}

#[test]
fn coop_jquick_1024_ranks() {
    coop_jquick(1024, 8);
}

#[test]
fn coop_jquick_identical_across_worker_counts() {
    // The epoch discipline makes the worker count invisible to the
    // simulation: the full JQuick pipeline (splits, collectives, pivot
    // RNG, exchange) must produce byte-identical output and clocks for
    // any coop_workers, including the host's full core count.
    let p = 96;
    let n = 96 * 16u64;
    let host = std::thread::available_parallelism().map_or(4, |c| c.get());
    let run = |workers: usize| {
        let cfg = SimConfig::cooperative().with_workers(workers);
        let res = Universe::run(p, cfg, move |env| {
            let w = &env.world;
            let layout = Layout::new(n, p as u64);
            let data = gen_input(&layout, w.rank() as u64, p as u64);
            jquick_sort(&RbcBackend, w, data, n, &JQuickConfig::default())
                .unwrap()
                .0
        });
        (res.per_rank, res.clocks)
    };
    let serial = run(1);
    for workers in [2, host, 8] {
        assert_eq!(serial, run(workers), "workers = {workers}");
    }
}

#[test]
fn coop_jquick_at_host_parallelism() {
    // The multi-worker configuration the sweeps use: all host cores. (Set
    // via with_workers, not the MPISIM_COOP_WORKERS env knob — mutating
    // the environment races with sibling tests reading it; the env path
    // is exercised by the CI largep sweeps instead.)
    let host = std::thread::available_parallelism().map_or(4, |c| c.get());
    let cfg = SimConfig::cooperative().with_workers(host);
    assert_eq!(cfg.coop_workers, host);
    let p = 256;
    let n = 256 * 8u64;
    let res = Universe::run(p, cfg, move |env| {
        let w = &env.world;
        coll::barrier(w, 3).unwrap();
        let layout = Layout::new(n, p as u64);
        let data = gen_input(&layout, w.rank() as u64, p as u64);
        let fp = fingerprint(&data);
        let (out, _stats) = jquick_sort(&RbcBackend, w, data, n, &JQuickConfig::default()).unwrap();
        let rep = verify_sorted(w, &out, fp, layout.cap(w.rank() as u64) as usize).unwrap();
        assert!(rep.all_ok(), "rank {}: {rep:?}", w.rank());
        out.len() as u64
    });
    assert_eq!(res.per_rank.iter().sum::<u64>(), n);
}

#[test]
fn coop_jquick_non_power_of_two() {
    // JQuick's selling point is any-p balance; exercise an awkward count.
    coop_jquick(769, 6);
}
