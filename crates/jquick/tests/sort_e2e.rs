//! End-to-end Janus Quicksort tests across backends, schedules,
//! assignments, process counts, and input distributions.

use jquick::{
    fingerprint, jquick_sort, verify_sorted, AssignmentKind, Backend, JQuickConfig, Layout,
    MpiBackend, RbcBackend, Schedule,
};
use mpisim::{SimConfig, Transport, Universe, VendorProfile};
use rand::{rngs::StdRng, Rng, SeedableRng};

fn gen_input(layout: &Layout, rank: u64, seed: u64, dist: Dist) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed ^ (rank.wrapping_mul(0x9E3779B97F4A7C15)));
    let m = layout.cap(rank) as usize;
    match dist {
        Dist::Uniform => (0..m).map(|_| rng.gen_range(-1e9..1e9)).collect(),
        Dist::FewValues => (0..m).map(|_| rng.gen_range(0..4) as f64).collect(),
        Dist::AllEqual => vec![42.0; m],
        Dist::Sorted => {
            let (w0, _) = layout.window(rank);
            (0..m).map(|i| (w0 + i as u64) as f64).collect()
        }
        Dist::Reversed => {
            let (w0, _) = layout.window(rank);
            (0..m)
                .map(|i| (layout.n - (w0 + i as u64)) as f64)
                .collect()
        }
        Dist::Skewed => (0..m)
            .map(|_| {
                let x: f64 = rng.gen();
                x * x * x * 1e6
            })
            .collect(),
    }
}

#[derive(Clone, Copy)]
enum Dist {
    Uniform,
    FewValues,
    AllEqual,
    Sorted,
    Reversed,
    Skewed,
}

fn run_sort<B: Backend>(
    backend: B,
    p: usize,
    n: u64,
    cfg: JQuickConfig,
    dist: Dist,
    vendor: VendorProfile,
    seed: u64,
) -> Vec<jquick::SortStats> {
    let sim = SimConfig::default().with_vendor(vendor).with_seed(seed);
    let res = Universe::run(p, sim, move |env| {
        let w = &env.world;
        let layout = Layout::new(n, p as u64);
        let data = gen_input(&layout, w.rank() as u64, seed, dist);
        let fp = fingerprint(&data);
        let (out, stats) = jquick_sort(&backend, w, data, n, &cfg).unwrap();
        let rep = verify_sorted(w, &out, fp, layout.cap(w.rank() as u64) as usize).unwrap();
        assert!(rep.all_ok(), "rank {} p={p} n={n}: {rep:?}", w.rank());
        stats
    });
    res.per_rank
}

#[test]
fn rbc_uniform_various_sizes() {
    for (p, n) in [
        (3usize, 30u64),
        (4, 64),
        (5, 40),
        (8, 256),
        (13, 130),
        (16, 160),
    ] {
        run_sort(
            RbcBackend,
            p,
            n,
            JQuickConfig::default(),
            Dist::Uniform,
            VendorProfile::neutral(),
            p as u64 * 31 + n,
        );
    }
}

#[test]
fn rbc_non_power_of_two_and_non_multiple() {
    // JQuick "runs on any number of cores" and we generalise to n not a
    // multiple of p.
    for (p, n) in [(6usize, 47u64), (7, 99), (9, 100), (11, 67), (12, 150)] {
        run_sort(
            RbcBackend,
            p,
            n,
            JQuickConfig::default(),
            Dist::Uniform,
            VendorProfile::neutral(),
            n * 7,
        );
    }
}

#[test]
fn rbc_one_element_per_process() {
    // The paper's n/p = 1 case (Fig. 8 starts there).
    for p in [3usize, 5, 8, 12] {
        run_sort(
            RbcBackend,
            p,
            p as u64,
            JQuickConfig::default(),
            Dist::Uniform,
            VendorProfile::neutral(),
            p as u64,
        );
    }
}

#[test]
fn rbc_duplicate_heavy_inputs() {
    for dist in [Dist::FewValues, Dist::AllEqual] {
        let stats = run_sort(
            RbcBackend,
            8,
            128,
            JQuickConfig::default(),
            dist,
            VendorProfile::neutral(),
            99,
        );
        // Duplicates trigger the comparator switching / settle machinery;
        // the sort must still finish in bounded levels.
        for s in stats {
            assert!(s.max_level < 64);
        }
    }
}

#[test]
fn rbc_presorted_and_reversed() {
    run_sort(
        RbcBackend,
        8,
        160,
        JQuickConfig::default(),
        Dist::Sorted,
        VendorProfile::neutral(),
        5,
    );
    run_sort(
        RbcBackend,
        8,
        160,
        JQuickConfig::default(),
        Dist::Reversed,
        VendorProfile::neutral(),
        6,
    );
}

#[test]
fn rbc_skewed_distribution_still_perfectly_balanced() {
    // Even with heavy skew the output is perfectly balanced (the point of
    // JQuick vs hypercube quicksort); verify_sorted checks `balanced`.
    run_sort(
        RbcBackend,
        12,
        240,
        JQuickConfig::default(),
        Dist::Skewed,
        VendorProfile::neutral(),
        17,
    );
}

#[test]
fn staged_assignment_matches_greedy() {
    let cfg = JQuickConfig {
        assignment: AssignmentKind::Staged,
        ..JQuickConfig::default()
    };
    for (p, n) in [(5usize, 50u64), (8, 128), (9, 95)] {
        run_sort(
            RbcBackend,
            p,
            n,
            cfg.clone(),
            Dist::Uniform,
            VendorProfile::neutral(),
            n + 1,
        );
    }
}

#[test]
fn cascaded_schedule_also_correct() {
    let cfg = JQuickConfig {
        schedule: Schedule::Cascaded,
        ..JQuickConfig::default()
    };
    run_sort(
        RbcBackend,
        9,
        90,
        cfg.clone(),
        Dist::Uniform,
        VendorProfile::neutral(),
        3,
    );
    run_sort(
        MpiBackend,
        8,
        80,
        cfg,
        Dist::Uniform,
        VendorProfile::neutral(),
        4,
    );
}

#[test]
fn mpi_backend_sorts_with_all_vendors() {
    for vendor in [
        VendorProfile::neutral(),
        VendorProfile::intel_like(),
        VendorProfile::ibm_like(),
    ] {
        run_sort(
            MpiBackend,
            8,
            96,
            JQuickConfig::default(),
            Dist::Uniform,
            vendor,
            8,
        );
    }
}

#[test]
fn rbc_faster_than_mpi_backend_for_small_inputs() {
    // The heart of Fig. 8: with one element per process the runtime is
    // dominated by communicator creation, where RBC wins decisively.
    let time_with = |use_rbc: bool| {
        let p = 32usize;
        let n = 32u64;
        let res = Universe::run(
            p,
            SimConfig::default().with_vendor(VendorProfile::intel_like()),
            move |env| {
                let w = &env.world;
                let layout = Layout::new(n, p as u64);
                let data = gen_input(&layout, w.rank() as u64, 12, Dist::Uniform);
                w.barrier().unwrap();
                let t0 = env.now();
                if use_rbc {
                    jquick_sort(&RbcBackend, w, data, n, &JQuickConfig::default()).unwrap();
                } else {
                    jquick_sort(&MpiBackend, w, data, n, &JQuickConfig::default()).unwrap();
                }
                env.now() - t0
            },
        );
        res.per_rank.into_iter().max().unwrap()
    };
    let rbc = time_with(true);
    let mpi = time_with(false);
    // At p=32 only ~5 levels of creation cost separate the two; the full
    // Fig. 8 gap appears at larger p (see the bench harness). 1.3x here.
    assert!(
        mpi.as_nanos() * 10 > 13 * rbc.as_nanos(),
        "RBC should win at n/p=1: rbc={rbc} mpi={mpi}"
    );
}

#[test]
fn stats_report_expected_structure() {
    let stats = run_sort(
        RbcBackend,
        16,
        320,
        JQuickConfig::default(),
        Dist::Uniform,
        VendorProfile::neutral(),
        21,
    );
    let total_base: usize = stats.iter().map(|s| s.base_1 + s.base_2).sum();
    assert!(total_base > 0, "base cases must occur");
    let max_level = stats.iter().map(|s| s.max_level).max().unwrap();
    // O(log p) levels with overwhelming probability: generous bound.
    assert!(max_level <= 40, "suspiciously deep recursion: {max_level}");
    // RBC backend still *creates* (O(1)) communicators; count them.
    assert!(stats.iter().any(|s| s.comm_creations > 0));
}

#[test]
fn all_equal_input_settles() {
    let stats = run_sort(
        RbcBackend,
        8,
        80,
        JQuickConfig::default(),
        Dist::AllEqual,
        VendorProfile::neutral(),
        1,
    );
    // The all-equal escalation must have fired somewhere.
    let settled: usize = stats.iter().map(|s| s.settled_equal).sum();
    assert!(settled > 0, "expected equal-settle path, stats: {stats:?}");
}

#[test]
fn input_size_mismatch_is_reported() {
    let res = Universe::run_default(4, |env| {
        let w = &env.world;
        // Everyone passes one element too few.
        let data = vec![1.0f64; 9];
        jquick_sort(&RbcBackend, w, data, 64, &JQuickConfig::default()).err()
    });
    for e in res.per_rank {
        assert!(matches!(e, Some(mpisim::MpiError::Usage(_))));
    }
}

#[test]
fn all_workload_distributions_sort_correctly() {
    use jquick::workloads;
    for dist in workloads::Dist::ALL {
        let (p, n) = (10usize, 120u64);
        let res = Universe::run(p, SimConfig::default().with_seed(7), move |env| {
            let w = &env.world;
            let layout = Layout::new(n, p as u64);
            let data = workloads::generate(&layout, w.rank() as u64, 3, dist);
            let fp = fingerprint(&data);
            let (out, _) = jquick_sort(&RbcBackend, w, data, n, &JQuickConfig::default()).unwrap();
            verify_sorted(w, &out, fp, layout.cap(w.rank() as u64) as usize).unwrap()
        });
        for rep in res.per_rank {
            assert!(rep.all_ok(), "{dist:?}: {rep:?}");
        }
    }
}

#[test]
fn jquick_is_deterministic_given_seed() {
    let run = || {
        let (p, n) = (9usize, 90u64);
        let res = Universe::run(p, SimConfig::default().with_seed(42), move |env| {
            let w = &env.world;
            let layout = Layout::new(n, p as u64);
            let data =
                jquick::generate_workload(&layout, w.rank() as u64, 11, jquick::Dist::Uniform);
            let (out, stats) =
                jquick_sort(&RbcBackend, w, data, n, &JQuickConfig::default()).unwrap();
            (out, stats.max_level, stats.comm_creations)
        });
        res.per_rank
    };
    let a = run();
    let b = run();
    // Outputs and structural stats are identical run to run (pivots come
    // from the seeded per-rank RNG streams).
    assert_eq!(a, b);
}

#[test]
fn moderate_scale_smoke() {
    // A p=64 sort with a few thousand elements, verifying end to end —
    // closer to the benchmark regime than the unit sizes above.
    let (p, n) = (64usize, 64 * 512u64);
    let res = Universe::run(p, SimConfig::default(), move |env| {
        let w = &env.world;
        let layout = Layout::new(n, p as u64);
        let data = jquick::generate_workload(&layout, w.rank() as u64, 77, jquick::Dist::Skewed);
        let fp = fingerprint(&data);
        let (out, stats) = jquick_sort(&RbcBackend, w, data, n, &JQuickConfig::default()).unwrap();
        let rep = verify_sorted(w, &out, fp, layout.cap(w.rank() as u64) as usize).unwrap();
        assert!(rep.all_ok());
        stats.max_level
    });
    let depth = res.per_rank.into_iter().max().unwrap();
    // O(log p) with overwhelming probability; log2(64) = 6, allow slack.
    assert!(depth <= 20, "depth {depth}");
}
