//! RBC communicators (paper §V-A).
//!
//! An RBC communicator stores an MPI communicator `M`, the rank `f` of its
//! first process in `M`, and the rank `l` of its last process (plus an
//! optional stride, footnote 2). It is created **locally, in constant time,
//! without communication** — no collective call, no synchronization, no
//! context-ID agreement. All communication happens in `M`'s context; tags
//! disambiguate (see [`mpisim::tags`] and the overlap rules in §V-A).

use std::sync::Arc;

use mpisim::msg::SrcFilter;
use mpisim::{Comm, ContextId, CostScale, MpiError, Result, Time, Transport};

/// Constant local cost of creating/splitting an RBC communicator.
const CREATE_COST: Time = Time(50);

/// A range-based communicator: processes `f, f+s, ..., l` of a base MPI
/// communicator. Cloning shares the handle (cheap).
#[derive(Clone)]
pub struct RbcComm {
    base: Comm,
    /// First member's rank in the base communicator.
    first: usize,
    /// Last member's rank in the base communicator.
    last: usize,
    /// Stride in base ranks (1 = contiguous).
    stride: usize,
}

impl RbcComm {
    /// `rbc::Create_RBC_Comm`: an RBC communicator containing **all**
    /// processes of an MPI communicator. Local, O(1), no communication.
    pub fn create(base: &Comm) -> RbcComm {
        base.proc_state().charge(CREATE_COST);
        RbcComm {
            base: base.clone(),
            first: 0,
            last: base.size() - 1,
            stride: 1,
        }
    }

    /// `rbc::Split_RBC_Comm`: a new RBC communicator containing processes
    /// with ranks `f..=l` of this RBC communicator. Local, O(1), no
    /// communication; only the members need to call it. Errors if the
    /// calling process is not inside the new range.
    pub fn split(&self, f: usize, l: usize) -> Result<RbcComm> {
        self.split_strided(f, l, 1)
    }

    /// Strided split (paper footnote 2): members are ranks
    /// `f, f+s, ..., f + s·⌊(l−f)/s⌋` of this communicator.
    pub fn split_strided(&self, f: usize, l: usize, s: usize) -> Result<RbcComm> {
        if s == 0 || f > l || l >= self.size() {
            return Err(MpiError::Usage(format!(
                "invalid RBC range {f}..={l} step {s} of size {}",
                self.size()
            )));
        }
        let len = (l - f) / s + 1;
        let new = RbcComm {
            base: self.base.clone(),
            first: self.first + self.stride * f,
            last: self.first + self.stride * (f + s * (len - 1)),
            stride: self.stride * s,
        };
        if new.base_member_rank(self.base.rank()).is_none() {
            return Err(MpiError::Usage(format!(
                "process with base rank {} is not in the new RBC range",
                self.base.rank()
            )));
        }
        self.base.proc_state().charge(CREATE_COST);
        Ok(new)
    }

    /// The base MPI communicator this range lives in.
    pub fn base(&self) -> &Comm {
        &self.base
    }

    /// `(first, last, stride)` in base ranks.
    pub fn range(&self) -> (usize, usize, usize) {
        (self.first, self.last, self.stride)
    }

    /// RBC rank of a base-communicator rank, if a member
    /// ("The RBC rank of a process with MPI rank m in M is m − f", §V-A).
    fn base_member_rank(&self, base_rank: usize) -> Option<usize> {
        if base_rank < self.first || base_rank > self.last {
            return None;
        }
        let off = base_rank - self.first;
        off.is_multiple_of(self.stride).then(|| off / self.stride)
    }

    /// Base-communicator rank of an RBC rank.
    pub fn to_base_rank(&self, rbc_rank: usize) -> usize {
        self.first + self.stride * rbc_rank
    }

    /// Number of processes shared with another RBC communicator on the same
    /// base. Per §V-A: if at most one process is shared, communication on
    /// the two communicators never interferes and tags are unrestricted.
    pub fn overlap_count(&self, other: &RbcComm) -> usize {
        (0..self.size())
            .filter(|&r| other.base_member_rank(self.to_base_rank(r)).is_some())
            .count()
    }
}

impl Transport for RbcComm {
    fn rank(&self) -> usize {
        self.base_member_rank(self.base.rank())
            .expect("holder of an RbcComm handle is a member")
    }

    fn size(&self) -> usize {
        (self.last - self.first) / self.stride + 1
    }

    fn state(&self) -> &Arc<mpisim::proc::ProcState> {
        self.base.proc_state()
    }

    fn ctx(&self) -> ContextId {
        // The whole point: RBC has no context of its own; it reuses M's.
        self.base.ctx()
    }

    fn translate(&self, rank: usize) -> usize {
        self.base.translate(self.to_base_rank(rank))
    }

    fn rank_of_global(&self, global: usize) -> Option<usize> {
        self.base
            .rank_of_global(global)
            .and_then(|br| self.base_member_rank(br))
    }

    fn any_source_filter(&self) -> SrcFilter {
        // §V-C: on a wildcard we may only accept messages whose source is a
        // member of THIS range — other traffic in the shared context must
        // be left alone.
        let me = self.clone();
        SrcFilter::Filter(Arc::new(move |global| me.rank_of_global(global).is_some()))
    }

    fn cost_scale(&self) -> CostScale {
        // RBC composes collectives from raw point-to-point calls: no vendor
        // collective overhead ever applies.
        CostScale::NEUTRAL
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpisim::Universe;

    #[test]
    fn create_covers_whole_world() {
        let res = Universe::run_default(4, |env| {
            let c = RbcComm::create(&env.world);
            (c.rank(), c.size(), c.range())
        });
        for (r, (rr, s, range)) in res.per_rank.into_iter().enumerate() {
            assert_eq!(rr, r);
            assert_eq!(s, 4);
            assert_eq!(range, (0, 3, 1));
        }
    }

    #[test]
    fn split_is_local_and_constant_time() {
        let res = Universe::run_default(8, |env| {
            let world = RbcComm::create(&env.world);
            let t0 = env.now();
            let half = if world.rank() < 4 {
                world.split(0, 3).unwrap()
            } else {
                world.split(4, 7).unwrap()
            };
            let dt = env.now() - t0;
            (half.rank(), half.size(), dt)
        });
        for (r, (hr, hs, dt)) in res.per_rank.into_iter().enumerate() {
            assert_eq!(hs, 4);
            assert_eq!(hr, r % 4);
            // Far below a single message startup (α = 10 µs): no
            // communication happened.
            assert!(dt.as_nanos() < 1_000, "split cost {dt}");
        }
    }

    #[test]
    fn nested_splits_compose() {
        let res = Universe::run_default(8, |env| {
            let world = RbcComm::create(&env.world);
            let r = world.rank();
            let half = world.split((r / 4) * 4, (r / 4) * 4 + 3).unwrap();
            let quarter = half
                .split((half.rank() / 2) * 2, (half.rank() / 2) * 2 + 1)
                .unwrap();
            (quarter.rank(), quarter.size(), quarter.range())
        });
        assert_eq!(res.per_rank[5], (1, 2, (4, 5, 1)));
        assert_eq!(res.per_rank[6], (0, 2, (6, 7, 1)));
    }

    #[test]
    fn strided_split_ranks() {
        let res = Universe::run_default(8, |env| {
            let world = RbcComm::create(&env.world);
            if world.rank().is_multiple_of(2) {
                let evens = world.split_strided(0, 7, 2).unwrap(); // 0,2,4,6
                Some((evens.rank(), evens.size(), evens.to_base_rank(evens.rank())))
            } else {
                None
            }
        });
        assert_eq!(res.per_rank[4], Some((2, 4, 4)));
        assert_eq!(res.per_rank[0], Some((0, 4, 0)));
        assert_eq!(res.per_rank[1], None);
    }

    #[test]
    fn strided_of_strided() {
        let res = Universe::run_default(16, |env| {
            let world = RbcComm::create(&env.world);
            if !world.rank().is_multiple_of(2) {
                return None;
            }
            let evens = world.split_strided(0, 15, 2).unwrap(); // 0,2,...,14
            if !evens.rank().is_multiple_of(2) {
                return None;
            }
            let fourth = evens.split_strided(0, 7, 2).unwrap(); // base 0,4,8,12
            Some((fourth.rank(), fourth.range()))
        });
        assert_eq!(res.per_rank[8], Some((2, (0, 12, 4))));
        assert_eq!(res.per_rank[2], None);
    }

    #[test]
    fn non_member_split_rejected() {
        let res = Universe::run_default(4, |env| {
            let world = RbcComm::create(&env.world);
            if world.rank() == 3 {
                world.split(0, 1).err()
            } else {
                None
            }
        });
        assert!(matches!(res.per_rank[3], Some(MpiError::Usage(_))));
    }

    #[test]
    fn overlap_counting() {
        let res = Universe::run_default(7, |env| {
            let world = RbcComm::create(&env.world);
            if world.rank() != 3 {
                return 0;
            }
            let left = world.split(0, 3).unwrap();
            let right = world.split(3, 6).unwrap();
            left.overlap_count(&right)
        });
        assert_eq!(res.per_rank[3], 1);
    }

    #[test]
    fn rank_translation_roundtrip() {
        let res = Universe::run_default(12, |env| {
            let world = RbcComm::create(&env.world);
            if world.rank() < 2 || world.rank() > 10 || !(world.rank() - 2).is_multiple_of(3) {
                return true;
            }
            let sub = world.split_strided(2, 10, 3).unwrap(); // 2,5,8
            (0..sub.size()).all(|r| {
                let g = sub.translate(r);
                sub.rank_of_global(g) == Some(r)
            })
        });
        assert!(res.per_rank.iter().all(|&ok| ok));
    }
}
