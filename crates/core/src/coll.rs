//! Blocking collective operations on RBC communicators (paper §V-D).
//!
//! "Collective operations are implemented with point-to-point communication
//! provided by the RBC library. ... All implementations exploit binomial
//! tree based communication patterns." Each blocking collective uses a
//! distinct exclusive reserved tag; as long as user code avoids reserved
//! tags, blocking collectives never interfere with other communication.

use mpisim::{coll, tags, Datum, Result};

use crate::comm::RbcComm;

impl RbcComm {
    /// `rbc::Bcast` — binomial broadcast from `root`.
    pub fn bcast<T: Datum>(&self, data: &mut Vec<T>, root: usize) -> Result<()> {
        coll::bcast(self, data, root, tags::BCAST)
    }

    /// `rbc::Reduce` — binomial reduction to `root` (`Some` on root only).
    pub fn reduce<T: Datum>(
        &self,
        data: &[T],
        root: usize,
        op: impl Fn(&T, &T) -> T,
    ) -> Result<Option<Vec<T>>> {
        coll::reduce(self, data, root, tags::REDUCE, op)
    }

    /// `rbc::Scan` — inclusive prefix.
    pub fn scan<T: Datum>(&self, data: &[T], op: impl Fn(&T, &T) -> T) -> Result<Vec<T>> {
        coll::scan(self, data, tags::SCAN, op)
    }

    /// Exclusive prefix (`None` on rank 0). Extension in the spirit of
    /// §V-D's "easy to extend our library by additional collective
    /// operations"; Janus Quicksort's data assignment needs it.
    pub fn exscan<T: Datum>(&self, data: &[T], op: impl Fn(&T, &T) -> T) -> Result<Option<Vec<T>>> {
        coll::exscan(self, data, tags::EXSCAN, op)
    }

    /// `rbc::Gather` — equal-count gather to `root`.
    pub fn gather<T: Datum>(&self, data: Vec<T>, root: usize) -> Result<Option<Vec<T>>> {
        coll::gather(self, data, root, tags::GATHER)
    }

    /// `rbc::Gatherv` — variable-count gather to `root`, per-source.
    pub fn gatherv<T: Datum>(&self, data: Vec<T>, root: usize) -> Result<Option<Vec<Vec<T>>>> {
        coll::gatherv(self, data, root, tags::GATHERV)
    }

    /// `rbc::Barrier` — dissemination barrier.
    pub fn barrier(&self) -> Result<()> {
        coll::barrier(self, tags::BARRIER)
    }

    /// Maybe-async twin of [`RbcComm::barrier`]: identical rounds and
    /// tags, but suspends instead of blocking so it can run inside a
    /// poll-mode rank body (`Backend::Poll`).
    pub async fn barrier_async(&self) -> Result<()> {
        coll::barrier_async(self, tags::BARRIER).await
    }

    /// All-reduce (extension; reduce + bcast).
    pub fn allreduce<T: Datum>(&self, data: &[T], op: impl Fn(&T, &T) -> T) -> Result<Vec<T>> {
        coll::allreduce(self, data, tags::ALLREDUCE, op)
    }

    /// One-item all-gather (extension).
    pub fn allgather1<T: Datum>(&self, item: T) -> Result<Vec<T>> {
        coll::allgather1(self, item, tags::ALLGATHER)
    }

    /// Scatter of equal blocks from `root` (extension).
    pub fn scatter<T: Datum>(&self, data: Option<Vec<T>>, root: usize) -> Result<Vec<T>> {
        coll::scatter(self, data, root, tags::SCATTER)
    }

    /// Scatter of variable blocks from `root` (extension).
    pub fn scatterv<T: Datum>(&self, blocks: Option<Vec<Vec<T>>>, root: usize) -> Result<Vec<T>> {
        coll::scatterv(self, blocks, root, tags::SCATTERV)
    }

    /// Variable-count all-gather (extension).
    pub fn allgatherv<T: Datum>(&self, data: Vec<T>) -> Result<Vec<Vec<T>>> {
        coll::allgatherv(self, data, tags::ALLGATHERV)
    }

    /// Personalized all-to-all (extension; used by the sample sort
    /// baseline).
    pub fn alltoallv<T: Datum>(&self, send: Vec<Vec<T>>) -> Result<Vec<Vec<T>>> {
        coll::alltoallv(self, send, tags::ALLTOALL)
    }

    /// Size-adaptive broadcast (extension per §V-D: additional collectives
    /// "for large input sizes"): uses the binomial tree for small payloads
    /// and a scatter + ring-allgather full-bandwidth algorithm above the
    /// α/β crossover.
    pub fn bcast_auto<T: Datum>(&self, data: &mut Vec<T>, root: usize) -> Result<()> {
        mpisim::coll_large::bcast_auto(self, data, root, tags::BCAST)
    }

    /// Size-adaptive reduction (extension; reduce-scatter + gather above
    /// the crossover).
    pub fn reduce_auto<T: Datum>(
        &self,
        data: &[T],
        root: usize,
        op: impl Fn(&T, &T) -> T,
    ) -> Result<Option<Vec<T>>> {
        mpisim::coll_large::reduce_auto(self, data, root, tags::REDUCE, op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpisim::{ops, Time, Transport, Universe};

    #[test]
    fn collectives_scoped_to_range() {
        // Collectives on a half must only involve the half's processes.
        let res = Universe::run_default(8, |env| {
            let world = RbcComm::create(&env.world);
            let r = world.rank();
            let half = if r < 4 {
                world.split(0, 3).unwrap()
            } else {
                world.split(4, 7).unwrap()
            };
            let sum = half.allreduce(&[r as u64], ops::sum::<u64>()).unwrap()[0];
            let mut top = vec![if half.rank() == 0 { r as u64 } else { 0 }];
            half.bcast(&mut top, 0).unwrap();
            (sum, top[0])
        });
        for (r, (sum, top)) in res.per_rank.into_iter().enumerate() {
            if r < 4 {
                assert_eq!((sum, top), (1 + 2 + 3, 0));
            } else {
                assert_eq!((sum, top), (4 + 5 + 6 + 7, 4));
            }
        }
    }

    #[test]
    fn scan_on_subrange_uses_rbc_ranks() {
        let res = Universe::run_default(6, |env| {
            let world = RbcComm::create(&env.world);
            if world.rank() < 2 {
                return None;
            }
            let sub = world.split(2, 5).unwrap();
            Some(sub.scan(&[1u64], ops::sum::<u64>()).unwrap()[0])
        });
        assert_eq!(
            res.per_rank,
            vec![None, None, Some(1), Some(2), Some(3), Some(4)]
        );
    }

    #[test]
    fn gatherv_on_strided_range() {
        let res = Universe::run_default(8, |env| {
            let world = RbcComm::create(&env.world);
            if !world.rank().is_multiple_of(2) {
                return None;
            }
            let evens = world.split_strided(0, 7, 2).unwrap();
            let mine = vec![world.rank() as u64; evens.rank()];
            evens.gatherv(mine, 0).unwrap()
        });
        let at_root = res.per_rank[0].as_ref().unwrap();
        assert_eq!(at_root[0], Vec::<u64>::new());
        assert_eq!(at_root[1], vec![2]);
        assert_eq!(at_root[2], vec![4, 4]);
        assert_eq!(at_root[3], vec![6, 6, 6]);
    }

    #[test]
    fn two_halves_run_collectives_concurrently_without_interference() {
        // Same reserved tags, same base context, disjoint ranges: matching
        // by source keeps them apart (overlap = 0 here).
        let res = Universe::run_default(8, |env| {
            let world = RbcComm::create(&env.world);
            let r = world.rank();
            let half = if r < 4 {
                world.split(0, 3).unwrap()
            } else {
                world.split(4, 7).unwrap()
            };
            // Desynchronise the halves in virtual time.
            if r >= 4 {
                env.state().charge(Time::from_millis(5));
            }
            half.allreduce(&[r as u64], ops::sum::<u64>()).unwrap()[0]
        });
        assert_eq!(res.per_rank[..4], [6, 6, 6, 6]);
        assert_eq!(res.per_rank[4..], [22, 22, 22, 22]);
    }

    #[test]
    fn reduce_root_only() {
        let res = Universe::run_default(5, |env| {
            let world = RbcComm::create(&env.world);
            world
                .reduce(&[1u64, world.rank() as u64], 2, ops::sum::<u64>())
                .unwrap()
        });
        assert_eq!(res.per_rank[2], Some(vec![5, 1 + 2 + 3 + 4]));
        assert_eq!(res.per_rank[0], None);
    }

    #[test]
    fn barrier_on_subrange_does_not_touch_outsiders() {
        let res = Universe::run_default(6, |env| {
            let world = RbcComm::create(&env.world);
            if world.rank() < 3 {
                let sub = world.split(0, 2).unwrap();
                sub.barrier().unwrap();
            }
            // Outsiders do nothing and must not hang or receive anything.
            env.now()
        });
        // Ranks 3..5 never communicated: their clocks show only the O(1)
        // local communicator-creation cost, far below one message startup.
        for t in &res.per_rank[3..] {
            assert!(t.as_nanos() < 1_000, "outsider clock {t}");
        }
    }
}
