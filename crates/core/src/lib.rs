//! # RBC — RangeBasedComm
//!
//! Reimplementation of the RBC library from *"Lightweight MPI Communicators
//! with Applications to Perfectly Balanced Quicksort"* (Axtmann, Wiebigke,
//! Sanders; IPDPS 2018), on top of the [`mpisim`] substrate.
//!
//! The key feature: **RBC communicators are created in constant time
//! without communication** (§V). An RBC communicator `R` is derived from an
//! MPI communicator `M` and contains the processes with ranks `f..=l` in
//! `M` (optionally strided). RBC provides (non)blocking point-to-point and
//! (non)blocking collective operations in `R`'s scope, implemented with
//! binomial trees over MPI point-to-point calls.
//!
//! Because RBC cannot allocate its own MPI context ID, communicators that
//! overlap on **more than one** process must use distinct tags for
//! simultaneous operations; communicators overlapping on at most one
//! process (e.g. the two groups of a janus process in JQuick) never
//! interfere (§V-A).
//!
//! ## Quickstart (paper Fig. 1)
//!
//! ```
//! use mpisim::{Universe, Transport};
//! use rbc::RbcComm;
//!
//! let result = Universe::run_default(4, |env| {
//!     let world = rbc::create_rbc_comm(&env.world);
//!     let (r, s) = (rbc::comm_rank(&world), rbc::comm_size(&world));
//!     let (f, l) = if r < s / 2 { (0, s / 2 - 1) } else { (s / 2, s - 1) };
//!     // Local operation. No synchronization.
//!     let range = rbc::split_rbc_comm(&world, f, l).unwrap();
//!     let payload = (range.rank() == 0).then(|| vec![f as u64]);
//!     let mut req = range.ibcast(payload, 0, None).unwrap();
//!     let mut flag = false;
//!     while !flag {
//!         // Do something else.
//!         flag = rbc::test(&mut req).unwrap();
//!     }
//!     req.into_data().unwrap()[0] as usize
//! });
//! assert_eq!(result.per_rank, vec![0, 0, 2, 2]);
//! ```

#![warn(missing_docs)]

pub mod coll;
pub mod comm;
pub mod nbc;

pub use comm::RbcComm;
pub use nbc::{
    testall, waitall, Progress, Request, RBC_IALLREDUCE_TAG, RBC_IBARRIER_TAG, RBC_IBCAST_TAG,
    RBC_IEXSCAN_TAG, RBC_IGATHERV_TAG, RBC_IGATHER_TAG, RBC_IREDUCE_TAG, RBC_ISCAN_TAG,
};

use mpisim::{Comm, Result, Transport};

/// `rbc::Create_RBC_Comm` — RBC communicator over all processes of an MPI
/// communicator. Local, O(1).
pub fn create_rbc_comm(mpi: &Comm) -> RbcComm {
    RbcComm::create(mpi)
}

/// `rbc::Split_RBC_Comm` — RBC communicator over ranks `f..=l` of an
/// existing RBC communicator. Local, O(1).
pub fn split_rbc_comm(comm: &RbcComm, f: usize, l: usize) -> Result<RbcComm> {
    comm.split(f, l)
}

/// `rbc::Comm_rank`.
pub fn comm_rank(comm: &RbcComm) -> usize {
    comm.rank()
}

/// `rbc::Comm_size`.
pub fn comm_size(comm: &RbcComm) -> usize {
    comm.size()
}

/// `rbc::Test` — drive a nonblocking operation one step.
pub fn test(req: &mut impl Progress) -> Result<bool> {
    req.poll()
}

/// `rbc::Wait` — repeatedly test until complete.
pub fn wait(req: &mut impl Progress) -> Result<()> {
    let mut stall = mpisim::nbcoll::stall_guard(req.proc_state());
    loop {
        if req.poll()? {
            return Ok(());
        }
        if stall.stalled() {
            return Err(match req.proc_state() {
                Some(s) => mpisim::MpiError::Timeout {
                    rank: s.global_rank,
                    waited_for: "rbc::wait".into(),
                    virtual_now: s.now(),
                    blame: s.stall_blame(),
                },
                None => mpisim::MpiError::Timeout {
                    rank: usize::MAX,
                    waited_for: "rbc::wait".into(),
                    virtual_now: mpisim::Time::ZERO,
                    blame: mpisim::RoundBlame::default(),
                },
            });
        }
        mpisim::yield_now();
    }
}
