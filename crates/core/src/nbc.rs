//! Nonblocking operations on RBC communicators (paper §V-B/§V-D).
//!
//! Every nonblocking collective has a default exclusive tag
//! (`RBC_IBCAST_TAG` style); "alternatively, the user can specify an own
//! user-defined tag", which is what avoids interference between
//! simultaneously executed nonblocking collectives on the same RBC
//! communicator and between overlapping RBC communicators sharing more than
//! one process. A reserved tag *space* would not suffice for the latter
//! (§V-D) — hence explicit per-operation tags.
//!
//! The request machinery (`rbc::Request` smart pointer, `Test`, `Wait`,
//! `Testall`, `Waitall`) is shared with the substrate's state machines.

use mpisim::nbcoll::{self, Iallreduce, Ibarrier, Ibcast, Igather, Igatherv, Ireduce, Iscan};
use mpisim::{tags, Datum, Result, Src, Tag, Transport};

use crate::comm::RbcComm;

// Default tags, re-exported under their paper names.

/// Default tag of [`RbcComm::ibcast`] (the paper's `RBC_IBCAST_TAG`).
pub const RBC_IBCAST_TAG: Tag = tags::IBCAST;
/// Default tag of [`RbcComm::ireduce`].
pub const RBC_IREDUCE_TAG: Tag = tags::IREDUCE;
/// Default tag of [`RbcComm::iscan`].
pub const RBC_ISCAN_TAG: Tag = tags::ISCAN;
/// Default tag for exclusive-prefix use of [`RbcComm::iscan`].
pub const RBC_IEXSCAN_TAG: Tag = tags::IEXSCAN;
/// Default tag of [`RbcComm::igather`].
pub const RBC_IGATHER_TAG: Tag = tags::IGATHER;
/// Default tag of [`RbcComm::igatherv`] (payload stream uses +1).
pub const RBC_IGATHERV_TAG: Tag = tags::IGATHERV;
/// Default tag of [`RbcComm::ibarrier`].
pub const RBC_IBARRIER_TAG: Tag = tags::IBARRIER;
/// Default tag of [`RbcComm::iallreduce`] (broadcast phase uses +1).
pub const RBC_IALLREDUCE_TAG: Tag = tags::IALLREDUCE;

impl RbcComm {
    /// `rbc::Ibcast` — nonblocking broadcast. Root passes `Some(data)`.
    pub fn ibcast<T: Datum>(
        &self,
        data: Option<Vec<T>>,
        root: usize,
        tag: Option<Tag>,
    ) -> Result<Ibcast<T, RbcComm>> {
        nbcoll::ibcast(self, data, root, tag.unwrap_or(RBC_IBCAST_TAG))
    }

    /// `rbc::Ireduce` — nonblocking reduction to `root`.
    pub fn ireduce<T: Datum, F>(
        &self,
        data: &[T],
        root: usize,
        op: F,
        tag: Option<Tag>,
    ) -> Result<Ireduce<T, RbcComm, F>>
    where
        F: Fn(&T, &T) -> T + Send,
    {
        nbcoll::ireduce(self, data, root, tag.unwrap_or(RBC_IREDUCE_TAG), op)
    }

    /// `rbc::Iscan` — nonblocking prefix; the machine exposes both the
    /// inclusive and the exclusive prefix on completion.
    pub fn iscan<T: Datum, F>(
        &self,
        data: &[T],
        op: F,
        tag: Option<Tag>,
    ) -> Result<Iscan<T, RbcComm, F>>
    where
        F: Fn(&T, &T) -> T + Send,
    {
        nbcoll::iscan(self, data, tag.unwrap_or(RBC_ISCAN_TAG), op)
    }

    /// `rbc::Igather` — nonblocking equal-count gather.
    pub fn igather<T: Datum>(
        &self,
        data: Vec<T>,
        root: usize,
        tag: Option<Tag>,
    ) -> Result<Igather<T, RbcComm>> {
        nbcoll::igather(self, data, root, tag.unwrap_or(RBC_IGATHER_TAG))
    }

    /// `rbc::Igatherv` — nonblocking variable-count gather.
    pub fn igatherv<T: Datum>(
        &self,
        data: Vec<T>,
        root: usize,
        tag: Option<Tag>,
    ) -> Result<Igatherv<T, RbcComm>> {
        nbcoll::igatherv(self, data, root, tag.unwrap_or(RBC_IGATHERV_TAG))
    }

    /// `rbc::Ibarrier` — nonblocking barrier.
    pub fn ibarrier(&self, tag: Option<Tag>) -> Result<Ibarrier<RbcComm>> {
        nbcoll::ibarrier(self, tag.unwrap_or(RBC_IBARRIER_TAG))
    }

    /// Nonblocking all-reduce (extension).
    pub fn iallreduce<T: Datum, F>(
        &self,
        data: &[T],
        op: F,
        tag: Option<Tag>,
    ) -> Result<Iallreduce<T, RbcComm, F>>
    where
        F: Fn(&T, &T) -> T + Send,
    {
        nbcoll::iallreduce(self, data, tag.unwrap_or(RBC_IALLREDUCE_TAG), op)
    }

    /// `rbc::Isend` — nonblocking send. Buffered: the request is complete
    /// immediately, but is returned for API fidelity.
    pub fn isend<T: Datum>(&self, data: Vec<T>, dest: usize, tag: Tag) -> Result<()> {
        debug_assert!(!tags::is_reserved(tag), "user tags must not be reserved");
        self.send_vec(data, dest, tag)
    }

    /// `rbc::Irecv` — nonblocking receive (specific source or
    /// `Src::Any` = `MPI_ANY_SOURCE`, range-filtered per §V-C).
    pub fn irecv<T: Datum>(&self, src: Src, tag: Tag) -> mpisim::transport::RecvReq<T, RbcComm> {
        <Self as mpisim::Transport>::irecv(self, src, tag)
    }
}

// Blanket re-exports so user code can write `rbc::wait`, `rbc::waitall`...
pub use mpisim::nbcoll::{testall, waitall, Progress, Request};

#[cfg(test)]
mod tests {
    use super::*;
    use mpisim::{ops, Transport, Universe};

    /// Figure 1 of the paper, verbatim: nonblocking broadcast from rank 0
    /// to ranks 0..s/2−1 and from rank s/2 to ranks s/2..s−1, both RBC
    /// communicators created locally without synchronization, progressed
    /// with `Test` in a work loop.
    #[test]
    fn paper_fig1_two_half_broadcasts() {
        let s = 8;
        let res = Universe::run_default(s, |env| {
            let world = RbcComm::create(&env.world);
            let r = world.rank();
            let s = world.size();
            let (f, l) = if r < s / 2 {
                (0, s / 2 - 1)
            } else {
                (s / 2, s - 1)
            };
            let range = world.split(f, l).unwrap();
            let payload = (range.rank() == 0).then(|| vec![f as u64]);
            let mut req = range.ibcast(payload, 0, None).unwrap();
            let mut flag = false;
            while !flag {
                // Do something else.
                flag = req.poll().unwrap();
                std::thread::yield_now();
            }
            req.into_data().unwrap()[0]
        });
        assert_eq!(res.per_rank, vec![0, 0, 0, 0, 4, 4, 4, 4]);
    }

    /// §V-A overlap rule: two RBC communicators sharing exactly ONE process
    /// (a janus) may use the same default tags without interference.
    #[test]
    fn janus_overlap_one_process_no_tag_restriction() {
        let res = Universe::run_default(7, |env| {
            let world = RbcComm::create(&env.world);
            let r = world.rank();
            let mut out = Vec::new();
            let left = (r <= 3).then(|| world.split(0, 3).unwrap());
            let right = (r >= 3).then(|| world.split(3, 6).unwrap());
            // Start both reductions with the SAME default tag and progress
            // them simultaneously (what a janus process does).
            let mut a = left
                .as_ref()
                .map(|c| c.iallreduce(&[1u64], ops::sum::<u64>(), None).unwrap());
            let mut b = right
                .as_ref()
                .map(|c| c.iallreduce(&[100u64], ops::sum::<u64>(), None).unwrap());
            loop {
                let da = a.as_mut().is_none_or(|x| x.poll().unwrap());
                let db = b.as_mut().is_none_or(|x| x.poll().unwrap());
                if da && db {
                    break;
                }
                std::thread::yield_now();
            }
            if let Some(x) = a {
                out.push(x.result().unwrap()[0]);
            }
            if let Some(x) = b {
                out.push(x.result().unwrap()[0]);
            }
            out
        });
        assert_eq!(res.per_rank[0], vec![4]);
        assert_eq!(res.per_rank[3], vec![4, 400]);
        assert_eq!(res.per_rank[6], vec![400]);
    }

    /// Overlap on MORE than one process requires distinct user tags
    /// (§V-A). With distinct tags both operations complete correctly.
    #[test]
    fn heavy_overlap_needs_user_tags() {
        let res = Universe::run_default(6, |env| {
            let world = RbcComm::create(&env.world);
            let r = world.rank();
            let a_comm = (r <= 3).then(|| world.split(0, 3).unwrap());
            let b_comm = (r >= 2).then(|| world.split(2, 5).unwrap());
            let mut a = a_comm
                .as_ref()
                .map(|c| c.iallreduce(&[1u64], ops::sum::<u64>(), Some(900)).unwrap());
            let mut b = b_comm.as_ref().map(|c| {
                c.iallreduce(&[10u64], ops::sum::<u64>(), Some(902))
                    .unwrap()
            });
            loop {
                let da = a.as_mut().is_none_or(|x| x.poll().unwrap());
                let db = b.as_mut().is_none_or(|x| x.poll().unwrap());
                if da && db {
                    break;
                }
                std::thread::yield_now();
            }
            (
                a.map(|x| x.result().unwrap()[0]),
                b.map(|x| x.result().unwrap()[0]),
            )
        });
        assert_eq!(res.per_rank[2], (Some(4), Some(40)));
        assert_eq!(res.per_rank[0], (Some(4), None));
        assert_eq!(res.per_rank[5], (None, Some(40)));
    }

    #[test]
    fn any_source_on_range_ignores_outside_traffic() {
        let res = Universe::run_default(4, |env| {
            let world = RbcComm::create(&env.world);
            let r = world.rank();
            match r {
                0 => {
                    // Rank 0 is OUTSIDE the range; sends to rank 1 with the
                    // same tag on the same base context.
                    world.send(&[666u64], 1, 5).unwrap();
                    0
                }
                1 => {
                    let range = world.split(1, 3).unwrap();
                    // Wildcard receive on the range: must match rank 2's
                    // message, never rank 0's.
                    let (v, st) = range.recv::<u64>(Src::Any, 5).unwrap();
                    assert_eq!(st.source, 1); // rank 2 in world = rank 1 in range

                    // The outside message is still there on the base comm.
                    let (w, _) = world.recv::<u64>(Src::Rank(0), 5).unwrap();
                    assert_eq!(w, vec![666]);
                    v[0]
                }
                2 => {
                    let range = world.split(1, 3).unwrap();
                    // Give rank 0's message time to land first (physically).
                    std::thread::sleep(std::time::Duration::from_millis(20));
                    range.send(&[42u64], 0, 5).unwrap();
                    0
                }
                _ => {
                    world.split(1, 3).unwrap();
                    0
                }
            }
        });
        assert_eq!(res.per_rank[1], 42);
    }

    #[test]
    fn iprobe_wildcard_filters_membership() {
        let res = Universe::run_default(3, |env| {
            let world = RbcComm::create(&env.world);
            match world.rank() {
                0 => {
                    world.send(&[1u64], 2, 9).unwrap();
                    (false, false)
                }
                1 => {
                    world.send(&[2u64], 2, 9).unwrap();
                    (false, false)
                }
                _ => {
                    let sub = world.split(1, 2).unwrap();
                    // Wait until both messages are physically present.
                    std::thread::sleep(std::time::Duration::from_millis(30));
                    // Probe on the subrange: only rank 1's message counts.
                    let hit = sub.iprobe(Src::Any, 9).unwrap();
                    let filtered = matches!(hit, Some(st) if st.source == 0);
                    // Probe on the world sees rank 0's too.
                    let world_sees = world.iprobe(Src::Any, 9).unwrap().is_some();
                    (filtered, world_sees)
                }
            }
        });
        assert_eq!(res.per_rank[2], (true, true));
    }

    #[test]
    fn request_smart_pointer_erases_types() {
        let res = Universe::run_default(4, |env| {
            let world = RbcComm::create(&env.world);
            let mut reqs = vec![
                Request::new(world.ibarrier(Some(700)).unwrap()),
                Request::new(
                    world
                        .iallreduce(&[world.rank() as u64], ops::sum::<u64>(), Some(702))
                        .unwrap(),
                ),
            ];
            waitall(&mut reqs).unwrap();
            true
        });
        assert!(res.per_rank.iter().all(|&x| x));
    }
}
