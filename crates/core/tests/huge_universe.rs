//! Large-universe stress tests: the paper's 2^15-process regime, which
//! only the cooperative scheduler backend can reach (the thread backend
//! tops out around a few hundred OS threads).
//!
//! Every rank performs an RBC `split` (O(1), local, no communication) into
//! its half/quarter of the world, then an allreduce round-trip inside the
//! sub-communicator and a barrier over the world — exercising communicator
//! creation, binomial-tree collectives, and the mailbox wake-up path at
//! scale.

use mpisim::{SimConfig, Transport, Universe};
use rbc::RbcComm;

/// RBC split + allreduce round-trip at `p` ranks under the cooperative
/// backend. Returns nothing; asserts correctness on every rank.
fn split_allreduce_roundtrip(p: usize) {
    let res = Universe::run(p, SimConfig::cooperative(), move |env| {
        let world = RbcComm::create(&env.world);
        let r = world.rank();
        // Split into two halves — local, no messages.
        let half = p / 2;
        let (f, l) = if r < half {
            (0, half - 1)
        } else {
            (half, p - 1)
        };
        let sub = world.split(f, l).unwrap();
        // Allreduce inside my half: the sum of ones counts the half's size.
        let ones = sub.allreduce(&[1u64], |a, b| a + b).unwrap()[0];
        // Round-trip: reduce the half's rank sum to the half root, then
        // broadcast it back out.
        let rank_sum = sub
            .reduce(&[sub.rank() as u64], 0, |a, b| a + b)
            .unwrap()
            .map(|v| v[0]);
        let mut echoed = vec![rank_sum.unwrap_or(0)];
        sub.bcast(&mut echoed, 0).unwrap();
        // World-wide barrier over the RBC world communicator.
        world.barrier().unwrap();
        (ones, echoed[0])
    });
    let half = p / 2;
    let lo_size = half as u64;
    let hi_size = (p - half) as u64;
    let lo_sum = lo_size * (lo_size - 1) / 2;
    let hi_sum = hi_size * (hi_size - 1) / 2;
    for (r, &(ones, sum)) in res.per_rank.iter().enumerate() {
        if r < half {
            assert_eq!(ones, lo_size, "rank {r}: wrong half size");
            assert_eq!(sum, lo_sum, "rank {r}: wrong echoed rank sum");
        } else {
            assert_eq!(ones, hi_size, "rank {r}: wrong half size");
            assert_eq!(sum, hi_sum, "rank {r}: wrong echoed rank sum");
        }
    }
}

#[test]
fn huge_universe_4096() {
    split_allreduce_roundtrip(4096);
}

/// The paper's full 2^15 scale: ~3 s release / ~7 s debug on one core —
/// 32,768 cooperative fibers, zero per-rank OS threads.
#[test]
fn huge_universe_32768() {
    split_allreduce_roundtrip(32768);
}

/// Recursive halving down to singleton communicators at p = 4096: the
/// JQuick-style splitting schedule, all O(1) local splits.
#[test]
fn huge_universe_recursive_split_4096() {
    let p = 4096usize;
    let res = Universe::run(p, SimConfig::cooperative(), move |env| {
        let world = RbcComm::create(&env.world);
        let mut c = world;
        let mut depth = 0u32;
        while c.size() > 1 {
            let half = c.size() / 2;
            let (f, l) = if c.rank() < half {
                (0, half - 1)
            } else {
                (half, c.size() - 1)
            };
            c = c.split(f, l).unwrap();
            depth += 1;
        }
        depth
    });
    // 4096 = 2^12: every rank bottoms out after exactly 12 halvings.
    assert!(res.per_rank.iter().all(|&d| d == 12), "uneven split depth");
}
