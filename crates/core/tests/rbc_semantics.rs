//! Deeper RBC semantics: strided communicators end to end, large-input
//! collectives through RBC, recursion chains, and the exact §V-A overlap
//! contract.

use mpisim::{ops, MpiError, SimConfig, Src, Time, Transport, Universe};
use rbc::RbcComm;

#[test]
fn collectives_on_strided_communicators() {
    // Evens and odds as two strided RBC comms over one base context,
    // running the same collectives simultaneously with default tags —
    // overlap is zero, so nothing may interfere.
    let res = Universe::run_default(10, |env| {
        let world = RbcComm::create(&env.world);
        let r = world.rank();
        let mine = world.split_strided(r % 2, 9 - (1 - r % 2), 2).unwrap();
        assert_eq!(mine.size(), 5);
        let sum = mine.allreduce(&[r as u64], ops::sum::<u64>()).unwrap()[0];
        let sc = mine.scan(&[1u64], ops::sum::<u64>()).unwrap()[0];
        (sum, sc)
    });
    for (r, (sum, sc)) in res.per_rank.into_iter().enumerate() {
        let expected: u64 = (0..10u64).filter(|x| x % 2 == r as u64 % 2).sum();
        assert_eq!(sum, expected, "rank {r}");
        assert_eq!(sc as usize, r / 2 + 1);
    }
}

#[test]
fn deep_recursive_split_chain() {
    // log2(p) nested RBC splits — the quicksort pattern — must stay O(1)
    // per level in virtual time and produce correct leaf communicators.
    let p = 64usize;
    let res = Universe::run_default(p, move |env| {
        let mut comm = RbcComm::create(&env.world);
        let t0 = env.now();
        let mut levels = 0;
        while comm.size() > 1 {
            let half = comm.size() / 2;
            let r = comm.rank();
            comm = if r < half {
                comm.split(0, half - 1).unwrap()
            } else {
                comm.split(half, comm.size() - 1).unwrap()
            };
            levels += 1;
        }
        (levels, env.now() - t0, comm.range())
    });
    for (r, (levels, dt, range)) in res.per_rank.into_iter().enumerate() {
        assert_eq!(levels, 6);
        assert!(dt < Time::from_micros(1), "6 splits cost {dt}");
        assert_eq!(range, (r, r, 1), "leaf covers exactly me");
    }
}

#[test]
fn large_input_collectives_via_rbc() {
    let res = Universe::run_default(8, |env| {
        let world = RbcComm::create(&env.world);
        let n = 1 << 14; // 128 KiB of u64: above the crossover at p=8? Use auto.
        let mut data = if world.rank() == 0 {
            (0..n as u64).collect()
        } else {
            Vec::new()
        };
        world.bcast_auto(&mut data, 0).unwrap();
        let red = world
            .reduce_auto(&vec![1u64; 64], 0, ops::sum::<u64>())
            .unwrap();
        (data.len(), data[n - 1], red.map(|v| v[0]))
    });
    for (r, (len, last, red)) in res.per_rank.into_iter().enumerate() {
        assert_eq!(len, 1 << 14);
        assert_eq!(last, (1 << 14) - 1);
        if r == 0 {
            assert_eq!(red, Some(8));
        }
    }
}

#[test]
fn point_to_point_any_source_across_nested_ranges() {
    // ANY_SOURCE filtering must respect the *innermost* range even when
    // outer ranges share the context and tag.
    let res = Universe::run_default(8, |env| {
        let world = RbcComm::create(&env.world);
        let r = world.rank();
        match r {
            0 => {
                // Outside the inner range; same ctx, same tag.
                world.send(&[1000u64], 3, 4).unwrap();
                0
            }
            2 | 4 => {
                let outer = world.split(1, 6).unwrap();
                // Let rank 0's decoy land first.
                std::thread::sleep(std::time::Duration::from_millis(15));
                let inner = outer.split(1, 4).unwrap(); // world ranks 2..=5
                inner.send(&[r as u64], 1, 4).unwrap(); // to world rank 3
                0
            }
            3 => {
                let outer = world.split(1, 6).unwrap();
                let inner = outer.split(1, 4).unwrap();
                // Two wildcard receives on the inner range: sources must be
                // 2 and 4 (inner ranks 0 and 2), never world-rank 0.
                let (a, sa) = inner.recv::<u64>(Src::Any, 4).unwrap();
                let (b, sb) = inner.recv::<u64>(Src::Any, 4).unwrap();
                // The decoy is still waiting on the base communicator.
                let (decoy, _) = world.recv::<u64>(Src::Rank(0), 4).unwrap();
                assert_eq!(decoy, vec![1000]);
                let mut got = vec![(sa.source, a[0]), (sb.source, b[0])];
                got.sort_unstable();
                assert_eq!(got, vec![(0, 2), (2, 4)]);
                1
            }
            1 | 5 | 6 => {
                // Members of the outer range but not the inner one: the
                // inner split is a Usage error for them, harmlessly.
                let outer = world.split(1, 6).unwrap();
                assert!(outer.split(1, 4).is_err() || (2..=5).contains(&r));
                0
            }
            _ => 0, // rank 7: not in the outer range at all
        }
    });
    assert_eq!(res.per_rank[3], 1);
}

#[test]
fn probe_then_recv_consistency_on_wildcards() {
    let res = Universe::run_default(4, |env| {
        let world = RbcComm::create(&env.world);
        match world.rank() {
            1 => {
                world.send(&[7u64, 8, 9], 0, 2).unwrap();
                None
            }
            0 => {
                // Probe (blocking) then receive exactly what was probed —
                // the paper's Recv-on-wildcard implementation (§V-C).
                let st = world.probe(Src::Any, 2).unwrap();
                let (v, st2) = world.recv::<u64>(Src::Rank(st.source), 2).unwrap();
                assert_eq!(st.count, 3);
                assert_eq!(st.source, st2.source);
                Some(v)
            }
            _ => None,
        }
    });
    assert_eq!(res.per_rank[0], Some(vec![7, 8, 9]));
}

#[test]
fn same_range_twice_shares_traffic_context_carefully() {
    // Two RBC comms over the SAME range are the same communication
    // context: simultaneous collectives need distinct tags (overlap > 1).
    let res = Universe::run_default(4, |env| {
        let world = RbcComm::create(&env.world);
        let a = world.split(0, 3).unwrap();
        let b = world.split(0, 3).unwrap();
        let ra = a.iallreduce(&[1u64], ops::sum::<u64>(), Some(500)).unwrap();
        let rb = b.iallreduce(&[2u64], ops::sum::<u64>(), Some(502)).unwrap();
        let x = ra.wait_result().unwrap()[0];
        let y = rb.wait_result().unwrap()[0];
        (x, y)
    });
    for (x, y) in res.per_rank {
        assert_eq!((x, y), (4, 8));
    }
}

#[test]
fn errors_are_usage_not_hangs_for_foreign_process() {
    // A process outside the range cannot construct the sub-communicator.
    let res = Universe::run(
        4,
        SimConfig::default().with_timeout(std::time::Duration::from_millis(60)),
        |env| {
            let world = RbcComm::create(&env.world);
            if world.rank() == 0 {
                world.split(1, 3).err()
            } else {
                world.split(1, 3).ok();
                None
            }
        },
    );
    assert!(matches!(res.per_rank[0], Some(MpiError::Usage(_))));
}

#[test]
fn rbc_comm_handles_are_cheap_and_clonable() {
    let res = Universe::run_default(4, |env| {
        let world = RbcComm::create(&env.world);
        let clones: Vec<RbcComm> = (0..1000).map(|_| world.clone()).collect();
        // All clones address the same context; use one to talk.
        if world.rank() == 0 {
            clones[999].send(&[1u64], 1, 3).unwrap();
        } else if world.rank() == 1 {
            let (v, _) = clones[500].recv::<u64>(Src::Rank(0), 3).unwrap();
            assert_eq!(v, vec![1]);
        }
        env.now()
    });
    // 1000 clones must not show up in virtual time.
    assert!(res.per_rank[2] < Time::from_micros(1));
}

#[test]
fn rbc_creation_generates_zero_messages() {
    // "Creates range-based communicators in constant time WITHOUT
    // COMMUNICATION" — checked against the router's traffic counters.
    let res = Universe::run_default(16, |env| {
        let world = RbcComm::create(&env.world);
        let r = world.rank();
        let mut c = world;
        while c.size() > 1 {
            let half = c.size() / 2;
            c = if c.rank() < half {
                c.split(0, half - 1).unwrap()
            } else {
                c.split(half, c.size() - 1).unwrap()
            };
        }
        r
    });
    assert_eq!(
        res.traffic.messages, 0,
        "RBC created log2(16) communicators per rank with zero messages"
    );
    assert_eq!(res.traffic.bytes, 0);
}
