//! One module per table/figure of the paper's evaluation (§VIII).
//!
//! Each module exposes `run() -> Vec<Table>`, prints the result tables, and
//! writes CSVs under `results/`. The per-experiment index lives in
//! DESIGN.md; expected-vs-measured shapes are recorded in EXPERIMENTS.md.

pub mod ablations;
pub mod faults;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
#[cfg(all(unix, any(target_arch = "x86_64", target_arch = "aarch64")))]
pub mod fleet;
pub mod largep;
pub mod sorters;
pub mod tracevol;

/// Scaled-down stand-ins for the paper's 2^15 cores (see DESIGN.md §1).
pub mod scale {
    /// Process count for per-element sweeps (paper: 2^15).
    pub fn p_elems() -> usize {
        if crate::quick_mode() {
            32
        } else {
            128
        }
    }

    /// Largest exponent of the n/p sweeps (paper: 2^18 / 2^20).
    pub fn max_elem_exp() -> u32 {
        if crate::quick_mode() {
            8
        } else {
            16
        }
    }

    /// Largest exponent of process-count sweeps (paper: 2^15).
    pub fn max_proc_exp() -> u32 {
        if crate::quick_mode() {
            7
        } else {
            10
        }
    }
}
