//! Fig. 8: running times of Janus Quicksort with RBC communicators vs
//! native MPI communicators, both vendor personalities
//! (paper: 2^15 cores, n/p = 2^0..2^20, 64-bit floats, alternating
//! schedule; 7 repetitions for n/p ≤ 2^16, 3 above).
//!
//! Expected shape: JQuick/RBC beats JQuick/native-MPI by orders of
//! magnitude for small and moderate n/p (communicator creation dominates);
//! the curves converge as n/p grows; the Intel-like runs fluctuate at large
//! n/p (p2p jitter), affecting both RBC-on-Intel and native Intel.

use jquick::{jquick_sort, workloads, Backend, JQuickConfig, Layout, MpiBackend, RbcBackend};
use mpisim::{SimConfig, Time, Transport, VendorProfile};

use crate::figs::scale;
use crate::{measure, ms, pow2_sweep, Table};

fn gen(layout: &Layout, rank: u64, seed: u64) -> Vec<f64> {
    workloads::generate(layout, rank, seed, workloads::Dist::Uniform)
}

/// Mean JQuick sort makespan on `p` ranks with `n_per` elements each.
pub fn sort_time<B: Backend>(backend: B, p: usize, n_per: u64, vendor: VendorProfile) -> Time {
    // Paper protocol: 7 reps for moderate sizes, 3 for large.
    let reps = if crate::quick_mode() {
        2
    } else if n_per <= 1 << 10 {
        7
    } else {
        3
    };
    let n = n_per * p as u64;
    measure(
        p,
        SimConfig::default().with_vendor(vendor),
        reps,
        move |env, rep| {
            let w = &env.world;
            let layout = Layout::new(n, p as u64);
            let data = gen(&layout, w.rank() as u64, rep as u64 * 7919 + 1);
            w.barrier().unwrap();
            let t0 = env.now();
            let (_out, _stats) =
                jquick_sort(&backend, w, data, n, &JQuickConfig::default()).unwrap();
            env.now() - t0
        },
    )
}

/// Regenerate the Fig. 8 tables and write their CSVs.
pub fn run() -> Vec<Table> {
    let p = scale::p_elems();
    let mut t = Table::new(
        &format!("Fig 8 — JQuick on {p} cores: RBC vs native MPI communicators"),
        "n/p",
        &["RBC (Intel p2p)", "RBC (IBM p2p)", "Intel MPI", "IBM MPI"],
    );
    for n_per in pow2_sweep(0, scale::max_elem_exp()) {
        t.push(
            n_per,
            vec![
                ms(sort_time(RbcBackend, p, n_per, VendorProfile::intel_like())),
                ms(sort_time(RbcBackend, p, n_per, VendorProfile::ibm_like())),
                ms(sort_time(MpiBackend, p, n_per, VendorProfile::intel_like())),
                ms(sort_time(MpiBackend, p, n_per, VendorProfile::ibm_like())),
            ],
        );
    }
    t.print();
    t.write_csv("fig8_jquick");
    vec![t]
}
