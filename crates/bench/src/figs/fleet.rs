//! Fleet-mode throughput (`fleet`): universes per second over one pool.
//!
//! Drives a fixed scenario mix — small JQuick sorts, wildcard-recv
//! collective storms, and a crash-faulted storm whose survivors report
//! `RoundBlame` — through a [`Fleet`] at admission windows of 1, 4 and
//! 16, and reports **universes per second** (wall clock: this measures
//! the host multiplexing, not the model). The table is written in unit
//! `per_s`, which the bench gate treats as higher-is-better: a
//! throughput *drop* beyond the tolerance fails CI.
//!
//! The figure also emits the fleet-vs-solo oracle artefacts CI
//! byte-diffs: `results/fleet_oracle_solo.txt` (a traced storm run solo
//! through [`Universe::run`] at 1 worker) and
//! `results/fleet_oracle_fleet.txt` (the *same* universe co-scheduled in
//! an 8-worker fleet among different-seed decoys). Per DESIGN.md §11 the
//! two must be byte-identical — the run panics if they are not, and CI
//! `cmp`s the files as a second witness.
//!
//! Every universe's program returns a deterministic `u64` fingerprint
//! of what it observed (received payloads and sources, sorted output
//! bits, error text). The run asserts the fingerprint multiset is
//! identical at every admission window before reporting any throughput:
//! a fast-but-wrong fleet must never produce a table.

use std::time::Instant;

use jquick::{jquick_sort, workloads, JQuickConfig, Layout, RbcBackend};
use mpisim::{nbcoll, ops, FaultPlan, Fleet, ProcEnv, SimConfig, Src, Time, Transport, Universe};

use crate::{quick_mode, write_bench_json, Table};

/// One admitted universe: its rank count, config, and program.
type Scenario = (usize, SimConfig, Box<dyn Fn(ProcEnv) -> u64 + Send + Sync>);

const SORT_P: usize = 12;
const SORT_NPER: u64 = 64;
const STORM_P: usize = 24;
const STORM_PER: usize = 2;
const FANOUT_OFFSETS: [usize; 4] = [1, 4, 9, 16];

/// FNV-1a — a stable fingerprint accumulator.
fn fnv(acc: u64, x: u64) -> u64 {
    (acc ^ x).wrapping_mul(0x100_0000_01b3)
}

/// A small perfectly-balanced quicksort over skewed input; fingerprints
/// the locally held slice of the sorted output.
fn sort_prog(seed: u64) -> Box<dyn Fn(ProcEnv) -> u64 + Send + Sync> {
    Box::new(move |env| {
        let w = &env.world;
        let p = w.size() as u64;
        let n = SORT_NPER * p;
        let layout = Layout::new(n, p);
        let data = workloads::generate(&layout, w.rank() as u64, seed, workloads::Dist::Skewed);
        let (out, _) = jquick_sort(&RbcBackend, w, data, n, &JQuickConfig::default()).unwrap();
        out.iter()
            .fold(0xcbf2_9ce4_8422_2325, |a, x| fnv(a, x.to_bits()))
    })
}

/// The wildcard-recv collective storm (same shape as the fault-scenario
/// tests); fingerprints every matched `(source, value)` pair plus the
/// nonblocking all-reduce result — or the full error display on faulted
/// runs, so `RoundBlame` text lands in the fingerprint too.
fn storm_prog(p: usize, per: usize) -> Box<dyn Fn(ProcEnv) -> u64 + Send + Sync> {
    Box::new(move |env| {
        let w = &env.world;
        let r = w.rank();
        let body = || -> mpisim::Result<u64> {
            for i in 0..per {
                for (k, off) in FANOUT_OFFSETS.iter().enumerate() {
                    let tag = (k % 3) as u64;
                    w.send(&[(r * 1000 + i * 10 + k) as u64], (r + off) % p, tag)?;
                }
            }
            let coll = nbcoll::iallreduce(w, &[r as u64 + 1], 300, ops::sum::<u64>())?;
            let mut acc = 0xcbf2_9ce4_8422_2325u64;
            for t in 0..3u64 {
                let n = per
                    * (0..FANOUT_OFFSETS.len())
                        .filter(|&k| (k % 3) as u64 == t)
                        .count();
                for _ in 0..n {
                    let (v, st) = w.recv::<u64>(Src::Any, t)?;
                    acc = fnv(fnv(acc, st.source as u64), v[0]);
                }
            }
            Ok(fnv(acc, coll.wait_result()?[0]))
        };
        match body() {
            Ok(x) => x,
            Err(e) => format!("{e}").bytes().fold(0, |a, b| fnv(a, b as u64)),
        }
    })
}

/// The fixed mix, `batches` times over: four sorts, two clean storms, a
/// jittered storm, and a crash-faulted storm per batch.
fn mix(batches: usize) -> Vec<Scenario> {
    let mut out: Vec<Scenario> = Vec::new();
    for b in 0..batches as u64 {
        for s in 0..4 {
            out.push((
                SORT_P,
                SimConfig::cooperative().with_seed(b * 100 + s),
                sort_prog(b * 7 + s),
            ));
        }
        for s in 0..2 {
            out.push((
                STORM_P,
                SimConfig::cooperative().with_seed(b * 100 + 50 + s),
                storm_prog(STORM_P, STORM_PER),
            ));
        }
        out.push((
            STORM_P,
            SimConfig::cooperative()
                .with_seed(b * 100 + 60)
                .with_faults(
                    FaultPlan::default()
                        .with_perturb_seed(b + 1)
                        .with_slowdown(0.25, 4.0)
                        .with_jitter(Time::from_micros(5)),
                ),
            storm_prog(STORM_P, STORM_PER),
        ));
        out.push((
            STORM_P,
            SimConfig::cooperative()
                .with_seed(b * 100 + 70)
                .with_faults(
                    FaultPlan::default()
                        .with_perturb_seed(b + 1)
                        .with_crash((3 + 5 * b as usize) % STORM_P, Time::ZERO),
                ),
            storm_prog(STORM_P, STORM_PER),
        ));
    }
    out
}

/// Run the whole mix through one fleet; returns the per-universe
/// fingerprints (in submission order) and the wall-clock seconds.
fn run_mix(workers: usize, inflight: usize, batches: usize) -> (Vec<u64>, f64) {
    let fleet = Fleet::new(workers, inflight);
    let t0 = Instant::now();
    let handles: Vec<_> = mix(batches)
        .into_iter()
        .map(|(p, cfg, prog)| fleet.submit(p, cfg, prog))
        .collect();
    let prints: Vec<u64> = handles
        .into_iter()
        .map(|h| h.join().per_rank.into_iter().fold(0, fnv))
        .collect();
    drop(fleet);
    (prints, t0.elapsed().as_secs_f64())
}

/// Render a traced storm run as the oracle text artefact: per-rank
/// outcome and final virtual clock, then the full event trace.
fn oracle_text(res: &mpisim::SimResult<u64>) -> String {
    let mut out = String::new();
    for (r, (fp, clock)) in res.per_rank.iter().zip(&res.clocks).enumerate() {
        out.push_str(&format!(
            "rank {r}: fp={fp:016x} clock={}ns\n",
            clock.as_nanos()
        ));
    }
    out.push_str(&res.trace.as_ref().expect("probe runs traced").to_text());
    out
}

/// The probe universe CI byte-diffs: a traced clean storm.
fn probe_cfg() -> SimConfig {
    SimConfig::cooperative()
        .with_seed(0x0F1EE7)
        .with_workers(1)
        .with_trace(true)
}

/// Write both oracle artefacts and assert they are identical.
fn oracle_probe() {
    let solo = Universe::run(STORM_P, probe_cfg(), storm_prog(STORM_P, STORM_PER));
    let solo_text = oracle_text(&solo);

    // The same universe inside a busy 8-worker fleet: decoys ahead of
    // and behind the probe, all with different seeds and fault plans.
    let fleet = Fleet::new(8, 4);
    let mut decoys = Vec::new();
    for (i, (p, cfg, prog)) in mix(1).into_iter().enumerate() {
        if i == 4 {
            decoys.push(fleet.submit(STORM_P, probe_cfg(), storm_prog(STORM_P, STORM_PER)));
        }
        decoys.push(fleet.submit(p, cfg.with_trace(false), prog));
    }
    let probe = decoys.remove(4);
    let fleet_text = oracle_text(&probe.join());
    for d in decoys {
        d.join();
    }
    drop(fleet);

    crate::write_artifact("results/fleet_oracle_solo.txt", &solo_text);
    crate::write_artifact("results/fleet_oracle_fleet.txt", &fleet_text);
    eprintln!("fleet: wrote results/fleet_oracle_{{solo,fleet}}.txt");
    assert_eq!(
        solo_text, fleet_text,
        "fleet-co-scheduled universe diverged from its solo run (DESIGN.md §11)"
    );
}

/// Regenerate the fleet throughput table, the oracle artefacts, and
/// `results/BENCH_fleet.json`.
pub fn run() -> Vec<Table> {
    let workers = SimConfig::cooperative().coop_workers;
    // Enough universes that each timed run is well past scheduler and
    // allocator warm-up: the gate diffs these wall-clock rates at ±30 %.
    let batches = if quick_mode() { 8 } else { 32 };
    let t_start = Instant::now();

    oracle_probe();

    let mut tbl = Table::with_unit(
        "Fleet throughput — mixed load (4 sorts + 4 storms per batch) over one worker pool",
        "inflight",
        &["universes_per_s"],
        "per_s",
    );
    let mut reference: Option<Vec<u64>> = None;
    for inflight in [1usize, 4, 16] {
        // Best-of-3: throughput is gated at ±30 %, and the *max* over
        // repetitions is far less noisy than any single wall-clock run.
        let mut best = 0.0f64;
        for _ in 0..3 {
            let (prints, secs) = run_mix(workers, inflight, batches);
            match &reference {
                None => reference = Some(prints),
                Some(r) => assert_eq!(
                    r, &prints,
                    "universe fingerprints changed with the admission window"
                ),
            }
            best = best.max((batches * 8) as f64 / secs);
        }
        eprintln!("fleet: inflight={inflight}: {best:.2} universes/s (best of 3)");
        tbl.push(inflight as u64, vec![best]);
    }
    tbl.print();
    tbl.write_csv("fleet_throughput");
    let tables = vec![tbl];
    write_bench_json("fleet", &tables, t_start.elapsed().as_secs_f64(), workers);
    tables
}
