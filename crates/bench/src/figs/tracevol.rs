//! Per-collective communication-volume figure (`tracevol`).
//!
//! Runs each blocking collective in isolation on the cooperative backend
//! and reports the deterministic per-class counters from
//! [`mpisim::MetricsSnapshot`]: total messages, the maximum number of
//! messages any single rank sends, and total payload bytes. Every value is
//! a **pure function of `(program, p)`** — the tables are written in unit
//! `count`, which the bench gate diffs at exact equality.
//!
//! The figure also *checks* the paper's volume bounds in-process (§V-D:
//! the collectives are binomial-tree / dissemination shaped):
//!
//! * binomial bcast / reduce move exactly `p − 1` messages, gatherv
//!   `2(p − 1)` (metadata + payload per tree edge);
//! * the dissemination barrier moves exactly `p · ⌈log₂ p⌉`;
//! * Hillis–Steele scan moves `Σ_{d=2^k < p} (p − d)`;
//! * **no rank sends more than `⌈log₂ p⌉` messages per tree collective**
//!   (`2⌈log₂ p⌉` for the two-message-per-edge gatherv framing) — the
//!   O(log p) per-rank bound that keeps every collective latency
//!   logarithmic.
//!
//! A violated bound panics the figure run: a wrong count here means a
//! collective's communication structure changed, which no timing table
//! would catch as crisply.

use mpisim::{OpClass, SimConfig, Universe};

use crate::{pow2_sweep, write_bench_json, Table};

/// `⌈log₂ p⌉` (0 for p = 1).
fn ceil_log2(p: u64) -> u64 {
    64 - (p.max(1) - 1).leading_zeros() as u64
}

/// One collective under measurement: how to run it on a rank, which
/// [`OpClass`] its volume lands in, and its exact expected message totals.
struct CollOp {
    name: &'static str,
    class: OpClass,
    body: fn(&mpisim::ProcEnv),
    /// Exact total messages the collective moves at `p` ranks.
    expected_total: fn(u64) -> u64,
    /// Upper bound on messages sent by any single rank at `p` ranks.
    max_rank_bound: fn(u64) -> u64,
}

fn ops() -> Vec<CollOp> {
    vec![
        CollOp {
            name: "bcast",
            class: OpClass::Bcast,
            body: |env| {
                let mut x = vec![env.rank() as u64];
                env.world.bcast(&mut x, 0).unwrap();
            },
            expected_total: |p| p - 1,
            max_rank_bound: ceil_log2,
        },
        CollOp {
            name: "reduce",
            class: OpClass::Reduce,
            body: |env| {
                env.world.reduce(&[1u64], 0, |a, b| a + b).unwrap();
            },
            expected_total: |p| p - 1,
            // Every non-root sends exactly one partial to its parent.
            max_rank_bound: |_| 1,
        },
        CollOp {
            name: "scan",
            class: OpClass::Scan,
            body: |env| {
                env.world.scan(&[1u64], |a, b| a + b).unwrap();
            },
            expected_total: |p| {
                let mut total = 0;
                let mut d = 1;
                while d < p {
                    total += p - d; // ranks r with r + d < p send in round d
                    d <<= 1;
                }
                total
            },
            max_rank_bound: ceil_log2,
        },
        CollOp {
            name: "gatherv",
            class: OpClass::Gather,
            body: |env| {
                env.world.gatherv(vec![env.rank() as u64], 0).unwrap();
            },
            // Two messages per tree edge: metadata then payload.
            expected_total: |p| 2 * (p - 1),
            max_rank_bound: |_| 2,
        },
        CollOp {
            name: "barrier",
            class: OpClass::Barrier,
            body: |env| {
                env.world.barrier().unwrap();
            },
            expected_total: |p| p * ceil_log2(p),
            max_rank_bound: ceil_log2,
        },
    ]
}

/// Measured volume of one collective at `p` ranks:
/// `(total msgs, max msgs by any rank, total bytes)`.
fn volumes(p: usize, op: &CollOp) -> (u64, u64, u64) {
    let body = op.body;
    let res = Universe::run(p, SimConfig::cooperative(), move |env| body(&env));
    let c = op.class as usize;
    (
        res.metrics.class_msgs[c],
        res.metrics.class_max_rank_msgs[c],
        res.metrics.class_bytes[c],
    )
}

/// Regenerate the volume tables, check the exact totals and O(log p)
/// per-rank bounds, and write `results/BENCH_tracevol.json`.
pub fn run() -> Vec<Table> {
    let workers = SimConfig::cooperative().coop_workers;
    let t_start = std::time::Instant::now();
    let ops = ops();
    let names: Vec<&str> = ops.iter().map(|o| o.name).collect();
    let mut total = Table::with_unit(
        "Trace volumes — total messages per collective (deterministic, exact-gated)",
        "p",
        &names,
        "count",
    );
    let mut max_rank = Table::with_unit(
        "Trace volumes — max messages sent by any one rank (O(log p) bound)",
        "p",
        &names,
        "count",
    );
    let mut bytes = Table::with_unit(
        "Trace volumes — total payload bytes per collective",
        "p",
        &names,
        "count",
    );
    for p in pow2_sweep(6, 12) {
        let mut row_total = Vec::new();
        let mut row_max = Vec::new();
        let mut row_bytes = Vec::new();
        for op in &ops {
            let (msgs, per_rank, by) = volumes(p as usize, op);
            let want = (op.expected_total)(p);
            assert_eq!(
                msgs, want,
                "{} at p={p}: measured {msgs} total messages, model predicts {want}",
                op.name
            );
            let bound = (op.max_rank_bound)(p);
            assert!(
                per_rank <= bound,
                "{} at p={p}: a rank sent {per_rank} messages, O(log p) bound is {bound}",
                op.name
            );
            row_total.push(msgs as f64);
            row_max.push(per_rank as f64);
            row_bytes.push(by as f64);
        }
        total.push(p, row_total);
        max_rank.push(p, row_max);
        bytes.push(p, row_bytes);
        eprintln!("tracevol: finished p = {p} (all volume bounds hold)");
    }
    total.print();
    total.write_csv("tracevol_msgs");
    max_rank.print();
    max_rank.write_csv("tracevol_max_rank");
    bytes.print();
    bytes.write_csv("tracevol_bytes");
    let tables = vec![total, max_rank, bytes];
    write_bench_json(
        "tracevol",
        &tables,
        t_start.elapsed().as_secs_f64(),
        workers,
    );
    tables
}
