//! Fault-injection sweep: straggler degradation of the §IV sorters.
//!
//! The paper's evaluation assumes a quiet machine; this extension asks
//! what happens when it isn't. A seeded straggler distribution (25 % of
//! ranks slowed by a factor drawn from [1, F]) is injected through
//! `mpisim::faults`, and JQuick, multi-level sample sort, and single-level
//! sample sort are measured at F ∈ {1, 2, 4, 8} on skewed input. Two
//! observables per point: virtual makespan (stragglers gate the critical
//! path differently depending on how many rounds each algorithm runs) and
//! max/avg output imbalance (which must stay at 1.0 for JQuick — perfect
//! balance is by construction, not by luck, so faults cannot break it).
//! Everything is deterministic in the perturbation seed, so these numbers
//! are exactly reproducible and CI-gateable.

use jquick::{
    imbalance_factor, jquick_sort, multilevel, samplesort, workloads, JQuickConfig, Layout,
    RbcBackend, SampleSortCfg,
};
use mpisim::{FaultPlan, SimConfig, Time, Transport};
use rbc::RbcComm;

use crate::figs::scale;
use crate::{measure, ms, reps, write_bench_json, Table};

/// Fraction of ranks slowed in every faulted configuration.
const STRAGGLER_FRAC: f64 = 0.25;

/// One data point: virtual makespan and max/avg output imbalance of
/// `algo` under a straggler plan capped at `max_factor`.
fn faulted_sort_time(algo: &'static str, p: usize, n_per: u64, max_factor: f64) -> (Time, f64) {
    let n = n_per * p as u64;
    let plan = if max_factor > 1.0 {
        FaultPlan::default()
            .with_perturb_seed(1)
            .with_slowdown(STRAGGLER_FRAC, max_factor)
    } else {
        FaultPlan::default()
    };
    let cfg = SimConfig::cooperative().with_faults(plan);
    let imb = std::sync::Mutex::new(1.0f64);
    let t = {
        let imb = &imb;
        measure(p, cfg, reps(3), move |env, rep| {
            let w = &env.world;
            let layout = Layout::new(n, p as u64);
            let data = workloads::generate(
                &layout,
                w.rank() as u64,
                rep as u64 * 13 + 1,
                workloads::Dist::Skewed,
            );
            w.barrier().unwrap();
            let t0 = env.now();
            let out = match algo {
                "jquick" => {
                    jquick_sort(&RbcBackend, w, data, n, &JQuickConfig::default())
                        .unwrap()
                        .0
                }
                "samplesort" => {
                    samplesort::sample_sort(w, data, &SampleSortCfg::default()).unwrap()
                }
                _ => {
                    let world = RbcComm::create(w);
                    multilevel::multilevel_sample_sort(
                        &world,
                        data,
                        &multilevel::MultiLevelCfg::default(),
                    )
                    .unwrap()
                    .0
                }
            };
            let dt = env.now() - t0;
            let f = imbalance_factor(w, out.len()).unwrap();
            if w.rank() == 0 {
                let mut g = imb.lock().unwrap();
                *g = g.max(f);
            }
            dt
        })
    };
    (t, imb.into_inner().unwrap())
}

/// Regenerate the straggler-degradation tables, write their CSVs and
/// `results/BENCH_faults.json`.
pub fn run() -> Vec<Table> {
    let workers = SimConfig::cooperative().coop_workers;
    let t_start = std::time::Instant::now();
    let p = scale::p_elems();
    let n_per = 64u64;
    let algos = [
        ("jquick", "JQuick (RBC)"),
        ("multilevel", "Multi-level (k=4)"),
        ("samplesort", "Sample sort"),
    ];
    let names: Vec<&str> = algos.iter().map(|&(_, n)| n).collect();
    let mut t = Table::new(
        &format!(
            "Faults — makespan under {:.0}% stragglers on {p} cores (n/p = {n_per}, skewed)",
            STRAGGLER_FRAC * 100.0
        ),
        "max_slowdown",
        &names,
    );
    let mut imb = Table::with_unit(
        &format!(
            "Faults — max/avg output size under {:.0}% stragglers on {p} cores (n/p = {n_per})",
            STRAGGLER_FRAC * 100.0
        ),
        "max_slowdown",
        &names,
        "ratio",
    );
    let mut degr = Table::with_unit(
        &format!("Faults — makespan degradation vs fault-free on {p} cores (n/p = {n_per})"),
        "max_slowdown",
        &names,
        "ratio",
    );
    let mut clean: Vec<f64> = Vec::new();
    for max_factor in [1u64, 2, 4, 8] {
        let mut times = Vec::new();
        let mut imbs = Vec::new();
        for &(algo, _) in &algos {
            let (dt, f) = faulted_sort_time(algo, p, n_per, max_factor as f64);
            times.push(ms(dt));
            imbs.push(f);
        }
        if max_factor == 1 {
            clean = times.clone();
        }
        degr.push(
            max_factor,
            times.iter().zip(&clean).map(|(t, c)| t / c).collect(),
        );
        t.push(max_factor, times);
        imb.push(max_factor, imbs);
        eprintln!("faults: finished max_slowdown = {max_factor}");
    }
    t.print();
    t.write_csv("faults_time");
    imb.print();
    imb.write_csv("faults_imbalance");
    degr.print();
    degr.write_csv("faults_degradation");
    let tables = vec![t, imb, degr];
    write_bench_json("faults", &tables, t_start.elapsed().as_secs_f64(), workers);
    tables
}
