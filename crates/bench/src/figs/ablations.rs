//! Extension experiments beyond the paper's figures (DESIGN.md §3):
//!
//! * greedy vs staged message assignment inside JQuick (§VII discusses the
//!   deterministic assignment of \[20\] as the bounded-degree alternative);
//! * the §VI `MPI_Icomm_create_group` proposal: constant-time range case
//!   vs broadcast-based irregular case vs blocking `MPI_Comm_create_group`
//!   vs RBC;
//! * JQuick schedule ablation: alternating vs cascaded (§VIII-C reports
//!   native MPI collapsing under cascades while RBC is indifferent).

use jquick::{jquick_sort, AssignmentKind, JQuickConfig, Layout, MpiBackend, RbcBackend, Schedule};
use mpisim::icomm::icomm_create_group;
use mpisim::{Group, SimConfig, Transport, VendorProfile};
use rand::{rngs::StdRng, Rng, SeedableRng};
use rbc::RbcComm;

use crate::figs::scale;
use crate::{measure, ms, pow2_sweep, reps, Table};

/// Greedy vs staged exchange assignment (paper §VII-B choice).
pub fn assignment_ablation() -> Table {
    let p = if crate::quick_mode() { 16 } else { 64 };
    let mut t = Table::new(
        &format!("Ablation — greedy vs staged message assignment (JQuick/RBC, {p} cores)"),
        "n/p",
        &["Greedy", "Staged"],
    );
    for n_per in pow2_sweep(2, scale::max_elem_exp()) {
        let n = n_per * p as u64;
        let mut vals = Vec::new();
        for kind in [AssignmentKind::Greedy, AssignmentKind::Staged] {
            let cfg = JQuickConfig {
                assignment: kind,
                ..JQuickConfig::default()
            };
            let time = measure(p, SimConfig::default(), reps(5), move |env, rep| {
                let w = &env.world;
                let layout = Layout::new(n, p as u64);
                let mut rng = StdRng::seed_from_u64(rep as u64 * 31 + w.rank() as u64);
                let data: Vec<f64> = (0..layout.cap(w.rank() as u64))
                    .map(|_| rng.gen())
                    .collect();
                w.barrier().unwrap();
                let t0 = env.now();
                jquick_sort(&RbcBackend, w, data, n, &cfg).unwrap();
                env.now() - t0
            });
            vals.push(ms(time));
        }
        t.push(n_per, vals);
    }
    t.print();
    t.write_csv("ablation_assignment");
    t
}

/// Alternating vs cascaded janus splitting schedule (§VIII-C).
pub fn schedule_ablation() -> Table {
    // Cascade chains grow with the number of same-level groups, so this
    // ablation wants a larger p than the element sweeps.
    let p = if crate::quick_mode() { 16 } else { 256 };
    let n_per = 4u64;
    let n = n_per * p as u64;
    let mut t = Table::new(
        &format!("Ablation — cascaded vs alternating janus schedule (n/p = {n_per}, {p} cores)"),
        "variant (0=RBC,1=MPI)",
        &["Alternating", "Cascaded"],
    );
    for (idx, use_rbc) in [(0u64, true), (1u64, false)] {
        let mut vals = Vec::new();
        for schedule in [Schedule::Alternating, Schedule::Cascaded] {
            let cfg = JQuickConfig {
                schedule,
                ..JQuickConfig::default()
            };
            let time = measure(
                p,
                SimConfig::default().with_vendor(VendorProfile::intel_like()),
                reps(5),
                move |env, rep| {
                    let w = &env.world;
                    let layout = Layout::new(n, p as u64);
                    let mut rng = StdRng::seed_from_u64(rep as u64 * 131 + w.rank() as u64);
                    let data: Vec<f64> = (0..layout.cap(w.rank() as u64))
                        .map(|_| rng.gen())
                        .collect();
                    w.barrier().unwrap();
                    let t0 = env.now();
                    if use_rbc {
                        jquick_sort(&RbcBackend, w, data, n, &cfg).unwrap();
                    } else {
                        jquick_sort(&MpiBackend, w, data, n, &cfg).unwrap();
                    }
                    env.now() - t0
                },
            );
            vals.push(ms(time));
        }
        t.push(idx, vals);
    }
    t.print();
    t.write_csv("ablation_schedule");
    t
}

/// §VI nonblocking creation vs blocking creation vs RBC split.
pub fn icomm_ablation() -> Table {
    let mut t = Table::new(
        "Ablation — §VI MPI_Icomm_create_group vs blocking creation vs RBC",
        "p",
        &[
            "Comm_create_group (blocking)",
            "Icomm_create_group (range)",
            "Icomm_create_group (irregular)",
            "RBC split",
        ],
    );
    for p in pow2_sweep(4, scale::max_proc_exp()) {
        let p = p as usize;
        let vendor = VendorProfile::intel_like();
        let blocking = measure(
            p,
            SimConfig::default().with_vendor(vendor.clone()),
            reps(5),
            move |env, rep| {
                let w = &env.world;
                let g = if w.rank() < p / 2 {
                    Group::range(0, 1, p / 2)
                } else {
                    Group::range(p / 2, 1, p - p / 2)
                };
                w.barrier().unwrap();
                let t0 = env.now();
                let _ = w.create_group(&g, 400 + rep as u64).unwrap();
                env.now() - t0
            },
        );
        let range = measure(p, SimConfig::default(), reps(5), move |env, _| {
            let w = &env.world;
            let g = if w.rank() < p / 2 {
                Group::range(0, 1, p / 2)
            } else {
                Group::range(p / 2, 1, p - p / 2)
            };
            w.barrier().unwrap();
            let t0 = env.now();
            let req = icomm_create_group(w, &g, 5).unwrap();
            let _ = req.wait_comm().unwrap();
            env.now() - t0
        });
        let irregular = measure(p, SimConfig::default(), reps(5), move |env, rep| {
            let w = &env.world;
            // Odd/even interleave: NOT a contiguous range -> broadcast path.
            let which = w.rank() % 2;
            let ranks: Vec<usize> = (0..p).filter(|r| r % 2 == which).collect();
            // Strided groups are ranges; force irregularity by swapping two
            // members' order... from_ranks sorts nothing, so rotate instead.
            let mut ranks = ranks;
            ranks.rotate_left(1 + (rep % 2));
            let g = Group::from_ranks(ranks);
            w.barrier().unwrap();
            let t0 = env.now();
            let req = icomm_create_group(w, &g, 7 + which as u64).unwrap();
            let _ = req.wait_comm().unwrap();
            env.now() - t0
        });
        let rbc = measure(p, SimConfig::default(), reps(5), move |env, _| {
            let world = RbcComm::create(&env.world);
            let r = world.rank();
            let (f, l) = if r < p / 2 {
                (0, p / 2 - 1)
            } else {
                (p / 2, p - 1)
            };
            world.barrier().unwrap();
            let t0 = env.now();
            let _ = world.split(f, l).unwrap();
            env.now() - t0
        });
        t.push(
            p as u64,
            vec![ms(blocking), ms(range), ms(irregular), ms(rbc)],
        );
    }
    t.print();
    t.write_csv("ablation_icomm");
    t
}

/// Run all three ablations and write their CSVs.
pub fn run() -> Vec<Table> {
    vec![assignment_ablation(), schedule_ablation(), icomm_ablation()]
}
