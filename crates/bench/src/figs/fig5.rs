//! Fig. 5: time to split a communicator of p processes into two halves —
//! `MPI_Comm_create_group` vs `MPI_Comm_split` vs RBC, both vendor
//! profiles (paper: p = 2^10..2^15).
//!
//! Expected shape: RBC flat at ~0; Intel-like `create_group` grows linearly
//! with p (explicit group representation); `split` costs about twice
//! `create_group` at large p; IBM-like `create_group` is orders of
//! magnitude slower (leader-ring agreement).

use mpisim::{Group, SimConfig, Time, Transport, VendorProfile};
use rbc::RbcComm;

use crate::figs::scale;
use crate::{measure, ms, pow2_sweep, reps, Table};

fn halves_group(p: usize, rank: usize) -> Group {
    if rank < p / 2 {
        Group::range(0, 1, p / 2)
    } else {
        Group::range(p / 2, 1, p - p / 2)
    }
}

fn create_group_time(p: usize, vendor: VendorProfile) -> Time {
    measure(
        p,
        SimConfig::default().with_vendor(vendor),
        reps(5),
        move |env, rep| {
            let w = &env.world;
            let g = halves_group(p, w.rank());
            w.barrier().unwrap();
            let t0 = env.now();
            let _c = w.create_group(&g, 100 + rep as u64).unwrap();
            env.now() - t0
        },
    )
}

fn split_time(p: usize, vendor: VendorProfile) -> Time {
    measure(
        p,
        SimConfig::default().with_vendor(vendor),
        reps(5),
        move |env, _| {
            let w = &env.world;
            let color = u64::from(w.rank() >= p / 2);
            w.barrier().unwrap();
            let t0 = env.now();
            let _c = w.split(color, w.rank() as u64).unwrap();
            env.now() - t0
        },
    )
}

fn rbc_time(p: usize) -> Time {
    measure(p, SimConfig::default(), reps(5), move |env, _| {
        let world = RbcComm::create(&env.world);
        let r = world.rank();
        let (f, l) = if r < p / 2 {
            (0, p / 2 - 1)
        } else {
            (p / 2, p - 1)
        };
        world.barrier().unwrap();
        let t0 = env.now();
        let _c = world.split(f, l).unwrap();
        env.now() - t0
    })
}

/// Regenerate this figure's tables and write their CSVs.
pub fn run() -> Vec<Table> {
    let mut t = Table::new(
        "Fig 5 — splitting a communicator of p processes into halves",
        "p",
        &[
            "IBM Comm_create_group",
            "IBM Comm_split",
            "Intel Comm_create_group",
            "Intel Comm_split",
            "RBC Comm_create_group",
        ],
    );
    for p in pow2_sweep(4, scale::max_proc_exp()) {
        let p = p as usize;
        t.push(
            p as u64,
            vec![
                ms(create_group_time(p, VendorProfile::ibm_like())),
                ms(split_time(p, VendorProfile::ibm_like())),
                ms(create_group_time(p, VendorProfile::intel_like())),
                ms(split_time(p, VendorProfile::intel_like())),
                ms(rbc_time(p)),
            ],
        );
    }
    t.print();
    t.write_csv("fig5_split");
    vec![t]
}
