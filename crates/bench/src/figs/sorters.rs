//! Extension experiment: the paper's §IV algorithm families side by side.
//!
//! §IV frames distributed sorting as a trade-off spectrum — single-level
//! sample sort (one data exchange, needs n = Ω(p²/log p)), hypercube
//! quicksort (polylogarithmic, power-of-two p, unbalanced), multi-level
//! sample sort (in between) — and JQuick as the balanced, any-p member of
//! the quicksort family. This sweep measures all four over n/p (virtual
//! time) and their output imbalance on skewed input.

use jquick::{
    hypercube, imbalance_factor, jquick_sort, multilevel, samplesort, workloads, JQuickConfig,
    Layout, PivotCfg, RbcBackend, SampleSortCfg,
};
use mpisim::{SimConfig, Time, Transport};
use rbc::RbcComm;

use crate::figs::scale;
use crate::{measure, ms, pow2_sweep, reps, Table};

fn sort_time(algo: &'static str, p: usize, n_per: u64) -> (Time, f64) {
    let n = n_per * p as u64;
    let imb = std::sync::Mutex::new(1.0f64);
    let t = {
        let imb = &imb;
        measure(p, SimConfig::default(), reps(3), move |env, rep| {
            let w = &env.world;
            let layout = Layout::new(n, p as u64);
            let data = workloads::generate(
                &layout,
                w.rank() as u64,
                rep as u64 * 13 + 1,
                workloads::Dist::Skewed,
            );
            w.barrier().unwrap();
            let t0 = env.now();
            let out = match algo {
                "jquick" => {
                    jquick_sort(&RbcBackend, w, data, n, &JQuickConfig::default())
                        .unwrap()
                        .0
                }
                "hypercube" => hypercube::hypercube_sort(w, data, &PivotCfg::default()).unwrap(),
                "samplesort" => {
                    samplesort::sample_sort(w, data, &SampleSortCfg::default()).unwrap()
                }
                _ => {
                    let world = RbcComm::create(w);
                    multilevel::multilevel_sample_sort(
                        &world,
                        data,
                        &multilevel::MultiLevelCfg::default(),
                    )
                    .unwrap()
                    .0
                }
            };
            let dt = env.now() - t0;
            let f = imbalance_factor(w, out.len()).unwrap();
            if w.rank() == 0 {
                let mut g = imb.lock().unwrap();
                *g = g.max(f);
            }
            dt
        })
    };
    (t, imb.into_inner().unwrap())
}

/// Regenerate the sorter-comparison tables and write their CSVs.
pub fn run() -> Vec<Table> {
    let p = scale::p_elems().next_power_of_two() / 2; // hypercube needs 2^k
    let mut t = Table::new(
        &format!("Extension — §IV sorting algorithms on {p} cores (skewed doubles)"),
        "n/p",
        &[
            "JQuick (RBC)",
            "Hypercube qsort",
            "Sample sort",
            "Multi-level (k=4)",
        ],
    );
    let mut imb = Table::with_unit(
        &format!("Extension — max/avg output size on {p} cores (skewed doubles)"),
        "n/p",
        &[
            "JQuick (RBC)",
            "Hypercube qsort",
            "Sample sort",
            "Multi-level (k=4)",
        ],
        "ratio",
    );
    for n_per in pow2_sweep(2, scale::max_elem_exp().min(12)) {
        let mut times = Vec::new();
        let mut imbs = Vec::new();
        for algo in ["jquick", "hypercube", "samplesort", "multilevel"] {
            let (dt, f) = sort_time(algo, p, n_per);
            times.push(ms(dt));
            imbs.push(f);
        }
        t.push(n_per, times);
        imb.push(n_per, imbs);
    }
    t.print();
    t.write_csv("ext_sorters_time");
    imb.print();
    imb.write_csv("ext_sorters_imbalance");
    vec![t, imb]
}
