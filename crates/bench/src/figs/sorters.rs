//! Extension experiment: the paper's §IV algorithm families side by side.
//!
//! §IV frames distributed sorting as a trade-off spectrum — single-level
//! sample sort (one data exchange, needs n = Ω(p²/log p)), hypercube
//! quicksort (polylogarithmic, power-of-two p, unbalanced), multi-level
//! sample sort (in between) — and JQuick as the balanced, any-p member of
//! the quicksort family. This sweep measures all four over n/p (virtual
//! time) and their output imbalance on skewed input.
//!
//! The second half sweeps the **large-p regime** (2^10..2^15, cooperative
//! scheduler backend): multi-level sample sort at different fan-outs — and
//! therefore level counts ⌈log_k p⌉ — against JQuick at fixed n/p. This is
//! where the §IV families actually separate: at small p every variant is a
//! couple of exchanges, while at 2^15 the fan-out choice changes the level
//! count from 3 (k=32) to 15 (k=2), and splitter quality compounds per
//! level while JQuick stays perfectly balanced by construction.

use jquick::{
    hypercube, imbalance_factor, jquick_sort, multilevel, samplesort, workloads, JQuickConfig,
    Layout, PivotCfg, RbcBackend, SampleSortCfg,
};
use mpisim::{SimConfig, Time, Transport};
use rbc::RbcComm;

use crate::figs::scale;
use crate::{measure, ms, pow2_sweep, reps, Table};

fn sort_time(algo: &'static str, p: usize, n_per: u64) -> (Time, f64) {
    let n = n_per * p as u64;
    let imb = std::sync::Mutex::new(1.0f64);
    let t = {
        let imb = &imb;
        measure(p, SimConfig::default(), reps(3), move |env, rep| {
            let w = &env.world;
            let layout = Layout::new(n, p as u64);
            let data = workloads::generate(
                &layout,
                w.rank() as u64,
                rep as u64 * 13 + 1,
                workloads::Dist::Skewed,
            );
            w.barrier().unwrap();
            let t0 = env.now();
            let out = match algo {
                "jquick" => {
                    jquick_sort(&RbcBackend, w, data, n, &JQuickConfig::default())
                        .unwrap()
                        .0
                }
                "hypercube" => hypercube::hypercube_sort(w, data, &PivotCfg::default()).unwrap(),
                "samplesort" => {
                    samplesort::sample_sort(w, data, &SampleSortCfg::default()).unwrap()
                }
                _ => {
                    let world = RbcComm::create(w);
                    multilevel::multilevel_sample_sort(
                        &world,
                        data,
                        &multilevel::MultiLevelCfg::default(),
                    )
                    .unwrap()
                    .0
                }
            };
            let dt = env.now() - t0;
            let f = imbalance_factor(w, out.len()).unwrap();
            if w.rank() == 0 {
                let mut g = imb.lock().unwrap();
                *g = g.max(f);
            }
            dt
        })
    };
    (t, imb.into_inner().unwrap())
}

/// One large-p data point: virtual makespan and max/avg output imbalance.
fn largep_sort_time(algo: &'static str, fanout: usize, p: usize, n_per: u64) -> (Time, f64) {
    let n = n_per * p as u64;
    let imb = std::sync::Mutex::new(1.0f64);
    let t = {
        let imb = &imb;
        measure(p, SimConfig::cooperative(), 1, move |env, rep| {
            let w = &env.world;
            let layout = Layout::new(n, p as u64);
            let data = workloads::generate(
                &layout,
                w.rank() as u64,
                rep as u64 * 13 + 1,
                workloads::Dist::Skewed,
            );
            w.barrier().unwrap();
            let t0 = env.now();
            let out = match algo {
                "jquick" => {
                    jquick_sort(&RbcBackend, w, data, n, &JQuickConfig::default())
                        .unwrap()
                        .0
                }
                _ => {
                    let world = RbcComm::create(w);
                    multilevel::multilevel_sample_sort(
                        &world,
                        data,
                        &multilevel::MultiLevelCfg {
                            fanout,
                            ..Default::default()
                        },
                    )
                    .unwrap()
                    .0
                }
            };
            let dt = env.now() - t0;
            let f = imbalance_factor(w, out.len()).unwrap();
            if w.rank() == 0 {
                let mut g = imb.lock().unwrap();
                *g = g.max(f);
            }
            dt
        })
    };
    (t, imb.into_inner().unwrap())
}

/// The large-p level-count comparison: multi-level fan-outs vs JQuick at
/// p = 2^10..2^15 (2^12 in quick mode), n/p fixed.
fn run_largep() -> Vec<Table> {
    let max_exp = if crate::quick_mode() { 12 } else { 15 };
    let n_per = 64u64;
    let series = [
        ("jquick", 0usize, "JQuick (RBC)"),
        ("multilevel", 2, "Multi-level k=2"),
        ("multilevel", 8, "Multi-level k=8"),
        ("multilevel", 32, "Multi-level k=32"),
    ];
    let names: Vec<&str> = series.iter().map(|&(_, _, n)| n).collect();
    let mut t = Table::new(
        &format!(
            "Extension — §IV families at large p (n/p = {n_per}, skewed, cooperative backend)"
        ),
        "p",
        &names,
    );
    let mut imb = Table::with_unit(
        &format!("Extension — max/avg output size at large p (n/p = {n_per}, skewed)"),
        "p",
        &names,
        "ratio",
    );
    for e in (10..=max_exp).step_by(1) {
        let p = 1usize << e;
        let mut times = Vec::new();
        let mut imbs = Vec::new();
        for &(algo, fanout, _) in &series {
            let (dt, f) = largep_sort_time(algo, fanout, p, n_per);
            times.push(ms(dt));
            imbs.push(f);
        }
        t.push(p as u64, times);
        imb.push(p as u64, imbs);
        eprintln!("sorters largep: finished p = 2^{e}");
    }
    t.print();
    t.write_csv("ext_sorters_largep_time");
    imb.print();
    imb.write_csv("ext_sorters_largep_imbalance");
    vec![t, imb]
}

/// Regenerate the sorter-comparison tables and write their CSVs.
pub fn run() -> Vec<Table> {
    let p = scale::p_elems().next_power_of_two() / 2; // hypercube needs 2^k
    let mut t = Table::new(
        &format!("Extension — §IV sorting algorithms on {p} cores (skewed doubles)"),
        "n/p",
        &[
            "JQuick (RBC)",
            "Hypercube qsort",
            "Sample sort",
            "Multi-level (k=4)",
        ],
    );
    let mut imb = Table::with_unit(
        &format!("Extension — max/avg output size on {p} cores (skewed doubles)"),
        "n/p",
        &[
            "JQuick (RBC)",
            "Hypercube qsort",
            "Sample sort",
            "Multi-level (k=4)",
        ],
        "ratio",
    );
    for n_per in pow2_sweep(2, scale::max_elem_exp().min(12)) {
        let mut times = Vec::new();
        let mut imbs = Vec::new();
        for algo in ["jquick", "hypercube", "samplesort", "multilevel"] {
            let (dt, f) = sort_time(algo, p, n_per);
            times.push(ms(dt));
            imbs.push(f);
        }
        t.push(n_per, times);
        imb.push(n_per, imbs);
    }
    t.print();
    t.write_csv("ext_sorters_time");
    imb.print();
    imb.write_csv("ext_sorters_imbalance");
    let mut out = vec![t, imb];
    out.extend(run_largep());
    out
}
