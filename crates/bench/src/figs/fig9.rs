//! Fig. 9 (a–h): nonblocking collectives — broadcast, reduce, scan, gather
//! — MPI vs RBC on both vendor personalities (paper: 2^15 cores; gather
//! swept only to 2^10 elements since the root receives p·n).
//!
//! Expected shape: RBC performs like the vendor collectives for small
//! inputs; for large inputs the vendor scans (and Intel-like
//! broadcast/reduce, with jitter) fall behind — "our range-based
//! communicator creation does not come with hidden overheads".

use mpisim::nbcoll::Progress;
use mpisim::{ops, SimConfig, Time, Transport, VendorProfile};
use rbc::RbcComm;

use crate::figs::scale;
use crate::{measure, ms, pow2_sweep, reps, Table};

/// The collective operation a Fig. 9 panel benchmarks.
#[derive(Clone, Copy, PartialEq)]
pub enum Op {
    /// Nonblocking broadcast.
    Bcast,
    /// Nonblocking reduce.
    Reduce,
    /// Nonblocking inclusive scan.
    Scan,
    /// Nonblocking gather.
    Gather,
}

impl Op {
    fn name(&self) -> &'static str {
        match self {
            Op::Bcast => "Broadcast",
            Op::Reduce => "Reduce",
            Op::Scan => "Scan",
            Op::Gather => "Gather",
        }
    }
}

fn run_native(env: &mpisim::ProcEnv, op: Op, n: usize, rep: usize) -> Time {
    let w = &env.world;
    let data: Vec<f64> = (0..n).map(|i| (i + rep) as f64).collect();
    w.barrier().unwrap();
    let t0 = env.now();
    match op {
        Op::Bcast => {
            let payload = (w.rank() == 0).then(|| data.clone());
            let mut sm = w.ibcast(payload, 0).unwrap();
            while !sm.poll().unwrap() {
                mpisim::yield_now();
            }
        }
        Op::Reduce => {
            let mut sm = w.ireduce(&data, 0, ops::sum::<f64>()).unwrap();
            while !sm.poll().unwrap() {
                mpisim::yield_now();
            }
        }
        Op::Scan => {
            let mut sm = w.iscan(&data, ops::sum::<f64>()).unwrap();
            while !sm.poll().unwrap() {
                mpisim::yield_now();
            }
        }
        Op::Gather => {
            let mut sm = w.igather(data, 0).unwrap();
            while !sm.poll().unwrap() {
                mpisim::yield_now();
            }
        }
    }
    env.now() - t0
}

fn run_rbc(env: &mpisim::ProcEnv, op: Op, n: usize, rep: usize) -> Time {
    let w = RbcComm::create(&env.world);
    let data: Vec<f64> = (0..n).map(|i| (i + rep) as f64).collect();
    w.barrier().unwrap();
    let t0 = env.now();
    match op {
        Op::Bcast => {
            let payload = (w.rank() == 0).then(|| data.clone());
            let mut sm = w.ibcast(payload, 0, None).unwrap();
            while !sm.poll().unwrap() {
                mpisim::yield_now();
            }
        }
        Op::Reduce => {
            let mut sm = w.ireduce(&data, 0, ops::sum::<f64>(), None).unwrap();
            while !sm.poll().unwrap() {
                mpisim::yield_now();
            }
        }
        Op::Scan => {
            let mut sm = w.iscan(&data, ops::sum::<f64>(), None).unwrap();
            while !sm.poll().unwrap() {
                mpisim::yield_now();
            }
        }
        Op::Gather => {
            let mut sm = w.igather(data, 0, None).unwrap();
            while !sm.poll().unwrap() {
                mpisim::yield_now();
            }
        }
    }
    env.now() - t0
}

/// One panel of Fig. 9: `op` under `vendor`, MPI vs RBC, swept over n/p.
pub fn panel(op: Op, vendor: VendorProfile) -> Table {
    let p = scale::p_elems();
    let max_exp = if op == Op::Gather {
        scale::max_elem_exp().min(10)
    } else {
        scale::max_elem_exp()
    };
    let mut t = Table::new(
        &format!("Fig 9 — {} with {} on {p} cores", op.name(), vendor.name),
        "n/p",
        &["MPI", "RBC"],
    );
    for n in pow2_sweep(0, max_exp) {
        let n = n as usize;
        let v = vendor.clone();
        let native = measure(
            p,
            SimConfig::default().with_vendor(v.clone()),
            reps(5),
            move |env, rep| run_native(env, op, n, rep),
        );
        let v = vendor.clone();
        let rbc = measure(
            p,
            SimConfig::default().with_vendor(v),
            reps(5),
            move |env, rep| run_rbc(env, op, n, rep),
        );
        t.push(n as u64, vec![ms(native), ms(rbc)]);
    }
    t
}

/// Regenerate all eight Fig. 9 panels and write their CSVs.
pub fn run() -> Vec<Table> {
    let mut out = Vec::new();
    for op in [Op::Bcast, Op::Reduce, Op::Scan, Op::Gather] {
        for vendor in [VendorProfile::ibm_like(), VendorProfile::intel_like()] {
            let name = format!(
                "fig9_{}_{}",
                op.name().to_lowercase(),
                if vendor.name.starts_with("ibm") {
                    "ibm"
                } else {
                    "intel"
                }
            );
            let t = panel(op, vendor);
            t.print();
            t.write_csv(&name);
            out.push(t);
        }
    }
    out
}
