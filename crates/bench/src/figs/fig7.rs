//! Fig. 7: running-time *ratios* of MPI to RBC for broadcasts on a
//! sub-range covering half the processes (paper: 2^14 of 2^15 processes;
//! split once, then 1× or 50× nonblocking broadcast of n doubles).
//!
//! Native MPI must create the sub-communicator with a blocking operation
//! first (the vendor-best one: `create_group` for Intel-like, `split` for
//! IBM-like whose `create_group` is pathological); RBC splits locally.
//!
//! Expected shape: ratios far above 1 for small n (creation dominates),
//! decaying toward 1 as n grows; the 50-broadcast ratios sit below the
//! 1-broadcast ratios (creation amortised).

use mpisim::nbcoll::Progress;
use mpisim::{Group, SimConfig, Time, Transport, VendorProfile};
use rbc::RbcComm;

use crate::figs::scale;
use crate::{measure, pow2_sweep, reps, Table};

#[derive(Clone, Copy)]
enum NativeCreate {
    CreateGroup,
    Split,
}

fn native_time(
    p: usize,
    n: usize,
    bcasts: usize,
    vendor: VendorProfile,
    how: NativeCreate,
) -> Time {
    measure(
        p,
        SimConfig::default().with_vendor(vendor),
        reps(5),
        move |env, rep| {
            let w = &env.world;
            let in_range = w.rank() < p / 2;
            w.barrier().unwrap();
            let t0 = env.now();
            let sub = match how {
                NativeCreate::CreateGroup => {
                    if !in_range {
                        // create_group is collective over the new group only.
                        return Time::ZERO;
                    }
                    w.create_group(&Group::range(0, 1, p / 2), 300 + rep as u64)
                        .unwrap()
                }
                NativeCreate::Split => {
                    // split must be called by ALL processes of the parent.
                    let c = w.split(u64::from(!in_range), w.rank() as u64).unwrap();
                    if !in_range {
                        return env.now() - t0;
                    }
                    c
                }
            };
            for _ in 0..bcasts {
                let data = (sub.rank() == 0).then(|| vec![1.0f64; n]);
                let mut sm = sub.ibcast(data, 0).unwrap();
                while !sm.poll().unwrap() {
                    mpisim::yield_now();
                }
            }
            env.now() - t0
        },
    )
}

fn rbc_time(p: usize, n: usize, bcasts: usize, vendor: VendorProfile) -> Time {
    measure(
        p,
        SimConfig::default().with_vendor(vendor),
        reps(5),
        move |env, _| {
            let world = RbcComm::create(&env.world);
            world.barrier().unwrap();
            if world.rank() >= p / 2 {
                return Time::ZERO;
            }
            let t0 = env.now();
            let sub = world.split(0, p / 2 - 1).unwrap();
            for _ in 0..bcasts {
                let data = (sub.rank() == 0).then(|| vec![1.0f64; n]);
                let mut sm = sub.ibcast(data, 0, None).unwrap();
                while !sm.poll().unwrap() {
                    mpisim::yield_now();
                }
            }
            env.now() - t0
        },
    )
}

/// Regenerate this figure's tables and write their CSVs.
pub fn run() -> Vec<Table> {
    let p = scale::p_elems();
    let mut t = Table::with_unit(
        &format!(
            "Fig 7 — MPI/RBC time ratios: split + k× Ibcast on {} of {p} processes",
            p / 2
        ),
        "elements",
        &[
            "IBM split + 1x Ibcast",
            "IBM split + 50x Ibcast",
            "Intel create_group + 1x Ibcast",
            "Intel create_group + 50x Ibcast",
        ],
        "ratio",
    );
    for n in pow2_sweep(0, scale::max_elem_exp()) {
        let n = n as usize;
        let mut vals = Vec::new();
        for (vendor, how) in [
            (VendorProfile::ibm_like(), NativeCreate::Split),
            (VendorProfile::intel_like(), NativeCreate::CreateGroup),
        ] {
            for bcasts in [1usize, 50] {
                let native = native_time(p, n, bcasts, vendor.clone(), how);
                let rbc = rbc_time(p, n, bcasts, vendor.clone());
                vals.push(native.as_nanos() as f64 / rbc.as_nanos().max(1) as f64);
            }
        }
        t.push(n as u64, vals);
    }
    t.print();
    t.write_csv("fig7_subrange");
    vec![t]
}
